(* Tests of the multi-hop radio extension: topologies, flooding dynamics,
   crash partitions, and the relay-poisoning limit ([36]). *)

module Oid = Vv_ballot.Option_id
module T = Vv_radio.Topology
module R = Vv_radio.Radio_runner

let o = Oid.of_int
let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let opt_testable = Alcotest.testable Oid.pp Oid.equal

(* --- topology --- *)

let test_complete () =
  let t = T.complete 5 in
  check_int "size" 5 (T.size t);
  check_int "degree" 4 (T.degree t 0);
  check_int "diameter" 1 (T.diameter t);
  check_bool "connected" true (T.connected t)

let test_line () =
  let t = T.line 6 in
  check_int "end degree" 1 (T.degree t 0);
  check_int "mid degree" 2 (T.degree t 3);
  check_int "diameter" 5 (T.diameter t);
  check_bool "cut disconnects" false (T.connected ~removed:[ 3 ] t)

let test_ring () =
  let t = T.ring ~k:1 8 in
  check_int "degree" 2 (T.degree t 0);
  check_int "diameter" 4 (T.diameter t);
  check_bool "survives one removal" true (T.connected ~removed:[ 2 ] t);
  check_bool "two adjacent removals cut" false
    (T.connected ~removed:[ 2; 4 ] t);
  let t2 = T.ring ~k:2 8 in
  check_int "k=2 degree" 4 (T.degree t2 0);
  check_int "k=2 diameter" 2 (T.diameter t2)

let test_grid () =
  let t = T.grid ~w:3 ~h:3 in
  check_int "corner degree" 2 (T.degree t 0);
  check_int "centre degree" 4 (T.degree t 4);
  check_int "diameter" 4 (T.diameter t);
  check_bool "connected" true (T.connected t)

let test_random_geometric () =
  let t = T.random_geometric ~n:20 ~radius:0.6 ~seed:3 in
  check_int "size" 20 (T.size t);
  check_bool "dense radius connects" true (T.connected t);
  (* Determinism. *)
  let t2 = T.random_geometric ~n:20 ~radius:0.6 ~seed:3 in
  check_bool "deterministic" true (t = t2)

let test_of_edges_and_validation () =
  let t = T.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3); (0, 1) ] in
  check_int "dedup" 1 (T.degree t 0);
  check_int "min degree" 1 (T.min_degree t);
  Alcotest.check_raises "range" (Invalid_argument "Topology.of_edges: endpoint out of range")
    (fun () -> ignore (T.of_edges ~n:3 [ (0, 7) ]));
  Alcotest.check_raises "diameter needs connectivity"
    (Invalid_argument "Topology.diameter: graph is disconnected") (fun () ->
      ignore (T.diameter (T.of_edges ~n:4 [ (0, 1) ])))

(* --- radio voting --- *)

(* 8-node ring (k=1), one Byzantine, honest prefer A 5-to-2. *)
let ring_inputs = [ o 0; o 0; o 0; o 1; o 1; o 0; o 0; o 0 ]

let test_ring_decides_plurality () =
  let r =
    R.run ~topology:(T.ring ~k:1 8) ~t:1 ~byzantine:[ 7 ] ring_inputs
  in
  check_bool "termination" true r.R.termination;
  check_bool "agreement" true r.R.agreement;
  check_bool "validity" true r.R.voting_validity;
  List.iter
    (fun out -> check (Alcotest.option opt_testable) "winner A" (Some (o 0)) out)
    r.R.outputs

let test_complete_graph_matches_algo4 () =
  (* On the complete graph the flooding protocol degenerates to Algorithm
     4: same decisions, one round of relaying overhead. *)
  let honest = [ o 0; o 0; o 0; o 0; o 0; o 1 ] in
  let r =
    R.run ~topology:(T.complete 9) ~t:3 ~byzantine:[ 6; 7; 8 ]
      (honest @ [ o 0; o 0; o 0 ])
  in
  check_bool "termination" true r.R.termination;
  check_bool "validity at N<=3t" true r.R.voting_validity

let test_grid_crash_residual_connected () =
  (* A corner node crashes mid-flood; the residual grid stays connected,
     so the vote concludes exactly. *)
  let topo = T.grid ~w:3 ~h:3 in
  let inputs = List.init 9 (fun i -> if i < 6 then o 0 else o 1) in
  let r =
    R.run ~topology:topo ~t:1 ~byzantine:[]
      ~crash:[ (8, 1, [ 5 ]) ]
      inputs
  in
  check_bool "termination" true r.R.termination;
  check_bool "validity" true r.R.voting_validity

let test_line_partition_stalls_never_lies () =
  (* The middle of a line crashes instantly: the flood cannot cross, the
     quorum starves, and the protocol stalls rather than decide. *)
  let topo = T.line 7 in
  let inputs = List.init 7 (fun i -> if i < 5 then o 0 else o 1) in
  let r =
    R.run ~topology:topo ~t:1 ~byzantine:[]
      ~crash:[ (3, 0, []) ]
      inputs
  in
  check_bool "stalled" true r.R.stalled;
  check_bool "validity preserved" true r.R.voting_validity

let test_poison_blocked_on_complete_graph () =
  (* Direct preference: on the complete graph every node hears the victim
     itself no later than any fake, so poisoning is inert. *)
  let inputs = [ o 0; o 0; o 0; o 1; o 1; o 0; o 0 ] in
  let r =
    R.run ~strategy:(R.Poison_origin (0, 1)) ~topology:(T.complete 7) ~t:1
      ~byzantine:[ 5 ] inputs
  in
  check_bool "termination" true r.R.termination;
  check_bool "validity" true r.R.voting_validity

(* Ring of 8, Byzantine node 5, victim node 0 votes with the majority:
   honest A=5 (nodes 0,1,2,3,7) vs B=2 (nodes 4,6). *)
let poison_ring_inputs = [ o 0; o 0; o 0; o 0; o 1; o 1; o 1; o 0 ]

let test_poison_defeats_multihop_flooding () =
  (* Beyond one hop, first-accept flooding is poisonable: the Byzantine
     relay re-originates a fake copy of node 0's ballot; nodes 4 and 6
     receive the fake before the true copy, see a tie, and withhold their
     proposals — the quorum starves.  This is the limitation [36]'s
     connectivity bound and relay protocol address; the protocol still
     never decides a wrong value. *)
  let r =
    R.run ~strategy:(R.Poison_origin (0, 1)) ~topology:(T.ring ~k:1 8) ~t:1
      ~byzantine:[ 5 ] poison_ring_inputs
  in
  check_bool "exactness lost" false (r.R.termination && r.R.voting_validity);
  check_bool "but never a wrong decision" true r.R.voting_validity;
  (* The legitimate worst case (collusion without forgery) on the same
     ring still concludes exactly. *)
  let r2 =
    R.run ~strategy:R.Originate_second ~topology:(T.ring ~k:1 8) ~t:1
      ~byzantine:[ 5 ] poison_ring_inputs
  in
  check_bool "baseline terminates" true r2.R.termination;
  check_bool "baseline valid" true r2.R.voting_validity

let test_radio_validation () =
  Alcotest.check_raises "connected required"
    (Invalid_argument "Radio_runner.run: topology must be connected") (fun () ->
      ignore
        (R.run ~topology:(T.of_edges ~n:4 [ (0, 1) ]) ~t:0 ~byzantine:[]
           (List.init 4 (fun _ -> o 0))));
  Alcotest.check_raises "arity"
    (Invalid_argument "Radio_runner.run: inputs must match topology size")
    (fun () ->
      ignore (R.run ~topology:(T.line 3) ~t:0 ~byzantine:[] [ o 0 ]))

let test_radio_determinism () =
  let go () = R.run ~topology:(T.ring ~k:2 10) ~t:2 ~byzantine:[ 8; 9 ]
      (List.init 10 (fun i -> if i < 6 then o 0 else o 1))
  in
  check_bool "deterministic" true (go () = go ())

(* --- properties --- *)

let prop_ring_diameter =
  QCheck.Test.make ~count:30 ~name:"ring diameter formula"
    QCheck.(int_range 3 20)
    (fun n -> T.diameter (T.ring ~k:1 n) = n / 2)

let prop_grid_connected =
  QCheck.Test.make ~count:30 ~name:"grids are connected"
    QCheck.(pair (int_range 1 6) (int_range 1 6))
    (fun (w, h) -> T.connected (T.grid ~w ~h))

let prop_radio_crash_safe =
  (* Any single-node crash on a 2-connected ring: the protocol either
     decides the exact plurality or stalls — never a wrong decision. *)
  QCheck.Test.make ~count:40 ~name:"radio never lies under crashes"
    QCheck.(pair (int_range 0 9) (int_range 0 5))
    (fun (victim, at_round) ->
      let inputs = List.init 10 (fun i -> if i < 7 then o 0 else o 1) in
      let r =
        R.run ~strategy:R.Passive ~topology:(T.ring ~k:1 10) ~t:1
          ~byzantine:[]
          ~crash:[ (victim, at_round, []) ]
          inputs
      in
      r.R.voting_validity && r.R.agreement)

let prop_radio_byzantine_position_irrelevant =
  (* On a k=2 ring (still connected after removing any single node), a
     lone colluding Byzantine node defeats exactness nowhere, regardless
     of its position. *)
  QCheck.Test.make ~count:20 ~name:"byzantine position irrelevant on 2-connected ring"
    QCheck.(int_range 0 9)
    (fun byz ->
      let inputs =
        List.init 10 (fun i ->
            if i = byz then o 0 else if i mod 3 = 2 then o 1 else o 0)
      in
      let speaker = if byz = 0 then 1 else 0 in
      let r =
        R.run ~strategy:R.Originate_second ~speaker
          ~topology:(T.ring ~k:2 10) ~t:1 ~byzantine:[ byz ] inputs
      in
      r.R.termination && r.R.agreement && r.R.voting_validity)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_ring_diameter;
      prop_grid_connected;
      prop_radio_crash_safe;
      prop_radio_byzantine_position_irrelevant;
    ]

let () =
  Alcotest.run "radio"
    [
      ( "topology",
        [
          Alcotest.test_case "complete" `Quick test_complete;
          Alcotest.test_case "line" `Quick test_line;
          Alcotest.test_case "ring" `Quick test_ring;
          Alcotest.test_case "grid" `Quick test_grid;
          Alcotest.test_case "random geometric" `Quick test_random_geometric;
          Alcotest.test_case "of_edges + validation" `Quick
            test_of_edges_and_validation;
        ] );
      ( "voting",
        [
          Alcotest.test_case "ring decides plurality" `Quick
            test_ring_decides_plurality;
          Alcotest.test_case "complete graph = Algorithm 4" `Quick
            test_complete_graph_matches_algo4;
          Alcotest.test_case "grid crash, residual connected" `Quick
            test_grid_crash_residual_connected;
          Alcotest.test_case "line partition stalls, never lies" `Quick
            test_line_partition_stalls_never_lies;
          Alcotest.test_case "poison inert on complete graph" `Quick
            test_poison_blocked_on_complete_graph;
          Alcotest.test_case "poison defeats multi-hop flooding [36]" `Quick
            test_poison_defeats_multihop_flooding;
          Alcotest.test_case "validation" `Quick test_radio_validation;
          Alcotest.test_case "deterministic" `Quick test_radio_determinism;
        ] );
      ("properties", qcheck_cases);
    ]
