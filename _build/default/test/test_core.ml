(* Tests of the paper's protocols: bounds arithmetic, Algorithm 1 (BFT),
   Algorithm 2 (safety-guaranteed), Algorithm 3 (incremental threshold),
   Algorithm 4 (local broadcast), the CFT variant, and the theorem-level
   properties under adversarial strategies. *)

module Oid = Vv_ballot.Option_id
module Bounds = Vv_core.Bounds
module Runner = Vv_core.Runner
module Strategy = Vv_core.Strategy

let o = Oid.of_int
let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let opt_testable = Alcotest.testable Oid.pp Oid.equal
let check_out = check (Alcotest.list (Alcotest.option opt_testable))

(* --- bounds --- *)

let test_bounds_arithmetic () =
  (* Section IV example numbers: B_G = 2, C_G = 2 from {0,0,0,1,1,2,3}. *)
  check_int "validity bound" 12 (Bounds.validity_bound ~t:3 ~bg:2 ~cg:2);
  check_int "bft bound" 12 (Bounds.bft_bound ~t:3 ~bg:2 ~cg:2);
  check_int "bft bound 3t binds" 9 (Bounds.bft_bound ~t:3 ~bg:0 ~cg:0);
  check_int "cft bound" 6 (Bounds.cft_bound ~t:3 ~bg:0 ~cg:0);
  check_int "sct bound" 13 (Bounds.sct_bound ~t:3 ~bg:1 ~cg:2);
  check_bool "satisfied" true (Bounds.satisfied Bounds.Bft ~n:13 ~t:3 ~bg:2 ~cg:2);
  check_bool "not satisfied" false
    (Bounds.satisfied Bounds.Bft ~n:12 ~t:3 ~bg:2 ~cg:2)

let test_bounds_gap_and_k () =
  check_int "bft gap" 4 (Bounds.required_gap Bounds.Bft ~t:3);
  check_int "sct gap" 7 (Bounds.required_gap Bounds.Sct ~t:3);
  check_int "delta_p bft" 0 (Bounds.delta_p Bounds.Bft ~t:5);
  check_int "delta_p sct" 5 (Bounds.delta_p Bounds.Sct ~t:5);
  check_int "k bft" 2 (Bounds.k_of Bounds.Bft);
  check_int "k sct" 3 (Bounds.k_of Bounds.Sct);
  check (Alcotest.float 1e-9) "t_vd" 2.0
    (Bounds.vote_dispersion_tolerance Bounds.Bft ~bg:1 ~cg:2)

let test_bounds_decompose () =
  let inputs = [ o 0; o 0; o 0; o 1; o 1; o 2; o 3 ] in
  match Bounds.decompose ~tie:Vv_ballot.Tie_break.default inputs with
  | None -> Alcotest.fail "decompose"
  | Some (w, ag, bg, cg) ->
      check opt_testable "winner" (o 0) w;
      check_int "A_G" 3 ag;
      check_int "B_G" 2 bg;
      check_int "C_G" 2 cg

let test_max_tolerable () =
  (* n = 13, bg = 2, cg = 2: BFT needs n > max(3t, 2t+6): t=3 gives 12 < 13. *)
  check_int "bft t" 3 (Bounds.max_tolerable_t Bounds.Bft ~n:13 ~bg:2 ~cg:2);
  check_int "sct smaller" 2 (Bounds.max_tolerable_t Bounds.Sct ~n:13 ~bg:2 ~cg:2)

let test_incremental_inequality () =
  (* Section VII-A example: N = 10, after 7 arrivals {0,0,1,0,0,0,2} the
     node holds A_i = 5 (zeros), C_i = 2 ({2} is third, plus... A=5 zeros,
     B=1 one, C=1 two): a_i=5, c_i=1: 10 > 10 - 1 + 0 ? 2*5 > 9 yes. *)
  check_bool "fires at seventh vote" true
    (Bounds.incremental_ready ~n:10 ~delta_p:0 ~a_i:5 ~c_i:1);
  check_bool "not before" false
    (Bounds.incremental_ready ~n:10 ~delta_p:0 ~a_i:4 ~c_i:1)

(* --- Algorithm 1 --- *)

(* Tolerance satisfied: honest {0,0,0,0,0,1}, t = f = 1, N = 7.
   Bound: max(3, 2 + 2*1 + 0) = 4 < 7. *)
let winning_inputs = [ o 0; o 0; o 0; o 0; o 0; o 1 ]

let test_algo1_decides_plurality () =
  let r = Runner.simple ~protocol:Runner.Algo1 ~t:1 ~f:1 winning_inputs in
  check_bool "termination" true r.Runner.termination;
  check_bool "agreement" true r.Runner.agreement;
  check_bool "voting validity" true r.Runner.voting_validity;
  check_out "all output A" (List.map (fun _ -> Some (o 0)) winning_inputs)
    r.Runner.outputs

let test_algo1_all_strategies_hold () =
  List.iter
    (fun strategy ->
      let r = Runner.simple ~protocol:Runner.Algo1 ~strategy ~t:1 ~f:1 winning_inputs in
      check_bool "termination" true r.Runner.termination;
      check_bool "validity" true r.Runner.voting_validity)
    [
      Strategy.Passive;
      Strategy.Collude_second;
      Strategy.Collude_fixed 1;
      Strategy.Split_top2;
      Strategy.Propose_second;
      Strategy.Random_votes 3;
      Strategy.Late_collude 1;
      Strategy.Late_collude 4;
    ]

let test_algo1_all_bb_substrates () =
  List.iter
    (fun bb ->
      let r =
        Runner.simple ~protocol:Runner.Algo1 ~bb ~t:1 ~f:1
          ~strategy:Strategy.Collude_second winning_inputs
      in
      check_bool "termination" true r.Runner.termination;
      check_bool "validity" true r.Runner.voting_validity)
    [ Vv_bb.Bb.Dolev_strong; Vv_bb.Bb.Eig; Vv_bb.Bb.Phase_king ]

(* The Section I motivating example: N = 10, t = 3, honest inputs
   {0,0,0,1,1,2,3}.  Bound 2t + 2B_G + C_G = 12 >= 10, so colluding
   Byzantine votes on option 1 flip every honest view: Algorithm 1
   terminates on the WRONG value — exactness is lost (Lemma 2). *)
let example_inputs = [ o 0; o 0; o 0; o 1; o 1; o 2; o 3 ]

let test_algo1_violation_below_bound () =
  let r =
    Runner.simple ~protocol:Runner.Algo1 ~strategy:Strategy.Collude_second ~t:3
      ~f:3 example_inputs
  in
  check_bool "terminates" true r.Runner.termination;
  check_bool "agreement still holds" true r.Runner.agreement;
  check_bool "voting validity VIOLATED" false r.Runner.voting_validity;
  check_out "all fooled to B"
    (List.map (fun _ -> Some (o 1)) example_inputs)
    r.Runner.outputs

(* The strong adversary's timing power: colluding votes released within
   the 2*delta wait window flip the outcome (Lemma 2); votes withheld past
   the window miss the tally and the honest plurality survives even below
   the bound.  The bound is about worst-case adversaries, not all. *)
let test_algo1_late_collusion_timing () =
  let within =
    Runner.simple ~protocol:Runner.Algo1 ~strategy:(Strategy.Late_collude 1)
      ~t:3 ~f:3 example_inputs
  in
  check_bool "within window: terminates" true within.Runner.termination;
  check_bool "within window: validity lost" false within.Runner.voting_validity;
  let too_late =
    Runner.simple ~protocol:Runner.Algo1 ~strategy:(Strategy.Late_collude 5)
      ~t:3 ~f:3 example_inputs
  in
  check_bool "past window: terminates" true too_late.Runner.termination;
  check_bool "past window: plurality survives" true
    too_late.Runner.voting_validity

(* Byzantine speaker staying silent: subject never delivered, honest nodes
   never vote; stall without validity violation. *)
let test_algo1_byzantine_speaker_silent () =
  let inputs = List.init 7 (fun _ -> o 0) in
  let r =
    Runner.run
      (Runner.spec ~byzantine:[ 0 ] ~protocol:Runner.Algo1
         ~strategy:Strategy.Passive ~n:7 ~t:1 ~speaker:0 inputs)
  in
  check_bool "stalled" true r.Runner.stalled;
  check_bool "no termination" false r.Runner.termination;
  check_bool "validity vacuous" true r.Runner.voting_validity

(* --- Algorithm 2 (safety-guaranteed) --- *)

let test_sct_decides_when_bound_holds () =
  (* honest {0 x6, 1}: B_G = 1, C_G = 0; SCT bound 3t + 2 = 5 < N = 8. *)
  let honest = [ o 0; o 0; o 0; o 0; o 0; o 0; o 1 ] in
  let r =
    Runner.simple ~protocol:Runner.Algo2_sct ~strategy:Strategy.Collude_second
      ~t:1 ~f:1 honest
  in
  check_bool "termination" true r.Runner.termination;
  check_bool "validity" true r.Runner.voting_validity;
  check_bool "agreement" true r.Runner.agreement

let test_sct_stalls_not_lies_below_bound () =
  (* The same adversarial scenario that fooled Algorithm 1: SCT must either
     output the true plurality or nothing (Definition V.1 / Property 5). *)
  let r =
    Runner.simple ~protocol:Runner.Algo2_sct ~strategy:Strategy.Collude_second
      ~t:3 ~f:3 example_inputs
  in
  check_bool "safety admissible" true r.Runner.safety_admissible;
  check_bool "did not terminate" false r.Runner.termination;
  check_bool "stalled" true r.Runner.stalled

let test_sct_resists_forged_proposes () =
  (* Propose_second injects t propose-B messages; quorum is t+1, so they
     can never decide alone (Theorem 11 agreement argument). *)
  let honest = [ o 0; o 0; o 0; o 0; o 0; o 0; o 1 ] in
  let r =
    Runner.simple ~protocol:Runner.Algo2_sct ~strategy:Strategy.Propose_second
      ~t:1 ~f:1 honest
  in
  check_bool "termination" true r.Runner.termination;
  check_bool "validity" true r.Runner.voting_validity;
  check_bool "agreement" true r.Runner.agreement

(* --- Algorithm 3 (incremental threshold) --- *)

let test_incremental_matches_algo1 () =
  let r1 = Runner.simple ~protocol:Runner.Algo1 ~t:1 ~f:1 winning_inputs in
  let r3 =
    Runner.simple ~protocol:Runner.Algo3_incremental ~t:1 ~f:1 winning_inputs
  in
  check_out "same outputs" r1.Runner.outputs r3.Runner.outputs;
  check_bool "incremental not slower" true (r3.Runner.rounds <= r1.Runner.rounds)

let test_incremental_under_staggered_delays () =
  let delay = Vv_sim.Delay.Uniform { lo = 1; hi = 4 } in
  let r1 =
    Runner.simple ~protocol:Runner.Algo1 ~delay ~t:1 ~f:1
      ~strategy:Strategy.Collude_second winning_inputs
  in
  let r3 =
    Runner.simple ~protocol:Runner.Algo3_incremental ~delay ~t:1 ~f:1
      ~strategy:Strategy.Collude_second winning_inputs
  in
  check_bool "algo1 terminates" true r1.Runner.termination;
  check_bool "algo3 terminates" true r3.Runner.termination;
  check_bool "algo3 validity" true r3.Runner.voting_validity;
  check_bool "algo3 strictly faster here" true
    (r3.Runner.rounds < r1.Runner.rounds)

(* --- Algorithm 4 (local broadcast) --- *)

let test_algo4_beats_3t () =
  (* N = 9, t = 3: Algorithm 1's Inequality (3) fails (3t = 9 = N) but
     Algorithm 4 only needs N > 2t + 2B_G + C_G = 8. *)
  let honest = [ o 0; o 0; o 0; o 0; o 0; o 1 ] in
  check_bool "precondition: validity bound ok" true
    (Bounds.satisfied Bounds.Cft ~n:9 ~t:3 ~bg:1 ~cg:0);
  check_bool "precondition: bft bound fails" false
    (Bounds.satisfied Bounds.Bft ~n:9 ~t:3 ~bg:1 ~cg:0);
  let r =
    Runner.simple ~protocol:Runner.Algo4_local ~strategy:Strategy.Collude_second
      ~t:3 ~f:3 honest
  in
  check_bool "termination" true r.Runner.termination;
  check_bool "validity" true r.Runner.voting_validity;
  check_bool "agreement" true r.Runner.agreement

let test_algo4_rejects_equivocation () =
  (* Split_top2 equivocates; the engine must refuse it under the local
     broadcast model (Property 6's premise). *)
  let honest = [ o 0; o 0; o 0; o 0; o 0; o 1 ] in
  try
    ignore
      (Runner.simple ~protocol:Runner.Algo4_local ~strategy:Strategy.Split_top2
         ~t:3 ~f:3 honest);
    Alcotest.fail "equivocation must be rejected under local broadcast"
  with Vv_sim.Engine.Invalid_adversary _ -> ()

(* --- CFT --- *)

let test_cft_with_crash_mid_vote () =
  (* honest {0,0,0,1}, one crash node preferring 1 that crashes while
     broadcasting its vote (round 1), reaching only nodes 0 and 2: the
     Lemma 4 X_i <> X_G situation.  Bound: N = 5 > 2t + 2B_G + C_G = 4. *)
  let inputs = [ o 0; o 0; o 0; o 1; o 1 ] in
  let r =
    Runner.run
      (Runner.spec ~crash:[ (4, 1, [ 0; 2 ]) ] ~protocol:Runner.Cft ~n:5 ~t:1
         inputs)
  in
  check_bool "termination" true r.Runner.termination;
  check_bool "validity" true r.Runner.voting_validity;
  check_bool "agreement" true r.Runner.agreement;
  check_int "honest count" 4 (List.length r.Runner.outputs)

let test_cft_crash_flips_below_bound () =
  (* Theorem 5 realised with crash faults only: honest {0,0,1}, two crash
     nodes preferring 1 whose votes reach everyone before they die.  The
     honest view shows three 1s against two 0s, so the protocol terminates
     on 1 — exactness lost without a single Byzantine node. *)
  let everyone = [ 0; 1; 2; 3; 4 ] in
  let inputs = [ o 0; o 0; o 1; o 1; o 1 ] in
  let r =
    Runner.run
      (Runner.spec
         ~crash:[ (3, 2, everyone); (4, 2, everyone) ]
         ~protocol:Runner.Cft ~n:5 ~t:2 inputs)
  in
  check_bool "terminates" true r.Runner.termination;
  check_bool "agreement holds" true r.Runner.agreement;
  check_bool "voting validity lost to crashes" false r.Runner.voting_validity;
  check_out "all flipped to B" [ Some (o 1); Some (o 1); Some (o 1) ]
    r.Runner.outputs

let test_cft_stalls_below_bound () =
  (* honest {0,0,1}: A_G - B_G = 1 <= t = 1; the crash node's vote for 1
     equalises the counts, no node clears delta_P = 0, stall (Lemma 4). *)
  let inputs = [ o 0; o 0; o 1; o 1 ] in
  let r =
    Runner.run
      (Runner.spec ~crash:[ (3, 1, [ 0; 1; 2; 3 ]) ] ~protocol:Runner.Cft ~n:4
         ~t:1 inputs)
  in
  check_bool "no termination" false r.Runner.termination;
  check_bool "validity preserved" true r.Runner.voting_validity

(* --- cross-cutting --- *)

let test_runner_determinism () =
  let go () =
    Runner.simple ~protocol:Runner.Algo1 ~strategy:(Strategy.Random_votes 5)
      ~t:2 ~f:2 example_inputs
  in
  let a = go () and b = go () in
  check_out "same outputs" a.Runner.outputs b.Runner.outputs;
  check_int "same rounds" a.Runner.rounds b.Runner.rounds

let test_tie_break_parameter_end_to_end () =
  (* The established tie rule flows through the whole protocol: on an
     honest tie plus one Byzantine booster of the rule's winner, the
     decided option follows the configured convention. *)
  let tied = [ o 0; o 0; o 1; o 1; o 2 ] in
  let winner_under tie target =
    let r =
      Runner.run
        (Runner.spec ~byzantine:[ 5 ] ~protocol:Runner.Algo1
           ~strategy:(Strategy.Collude_fixed target) ~tie ~n:6 ~t:1
           (tied @ [ o 0 ]))
    in
    List.filter_map Fun.id r.Runner.outputs
  in
  (match winner_under Vv_ballot.Tie_break.Prefer_smaller 0 with
  | w :: _ -> check opt_testable "smaller convention" (o 0) w
  | [] -> Alcotest.fail "no decision under prefer-smaller");
  match winner_under Vv_ballot.Tie_break.Prefer_larger 1 with
  | w :: _ -> check opt_testable "larger convention" (o 1) w
  | [] -> Alcotest.fail "no decision under prefer-larger"

let test_scale_n40 () =
  (* A full Algorithm 1 instance at N = 40, t = f = 8 with a decisive
     electorate: correctness and bounded runtime at an order of magnitude
     above the paper's examples. *)
  let honest = Vv_analysis.Witness.inputs ~ag:28 ~bg:3 ~cg:1 in
  let r =
    Runner.simple ~protocol:Runner.Algo1 ~strategy:Strategy.Collude_second
      ~t:8 ~f:8 honest
  in
  check_bool "termination" true r.Runner.termination;
  check_bool "agreement" true r.Runner.agreement;
  check_bool "validity" true r.Runner.voting_validity;
  check_int "all honest decided" 32 (List.length r.Runner.outputs)

let test_tie_stalls_without_faults () =
  (* A_G = B_G: the Def III.3 premise fails; with delta_P = 0 no node sees a
     strict gap, so the protocol stalls rather than guess. *)
  let inputs = [ o 0; o 0; o 1; o 1 ] in
  let r = Runner.run (Runner.spec ~n:4 ~t:0 ~protocol:Runner.Algo1 inputs) in
  check_bool "stalled" true r.Runner.stalled;
  check_bool "validity vacuous" true r.Runner.voting_validity

(* --- property tests: the theorems themselves --- *)

let gen_scenario =
  (* Random honest inputs over <= 4 options plus a tolerance; returns
     (honest inputs as ints, t). *)
  QCheck.make
    ~print:(fun (l, t) -> Fmt.str "inputs=%a t=%d" Fmt.(Dump.list int) l t)
    QCheck.Gen.(
      let* ng = int_range 3 9 in
      let* l = list_size (return ng) (int_range 0 3) in
      let* t = int_range 0 2 in
      return (l, t))

let theorem9 =
  (* Theorem 9: whenever N > max{3t, 2t+2B_G+C_G} (with f = t Byzantine
     colluding on the runner-up), Algorithm 1 terminates with agreement and
     voting validity. *)
  QCheck.Test.make ~count:60 ~name:"Theorem 9: Algorithm 1 correct above bound"
    gen_scenario (fun (l, t) ->
      let honest = List.map o l in
      let n = List.length honest + t in
      QCheck.assume
        (Bounds.satisfied_for Bounds.Bft ~tie:Vv_ballot.Tie_break.default ~n ~t
           honest);
      let r =
        Runner.simple ~protocol:Runner.Algo1 ~strategy:Strategy.Collude_second
          ~t ~f:t honest
      in
      r.Runner.termination && r.Runner.agreement && r.Runner.voting_validity)

let theorem11 =
  QCheck.Test.make ~count:60
    ~name:"Theorem 11: SCT correct above its bound" gen_scenario (fun (l, t) ->
      let honest = List.map o l in
      let n = List.length honest + t in
      QCheck.assume
        (Bounds.satisfied_for Bounds.Sct ~tie:Vv_ballot.Tie_break.default ~n ~t
           honest);
      let r =
        Runner.simple ~protocol:Runner.Algo2_sct
          ~strategy:Strategy.Propose_second ~t ~f:t honest
      in
      r.Runner.termination && r.Runner.agreement && r.Runner.voting_validity)

let property5 =
  (* Property 5 / Definition V.1: REGARDLESS of the bound, SCT's output is
     the honest plurality or nothing. *)
  QCheck.Test.make ~count:100
    ~name:"Property 5: SCT safety-admissible everywhere" gen_scenario
    (fun (l, t) ->
      let honest = List.map o l in
      let r =
        Runner.simple ~protocol:Runner.Algo2_sct
          ~strategy:Strategy.Collude_second ~t ~f:t honest
      in
      let r2 =
        Runner.simple ~protocol:Runner.Algo2_sct
          ~strategy:Strategy.Propose_second ~t ~f:t honest
      in
      r.Runner.safety_admissible && r2.Runner.safety_admissible)

let incremental_equivalence =
  (* Algorithm 3 decides the same value as Algorithm 1 whenever both
     terminate (synchronous network). *)
  QCheck.Test.make ~count:60 ~name:"Algorithm 3 output matches Algorithm 1"
    gen_scenario (fun (l, t) ->
      let honest = List.map o l in
      let r1 =
        Runner.simple ~protocol:Runner.Algo1 ~strategy:Strategy.Collude_second
          ~t ~f:t honest
      in
      let r3 =
        Runner.simple ~protocol:Runner.Algo3_incremental
          ~strategy:Strategy.Collude_second ~t ~f:t honest
      in
      (not (r1.Runner.termination && r3.Runner.termination))
      || r1.Runner.outputs = r3.Runner.outputs)

let agreement_always_algo1 =
  (* Agreement must hold for Algorithm 1 whenever N > 3t even when the
     dispersion bound fails (Lemma 7 only needs N > 3t). *)
  QCheck.Test.make ~count:100 ~name:"Lemma 7: agreement whenever N > 3t"
    gen_scenario (fun (l, t) ->
      let honest = List.map o l in
      let n = List.length honest + t in
      QCheck.assume (n > 3 * t);
      let r =
        Runner.simple ~protocol:Runner.Algo1 ~strategy:Strategy.Split_top2 ~t
          ~f:t honest
      in
      r.Runner.agreement)

let theorem_algo4 =
  (* Algorithm 4's Inequality (15): above N > 2t + 2B_G + C_G, local
     broadcast voting is correct with f = t colluders even when N <= 3t. *)
  QCheck.Test.make ~count:60
    ~name:"Inequality 15: Algorithm 4 correct above its bound" gen_scenario
    (fun (l, t) ->
      let honest = List.map o l in
      let n = List.length honest + t in
      QCheck.assume
        (Bounds.satisfied_for Bounds.Cft ~tie:Vv_ballot.Tie_break.default ~n ~t
           honest);
      let r =
        Runner.simple ~protocol:Runner.Algo4_local
          ~strategy:Strategy.Collude_second ~t ~f:t honest
      in
      r.Runner.termination && r.Runner.agreement && r.Runner.voting_validity)

let gen_cft_scenario =
  (* Random honest inputs plus a random crash schedule: each crash node
     gets a crash round in the vote window and a random recipient subset. *)
  QCheck.make
    ~print:(fun (l, t, seed) ->
      Fmt.str "inputs=%a t=%d seed=%d" Fmt.(Dump.list int) l t seed)
    QCheck.Gen.(
      let* ng = int_range 3 8 in
      let* l = list_size (return ng) (int_range 0 2) in
      let* t = int_range 1 2 in
      let* seed = int_range 0 10_000 in
      return (l, t, seed))

let cft_crash_spec (l, t, seed) =
  let honest = List.map o l in
  let ng = List.length honest in
  let n = ng + t in
  let rng = Vv_prelude.Rng.create seed in
  let crash =
    List.init t (fun i ->
        let node = ng + i in
        let at_round = Vv_prelude.Rng.int rng 4 in
        let deliver_to =
          List.filter
            (fun _ -> Vv_prelude.Rng.bool rng)
            (List.init n Fun.id)
        in
        (node, at_round, deliver_to))
  in
  let inputs = honest @ List.init t (fun _ -> o 1) in
  Runner.spec ~crash ~protocol:Runner.Cft ~seed ~n ~t inputs

let lemma4_cft_validity =
  (* CFT voting under arbitrary mid-broadcast crash schedules (crash nodes
     prefer the runner-up — the Lemma 4 worst case).  Agreement always
     holds (N > 2t quorum intersection); termination AND voting validity
     hold whenever the Theorem 5 bound does.  Below the bound anything but
     disagreement may happen — crash faults defeat exactness just like
     Byzantine ones (the paper's "identical impossibility results"). *)
  QCheck.Test.make ~count:80 ~name:"Theorem 5: CFT correct above its bound"
    gen_cft_scenario (fun ((l, t, _) as sc) ->
      let honest = List.map o l in
      let n = List.length honest + t in
      let r = Runner.run (cft_crash_spec sc) in
      let bound_ok =
        Bounds.satisfied_for Bounds.Cft ~tie:Vv_ballot.Tie_break.default ~n ~t
          honest
      in
      r.Runner.agreement
      && ((not bound_ok) || (r.Runner.termination && r.Runner.voting_validity)))

let sct_incremental_safety =
  (* The combined variant (Section VII-A note): incremental trigger with
     delta_P = t keeps Definition V.1 everywhere. *)
  QCheck.Test.make ~count:60 ~name:"SCT-incremental safety-admissible"
    gen_scenario (fun (l, t) ->
      let honest = List.map o l in
      let r =
        Runner.simple ~protocol:Runner.Sct_incremental
          ~strategy:Strategy.Collude_second ~t ~f:t honest
      in
      r.Runner.safety_admissible)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      theorem9;
      theorem11;
      property5;
      incremental_equivalence;
      agreement_always_algo1;
      theorem_algo4;
      lemma4_cft_validity;
      sct_incremental_safety;
    ]

let () =
  Alcotest.run "core"
    [
      ( "bounds",
        [
          Alcotest.test_case "arithmetic" `Quick test_bounds_arithmetic;
          Alcotest.test_case "gaps and K" `Quick test_bounds_gap_and_k;
          Alcotest.test_case "decompose" `Quick test_bounds_decompose;
          Alcotest.test_case "max tolerable t" `Quick test_max_tolerable;
          Alcotest.test_case "incremental inequality (14)" `Quick
            test_incremental_inequality;
        ] );
      ( "algo1",
        [
          Alcotest.test_case "decides plurality" `Quick test_algo1_decides_plurality;
          Alcotest.test_case "all strategies above bound" `Quick
            test_algo1_all_strategies_hold;
          Alcotest.test_case "all BB substrates" `Quick test_algo1_all_bb_substrates;
          Alcotest.test_case "violation below bound (Lemma 2)" `Quick
            test_algo1_violation_below_bound;
          Alcotest.test_case "late collusion timing" `Quick
            test_algo1_late_collusion_timing;
          Alcotest.test_case "silent Byzantine speaker stalls" `Quick
            test_algo1_byzantine_speaker_silent;
        ] );
      ( "algo2-sct",
        [
          Alcotest.test_case "decides above bound" `Quick
            test_sct_decides_when_bound_holds;
          Alcotest.test_case "stalls, never lies, below bound" `Quick
            test_sct_stalls_not_lies_below_bound;
          Alcotest.test_case "resists forged proposes" `Quick
            test_sct_resists_forged_proposes;
        ] );
      ( "algo3-incremental",
        [
          Alcotest.test_case "matches Algorithm 1" `Quick
            test_incremental_matches_algo1;
          Alcotest.test_case "faster under staggered delays" `Quick
            test_incremental_under_staggered_delays;
        ] );
      ( "algo4-local",
        [
          Alcotest.test_case "works beyond 3t" `Quick test_algo4_beats_3t;
          Alcotest.test_case "equivocation rejected" `Quick
            test_algo4_rejects_equivocation;
        ] );
      ( "cft",
        [
          Alcotest.test_case "crash mid-vote tolerated" `Quick
            test_cft_with_crash_mid_vote;
          Alcotest.test_case "crash-only validity flip (Theorem 5)" `Quick
            test_cft_crash_flips_below_bound;
          Alcotest.test_case "stalls below bound (Lemma 4)" `Quick
            test_cft_stalls_below_bound;
        ] );
      ( "cross-cutting",
        [
          Alcotest.test_case "deterministic" `Quick test_runner_determinism;
          Alcotest.test_case "tie-break parameter end-to-end" `Quick
            test_tie_break_parameter_end_to_end;
          Alcotest.test_case "scale: N=40, t=8" `Quick test_scale_n40;
          Alcotest.test_case "tie stalls without faults" `Quick
            test_tie_stalls_without_faults;
        ] );
      ("theorems", qcheck_cases);
    ]
