(* Tests of the probability layer behind Figure 1: multinomial p.m.f.,
   exact enumeration, Monte-Carlo agreement, entropies, and profiles. *)

module M = Vv_dist.Multinomial
module Exact = Vv_dist.Exact
module Mc = Vv_dist.Montecarlo
module Entropy = Vv_dist.Entropy
module Profiles = Vv_dist.Profiles
module Rng = Vv_prelude.Rng

let check = Alcotest.check
let check_float eps = check (Alcotest.float eps)
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

let d ~n p = M.create ~n ~p

let test_create_validation () =
  Alcotest.check_raises "sum" (Invalid_argument "Multinomial.create: probabilities must sum to 1")
    (fun () -> ignore (d ~n:3 [| 0.5; 0.4 |]));
  Alcotest.check_raises "negative"
    (Invalid_argument "Multinomial.create: negative probability") (fun () ->
      ignore (d ~n:3 [| 1.5; -0.5 |]))

let test_pmf_binomial_case () =
  (* m = 2 reduces to a binomial: P(X1 = k) = C(n,k) p^k (1-p)^(n-k). *)
  let dist = d ~n:4 [| 0.25; 0.75 |] in
  check_float 1e-12 "P(0,4)" (0.75 ** 4.0) (M.pmf dist [| 0; 4 |]);
  check_float 1e-12 "P(2,2)"
    (6.0 *. (0.25 ** 2.0) *. (0.75 ** 2.0))
    (M.pmf dist [| 2; 2 |]);
  check_float 1e-12 "wrong total" 0.0 (M.pmf dist [| 1; 1 |])

let test_pmf_sums_to_one () =
  let dist = d ~n:10 [| 0.4; 0.3; 0.2; 0.1 |] in
  let total = M.fold_support dist ~init:0.0 ~f:(fun acc c -> acc +. M.pmf dist c) in
  check_float 1e-9 "sums to 1" 1.0 total

let test_support_size () =
  (* Compositions of 10 into 4 parts: C(13,3) = 286. *)
  let dist = d ~n:10 [| 0.25; 0.25; 0.25; 0.25 |] in
  let count = M.fold_support dist ~init:0 ~f:(fun acc _ -> acc + 1) in
  check_int "support size" 286 count

let test_sample_sums () =
  let dist = d ~n:10 [| 0.5; 0.3; 0.2 |] in
  let rng = Rng.create 1 in
  for _ = 1 to 100 do
    let c = M.sample dist rng in
    check_int "sums to n" 10 (Array.fold_left ( + ) 0 c)
  done

let test_top2_and_gap () =
  check (Alcotest.pair Alcotest.int Alcotest.int) "top2" (5, 3)
    (Exact.top2 [| 3; 5; 2; 0 |]);
  check_int "gap" 2 (Exact.gap [| 3; 5; 2; 0 |]);
  check_int "tie gap" 0 (Exact.gap [| 4; 4; 2 |]);
  check (Alcotest.pair Alcotest.int Alcotest.int) "single" (7, 0)
    (Exact.top2 [| 7 |])

let test_gap_distribution_sums () =
  let dist = Profiles.distribution Profiles.d3 in
  let g = Exact.gap_distribution dist in
  let total = Array.fold_left ( +. ) 0.0 g in
  check_float 1e-9 "gap dist sums to 1" 1.0 total

let test_pr_monotone_in_threshold () =
  let dist = Profiles.distribution Profiles.d2 in
  let prev = ref 1.1 in
  for t = 0 to 9 do
    let p = Exact.pr_gap_gt dist ~threshold:t in
    check_bool (Fmt.str "monotone at %d" t) true (p <= !prev +. 1e-12);
    prev := p
  done

let test_pr_t0_d1 () =
  (* With t = 0 the condition is a strict plurality; for the concentrated
     D1 this should be very likely. *)
  let dist = Profiles.distribution Profiles.d1 in
  let p = Exact.pr_voting_validity dist ~t:0 in
  check_bool "high for D1" true (p > 0.9)

let test_profile_ordering () =
  (* Entropy ordering D1 < D2 < D3 < D4 and success-probability ordering
     D1 > D2 > D3 > D4 at every t: the core of Figure 1(b). *)
  let entropies = List.map Profiles.initial_entropy Profiles.all in
  let rec ascending = function
    | a :: (b :: _ as rest) -> a < b && ascending rest
    | _ -> true
  in
  check_bool "H0 ascending" true (ascending entropies);
  for t = 0 to 4 do
    let ps =
      List.map
        (fun pr -> Exact.pr_voting_validity (Profiles.distribution pr) ~t)
        Profiles.all
    in
    let rec descending = function
      | a :: (b :: _ as rest) -> a >= b -. 1e-12 && descending rest
      | _ -> true
    in
    check_bool (Fmt.str "Pr descending at t=%d" t) true (descending ps)
  done

let test_montecarlo_matches_exact () =
  let dist = Profiles.distribution Profiles.d2 in
  let exact = Exact.pr_voting_validity dist ~t:1 in
  let est, hw =
    Mc.pr_voting_validity dist ~t:1 ~samples:20_000 ~rng:(Rng.create 9)
  in
  check_bool "within confidence" true (abs_float (est -. exact) < hw +. 0.01)

let test_sampler_goodness_of_fit () =
  (* Multinomial.sample's marginal for option 0 must match its Binomial
     p.m.f. by chi-square at significance 0.001. *)
  let dist = d ~n:6 [| 0.5; 0.3; 0.2 |] in
  let rng = Rng.create 4242 in
  let observed = Array.make 7 0 in
  for _ = 1 to 5000 do
    let c = M.sample dist rng in
    observed.(c.(0)) <- observed.(c.(0)) + 1
  done;
  (* Expected: Binomial(6, 0.5) probabilities for X_0 = 0..6. *)
  let binom k =
    let choose = [| 1.; 6.; 15.; 20.; 15.; 6.; 1. |] in
    choose.(k) *. (0.5 ** 6.0)
  in
  let expected_probs = Array.init 7 binom in
  check_bool "marginal matches binomial" true
    (Vv_prelude.Stats.chi_square_fits ~observed ~expected_probs)

let test_sample_inputs () =
  let dist = Profiles.distribution Profiles.d1 in
  let inputs = Mc.sample_inputs dist (Rng.create 3) in
  check_int "ten inputs" 10 (List.length inputs);
  List.iter
    (fun x ->
      let i = Vv_ballot.Option_id.to_int x in
      check_bool "in domain" true (i >= 0 && i < 4))
    inputs

let test_entropy_values () =
  check_float 1e-9 "uniform 4" 2.0 (Entropy.shannon [| 0.25; 0.25; 0.25; 0.25 |]);
  check_float 1e-9 "certain" 0.0 (Entropy.shannon [| 1.0; 0.0 |]);
  check_float 1e-9 "binary half" 1.0 (Entropy.binary 0.5);
  check_float 1e-9 "binary 0" 0.0 (Entropy.binary 0.0);
  check_float 1e-9 "H0 scale" 20.0 (Entropy.initial_system ~ng:10 [| 0.25; 0.25; 0.25; 0.25 |])

let test_system_entropy_shape () =
  (* Figure 1(c): H_s = 0 at f = 0, then jumps up. *)
  let dist = Profiles.distribution Profiles.d3 in
  check_float 1e-9 "f=0" 0.0 (Exact.system_entropy dist ~f:0);
  check_bool "f=1 positive" true (Exact.system_entropy dist ~f:1 > 0.0)

let test_expected_top2 () =
  let dist = Profiles.distribution Profiles.d4 in
  let ea, eb = Exact.expected_top2 dist in
  check_bool "EA >= EB" true (ea >= eb);
  check_bool "EA plausible" true (ea > 2.5 && ea < 10.0)

(* --- properties --- *)

let gen_probs =
  (* Random probability vector of 2..5 entries. *)
  QCheck.make
    ~print:(fun a -> Fmt.str "%a" Fmt.(Dump.array float) a)
    QCheck.Gen.(
      let* m = int_range 2 5 in
      let* raw = array_size (return m) (float_range 0.01 1.0) in
      let total = Array.fold_left ( +. ) 0.0 raw in
      let p = Array.map (fun x -> x /. total) raw in
      (* Renormalise exactly: fix the last entry to absorb rounding. *)
      let s = Array.fold_left ( +. ) 0.0 (Array.sub p 0 (m - 1)) in
      p.(m - 1) <- 1.0 -. s;
      return p)

let prop_pmf_nonnegative =
  QCheck.Test.make ~name:"pmf in [0,1] over random support points" gen_probs
    (fun p ->
      let dist = M.create ~n:6 ~p in
      M.fold_support dist ~init:true ~f:(fun acc c ->
          let v = M.pmf dist c in
          acc && v >= 0.0 && v <= 1.0 +. 1e-12))

let prop_pr_gap_gt_minus1_is_1 =
  QCheck.Test.make ~name:"Pr(gap > -1) = 1" gen_probs (fun p ->
      let dist = M.create ~n:6 ~p in
      abs_float (Exact.pr_gap_gt dist ~threshold:(-1) -. 1.0) < 1e-9)

let prop_sct_le_bft =
  QCheck.Test.make ~name:"Pr(SCT termination) <= Pr(BFT validity)" gen_probs
    (fun p ->
      let dist = M.create ~n:8 ~p in
      let rec all_t t =
        if t > 4 then true
        else
          Exact.pr_sct_termination dist ~t
          <= Exact.pr_voting_validity dist ~t +. 1e-12
          && all_t (t + 1)
      in
      all_t 0)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_pmf_nonnegative; prop_pr_gap_gt_minus1_is_1; prop_sct_le_bft ]

let () =
  Alcotest.run "dist"
    [
      ( "multinomial",
        [
          Alcotest.test_case "validation" `Quick test_create_validation;
          Alcotest.test_case "binomial special case" `Quick test_pmf_binomial_case;
          Alcotest.test_case "pmf sums to one" `Quick test_pmf_sums_to_one;
          Alcotest.test_case "support size" `Quick test_support_size;
          Alcotest.test_case "samples sum to n" `Quick test_sample_sums;
        ] );
      ( "exact",
        [
          Alcotest.test_case "top2 and gap" `Quick test_top2_and_gap;
          Alcotest.test_case "gap distribution sums" `Quick
            test_gap_distribution_sums;
          Alcotest.test_case "Pr monotone in t" `Quick test_pr_monotone_in_threshold;
          Alcotest.test_case "D1 t=0 high" `Quick test_pr_t0_d1;
          Alcotest.test_case "profile orderings (Fig 1b)" `Quick
            test_profile_ordering;
          Alcotest.test_case "expected top2" `Quick test_expected_top2;
        ] );
      ( "montecarlo",
        [
          Alcotest.test_case "matches exact" `Quick test_montecarlo_matches_exact;
          Alcotest.test_case "sampler goodness-of-fit" `Quick
            test_sampler_goodness_of_fit;
          Alcotest.test_case "sample inputs" `Quick test_sample_inputs;
        ] );
      ( "entropy",
        [
          Alcotest.test_case "values" `Quick test_entropy_values;
          Alcotest.test_case "system entropy shape (Fig 1c)" `Quick
            test_system_entropy_shape;
        ] );
      ("properties", qcheck_cases);
    ]
