(* Tests of the multi-shot voting ledger: speaker rotation, stall retries,
   electorate adjustment, and the ledger-level safety invariant. *)

module Oid = Vv_ballot.Option_id
module Ledger = Vv_multishot.Ledger
module Runner = Vv_core.Runner

let o = Oid.of_int
let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let opt_testable = Alcotest.testable Oid.pp Oid.equal

(* 6 honest nodes preferring a decisive winner per slot + 1 Byzantine. *)
let decisive_inputs winner =
  List.init 6 (fun i -> if i = 5 then o ((winner + 1) mod 3) else o winner)
  @ [ o 0 ]

let test_all_slots_decided () =
  let cfg = Ledger.config ~byzantine:[ 6 ] ~n:7 ~t:1 () in
  let ledger = Ledger.create cfg in
  for subject = 1 to 5 do
    ignore (Ledger.decide ledger ~subject (decisive_inputs (subject mod 3)))
  done;
  check_int "height" 5 (Ledger.height ledger);
  check_int "all committed" 5 (List.length (Ledger.committed ledger));
  check_bool "safety invariant" true (Ledger.all_committed_valid ledger);
  List.iteri
    (fun i (idx, v) ->
      check_int "indices in order" i idx;
      check opt_testable "decision matches electorate" (o ((i + 1) mod 3)) v)
    (Ledger.committed ledger)

let test_byzantine_speaker_rotated_past () =
  (* Node 0 is Byzantine and is the first speaker: slot 0 stalls under it
     and commits under speaker 1. *)
  let inputs = o 0 :: List.init 6 (fun _ -> o 1) in
  let cfg = Ledger.config ~byzantine:[ 0 ] ~n:7 ~t:1 () in
  let ledger = Ledger.create cfg in
  let slot = Ledger.decide ledger ~subject:9 inputs in
  check_bool "committed" true (slot.Ledger.decision <> None);
  check_int "second attempt" 2 slot.Ledger.attempts;
  check_int "speaker rotated" 1 slot.Ledger.speaker;
  check opt_testable "plurality" (o 1) (Option.get slot.Ledger.decision)

let test_thin_margin_adjusted () =
  (* SCT stalls on the thin electorate; Rotate_and_adjust converges. *)
  let inputs = List.map o [ 0; 0; 0; 1; 1; 2; 3 ] @ [ o 0; o 0 ] in
  let cfg =
    Ledger.config ~byzantine:[ 7; 8 ]
      ~retry:(Ledger.Rotate_and_adjust (Vv_core.Session.Bandwagon, 8)) ~n:9
      ~t:2 ()
  in
  let ledger = Ledger.create cfg in
  let slot = Ledger.decide ledger ~subject:1 inputs in
  check_bool "eventually committed" true (slot.Ledger.decision <> None);
  check_bool "needed retries" true (slot.Ledger.attempts > 1);
  check_bool "safety invariant" true (Ledger.all_committed_valid ledger)

let test_no_retry_skips () =
  let inputs = List.map o [ 0; 0; 0; 1; 1; 2; 3 ] @ [ o 0; o 0 ] in
  let cfg =
    Ledger.config ~byzantine:[ 7; 8 ] ~retry:Ledger.No_retry ~n:9 ~t:2 ()
  in
  let ledger = Ledger.create cfg in
  let slot = Ledger.decide ledger ~subject:1 inputs in
  check (Alcotest.option opt_testable) "skipped" None slot.Ledger.decision;
  check_int "single attempt" 1 slot.Ledger.attempts;
  check_int "nothing committed" 0 (List.length (Ledger.committed ledger));
  check_bool "safety invariant still holds" true
    (Ledger.all_committed_valid ledger)

let test_algo1_ledger_can_commit_invalid () =
  (* With Algorithm 1 instead of SCT, a thin slot commits the adversary's
     value and the ledger invariant reports it. *)
  let inputs = List.map o [ 0; 0; 0; 1; 1; 2; 3 ] @ List.init 3 (fun _ -> o 0) in
  let cfg =
    Ledger.config ~byzantine:[ 7; 8; 9 ] ~protocol:Runner.Algo1 ~n:10 ~t:3 ()
  in
  let ledger = Ledger.create cfg in
  let slot = Ledger.decide ledger ~subject:1 inputs in
  check_bool "committed" true (slot.Ledger.decision <> None);
  check_bool "flagged invalid" false slot.Ledger.valid;
  check_bool "invariant reports violation" false
    (Ledger.all_committed_valid ledger)

let test_crash_speaker_rotated_past () =
  (* Node 0 is an unreliable host that crashes at round 0 of every
     attempt; as first speaker it stalls slot 0, which then commits under
     speaker 1 (the crashed node is simply a silent participant there). *)
  let inputs = List.init 7 (fun _ -> o 1) in
  let cfg =
    Ledger.config ~crash:[ (0, 0, []) ] ~strategy:Vv_core.Strategy.Passive
      ~n:7 ~t:1 ()
  in
  let ledger = Ledger.create cfg in
  let slot = Ledger.decide ledger ~subject:4 inputs in
  check_bool "committed" true (slot.Ledger.decision <> None);
  check_int "second attempt" 2 slot.Ledger.attempts;
  check_int "rotated to node 1" 1 slot.Ledger.speaker;
  check_bool "safety" true (Ledger.all_committed_valid ledger)

let test_determinism () =
  let go () =
    let cfg = Ledger.config ~byzantine:[ 6 ] ~n:7 ~t:1 ~seed:77 () in
    let ledger = Ledger.create cfg in
    List.init 4 (fun s -> Ledger.decide ledger ~subject:s (decisive_inputs (s mod 2)))
  in
  check_bool "replays identically" true (go () = go ())

let test_validation () =
  Alcotest.check_raises "inputs arity"
    (Invalid_argument "Ledger.decide: inputs must have length n") (fun () ->
      let ledger = Ledger.create (Ledger.config ~n:5 ~t:1 ()) in
      ignore (Ledger.decide ledger ~subject:1 [ o 0 ]));
  Alcotest.check_raises "byz range"
    (Invalid_argument "Ledger.config: byzantine id out of range") (fun () ->
      ignore (Ledger.config ~byzantine:[ 9 ] ~n:5 ~t:1 ()))

let () =
  Alcotest.run "multishot"
    [
      ( "ledger",
        [
          Alcotest.test_case "all slots decided" `Quick test_all_slots_decided;
          Alcotest.test_case "byzantine speaker rotated past" `Quick
            test_byzantine_speaker_rotated_past;
          Alcotest.test_case "crash speaker rotated past" `Quick
            test_crash_speaker_rotated_past;
          Alcotest.test_case "thin margin adjusted (V-B)" `Quick
            test_thin_margin_adjusted;
          Alcotest.test_case "no-retry skips" `Quick test_no_retry_skips;
          Alcotest.test_case "algo1 ledger flags invalid commits" `Quick
            test_algo1_ledger_can_commit_invalid;
          Alcotest.test_case "deterministic" `Quick test_determinism;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
    ]
