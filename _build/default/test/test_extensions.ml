(* Tests of the library extensions: multi-round sessions (Section V-B),
   approval voting, and multi-dimensional voting validity. *)

module Oid = Vv_ballot.Option_id
module Runner = Vv_core.Runner
module Session = Vv_core.Session
module Strategy = Vv_core.Strategy
module Multidim = Vv_core.Multidim

let o = Oid.of_int
let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let opt_testable = Alcotest.testable Oid.pp Oid.equal

(* --- Session --- *)

let thin_inputs = List.map o [ 0; 0; 0; 1; 1; 2; 3 ]

let test_session_single_round_when_decisive () =
  let honest = List.map o [ 0; 0; 0; 0; 0; 0; 1 ] in
  let r = Session.run ~t:1 ~f:1 honest in
  check_int "one session" 1 r.Session.sessions_used;
  check (Alcotest.option opt_testable) "decided leader" (Some (o 0))
    r.Session.decided

let test_session_revote_until_decided () =
  (* SCT stalls on the thin Section-I inputs at t = 2; bandwagon adjustment
     concentrates support until the gap clears 2t. *)
  let r =
    Session.run ~policy:Session.Bandwagon ~max_sessions:8 ~t:2 ~f:2
      thin_inputs
  in
  check_bool "eventually decided" true (r.Session.decided <> None);
  check_bool "took more than one session" true (r.Session.sessions_used > 1);
  (* Every attempt that terminated must satisfy voting validity for the
     inputs *of that attempt* (exactness is never sacrificed). *)
  List.iter
    (fun (a : Session.attempt) ->
      if a.Session.outcome.Runner.termination then
        check_bool "attempt valid" true
          a.Session.outcome.Runner.voting_validity_tb)
    r.Session.attempts

let test_session_respects_max () =
  (* A dead tie never resolves under Abandon_third (both options are in the
     top two, nobody moves). *)
  let tied = List.map o [ 0; 0; 1; 1 ] in
  let r =
    Session.run ~policy:Session.Abandon_third ~max_sessions:3 ~t:1 ~f:1 tied
  in
  check_int "hit the cap" 3 r.Session.sessions_used;
  check (Alcotest.option opt_testable) "no decision" None r.Session.decided

let test_adjust_abandon_third () =
  let rng = Vv_prelude.Rng.create 4 in
  let inputs = List.map o [ 0; 0; 0; 1; 1; 2; 3 ] in
  let adjusted =
    Session.adjust ~tie:Vv_ballot.Tie_break.default ~rng Session.Abandon_third
      inputs
  in
  check_int "same electorate size" (List.length inputs) (List.length adjusted);
  (* No third options remain; top-two voters kept their choice. *)
  List.iter
    (fun v -> check_bool "top-two only" true (Oid.to_int v <= 1))
    adjusted;
  List.iteri
    (fun i v ->
      if Oid.to_int (List.nth inputs i) <= 1 then
        check opt_testable "loyal voter untouched" (List.nth inputs i) v)
    adjusted

let test_adjust_custom () =
  let rng = Vv_prelude.Rng.create 4 in
  let everyone_leader =
    Session.Custom (fun ~rng:_ ~leader ~runner_up:_ _ -> leader)
  in
  let adjusted =
    Session.adjust ~tie:Vv_ballot.Tie_break.default ~rng everyone_leader
      thin_inputs
  in
  List.iter (fun v -> check opt_testable "all leader" (o 0) v) adjusted

(* --- Approval voting --- *)

module Approval = Vv_core.Approval.Make (Vv_bb.Plain)

let run_approval ?(collude = true) ?(quorum_gap = 0) ~n ~t ~byz approvals =
  let cfg = Vv_sim.Config.with_byzantine ~n ~t_max:t byz () in
  Approval.execute cfg ~speaker:0 ~subject:1
    ~approvals:(fun id -> approvals id)
    ~quorum_gap ~collude ()

let test_approval_plain_majority () =
  (* 6 honest voters; options {0,1,2}.  Everyone approves 0 plus a side
     option: option 0 collects 6 endorsements, others at most 3. *)
  let approvals id = [ o 0; o (1 + (id mod 2)) ] in
  let r = run_approval ~n:7 ~t:1 ~byz:[ 6 ] approvals in
  check_bool "not stalled" false r.Vv_core.Approval.stalled;
  List.iter
    (fun out ->
      check (Alcotest.option opt_testable) "winner 0" (Some (o 0)) out)
    r.Vv_core.Approval.outputs

let test_approval_collusion_cannot_flip_wide_gap () =
  (* Endorsements: 0 -> 6, 1 -> 2; gap 4 > t = 1 even after a colluding
     endorsement lands on 1. *)
  let approvals id = if id < 2 then [ o 0; o 1 ] else [ o 0 ] in
  let r = run_approval ~n:7 ~t:1 ~byz:[ 6 ] approvals in
  List.iter
    (fun out ->
      check (Alcotest.option opt_testable) "winner intact" (Some (o 0)) out)
    r.Vv_core.Approval.outputs

let test_approval_thin_gap_attackable () =
  (* Endorsements: 0 -> 4, 1 -> 3 (gap 1 = t): the colluder closes it. *)
  let approvals id = if id < 3 then [ o 0; o 1 ] else [ o 0 ] in
  let r = run_approval ~n:5 ~t:1 ~byz:[ 4 ] approvals in
  let honest_approvals = List.init 4 approvals in
  let exact =
    Vv_core.Approval.approval_validity ~tie:Vv_ballot.Tie_break.default
      ~honest_approvals ~outputs:r.Vv_core.Approval.outputs
  in
  let terminated =
    List.for_all Option.is_some r.Vv_core.Approval.outputs
  in
  check_bool "exactness lost below the bound" false (exact && terminated)

let test_approval_duplicate_endorsements_ignored () =
  (* A voter listing an option twice endorses it once. *)
  let approvals id = if id = 0 then [ o 0; o 0; o 0 ] else [ o 0; o 1 ] in
  let r = run_approval ~collude:false ~n:5 ~t:1 ~byz:[ 4 ] approvals in
  List.iter
    (fun out -> check (Alcotest.option opt_testable) "winner 0" (Some (o 0)) out)
    r.Vv_core.Approval.outputs

let test_approval_rejects_empty_set () =
  Alcotest.check_raises "empty approval set"
    (Invalid_argument "Approval: empty approval set") (fun () ->
      ignore (run_approval ~collude:false ~n:4 ~t:0 ~byz:[] (fun _ -> [])))

(* --- Quittable consensus --- *)

let test_quittable_decides_above_bound () =
  let honest = List.map o [ 0; 0; 0; 0; 0; 0; 1 ] in
  let r = Vv_core.Quittable.run ~t:1 ~f:1 honest in
  check_bool "terminates" true r.Vv_core.Quittable.termination;
  check_bool "agreement" true r.Vv_core.Quittable.agreement;
  check_bool "no quit" false r.Vv_core.Quittable.quit;
  check_bool "keeps plurality meaning" true r.Vv_core.Quittable.plurality_meaning;
  List.iter
    (fun v -> check_bool "value A" true (v = Vv_core.Quittable.Value (o 0)))
    r.Vv_core.Quittable.verdicts

let test_quittable_quits_below_bound () =
  (* The Section V objection, executed: SCT would stall; quittable
     consensus terminates on Q — but a strict honest plurality existed,
     so the output carries no plurality meaning. *)
  let r = Vv_core.Quittable.run ~t:3 ~f:3 thin_inputs in
  check_bool "terminates (on Q)" true r.Vv_core.Quittable.termination;
  check_bool "agreement extends to Q" true r.Vv_core.Quittable.agreement;
  check_bool "quit" true r.Vv_core.Quittable.quit;
  check_bool "plurality meaning lost" false
    r.Vv_core.Quittable.plurality_meaning

(* --- Multi-dimensional voting --- *)

let test_multidim_decides_vectors () =
  (* 7 honest voters over 2 coordinates, both decisive. *)
  let inputs =
    List.init 7 (fun i -> [ o 0; o (if i = 6 then 2 else 1) ])
  in
  let r = Multidim.run ~t:1 ~f:1 inputs in
  check_bool "termination" true r.Multidim.termination;
  check_bool "validity" true r.Multidim.voting_validity;
  check
    (Alcotest.list (Alcotest.option opt_testable))
    "vector" [ Some (o 0); Some (o 1) ] r.Multidim.output_vector

let test_multidim_coordinate_stall_isolated () =
  (* Coordinate 0 decisive, coordinate 1 tied: with SCT only coordinate 1
     stalls, and safety holds everywhere. *)
  let inputs =
    [ [ o 0; o 0 ]; [ o 0; o 0 ]; [ o 0; o 1 ]; [ o 0; o 1 ] ]
  in
  let r = Multidim.run ~protocol:Runner.Algo2_sct ~t:1 ~f:1 inputs in
  check_bool "not all terminated" false r.Multidim.termination;
  check_bool "safety everywhere" true r.Multidim.safety_admissible;
  (match r.Multidim.output_vector with
  | [ Some v; None ] -> check opt_testable "decisive coordinate" (o 0) v
  | other ->
      Alcotest.failf "unexpected vector %a"
        Fmt.(Dump.list (Dump.option Oid.pp))
        other)

let test_multidim_validation () =
  Alcotest.check_raises "ragged" (Invalid_argument "Multidim.run: ragged preference vectors")
    (fun () -> ignore (Multidim.run ~t:0 ~f:0 [ [ o 0 ]; [ o 0; o 1 ] ]));
  Alcotest.check_raises "empty" (Invalid_argument "Multidim.run: no voters")
    (fun () -> ignore (Multidim.run ~t:0 ~f:0 []))

(* --- properties --- *)

let gen_session_inputs =
  QCheck.make
    ~print:(fun l -> Fmt.str "%a" Fmt.(Dump.list int) l)
    QCheck.Gen.(list_size (int_range 4 10) (int_range 0 3))

let prop_session_never_lies =
  (* Whatever happens across revote rounds, a terminated SCT attempt always
     satisfies voting validity for that round's electorate. *)
  QCheck.Test.make ~count:40 ~name:"sessions preserve exactness"
    gen_session_inputs (fun l ->
      let inputs = List.map o l in
      let r =
        Session.run ~policy:Session.Bandwagon ~max_sessions:4 ~t:1 ~f:1 inputs
      in
      List.for_all
        (fun (a : Session.attempt) ->
          (not a.Session.outcome.Runner.termination)
          || a.Session.outcome.Runner.voting_validity_tb)
        r.Session.attempts)

let prop_adjust_preserves_size =
  QCheck.Test.make ~count:60 ~name:"adjustment preserves electorate size"
    gen_session_inputs (fun l ->
      let inputs = List.map o l in
      let rng = Vv_prelude.Rng.create 9 in
      List.length
        (Session.adjust ~tie:Vv_ballot.Tie_break.default ~rng
           Session.Abandon_third inputs)
      = List.length inputs)

let prop_multidim_matches_per_coordinate =
  QCheck.Test.make ~count:30 ~name:"multidim = per-coordinate runs"
    QCheck.(pair gen_session_inputs gen_session_inputs)
    (fun (c0, c1) ->
      QCheck.assume (List.length c0 = List.length c1);
      let inputs = List.map2 (fun a b -> [ o a; o b ]) c0 c1 in
      let r = Multidim.run ~seed:42 ~t:1 ~f:1 inputs in
      List.length r.Multidim.per_coordinate = 2)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_session_never_lies;
      prop_adjust_preserves_size;
      prop_multidim_matches_per_coordinate;
    ]

let () =
  Alcotest.run "extensions"
    [
      ( "session",
        [
          Alcotest.test_case "single round when decisive" `Quick
            test_session_single_round_when_decisive;
          Alcotest.test_case "revotes until decided (Section V-B)" `Quick
            test_session_revote_until_decided;
          Alcotest.test_case "respects max sessions" `Quick
            test_session_respects_max;
          Alcotest.test_case "abandon-third adjustment" `Quick
            test_adjust_abandon_third;
          Alcotest.test_case "custom adjustment" `Quick test_adjust_custom;
        ] );
      ( "approval",
        [
          Alcotest.test_case "plain majority of endorsements" `Quick
            test_approval_plain_majority;
          Alcotest.test_case "wide gap resists collusion" `Quick
            test_approval_collusion_cannot_flip_wide_gap;
          Alcotest.test_case "thin gap attackable" `Quick
            test_approval_thin_gap_attackable;
          Alcotest.test_case "duplicate endorsements ignored" `Quick
            test_approval_duplicate_endorsements_ignored;
          Alcotest.test_case "empty set rejected" `Quick
            test_approval_rejects_empty_set;
        ] );
      ( "quittable",
        [
          Alcotest.test_case "decides above bound" `Quick
            test_quittable_decides_above_bound;
          Alcotest.test_case "quits below bound (Section V objection)" `Quick
            test_quittable_quits_below_bound;
        ] );
      ( "multidim",
        [
          Alcotest.test_case "decides vectors" `Quick test_multidim_decides_vectors;
          Alcotest.test_case "coordinate stall isolated" `Quick
            test_multidim_coordinate_stall_isolated;
          Alcotest.test_case "validation" `Quick test_multidim_validation;
        ] );
      ("properties", qcheck_cases);
    ]
