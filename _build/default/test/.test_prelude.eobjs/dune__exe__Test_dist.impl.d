test/test_dist.ml: Alcotest Array Dump Fmt List QCheck QCheck_alcotest Vv_ballot Vv_dist Vv_prelude
