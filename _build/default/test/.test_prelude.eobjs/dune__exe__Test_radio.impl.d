test/test_radio.ml: Alcotest List QCheck QCheck_alcotest Vv_ballot Vv_radio
