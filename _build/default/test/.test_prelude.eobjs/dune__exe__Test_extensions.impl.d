test/test_extensions.ml: Alcotest Dump Fmt List Option QCheck QCheck_alcotest Vv_ballot Vv_bb Vv_core Vv_prelude Vv_sim
