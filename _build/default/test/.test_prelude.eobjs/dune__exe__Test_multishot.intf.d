test/test_multishot.mli:
