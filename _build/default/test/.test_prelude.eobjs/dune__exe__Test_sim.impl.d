test/test_sim.ml: Adversary Alcotest Config Delay Engine Fault List Metrics Protocol Types Vv_sim
