test/test_baselines.ml: Alcotest Array Config Dump Fault Fmt Fun List QCheck QCheck_alcotest Vv_analysis Vv_baselines Vv_sim
