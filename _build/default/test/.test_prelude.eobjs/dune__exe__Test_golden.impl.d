test/test_golden.ml: Alcotest Float List Vv_analysis Vv_ballot Vv_core Vv_dist Vv_prelude
