test/test_bb.ml: Adversary Alcotest Array Config Delay Engine Fault Fmt List Option Vv_bb Vv_sim
