test/test_ballot.ml: Alcotest Dump Fmt List Option_id QCheck QCheck_alcotest Tally Tie_break Validity Vv_ballot Weighted
