test/test_analysis.ml: Alcotest Fmt List Vv_analysis Vv_ballot Vv_core Vv_prelude
