test/test_prelude.ml: Alcotest Array Fun Gen List QCheck QCheck_alcotest String Vv_prelude
