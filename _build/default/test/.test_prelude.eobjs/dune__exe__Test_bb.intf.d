test/test_bb.mli:
