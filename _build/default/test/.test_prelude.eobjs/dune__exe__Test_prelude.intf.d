test/test_prelude.mli:
