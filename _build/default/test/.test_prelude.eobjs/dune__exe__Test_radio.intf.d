test/test_radio.mli:
