test/test_analysis.mli:
