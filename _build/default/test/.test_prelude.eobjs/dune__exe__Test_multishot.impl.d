test/test_multishot.ml: Alcotest List Option Vv_ballot Vv_core Vv_multishot
