test/test_ballot.mli:
