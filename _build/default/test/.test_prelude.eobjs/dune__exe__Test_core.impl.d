test/test_core.ml: Alcotest Dump Fmt Fun List QCheck QCheck_alcotest Vv_analysis Vv_ballot Vv_bb Vv_core Vv_prelude Vv_sim
