(* Quickstart: the Section III-A leadership election.

   Seven nodes elect a leader among Alice, Bob and Carol.  Three honest
   voters support Alice, two Bob, one Carol — and one Byzantine node tries
   to swing the election to Bob.  Run with:

     dune exec examples/quickstart.exe *)

module Oid = Vv_ballot.Option_id
module Runner = Vv_core.Runner
module Strategy = Vv_core.Strategy

let alice = Oid.of_int 0
let bob = Oid.of_int 1
let carol = Oid.of_int 2

let name_of o =
  if Oid.equal o alice then "Alice"
  else if Oid.equal o bob then "Bob"
  else if Oid.equal o carol then "Carol"
  else "?"

let () =
  Fmt.pr "== Quickstart: leadership election (Section III-A) ==@.@.";
  let honest = [ alice; alice; alice; bob; bob; carol ] in
  Fmt.pr "Honest preferences: %a@."
    Fmt.(list ~sep:sp (using name_of string))
    honest;
  Fmt.pr "One Byzantine node colludes for the runner-up (Bob).@.@.";

  (* N = 7 nodes, tolerance t = 1, the Byzantine node is node 6.  Node 0 is
     the speaker: it reliably broadcasts the election subject; then all
     nodes vote, propose their local plurality, and decide on a quorum of
     N - t matching proposes (Algorithm 1). *)
  let result =
    Runner.simple ~protocol:Runner.Algo1 ~strategy:Strategy.Collude_second
      ~t:1 ~f:1 honest
  in

  List.iteri
    (fun i out ->
      Fmt.pr "node %d decided: %s@." i
        (match out with None -> "(undecided)" | Some v -> name_of v))
    result.Runner.outputs;

  Fmt.pr "@.termination: %b, agreement: %b, voting validity: %b@."
    result.Runner.termination result.Runner.agreement
    result.Runner.voting_validity;
  Fmt.pr "rounds: %d, honest messages: %d, Byzantine messages: %d@."
    result.Runner.rounds result.Runner.honest_msgs result.Runner.byz_msgs;

  (* Why it is safe: A_G - B_G = 3 - 2 = 1 <= t would be attackable, but
     here the adversary adds one vote to Bob: views show Alice 3, Bob 3 —
     wait, that is a tie!  Check the bound machinery. *)
  (match
     Vv_core.Bounds.decompose ~tie:Vv_ballot.Tie_break.default honest
   with
  | Some (w, ag, bg, cg) ->
      Fmt.pr "@.honest tally: plurality=%s, A_G=%d, B_G=%d, C_G=%d@."
        (name_of w) ag bg cg;
      Fmt.pr "BFT bound 2t+2B_G+C_G = %d; N = 7 — satisfied: %b@."
        (Vv_core.Bounds.validity_bound ~t:1 ~bg ~cg)
        (Vv_core.Bounds.satisfied Vv_core.Bounds.Bft ~n:7 ~t:1 ~bg ~cg)
  | None -> ());

  if not result.Runner.termination then
    Fmt.pr
      "@.The gap A_G - B_G = 1 equals t: the Byzantine vote ties the ballot \
       and the protocol refuses to guess (Lemma 2 in action).@."
  else Fmt.pr "@.Alice wins: the exact plurality of honest votes.@.";

  (* Second round, as Section V-B suggests: the Carol supporter reconsiders
     and backs Alice, widening the gap beyond t. *)
  Fmt.pr "@.-- second round: Carol's supporter switches to Alice --@.@.";
  let honest2 = [ alice; alice; alice; alice; bob; bob ] in
  let result2 =
    Runner.simple ~protocol:Runner.Algo1 ~strategy:Strategy.Collude_second
      ~t:1 ~f:1 honest2
  in
  List.iteri
    (fun i out ->
      Fmt.pr "node %d decided: %s@." i
        (match out with None -> "(undecided)" | Some v -> name_of v))
    result2.Runner.outputs;
  Fmt.pr "@.termination: %b, agreement: %b, voting validity: %b@."
    result2.Runner.termination result2.Runner.agreement
    result2.Runner.voting_validity;
  assert (result2.Runner.termination && result2.Runner.voting_validity);
  Fmt.pr "A_G - B_G = 2 > t = 1: Alice's win is now exact and unstoppable.@."
