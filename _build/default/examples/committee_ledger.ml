(* A governance committee deciding a sequence of motions (multi-shot).

   Nine council nodes (two compromised) vote on a series of motions; each
   motion is one voting-validity instance appended to a ledger.  The
   safety-guaranteed protocol underneath means the ledger NEVER records a
   decision that is not the exact plurality of honest preferences: thin
   motions are retried under rotating speakers with electorate adjustment
   (Section V-B), or skipped.

     dune exec examples/committee_ledger.exe *)

module Oid = Vv_ballot.Option_id
module Ledger = Vv_multishot.Ledger

let options = [| "approve"; "reject"; "amend"; "defer" |]
let name_of o = options.(Oid.to_int o)

let motions =
  [
    (* (title, honest preferences over approve/reject/amend/defer) *)
    ("M1: adopt budget", [ 0; 0; 0; 0; 0; 1; 2 ]);
    ("M2: elect auditor", [ 1; 1; 1; 1; 0; 0; 2 ]);
    ("M3: contested bylaw", [ 0; 0; 0; 1; 1; 2; 3 ]);
    ("M4: renew mandate", [ 0; 0; 0; 0; 0; 0; 0 ]);
  ]

let () =
  Fmt.pr "== Committee ledger: 9 nodes, 2 compromised, SCT underneath ==@.@.";
  let cfg =
    Ledger.config ~byzantine:[ 7; 8 ]
      ~retry:(Ledger.Rotate_and_adjust (Vv_core.Session.Bandwagon, 6)) ~n:9
      ~t:2 ()
  in
  let ledger = Ledger.create cfg in
  List.iteri
    (fun i (title, prefs) ->
      let inputs = List.map Oid.of_int prefs @ [ Oid.of_int 0; Oid.of_int 0 ] in
      Fmt.pr "%-22s honest: %a@." title
        Fmt.(list ~sep:sp (using name_of string))
        (List.map Oid.of_int prefs);
      let slot = Ledger.decide ledger ~subject:(i + 1) inputs in
      Fmt.pr "  -> %a@.@." Ledger.pp_slot slot)
    motions;
  Fmt.pr "ledger height: %d, committed: %d@." (Ledger.height ledger)
    (List.length (Ledger.committed ledger));
  Fmt.pr "every committed decision is the exact honest plurality: %b@."
    (Ledger.all_committed_valid ledger);
  assert (Ledger.all_committed_valid ledger)
