(* Plurality vs median on a sensor swarm (Section I's comparison).

   A swarm of 11 drones must decide which of four grid cells contains a
   fire (a categorical decision — voting validity territory) and also agree
   on a representative temperature reading (a continuous statistic — median
   validity territory).  Two drones are compromised.  This example shows
   each tool succeeding on its own turf and failing on the other's:

   - on the categorical question, Algorithm 1 returns the exact honest
     plurality while the median of cell indices is meaningless;
   - on the continuous question, Algorithm 1 has no plurality to find
     (readings are all distinct) while the median baseline lands within a
     sensor-noise margin of the true median despite Byzantine outliers.

     dune exec examples/sensor_swarm.exe *)

module Oid = Vv_ballot.Option_id
module Runner = Vv_core.Runner
module Strategy = Vv_core.Strategy
module Rng = Vv_prelude.Rng

let cells = [| "NW"; "NE"; "SW"; "SE" |]

let () =
  Fmt.pr "== Sensor swarm: 11 drones, 2 compromised ==@.@.";
  let rng = Rng.create 77 in
  let t = 2 in

  (* --- categorical: which cell is on fire? --- *)
  let honest_cells =
    List.init 9 (fun _ ->
        let r = Rng.float rng in
        if r < 0.67 then Oid.of_int 2 (* SW, the true fire cell *)
        else Oid.of_int (Rng.int rng 4))
  in
  Fmt.pr "fire-cell classifications: %a@."
    Fmt.(list ~sep:sp (using (fun o -> cells.(Oid.to_int o)) string))
    honest_cells;
  let r =
    Runner.simple ~protocol:Runner.Algo1 ~strategy:Strategy.Collude_second ~t
      ~f:t honest_cells
  in
  (match List.filter_map Fun.id r.Runner.outputs with
  | cell :: _ ->
      Fmt.pr "swarm dispatches to: %s (voting validity: %b)@.@."
        cells.(Oid.to_int cell) r.Runner.voting_validity
  | [] -> Fmt.pr "swarm could not decide (margin below tolerance)@.@.");

  (* --- continuous: agree on a representative temperature --- *)
  let readings = Array.init 9 (fun i -> 400 + (3 * i) + Rng.int rng 5) in
  Fmt.pr "temperature readings (honest): %a  + 2 Byzantine outliers@."
    Fmt.(array ~sep:sp int)
    readings;
  let sorted = Array.copy readings in
  Array.sort compare sorted;
  let true_median = sorted.(4) in
  let cfg = Vv_sim.Config.with_byzantine ~n:11 ~t_max:t [ 9; 10 ] () in
  let m =
    Vv_analysis.Baseline_runner.run_median cfg
      ~inputs:(fun id -> readings.(min id 8))
      ~collude:true
  in
  (match List.filter_map Fun.id m.Vv_analysis.Baseline_runner.outputs with
  | out :: _ ->
      Fmt.pr "median baseline agrees on: %d (true honest median %d, err %d)@."
        out true_median (abs (out - true_median))
  | [] -> Fmt.pr "median baseline failed@.");

  (* Algorithm 1 on the same continuous data: every reading distinct, no
     plurality exists, the protocol correctly refuses (or the adversary
     drags it to an arbitrary reading — never a *wrong plurality*, but
     useless as a statistic). *)
  let r2 =
    Runner.simple ~protocol:Runner.Algo2_sct ~strategy:Strategy.Collude_second
      ~t ~f:t
      (Array.to_list (Array.map Oid.of_int readings))
  in
  Fmt.pr
    "SCT voting on raw readings: terminated=%b (no plurality to find — the \
     safety-guaranteed protocol refuses to fabricate one)@."
    r2.Runner.termination;

  Fmt.pr
    "@.Moral: plurality consensus and median consensus answer different \
     questions; the paper gives exactness guarantees for the former.@."
