examples/drone_relay.ml: Array Fmt Fun List Vv_ballot Vv_radio
