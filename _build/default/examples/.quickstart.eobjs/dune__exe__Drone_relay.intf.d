examples/drone_relay.mli:
