examples/quickstart.mli:
