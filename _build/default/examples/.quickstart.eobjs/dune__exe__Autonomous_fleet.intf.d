examples/autonomous_fleet.mli:
