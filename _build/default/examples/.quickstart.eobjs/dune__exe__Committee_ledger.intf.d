examples/committee_ledger.mli:
