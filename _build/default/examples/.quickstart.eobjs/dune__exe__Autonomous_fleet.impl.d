examples/autonomous_fleet.ml: Array Fmt List Vv_ballot Vv_core Vv_prelude Vv_sim
