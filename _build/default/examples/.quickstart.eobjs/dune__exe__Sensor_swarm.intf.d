examples/sensor_swarm.mli:
