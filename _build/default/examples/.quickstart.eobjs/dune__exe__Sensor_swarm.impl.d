examples/sensor_swarm.ml: Array Fmt Fun List Vv_analysis Vv_ballot Vv_core Vv_prelude Vv_sim
