examples/quickstart.ml: Fmt List Vv_ballot Vv_core
