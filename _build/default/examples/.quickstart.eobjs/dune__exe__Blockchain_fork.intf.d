examples/blockchain_fork.mli:
