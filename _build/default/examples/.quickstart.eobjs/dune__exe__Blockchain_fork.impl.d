examples/blockchain_fork.ml: Array Fmt Fun List Vv_ballot Vv_core
