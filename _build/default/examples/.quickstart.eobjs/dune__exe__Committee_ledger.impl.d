examples/committee_ledger.ml: Array Fmt List Vv_ballot Vv_core Vv_multishot
