(* Multi-hop voting in a drone swarm (radio extension).

   Twelve survey drones fly a ring formation; radio range reaches only the
   two nearest neighbours on each side (a k=2 ring).  The swarm votes on
   the next survey sector.  Messages hop drone-to-drone: the flooding
   generalisation of Algorithm 4 keeps the vote exact as long as the
   honest subgraph stays connected, and a crashed relay mid-flood is
   tolerated.

     dune exec examples/drone_relay.exe *)

module Oid = Vv_ballot.Option_id
module T = Vv_radio.Topology
module R = Vv_radio.Radio_runner

let sectors = [| "north-ridge"; "river-bend"; "east-flats"; "return-home" |]
let name_of o = sectors.(Oid.to_int o)

let () =
  Fmt.pr "== Drone swarm: 12 drones on a k=2 ring, one compromised ==@.@.";
  let topo = T.ring ~k:2 12 in
  Fmt.pr "radio topology: ring, degree %d, diameter %d hops@.@."
    (T.degree topo 0) (T.diameter topo);

  (* Preferences from battery level and survey progress. *)
  let prefs = [ 0; 0; 0; 1; 0; 2; 0; 1; 0; 0; 0; 0 ] in
  let inputs = List.map Oid.of_int prefs in
  Fmt.pr "drone preferences: %a@."
    Fmt.(list ~sep:sp (using name_of string))
    inputs;
  Fmt.pr "drone 11 is compromised and pushes the runner-up sector.@.@.";

  let r =
    R.run ~strategy:R.Originate_second ~topology:topo ~t:1 ~byzantine:[ 11 ]
      inputs
  in
  (match List.filter_map Fun.id r.R.outputs with
  | sector :: _ ->
      Fmt.pr "swarm heads to: %s@." (name_of sector);
      Fmt.pr "termination=%b validity=%b rounds=%d messages=%d@.@."
        r.R.termination r.R.voting_validity r.R.rounds r.R.messages
  | [] -> Fmt.pr "swarm could not decide@.@.");
  assert (r.R.termination && r.R.voting_validity);

  (* A relay drone dies mid-flood on top of the compromised one — so the
     swarm must have been provisioned with t = 2.  The k=2 ring stays
     connected after the loss and the vote still concludes exactly. *)
  Fmt.pr "-- drone 6 loses power while relaying (crash mid-broadcast, \
          t=2 provisioning) --@.@.";
  let r2 =
    R.run ~strategy:R.Originate_second ~topology:topo ~t:2 ~byzantine:[ 11 ]
      ~crash:[ (6, 2, [ 4 ]) ]
      inputs
  in
  Fmt.pr "termination=%b validity=%b rounds=%d (residual ring still \
          connected)@.@."
    r2.R.termination r2.R.voting_validity r2.R.rounds;
  assert (r2.R.termination && r2.R.voting_validity);

  (* Compare the radio cost against flying within mutual range (complete
     graph): fewer hops, more receivers per transmission. *)
  let r3 =
    R.run ~strategy:R.Originate_second ~topology:(T.complete 12) ~t:1
      ~byzantine:[ 11 ] inputs
  in
  Fmt.pr "cost: ring %d rounds / %d msgs vs tight formation %d rounds / %d \
          msgs@."
    r.R.rounds r.R.messages r3.R.rounds r3.R.messages
