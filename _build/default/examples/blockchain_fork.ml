(* Fork resolution and leader election at the wireless edge (Section I-B).

   Nine edge validators share a radio channel (the local broadcast model:
   a transmission is heard identically by everyone, so a Byzantine node
   cannot equivocate).  Two chain tips compete after a fork; validators
   vote for the tip they saw first.  Under point-to-point assumptions the
   system would need N > 3t; over the radio channel Algorithm 4 only needs
   N > 2t + 2B_G + C_G, so 9 validators tolerate t = 3 compromised ones.

     dune exec examples/blockchain_fork.exe *)

module Oid = Vv_ballot.Option_id
module Runner = Vv_core.Runner
module Strategy = Vv_core.Strategy
module Bounds = Vv_core.Bounds

let tip = [| "tip-7f3a"; "tip-c41d"; "tip-e902" |]
let name_of o = tip.(Oid.to_int o)

let () =
  Fmt.pr "== Edge blockchain: fork resolution over a radio channel ==@.@.";
  let t = 3 in
  (* Six honest validators: five saw tip-7f3a first, one saw tip-c41d. *)
  let honest = List.map Oid.of_int [ 0; 0; 0; 0; 0; 1 ] in
  Fmt.pr "honest first-seen tips: %a@."
    Fmt.(list ~sep:sp (using name_of string))
    honest;
  Fmt.pr "three compromised validators push the minority tip.@.@.";

  let n = List.length honest + t in
  Fmt.pr "tolerance check at N=%d, t=%d, B_G=1, C_G=0:@." n t;
  Fmt.pr "  point-to-point (Ineq. 3, needs N > max(3t, 2t+2B_G+C_G) = %d): %b@."
    (Bounds.bft_bound ~t ~bg:1 ~cg:0)
    (n > Bounds.bft_bound ~t ~bg:1 ~cg:0);
  Fmt.pr "  local broadcast (Ineq. 15, needs N > 2t+2B_G+C_G = %d): %b@.@."
    (Bounds.cft_bound ~t ~bg:1 ~cg:0)
    (n > Bounds.cft_bound ~t ~bg:1 ~cg:0);

  let r =
    Runner.simple ~protocol:Runner.Algo4_local
      ~strategy:Strategy.Collude_second ~t ~f:t honest
  in
  List.iteri
    (fun i out ->
      Fmt.pr "validator %d adopts: %s@." i
        (match out with None -> "(undecided)" | Some v -> name_of v))
    r.Runner.outputs;
  Fmt.pr "@.termination=%b agreement=%b voting-validity=%b rounds=%d \
          messages=%d@.@."
    r.Runner.termination r.Runner.agreement r.Runner.voting_validity
    r.Runner.rounds
    (r.Runner.honest_msgs + r.Runner.byz_msgs);
  assert (r.Runner.termination && r.Runner.voting_validity);
  Fmt.pr "The canonical chain extends %s — the exact plurality of honest \
          observations, with t = 3 of 9 validators compromised (impossible \
          point-to-point).@.@."
    (name_of (Oid.of_int 0));

  (* Leader election for the next epoch: same machinery, subject changes. *)
  Fmt.pr "-- epoch leader election on the same channel --@.@.";
  let candidates = [| "validator-2"; "validator-5"; "validator-8" |] in
  let prefs = List.map Oid.of_int [ 0; 1; 1; 1; 1; 1 ] in
  let r2 =
    Runner.simple ~protocol:Runner.Algo4_local
      ~strategy:Strategy.Collude_second ~t ~f:t prefs
  in
  (match List.filter_map Fun.id r2.Runner.outputs with
  | leader :: _ ->
      Fmt.pr "elected leader: %s (votes %a)@." candidates.(Oid.to_int leader)
        Fmt.(list ~sep:sp (using (fun o -> candidates.(Oid.to_int o)) string))
        prefs
  | [] -> Fmt.pr "election stalled (margin too thin for t=3)@.");
  Fmt.pr "termination=%b voting-validity=%b@." r2.Runner.termination
    r2.Runner.voting_validity
