(* Joint decision-making in a connected-vehicle cluster (Section I-B).

   A platoon of 14 vehicles approaching an obstacle must agree on one
   manoeuvre: BRAKE, SWERVE_LEFT, SWERVE_RIGHT or CONTINUE.  Each vehicle
   forms a preference from its own (noisy) sensors; up to t compromised
   vehicles collude to push the second-most-popular manoeuvre.  A log-based
   protocol (PBFT/Raft) would replicate a single leader's choice — here the
   fleet aggregates preferences with voting validity, and in the
   safety-critical variant refuses to act rather than act wrongly.

     dune exec examples/autonomous_fleet.exe *)

module Oid = Vv_ballot.Option_id
module Runner = Vv_core.Runner
module Strategy = Vv_core.Strategy
module Rng = Vv_prelude.Rng

let manoeuvres = [| "BRAKE"; "SWERVE_LEFT"; "SWERVE_RIGHT"; "CONTINUE" |]
let name_of o = manoeuvres.(Oid.to_int o)

(* Each vehicle senses the obstacle with noise: the true best action is
   BRAKE; misreadings vote for a swerve. *)
let sense rng =
  let r = Rng.float rng in
  if r < 0.70 then Oid.of_int 0
  else if r < 0.85 then Oid.of_int 1
  else if r < 0.95 then Oid.of_int 2
  else Oid.of_int 3

let pr_outcome label (r : Runner.outcome) =
  Fmt.pr "%s@." label;
  Fmt.pr "  decisions   : %a@."
    Fmt.(list ~sep:sp (option ~none:(any "-") (using name_of string)))
    r.Runner.outputs;
  Fmt.pr "  termination=%b agreement=%b voting-validity=%b safe=%b \
          rounds=%d@.@."
    r.Runner.termination r.Runner.agreement r.Runner.voting_validity
    r.Runner.safety_admissible r.Runner.rounds

let () =
  Fmt.pr "== Autonomous fleet: agreeing on a manoeuvre (14 vehicles, 2 \
          compromised) ==@.@.";
  let rng = Rng.create 2026 in
  let t = 2 in
  let honest = List.init 12 (fun _ -> sense rng) in
  Fmt.pr "sensor preferences: %a@.@."
    Fmt.(list ~sep:sp (using name_of string))
    honest;

  (* Standard BFT voting (Algorithm 1): correct whenever the sensing margin
     beats the tolerance bound. *)
  let r1 =
    Runner.simple ~protocol:Runner.Algo1 ~strategy:Strategy.Collude_second ~t
      ~f:t honest
  in
  pr_outcome "[Algorithm 1] plurality manoeuvre:" r1;

  (* Safety-critical variant (Algorithm 2): for actuation we must never
     execute a manoeuvre that is not the honest plurality.  If the margin
     is too thin, the fleet falls back to its fail-safe (full stop). *)
  let r2 =
    Runner.simple ~protocol:Runner.Algo2_sct ~strategy:Strategy.Collude_second
      ~t ~f:t honest
  in
  pr_outcome "[Algorithm 2 / SCT] safety-guaranteed manoeuvre:" r2;
  if not r2.Runner.termination then
    Fmt.pr "  -> SCT withheld a decision; fleet engages fail-safe stop.@.@.";

  (* Section V-B's remedy: vehicles re-sense / reconsider third options to
     widen the gap, then revote.  We simulate a second sensing pass with
     better optics (less noise). *)
  Fmt.pr "-- second sensing pass (fog lifted: cleaner margins) --@.@.";
  let sharper rng =
    let r = Rng.float rng in
    if r < 0.9 then Oid.of_int 0 else Oid.of_int 1
  in
  let honest2 = List.init 12 (fun _ -> sharper rng) in
  Fmt.pr "sensor preferences: %a@.@."
    Fmt.(list ~sep:sp (using name_of string))
    honest2;
  let r3 =
    Runner.simple ~protocol:Runner.Algo2_sct ~strategy:Strategy.Collude_second
      ~t ~f:t honest2
  in
  pr_outcome "[Algorithm 2 / SCT] after revote:" r3;

  (* Latency matters in a moving platoon: the incremental threshold decides
     as soon as enough votes are in, without waiting out the delay bound. *)
  let delay = Vv_sim.Delay.Uniform { lo = 1; hi = 4 } in
  let r4 =
    Runner.simple ~protocol:Runner.Algo1 ~strategy:Strategy.Collude_second
      ~delay ~t ~f:t honest2
  in
  let r5 =
    Runner.simple ~protocol:Runner.Algo3_incremental
      ~strategy:Strategy.Collude_second ~delay ~t ~f:t honest2
  in
  Fmt.pr "-- V2V latency (uniform 1..4 rounds) --@.";
  Fmt.pr "  Algorithm 1 decided in %d rounds; Algorithm 3 (incremental) in \
          %d rounds.@."
    r4.Runner.rounds r5.Runner.rounds
