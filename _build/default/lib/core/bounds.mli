(** The paper's tolerance bounds as executable arithmetic.

    Notation: [n] total nodes, [t] declared tolerance, [bg] = B_G (honest
    votes on the runner-up), [cg] = C_G (honest votes beyond the top two,
    Equation 1). All bounds are strict lower bounds on N. *)

type kind = Bft | Cft | Sct

val pp_kind : kind Fmt.t

val validity_bound : t:int -> bg:int -> cg:int -> int
(** Theorems 3 and 5: voting validity is impossible at
    [N <= 2t + 2B_G + C_G]. *)

val bft_bound : t:int -> bg:int -> cg:int -> int
(** Inequality (3): Algorithm 1 needs [N > max{3t, 2t + 2B_G + C_G}]. *)

val cft_bound : t:int -> bg:int -> cg:int -> int
(** CFT voting: no [3t] term. *)

val sct_bound : t:int -> bg:int -> cg:int -> int
(** Inequality (7): the safety-guaranteed protocol terminates when
    [N > 3t + 2B_G + C_G]. *)

val bound : kind -> t:int -> bg:int -> cg:int -> int
val satisfied : kind -> n:int -> t:int -> bg:int -> cg:int -> bool

val delta_p : kind -> t:int -> int
(** Local judgment condition: 0 for BFT/CFT, [t] for SCT (Theorem 10). *)

val required_gap : kind -> t:int -> int
(** Minimal [A_G - B_G] each bound forces: [t+1] (Property 2) or [2t+1]
    (Inequality 6). *)

val k_of : kind -> int
(** Theorem 12's K: 2 for BFT/CFT, 3 for SCT. *)

val vote_dispersion_tolerance : kind -> bg:int -> cg:int -> float
(** [t_vd = (2 B_G + C_G) / K]. *)

val system_tolerance_ok : kind -> n:int -> t:int -> bg:int -> cg:int -> bool
(** Theorem 12: [N/K > t + t_vd]. *)

val max_tolerable_t : kind -> n:int -> bg:int -> cg:int -> int
(** Largest admissible [t] at fixed [n] and dispersion; [-1] when even
    [t = 0] fails. *)

val incremental_ready : n:int -> delta_p:int -> a_i:int -> c_i:int -> bool
(** Inequality (14): safe to propose once [a_i > (n - c_i + delta_p)/2]. *)

val decompose :
  tie:Vv_ballot.Tie_break.t ->
  Vv_ballot.Option_id.t list ->
  (Vv_ballot.Option_id.t * int * int * int) option
(** [(winner, A_G, B_G, C_G)] of an honest input multiset. *)

val satisfied_for :
  kind ->
  tie:Vv_ballot.Tie_break.t ->
  n:int ->
  t:int ->
  Vv_ballot.Option_id.t list ->
  bool
