(** Multi-round voting sessions (Section V-B).

    When a safety-guaranteed instance stalls (the gap [A_G - B_G] is within
    the adversary's reach), rerun the vote after honest voters adjust their
    preferences — the paper's "reconsider A and not vote for options in C"
    remedy. Adjustment is modelled at the electorate level,
    deterministically from the seed. *)

module Oid = Vv_ballot.Option_id

type policy =
  | Abandon_third
      (** voters below the top two switch to one of the top two — the
          paper's example *)
  | Bandwagon
      (** non-leader voters switch to the leader with probability 1/2 *)
  | Custom of
      (rng:Vv_prelude.Rng.t ->
      leader:Oid.t ->
      runner_up:Oid.t option ->
      Oid.t ->
      Oid.t)

val pp_policy : policy Fmt.t

type attempt = {
  round : int;  (** session round, from 1 *)
  inputs : Oid.t list;
  outcome : Runner.outcome;
}

type result = {
  attempts : attempt list;  (** in execution order *)
  decided : Oid.t option;
  sessions_used : int;
}

val adjust :
  tie:Vv_ballot.Tie_break.t ->
  rng:Vv_prelude.Rng.t ->
  policy ->
  Oid.t list ->
  Oid.t list
(** One electorate-level adjustment step (exposed for testing). *)

val run :
  ?policy:policy ->
  ?max_sessions:int ->
  ?protocol:Runner.protocol ->
  ?strategy:Strategy.t ->
  ?tie:Vv_ballot.Tie_break.t ->
  ?seed:int ->
  t:int ->
  f:int ->
  Oid.t list ->
  result
(** Vote, and on stall adjust-and-revote up to [max_sessions] times
    (default 5; SCT protocol and colluding adversary by default). *)
