(** Quittable consensus ([33]) as a comparator.

    Safety-guaranteed voting under a deadline, with stalls surfaced as an
    agreed distinguished output [Q]. Demonstrates the Section V objection:
    termination is restored unconditionally, but [Q] is nobody's
    preference — the output loses its plurality meaning exactly when a
    strict honest plurality existed and the adversary forced the quit. *)

module Oid = Vv_ballot.Option_id

type verdict = Value of Oid.t | Quit

val pp_verdict : verdict Fmt.t

type outcome = {
  verdicts : verdict list;  (** honest nodes, node-id order *)
  termination : bool;  (** always true: [Q] counts as an output *)
  agreement : bool;
  quit : bool;
  plurality_meaning : bool;
      (** false iff [Q] was output while a strict honest plurality existed *)
  inner : Runner.outcome;
}

val run :
  ?deadline:int ->
  ?strategy:Strategy.t ->
  ?tie:Vv_ballot.Tie_break.t ->
  ?seed:int ->
  t:int ->
  f:int ->
  Oid.t list ->
  outcome
