(* Quittable consensus (Guerraoui-Hadzilacos-Kuznetsov-Toueg [33]) as a
   comparator.

   Section V mentions quittable consensus as a similar safety-first
   setting and dismisses it for voting: "it may output Q (for quit) and
   violates the voting validity".  This wrapper makes that concrete: run
   the safety-guaranteed protocol under a deadline; honest nodes that have
   not decided by the deadline output Q instead of staying silent.  In the
   lock-step synchronous model every honest node reaches the deadline in
   the same round, so agreement extends to Q outputs.

   The exercise shows the trade the paper calls out: quittable consensus
   restores termination unconditionally, but its output no longer always
   carries the plurality meaning — Q is an output that is nobody's
   preference. *)

module Oid = Vv_ballot.Option_id

type verdict = Value of Oid.t | Quit

let pp_verdict ppf = function
  | Value v -> Oid.pp ppf v
  | Quit -> Fmt.string ppf "Q"

type outcome = {
  verdicts : verdict list;  (** honest nodes, node-id order *)
  termination : bool;  (** always true: Q counts as an output *)
  agreement : bool;
  quit : bool;  (** the run ended in Q *)
  plurality_meaning : bool;
      (** whether the output still satisfies voting validity — false
          whenever Q was output while a strict honest plurality existed
          (the paper's objection) *)
  inner : Runner.outcome;
}

let run ?(deadline = 60) ?(strategy = Strategy.Collude_second)
    ?(tie = Vv_ballot.Tie_break.default) ?(seed = 0x900d) ~t ~f honest_inputs =
  let inner =
    Runner.simple ~protocol:Runner.Algo2_sct ~strategy ~tie ~seed
      ~max_rounds:deadline ~t ~f honest_inputs
  in
  let verdicts =
    List.map
      (function Some v -> Value v | None -> Quit)
      inner.Runner.outputs
  in
  let quit = List.exists (function Quit -> true | Value _ -> false) verdicts in
  let agreement =
    match verdicts with
    | [] -> true
    | first :: rest -> List.for_all (( = ) first) rest
  in
  let plurality_meaning =
    (not quit)
    || not (Vv_ballot.Validity.has_strict_plurality ~honest_inputs)
  in
  { verdicts; termination = true; agreement; quit; plurality_meaning; inner }
