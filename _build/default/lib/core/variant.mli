(** Protocol variants: the knobs distinguishing Algorithms 1-4 and CFT.

    All five protocols share one state machine ({!Voting.Make}); a variant
    fixes the local judgment condition [delta_P], the decide quorum, and
    the Phase-3 trigger. The Phase-1 substrate and communication model are
    chosen at instantiation/configuration time. *)

type judgment =
  | Delta_zero  (** Algorithms 1, 3, 4 and CFT *)
  | Delta_t  (** Algorithm 2 (safety-guaranteed), per Theorem 10 *)
  | Delta_custom of int
      (** for impossibility experiments around Theorem 10 ([delta_P < t]) *)

type quorum =
  | N_minus_t  (** Algorithm 1 Line 16 *)
  | T_plus_1  (** Algorithm 2 Line 22: one honest propose suffices *)

type propose_mode =
  | After_wait  (** Algorithm 1 Line 11: wait [2 delta_t] after t+1 votes *)
  | Incremental  (** Algorithm 3: propose as soon as Inequality (14) fires *)

type t = {
  label : string;
  judgment : judgment;
  quorum : quorum;
  propose : propose_mode;
  tie : Vv_ballot.Tie_break.t;
}

val algo1 : t
val algo2_sct : t
val algo3_incremental : t
val algo4_local : t
(** Same knobs as Algorithm 1; the difference (plain Phase 1, local
    broadcast) is applied by {!Runner}. *)

val cft : t
val sct_incremental : t
(** Algorithm 2 with the Algorithm 3 trigger (Section VII-A notes the SCT
    protocol "can also be easily modified using delta_P = t"). *)

val delta_p : t -> tolerance:int -> int
val quorum_size : t -> n:int -> tolerance:int -> int
val with_tie : Vv_ballot.Tie_break.t -> t -> t
val pp : t Fmt.t
