(* Adversary strategies for the voting protocols, as data.

   The strategies are defined here as a plain enumeration so experiment
   specifications can name them independently of the Voting functor
   instance; Voting.Make turns a strategy into a concrete
   Vv_sim.Adversary.t over its own message type. *)

type t =
  | Passive
      (** Byzantine nodes stay silent — stresses that quorums are reachable
          from honest nodes alone (Lemma 6). *)
  | Collude_second
      (** All Byzantine nodes vote for the honest runner-up B — the
          worst-case strategy behind Lemma 2 / Theorem 3. *)
  | Collude_fixed of int
      (** All Byzantine nodes vote for a fixed option id. *)
  | Split_top2
      (** Equivocation: each Byzantine node votes A to even-numbered nodes
          and B to odd ones (point-to-point only). *)
  | Propose_second
      (** Collude_second, plus matching [propose B] messages — attacks the
          decide quorum directly (max t < t+1 forged proposes, Thm 11). *)
  | Random_votes of int
      (** Independent uniform votes over the observed option domain, seeded
          for reproducibility. *)
  | Late_collude of int
      (** Collude_second, but withhold the Byzantine votes for the given
          number of rounds after observing the honest ballot — exercises
          the strong adversary's message-delaying power against the
          protocols' wait windows. *)

let pp ppf = function
  | Passive -> Fmt.string ppf "passive"
  | Collude_second -> Fmt.string ppf "collude-second"
  | Collude_fixed v -> Fmt.pf ppf "collude-fixed:%d" v
  | Split_top2 -> Fmt.string ppf "split-top2"
  | Propose_second -> Fmt.string ppf "propose-second"
  | Random_votes s -> Fmt.pf ppf "random:%d" s
  | Late_collude d -> Fmt.pf ppf "late-collude:%d" d

let of_name = function
  | "passive" -> Some Passive
  | "collude-second" -> Some Collude_second
  | "split-top2" -> Some Split_top2
  | "propose-second" -> Some Propose_second
  | "random" -> Some (Random_votes 7)
  | "late-collude" -> Some (Late_collude 3)
  | _ -> None

let all_names =
  [
    "passive"; "collude-second"; "split-top2"; "propose-second"; "random";
    "late-collude";
  ]
