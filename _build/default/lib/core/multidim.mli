(** Multi-dimensional voting validity (the paper's future-work direction,
    citing Mendes et al. [25]).

    A d-dimensional subject collects a preference vector from every node;
    one voting-validity instance runs per coordinate (independent derived
    seeds) and the combined verdict requires coordinate-wise voting
    validity. Plurality aggregation is separable across coordinates, so
    composition preserves each instance's guarantees. *)

module Oid = Vv_ballot.Option_id

type outcome = {
  per_coordinate : Runner.outcome list;
  output_vector : Oid.t option list;
      (** agreed value per coordinate; [None] where it stalled *)
  termination : bool;  (** every coordinate terminated *)
  agreement : bool;
  voting_validity : bool;  (** coordinate-wise Definition III.3 *)
  safety_admissible : bool;
}

val run :
  ?protocol:Runner.protocol ->
  ?strategy:Strategy.t ->
  ?bb:Vv_bb.Bb.choice ->
  ?tie:Vv_ballot.Tie_break.t ->
  ?seed:int ->
  t:int ->
  f:int ->
  Oid.t list list ->
  outcome
(** [run ~t ~f vectors] with one preference vector per honest node. Raises
    [Invalid_argument] on an empty electorate, zero dimensions, or ragged
    vectors. *)
