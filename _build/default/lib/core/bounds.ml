(* The paper's tolerance bounds as executable arithmetic.

   Notation: n = total nodes, t = declared tolerance, bg = B_G (honest votes
   on the runner-up option), cg = C_G (honest votes on all remaining
   options, Equation 1).  All bounds are strict lower bounds on N. *)

type kind = Bft | Cft | Sct

let pp_kind ppf = function
  | Bft -> Fmt.string ppf "BFT"
  | Cft -> Fmt.string ppf "CFT"
  | Sct -> Fmt.string ppf "SCT"

(* Theorem 3 / Theorem 5: no algorithm achieves voting validity when
   N <= 2t + 2B_G + C_G (identical for Byzantine and crash faults). *)
let validity_bound ~t ~bg ~cg = (2 * t) + (2 * bg) + cg

(* Inequality (3) (Theorem 9): Algorithm 1 is correct when
   N > max{3t, 2t + 2B_G + C_G}. *)
let bft_bound ~t ~bg ~cg = max (3 * t) (validity_bound ~t ~bg ~cg)

(* CFT needs no 3t term (Section IV-B discussion; Inequality 15 shape). *)
let cft_bound ~t ~bg ~cg = validity_bound ~t ~bg ~cg

(* Inequality (7) (Theorem 11): the safety-guaranteed protocol terminates
   with voting validity when N > 3t + 2B_G + C_G. *)
let sct_bound ~t ~bg ~cg = (3 * t) + (2 * bg) + cg

let bound kind ~t ~bg ~cg =
  match kind with
  | Bft -> bft_bound ~t ~bg ~cg
  | Cft -> cft_bound ~t ~bg ~cg
  | Sct -> sct_bound ~t ~bg ~cg

let satisfied kind ~n ~t ~bg ~cg = n > bound kind ~t ~bg ~cg

(* The local judgment condition delta_P (Section IV-B / V-A): a node
   proposes its top option when A_i - B_i > delta_P.  Theorem 10 shows no
   safety-guaranteed protocol can use delta_P < t. *)
let delta_p kind ~t = match kind with Bft | Cft -> 0 | Sct -> t

(* The gap A_G - B_G each bound forces (Property 2 needs > t; Inequality 6
   needs > 2t for SCT). *)
let required_gap kind ~t = match kind with Bft | Cft -> t + 1 | Sct -> (2 * t) + 1

(* Theorem 12: N/K > t + t_vd with t_vd = (2B_G + C_G)/K. *)
let k_of = function Bft | Cft -> 2 | Sct -> 3

let vote_dispersion_tolerance kind ~bg ~cg =
  float_of_int ((2 * bg) + cg) /. float_of_int (k_of kind)

let system_tolerance_ok kind ~n ~t ~bg ~cg =
  let k = float_of_int (k_of kind) in
  float_of_int n /. k
  > float_of_int t +. vote_dispersion_tolerance kind ~bg ~cg

(* Largest t the bound admits at fixed n and honest dispersion; -1 when even
   t = 0 fails. *)
let max_tolerable_t kind ~n ~bg ~cg =
  let rec go t = if satisfied kind ~n ~t ~bg ~cg then go (t + 1) else t - 1 in
  go 0

(* Inequality (14): the incremental threshold.  A node holding a_i votes for
   its local top option and c_i votes beyond the top two may safely propose
   once a_i > (n - c_i + delta_p) / 2, whatever the x missing votes are. *)
let incremental_ready ~n ~delta_p ~a_i ~c_i = 2 * a_i > n - c_i + delta_p

(* Decompose honest inputs into (A_G winner, A_G, B_G, C_G).  The [tie] rule
   fixes which of two tied options counts as the winner. *)
let decompose ~tie honest_inputs =
  match Vv_ballot.Tally.top ~tie (Vv_ballot.Tally.of_list honest_inputs) with
  | None -> None
  | Some { Vv_ballot.Tally.a; a_count; b_count; c_count; _ } ->
      Some (a, a_count, b_count, c_count)

(* Apply a bound to a concrete honest input multiset. *)
let satisfied_for kind ~tie ~n ~t honest_inputs =
  match decompose ~tie honest_inputs with
  | None -> false
  | Some (_, _, bg, cg) -> satisfied kind ~n ~t ~bg ~cg
