lib/core/bounds.mli: Fmt Vv_ballot
