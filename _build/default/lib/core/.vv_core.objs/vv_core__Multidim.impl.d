lib/core/multidim.ml: Fun List Runner Strategy Vv_ballot Vv_bb
