lib/core/voting.mli: Strategy Variant Vv_ballot Vv_bb Vv_sim
