lib/core/session.ml: Fmt Fun List Runner Strategy Vv_ballot Vv_prelude
