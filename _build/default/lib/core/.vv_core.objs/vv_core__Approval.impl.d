lib/core/approval.ml: Adversary Engine Hashtbl List Protocol Types Vv_ballot Vv_bb Vv_sim
