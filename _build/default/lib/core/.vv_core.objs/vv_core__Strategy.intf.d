lib/core/strategy.mli: Fmt
