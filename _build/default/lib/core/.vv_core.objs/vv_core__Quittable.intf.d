lib/core/quittable.mli: Fmt Runner Strategy Vv_ballot
