lib/core/bounds.ml: Fmt Vv_ballot
