lib/core/quittable.ml: Fmt List Runner Strategy Vv_ballot
