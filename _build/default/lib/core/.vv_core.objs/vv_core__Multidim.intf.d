lib/core/multidim.mli: Runner Strategy Vv_ballot Vv_bb
