lib/core/variant.ml: Fmt Vv_ballot
