lib/core/voting.ml: Adversary Array Bounds Config Engine Hashtbl List Metrics Option Protocol Strategy Types Variant Vv_ballot Vv_bb Vv_prelude Vv_sim
