lib/core/variant.mli: Fmt Vv_ballot
