lib/core/session.mli: Fmt Runner Strategy Vv_ballot Vv_prelude
