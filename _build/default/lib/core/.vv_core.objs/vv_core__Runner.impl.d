lib/core/runner.ml: Array Config Delay Fault List Strategy Types Variant Voting Vv_ballot Vv_bb Vv_sim
