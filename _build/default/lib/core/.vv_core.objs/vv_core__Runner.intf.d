lib/core/runner.mli: Strategy Variant Vv_ballot Vv_bb Vv_sim
