lib/core/approval.mli: Vv_ballot Vv_bb Vv_sim
