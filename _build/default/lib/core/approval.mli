(** Approval voting with voting validity (extension).

    Each voter endorses a {e set} of acceptable options (Parhami's
    taxonomy [16], which the paper cites for the plurality scheme); the
    option with the most honest endorsements must win exactly. A Byzantine
    node adds at most [t] bogus endorsements to any single option, so the
    Property-2 argument carries over: exactness whenever the honest
    endorsement gap exceeds [t] ([quorum_gap = 0]), safety-guaranteed
    behaviour at a gap above [2t] ([quorum_gap = t]). *)

module Oid = Vv_ballot.Option_id

type subject = int

type exec = {
  outputs : Oid.t option list;  (** honest nodes, node-id order *)
  rounds : int;
  stalled : bool;
}

val honest_leader :
  tie:Vv_ballot.Tie_break.t -> Oid.t list list -> Vv_ballot.Tally.top option
(** Endorsement tally decomposition of a list of honest approval sets
    (duplicates within one set count once). *)

val approval_validity :
  tie:Vv_ballot.Tie_break.t ->
  honest_approvals:Oid.t list list ->
  outputs:Oid.t option list ->
  bool
(** The approval analogue of Definition III.3: when one option strictly
    leads the honest endorsements, every decided output must be it. *)

module Make (Sub : Vv_bb.Bb_intf.S) : sig
  type msg =
    | Prepare of Sub.msg
    | Approve of { subject : subject; choices : Oid.t list }
    | Propose of { subject : subject; choice : Oid.t }

  type input = {
    speaker : Vv_sim.Types.node_id;
    subject : subject;
    approvals : Oid.t list;  (** non-empty set of endorsed options *)
    quorum_gap : int;  (** delta_P: 0 for BFT, [t] for safety-guaranteed *)
    tie : Vv_ballot.Tie_break.t;
  }

  module P :
    Vv_sim.Protocol.S
      with type input = input
       and type msg = msg
       and type output = Oid.t

  module E : module type of Vv_sim.Engine.Make (P)

  val collude_second :
    ?tie:Vv_ballot.Tie_break.t -> unit -> msg Vv_sim.Adversary.t
  (** Byzantine nodes endorse (only) the honest runner-up. *)

  val execute :
    Vv_sim.Config.t ->
    speaker:Vv_sim.Types.node_id ->
    subject:subject ->
    approvals:(Vv_sim.Types.node_id -> Oid.t list) ->
    quorum_gap:int ->
    ?tie:Vv_ballot.Tie_break.t ->
    collude:bool ->
    unit ->
    exec
end
