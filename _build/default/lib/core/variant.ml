(* Protocol variants: Algorithms 1-4 and the CFT protocol share one state
   machine differing only in three knobs (plus the Phase-1 substrate and
   communication model, chosen at instantiation / configuration time):

   - the local judgment condition delta_P  (Alg. 1/3/4: 0; Alg. 2: t),
   - the decide quorum                     (Alg. 1/3/4: N - t; Alg. 2: t+1),
   - how Phase 3 triggers                  (wait 2*delta_t vs incremental). *)

type judgment =
  | Delta_zero
  | Delta_t
  | Delta_custom of int
      (** for impossibility experiments around Theorem 10 (delta_P < t) *)

type quorum = N_minus_t | T_plus_1

type propose_mode =
  | After_wait  (** Algorithm 1 Line 11: wait 2 delta_t after t+1 votes *)
  | Incremental  (** Algorithm 3: propose as soon as Inequality (14) fires *)

type t = {
  label : string;
  judgment : judgment;
  quorum : quorum;
  propose : propose_mode;
  tie : Vv_ballot.Tie_break.t;
}

let v ?(tie = Vv_ballot.Tie_break.default) label judgment quorum propose =
  { label; judgment; quorum; propose; tie }

let algo1 = v "algo1-bft" Delta_zero N_minus_t After_wait
let algo2_sct = v "algo2-sct" Delta_t T_plus_1 After_wait
let algo3_incremental = v "algo3-incremental" Delta_zero N_minus_t Incremental
let algo4_local = v "algo4-local-broadcast" Delta_zero N_minus_t After_wait
let cft = v "cft" Delta_zero N_minus_t After_wait
let sct_incremental = v "sct-incremental" Delta_t T_plus_1 Incremental

let delta_p t ~tolerance =
  match t.judgment with
  | Delta_zero -> 0
  | Delta_t -> tolerance
  | Delta_custom d -> d

let quorum_size t ~n ~tolerance =
  match t.quorum with N_minus_t -> n - tolerance | T_plus_1 -> tolerance + 1

let with_tie tie t = { t with tie }

let pp ppf t = Fmt.string ppf t.label
