(* Multi-dimensional voting validity (the paper's future-work direction,
   citing Mendes et al. [25]).

   A d-dimensional subject asks every node for a vector of preferences
   (e.g. an autonomous-fleet decision = (manoeuvre, speed-class, lane)).
   We run one voting-validity instance per coordinate, with independent
   seeds derived from a session seed, and require coordinate-wise voting
   validity: each coordinate of the common output vector must be the exact
   plurality of the honest inputs' corresponding coordinates.

   Unlike multidimensional *approximate* agreement, where coordinates
   interact through convexity, plurality aggregation is separable, so
   coordinate-wise composition preserves every guarantee of the underlying
   protocol — the point of this module is packaging, bookkeeping and the
   combined verdicts. *)

module Oid = Vv_ballot.Option_id

type outcome = {
  per_coordinate : Runner.outcome list;
  output_vector : Oid.t option list;
      (** the agreed value per coordinate; [None] where that coordinate
          stalled *)
  termination : bool;  (** every coordinate terminated *)
  agreement : bool;
  voting_validity : bool;  (** coordinate-wise Definition III.3 *)
  safety_admissible : bool;
}

(* [inputs] is one preference vector per honest node; all vectors must
   share the same dimension d >= 1. *)
let run ?(protocol = Runner.Algo1) ?(strategy = Strategy.Collude_second)
    ?(bb = Vv_bb.Bb.default) ?(tie = Vv_ballot.Tie_break.default)
    ?(seed = 0xd1) ~t ~f (inputs : Oid.t list list) =
  let d =
    match inputs with
    | [] -> invalid_arg "Multidim.run: no voters"
    | v :: rest ->
        let d = List.length v in
        if d = 0 then invalid_arg "Multidim.run: zero-dimensional subject";
        if not (List.for_all (fun w -> List.length w = d) rest) then
          invalid_arg "Multidim.run: ragged preference vectors";
        d
  in
  let coordinate k = List.map (fun v -> List.nth v k) inputs in
  let per_coordinate =
    List.init d (fun k ->
        Runner.simple ~protocol ~strategy ~bb ~tie ~seed:(seed + (7919 * k))
          ~t ~f (coordinate k))
  in
  let first_output (o : Runner.outcome) =
    match List.filter_map Fun.id o.Runner.outputs with
    | v :: _ when o.Runner.termination -> Some v
    | _ -> None
  in
  {
    per_coordinate;
    output_vector = List.map first_output per_coordinate;
    termination = List.for_all (fun o -> o.Runner.termination) per_coordinate;
    agreement = List.for_all (fun o -> o.Runner.agreement) per_coordinate;
    voting_validity =
      List.for_all (fun o -> o.Runner.voting_validity) per_coordinate;
    safety_admissible =
      List.for_all (fun o -> o.Runner.safety_admissible) per_coordinate;
  }
