(** Adversary strategies, as data.

    A plain enumeration so experiment specifications can name strategies
    independently of the {!Voting.Make} functor instance; each instance's
    [adversary_of] turns one into a concrete {!Vv_sim.Adversary.t} over its
    own message type. *)

type t =
  | Passive
      (** Byzantine nodes stay silent — exercises Lemma 6's claim that
          quorums are reachable from honest nodes alone. *)
  | Collude_second
      (** All Byzantine nodes vote for the honest runner-up: the worst-case
          strategy behind Lemma 2 / Theorem 3. *)
  | Collude_fixed of int  (** All Byzantine nodes vote a fixed option id. *)
  | Split_top2
      (** Equivocation: vote the leader to even-numbered recipients and the
          runner-up to odd ones. Rejected by the engine under the local
          broadcast model. *)
  | Propose_second
      (** [Collude_second] plus forged [propose] messages for the runner-up
          — attacks the decide quorum directly (Theorem 11's argument that
          [t < t+1] forged proposes cannot decide). *)
  | Random_votes of int  (** Seeded uniform votes over the observed domain. *)
  | Late_collude of int
      (** [Collude_second] delayed by the given number of rounds — the
          strong adversary's message-withholding power aimed at the wait
          windows. *)

val pp : t Fmt.t
val of_name : string -> t option
val all_names : string list
