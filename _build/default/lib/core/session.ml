(* Multi-round voting sessions (Section V-B).

   A safety-guaranteed protocol trades termination for exactness: when the
   honest gap A_G - B_G is within the adversary's reach the instance
   stalls.  The paper's remedy is operational: "the distributed system can
   conduct multiple rounds of votes ... nodes can adjust their voting
   preferences (e.g., reconsider A and not vote for options in C) to
   enlarge A_G - B_G and allow the consensus to terminate successfully."

   This module runs that loop: execute an instance; if it stalls, apply a
   preference-adjustment policy to the honest electorate and revote, up to
   a session limit.  Adjustment is modelled at the electorate level (which
   honest voters reconsider), deterministically from the seed. *)

module Oid = Vv_ballot.Option_id

type policy =
  | Abandon_third
      (** every voter whose option ranks below the top two switches to one
          of the top two (uniformly at random): the paper's own example *)
  | Bandwagon
      (** every voter not already on the leading option switches to it
          with probability 1/2 — stronger, converges faster *)
  | Custom of (rng:Vv_prelude.Rng.t -> leader:Oid.t -> runner_up:Oid.t option -> Oid.t -> Oid.t)
      (** user-supplied per-voter adjustment *)

let pp_policy ppf = function
  | Abandon_third -> Fmt.string ppf "abandon-third"
  | Bandwagon -> Fmt.string ppf "bandwagon"
  | Custom _ -> Fmt.string ppf "custom"

type attempt = {
  round : int;  (** session round, from 1 *)
  inputs : Oid.t list;  (** honest preferences used this round *)
  outcome : Runner.outcome;
}

type result = {
  attempts : attempt list;  (** in execution order *)
  decided : Oid.t option;  (** the common decision, if any round terminated *)
  sessions_used : int;
}

let adjust ~tie ~rng policy inputs =
  let ranked =
    Vv_ballot.Tally.ranked ~tie (Vv_ballot.Tally.of_list inputs)
  in
  match ranked with
  | [] | [ _ ] -> inputs
  | (leader, _) :: (runner_up, _) :: _ ->
      let pick_top2 () =
        if Vv_prelude.Rng.bool rng then leader else runner_up
      in
      List.map
        (fun v ->
          match policy with
          | Abandon_third ->
              if Oid.equal v leader || Oid.equal v runner_up then v
              else pick_top2 ()
          | Bandwagon ->
              if Oid.equal v leader then v
              else if Vv_prelude.Rng.bool rng then leader
              else v
          | Custom f -> f ~rng ~leader ~runner_up:(Some runner_up) v)
        inputs

let run ?(policy = Abandon_third) ?(max_sessions = 5)
    ?(protocol = Runner.Algo2_sct) ?(strategy = Strategy.Collude_second)
    ?(tie = Vv_ballot.Tie_break.default) ?(seed = 0x5e55) ~t ~f honest_inputs =
  if max_sessions < 1 then invalid_arg "Session.run: max_sessions must be >= 1";
  let rng = Vv_prelude.Rng.create seed in
  let rec go round inputs attempts =
    let outcome =
      Runner.simple ~protocol ~strategy ~tie ~seed:(Vv_prelude.Rng.bits rng)
        ~t ~f inputs
    in
    let attempts = { round; inputs; outcome } :: attempts in
    if outcome.Runner.termination then
      let decided =
        match List.filter_map Fun.id outcome.Runner.outputs with
        | v :: _ -> Some v
        | [] -> None
      in
      { attempts = List.rev attempts; decided; sessions_used = round }
    else if round >= max_sessions then
      { attempts = List.rev attempts; decided = None; sessions_used = round }
    else
      let inputs' = adjust ~tie ~rng policy inputs in
      go (round + 1) inputs' attempts
  in
  go 1 honest_inputs []
