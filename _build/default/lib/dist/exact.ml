(* Exact computation of Pr(A_G - B_G > t) (Equation 11) and related
   quantities by full enumeration of the multinomial support.  The paper
   derives the probability through c.d.f. manipulations (Equations 10-13);
   enumerating the support computes the identical quantity directly and
   exactly, which also serves as an oracle for the Monte-Carlo estimator
   and for empirical protocol runs. *)

(* Top-two counts of an outcome: (A_G, B_G).  B_G is 0 when only one option
   received votes. *)
let top2 counts =
  let a = ref 0 and b = ref 0 in
  Array.iter
    (fun x ->
      if x >= !a then begin
        b := !a;
        a := x
      end
      else if x > !b then b := x)
    counts;
  (!a, !b)

let gap counts =
  let a, b = top2 counts in
  a - b

let pr_gap_gt dist ~threshold =
  Multinomial.probability_of dist (fun counts -> gap counts > threshold)

(* Distribution of the gap A_G - B_G: index g holds Pr(gap = g). *)
let gap_distribution dist =
  let n = Multinomial.n dist in
  let acc = Array.make (n + 1) 0.0 in
  Multinomial.iter_support dist (fun counts ->
      let g = gap counts in
      acc.(g) <- acc.(g) +. Multinomial.pmf dist counts);
  acc

(* Equation 11 instantiated for the BFT/CFT bound (Theorem 12, K = 2):
   voting validity is guaranteed exactly when A_G - B_G > t. *)
let pr_voting_validity dist ~t = pr_gap_gt dist ~threshold:t

(* The SCT bound needs A_G - B_G > 2t (Inequality 6). *)
let pr_sct_termination dist ~t = pr_gap_gt dist ~threshold:(2 * t)

(* Figure 1(c): H_s as a function of the actual number of faults f. *)
let system_entropy dist ~f =
  let p_v = if f = 0 then 1.0 else pr_gap_gt dist ~threshold:f in
  Entropy.system_of_success ~f ~p_v

(* Expected values of A_G and B_G, for reporting. *)
let expected_top2 dist =
  Multinomial.fold_support dist ~init:(0.0, 0.0) ~f:(fun (ea, eb) counts ->
      let a, b = top2 counts in
      let p = Multinomial.pmf dist counts in
      (ea +. (p *. float_of_int a), eb +. (p *. float_of_int b)))
