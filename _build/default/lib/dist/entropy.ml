(* Entropy measures used in Figure 1.  All entropies are in bits (log base
   2), so the binary system entropy H_s of Figure 1(c) lies in [0, 1]. *)

let log2 x = log x /. log 2.0

let term p = if p <= 0.0 then 0.0 else -.p *. log2 p

let shannon p = Array.fold_left (fun acc pi -> acc +. term pi) 0.0 p

(* Binary entropy H(p) = -p log p - (1-p) log (1-p). *)
let binary p =
  if p < 0.0 || p > 1.0 then invalid_arg "Entropy.binary: p outside [0,1]";
  term p +. term (1.0 -. p)

(* The legend of Figure 1 reports the initial system entropy H_0 as the
   preference entropy multiplied by the number of good nodes. *)
let initial_system ~ng p = float_of_int ng *. shannon p

(* Figure 1(c): system entropy of achieving voting validity.  p_v is
   Pr(A_G - B_G > f) for f <> 0, and achieving validity is deterministic
   when f = 0, giving H_s = 0. *)
let system_of_success ~f ~p_v =
  if f = 0 then 0.0 else binary p_v
