(* The preference profiles D1-D4 of Figure 1(a).  The published figure is an
   image whose exact p_i values are not recoverable from the text, so we use
   four profiles spanning low to maximal entropy over m = 4 options with
   N_G = 10 non-faulty nodes; see DESIGN.md §3 for why this preserves the
   figure's qualitative content (higher H_0 -> lower Pr(A_G - B_G > t)). *)

type t = { name : string; p : float array }

let d1 = { name = "D1"; p = [| 0.70; 0.10; 0.10; 0.10 |] }
let d2 = { name = "D2"; p = [| 0.55; 0.25; 0.10; 0.10 |] }
let d3 = { name = "D3"; p = [| 0.40; 0.30; 0.20; 0.10 |] }
let d4 = { name = "D4"; p = [| 0.25; 0.25; 0.25; 0.25 |] }

let all = [ d1; d2; d3; d4 ]

let default_ng = 10

let distribution ?(ng = default_ng) t = Multinomial.create ~n:ng ~p:t.p

let initial_entropy ?(ng = default_ng) t = Entropy.initial_system ~ng t.p

let find name =
  List.find_opt (fun d -> String.equal d.name name) all

let pp ppf t =
  Fmt.pf ppf "%s=(%a)" t.name
    Fmt.(array ~sep:(any ", ") (fmt "%.2f"))
    t.p
