(** Monte-Carlo estimators mirroring {!Exact}, with 95% confidence
    half-widths. *)

val estimate :
  Multinomial.t ->
  samples:int ->
  rng:Vv_prelude.Rng.t ->
  (int array -> bool) ->
  float * float
(** [(p_hat, half_width)] for the event probability. Raises
    [Invalid_argument] when [samples <= 0]. *)

val pr_gap_gt :
  Multinomial.t ->
  threshold:int ->
  samples:int ->
  rng:Vv_prelude.Rng.t ->
  float * float

val pr_voting_validity :
  Multinomial.t -> t:int -> samples:int -> rng:Vv_prelude.Rng.t -> float * float

val sample_inputs :
  Multinomial.t -> Vv_prelude.Rng.t -> Vv_ballot.Option_id.t list
(** One honest input assignment drawn from the preference distribution, in
    random node order. *)
