(* Monte-Carlo estimators mirroring Exact; used to cross-check the exact
   enumeration and to scale the Figure 1 analysis to parameter ranges where
   enumeration would be too large. *)

let estimate dist ~samples ~rng pred =
  if samples <= 0 then invalid_arg "Montecarlo.estimate: samples must be positive";
  let hits = ref 0 in
  for _ = 1 to samples do
    if pred (Multinomial.sample dist rng) then incr hits
  done;
  Vv_prelude.Stats.binomial_confidence ~successes:!hits ~trials:samples

let pr_gap_gt dist ~threshold ~samples ~rng =
  estimate dist ~samples ~rng (fun counts -> Exact.gap counts > threshold)

let pr_voting_validity dist ~t ~samples ~rng =
  pr_gap_gt dist ~threshold:t ~samples ~rng

(* Draw one honest input assignment (a list of per-node options) from the
   preference distribution; used to feed protocol runs in experiment E2. *)
let sample_inputs dist rng =
  let counts = Multinomial.sample dist rng in
  let inputs = ref [] in
  Array.iteri
    (fun opt k ->
      for _ = 1 to k do
        inputs := Vv_ballot.Option_id.of_int opt :: !inputs
      done)
    counts;
  (* Shuffle so node ids are not correlated with options. *)
  let arr = Array.of_list !inputs in
  Vv_prelude.Rng.shuffle rng arr;
  Array.to_list arr
