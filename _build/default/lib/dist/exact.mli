(** Exact probabilities for Figure 1 via full support enumeration.

    Computes the same quantity as the paper's Equations 10-13 directly:
    sum the multinomial p.m.f. over outcomes satisfying the event. *)

val top2 : int array -> int * int
(** [(A_G, B_G)]: the largest and second-largest counts (0 if absent). *)

val gap : int array -> int
(** [A_G - B_G]. *)

val pr_gap_gt : Multinomial.t -> threshold:int -> float
(** Exact [Pr(A_G - B_G > threshold)] (Equation 11 generalised). *)

val gap_distribution : Multinomial.t -> float array
(** Index [g] holds [Pr(A_G - B_G = g)]; length [n+1]. *)

val pr_voting_validity : Multinomial.t -> t:int -> float
(** [Pr(A_G - B_G > t)]: the probability that the BFT/CFT voting-validity
    condition of Theorem 12 (K = 2) holds. *)

val pr_sct_termination : Multinomial.t -> t:int -> float
(** [Pr(A_G - B_G > 2t)]: the probability that a safety-guaranteed protocol
    terminates (Inequality 6). *)

val system_entropy : Multinomial.t -> f:int -> float
(** Figure 1(c)'s [H_s] at actual fault count [f]. *)

val expected_top2 : Multinomial.t -> float * float
(** [(E A_G, E B_G)]. *)
