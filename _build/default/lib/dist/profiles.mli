(** The D1-D4 preference profiles of Figure 1(a).

    Exact published values are not recoverable from the figure image; these
    four span low to maximal entropy over 4 options (see DESIGN.md §3). *)

type t = { name : string; p : float array }

val d1 : t
(** (.70,.10,.10,.10) — low entropy. *)

val d2 : t
(** (.55,.25,.10,.10). *)

val d3 : t
(** (.40,.30,.20,.10). *)

val d4 : t
(** (.25,.25,.25,.25) — maximal entropy. *)

val all : t list
val default_ng : int
(** 10, as in Section VI-B. *)

val distribution : ?ng:int -> t -> Multinomial.t
val initial_entropy : ?ng:int -> t -> float
(** The legend's [H_0]. *)

val find : string -> t option
val pp : t Fmt.t
