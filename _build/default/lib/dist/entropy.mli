(** Entropy measures for Figure 1, in bits (log base 2). *)

val shannon : float array -> float
(** Shannon entropy of a probability vector; zero-probability entries
    contribute 0. *)

val binary : float -> float
(** Binary entropy [H(p)]. Raises [Invalid_argument] outside [\[0,1\]]. *)

val initial_system : ng:int -> float array -> float
(** Figure 1(a) legend's [H_0]: preference entropy times the number of good
    nodes. *)

val system_of_success : f:int -> p_v:float -> float
(** Figure 1(c)'s [H_s]: 0 when [f = 0] (validity is deterministic),
    [binary p_v] otherwise, where [p_v = Pr(A_G - B_G > f)]. *)
