lib/dist/profiles.ml: Entropy Fmt List Multinomial String
