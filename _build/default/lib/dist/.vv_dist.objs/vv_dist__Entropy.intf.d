lib/dist/entropy.mli:
