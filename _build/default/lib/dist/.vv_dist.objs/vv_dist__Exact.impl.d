lib/dist/exact.ml: Array Entropy Multinomial
