lib/dist/montecarlo.ml: Array Exact Multinomial Vv_ballot Vv_prelude
