lib/dist/multinomial.mli: Vv_prelude
