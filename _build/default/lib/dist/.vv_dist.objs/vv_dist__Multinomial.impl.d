lib/dist/multinomial.ml: Array Float Vv_prelude
