lib/dist/montecarlo.mli: Multinomial Vv_ballot Vv_prelude
