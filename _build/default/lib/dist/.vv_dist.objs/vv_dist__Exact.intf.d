lib/dist/exact.mli: Multinomial
