lib/dist/entropy.ml: Array
