lib/dist/profiles.mli: Fmt Multinomial
