(* Multi-shot voting: a ledger of repeated single-shot instances.

   The paper's protocols are single-shot ("thus not yet directly
   applicable in some distributed scenarios" — Section VIII); this module
   packages the future-work direction it sketches: a sequence of voting
   slots, each deciding one subject, with

   - round-robin speaker rotation: a Byzantine or crashed speaker stalls
     its slot, and the slot is retried under the next speaker;
   - optional electorate adjustment between retries (the Section V-B
     remedy, via Vv_core.Session policies);
   - per-slot property classification and ledger-level invariants (every
     committed slot carries its validity verdict).

   The Byzantine set persists across slots (the same adversary keeps
   attacking); seeds are derived per attempt so the whole ledger replays
   bit-for-bit. *)

module Oid = Vv_ballot.Option_id
module Runner = Vv_core.Runner

type retry =
  | No_retry  (** a stalled slot is recorded as skipped *)
  | Rotate_speaker of int
      (** retry under the next speaker, up to the given attempts *)
  | Rotate_and_adjust of Vv_core.Session.policy * int
      (** rotate and also apply an electorate adjustment between attempts *)

type config = {
  n : int;
  t : int;
  byzantine : Vv_sim.Types.node_id list;
  crash : (Vv_sim.Types.node_id * int * Vv_sim.Types.node_id list) list;
      (** per-slot crash plans: these nodes crash in *every* attempt at
          the given round (e.g. an unreliable host) *)
  protocol : Runner.protocol;
  strategy : Vv_core.Strategy.t;
  bb : Vv_bb.Bb.choice;
  tie : Vv_ballot.Tie_break.t;
  retry : retry;
  seed : int;
}

let config ?(byzantine = []) ?(crash = []) ?(protocol = Runner.Algo2_sct)
    ?(strategy = Vv_core.Strategy.Collude_second) ?(bb = Vv_bb.Bb.default)
    ?(tie = Vv_ballot.Tie_break.default)
    ?(retry = Rotate_speaker 4) ?(seed = 0x1ed9) ~n ~t () =
  if n <= 0 then invalid_arg "Ledger.config: n must be positive";
  List.iter
    (fun id ->
      if id < 0 || id >= n then
        invalid_arg "Ledger.config: byzantine id out of range")
    byzantine;
  List.iter
    (fun (id, _, _) ->
      if id < 0 || id >= n then
        invalid_arg "Ledger.config: crash id out of range")
    crash;
  { n; t; byzantine; crash; protocol; strategy; bb; tie; retry; seed }

type slot = {
  index : int;
  subject : int;
  decision : Oid.t option;  (** [None] = skipped after exhausting retries *)
  speaker : Vv_sim.Types.node_id;  (** speaker of the deciding attempt *)
  attempts : int;
  valid : bool;  (** tie-break-aware voting validity of the final attempt *)
  rounds_total : int;  (** simulation rounds summed over attempts *)
}

type t = {
  cfg : config;
  rng : Vv_prelude.Rng.t;
  mutable slots : slot list;  (* reversed *)
  mutable next_speaker : Vv_sim.Types.node_id;
}

let create cfg =
  { cfg; rng = Vv_prelude.Rng.create cfg.seed; slots = []; next_speaker = 0 }

let height t = List.length t.slots
let slots t = List.rev t.slots

let committed t =
  List.filter_map
    (fun s -> match s.decision with Some v -> Some (s.index, v) | None -> None)
    (slots t)

(* All committed slots carried voting validity — the ledger-level safety
   invariant callers should assert. *)
let all_committed_valid t =
  List.for_all
    (fun s -> match s.decision with Some _ -> s.valid | None -> true)
    (slots t)

let rotate t = t.next_speaker <- (t.next_speaker + 1) mod t.cfg.n

let max_attempts cfg =
  match cfg.retry with
  | No_retry -> 1
  | Rotate_speaker k | Rotate_and_adjust (_, k) ->
      if k < 1 then invalid_arg "Ledger: retry attempts must be >= 1" else k

(* Decide one slot: run attempts under rotating speakers until one
   terminates or the retry budget is exhausted. *)
let decide t ~subject inputs =
  if List.length inputs <> t.cfg.n then
    invalid_arg "Ledger.decide: inputs must have length n";
  let cfg = t.cfg in
  let budget = max_attempts cfg in
  let index = height t in
  let rec attempt k inputs rounds_acc =
    let speaker = t.next_speaker in
    rotate t;
    let outcome =
      Runner.run
        (Runner.spec ~byzantine:cfg.byzantine ~crash:cfg.crash
           ~protocol:cfg.protocol ~bb:cfg.bb ~strategy:cfg.strategy
           ~tie:cfg.tie ~seed:(Vv_prelude.Rng.bits t.rng) ~subject ~speaker
           ~n:cfg.n ~t:cfg.t inputs)
    in
    let rounds_acc = rounds_acc + outcome.Runner.rounds in
    if outcome.Runner.termination then
      let decision =
        match List.filter_map Fun.id outcome.Runner.outputs with
        | v :: _ -> Some v
        | [] -> None
      in
      {
        index;
        subject;
        decision;
        speaker;
        attempts = k;
        valid = outcome.Runner.voting_validity_tb;
        rounds_total = rounds_acc;
      }
    else if k >= budget then
      {
        index;
        subject;
        decision = None;
        speaker;
        attempts = k;
        valid = true;  (* nothing decided, nothing violated *)
        rounds_total = rounds_acc;
      }
    else
      let inputs =
        match cfg.retry with
        | Rotate_and_adjust (policy, _) ->
            (* Adjust honest entries only; Byzantine slots are ignored by
               the runner anyway. *)
            Vv_core.Session.adjust ~tie:cfg.tie ~rng:t.rng policy inputs
        | No_retry | Rotate_speaker _ -> inputs
      in
      attempt (k + 1) inputs rounds_acc
  in
  let slot = attempt 1 inputs 0 in
  t.slots <- slot :: t.slots;
  slot

let pp_slot ppf s =
  Fmt.pf ppf "slot %d: subject=%d %a (speaker %d, %d attempt%s, %d rounds)"
    s.index s.subject
    (fun ppf -> function
      | Some v -> Fmt.pf ppf "decided %a%s" Oid.pp v
                    (if s.valid then "" else " [INVALID]")
      | None -> Fmt.string ppf "skipped")
    s.decision s.speaker s.attempts
    (if s.attempts = 1 then "" else "s")
    s.rounds_total
