lib/multishot/ledger.mli: Fmt Vv_ballot Vv_bb Vv_core Vv_sim
