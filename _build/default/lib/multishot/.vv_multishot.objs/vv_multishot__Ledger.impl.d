lib/multishot/ledger.ml: Fmt Fun List Vv_ballot Vv_bb Vv_core Vv_prelude Vv_sim
