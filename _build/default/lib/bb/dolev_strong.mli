(** Dolev-Strong authenticated Byzantine Broadcast.

    [t+1] rounds; agreement and (honest-sender) validity for any [t < n]
    given unforgeable signatures ({!Auth}). The default Phase-1 substrate
    of Algorithms 1-3. Implements {!Bb_intf.S}. *)

val name : string

type msg = int Auth.chain
(** Signature chains over the broadcast value; exposed so Byzantine-sender
    adversaries can craft equivocating initial chains via
    {!Auth.initial}. *)

type state

val rounds : n:int -> t:int -> int
(** [t + 1]. *)

val start :
  n:int ->
  t:int ->
  me:Vv_sim.Types.node_id ->
  sender:Vv_sim.Types.node_id ->
  value:int option ->
  state * msg Vv_sim.Types.envelope list

val step :
  n:int ->
  t:int ->
  me:Vv_sim.Types.node_id ->
  state ->
  lround:int ->
  inbox:(Vv_sim.Types.node_id * msg) list ->
  state * msg Vv_sim.Types.envelope list

val result : state -> int
(** The unique accepted value, or {!Bb_intf.bottom} on none/equivocation. *)
