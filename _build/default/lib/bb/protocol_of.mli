(** Wrap a {!Bb_intf.S} sub-machine as a full {!Vv_sim.Protocol.S} for
    direct execution, batching lock-step local rounds by the known delay
    bound delta (the timeout-per-round realisation of synchrony). *)

type bb_input = {
  sender : Vv_sim.Types.node_id;
  value : int option;  (** [Some v] exactly at the sender *)
}

module Make (Sub : Bb_intf.S) :
  Vv_sim.Protocol.S
    with type input = bb_input
     and type msg = Sub.msg
     and type output = int
