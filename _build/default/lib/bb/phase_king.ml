(* Phase-King Byzantine Broadcast (unauthenticated, polynomial messages).

   Round 0: the designated sender broadcasts its value; every node adopts
   what it received (bottom if nothing).  Then t+1 two-round phases of the
   Berman-Garay-Perry king algorithm run: in round A every node broadcasts
   its current value and computes the plurality [maj] with multiplicity
   [mult]; in round B the phase's king broadcasts its [maj] and every node
   keeps [maj] if [mult > n/2 + t], otherwise adopts the king's value.

   This simple two-round-per-phase variant requires n > 4t (the persistence
   argument needs n - t > n/2 + t).  For the tight unauthenticated bound
   n > 3t use Eig; for arbitrary t with authentication use Dolev_strong.
   Validity: if the sender is honest every honest node starts with its
   value and keeps it through every phase; agreement: at least one of the
   t+1 kings is honest, and its phase aligns all honest values. *)

open Vv_sim

let name = "phase-king"

type msg = Val of { phase : int; value : int } | King of { phase : int; value : int }

type state = {
  sender : Types.node_id;
  current : int;
  maj : int;
  mult : int;
}

let rounds ~n:_ ~t = (2 * (t + 1)) + 1

let king_of ~n phase = phase mod n

let start ~n:_ ~t:_ ~me ~sender ~value =
  match value with
  | Some v when me = sender ->
      if v < 0 then invalid_arg "Phase_king.start: negative value";
      ({ sender; current = v; maj = Bb_intf.bottom; mult = 0 },
       [ Types.broadcast (Val { phase = -1; value = v }) ])
  | None when me <> sender ->
      ({ sender; current = Bb_intf.bottom; maj = Bb_intf.bottom; mult = 0 }, [])
  | Some _ -> invalid_arg "Phase_king.start: value supplied at non-sender"
  | None -> invalid_arg "Phase_king.start: sender has no value"

(* Plurality of an association list value -> count; ties to the smaller
   value so all honest nodes break ties identically. *)
let plurality counts =
  Hashtbl.fold
    (fun v c (bv, bc) ->
      if c > bc || (c = bc && v < bv) then (v, c) else (bv, bc))
    counts (Bb_intf.bottom, 0)

let step ~n ~t ~me st ~lround ~inbox =
  (* Local round layout: 1 = receive sender value, send Val(0);
     2k+2 = receive Val(k), king sends King(k);
     2k+3 = receive King(k), update, send Val(k+1) unless k = t. *)
  if lround = 1 then begin
    let v =
      (* The value the designated sender sent us in round 0, if any. *)
      List.fold_left
        (fun acc (src, m) ->
          match m with
          | Val { phase = -1; value } when src = st.sender -> value
          | Val _ | King _ -> acc)
        st.current inbox
    in
    ({ st with current = v }, [ Types.broadcast (Val { phase = 0; value = v }) ])
  end
  else if lround mod 2 = 0 then begin
    let k = (lround - 2) / 2 in
    let counts = Hashtbl.create 8 in
    (* One Val per sender per phase: first message wins. *)
    let seen = Hashtbl.create 8 in
    List.iter
      (fun (src, m) ->
        match m with
        | Val { phase; value } when phase = k && not (Hashtbl.mem seen src) ->
            Hashtbl.replace seen src ();
            let c = try Hashtbl.find counts value with Not_found -> 0 in
            Hashtbl.replace counts value (c + 1)
        | Val _ | King _ -> ())
      inbox;
    let maj, mult = plurality counts in
    let st = { st with maj; mult } in
    if me = king_of ~n k then
      (st, [ Types.broadcast (King { phase = k; value = maj }) ])
    else (st, [])
  end
  else begin
    let k = (lround - 3) / 2 in
    let king = king_of ~n k in
    let king_value =
      List.fold_left
        (fun acc (src, m) ->
          match m with
          | King { phase; value } when phase = k && src = king && acc = None ->
              Some value
          | King _ | Val _ -> acc)
        None inbox
    in
    (* Keep maj on strong multiplicity, else follow the king (a silent
       Byzantine king leaves the current value unchanged). *)
    let v =
      if 2 * st.mult > n + (2 * t) then st.maj
      else match king_value with Some kv -> kv | None -> st.current
    in
    let st = { st with current = v } in
    if k < t then
      (st, [ Types.broadcast (Val { phase = k + 1; value = v }) ])
    else (st, [])
  end

let result st = st.current
