(* Phase-King Byzantine *Agreement* (every node holds an input value).

   The BA core of Phase_king without the sender round: t+1 two-round
   phases, each broadcasting current values, computing the plurality and
   deferring to the phase king unless the local multiplicity clears
   n/2 + t.  Same n > 4t requirement as Phase_king; used by the baseline
   protocols (median/interval/strong consensus) to agree on locally
   computed candidates. *)

open Vv_sim

type msg = Val of { phase : int; value : int } | King of { phase : int; value : int }

type state = { current : int; maj : int; mult : int }

(* Total local rounds; a node started at local round 0 must be stepped for
   rounds 1 .. rounds. *)
let rounds ~t = 2 * (t + 1)

let king_of ~n phase = phase mod n

let start value = ({ current = value; maj = Bb_intf.bottom; mult = 0 }, [ Types.broadcast (Val { phase = 0; value }) ])

let plurality counts =
  Hashtbl.fold
    (fun v c (bv, bc) ->
      if c > bc || (c = bc && v < bv) then (v, c) else (bv, bc))
    counts (Bb_intf.bottom, 0)

let step ~n ~t ~me st ~lround ~inbox =
  (* Round layout: 2k+1 = receive Val(k), king sends King(k);
     2k+2 = receive King(k), update, send Val(k+1) unless k = t. *)
  if lround mod 2 = 1 then begin
    let k = (lround - 1) / 2 in
    let counts = Hashtbl.create 8 in
    let seen = Hashtbl.create 8 in
    List.iter
      (fun (src, m) ->
        match m with
        | Val { phase; value } when phase = k && not (Hashtbl.mem seen src) ->
            Hashtbl.replace seen src ();
            let c = try Hashtbl.find counts value with Not_found -> 0 in
            Hashtbl.replace counts value (c + 1)
        | Val _ | King _ -> ())
      inbox;
    let maj, mult = plurality counts in
    let st = { st with maj; mult } in
    if me = king_of ~n k then
      (st, [ Types.broadcast (King { phase = k; value = maj }) ])
    else (st, [])
  end
  else begin
    let k = (lround - 2) / 2 in
    let king = king_of ~n k in
    let king_value =
      List.fold_left
        (fun acc (src, m) ->
          match m with
          | King { phase; value } when phase = k && src = king && acc = None ->
              Some value
          | King _ | Val _ -> acc)
        None inbox
    in
    let v =
      if 2 * st.mult > n + (2 * t) then st.maj
      else match king_value with Some kv -> kv | None -> st.current
    in
    let st = { st with current = v } in
    if k < t then (st, [ Types.broadcast (Val { phase = k + 1; value = v }) ])
    else (st, [])
  end

let result st = st.current
