(** Exponential-Information-Gathering Byzantine Broadcast (unauthenticated).

    Sender round plus [t+1] exchange rounds over repetition-free relay
    paths, resolved bottom-up by strict majority; the tight unauthenticated
    bound [n > 3t] at exponential message cost (guarded by
    {!max_tree_size}). Implements {!Bb_intf.S}. *)

val name : string
val max_tree_size : int

type msg =
  | Init of int  (** the sender's round-0 value *)
  | Report of { path : Vv_sim.Types.node_id list; value : int }

type state

val tree_size : n:int -> t:int -> int
(** Number of repetition-free paths of length [<= t+1] over [n] ids. *)

val rounds : n:int -> t:int -> int
(** [t + 2]. *)

val start :
  n:int ->
  t:int ->
  me:Vv_sim.Types.node_id ->
  sender:Vv_sim.Types.node_id ->
  value:int option ->
  state * msg Vv_sim.Types.envelope list
(** Raises [Invalid_argument] when the EIG tree would exceed
    {!max_tree_size}. *)

val step :
  n:int ->
  t:int ->
  me:Vv_sim.Types.node_id ->
  state ->
  lround:int ->
  inbox:(Vv_sim.Types.node_id * msg) list ->
  state * msg Vv_sim.Types.envelope list

val result : state -> int
