(** Phase-King Byzantine Broadcast (unauthenticated, polynomial messages).

    Sender round plus [t+1] two-round Berman-Garay-Perry phases; requires
    [n > 4t] (this simple two-round-per-phase variant's persistence
    argument needs [n - t > n/2 + t]). Implements {!Bb_intf.S}. *)

val name : string

type msg =
  | Val of { phase : int; value : int }
      (** phase [-1] is the sender's round-0 transmission *)
  | King of { phase : int; value : int }

type state

val rounds : n:int -> t:int -> int
(** [2(t+1) + 1]. *)

val king_of : n:int -> int -> Vv_sim.Types.node_id
(** The king of a phase (round-robin). *)

val start :
  n:int ->
  t:int ->
  me:Vv_sim.Types.node_id ->
  sender:Vv_sim.Types.node_id ->
  value:int option ->
  state * msg Vv_sim.Types.envelope list

val step :
  n:int ->
  t:int ->
  me:Vv_sim.Types.node_id ->
  state ->
  lround:int ->
  inbox:(Vv_sim.Types.node_id * msg) list ->
  state * msg Vv_sim.Types.envelope list

val result : state -> int
