(* Facade: choose a Byzantine Broadcast substrate by name.

   | substrate    | assumption      | tolerance | rounds | messages    |
   |--------------|-----------------|-----------|--------|-------------|
   | dolev-strong | signatures      | n > t     | t+1    | polynomial  |
   | phase-king   | none            | n > 4t    | 2t+3   | polynomial  |
   | eig          | none            | n > 3t    | t+2    | exponential |

   Algorithms 1-3 default to Dolev-Strong: the paper's Inequality (3)
   already imposes N > 3t for the voting phases, so the substrate is never
   the binding constraint. *)

type choice = Dolev_strong | Phase_king | Eig

let default = Dolev_strong

let sub : choice -> (module Bb_intf.S) = function
  | Dolev_strong -> (module Dolev_strong)
  | Phase_king -> (module Phase_king)
  | Eig -> (module Eig)

(* Minimum system size for the substrate's guarantees at tolerance [t]. *)
let min_n choice ~t =
  match choice with
  | Dolev_strong -> t + 2
  | Phase_king -> (4 * t) + 1
  | Eig -> (3 * t) + 1

let rounds choice ~n ~t =
  let (module Sub) = sub choice in
  Sub.rounds ~n ~t

let name choice =
  let (module Sub) = sub choice in
  Sub.name

let of_name = function
  | "dolev-strong" | "ds" -> Some Dolev_strong
  | "phase-king" | "pk" -> Some Phase_king
  | "eig" -> Some Eig
  | _ -> None

let all = [ Dolev_strong; Phase_king; Eig ]

let pp ppf c = Fmt.string ppf (name c)
