(* Simulated message authentication for Dolev-Strong.

   A signature is a (signer, tag) pair where the tag is a keyed digest of
   the signed data under the signer's per-identity secret.  This is not
   cryptography — it simulates the *interface invariant* Dolev-Strong
   needs: a verifier can check that a given identity vouched for given
   data, and the Byzantine adversaries implemented in this repository never
   call [sign] on behalf of honest identities (see DESIGN.md §3). *)

type signature = { signer : Vv_sim.Types.node_id; tag : int }

(* Per-identity secret, derived deterministically so that signing is a pure
   function and simulations stay reproducible. *)
let secret signer =
  let r = Vv_prelude.Rng.create (0x5170_0000 + signer) in
  Vv_prelude.Rng.bits r

let sign ~signer ~data = { signer; tag = Hashtbl.hash (secret signer, data) }

let verify ~data s = s.tag = Hashtbl.hash (secret s.signer, data)

let signer s = s.signer

(* A signature chain over a value: the Dolev-Strong message format.  The
   chain lists signatures in signing order (sender first). *)
type 'a chain = { value : 'a; sigs : signature list }

let chain_data value prior_signers = (value, prior_signers)

let initial ~sender value =
  { value; sigs = [ sign ~signer:sender ~data:(chain_data value []) ] }

let extend chain ~signer =
  let prior = List.map (fun s -> s.signer) chain.sigs in
  { chain with
    sigs = chain.sigs @ [ sign ~signer ~data:(chain_data chain.value prior) ] }

let signers chain = List.map (fun s -> s.signer) chain.sigs

(* A chain is valid for [sender] at relay depth [len] when it has exactly
   [len] signatures from distinct identities, the first being the sender,
   and each signature verifies against the value and the prefix before it. *)
let valid chain ~sender ~len =
  let sigs = chain.sigs in
  List.length sigs = len
  && (match sigs with [] -> false | s :: _ -> s.signer = sender)
  && (let ids = List.map (fun s -> s.signer) sigs in
      List.length (List.sort_uniq compare ids) = len)
  &&
  let rec check prior = function
    | [] -> true
    | s :: rest ->
        verify ~data:(chain_data chain.value (List.rev prior)) s
        && check (s.signer :: prior) rest
  in
  check [] sigs
