lib/bb/bb.ml: Bb_intf Dolev_strong Eig Fmt Phase_king
