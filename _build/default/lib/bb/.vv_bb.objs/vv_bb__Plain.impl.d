lib/bb/plain.ml: Bb_intf List Types Vv_sim
