lib/bb/auth.ml: Hashtbl List Vv_prelude Vv_sim
