lib/bb/eig.mli: Vv_sim
