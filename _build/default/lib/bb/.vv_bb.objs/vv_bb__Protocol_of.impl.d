lib/bb/protocol_of.ml: Bb_intf List Protocol Types Vv_sim
