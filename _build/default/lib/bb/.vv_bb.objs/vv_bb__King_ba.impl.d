lib/bb/king_ba.ml: Bb_intf Hashtbl List Types Vv_sim
