lib/bb/auth.mli: Vv_sim
