lib/bb/king_ba.mli: Vv_sim
