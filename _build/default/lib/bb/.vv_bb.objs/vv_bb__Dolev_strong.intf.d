lib/bb/dolev_strong.mli: Auth Vv_sim
