lib/bb/phase_king.mli: Vv_sim
