lib/bb/eig.ml: Bb_intf Hashtbl List Types Vv_sim
