lib/bb/bb.mli: Bb_intf Fmt
