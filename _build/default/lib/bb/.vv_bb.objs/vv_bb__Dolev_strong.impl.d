lib/bb/dolev_strong.ml: Auth Bb_intf List Types Vv_sim
