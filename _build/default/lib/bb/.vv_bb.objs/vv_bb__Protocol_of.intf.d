lib/bb/protocol_of.mli: Bb_intf Vv_sim
