lib/bb/plain.mli: Vv_sim
