lib/bb/phase_king.ml: Bb_intf Hashtbl List Types Vv_sim
