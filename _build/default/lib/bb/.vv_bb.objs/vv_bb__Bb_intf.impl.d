lib/bb/bb_intf.ml: Vv_sim
