(* Exponential-Information-Gathering Byzantine Broadcast (unauthenticated).

   Round 0: the designated sender broadcasts its value.  Rounds 1..t+1 run
   the classic EIG exchange: every node relays what it has heard along
   every repetition-free path, building a tree whose node sigma@[q] stores
   "q said that sigma said ... the sender's value is v".  After t+2 local
   rounds each node resolves the tree bottom-up by strict majority
   (defaulting to bottom) and outputs resolve([]).

   Achieves the tight unauthenticated bound n > 3t in t+1 exchange rounds,
   at the cost of exponentially many message entries — acceptable at the
   simulation sizes of this repository, and guarded by [max_tree_size]. *)

open Vv_sim

let name = "eig"

let max_tree_size = 500_000

type msg =
  | Init of int  (* the sender's round-0 value *)
  | Report of { path : Types.node_id list; value : int }

type state = {
  sender : Types.node_id;
  tree : (Types.node_id list, int) Hashtbl.t;
      (* path (in relay order, most recent relay last) -> reported value *)
  own : int;  (* this node's level-0 value w_i *)
  resolved : int option;
}

(* Number of repetition-free paths of length <= t+1 over n ids. *)
let tree_size ~n ~t =
  let rec go len acc product =
    if len > t + 1 then acc
    else
      let product = product * (n - len + 1) in
      go (len + 1) (acc + product) product
  in
  go 1 1 1

let rounds ~n:_ ~t = t + 2

let start ~n ~t ~me ~sender ~value =
  if tree_size ~n ~t > max_tree_size then
    invalid_arg "Eig.start: EIG tree too large for these n, t";
  let st =
    { sender; tree = Hashtbl.create 64; own = Bb_intf.bottom; resolved = None }
  in
  match value with
  | Some v when me = sender ->
      if v < 0 then invalid_arg "Eig.start: negative value";
      ({ st with own = v }, [ Types.broadcast (Init v) ])
  | None when me <> sender -> (st, [])
  | Some _ -> invalid_arg "Eig.start: value supplied at non-sender"
  | None -> invalid_arg "Eig.start: sender has no value"

(* All ids not appearing in [path]. *)
let absent ~n path =
  let rec go q acc = if q < 0 then acc else go (q - 1) (if List.mem q path then acc else q :: acc) in
  go (n - 1) []

let rec resolve ~n ~t tree path =
  if List.length path = t + 1 then
    match Hashtbl.find_opt tree path with
    | Some v -> v
    | None -> Bb_intf.bottom
  else begin
    let children = absent ~n path in
    let counts = Hashtbl.create 8 in
    List.iter
      (fun q ->
        let v = resolve ~n ~t tree (path @ [ q ]) in
        let c = try Hashtbl.find counts v with Not_found -> 0 in
        Hashtbl.replace counts v (c + 1))
      children;
    let total = List.length children in
    let winner =
      Hashtbl.fold
        (fun v c acc -> if 2 * c > total then Some v else acc)
        counts None
    in
    match winner with Some v -> v | None -> Bb_intf.bottom
  end

let step ~n ~t ~me st ~lround ~inbox =
  if lround = 1 then begin
    (* Adopt the sender's value and open the exchange with a root report. *)
    let own =
      List.fold_left
        (fun acc (src, m) ->
          match m with
          | Init v when src = st.sender && v >= 0 -> v
          | Init _ | Report _ -> acc)
        st.own inbox
    in
    ({ st with own }, [ Types.broadcast (Report { path = []; value = own }) ])
  end
  else if lround <= t + 2 then begin
    (* Accept level lround-1 entries: Report(path, v) from q with
       |path| = lround-2 and q not already on the path. *)
    let want_len = lround - 2 in
    List.iter
      (fun (src, m) ->
        match m with
        | Report { path; value }
          when List.length path = want_len
               && (not (List.mem src path))
               && not (Hashtbl.mem st.tree (path @ [ src ])) ->
            Hashtbl.replace st.tree (path @ [ src ]) value
        | Report _ | Init _ -> ())
      inbox;
    let outbox =
      if lround <= t + 1 then
        (* Relay every freshly-completed level not involving us. *)
        Hashtbl.fold
          (fun path value acc ->
            if List.length path = lround - 1 && not (List.mem me path) then
              Types.broadcast (Report { path; value }) :: acc
            else acc)
          st.tree []
      else []
    in
    (* Deterministic outbox order for reproducibility. *)
    let outbox =
      List.sort
        (fun (a : msg Types.envelope) b -> compare a.payload b.payload)
        outbox
    in
    let resolved =
      if lround = t + 2 then Some (resolve ~n ~t st.tree []) else st.resolved
    in
    ({ st with resolved }, outbox)
  end
  else (st, [])

let result st =
  match st.resolved with Some v -> v | None -> st.own
