(** Plain (unprotected) sender broadcast as a degenerate BB sub-machine.

    Reliable only when the sender cannot equivocate: honest or
    crash-faulty senders, or any sender under the local broadcast model
    (Property 6). Phase-1 substrate of Algorithm 4 and the CFT protocol —
    which is exactly why they shed Inequality (3)'s [3t] term. Implements
    {!Bb_intf.S}. *)

val name : string

type msg = int

type state

val rounds : n:int -> t:int -> int
(** 1. *)

val start :
  n:int ->
  t:int ->
  me:Vv_sim.Types.node_id ->
  sender:Vv_sim.Types.node_id ->
  value:int option ->
  state * msg Vv_sim.Types.envelope list

val step :
  n:int ->
  t:int ->
  me:Vv_sim.Types.node_id ->
  state ->
  lround:int ->
  inbox:(Vv_sim.Types.node_id * msg) list ->
  state * msg Vv_sim.Types.envelope list

val result : state -> int
