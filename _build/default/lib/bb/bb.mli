(** Facade: choose a Byzantine Broadcast substrate.

    {v
    | substrate    | assumption | tolerance | rounds | messages    |
    |--------------|------------|-----------|--------|-------------|
    | dolev-strong | signatures | n > t     | t+1    | polynomial  |
    | phase-king   | none       | n > 4t    | 2t+3   | polynomial  |
    | eig          | none       | n > 3t    | t+2    | exponential |
    v}

    Algorithms 1-3 default to Dolev-Strong: Inequality (3) already imposes
    [N > 3t] on the voting phases, so the substrate is never the binding
    constraint. *)

type choice = Dolev_strong | Phase_king | Eig

val default : choice
(** [Dolev_strong]. *)

val sub : choice -> (module Bb_intf.S)

val min_n : choice -> t:int -> int
(** Smallest system size for the substrate's guarantees at tolerance [t]. *)

val rounds : choice -> n:int -> t:int -> int
val name : choice -> string
val of_name : string -> choice option
val all : choice list
val pp : choice Fmt.t
