(* Common interface of the Byzantine Broadcast / Agreement sub-machines.

   A sub-machine is a fixed-duration round protocol that can be embedded
   inside a larger protocol (Phase 1 of Algorithms 1-3 embeds one to
   broadcast the subject) or wrapped into a full Protocol.S for direct
   execution (Protocol_of).  Values are integers; [bottom] (-1) encodes the
   absence of a valid value, on which nodes may also agree when the sender
   is faulty. *)

let bottom = -1

module type S = sig
  val name : string

  type state
  type msg

  val rounds : n:int -> t:int -> int
  (** Total local rounds: [result] is defined after the inbox of local round
      [rounds n t] has been processed by [step]. *)

  val start :
    n:int ->
    t:int ->
    me:Vv_sim.Types.node_id ->
    sender:Vv_sim.Types.node_id ->
    value:int option ->
    state * msg Vv_sim.Types.envelope list
  (** Local round 0. [value] must be [Some v] (with [v >= 0]) exactly at the
      designated sender. *)

  val step :
    n:int ->
    t:int ->
    me:Vv_sim.Types.node_id ->
    state ->
    lround:int ->
    inbox:(Vv_sim.Types.node_id * msg) list ->
    state * msg Vv_sim.Types.envelope list
  (** Local rounds 1 .. [rounds n t]. *)

  val result : state -> int
  (** The agreed value, or [bottom]. Defined once all rounds have run;
      querying earlier returns the current tentative value. *)
end
