(* Experiments E4-E5: the paper's worked examples.

   E4: the Section I / IV motivating scenario (N = 10, t = 3, honest inputs
       {0,0,0,1,1,2,3}): Algorithm 1 is driven to the wrong output by the
       colluding adversary, while the safety-guaranteed Algorithm 2 stalls
       rather than lies, and both decide correctly once the bound holds.
   E5: the Section VII-A incremental threshold example and a delay sweep
       comparing rounds-to-decision of Algorithms 1 and 3. *)

module Table = Vv_prelude.Table
module Runner = Vv_core.Runner
module Strategy = Vv_core.Strategy
module Oid = Vv_ballot.Option_id

let describe_outputs outputs =
  let cells =
    List.map
      (function None -> "-" | Some v -> Oid.to_string v)
      outputs
  in
  String.concat "" cells

let run_row t protocol strategy ~tol ~f honest =
  let r = Runner.simple ~protocol ~strategy ~t:tol ~f honest in
  Table.add_row t
    [
      Runner.protocol_label protocol;
      Fmt.str "%a" Strategy.pp strategy;
      Table.icell tol;
      Table.icell f;
      Table.bcell r.Runner.termination;
      Table.bcell r.Runner.agreement;
      Table.bcell r.Runner.voting_validity;
      Table.bcell r.Runner.safety_admissible;
      describe_outputs r.Runner.outputs;
    ]

let e4 () =
  let honest = Witness.section1_example in
  let t =
    Table.create
      ~title:
        "E4: Section I example - honest {A,A,A,B,B,C,D}, N=10, t=3 vs N=13, \
         t=3"
      ~headers:
        [ "protocol"; "adversary"; "t"; "f"; "term"; "agree"; "validity";
          "safe"; "outputs" ]
      ~aligns:
        [ Table.Left; Table.Left; Table.Right; Table.Right; Table.Right;
          Table.Right; Table.Right; Table.Right; Table.Left ]
      ()
  in
  (* Below the bound (N = 10 <= 2t + 2B_G + C_G = 12): Algorithm 1 is
     fooled; SCT stalls but stays safe. *)
  run_row t Runner.Algo1 Strategy.Collude_second ~tol:3 ~f:3 honest;
  run_row t Runner.Algo2_sct Strategy.Collude_second ~tol:3 ~f:3 honest;
  (* Same dispersion with a decisive plurality (gap > 2t): both succeed.
     honest {A x8, B,B,C,D}: A_G=8, B_G=2, C_G=2, gap 6 > 2t = 6? need 7.
     Use A x10: gap 8 > 7. *)
  let decisive =
    List.map Oid.of_int [ 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 1; 1; 2; 3 ]
  in
  run_row t Runner.Algo1 Strategy.Collude_second ~tol:3 ~f:3 decisive;
  run_row t Runner.Algo2_sct Strategy.Collude_second ~tol:3 ~f:3 decisive;
  t

let e5_firing () =
  let t =
    Table.create
      ~title:
        "E5a: Section VII-A example - incremental threshold firing point \
         (N=10, arrivals 0,0,1,0,0,0,2,3,0,1)"
      ~headers:[ "delta_P"; "fires after k votes"; "paper says" ]
      ~aligns:[ Table.Right; Table.Right; Table.Left ]
      ()
  in
  (match Witness.incremental_firing_point ~n:10 Witness.section7_sequence with
  | Some k -> Table.add_row t [ "0"; Table.icell k; "7 (Section VII-A)" ]
  | None -> Table.add_row t [ "0"; "-"; "7 (Section VII-A)" ]);
  (match
     Witness.incremental_firing_point ~delta_p:1 ~n:10 Witness.section7_sequence
   with
  | Some k -> Table.add_row t [ "1"; Table.icell k; "-" ]
  | None -> Table.add_row t [ "1"; "-"; "-" ]);
  t

let mean_decision_round (r : Runner.outcome) =
  let rounds = List.filter_map Fun.id r.Runner.decision_rounds in
  match rounds with
  | [] -> None
  | l ->
      Some
        (List.fold_left ( + ) 0 l |> fun s ->
         float_of_int s /. float_of_int (List.length l))

(* E5c: adversarial scheduling.  The network (within its bound delta) may
   order deliveries to hurt the incremental threshold: votes for the
   leading option arrive last, so Inequality (14) fires as late as
   possible.  Algorithm 3 must still decide no later than Algorithm 1's
   fixed 2*delta wait — optimistic responsiveness degrades gracefully to
   the synchronous bound. *)
let e5_adversarial_schedule ?(delta = 4) () =
  let honest = List.map Oid.of_int [ 0; 0; 0; 0; 0; 1 ] in
  let n = List.length honest + 1 in
  (* Senders preferring the leader get the full delay; everyone else is
     delivered immediately.  Sender ids 0..4 vote 0 (the leader). *)
  let schedule ~round:_ ~src ~dst:_ = if src <= 4 then delta else 1 in
  let run protocol delay =
    Runner.run
      (Runner.spec ~byzantine:[ n - 1 ] ~protocol
         ~strategy:Vv_core.Strategy.Collude_second ~delay ~n ~t:1
         (honest @ [ Oid.of_int 0 ]))
  in
  let t =
    Table.create
      ~title:
        (Fmt.str
           "E5c: adversarial schedule (leader votes delayed to the bound \
            delta=%d) - Algorithm 3 degrades to Algorithm 1's wait, never \
            worse"
           delta)
      ~headers:[ "protocol"; "schedule"; "term"; "valid"; "rounds" ]
      ~aligns:[ Table.Left; Table.Left; Table.Right; Table.Right; Table.Right ]
      ()
  in
  let add label protocol delay sched_label =
    let r = run protocol delay in
    Table.add_row t
      [
        label;
        sched_label;
        Table.bcell r.Runner.termination;
        Table.bcell r.Runner.voting_validity;
        Table.icell r.Runner.rounds;
      ]
  in
  let adversarial = Vv_sim.Delay.Adversarial { bound = delta; schedule } in
  let friendly = Vv_sim.Delay.Fixed 1 in
  add "algo1" Runner.Algo1 (Vv_sim.Delay.Fixed delta) "uniform worst";
  add "algo3" Runner.Algo3_incremental adversarial "leader-starved";
  add "algo3" Runner.Algo3_incremental friendly "instant";
  t

let e5_delay_sweep ?(seeds = 12) () =
  let honest = List.map Oid.of_int [ 0; 0; 0; 0; 0; 1 ] in
  let t =
    Table.create
      ~title:
        "E5b: rounds to decision, Algorithm 1 (wait 2*delta) vs Algorithm 3 \
         (incremental) - uniform delays 1..delta"
      ~headers:
        [ "delta"; "algo1 mean decision round"; "algo3 mean decision round";
          "speedup" ]
      ~aligns:[ Table.Right; Table.Right; Table.Right; Table.Right ]
      ()
  in
  List.iter
    (fun hi ->
      let delay =
        if hi = 1 then Vv_sim.Delay.Synchronous
        else Vv_sim.Delay.Uniform { lo = 1; hi }
      in
      let mean_of protocol =
        let acc = ref 0.0 and cnt = ref 0 in
        for seed = 1 to seeds do
          let r =
            Runner.simple ~protocol ~strategy:Strategy.Collude_second ~delay
              ~seed:(seed * 7919) ~t:1 ~f:1 honest
          in
          match mean_decision_round r with
          | Some m ->
              acc := !acc +. m;
              incr cnt
          | None -> ()
        done;
        if !cnt = 0 then nan else !acc /. float_of_int !cnt
      in
      let m1 = mean_of Runner.Algo1 in
      let m3 = mean_of Runner.Algo3_incremental in
      Table.add_row t
        [
          Table.icell hi;
          Table.fcell ~decimals:2 m1;
          Table.fcell ~decimals:2 m3;
          Table.fcell ~decimals:2 (m1 /. m3);
        ])
    [ 1; 2; 3; 4; 5; 6 ];
  t
