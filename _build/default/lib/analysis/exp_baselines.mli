(** Experiments E8-E9: baseline comparison and protocol cost. *)

val e8_election :
  ?trials:int -> ?ng:int -> ?t:int -> ?seed:int -> unit -> Vv_prelude.Table.t
(** Election workload: exact-plurality / agreement / termination rates of
    the voting-validity protocols vs the approximate baselines under
    collusion. *)

val e8_sensor :
  ?trials:int -> ?ng:int -> ?t:int -> ?seed:int -> unit -> Vv_prelude.Table.t
(** Sensor workload with Byzantine outliers: where median/approximate
    agreement win and plurality voting has nothing to find. *)

val e9 : ?t:int -> unit -> Vv_prelude.Table.t
(** Rounds and messages per protocol and substrate across system sizes. *)
