(* Experiments E6, E7 and E10: the tolerance bounds.

   E6: the local broadcast model (Algorithm 4) sheds Inequality (3)'s 3t
       term — sweep (N, t) showing Algorithm 4 succeeding at points where
       N <= 3t as long as Inequality (15) holds.
   E7: adversarial sweeps around the Lemma 2 / Theorem 3 threshold (the
       exactness flip at A_G - B_G = t) and the Theorem 10 demonstration
       that a safety-guaranteed protocol cannot use delta_P < t.
   E10: Theorem 12's trade-off between fault tolerance and vote dispersion
        tolerance, including the third-option trick of Section VI-A. *)

module Table = Vv_prelude.Table
module Bounds = Vv_core.Bounds
module Runner = Vv_core.Runner
module Strategy = Vv_core.Strategy
module Oid = Vv_ballot.Option_id

let e6 () =
  let t =
    Table.create
      ~title:
        "E6: local broadcast drops the 3t term - Algorithm 4 at N <= 3t \
         (B_G=1, C_G=0, f=t colluders)"
      ~headers:
        [ "N"; "t"; "3t<N (Ineq3)"; "Ineq15 ok"; "algo4 term"; "algo4 valid" ]
      ~aligns:
        [ Table.Right; Table.Right; Table.Right; Table.Right; Table.Right;
          Table.Right ]
      ()
  in
  List.iter
    (fun (n, tol) ->
      let bg = 1 and cg = 0 in
      let ng = n - tol in
      let ag = ng - bg in
      if ag > bg then begin
        let honest = Witness.inputs ~ag ~bg ~cg in
        let ineq3 = n > 3 * tol in
        let ineq15 = Bounds.satisfied Bounds.Cft ~n ~t:tol ~bg ~cg in
        let r =
          Runner.simple ~protocol:Runner.Algo4_local
            ~strategy:Strategy.Collude_second ~t:tol ~f:tol honest
        in
        Table.add_row t
          [
            Table.icell n;
            Table.icell tol;
            Table.bcell ineq3;
            Table.bcell ineq15;
            Table.bcell r.Runner.termination;
            Table.bcell r.Runner.voting_validity;
          ]
      end)
    [ (7, 1); (7, 2); (9, 2); (9, 3); (10, 3); (11, 3); (12, 4); (13, 4) ];
  t

let e7_lemma2 () =
  let t =
    Table.create
      ~title:
        "E7a: exactness flips at the Lemma 2 threshold (Algorithm 1 vs f=t \
         colluders)"
      ~headers:
        [ "t"; "B_G"; "C_G"; "gap"; "N"; "bound ok"; "term"; "valid";
          "exact"; "matches theory" ]
      ~aligns:(List.init 10 (fun i -> if i < 5 then Table.Right else Table.Right))
      ()
  in
  List.iter
    (fun tol ->
      List.iter
        (fun bg ->
          List.iter
            (fun cg ->
              if not (cg > 0 && bg = 0) then
                List.iter
                  (fun gap ->
                    let c = Witness.lemma2_cell ~t:tol ~bg ~cg ~gap in
                    Table.add_row t
                      [
                        Table.icell tol;
                        Table.icell bg;
                        Table.icell cg;
                        Table.icell gap;
                        Table.icell c.Witness.n;
                        Table.bcell c.Witness.bound_ok;
                        Table.bcell c.Witness.terminated;
                        Table.bcell c.Witness.valid;
                        Table.bcell c.Witness.exact;
                        Table.bcell c.Witness.matches_theory;
                      ])
                  [ tol - 1; tol; tol + 1; tol + 2 ])
            [ 0; 1; 2 ])
        [ 1; 2 ])
    [ 1; 2; 3 ];
  t

let e7_theorem10 () =
  let t =
    Table.create
      ~title:
        "E7b: Theorem 10 - SCT with delta_P = t-1 is fooled on honest ties; \
         delta_P = t stalls safely"
      ~headers:[ "t"; "lax (t-1) violates"; "strict (t) safe" ]
      ~aligns:[ Table.Right; Table.Right; Table.Right ]
      ()
  in
  List.iter
    (fun tol ->
      let d = Witness.theorem10_demo ~t:tol in
      Table.add_row t
        [
          Table.icell tol;
          Table.bcell d.Witness.lax_violates;
          Table.bcell d.Witness.strict_safe;
        ])
    [ 1; 2; 3 ];
  t

let e10_frontier ?(n = 12) () =
  let t =
    Table.create
      ~title:
        (Fmt.str
           "E10a: Theorem 12 frontier at N=%d - max tolerable t vs vote \
            dispersion (2B_G + C_G)"
           n)
      ~headers:
        [ "B_G"; "C_G"; "2B_G+C_G"; "t_vd (K=2)"; "max t BFT/CFT";
          "t_vd (K=3)"; "max t SCT" ]
      ~aligns:(List.init 7 (fun _ -> Table.Right))
      ()
  in
  List.iter
    (fun bg ->
      List.iter
        (fun cg ->
          if not (cg > 0 && bg = 0) then
            Table.add_row t
              [
                Table.icell bg;
                Table.icell cg;
                Table.icell ((2 * bg) + cg);
                Table.fcell ~decimals:1
                  (Bounds.vote_dispersion_tolerance Bounds.Bft ~bg ~cg);
                Table.icell (Bounds.max_tolerable_t Bounds.Bft ~n ~bg ~cg);
                Table.fcell ~decimals:1
                  (Bounds.vote_dispersion_tolerance Bounds.Sct ~bg ~cg);
                Table.icell (Bounds.max_tolerable_t Bounds.Sct ~n ~bg ~cg);
              ])
        [ 0; 1; 2; 3; 4 ])
    [ 0; 1; 2; 3 ];
  t

(* E11: ablation of the local judgment condition delta_P.

   Two workloads at t = 2: a decisive electorate (gap = 5) where larger
   delta_P only costs termination (Property 3 needs gap > delta_P + t for
   every honest node to propose), and the Theorem 10 honest-tie attack
   where delta_P < t lets the colluders force an invalid decision through
   the t+1 quorum.  Together they show delta_P = t is the unique safe and
   live choice for safety-guaranteed protocols, and delta_P = 0 maximises
   liveness when validity-below-the-bound is acceptable (Algorithm 1). *)
let e11_judgment_ablation ?(t = 2) () =
  let tab =
    Table.create
      ~title:
        (Fmt.str
           "E11: delta_P ablation at t=%d - termination on a decisive \
            electorate vs safety under the Theorem 10 tie attack"
           t)
      ~headers:
        [ "delta_P"; "quorum"; "decisive: term"; "decisive: valid";
          "tie attack: term"; "tie attack: tb-valid" ]
      ~aligns:(List.init 6 (fun _ -> Table.Right))
      ()
  in
  let decisive = Witness.inputs ~ag:(1 + ((2 * t) + 1)) ~bg:1 ~cg:0 in
  let k = 2 * t in
  let tie_inputs =
    List.init k (fun _ -> Oid.of_int 0) @ List.init k (fun _ -> Oid.of_int 1)
  in
  let run_with protocol strategy inputs dp =
    Runner.run
      (Runner.spec
         ~byzantine:(List.init t (fun i -> List.length inputs + i))
         ~protocol ~strategy
         ~judgment_override:(Vv_core.Variant.Delta_custom dp)
         ~n:(List.length inputs + t)
         ~t
         (inputs @ List.init t (fun _ -> Oid.of_int 0)))
  in
  for dp = 0 to (2 * t) + 1 do
    List.iter
      (fun (quorum_label, protocol) ->
        let dec =
          run_with protocol Strategy.Collude_second decisive dp
        in
        let tie =
          run_with protocol (Strategy.Collude_fixed 0) tie_inputs dp
        in
        Table.add_row tab
          [
            Table.icell dp;
            quorum_label;
            Table.bcell dec.Runner.termination;
            Table.bcell dec.Runner.voting_validity;
            Table.bcell tie.Runner.termination;
            Table.bcell tie.Runner.voting_validity_tb;
          ])
      [ ("N-t", Runner.Algo1); ("t+1", Runner.Algo2_sct) ]
  done;
  tab

(* Section VI-A's remark: moving a hesitant vote from the runner-up B to a
   third option C shrinks the bound (B_G weighs double).  Compare the two
   input multisets empirically at the marginal tolerance. *)
let e10_third_option () =
  let t =
    Table.create
      ~title:
        "E10b: third-option trick - voting C instead of B buys one more \
         tolerable fault"
      ~headers:
        [ "honest inputs"; "B_G"; "C_G"; "bound (t=3)"; "N"; "term"; "valid" ]
      ~aligns:
        [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
          Table.Right; Table.Right ]
      ()
  in
  let run label honest =
    match Bounds.decompose ~tie:Vv_ballot.Tie_break.default honest with
    | None -> ()
    | Some (_, _, bg, cg) ->
        let tol = 3 in
        let n = List.length honest + tol in
        let r =
          Runner.simple ~protocol:Runner.Algo1 ~strategy:Strategy.Collude_second
            ~t:tol ~f:tol honest
        in
        Table.add_row t
          [
            label;
            Table.icell bg;
            Table.icell cg;
            Table.icell (Bounds.bft_bound ~t:tol ~bg ~cg);
            Table.icell n;
            Table.bcell r.Runner.termination;
            Table.bcell r.Runner.voting_validity;
          ]
  in
  (* 13 honest votes: A x9 + four votes that either pile on B or spread. *)
  run "A*9 B*4      (hesitant voters all pick B)"
    (Witness.inputs ~ag:9 ~bg:4 ~cg:0);
  run "A*9 B*2 C,D  (two hesitant voters pick third options)"
    (List.map Oid.of_int [ 0; 0; 0; 0; 0; 0; 0; 0; 0; 1; 1; 2; 3 ]);
  t
