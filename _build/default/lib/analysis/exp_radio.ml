(* Experiment E12 (extension): multi-hop voting over radio topologies.

   E12a: the same electorate voting over different connected topologies —
         the flooding generalisation of Algorithm 4 stays exact wherever
         the honest subgraph is connected; latency scales with diameter
         and message cost with edges x rounds.
   E12b: the relay-poisoning limit: first-accept flooding protects only
         direct neighbours of a victim; on multi-hop topologies the fake
         copy wins beyond one hop and exactness (termination) is lost —
         never validity.  This is precisely where the connectivity bound
         of Khan-Naqvi-Vaidya [36] becomes necessary. *)

module Table = Vv_prelude.Table
module T = Vv_radio.Topology
module R = Vv_radio.Radio_runner
module Oid = Vv_ballot.Option_id

(* 9 nodes, one Byzantine (node 8); honest A=6 vs B=2. *)
let inputs9 =
  List.map Oid.of_int [ 0; 0; 0; 1; 0; 1; 0; 0; 0 ]

let topologies =
  [
    ("complete-9", T.complete 9);
    ("ring-9 (k=1)", T.ring ~k:1 9);
    ("ring-9 (k=2)", T.ring ~k:2 9);
    ("grid-3x3", T.grid ~w:3 ~h:3);
    ("geometric-9 (r=.5)", T.random_geometric ~n:9 ~radius:0.5 ~seed:12);
  ]

let e12_topologies () =
  let tab =
    Table.create
      ~title:
        "E12a: multi-hop radio voting across topologies (N=9, t=f=1, \
         colluding origin)"
      ~headers:
        [ "topology"; "diameter"; "min degree"; "term"; "valid"; "rounds";
          "messages" ]
      ~aligns:
        [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
          Table.Right; Table.Right ]
      ()
  in
  List.iter
    (fun (label, topo) ->
      if T.connected topo then begin
        let r =
          R.run ~strategy:R.Originate_second ~topology:topo ~t:1
            ~byzantine:[ 8 ] inputs9
        in
        Table.add_row tab
          [
            label;
            Table.icell (T.diameter topo);
            Table.icell (T.min_degree topo);
            Table.bcell r.R.termination;
            Table.bcell r.R.voting_validity;
            Table.icell r.R.rounds;
            Table.icell r.R.messages;
          ]
      end)
    topologies;
  tab

let e12_poison () =
  let tab =
    Table.create
      ~title:
        "E12b: relay poisoning - first-accept flooding protects one hop \
         only (victim 0, fake on the runner-up)"
      ~headers:[ "topology"; "attack"; "term"; "valid"; "exact" ]
      ~aligns:[ Table.Left; Table.Left; Table.Right; Table.Right; Table.Right ]
      ()
  in
  (* Thin-but-safe margin: honest A=5, B=2 on 8 nodes, Byzantine node 5. *)
  let inputs = List.map Oid.of_int [ 0; 0; 0; 0; 1; 1; 1; 0 ] in
  let run label topo strategy attack =
    let r = R.run ~strategy ~topology:topo ~t:1 ~byzantine:[ 5 ] inputs in
    Table.add_row tab
      [
        label;
        attack;
        Table.bcell r.R.termination;
        Table.bcell r.R.voting_validity;
        Table.bcell (r.R.termination && r.R.voting_validity);
      ]
  in
  run "complete-8" (T.complete 8) R.Originate_second "collude";
  run "complete-8" (T.complete 8) (R.Poison_origin (0, 1)) "poison origin 0";
  run "ring-8" (T.ring ~k:1 8) R.Originate_second "collude";
  run "ring-8" (T.ring ~k:1 8) (R.Poison_origin (0, 1)) "poison origin 0";
  tab
