(** Engine plumbing for the baseline protocols (experiment E8). *)

type summary = {
  outputs : int option list;  (** honest nodes, node-id order *)
  rounds : int;
  stalled : bool;
}

val raw_collude : unit -> Vv_baselines.Exchange_ba.msg Vv_sim.Adversary.t
(** Observe honest round-0 values and flood the runner-up — the collusion
    the voting protocols face, aimed at the exchange-based baselines. *)

val approx_outlier : value:float -> float Vv_sim.Adversary.t
(** Flood an extreme scalar every round (the sensor-failure scenario). *)

module Median_E : module type of Vv_sim.Engine.Make (Vv_baselines.Median_validity)
module Interval_E : module type of Vv_sim.Engine.Make (Vv_baselines.Interval_validity)
module Strong_E : module type of Vv_sim.Engine.Make (Vv_baselines.Strong_consensus)
module Kset_E : module type of Vv_sim.Engine.Make (Vv_baselines.Kset)
module Approx_E : module type of Vv_sim.Engine.Make (Vv_baselines.Approx)

val run_median :
  Vv_sim.Config.t ->
  inputs:(Vv_sim.Types.node_id -> int) ->
  collude:bool ->
  summary

val run_interval :
  Vv_sim.Config.t ->
  inputs:(Vv_sim.Types.node_id -> Vv_baselines.Interval_validity.query) ->
  collude:bool ->
  summary

val run_strong :
  Vv_sim.Config.t ->
  inputs:(Vv_sim.Types.node_id -> int) ->
  collude:bool ->
  summary

val run_kset :
  Vv_sim.Config.t ->
  inputs:(Vv_sim.Types.node_id -> Vv_baselines.Kset.input) ->
  summary

val run_approx :
  Vv_sim.Config.t ->
  inputs:(Vv_sim.Types.node_id -> Vv_baselines.Approx.input) ->
  outlier:float option ->
  float option list * int * bool
(** [(honest outputs, rounds, stalled)] — outputs stay floats. *)
