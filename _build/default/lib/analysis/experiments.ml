(* Facade over the experiment suite: every table/figure of the paper (and
   every quantitative claim we additionally exercise) keyed by experiment
   id.  DESIGN.md §4 is the index; EXPERIMENTS.md records paper-vs-measured
   for each id. *)

module Table = Vv_prelude.Table

type experiment = {
  id : string;
  what : string;
  run : unit -> Table.t list;
}

let all : experiment list =
  [
    {
      id = "fig1a";
      what = "Figure 1(a): preference profiles D1-D4 and initial entropy";
      run = (fun () -> [ Exp_fig1.fig1a () ]);
    };
    {
      id = "fig1b";
      what =
        "Figure 1(b): Pr(A_G - B_G > t) exact / Monte-Carlo / protocol runs";
      run = (fun () -> [ Exp_fig1.fig1b () ]);
    };
    {
      id = "fig1c";
      what = "Figure 1(c): system entropy H_s vs actual faults";
      run = (fun () -> [ Exp_fig1.fig1c () ]);
    };
    {
      id = "e4";
      what = "Section I/IV worked example: Algorithm 1 fooled, SCT safe";
      run = (fun () -> [ Exp_examples.e4 () ]);
    };
    {
      id = "e5";
      what = "Section VII-A incremental threshold: firing point + delay sweep";
      run =
        (fun () ->
          [
            Exp_examples.e5_firing ();
            Exp_examples.e5_delay_sweep ();
            Exp_examples.e5_adversarial_schedule ();
          ]);
    };
    {
      id = "e6";
      what = "Algorithm 4 under local broadcast: the 3t term disappears";
      run = (fun () -> [ Exp_bounds.e6 () ]);
    };
    {
      id = "e7";
      what = "Impossibility thresholds: Lemma 2 flip and Theorem 10";
      run = (fun () -> [ Exp_bounds.e7_lemma2 (); Exp_bounds.e7_theorem10 () ]);
    };
    {
      id = "e8";
      what = "Baselines: exactness on elections; median/approx on sensors";
      run =
        (fun () -> [ Exp_baselines.e8_election (); Exp_baselines.e8_sensor () ]);
    };
    {
      id = "e9";
      what = "Protocol cost: rounds and messages per protocol/substrate";
      run = (fun () -> [ Exp_baselines.e9 () ]);
    };
    {
      id = "e10";
      what = "Theorem 12: dispersion-tolerance frontier and third-option trick";
      run =
        (fun () ->
          [ Exp_bounds.e10_frontier (); Exp_bounds.e10_third_option () ]);
    };
    {
      id = "e11";
      what = "Ablation: local judgment condition delta_P (liveness vs safety)";
      run = (fun () -> [ Exp_bounds.e11_judgment_ablation () ]);
    };
    {
      id = "e12";
      what = "Extension: multi-hop radio voting across topologies + [36] limit";
      run = (fun () -> [ Exp_radio.e12_topologies (); Exp_radio.e12_poison () ]);
    };
    {
      id = "e13";
      what = "Probability companions: SCT's price; Neiger's N > mt, empirically";
      run =
        (fun () ->
          [ Exp_probability.e13_sct_price (); Exp_probability.e13_neiger () ]);
    };
    {
      id = "e14";
      what = "Extensions: weighted stakes, approval voting, multi-dimensional";
      run =
        (fun () ->
          [
            Exp_extensions.e14_weighted ();
            Exp_extensions.e14_approval ();
            Exp_extensions.e14_multidim ();
          ]);
    };
    {
      id = "e15";
      what = "Section V-B revote sessions: convergence per profile and policy";
      run = (fun () -> [ Exp_session.e15 () ]);
    };
  ]

let find id = List.find_opt (fun e -> String.equal e.id id) all

let ids = List.map (fun e -> e.id) all

let run_all ?(out = Fmt.stdout) () =
  List.iter
    (fun e ->
      Fmt.pf out "@.### %s — %s@.@." e.id e.what;
      List.iter (fun t -> Table.pp out t) (e.run ()))
    all
