(** The experiment registry: every figure/experiment of the paper keyed by
    id (DESIGN.md §4 is the index, EXPERIMENTS.md the paper-vs-measured
    record). *)

type experiment = {
  id : string;
  what : string;
  run : unit -> Vv_prelude.Table.t list;
}

val all : experiment list
val find : string -> experiment option
val ids : string list

val run_all : ?out:Format.formatter -> unit -> unit
(** Print every experiment's tables (the [bench/main.exe] harness). *)
