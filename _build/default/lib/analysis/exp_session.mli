(** Experiment E15: convergence of Section V-B revote sessions. *)

val e15 :
  ?trials:int ->
  ?ng:int ->
  ?t:int ->
  ?max_sessions:int ->
  ?seed:int ->
  unit ->
  Vv_prelude.Table.t
(** Success rate, mean sessions to decision and first-try rate per
    preference profile and adjustment policy. *)
