lib/analysis/exp_fig1.ml: Array Fmt List Vv_core Vv_dist Vv_prelude
