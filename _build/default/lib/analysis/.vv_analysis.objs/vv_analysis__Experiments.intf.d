lib/analysis/experiments.mli: Format Vv_prelude
