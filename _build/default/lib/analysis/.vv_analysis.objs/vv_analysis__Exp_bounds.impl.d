lib/analysis/exp_bounds.ml: Fmt List Vv_ballot Vv_core Vv_prelude Witness
