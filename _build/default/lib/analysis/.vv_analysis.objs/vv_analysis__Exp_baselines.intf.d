lib/analysis/exp_baselines.mli: Vv_prelude
