lib/analysis/exp_radio.ml: List Vv_ballot Vv_prelude Vv_radio
