lib/analysis/experiments.ml: Exp_baselines Exp_bounds Exp_examples Exp_extensions Exp_fig1 Exp_probability Exp_radio Exp_session Fmt List String Vv_prelude
