lib/analysis/exp_examples.mli: Vv_prelude
