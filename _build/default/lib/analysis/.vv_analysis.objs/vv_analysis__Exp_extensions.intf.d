lib/analysis/exp_extensions.mli: Vv_prelude
