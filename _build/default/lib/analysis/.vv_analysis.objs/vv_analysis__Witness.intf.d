lib/analysis/witness.mli: Vv_ballot
