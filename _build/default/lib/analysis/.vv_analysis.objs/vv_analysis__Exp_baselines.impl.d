lib/analysis/exp_baselines.ml: Array Baseline_runner Fmt Fun List Option Vv_ballot Vv_baselines Vv_bb Vv_core Vv_dist Vv_prelude Vv_sim Witness
