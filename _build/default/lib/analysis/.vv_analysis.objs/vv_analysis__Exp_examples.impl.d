lib/analysis/exp_examples.ml: Fmt Fun List String Vv_ballot Vv_core Vv_prelude Vv_sim Witness
