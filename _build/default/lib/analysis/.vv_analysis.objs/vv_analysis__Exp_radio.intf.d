lib/analysis/exp_radio.mli: Vv_prelude
