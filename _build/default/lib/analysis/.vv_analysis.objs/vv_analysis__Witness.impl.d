lib/analysis/witness.ml: List Vv_ballot Vv_core
