lib/analysis/exp_probability.ml: Array Baseline_runner Fmt List String Vv_ballot Vv_baselines Vv_dist Vv_prelude Vv_sim
