lib/analysis/exp_probability.mli: Vv_prelude
