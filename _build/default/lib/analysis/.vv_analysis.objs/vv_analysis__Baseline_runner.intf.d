lib/analysis/baseline_runner.mli: Vv_baselines Vv_sim
