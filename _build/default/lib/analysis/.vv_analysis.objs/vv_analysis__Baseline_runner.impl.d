lib/analysis/baseline_runner.ml: Adversary Engine Hashtbl List Types Vv_baselines Vv_sim
