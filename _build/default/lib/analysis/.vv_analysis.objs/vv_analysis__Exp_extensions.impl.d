lib/analysis/exp_extensions.ml: Fmt Fun List Option Vv_ballot Vv_bb Vv_core Vv_prelude Vv_sim
