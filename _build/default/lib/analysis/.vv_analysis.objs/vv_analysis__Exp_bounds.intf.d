lib/analysis/exp_bounds.mli: Vv_prelude
