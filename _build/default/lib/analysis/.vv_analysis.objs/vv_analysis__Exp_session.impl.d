lib/analysis/exp_session.ml: Fmt List Vv_core Vv_dist Vv_prelude
