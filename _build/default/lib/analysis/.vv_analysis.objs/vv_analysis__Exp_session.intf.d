lib/analysis/exp_session.mli: Vv_prelude
