lib/analysis/exp_fig1.mli: Vv_dist Vv_prelude
