(** Constructive scenario builders for the impossibility/possibility
    sweeps (experiment E7) and the paper's worked examples. *)

module Oid = Vv_ballot.Option_id

val inputs : ag:int -> bg:int -> cg:int -> Oid.t list
(** Honest inputs with exactly [ag] votes on option 0, [bg] on option 1,
    and [cg] spread over further options so option 1 stays the runner-up.
    Raises [Invalid_argument] on inconsistent requests ([ag < bg], or
    [cg > 0] with [bg = 0]). *)

val section1_example : Oid.t list
(** The Section I / IV motivating electorate {0,0,0,1,1,2,3}. *)

val section7_sequence : int list
(** The Section VII-A arrival order {0,0,1,0,0,0,2,3,0,1}. *)

val incremental_firing_point : ?delta_p:int -> n:int -> int list -> int option
(** Feed an arrival sequence one vote at a time; the receipt count at which
    Inequality (14) first fires, or [None]. *)

type cell = {
  gap : int;
  n : int;
  bound_ok : bool;
  terminated : bool;
  valid : bool;  (** tie-break-aware voting validity *)
  exact : bool;  (** terminated && valid *)
  matches_theory : bool;
      (** Lemma 2 below/at the gap threshold, Theorem 9 above it *)
}

val lemma2_cell : t:int -> bg:int -> cg:int -> gap:int -> cell
(** One Algorithm-1-vs-colluders run at a prescribed honest gap. *)

type theorem10_result = {
  lax_violates : bool;
      (** delta_P = t-1 decided against the established tie-break *)
  strict_safe : bool;  (** delta_P = t stalled, staying admissible *)
}

val theorem10_demo : t:int -> theorem10_result
(** The two-case indistinguishability argument of Theorem 10, executed.
    Raises [Invalid_argument] when [t < 1]. *)
