(** Generic "exchange, pick a candidate, agree" baseline skeleton.

    Round 0 broadcasts the encoded input; round 1 computes a local
    candidate with the baseline's rule; Phase-King BA ([n > 4t]) aligns
    the candidates. The common shape of the approximate-validity
    comparators of Sections I-II. *)

type msg = Raw of int | Ba of Vv_bb.King_ba.msg
(** Exposed so experiment adversaries can inject crafted [Raw] values. *)

module type CANDIDATE = sig
  val name : string

  type input

  val encode : input -> int
  (** How the raw input is broadcast (must be non-negative). *)

  val candidate : n:int -> t:int -> received:int list -> input -> int
  (** Local rule over the per-sender deduplicated, ascending received
      values. *)
end

module Make (C : CANDIDATE) :
  Vv_sim.Protocol.S
    with type input = C.input
     and type msg = msg
     and type output = int
