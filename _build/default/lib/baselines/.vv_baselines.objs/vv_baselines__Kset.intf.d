lib/baselines/kset.mli: Vv_sim
