lib/baselines/exchange_ba.mli: Vv_bb Vv_sim
