lib/baselines/strong_consensus.ml: Exchange_ba Hashtbl List Vv_bb
