lib/baselines/median_validity.ml: Exchange_ba List Vv_bb
