lib/baselines/approx.ml: Fun List Protocol Types Vv_sim
