lib/baselines/kset.ml: Fun List Protocol Types Vv_sim
