lib/baselines/strong_consensus.mli: Exchange_ba Vv_sim
