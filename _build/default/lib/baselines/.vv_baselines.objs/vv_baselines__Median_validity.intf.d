lib/baselines/median_validity.mli: Exchange_ba Vv_sim
