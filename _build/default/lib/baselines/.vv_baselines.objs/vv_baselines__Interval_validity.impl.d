lib/baselines/interval_validity.ml: Exchange_ba List Median_validity Vv_bb
