lib/baselines/interval_validity.mli: Exchange_ba Vv_sim
