lib/baselines/exchange_ba.ml: Hashtbl List Protocol Types Vv_bb Vv_sim
