lib/baselines/approx.mli: Vv_sim
