lib/prelude/rng.mli:
