lib/prelude/table.ml: Array Float Fmt List Printf String
