lib/prelude/table.mli: Fmt
