lib/prelude/stats.ml: Array Fmt List
