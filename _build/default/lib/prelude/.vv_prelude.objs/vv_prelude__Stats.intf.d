lib/prelude/stats.mli: Fmt
