(** Network topologies for the wireless (local broadcast) setting:
    constructors for the standard test graphs plus the metrics the
    multi-hop protocols rely on. All graphs are undirected without
    self-loops; adjacency lists are sorted and deduplicated. *)

type t = Vv_sim.Types.node_id list array

val size : t -> int
val neighbours : t -> Vv_sim.Types.node_id -> Vv_sim.Types.node_id list
val degree : t -> Vv_sim.Types.node_id -> int
val min_degree : t -> int

val complete : int -> t
val line : int -> t

val ring : ?k:int -> int -> t
(** Each node hears its [k] nearest neighbours on either side (default 1). *)

val grid : w:int -> h:int -> t
(** 4-neighbourhood grid; node [(x, y)] has id [y*w + x]. *)

val random_geometric : n:int -> radius:float -> seed:int -> t
(** Unit-square random geometric graph, deterministic from the seed. *)

val of_edges : n:int -> (Vv_sim.Types.node_id * Vv_sim.Types.node_id) list -> t

val distances : ?removed:Vv_sim.Types.node_id list -> t -> Vv_sim.Types.node_id -> int array
(** BFS hop counts from the source, skipping [removed] nodes; [-1] =
    unreachable. *)

val connected : ?removed:Vv_sim.Types.node_id list -> t -> bool
(** Connectivity of the graph induced on the non-removed nodes. *)

val diameter : t -> int
(** Raises [Invalid_argument] on disconnected graphs. *)

val pp : t Fmt.t
