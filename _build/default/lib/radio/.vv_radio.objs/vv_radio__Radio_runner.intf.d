lib/radio/radio_runner.mli: Radio_voting Topology Vv_ballot Vv_sim
