lib/radio/radio_voting.ml: Hashtbl List Protocol Types Vv_ballot Vv_sim
