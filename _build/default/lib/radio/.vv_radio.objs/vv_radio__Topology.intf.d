lib/radio/topology.mli: Fmt Vv_sim
