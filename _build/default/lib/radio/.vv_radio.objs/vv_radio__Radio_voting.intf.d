lib/radio/radio_voting.mli: Vv_ballot Vv_sim
