lib/radio/topology.ml: Array Fmt Fun List Queue Vv_prelude Vv_sim
