lib/radio/radio_runner.ml: Adversary Array Config Engine Fault Hashtbl List Metrics Radio_voting Topology Types Vv_ballot Vv_sim
