(* Network topologies for the wireless (local broadcast) setting.

   The paper's Algorithm 4 assumes a complete communication graph; real
   radio deployments (UAV swarms, vehicle platoons) are multi-hop.  This
   module builds the standard test topologies and the graph metrics the
   multi-hop protocols need (diameter for wait windows, residual
   connectivity for crash resilience). *)

type t = Vv_sim.Types.node_id list array

let size (t : t) = Array.length t

let neighbours (t : t) u = t.(u)

let degree (t : t) u = List.length t.(u)

let min_degree t =
  Array.fold_left (fun acc l -> min acc (List.length l)) max_int t

(* --- constructors (all undirected, validated by Config.make later) --- *)

let add_edge adj u v =
  if u <> v && not (List.mem v adj.(u)) then begin
    adj.(u) <- v :: adj.(u);
    adj.(v) <- u :: adj.(v)
  end

let normalise adj =
  Array.map (fun l -> List.sort_uniq compare l) adj

let complete n =
  if n <= 0 then invalid_arg "Topology.complete";
  Array.init n (fun u -> List.filter (fun v -> v <> u) (List.init n Fun.id))

let line n =
  if n <= 0 then invalid_arg "Topology.line";
  let adj = Array.make n [] in
  for u = 0 to n - 2 do
    add_edge adj u (u + 1)
  done;
  normalise adj

(* Ring where each node hears its k nearest neighbours on each side. *)
let ring ?(k = 1) n =
  if n <= 0 || k < 1 then invalid_arg "Topology.ring";
  let adj = Array.make n [] in
  for u = 0 to n - 1 do
    for d = 1 to min k (n - 1) do
      add_edge adj u ((u + d) mod n)
    done
  done;
  normalise adj

(* w x h grid, 4-neighbourhood; node (x, y) has id y*w + x. *)
let grid ~w ~h =
  if w <= 0 || h <= 0 then invalid_arg "Topology.grid";
  let n = w * h in
  let adj = Array.make n [] in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      let u = (y * w) + x in
      if x + 1 < w then add_edge adj u (u + 1);
      if y + 1 < h then add_edge adj u (u + w)
    done
  done;
  normalise adj

(* Unit-square random geometric graph: nodes hear each other within
   [radius].  Deterministic from the seed. *)
let random_geometric ~n ~radius ~seed =
  if n <= 0 || radius <= 0.0 then invalid_arg "Topology.random_geometric";
  let rng = Vv_prelude.Rng.create seed in
  let pos = Array.init n (fun _ ->
      let x = Vv_prelude.Rng.float rng in
      let y = Vv_prelude.Rng.float rng in
      (x, y))
  in
  let adj = Array.make n [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let xu, yu = pos.(u) and xv, yv = pos.(v) in
      let d2 = ((xu -. xv) ** 2.0) +. ((yu -. yv) ** 2.0) in
      if d2 <= radius *. radius then add_edge adj u v
    done
  done;
  normalise adj

let of_edges ~n edges =
  if n <= 0 then invalid_arg "Topology.of_edges";
  let adj = Array.make n [] in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Topology.of_edges: endpoint out of range";
      add_edge adj u v)
    edges;
  normalise adj

(* --- metrics --- *)

(* BFS distances from [src], skipping [removed] nodes; -1 = unreachable. *)
let distances ?(removed = []) (t : t) src =
  let n = size t in
  let dist = Array.make n (-1) in
  if not (List.mem src removed) then begin
    dist.(src) <- 0;
    let q = Queue.create () in
    Queue.add src q;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      List.iter
        (fun v ->
          if dist.(v) < 0 && not (List.mem v removed) then begin
            dist.(v) <- dist.(u) + 1;
            Queue.add v q
          end)
        t.(u)
    done
  end;
  dist

let connected ?(removed = []) t =
  let n = size t in
  let alive = List.filter (fun u -> not (List.mem u removed)) (List.init n Fun.id) in
  match alive with
  | [] -> true
  | src :: _ ->
      let dist = distances ~removed t src in
      List.for_all (fun u -> dist.(u) >= 0) alive

let diameter t =
  let n = size t in
  let best = ref 0 in
  for u = 0 to n - 1 do
    let dist = distances t u in
    Array.iter
      (fun d ->
        if d < 0 then invalid_arg "Topology.diameter: graph is disconnected"
        else if d > !best then best := d)
      dist
  done;
  !best

let pp ppf t =
  Array.iteri
    (fun u l -> Fmt.pf ppf "%d: %a@." u Fmt.(list ~sep:sp int) l)
    t
