(** Message and round accounting (experiment E9). *)

type t = {
  mutable honest_messages : int;
  mutable byzantine_messages : int;
  mutable rounds : int;
}

val create : unit -> t
val total : t -> int
val pp : t Fmt.t
