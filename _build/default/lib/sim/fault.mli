(** Per-node fault plans (Section III-B1).

    Crash-faulty nodes run the honest protocol until their crash round, then
    deliver that round's messages only to a chosen subset and fall silent —
    the mid-broadcast crash behind Lemma 4's [X_i <> X_G]. *)

type t =
  | Honest
  | Byzantine
  | Crash of { at_round : int; deliver_to : Types.node_id list }

val is_byzantine : t -> bool
val is_honest : t -> bool

val is_crashed : t -> round:int -> bool
(** True strictly after the crash round. *)

val delivers : t -> round:int -> dst:Types.node_id -> bool
(** Whether a message sent in [round] reaches [dst] under this plan. *)

val pp : t Fmt.t
