lib/sim/delay.mli: Fmt Types Vv_prelude
