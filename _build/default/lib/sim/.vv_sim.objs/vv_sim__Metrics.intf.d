lib/sim/metrics.mli: Fmt
