lib/sim/config.mli: Delay Fault Fmt Types
