lib/sim/types.ml: Fmt
