lib/sim/engine.ml: Adversary Array Config Delay Fault Fmt Hashtbl List Logs Metrics Protocol Types Vv_prelude
