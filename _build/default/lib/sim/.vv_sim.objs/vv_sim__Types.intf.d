lib/sim/types.mli: Fmt
