lib/sim/adversary.mli: Types
