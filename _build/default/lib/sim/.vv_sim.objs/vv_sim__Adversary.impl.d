lib/sim/adversary.ml: List Types
