lib/sim/fault.ml: Fmt List Types
