lib/sim/engine.mli: Adversary Config Logs Metrics Protocol Types
