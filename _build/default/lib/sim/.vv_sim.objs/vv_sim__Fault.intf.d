lib/sim/fault.mli: Fmt Types
