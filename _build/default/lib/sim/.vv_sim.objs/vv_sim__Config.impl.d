lib/sim/config.ml: Array Delay Fault Fmt Fun List Option Types
