lib/sim/metrics.ml: Fmt
