lib/sim/delay.ml: Fmt Types Vv_prelude
