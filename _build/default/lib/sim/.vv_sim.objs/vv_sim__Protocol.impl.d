lib/sim/protocol.ml: Types Vv_prelude
