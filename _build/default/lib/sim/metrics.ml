(* Message and round accounting for the complexity experiments (E9). *)

type t = {
  mutable honest_messages : int;
  mutable byzantine_messages : int;
  mutable rounds : int;
}

let create () = { honest_messages = 0; byzantine_messages = 0; rounds = 0 }

let total t = t.honest_messages + t.byzantine_messages

let pp ppf t =
  Fmt.pf ppf "rounds=%d msgs(honest=%d byz=%d)" t.rounds t.honest_messages
    t.byzantine_messages
