(** Static description of one simulated system run. *)

type t = private {
  n : int;  (** total number of nodes (the paper's N) *)
  t_max : int;  (** declared tolerance t, known to all nodes *)
  faults : Fault.t array;  (** actual per-node fault plans (defines f) *)
  comm : Types.comm_model;
  delay : Delay.t;
  max_rounds : int;  (** engine cut-off; a stall is reported, not an error *)
  seed : int;
  topology : Types.node_id list array option;
      (** undirected adjacency; [None] = complete graph. A broadcast
          reaches the sender's neighbourhood (plus itself); the radio
          constraint of [Local_broadcast] is enforced per neighbourhood. *)
}

val make :
  ?faults:Fault.t array ->
  ?comm:Types.comm_model ->
  ?delay:Delay.t ->
  ?max_rounds:int ->
  ?seed:int ->
  ?topology:Types.node_id list array ->
  n:int ->
  t_max:int ->
  unit ->
  t
(** Validates sizes, crash plans and topology (length [n], symmetric, no
    self-loops or duplicates). Defaults: all honest, point-to-point,
    synchronous delay, 200 rounds, fixed seed, complete graph. *)

val reach : t -> Types.node_id -> Types.node_id list
(** Recipients of a broadcast from the node: its neighbourhood plus
    itself (every node under the complete graph), ascending. *)

val honest_ids : t -> Types.node_id list
val byzantine_ids : t -> Types.node_id list
val crash_ids : t -> Types.node_id list

val faulty_count : t -> int
(** The actual number of faulty nodes f (Byzantine + crash). *)

val fault_of : t -> Types.node_id -> Fault.t

val within_tolerance : t -> bool
(** [f <= t]. *)

val with_byzantine :
  ?comm:Types.comm_model ->
  ?delay:Delay.t ->
  ?max_rounds:int ->
  ?seed:int ->
  ?topology:Types.node_id list array ->
  n:int ->
  t_max:int ->
  Types.node_id list ->
  unit ->
  t
(** All nodes honest except the listed Byzantine ones. *)

val pp : t Fmt.t
