(* Shared vocabulary of the simulator. *)

type node_id = int

(* Section III-B3: point-to-point lets a Byzantine node send different
   messages to different nodes; under the local broadcast model every
   message is received identically by all neighbours (complete graph). *)
type comm_model = Point_to_point | Local_broadcast

let pp_comm_model ppf = function
  | Point_to_point -> Fmt.string ppf "point-to-point"
  | Local_broadcast -> Fmt.string ppf "local-broadcast"

type dest = Unicast of node_id | Broadcast

(* An addressed message as produced by a protocol step. *)
type 'msg envelope = { dest : dest; payload : 'msg }

(* A concrete src -> dst message in flight. *)
type 'msg delivery = { src : node_id; dst : node_id; msg : 'msg }

let unicast dst payload = { dest = Unicast dst; payload }
let broadcast payload = { dest = Broadcast; payload }
