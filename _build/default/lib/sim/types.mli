(** Shared simulator vocabulary: node identities, communication models and
    message addressing. *)

type node_id = int

type comm_model =
  | Point_to_point
      (** a Byzantine node may send different messages to different nodes *)
  | Local_broadcast
      (** every message is received identically by all nodes (Section
          III-B3, complete graph) *)

val pp_comm_model : comm_model Fmt.t

type dest = Unicast of node_id | Broadcast

type 'msg envelope = { dest : dest; payload : 'msg }
(** An addressed message produced by a protocol step. *)

type 'msg delivery = { src : node_id; dst : node_id; msg : 'msg }
(** A concrete point-to-point message in flight. *)

val unicast : node_id -> 'msg -> 'msg envelope
val broadcast : 'msg -> 'msg envelope
