(* Static description of one simulated distributed system: size, declared
   tolerance t, the actual fault plan of every node, the communication
   model, and the delay model. *)

type t = {
  n : int;
  t_max : int;  (** the tolerance t, known to every node *)
  faults : Fault.t array;  (** length n; which nodes actually misbehave *)
  comm : Types.comm_model;
  delay : Delay.t;
  max_rounds : int;
  seed : int;
  topology : Types.node_id list array option;
      (** adjacency lists (undirected, no self-loops); [None] = complete
          graph.  A broadcast reaches the sender's neighbours (plus the
          sender itself); under [Local_broadcast] the radio constraint is
          enforced per neighbourhood. *)
}

let validate_topology ~n adj =
  if Array.length adj <> n then
    invalid_arg "Config.make: topology must have length n";
  Array.iteri
    (fun u neighbours ->
      List.iter
        (fun v ->
          if v < 0 || v >= n then
            invalid_arg "Config.make: topology neighbour out of range";
          if v = u then invalid_arg "Config.make: topology self-loop";
          if not (List.mem u adj.(v)) then
            invalid_arg "Config.make: topology must be symmetric")
        neighbours;
      if List.length (List.sort_uniq compare neighbours) <> List.length neighbours
      then invalid_arg "Config.make: duplicate topology neighbour")
    adj

let make ?faults ?(comm = Types.Point_to_point) ?(delay = Delay.Synchronous)
    ?(max_rounds = 200) ?(seed = 0x5eed) ?topology ~n ~t_max () =
  if n <= 0 then invalid_arg "Config.make: n must be positive";
  if t_max < 0 then invalid_arg "Config.make: t must be non-negative";
  Delay.validate delay;
  Option.iter (validate_topology ~n) topology;
  let faults =
    match faults with
    | None -> Array.make n Fault.Honest
    | Some f ->
        if Array.length f <> n then
          invalid_arg "Config.make: faults array must have length n";
        Array.copy f
  in
  Array.iter
    (function
      | Fault.Crash { at_round; deliver_to } ->
          if at_round < 0 then invalid_arg "Config.make: negative crash round";
          List.iter
            (fun d ->
              if d < 0 || d >= n then
                invalid_arg "Config.make: crash deliver_to out of range")
            deliver_to
      | Fault.Honest | Fault.Byzantine -> ())
    faults;
  { n; t_max; faults; comm; delay; max_rounds; seed;
    topology = Option.map Array.copy topology }

(* Recipients of a broadcast from [src]: its neighbourhood plus itself. *)
let reach cfg src =
  match cfg.topology with
  | None -> List.init cfg.n Fun.id
  | Some adj -> List.sort compare (src :: adj.(src))

let ids_where cfg pred =
  let acc = ref [] in
  for i = cfg.n - 1 downto 0 do
    if pred cfg.faults.(i) then acc := i :: !acc
  done;
  !acc

let honest_ids cfg = ids_where cfg Fault.is_honest
let byzantine_ids cfg = ids_where cfg Fault.is_byzantine

let crash_ids cfg =
  ids_where cfg (function Fault.Crash _ -> true | _ -> false)

let faulty_count cfg = cfg.n - List.length (honest_ids cfg)

let fault_of cfg id =
  if id < 0 || id >= cfg.n then invalid_arg "Config.fault_of: id out of range";
  cfg.faults.(id)

let within_tolerance cfg = faulty_count cfg <= cfg.t_max

(* Convenience: mark the given nodes Byzantine, all others honest. *)
let with_byzantine ?comm ?delay ?max_rounds ?seed ?topology ~n ~t_max byz () =
  let faults = Array.make n Fault.Honest in
  List.iter
    (fun id ->
      if id < 0 || id >= n then
        invalid_arg "Config.with_byzantine: id out of range";
      faults.(id) <- Fault.Byzantine)
    byz;
  make ~faults ?comm ?delay ?max_rounds ?seed ?topology ~n ~t_max ()

let pp ppf cfg =
  Fmt.pf ppf "n=%d t=%d faulty=%d comm=%a delay=%a" cfg.n cfg.t_max
    (faulty_count cfg) Types.pp_comm_model cfg.comm Delay.pp cfg.delay
