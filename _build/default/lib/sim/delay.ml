(* Message delay models.

   A message sent in round r is delivered at the start of round
   r + delay, with delay >= 1.  [Synchronous] is the paper's lock-step
   model; [Uniform] provides the staggered arrivals that make the
   incremental-threshold protocol (Algorithm 3) interesting and models a
   partially synchronous network with unknown-but-bounded delay. *)

type schedule = round:int -> src:Types.node_id -> dst:Types.node_id -> int

type t =
  | Synchronous
  | Fixed of int
  | Uniform of { lo : int; hi : int }
  | Per_message of schedule
  | Adversarial of { bound : int; schedule : schedule }
      (** a schedule that must respect a declared bound delta_t — the
          strong adversary's message-delaying power under synchrony *)

let validate = function
  | Synchronous -> ()
  | Fixed d -> if d < 1 then invalid_arg "Delay.Fixed: delay must be >= 1"
  | Uniform { lo; hi } ->
      if lo < 1 || hi < lo then invalid_arg "Delay.Uniform: need 1 <= lo <= hi"
  | Per_message _ -> ()
  | Adversarial { bound; _ } ->
      if bound < 1 then invalid_arg "Delay.Adversarial: bound must be >= 1"

(* The known delay upper bound delta_t (in rounds) honest protocols may rely
   on under synchrony; [None] for unbounded user-supplied models. *)
let bound = function
  | Synchronous -> Some 1
  | Fixed d -> Some d
  | Uniform { hi; _ } -> Some hi
  | Per_message _ -> None
  | Adversarial { bound; _ } -> Some bound

let resolve t rng ~round ~src ~dst =
  match t with
  | Synchronous -> 1
  | Fixed d -> d
  | Uniform { lo; hi } -> lo + Vv_prelude.Rng.int rng (hi - lo + 1)
  | Per_message f ->
      let d = f ~round ~src ~dst in
      if d < 1 then invalid_arg "Delay.Per_message: delay must be >= 1";
      d
  | Adversarial { bound; schedule } ->
      let d = schedule ~round ~src ~dst in
      if d < 1 || d > bound then
        invalid_arg "Delay.Adversarial: schedule exceeded its declared bound";
      d

let pp ppf = function
  | Synchronous -> Fmt.string ppf "synchronous"
  | Fixed d -> Fmt.pf ppf "fixed:%d" d
  | Uniform { lo; hi } -> Fmt.pf ppf "uniform:%d..%d" lo hi
  | Per_message _ -> Fmt.string ppf "per-message"
  | Adversarial { bound; _ } -> Fmt.pf ppf "adversarial<=%d" bound
