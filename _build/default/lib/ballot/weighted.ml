(* Weighted plurality voting (library extension).

   In stake-weighted settings (validator stake, shareholder votes) each
   voter carries a positive integer weight and the winner is the option
   with the greatest total honest weight.  The paper's analysis transfers
   once counts are read as weights: a Byzantine coalition of total weight
   W_F can add at most W_F to any single option and remove nothing, so the
   Property-2 argument gives exactness iff the honest weighted gap exceeds
   W_F, and a safety-guaranteed deployment needs a gap above 2 W_F.

   This module provides the weighted tallying, validity checking and
   threshold arithmetic; to run a weighted election over the unweighted
   protocols, replicate each identity once per unit of weight (weights
   must then be part of the common subject so all nodes agree on them). *)

type vote = { choice : Option_id.t; weight : int }

let vote ~choice ~weight =
  if weight <= 0 then invalid_arg "Weighted.vote: weight must be positive";
  { choice; weight }

let tally votes =
  List.fold_left
    (fun acc { choice; weight } -> Tally.add_many acc choice weight)
    Tally.empty votes

let plurality ~tie votes = Tally.plurality ~tie (tally votes)

let gap ~tie votes = Tally.gap ~tie (tally votes)

let total_weight votes =
  List.fold_left (fun acc v -> acc + v.weight) 0 votes

(* Exactness condition: the honest weighted gap must exceed the adversary's
   total weight (the weighted Property 2 / Lemma 2 threshold). *)
let exactness_guaranteed ~tie ~byz_weight votes =
  if byz_weight < 0 then invalid_arg "Weighted.exactness_guaranteed";
  match gap ~tie votes with None -> false | Some g -> g > byz_weight

(* Safety-guaranteed analogue: gap above twice the adversary weight
   (Inequality 6 with weights). *)
let sct_guaranteed ~tie ~byz_weight votes =
  if byz_weight < 0 then invalid_arg "Weighted.sct_guaranteed";
  match gap ~tie votes with None -> false | Some g -> g > 2 * byz_weight

(* Weighted voting validity: every decided output equals the weighted
   honest plurality. *)
let voting_validity ~tie ~honest_votes ~outputs =
  match plurality ~tie honest_votes with
  | None -> true
  | Some w ->
      List.for_all
        (function None -> true | Some v -> Option_id.equal v w)
        outputs

(* Constructive worst case: the heaviest option the adversary can fabricate
   is the runner-up boosted by its full weight; returns the option an
   adversary of [byz_weight] can force every honest view to prefer, when
   exactness is not guaranteed. *)
let adversary_target ~tie ~byz_weight votes =
  let t = tally votes in
  match Tally.top ~tie t with
  | None -> None
  | Some { Tally.a; a_count; b; b_count; _ } -> (
      match b with
      | Some b when b_count + byz_weight >= a_count &&
                    not (exactness_guaranteed ~tie ~byz_weight votes) ->
          Some b
      | _ ->
          if exactness_guaranteed ~tie ~byz_weight votes then None
          else Some a)

(* Replicate identities per unit weight, for running a weighted election
   on the unweighted protocols.  Total replicas = total weight. *)
let expand votes =
  List.concat_map
    (fun { choice; weight } -> List.init weight (fun _ -> choice))
    votes
