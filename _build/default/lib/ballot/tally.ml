(* A tally is the count of received votes per option: the |X_i| of the
   paper.  It implements the Sort utility of Algorithm 1 that splits a
   node's view into the top option A_i, runner-up B_i and the rest C_i. *)

module M = Map.Make (Option_id)

type t = int M.t

let empty = M.empty

let add_many t opt k =
  if k < 0 then invalid_arg "Tally.add_many: negative count";
  if k = 0 then t
  else
    M.update opt (function None -> Some k | Some c -> Some (c + k)) t

let add t opt = add_many t opt 1
let of_list opts = List.fold_left add empty opts

let of_counts pairs =
  List.fold_left (fun t (opt, k) -> add_many t opt k) empty pairs

let count t opt = match M.find_opt opt t with None -> 0 | Some c -> c
let total t = M.fold (fun _ c acc -> acc + c) t 0
let distinct t = M.cardinal t
let support t = M.bindings t
let options t = List.map fst (M.bindings t)
let is_empty t = M.is_empty t
let merge a b = M.union (fun _ x y -> Some (x + y)) a b

let ranked ~tie t =
  List.sort (Tie_break.compare_ranked tie) (M.bindings t)

type top = {
  a : Option_id.t;
  a_count : int;
  b : Option_id.t option;
  b_count : int;
  c_count : int;
}

let top ~tie t =
  match ranked ~tie t with
  | [] -> None
  | [ (a, a_count) ] -> Some { a; a_count; b = None; b_count = 0; c_count = 0 }
  | (a, a_count) :: (b, b_count) :: rest ->
      let c_count = List.fold_left (fun acc (_, c) -> acc + c) 0 rest in
      Some { a; a_count; b = Some b; b_count; c_count }

let plurality ~tie t =
  match top ~tie t with None -> None | Some { a; _ } -> Some a

let gap ~tie t =
  match top ~tie t with
  | None -> None
  | Some { a_count; b_count; _ } -> Some (a_count - b_count)

let pp ppf t =
  let pair ppf (opt, c) = Fmt.pf ppf "%a:%d" Option_id.pp opt c in
  Fmt.pf ppf "{%a}" (Fmt.list ~sep:(Fmt.any ", ") pair) (M.bindings t)

let equal = M.equal Int.equal
