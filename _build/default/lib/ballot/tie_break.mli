(** Deterministic tie-breaking rule for equal vote counts.

    The paper assumes all nodes share an established rule for ties
    (Definition III.1); its running convention is that [B] is chosen when
    [A_G = B_G]. Protocol state machines and validity checkers take the rule
    as a parameter so both conventions can be exercised. *)

type t =
  | Prefer_larger  (** the paper's convention: larger option id wins ties *)
  | Prefer_smaller
  | Custom of (Option_id.t -> Option_id.t -> int)
      (** total order; the greater option in the order wins ties *)

val default : t
(** [Prefer_larger], the paper's convention. *)

val wins : t -> Option_id.t -> Option_id.t -> bool
(** [wins t x y] is true when [x] beats [y] at equal counts. *)

val compare_ranked : t -> Option_id.t * int -> Option_id.t * int -> int
(** Orders (option, count) pairs from winner to loser: by descending count,
    ties resolved by the rule. *)

val pp : t Fmt.t
