(** Weighted plurality voting (stake-weighted extension).

    Counts become weights: an adversary coalition of total weight [W_F]
    adds at most [W_F] to any option, so exactness needs a weighted honest
    gap above [W_F] (and above [2 W_F] for safety-guaranteed behaviour).
    To execute a weighted election over the unweighted protocols,
    {!expand} replicates each identity once per unit of weight. *)

type vote = { choice : Option_id.t; weight : int }

val vote : choice:Option_id.t -> weight:int -> vote
(** Raises [Invalid_argument] on non-positive weight. *)

val tally : vote list -> Tally.t
val plurality : tie:Tie_break.t -> vote list -> Option_id.t option
val gap : tie:Tie_break.t -> vote list -> int option
val total_weight : vote list -> int

val exactness_guaranteed : tie:Tie_break.t -> byz_weight:int -> vote list -> bool
(** Weighted Lemma-2 threshold: honest gap strictly above the adversary's
    total weight. *)

val sct_guaranteed : tie:Tie_break.t -> byz_weight:int -> vote list -> bool
(** Weighted Inequality (6): gap above twice the adversary weight. *)

val voting_validity :
  tie:Tie_break.t ->
  honest_votes:vote list ->
  outputs:Option_id.t option list ->
  bool

val adversary_target :
  tie:Tie_break.t -> byz_weight:int -> vote list -> Option_id.t option
(** The option a weight-[byz_weight] adversary can force when exactness is
    not guaranteed; [None] when the gap is safe. *)

val expand : vote list -> Option_id.t list
(** One unweighted ballot entry per unit of weight. *)
