lib/ballot/tie_break.ml: Fmt Option_id
