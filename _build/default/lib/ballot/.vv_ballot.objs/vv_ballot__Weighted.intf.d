lib/ballot/weighted.mli: Option_id Tally Tie_break
