lib/ballot/validity.ml: Fun List Option Option_id Tally Tie_break
