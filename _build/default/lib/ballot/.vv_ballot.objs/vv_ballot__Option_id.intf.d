lib/ballot/option_id.mli: Fmt
