lib/ballot/tally.mli: Fmt Option_id Tie_break
