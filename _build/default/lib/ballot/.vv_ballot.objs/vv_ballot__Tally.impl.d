lib/ballot/tally.ml: Fmt Int List Map Option_id Tie_break
