lib/ballot/weighted.ml: List Option_id Tally
