lib/ballot/tie_break.mli: Fmt Option_id
