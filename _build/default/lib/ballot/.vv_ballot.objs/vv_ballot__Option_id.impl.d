lib/ballot/option_id.ml: Array Fmt Int
