lib/ballot/validity.mli: Option_id Tally Tie_break
