(** Voting options (the paper's calligraphic [A], [B], [C] ...).

    An option is an element of the voting option domain [V]; we back it by a
    non-negative integer so the domain can be fixed by the subject or grown
    dynamically from node inputs. *)

type t

val of_int : int -> t
(** Raises [Invalid_argument] on negative input. *)

val to_int : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val pp : t Fmt.t
(** Prints [A], [B], ... for the first eight options, [optN] beyond. *)

val to_string : t -> string
