(** Executable forms of the paper's correctness properties (Section III-C).

    Conventions: [honest_inputs] lists the node preferences of the
    non-faulty nodes only; [outputs] lists, per honest node, its decision
    ([None] = has not decided / did not terminate). *)

val honest_tally : Option_id.t list -> Tally.t

val voting_preference :
  honest_inputs:Option_id.t list -> Option_id.t -> Option_id.t -> bool
(** Definition III.1: [A > B] iff strictly more non-faulty nodes support
    [A] than [B]. *)

val honest_plurality :
  tie:Tie_break.t -> honest_inputs:Option_id.t list -> Option_id.t option
(** The plurality of non-faulty inputs, ties resolved by the rule. *)

val honest_gap :
  tie:Tie_break.t -> honest_inputs:Option_id.t list -> int option
(** [A_G - B_G]. *)

val has_strict_plurality : honest_inputs:Option_id.t list -> bool
(** True when one option strictly beats all others among honest inputs. *)

val voting_validity :
  tie:Tie_break.t ->
  honest_inputs:Option_id.t list ->
  outputs:Option_id.t option list ->
  bool
(** Definition III.3, strict form: when a strict honest plurality [A]
    exists, every decided output must be [A]. Vacuously true otherwise;
    undecided nodes never violate validity. *)

val voting_validity_tb :
  tie:Tie_break.t ->
  honest_inputs:Option_id.t list ->
  outputs:Option_id.t option list ->
  bool
(** Tie-break-aware form: the required output is the tie-break winner even
    when honest counts tie. *)

val strong_validity :
  honest_inputs:Option_id.t list -> outputs:Option_id.t option list -> bool
(** Neiger's strong validity: every decided output is some honest input. *)

val agreement : outputs:Option_id.t option list -> bool
(** All decided outputs are identical. *)

val termination : outputs:Option_id.t option list -> bool
(** Every honest node decided. *)

val integrity_allows : view:Tally.t -> output:Option_id.t -> bool
(** Definition III.2: false when some other option in [view] has at least as
    many votes as [output]. *)

val safety_guaranteed_admissible :
  tie:Tie_break.t ->
  honest_inputs:Option_id.t list ->
  outputs:Option_id.t option list ->
  bool
(** Definition V.1: decided outputs (if any) equal the honest plurality. *)

val differential_validity :
  delta:int ->
  honest_inputs:Option_id.t list ->
  outputs:Option_id.t option list ->
  bool
(** Fitzi-Garay delta-differential validity (Section II): no option beats a
    decided output by more than [delta] honest votes. Raises
    [Invalid_argument] on negative [delta]. *)
