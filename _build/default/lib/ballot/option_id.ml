(* An option (the calligraphic letters of the paper: A, B, C, ...) is an
   element of the voting option domain V.  We back it by an integer so the
   domain can be pre-determined by the subject or generated from inputs. *)

type t = int

let of_int i =
  if i < 0 then invalid_arg "Option_id.of_int: negative id";
  i

let to_int x = x
let equal = Int.equal
let compare = Int.compare
let hash x = x

let labels = [| "A"; "B"; "C"; "D"; "E"; "F"; "G"; "H" |]

let pp ppf x =
  if x < Array.length labels then Fmt.string ppf labels.(x)
  else Fmt.pf ppf "opt%d" x

let to_string x = Fmt.str "%a" pp x
