(** Vote tallies: counts of received votes per option (the paper's [|X_i|]).

    Includes the [Sort] utility of Algorithm 1: decompose a node's view into
    the highest-voted option [A_i], the runner-up [B_i], and the aggregate of
    all remaining options [C_i] (Equation 1). *)

type t

val empty : t
val add : t -> Option_id.t -> t
val add_many : t -> Option_id.t -> int -> t
(** Raises [Invalid_argument] on a negative count. *)

val of_list : Option_id.t list -> t
val of_counts : (Option_id.t * int) list -> t

val count : t -> Option_id.t -> int
(** 0 for options never seen. *)

val total : t -> int
val distinct : t -> int
(** Number of options with at least one vote. *)

val support : t -> (Option_id.t * int) list
(** Bindings in option order. *)

val options : t -> Option_id.t list
val is_empty : t -> bool
val merge : t -> t -> t
(** Pointwise sum. *)

val ranked : tie:Tie_break.t -> t -> (Option_id.t * int) list
(** From winner to loser: descending count, ties broken by the rule. *)

type top = {
  a : Option_id.t;  (** highest-voted option (A_i of Algorithm 1's Sort) *)
  a_count : int;
  b : Option_id.t option;  (** runner-up (B_i), [None] if a single option *)
  b_count : int;  (** 0 when [b = None] *)
  c_count : int;  (** total votes on all remaining options (Equation 1) *)
}

val top : tie:Tie_break.t -> t -> top option
(** [None] on the empty tally. *)

val plurality : tie:Tie_break.t -> t -> Option_id.t option
(** The winning option under the tie-break rule. *)

val gap : tie:Tie_break.t -> t -> int option
(** [a_count - b_count]; [None] on the empty tally. *)

val pp : t Fmt.t
val equal : t -> t -> bool
