(* The paper's correctness properties (Section III-C) as executable
   predicates over honest inputs, local views and protocol outputs.  The
   experiment harness and tests use these to classify every run. *)

let honest_tally inputs = Tally.of_list inputs

(* Definition III.1: A > B iff strictly more non-faulty nodes support A. *)
let voting_preference ~honest_inputs a b =
  let t = honest_tally honest_inputs in
  Tally.count t a > Tally.count t b

let honest_plurality ~tie ~honest_inputs =
  Tally.plurality ~tie (honest_tally honest_inputs)

(* A_G - B_G: the gap between the two most supported honest options. *)
let honest_gap ~tie ~honest_inputs =
  Tally.gap ~tie (honest_tally honest_inputs)

(* True when one option strictly beats every other honest option, i.e. the
   premise of Definition III.3 holds without needing the tie-break rule. *)
let has_strict_plurality ~honest_inputs =
  match Tally.ranked ~tie:Tie_break.default (honest_tally honest_inputs) with
  | [] -> false
  | [ _ ] -> true
  | (_, ca) :: (_, cb) :: _ -> ca > cb

(* Definition III.3 (strict form): whenever a strict plurality A exists,
   every produced output must be A.  Outputs are [None] for nodes that have
   not decided; non-termination does not violate validity (that distinction
   is what safety-guaranteed protocols exploit, Definition V.1). *)
let voting_validity ~tie ~honest_inputs ~outputs =
  if not (has_strict_plurality ~honest_inputs) then true
  else
    match honest_plurality ~tie ~honest_inputs with
    | None -> true
    | Some a ->
        List.for_all
          (function None -> true | Some v -> Option_id.equal v a)
          outputs

(* Tie-break-aware form: the required output is the tie-break winner even
   when honest counts tie.  Used when all nodes share the established rule. *)
let voting_validity_tb ~tie ~honest_inputs ~outputs =
  match honest_plurality ~tie ~honest_inputs with
  | None -> true
  | Some a ->
      List.for_all
        (function None -> true | Some v -> Option_id.equal v a)
        outputs

(* Strong validity (Neiger): every decided output is some honest input. *)
let strong_validity ~honest_inputs ~outputs =
  List.for_all
    (function
      | None -> true
      | Some v -> List.exists (Option_id.equal v) honest_inputs)
    outputs

(* Agreement: all decided outputs are identical. *)
let agreement ~outputs =
  let decided = List.filter_map Fun.id outputs in
  match decided with
  | [] -> true
  | x :: rest -> List.for_all (Option_id.equal x) rest

(* Termination (for a single run): every honest node decided. *)
let termination ~outputs = List.for_all Option.is_some outputs

(* Definition III.2 (integrity): a non-faulty node must not output A while
   its local view shows some other option with at least as many votes. *)
let integrity_allows ~view ~output =
  let a = Tally.count view output in
  List.for_all
    (fun (x, c) -> Option_id.equal x output || c < a)
    (Tally.support view)

(* Definition V.1: a run of a safety-guaranteed protocol is admissible when
   every decided output equals the honest plurality — deciding nothing is
   always admissible. *)
let safety_guaranteed_admissible ~tie ~honest_inputs ~outputs =
  voting_validity_tb ~tie ~honest_inputs ~outputs

(* delta-differential validity (Fitzi-Garay [23], discussed in Section II):
   no option may beat the decided output by more than [delta] honest votes.
   Voting validity is exactly the delta = 0 case restricted to strict
   pluralities; any voting-valid output is delta-differential for all
   delta >= 0. *)
let differential_validity ~delta ~honest_inputs ~outputs =
  if delta < 0 then invalid_arg "differential_validity: negative delta";
  let t = honest_tally honest_inputs in
  List.for_all
    (function
      | None -> true
      | Some v ->
          let cv = Tally.count t v in
          List.for_all (fun (_, c) -> c <= cv + delta) (Tally.support t))
    outputs
