.PHONY: check build test bench

check: ## build everything, then run the full test suite
	dune build && dune runtest

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe -- --bench
