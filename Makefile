.PHONY: check check-parallel check-model chaos-smoke gst-smoke validity-smoke serve-smoke serve-replica-smoke build test bench bench-smoke bench-baseline bench-gate

check: ## build everything, then run the full test suite
	dune build && dune runtest

check-parallel: ## the jobs-invariance + domain-safety suite (spawns up to 4 domains)
	dune build && dune exec test/test_exec.exe -- test parallel

check-model: ## exhaustive small-model smoke sweep (vv_check); exits 1 on violation
	dune build && dune exec bin/vvc.exe -- check --profile=smoke

chaos-smoke: ## chaos-substrate resilience campaign, CI tier; exits 1 on a safety violation
	dune build && dune exec bin/vvc.exe -- chaos --profile=smoke

gst-smoke: ## network-agnostic validity campaign (E20), CI tier; exits 1 on a violation in a predicted-achievable cell
	dune build && dune exec bin/vvc.exe -- gst --profile=smoke --jobs=0

validity-smoke: ## validity-hierarchy campaign (E21), CI tier; exits 1 if a predicted-solvable (impl, config, property) triple violates or stalls
	dune build && dune exec bin/vvc.exe -- validity --profile=smoke --jobs=0

serve-smoke: ## boot the serve daemon, drive a scripted burst through it, verify streamed decisions, clean shutdown
	dune build
	rm -f _build/serve-smoke.sock _build/serve-smoke.snap
	_build/default/bin/vvc.exe serve --socket _build/serve-smoke.sock \
	  --batch 4 --jobs 2 --snapshot _build/serve-smoke.snap --quiet & \
	server=$$!; \
	_build/default/bin/vvc.exe load --socket _build/serve-smoke.sock \
	  --clients 3 --subjects 48 --shutdown --format json; \
	status=$$?; \
	wait $$server || status=1; \
	rm -f _build/serve-smoke.sock _build/serve-smoke.snap; \
	exit $$status

serve-replica-smoke: ## crash-recovery soak: primary + follower, kill -9 the primary, restart from snapshot, racy second burst, require byte-identical snapshots
	dune build
	rm -f _build/srs-p.sock _build/srs-f.sock _build/srs-p.snap _build/srs-f.snap
	_build/default/bin/vvc.exe serve --socket _build/srs-p.sock \
	  --batch 4 --snapshot _build/srs-p.snap --quiet & \
	primary=$$!; \
	_build/default/bin/vvc.exe serve --socket _build/srs-f.sock \
	  --follow _build/srs-p.sock --batch 4 --snapshot _build/srs-f.snap --quiet & \
	follower=$$!; \
	status=0; \
	_build/default/bin/vvc.exe load --socket _build/srs-p.sock \
	  --clients 3 --subjects 48 --format json || status=1; \
	for i in $$(seq 1 100); do \
	  cmp -s _build/srs-p.snap _build/srs-f.snap && break; sleep 0.1; \
	done; \
	cmp _build/srs-p.snap _build/srs-f.snap || status=1; \
	kill -9 $$primary; wait $$primary 2>/dev/null; \
	_build/default/bin/vvc.exe serve --socket _build/srs-p.sock \
	  --batch 4 --snapshot _build/srs-p.snap --quiet & \
	primary=$$!; \
	_build/default/bin/vvc.exe load --socket _build/srs-p.sock \
	  --clients 3 --subjects 48 --racy --format json || status=1; \
	for i in $$(seq 1 100); do \
	  cmp -s _build/srs-p.snap _build/srs-f.snap && break; sleep 0.1; \
	done; \
	cmp _build/srs-p.snap _build/srs-f.snap || status=1; \
	_build/default/bin/vvc.exe load --socket _build/srs-p.sock \
	  --subjects 0 --shutdown > /dev/null || status=1; \
	_build/default/bin/vvc.exe load --socket _build/srs-f.sock \
	  --subjects 0 --shutdown > /dev/null || status=1; \
	wait $$primary || status=1; \
	wait $$follower || status=1; \
	rm -f _build/srs-p.sock _build/srs-f.sock _build/srs-p.snap _build/srs-f.snap; \
	exit $$status

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe -- --bench

bench-smoke: ## CI-sized benchmark pass: smoke-tier tables + shrunk timings, JSON to _build/bench.json
	dune exec bench/main.exe -- --quick --json=_build/bench.json

bench-baseline: ## regenerate the committed benchmark baseline (BENCH_006.json)
	dune exec bench/main.exe -- --bench --quick --json=BENCH_006.json

bench-gate: ## quick bench run diffed against the committed baseline; exits 1 on >25% regression
	dune exec bench/main.exe -- --bench --quick --json=_build/bench.json
	dune exec bench/diff.exe -- BENCH_006.json _build/bench.json --tolerance=0.25
