(* Tests of the chaos network substrate and its integrations: substrate
   semantics (cuts, windows, guarded draws), byte-identity of the legacy
   path when the substrate is disabled, retransmission backoff and its
   engine-level rescues, the compiled crash filter against its list
   oracle, delay-schedule validation at Config construction, and the E17
   campaign's jobs-invariance. *)

module Network = Vv_sim.Network
module Retransmit = Vv_sim.Retransmit
module Delay = Vv_sim.Delay
module Fault = Vv_sim.Fault
module Config = Vv_sim.Config
module Trace = Vv_sim.Trace
module Rng = Vv_prelude.Rng
module Runner = Vv_core.Runner
module Oid = Vv_ballot.Option_id
module Chaos = Vv_analysis.Exp_chaos

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let oids = List.map Oid.of_int

let window ~from ~until = { Network.from_round = from; until_round = until }

(* --- substrate semantics --- *)

let test_windows_and_cuts () =
  let w = window ~from:2 ~until:5 in
  check_bool "before" false (Network.window_active w ~round:1);
  check_bool "opening round" true (Network.window_active w ~round:2);
  check_bool "last active" true (Network.window_active w ~round:4);
  check_bool "healed" false (Network.window_active w ~round:5);
  let net =
    Network.make
      ~partitions:[ { Network.window = w; isolated = [ 0; 1 ] } ]
      ~outages:[ { Network.node = 4; window = window ~from:3 ~until:4 } ]
      ()
  in
  check_bool "across the cut" true (Network.cut net ~round:3 ~src:0 ~dst:2);
  check_bool "cut is bidirectional" true (Network.cut net ~round:3 ~src:2 ~dst:0);
  check_bool "within the isolated side" false
    (Network.cut net ~round:3 ~src:0 ~dst:1);
  check_bool "within the majority side" false
    (Network.cut net ~round:3 ~src:2 ~dst:3);
  check_bool "healed partition" false (Network.cut net ~round:5 ~src:0 ~dst:2);
  check_bool "outage cuts sends" true (Network.cut net ~round:3 ~src:4 ~dst:2);
  check_bool "outage cuts receives" true (Network.cut net ~round:3 ~src:2 ~dst:4);
  check_bool "outage over" false (Network.cut net ~round:4 ~src:4 ~dst:2);
  check_bool "self-delivery exempt" false (Network.cut net ~round:3 ~src:0 ~dst:0)

let test_is_none_ignores_seed () =
  check_bool "none" true (Network.is_none Network.none);
  check_bool "seeded but inert" true (Network.is_none (Network.make ~seed:99 ()));
  check_bool "drop" false (Network.is_none (Network.make ~drop:0.1 ()));
  check_bool "partition" false
    (Network.is_none
       (Network.make
          ~partitions:
            [ { Network.window = window ~from:0 ~until:1; isolated = [ 0 ] } ]
          ()))

let test_make_validation () =
  let raises name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  raises "drop = 1" (fun () -> Network.make ~drop:1.0 ());
  raises "negative duplicate" (fun () -> Network.make ~duplicate:(-0.1) ());
  raises "negative jitter" (fun () -> Network.make ~jitter:(-1) ());
  raises "inverted window" (fun () ->
      Network.make
        ~partitions:
          [ { Network.window = window ~from:3 ~until:1; isolated = [ 0 ] } ]
        ());
  raises "negative outage node" (fun () ->
      Network.make
        ~outages:[ { Network.node = -1; window = window ~from:0 ~until:1 } ]
        ())

let test_transit_guarded_draws () =
  (* Self-deliveries and inert substrates consume no randomness: the two
     rngs stay in lock-step through interleaved calls. *)
  let net = Network.make ~drop:0.5 ~seed:7 () in
  let a = Network.rng net and b = Network.rng net in
  for round = 0 to 19 do
    (match Network.transit net a ~round ~src:1 ~dst:1 with
    | Network.Deliver { extra_delay = 0; duplicate = false } -> ()
    | _ -> Alcotest.fail "self-delivery must pass untouched");
    let va = Network.transit net a ~round ~src:0 ~dst:2 in
    let vb = Network.transit net b ~round ~src:0 ~dst:2 in
    check_bool "same stream" true (va = vb)
  done

(* --- retransmission policy --- *)

let test_backoff () =
  let p = Retransmit.make ~base:1 ~cap:8 ~max_attempts:6 () in
  check_int "attempt 1" 1 (Retransmit.backoff p ~attempt:1);
  check_int "attempt 2" 2 (Retransmit.backoff p ~attempt:2);
  check_int "attempt 3" 4 (Retransmit.backoff p ~attempt:3);
  check_int "attempt 4 capped" 8 (Retransmit.backoff p ~attempt:4);
  check_int "attempt 6 capped" 8 (Retransmit.backoff p ~attempt:6);
  let p3 = Retransmit.make ~base:3 ~cap:10 ~max_attempts:2 () in
  check_int "base 3" 3 (Retransmit.backoff p3 ~attempt:1);
  check_int "doubled" 6 (Retransmit.backoff p3 ~attempt:2);
  check_int "capped at 10" 10 (Retransmit.backoff p3 ~attempt:3);
  let raises name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  raises "base 0" (fun () -> Retransmit.make ~base:0 ());
  raises "cap < base" (fun () -> Retransmit.make ~base:4 ~cap:2 ());
  raises "no attempts" (fun () -> Retransmit.make ~max_attempts:0 ());
  raises "attempt 0" (fun () -> Retransmit.backoff Retransmit.default ~attempt:0)

(* --- byte-identity of the legacy path --- *)

let golden_inputs = oids [ 0; 0; 0; 0; 0; 0; 0; 0; 0; 1; 1; 2 ]

let test_inert_substrate_byte_identical () =
  (* A seeded but zero-intensity substrate must not perturb anything:
     same outcome, same trace, same CSV bytes, no chaos columns. *)
  let plain = Runner.simple ~t:2 ~f:2 ~seed:0x5eed golden_inputs in
  let inert =
    Runner.simple ~t:2 ~f:2 ~seed:0x5eed
      ~network:(Network.make ~seed:0xfeed ()) golden_inputs
  in
  check_bool "traces equal" true (plain.Runner.trace = inert.Runner.trace);
  check Alcotest.string "csv bytes"
    (Trace.to_csv plain.Runner.trace)
    (Trace.to_csv inert.Runner.trace);
  check_bool "no chaos flag" false inert.Runner.trace.Trace.chaos;
  check_bool "legacy header" true
    (String.length (Trace.to_csv inert.Runner.trace) > String.length Trace.csv_header
    && String.sub (Trace.to_csv inert.Runner.trace) 0
         (String.length Trace.csv_header)
       = Trace.csv_header)

let test_chaos_trace_schema () =
  (* An active substrate flips the trace to the extended schema. *)
  let r =
    Runner.simple ~t:2 ~f:2 ~seed:3
      ~network:(Network.make ~duplicate:0.4 ~seed:11 ())
      golden_inputs
  in
  check_bool "chaos flag" true r.Runner.trace.Trace.chaos;
  check_bool "duplicates observed" true (r.Runner.trace.Trace.dup_msgs > 0);
  let csv = Trace.to_csv r.Runner.trace in
  check Alcotest.string "chaos header" Trace.csv_header_chaos
    (String.sub csv 0 (String.length Trace.csv_header_chaos));
  (* Metrics mirror the trace's chaos counters. *)
  let m = Vv_sim.Metrics.of_trace r.Runner.trace in
  check_int "metrics duplicated" r.Runner.trace.Trace.dup_msgs
    m.Vv_sim.Metrics.duplicated_messages;
  check_int "metrics dropped" r.Runner.trace.Trace.dropped_msgs
    m.Vv_sim.Metrics.dropped_messages

(* --- engine-level fault injection --- *)

let test_permanent_outage_stalls () =
  (* Node 0 silent for the whole run: everyone else decides, node 0
     cannot, so the run stalls — deterministically (no probability). *)
  let r =
    Runner.simple ~t:2 ~f:2 ~seed:0x5eed ~max_rounds:30
      ~network:
        (Network.make
           ~outages:[ { Network.node = 0; window = window ~from:0 ~until:1000 } ]
           ())
      golden_inputs
  in
  check_bool "stalled" true r.Runner.stalled;
  check_bool "node 0 undecided" true (List.hd r.Runner.outputs = None);
  check_bool "still admissible" true r.Runner.safety_admissible;
  check_bool "drops counted" true (r.Runner.trace.Trace.dropped_msgs > 0)

let test_retransmission_rescues () =
  (* At 25% omission the losses are final without retransmission and the
     run stalls; with the backoff policy and the delay bound at 2 the
     retries land inside the synchrony slack and every node decides.
     (A retry cannot rescue under Synchronous delay — there is no slack
     for a one-round-late arrival — which is why the campaign and this
     test run with a delay bound above the minimum.) *)
  let network = Network.make ~drop:0.25 ~jitter:1 ~seed:5 () in
  let run ?retransmit () =
    Runner.simple ~t:2 ~f:2 ~seed:5 ~max_rounds:60
      ~delay:(Delay.Uniform { lo = 1; hi = 2 })
      ~network ?retransmit golden_inputs
  in
  let without = run () in
  let with_r = run ~retransmit:(Retransmit.make ~max_attempts:8 ()) () in
  check_bool "stalls without retransmission" true without.Runner.stalled;
  check_int "no retries without a policy" 0
    without.Runner.trace.Trace.retrans_msgs;
  check_bool "terminates with retransmission" true with_r.Runner.termination;
  check_bool "exact with retransmission" true with_r.Runner.voting_validity_tb;
  check_bool "retries fired" true (with_r.Runner.trace.Trace.retrans_msgs > 0)

(* --- retransmission under asynchrony and GST (E20's substrate) --- *)

let test_sync_protocol_rejects_async () =
  (* The synchronous voting pipeline relies on a known delta_t; genuine
     asynchrony advertises none (Delay.bound = None), and the protocol
     refuses to run rather than silently miscounting rounds.  The
     network-agnostic variant in lib/bb (E20) is the protocol for this
     regime. *)
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  match
    Runner.simple ~t:2 ~f:2 ~seed:1
      ~delay:(Delay.Asynchronous { fairness = 3; schedule = None })
      golden_inputs
  with
  | exception Invalid_argument msg ->
      check_bool
        (Fmt.str "names the missing bound (got %S)" msg)
        true
        (contains msg "requires a known delay bound")
  | _ -> Alcotest.fail "bound-free delay must be rejected by the sync path"

let test_retransmission_under_gst () =
  (* Before GST a message has no per-send bound — only "land by
     gst + bound" — so at 25% omission the losses pile up and the run
     stalls without retransmission.  With GST at round 1 the capped
     backoff lands its retries inside the post-GST bound and every node
     decides exactly; with GST at round 6 — past the sync protocol's
     decision window — even retransmission cannot rescue a protocol that
     was promised only the eventual bound, and the stall is deterministic
     (safety still holds: nobody decides wrongly, nobody decides at
     all). *)
  let run ~gst ?retransmit () =
    let network = Network.make ~drop:0.25 ~jitter:1 ~seed:5 () in
    Runner.simple ~t:2 ~f:2 ~seed:5 ~max_rounds:80
      ~delay:(Delay.Eventually_synchronous { gst; bound = 2; schedule = None })
      ~network ?retransmit golden_inputs
  in
  let policy = Retransmit.make ~max_attempts:8 () in
  let without = run ~gst:1 () in
  check_bool "stalls without retransmission" true without.Runner.stalled;
  check_int "no retries without a policy" 0
    without.Runner.trace.Trace.retrans_msgs;
  let rescued = run ~gst:1 ~retransmit:policy () in
  check_bool "terminates with retransmission" true rescued.Runner.termination;
  check_bool "exact with retransmission" true rescued.Runner.voting_validity_tb;
  check_bool "retries fired" true (rescued.Runner.trace.Trace.retrans_msgs > 0);
  let late = run ~gst:6 ~retransmit:policy () in
  check_bool "late GST stalls even with retries" true late.Runner.stalled;
  check_bool "late GST stays safe" true late.Runner.safety_admissible

(* A bound-free flood protocol for driving the engine under genuine
   asynchrony: broadcast the input once, accumulate everything heard,
   report the log late enough for the fairness cap and the retries to
   play out. *)
module Relay = struct
  type input = int
  type msg = int
  type output = (int * int) list (* sorted (src, value) pairs seen *)
  type state = { seen : (int * int) list; decided : output option }

  let name = "relay"
  let decide_round = 30
  let equal_msg = Int.equal

  let init (_ : Vv_sim.Protocol.ctx) v ~outbox =
    Vv_sim.Outbox.broadcast outbox v;
    { seen = []; decided = None }

  let step (_ : Vv_sim.Protocol.ctx) st ~round ~inbox ~outbox:_ =
    let seen =
      Vv_sim.Inbox.fold
        (fun acc src v -> if List.mem (src, v) acc then acc else (src, v) :: acc)
        st.seen inbox
    in
    let decided =
      if round >= decide_round && st.decided = None then
        Some (List.sort compare seen)
      else st.decided
    in
    { seen; decided }

  let output st = st.decided
  let phase st = if st.decided = None then "relay" else "done"
  let inert _ = false
end

let test_async_retransmission_floods () =
  (* Under Asynchronous delay with 40% omission, the capped backoff turns
     every loss into an eventual delivery (each retry re-enters the
     substrate, each arrival lands within the fairness cap of its
     re-send), so every node hears every input; at the pinned seed the
     same run without a policy provably loses traffic. *)
  let module E = Vv_sim.Engine.Make (Relay) in
  let run ?retransmit () =
    let cfg =
      Config.make ~n:4 ~t_max:0 ~max_rounds:40
        ~delay:(Delay.Asynchronous { fairness = 3; schedule = None })
        ~network:(Network.make ~drop:0.4 ~seed:9 ())
        ?retransmit ~seed:9 ()
    in
    E.run_exn cfg ~inputs:(fun id -> 100 + id) ()
  in
  let full = List.init 4 (fun i -> (i, 100 + i)) in
  let pair = Alcotest.(list (pair int int)) in
  let with_r = run ~retransmit:(Retransmit.make ~max_attempts:8 ()) () in
  check_bool "retries fired" true (with_r.E.trace.Trace.retrans_msgs > 0);
  List.iter
    (fun out ->
      match out with
      | Some seen -> check pair "full delivery under async + retries" full seen
      | None -> Alcotest.fail "undecided under async + retries")
    (E.honest_outputs with_r);
  let without = run () in
  check_bool "pinned loss is final without retries" true
    (List.exists
       (fun out -> match out with Some seen -> seen <> full | None -> true)
       (E.honest_outputs without))

(* --- compiled crash filter vs the list oracle --- *)

let plan_gen n =
  QCheck.Gen.(
    int_range 0 2 >>= function
    | 0 -> return Fault.Honest
    | 1 -> return Fault.Byzantine
    | _ ->
        int_range 0 5 >>= fun at_round ->
        list_size (int_range 0 n) (int_range 0 (n - 1)) >>= fun deliver_to ->
        return (Fault.Crash { at_round; deliver_to }))

let prop_compile_matches_delivers =
  QCheck.Test.make ~count:300 ~name:"Fault.compiled_delivers = Fault.delivers"
    (QCheck.make
       ~print:(fun (n, p) -> Fmt.str "n=%d plan=%a" n Fault.pp p)
       QCheck.Gen.(
         int_range 1 10 >>= fun n ->
         plan_gen n >>= fun p -> return (n, p)))
    (fun (n, plan) ->
      let compiled = Fault.compile ~n plan in
      List.for_all
        (fun round ->
          List.for_all
            (fun dst ->
              Fault.compiled_delivers compiled ~round ~dst
              = Fault.delivers plan ~round ~dst)
            (List.init n Fun.id))
        (List.init 9 Fun.id))

(* --- delay schedules: bound property and construction-time probes --- *)

let delay_gen =
  QCheck.Gen.(
    int_range 0 2 >>= function
    | 0 -> int_range 1 5 >>= fun d -> return (Delay.Fixed d)
    | 1 ->
        int_range 1 4 >>= fun lo ->
        int_range 0 4 >>= fun extra ->
        return (Delay.Uniform { lo; hi = lo + extra })
    | _ ->
        int_range 1 5 >>= fun bound ->
        return
          (Delay.Adversarial
             {
               bound;
               schedule =
                 (fun ~round ~src ~dst -> 1 + ((round + (3 * src) + dst) mod bound));
             }))

let prop_resolve_within_bound =
  QCheck.Test.make ~count:300 ~name:"Delay.resolve stays within Delay.bound"
    (QCheck.make
       ~print:(fun (d, seed) -> Fmt.str "%a seed=%d" Delay.pp d seed)
       QCheck.Gen.(
         delay_gen >>= fun d ->
         int_range 0 9999 >>= fun seed -> return (d, seed)))
    (fun (delay, seed) ->
      let rng = Rng.create seed in
      let b = Delay.bound delay in
      List.for_all
        (fun round ->
          List.for_all
            (fun src ->
              List.for_all
                (fun dst ->
                  let d = Delay.resolve delay rng ~round ~src ~dst in
                  d >= 1 && match b with Some b -> d <= b | None -> true)
                (List.init 4 Fun.id))
            (List.init 4 Fun.id))
        (List.init 6 Fun.id))

(* The synchrony-axis models, with and without adversary-supplied
   schedules.  Kept out of [delay_gen]: pre-GST resolutions legitimately
   exceed [Delay.bound] (the *eventual* bound), so these models are
   checked against the per-round [Delay.max_delay] instead. *)
let async_delay_gen =
  QCheck.Gen.(
    bool >>= fun scheduled ->
    bool >>= function
    | true ->
        int_range 1 6 >>= fun fairness ->
        let schedule =
          if scheduled then
            Some
              (fun ~round ~src ~dst ->
                1 + ((round + (2 * src) + dst) mod fairness))
          else None
        in
        return (Delay.Asynchronous { fairness; schedule })
    | false ->
        int_range 0 6 >>= fun gst ->
        int_range 1 4 >>= fun bound ->
        let schedule =
          if scheduled then
            Some
              (fun ~round ~src ~dst ->
                let cap = if round >= gst then bound else gst + bound - round in
                1 + ((round + (2 * src) + dst) mod cap))
          else None
        in
        return (Delay.Eventually_synchronous { gst; bound; schedule }))

(* Satellite of E20: a retransmission scheduled by the capped backoff is
   just another send at its retry round, so its resolved delay must obey
   the same per-round admissibility cap as a fresh message — a retry of a
   pre-GST loss may land late (by gst + bound), but any retry fired at or
   after GST must arrive within the post-GST bound.  [Delay.max_delay]
   states exactly that cap, and the engine clamps substrate jitter with
   it; here we check [Delay.resolve] never exceeds it at any retry round
   the backoff can reach. *)
let prop_retransmit_respects_post_gst_bound =
  QCheck.Test.make ~count:300
    ~name:"retransmitted arrivals never violate the post-GST bound"
    (QCheck.make
       ~print:(fun (d, seed, base, cap) ->
         Fmt.str "%a seed=%d base=%d cap=%d" Delay.pp d seed base cap)
       QCheck.Gen.(
         async_delay_gen >>= fun d ->
         int_range 0 9999 >>= fun seed ->
         int_range 1 3 >>= fun base ->
         int_range 0 3 >>= fun extra -> return (d, seed, base, base + extra)))
    (fun (delay, seed, base, cap) ->
      let p = Retransmit.make ~base ~cap ~max_attempts:5 () in
      let rng = Rng.create seed in
      List.for_all
        (fun send ->
          let retry_round = ref send in
          List.for_all
            (fun attempt ->
              retry_round := !retry_round + Retransmit.backoff p ~attempt;
              let round = !retry_round in
              List.for_all
                (fun src ->
                  List.for_all
                    (fun dst ->
                      let d = Delay.resolve delay rng ~round ~src ~dst in
                      d >= 1
                      && (match Delay.max_delay delay ~round with
                         | Some m -> d <= m
                         | None -> false (* both models declare a cap *))
                      &&
                      match delay with
                      | Delay.Eventually_synchronous { gst; bound; _ } ->
                          round + d <= max (gst + bound) (round + bound)
                      | _ -> true)
                    (List.init 3 Fun.id))
                (List.init 3 Fun.id))
            (List.init 5 (fun a -> a + 1)))
        (List.init 4 Fun.id))

let test_schedule_probe_names_offender () =
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  let expect_msg name needle f =
    match f () with
    | exception Invalid_argument msg ->
        check_bool
          (Fmt.str "%s mentions %S (got %S)" name needle msg)
          true (contains msg needle)
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  (* A Per_message schedule returning 0 at exactly (2, 1, 0). *)
  expect_msg "per-message probe" "(round 2, src 1, dst 0)" (fun () ->
      Config.make
        ~delay:
          (Delay.Per_message
             (fun ~round ~src ~dst ->
               if round = 2 && src = 1 && dst = 0 then 0 else 1))
        ~max_rounds:5 ~n:3 ~t_max:1 ());
  (* An Adversarial schedule exceeding its own bound at (0, 2, 2). *)
  expect_msg "adversarial probe" "(round 0, src 2, dst 2)" (fun () ->
      Config.make
        ~delay:
          (Delay.Adversarial
             {
               bound = 2;
               schedule =
                 (fun ~round ~src ~dst ->
                   if round = 0 && src = 2 && dst = 2 then 3 else 1);
             })
        ~max_rounds:4 ~n:3 ~t_max:1 ());
  (* Well-formed schedules construct fine. *)
  ignore
    (Config.make
       ~delay:(Delay.Per_message (fun ~round:_ ~src:_ ~dst:_ -> 2))
       ~max_rounds:5 ~n:3 ~t_max:1 ())

let test_network_ids_validated () =
  let raises name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  raises "partition id out of range" (fun () ->
      Config.make
        ~network:
          (Network.make
             ~partitions:
               [ { Network.window = window ~from:0 ~until:2; isolated = [ 7 ] } ]
             ())
        ~n:4 ~t_max:1 ());
  raises "outage id out of range" (fun () ->
      Config.make
        ~network:
          (Network.make
             ~outages:[ { Network.node = 4; window = window ~from:0 ~until:2 } ]
             ())
        ~n:4 ~t_max:1 ())

(* --- the E17 campaign --- *)

let test_campaign_jobs_invariant () =
  let a = Chaos.run ~jobs:1 ~trials:1 Chaos.Smoke in
  let b = Chaos.run ~jobs:2 ~trials:1 Chaos.Smoke in
  check_bool "identical cells at any jobs" true
    (a.Chaos.cells = b.Chaos.cells);
  check_int "grid fully classified" 54 (List.length a.Chaos.cells);
  check_bool "safety-guaranteed variant clean" true a.Chaos.ok;
  (* Tables render without raising and agree across jobs. *)
  let render r =
    String.concat "\n"
      (List.map Vv_prelude.Table.to_csv (Chaos.tables r))
  in
  check Alcotest.string "rendered grids" (render a) (render b)

let () =
  Alcotest.run "chaos"
    [
      ( "substrate",
        [
          Alcotest.test_case "windows and cuts" `Quick test_windows_and_cuts;
          Alcotest.test_case "is_none ignores seed" `Quick
            test_is_none_ignores_seed;
          Alcotest.test_case "plan validation" `Quick test_make_validation;
          Alcotest.test_case "guarded draws" `Quick test_transit_guarded_draws;
        ] );
      ( "retransmit",
        [ Alcotest.test_case "capped backoff" `Quick test_backoff ] );
      ( "engine",
        [
          Alcotest.test_case "inert substrate byte-identical" `Quick
            test_inert_substrate_byte_identical;
          Alcotest.test_case "chaos trace schema" `Quick
            test_chaos_trace_schema;
          Alcotest.test_case "permanent outage stalls" `Quick
            test_permanent_outage_stalls;
          Alcotest.test_case "retransmission rescues" `Quick
            test_retransmission_rescues;
          Alcotest.test_case "sync path rejects bound-free delay" `Quick
            test_sync_protocol_rejects_async;
          Alcotest.test_case "retransmission under GST" `Quick
            test_retransmission_under_gst;
          Alcotest.test_case "async retransmission floods" `Quick
            test_async_retransmission_floods;
        ] );
      ( "fault",
        [ QCheck_alcotest.to_alcotest prop_compile_matches_delivers ] );
      ( "delay",
        [
          QCheck_alcotest.to_alcotest prop_resolve_within_bound;
          QCheck_alcotest.to_alcotest prop_retransmit_respects_post_gst_bound;
          Alcotest.test_case "schedule probe names offender" `Quick
            test_schedule_probe_names_offender;
          Alcotest.test_case "chaos ids validated" `Quick
            test_network_ids_validated;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "jobs invariance and classification" `Quick
            test_campaign_jobs_invariant;
        ] );
    ]
