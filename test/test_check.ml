(* Tests for the exhaustive small-model checker (lib/check): state-space
   enumeration counts, scripted-adversary replay, oracle classification,
   counterexample shrinking, jobs-invariance of the checker result, and
   the minimized regression for the engine bug the smoke sweep found. *)

module Space = Vv_check.Space
module Script = Vv_check.Script
module Oracle = Vv_check.Oracle
module Shrink = Vv_check.Shrink
module Check = Vv_check.Check
module Runner = Vv_core.Runner
module Strategy = Vv_core.Strategy
module Bounds = Vv_core.Bounds
module Bb = Vv_bb.Bb

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

module Testable = struct
  let script_action =
    Alcotest.testable Strategy.pp_script_action (fun a b ->
        Strategy.(
          match (a, b) with
          | Skip, Skip -> true
          | Vote_all i, Vote_all j -> Int.equal i j
          | Propose_all i, Propose_all j -> Int.equal i j
          | Vote_split (i, j), Vote_split (k, l)
          | Vote_and_propose (i, j), Vote_and_propose (k, l) ->
              Int.equal i k && Int.equal j l
          | _ -> false))

  let kind =
    Alcotest.testable Bounds.pp_kind (fun a b ->
        Bounds.(
          match (a, b) with
          | Bft, Bft | Cft, Cft | Sct, Sct -> true
          | _ -> false))
end

(* --- state space ------------------------------------------------------- *)

let test_profiles () =
  (* Descending partitions of the honest count into <= max_options parts. *)
  Alcotest.(check (list (list int)))
    "partitions of 3 into <= 3 parts"
    [ [ 3 ]; [ 2; 1 ]; [ 1; 1; 1 ] ]
    (Space.profiles ~honest:3 ~max_options:3);
  Alcotest.(check (list (list int)))
    "partitions of 4 into <= 3 parts"
    [ [ 4 ]; [ 3; 1 ]; [ 2; 2 ]; [ 2; 1; 1 ] ]
    (Space.profiles ~honest:4 ~max_options:3);
  Alcotest.(check (list (list int)))
    "max_options truncates"
    [ [ 5 ]; [ 4; 1 ]; [ 3; 2 ] ]
    (Space.profiles ~honest:5 ~max_options:2)

let test_alphabet_sizes () =
  (* 1 Skip + d votes + d proposes + d^2 vote-and-proposes
     (+ d^2 - d ordered distinct splits under point-to-point). *)
  check_int "d=1 no split" 4
    (List.length (Script.alphabet ~options:1 ~allow_split:false));
  check_int "d=2 no split" 9
    (List.length (Script.alphabet ~options:2 ~allow_split:false));
  check_int "d=2 split" 11
    (List.length (Script.alphabet ~options:2 ~allow_split:true));
  check_int "d=3 split" 22
    (List.length (Script.alphabet ~options:3 ~allow_split:true));
  let alphabet = Script.alphabet ~options:2 ~allow_split:true in
  check_int "count = |alphabet|^rounds" 121 (Script.count ~rounds:2 ~alphabet);
  check_int "all materialises count" 121
    (List.length (Script.all ~rounds:2 ~alphabet))

let test_smoke_space_counts () =
  (* Pin the smoke tier's enumeration: any drift here is a deliberate
     re-budgeting, not an accident (the CI wall-clock depends on it). *)
  let dims = Check.dims_of Check.Smoke in
  let cells = Space.cells dims in
  check_int "smoke cells" 835 (List.length cells);
  check_int "smoke executions" 12608 (Array.length (Space.executions dims));
  (* Crash cells carry exactly the empty script: the crash plan is the
     whole fault, there is no Byzantine script to enumerate. *)
  List.iter
    (fun (c : Space.cell) ->
      match c.Space.fault with
      | Space.Crash_one _ ->
          Alcotest.(check (list (list Testable.script_action)))
            "crash cell scripts" [ [] ]
            (Space.scripts_of dims c)
      | Space.Byzantine _ -> ())
    cells

(* --- scripted replay --------------------------------------------------- *)

let byz_cell ?(protocol = Runner.Algo1) ?(profile = [ 2; 1 ]) () =
  {
    Space.protocol;
    bb = Bb.Dolev_strong;
    n = 4;
    t = 1;
    profile;
    fault = Space.Byzantine 1;
  }

let test_replay_deterministic () =
  (* Scripted adversaries are stateful, so [spec_of] must rebuild one per
     run: classifying the same execution twice must agree. *)
  let e =
    {
      Space.cell = byz_cell ();
      script = [ Strategy.Skip; Strategy.Vote_all 1 ];
    }
  in
  check_bool "same class on re-run" true
    (Oracle.equal_class (Oracle.classify_run e) (Oracle.classify_run e))

(* --- oracle ------------------------------------------------------------ *)

let test_oracle_above_bound_exact () =
  (* Unanimous honest profile: B_G = C_G = 0, bound = max(3t, 2t) = 3 < 4,
     so every script must leave Algorithm 1 exact. *)
  let cell = byz_cell ~profile:[ 3 ] () in
  check_bool "bound holds" true (Oracle.bound_holds cell);
  check_bool "expected exact" true (Oracle.expected_exact cell);
  let e =
    { Space.cell; script = [ Strategy.Vote_and_propose (0, 0) ] }
  in
  check_string "class" "exact" (Oracle.class_label (Oracle.classify_run e))

let test_oracle_below_bound_defeated () =
  (* [2,1] at n=4, t=1: validity bound 2t + 2B_G + C_G = 4, n = 4 not
     above it — the smoke tier's shrunk BFT tightness witness. *)
  let cell = byz_cell () in
  check_bool "bound fails" false (Oracle.bound_holds cell);
  let e = { Space.cell; script = [ Strategy.Skip; Strategy.Vote_all 1 ] } in
  let class_ = Oracle.classify_run e in
  check_string "class" "defeated" (Oracle.class_label class_);
  check_bool "witnesses BFT tightness" true (Oracle.witnesses_tightness e class_)

let test_oracle_sct_below_bound_never_violates () =
  (* Safety-guaranteed kind: below the bound every script yields Exact or
     an admissible stall — a wrong decision would be a violation. *)
  let cell = byz_cell ~protocol:Runner.Algo2_sct () in
  check_bool "bound fails" false (Oracle.bound_holds cell);
  let dims = Check.dims_of Check.Smoke in
  List.iter
    (fun script ->
      match Oracle.classify_run { Space.cell; script } with
      | Oracle.Exact | Oracle.Admissible_stall -> ()
      | Oracle.Defeated | Oracle.Violation _ ->
          Alcotest.failf "SCT safety broken by %a" Script.pp script)
    (Space.scripts_of dims cell)

let test_engine_multi_broadcast_regression () =
  (* Minimized regression for the bug the first smoke sweep found: under
     local broadcast, [Vote_and_propose] makes two *distinct but uniform*
     broadcasts in one round, which the engine's validator used to reject
     as equivocation — 1129 spurious invalid-adversary violations.  The
     class must now be a genuine outcome, never Violation. *)
  let cell = byz_cell ~protocol:Runner.Algo4_local () in
  let e =
    { Space.cell; script = [ Strategy.Vote_and_propose (0, 1) ] }
  in
  match Oracle.classify_run e with
  | Oracle.Violation v ->
      Alcotest.failf "multi-broadcast script rejected: %s"
        (Oracle.violation_label v)
  | Oracle.Exact | Oracle.Admissible_stall | Oracle.Defeated -> ()

(* --- shrinking --------------------------------------------------------- *)

let test_shrink_preserves_class_and_simplifies () =
  let e =
    {
      Space.cell = byz_cell ();
      script = [ Strategy.Vote_all 1; Strategy.Vote_all 1 ];
    }
  in
  let target = Oracle.classify_run e in
  check_string "starts defeated" "defeated" (Oracle.class_label target);
  let r = Shrink.shrink e target in
  check_bool "still defeated" true
    (Oracle.equal_class target (Oracle.classify_run r.Shrink.execution));
  check_bool "reached a fixpoint" true r.Shrink.minimal;
  check_bool "no larger than original" true
    (List.length r.Shrink.execution.Space.script <= List.length e.Space.script
     && r.Shrink.execution.Space.cell.Space.n <= e.Space.cell.Space.n);
  (* 1-minimality: no single move still classifies the same. *)
  List.iter
    (fun m ->
      check_bool "no move preserves the class" false
        (Oracle.equal_class target (Oracle.classify_run m)))
    (Shrink.moves r.Shrink.execution)

let test_shrink_moves_shrink () =
  (* Every candidate move strictly simplifies along some axis; in
     particular none grows the script or the system size. *)
  let e =
    {
      Space.cell = byz_cell ~profile:[ 2; 1 ] ();
      script = [ Strategy.Vote_split (0, 1); Strategy.Vote_all 1 ];
    }
  in
  let weight (x : Space.execution) =
    x.Space.cell.Space.n
    + List.length x.Space.cell.Space.profile
    + List.length
        (List.filter (fun a -> a <> Strategy.Skip) x.Space.script)
    + List.length x.Space.script
  in
  List.iter
    (fun m -> check_bool "move simplifies" true (weight m < weight e))
    (Shrink.moves e)

(* --- whole-checker runs ------------------------------------------------ *)

let smoke_result = lazy (Check.run ~jobs:1 Check.Smoke)

let test_smoke_certifies () =
  let r = Lazy.force smoke_result in
  check_bool "ok" true r.Check.ok;
  check_int "no violations" 0 r.Check.violations_total;
  check_int "cells" 835 r.Check.total_cells;
  check_int "runs" 12608 r.Check.total_runs;
  check_int "six protocol groups" 6 (List.length r.Check.groups);
  List.iter
    (fun (g : Check.group_stats) ->
      check_int
        (Fmt.str "%s accounted" (Runner.protocol_label g.Check.protocol))
        g.Check.runs
        (g.Check.exact + g.Check.stall_admissible + g.Check.defeated
       + g.Check.violations))
    r.Check.groups

let test_smoke_tightness_per_kind () =
  let r = Lazy.force smoke_result in
  let kinds =
    List.map (fun (t : Check.tightness) -> t.Check.kind) r.Check.tightness
  in
  Alcotest.(check (list Testable.kind))
    "one row per kind" [ Bounds.Bft; Bounds.Cft; Bounds.Sct ] kinds;
  List.iter
    (fun (t : Check.tightness) ->
      check_bool "witness found" true (Option.is_some t.Check.witness);
      check_bool "witnessed cells > 0" true (t.Check.witnessed_cells > 0);
      check_bool "below-bound cells exist" true (t.Check.below_bound_cells > 0))
    r.Check.tightness

let test_jobs_invariance () =
  (* The CLI-level guarantee is byte-identical output at any --jobs; at
     the library level compare everything the report renders. *)
  let r1 = Lazy.force smoke_result in
  let r0 = Check.run ~jobs:0 Check.Smoke in
  check_bool "groups identical" true (r1.Check.groups = r0.Check.groups);
  check_int "violations identical" r1.Check.violations_total
    r0.Check.violations_total;
  check_bool "ok identical" true (r1.Check.ok = r0.Check.ok);
  List.iter2
    (fun (a : Check.tightness) (b : Check.tightness) ->
      check_int "below-bound cells" a.Check.below_bound_cells
        b.Check.below_bound_cells;
      check_int "witnessed cells" a.Check.witnessed_cells b.Check.witnessed_cells;
      check_int "below-bound runs" a.Check.below_bound_runs
        b.Check.below_bound_runs;
      check_string "same shrunk witness"
        (Fmt.str "%a"
           Fmt.(option (using (fun (c : Check.counterexample) ->
                    c.Check.shrunk.Shrink.execution) Space.pp_execution))
           a.Check.witness)
        (Fmt.str "%a"
           Fmt.(option (using (fun (c : Check.counterexample) ->
                    c.Check.shrunk.Shrink.execution) Space.pp_execution))
           b.Check.witness))
    r1.Check.tightness r0.Check.tightness

let () =
  Alcotest.run "check"
    [
      ( "space",
        [
          Alcotest.test_case "profiles are bounded partitions" `Quick
            test_profiles;
          Alcotest.test_case "script alphabet sizes" `Quick test_alphabet_sizes;
          Alcotest.test_case "smoke space counts pinned" `Quick
            test_smoke_space_counts;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "scripted replay deterministic" `Quick
            test_replay_deterministic;
          Alcotest.test_case "above bound: exact" `Quick
            test_oracle_above_bound_exact;
          Alcotest.test_case "below bound: defeated witness" `Quick
            test_oracle_below_bound_defeated;
          Alcotest.test_case "SCT never violates safety below bound" `Quick
            test_oracle_sct_below_bound_never_violates;
          Alcotest.test_case
            "engine accepts two distinct local broadcasts (regression)" `Quick
            test_engine_multi_broadcast_regression;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "preserves class, 1-minimal" `Quick
            test_shrink_preserves_class_and_simplifies;
          Alcotest.test_case "moves only simplify" `Quick
            test_shrink_moves_shrink;
        ] );
      ( "checker",
        [
          Alcotest.test_case "smoke certifies all variants" `Quick
            test_smoke_certifies;
          Alcotest.test_case "tightness witnessed per kind" `Quick
            test_smoke_tightness_per_kind;
          Alcotest.test_case "jobs invariance" `Quick test_jobs_invariance;
        ] );
    ]
