(* Campaign-layer tests: golden equality against the CSVs pinned from the
   pre-refactor registry, jobs-invariance, derived-seed stability, and the
   progress hook.  The goldens under golden/ were written by the legacy
   [unit -> Table.t list] registry (experiments at the Full tier, chaos and
   check at Smoke), so these tests are the byte-identity contract of the
   campaign refactor. *)

module Campaign = Vv_exec.Campaign
module Executor = Vv_exec.Executor
module Emit = Vv_exec.Emit
module Table = Vv_prelude.Table
module Experiments = Vv_analysis.Experiments

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* dune runs tests with cwd = the test directory's sandbox, so the pinned
   files are reachable relatively (declared as deps in test/dune). *)
let golden name = read_file (Filename.concat "golden" name)

(* --- registry goldens --- *)

(* Every registry campaign at the Full tier, rendered table-by-table as
   CSV, must equal the pinned files — at jobs=1 and jobs=0 alike. *)
let test_registry_golden ~jobs () =
  List.iter
    (fun c ->
      let id = Campaign.id c in
      let outcome = Campaign.run ~profile:Campaign.Full ~jobs c in
      let e = outcome.Campaign.emitted in
      Alcotest.(check bool) (id ^ " ok") true e.Campaign.ok;
      let n = List.length e.Campaign.tables in
      Alcotest.(check bool) (id ^ " has tables") true (n > 0);
      Alcotest.(check int) (id ^ " cells_run") outcome.Campaign.cells_run
        (Array.length outcome.Campaign.cell_seconds);
      List.iteri
        (fun i t ->
          let name = Fmt.str "%s_%d.csv" id i in
          Alcotest.(check string) name (golden name) (Table.to_csv t))
        e.Campaign.tables;
      (* and no table beyond the pinned ones *)
      let next = Fmt.str "%s_%d.csv" id n in
      Alcotest.(check bool) (next ^ " absent") false
        (Sys.file_exists (Filename.concat "golden" next)))
    Experiments.all

let test_chaos_golden () =
  let c = Vv_analysis.Exp_chaos.campaign () in
  let e = (Campaign.run ~profile:Campaign.Smoke ~jobs:0 c).Campaign.emitted in
  Alcotest.(check bool) "chaos ok" true e.Campaign.ok;
  Alcotest.(check string) "chaos_smoke.csv" (golden "chaos_smoke.csv")
    (Emit.tables_string Emit.Csv e.Campaign.tables)

(* E20 pinned at both tiers: smoke at jobs=0 (the CI invocation), full at
   jobs=1 — together with the byte-identity of the emitted CSV this pins
   the campaign's determinism contract across jobs values. *)
let test_gst_golden () =
  let c = Vv_analysis.Exp_gst.campaign () in
  let e = (Campaign.run ~profile:Campaign.Smoke ~jobs:0 c).Campaign.emitted in
  Alcotest.(check bool) "gst smoke ok" true e.Campaign.ok;
  Alcotest.(check string) "gst_smoke.csv" (golden "gst_smoke.csv")
    (Emit.tables_string Emit.Csv e.Campaign.tables);
  let e = (Campaign.run ~profile:Campaign.Full ~jobs:1 c).Campaign.emitted in
  Alcotest.(check bool) "gst full ok" true e.Campaign.ok;
  Alcotest.(check string) "gst_full.csv" (golden "gst_full.csv")
    (Emit.tables_string Emit.Csv e.Campaign.tables)

(* The check golden ends with the verdict line, exactly as the CLI prints
   it in CSV mode. *)
let test_check_golden () =
  let c = Vv_check.Report.campaign () in
  let e = (Campaign.run ~profile:Campaign.Smoke ~jobs:0 c).Campaign.emitted in
  Alcotest.(check bool) "check ok" true e.Campaign.ok;
  let body = Emit.tables_string Emit.Csv e.Campaign.tables in
  let report =
    match e.Campaign.verdict with Some v -> body ^ v ^ "\n" | None -> body
  in
  Alcotest.(check string) "check_smoke.csv" (golden "check_smoke.csv") report

(* --- registry shape --- *)

let test_registry_ids () =
  Alcotest.(check (list string))
    "ids"
    [
      "fig1a"; "fig1b"; "fig1c"; "e4"; "e5"; "e6"; "e7"; "e8"; "e9"; "e10";
      "e11"; "e12"; "e13"; "e14"; "e15"; "e18"; "e19"; "e21";
    ]
    Experiments.ids;
  List.iter
    (fun id ->
      match Experiments.find id with
      | Some c -> Alcotest.(check string) ("find " ^ id) id (Campaign.id c)
      | None -> Alcotest.failf "find %s returned None" id)
    Experiments.ids

(* Smoke tier: every registry campaign still runs and reports ok. *)
let test_registry_smoke () =
  List.iter
    (fun c ->
      let outcome = Campaign.run ~profile:Campaign.Smoke c in
      Alcotest.(check bool)
        (Campaign.id c ^ " smoke ok")
        true outcome.Campaign.emitted.Campaign.ok;
      Alcotest.(check bool)
        (Campaign.id c ^ " smoke tables")
        true
        (outcome.Campaign.emitted.Campaign.tables <> []))
    Experiments.all

(* --- a synthetic campaign pinning the ctx contract --- *)

(* Each cell reports its (index, cell_seed, profile); collect renders them
   as one table.  This pins the seed-derivation scheme — cell_seed must be
   {!Executor.derive_seed} of (base_seed, index) — and gives a pure value
   to compare across jobs settings. *)
let synthetic =
  Campaign.v ~id:"synthetic" ~what:"ctx capture for tests" ~seed:42
    ~cells:(fun p ->
      List.init (match p with Campaign.Smoke -> 3 | Campaign.Full -> 7) Fun.id)
    ~run_cell:(fun ctx cell ->
      [
        string_of_int cell;
        string_of_int ctx.Campaign.index;
        string_of_int ctx.Campaign.cell_seed;
        string_of_int ctx.Campaign.base_seed;
        Campaign.profile_label ctx.Campaign.profile;
      ])
    ~collect:(fun _ pairs ->
      let t =
        Table.create ~title:"synthetic"
          ~headers:[ "cell"; "index"; "seed"; "base"; "profile" ]
          ()
      in
      List.iter (fun (_, row) -> Table.add_row t row) pairs;
      Campaign.tables [ t ])
    ()

let run_synthetic ?seed ?(profile = Campaign.Full) jobs =
  let e = (Campaign.run ~profile ~jobs ?seed synthetic).Campaign.emitted in
  Emit.tables_string Emit.Csv e.Campaign.tables

let test_seed_derivation () =
  let csv = run_synthetic 1 in
  let expect =
    "cell,index,seed,base,profile\n"
    ^ String.concat ""
        (List.init 7 (fun i ->
             Fmt.str "%d,%d,%d,42,full\n" i i (Executor.derive_seed ~seed:42 i)))
  in
  Alcotest.(check string) "cell seeds are derive_seed(base, index)" expect csv;
  (* the derivation itself is pinned in test_exec.ml; re-pin one value here
     so a change to derive_seed cannot hide behind a matching change to
     Campaign.run *)
  Alcotest.(check int) "derive_seed 42 0" 2375575238713981129
    (Executor.derive_seed ~seed:42 0)

let test_seed_override () =
  let default = run_synthetic 1 in
  let default' = run_synthetic ~seed:(Campaign.default_seed synthetic) 1 in
  let other = run_synthetic ~seed:43 1 in
  Alcotest.(check string) "explicit default seed = implicit" default default';
  Alcotest.(check bool) "distinct seed changes cells" true (default <> other)

let test_jobs_invariance () =
  let j1 = run_synthetic 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Fmt.str "jobs=%d equals jobs=1" jobs)
        j1 (run_synthetic jobs))
    [ 0; 2; 3 ];
  Alcotest.(check string) "smoke tier too"
    (run_synthetic ~profile:Campaign.Smoke 1)
    (run_synthetic ~profile:Campaign.Smoke 0)

let test_rejects_negative_jobs () =
  Alcotest.check_raises "jobs=-1" (Invalid_argument "Executor: negative jobs")
    (fun () -> ignore (Campaign.run ~jobs:(-1) synthetic))

(* --- progress hook --- *)

(* At jobs=1 the ticks arrive sequentially: done_ strictly increases,
   total is constant and equal to the cell count, and the last tick says
   done_ = total. *)
let test_progress () =
  let ticks = ref [] in
  let outcome =
    Campaign.run ~profile:Campaign.Full ~jobs:1
      ~on_progress:(fun p -> ticks := p :: !ticks)
      synthetic
  in
  let ticks = List.rev !ticks in
  Alcotest.(check int) "one tick per cell" outcome.Campaign.cells_run
    (List.length ticks);
  List.iteri
    (fun i (p : Executor.progress) ->
      Alcotest.(check int) (Fmt.str "tick %d done_" i) (i + 1) p.Executor.done_;
      Alcotest.(check int)
        (Fmt.str "tick %d total" i)
        outcome.Campaign.cells_run p.Executor.total)
    ticks

let () =
  Alcotest.run "campaign"
    [
      ( "golden",
        [
          Alcotest.test_case "registry vs pins, jobs=1" `Quick
            (test_registry_golden ~jobs:1);
          Alcotest.test_case "registry vs pins, jobs=0" `Quick
            (test_registry_golden ~jobs:0);
          Alcotest.test_case "chaos smoke vs pin" `Quick test_chaos_golden;
          Alcotest.test_case "gst smoke+full vs pins" `Quick test_gst_golden;
          Alcotest.test_case "check smoke vs pin" `Quick test_check_golden;
        ] );
      ( "registry",
        [
          Alcotest.test_case "ids and find" `Quick test_registry_ids;
          Alcotest.test_case "smoke tier all ok" `Quick test_registry_smoke;
        ] );
      ( "contract",
        [
          Alcotest.test_case "seed derivation" `Quick test_seed_derivation;
          Alcotest.test_case "seed override" `Quick test_seed_override;
          Alcotest.test_case "jobs invariance" `Quick test_jobs_invariance;
          Alcotest.test_case "negative jobs rejected" `Quick
            test_rejects_negative_jobs;
          Alcotest.test_case "progress ticks" `Quick test_progress;
        ] );
    ]
