(* Tests of the multi-shot voting ledger: speaker rotation, stall retries,
   electorate adjustment, and the ledger-level safety invariant. *)

module Oid = Vv_ballot.Option_id
module Ledger = Vv_multishot.Ledger
module Runner = Vv_core.Runner

let o = Oid.of_int
let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let opt_testable = Alcotest.testable Oid.pp Oid.equal

(* 6 honest nodes preferring a decisive winner per slot + 1 Byzantine. *)
let decisive_inputs winner =
  List.init 6 (fun i -> if i = 5 then o ((winner + 1) mod 3) else o winner)
  @ [ o 0 ]

let test_all_slots_decided () =
  let cfg = Ledger.config ~byzantine:[ 6 ] ~n:7 ~t:1 () in
  let ledger = Ledger.create cfg in
  for subject = 1 to 5 do
    ignore (Ledger.decide ledger ~subject (decisive_inputs (subject mod 3)))
  done;
  check_int "height" 5 (Ledger.height ledger);
  check_int "all committed" 5 (List.length (Ledger.committed ledger));
  check_bool "safety invariant" true (Ledger.all_committed_valid ledger);
  List.iteri
    (fun i (idx, v) ->
      check_int "indices in order" i idx;
      check opt_testable "decision matches electorate" (o ((i + 1) mod 3)) v)
    (Ledger.committed ledger)

let test_byzantine_speaker_rotated_past () =
  (* Node 0 is Byzantine and is the first speaker: slot 0 stalls under it
     and commits under speaker 1. *)
  let inputs = o 0 :: List.init 6 (fun _ -> o 1) in
  let cfg = Ledger.config ~byzantine:[ 0 ] ~n:7 ~t:1 () in
  let ledger = Ledger.create cfg in
  let slot = Ledger.decide ledger ~subject:9 inputs in
  check_bool "committed" true (slot.Ledger.decision <> None);
  check_int "second attempt" 2 slot.Ledger.attempts;
  check_int "speaker rotated" 1 slot.Ledger.speaker;
  check opt_testable "plurality" (o 1) (Option.get slot.Ledger.decision)

let test_thin_margin_adjusted () =
  (* SCT stalls on the thin electorate; Rotate_and_adjust converges. *)
  let inputs = List.map o [ 0; 0; 0; 1; 1; 2; 3 ] @ [ o 0; o 0 ] in
  let cfg =
    Ledger.config ~byzantine:[ 7; 8 ]
      ~retry:(Ledger.Rotate_and_adjust (Vv_core.Session.Bandwagon, 8)) ~n:9
      ~t:2 ()
  in
  let ledger = Ledger.create cfg in
  let slot = Ledger.decide ledger ~subject:1 inputs in
  check_bool "eventually committed" true (slot.Ledger.decision <> None);
  check_bool "needed retries" true (slot.Ledger.attempts > 1);
  check_bool "safety invariant" true (Ledger.all_committed_valid ledger)

let test_no_retry_skips () =
  let inputs = List.map o [ 0; 0; 0; 1; 1; 2; 3 ] @ [ o 0; o 0 ] in
  let cfg =
    Ledger.config ~byzantine:[ 7; 8 ] ~retry:Ledger.No_retry ~n:9 ~t:2 ()
  in
  let ledger = Ledger.create cfg in
  let slot = Ledger.decide ledger ~subject:1 inputs in
  check (Alcotest.option opt_testable) "skipped" None slot.Ledger.decision;
  check_int "single attempt" 1 slot.Ledger.attempts;
  check_int "nothing committed" 0 (List.length (Ledger.committed ledger));
  check_bool "safety invariant still holds" true
    (Ledger.all_committed_valid ledger)

let test_algo1_ledger_can_commit_invalid () =
  (* With Algorithm 1 instead of SCT, a thin slot commits the adversary's
     value and the ledger invariant reports it. *)
  let inputs = List.map o [ 0; 0; 0; 1; 1; 2; 3 ] @ List.init 3 (fun _ -> o 0) in
  let cfg =
    Ledger.config ~byzantine:[ 7; 8; 9 ] ~protocol:Runner.Algo1 ~n:10 ~t:3 ()
  in
  let ledger = Ledger.create cfg in
  let slot = Ledger.decide ledger ~subject:1 inputs in
  check_bool "committed" true (slot.Ledger.decision <> None);
  check_bool "flagged invalid" false slot.Ledger.valid;
  check_bool "invariant reports violation" false
    (Ledger.all_committed_valid ledger)

let test_crash_speaker_rotated_past () =
  (* Node 0 is an unreliable host that crashes at round 0 of every
     attempt; as first speaker it stalls slot 0, which then commits under
     speaker 1 (the crashed node is simply a silent participant there). *)
  let inputs = List.init 7 (fun _ -> o 1) in
  let cfg =
    Ledger.config ~crash:[ (0, 0, []) ] ~strategy:Vv_core.Strategy.Passive
      ~n:7 ~t:1 ()
  in
  let ledger = Ledger.create cfg in
  let slot = Ledger.decide ledger ~subject:4 inputs in
  check_bool "committed" true (slot.Ledger.decision <> None);
  check_int "second attempt" 2 slot.Ledger.attempts;
  check_int "rotated to node 1" 1 slot.Ledger.speaker;
  check_bool "safety" true (Ledger.all_committed_valid ledger)

let test_determinism () =
  let go () =
    let cfg = Ledger.config ~byzantine:[ 6 ] ~n:7 ~t:1 ~seed:77 () in
    let ledger = Ledger.create cfg in
    List.init 4 (fun s -> Ledger.decide ledger ~subject:s (decisive_inputs (s mod 2)))
  in
  check_bool "replays identically" true (go () = go ())

let test_validation () =
  Alcotest.check_raises "inputs arity"
    (Invalid_argument "Ledger.decide: inputs must have length n") (fun () ->
      let ledger = Ledger.create (Ledger.config ~n:5 ~t:1 ()) in
      ignore (Ledger.decide ledger ~subject:1 [ o 0 ]));
  Alcotest.check_raises "byz range"
    (Invalid_argument "Ledger.config: byzantine id out of range") (fun () ->
      ignore (Ledger.config ~byzantine:[ 9 ] ~n:5 ~t:1 ()))

(* --- slot independence (the seeding bugfix) --- *)

module Engine = Vv_multishot.Engine
module Json = Vv_prelude.Json

(* A mix of decisive and thin electorates so attempt counts vary. *)
let mixed_inputs i =
  if i mod 3 = 2 then List.map o [ 0; 0; 0; 1; 1; 2; 3 ] @ [ o 0; o 0 ]
  else
    List.init 7 (fun j -> if j = 6 then o ((i + 1) mod 3) else o (i mod 3))
    @ [ o 0; o 0 ]

let mixed_cfg ?retry () =
  Ledger.config ~byzantine:[ 7; 8 ]
    ~retry:
      (Option.value retry
         ~default:(Ledger.Rotate_and_adjust (Vv_core.Session.Bandwagon, 6)))
    ~n:9 ~t:2 ~seed:0xabc ()

let test_slot_independence () =
  (* The regression: slot k's outcome must not depend on slots < k having
     run. Before the per-slot derive_seed fix, every attempt pulled from
     one shared RNG stream, so a retry in slot 0 shifted every later
     slot's seeds. *)
  let cfg = mixed_cfg () in
  let with_prefix prefix_len =
    let ledger = Ledger.create cfg in
    for i = 0 to prefix_len - 1 do
      ignore (Ledger.decide ledger ~subject:i (mixed_inputs i))
    done;
    (* The probe subject lands at index [prefix_len]; compute the same
       index directly and compare. *)
    Ledger.decide ledger ~subject:99 (mixed_inputs 2)
  in
  let direct index =
    Ledger.compute cfg ~index ~subject:99 (mixed_inputs 2)
  in
  List.iter
    (fun len ->
      let appended = with_prefix len in
      let computed = direct len in
      check_bool
        (Fmt.str "decide after %d slots == pure compute" len)
        true
        (appended = computed))
    [ 0; 1; 2; 3; 5 ];
  (* And the same (index, subject, inputs) triple decides identically no
     matter what ran before it — retries in earlier slots included. *)
  let a = direct 4 and b = direct 4 in
  check_bool "compute is pure" true (a = b)

let test_engine_matches_sequential () =
  (* batch=1 engine == a sequential Ledger.decide loop, byte for byte. *)
  let cfg = mixed_cfg () in
  let reqs = List.init 9 (fun i -> (i, mixed_inputs i)) in
  let ledger = Ledger.create cfg in
  let sequential =
    List.map (fun (s, inputs) -> Ledger.decide ledger ~subject:s inputs) reqs
  in
  let log, stats = Engine.run ~batch:1 ~jobs:1 cfg reqs in
  check_bool "batch=1 == sequential" true (log = sequential);
  check_int "stats decided" 9 stats.Engine.decided

let test_engine_jobs_invariance () =
  (* Sharded across all cores == single domain, at several batch sizes. *)
  let cfg = mixed_cfg () in
  let reqs = List.init 13 (fun i -> (i, mixed_inputs i)) in
  List.iter
    (fun batch ->
      let log1, stats1 = Engine.run ~batch ~jobs:1 cfg reqs in
      let log0, stats0 = Engine.run ~batch ~jobs:0 cfg reqs in
      check_bool (Fmt.str "batch %d: logs identical" batch) true (log0 = log1);
      check_bool (Fmt.str "batch %d: stats identical" batch) true
        (stats0 = stats1))
    [ 1; 3; 4; 8 ]

let test_engine_step_flush () =
  let cfg = mixed_cfg () in
  let e = Engine.create ~batch:3 cfg in
  ignore (Engine.submit e ~subject:0 (mixed_inputs 0));
  ignore (Engine.submit e ~subject:1 (mixed_inputs 1));
  check_int "partial slot waits" 0 (List.length (Engine.step e));
  check_int "pending" 2 (Engine.pending e);
  ignore (Engine.submit e ~subject:2 (mixed_inputs 2));
  check_int "full slot decides" 3 (List.length (Engine.step e));
  ignore (Engine.submit e ~subject:3 (mixed_inputs 3));
  check_int "flush forces partial" 1 (List.length (Engine.flush e));
  check_int "height" 4 (Engine.height e);
  check_int "positions in order" 3
    (List.nth (Engine.decisions e) 3).Ledger.index

let test_engine_retry_under_pipelining () =
  (* Thin electorates force retries; the pipelined makespan must stay
     within [max slot duration, sequential sum] and the decisions must
     still match the sequential ledger. *)
  let cfg = mixed_cfg () in
  let reqs = List.init 12 (fun i -> (i, mixed_inputs i)) in
  let log, stats = Engine.run ~batch:4 ~jobs:0 cfg reqs in
  check_bool "some slot retried" true (stats.Engine.attempts_total > 12);
  check_bool "pipelining helps" true
    (stats.Engine.rounds_pipelined < stats.Engine.rounds_sequential);
  check_bool "pipelining is sound" true
    (stats.Engine.rounds_pipelined <= stats.Engine.rounds_sequential
    && stats.Engine.rounds_sequential <= stats.Engine.rounds_instances);
  let ledger = Ledger.create cfg in
  let sequential =
    List.map (fun (s, inputs) -> Ledger.decide ledger ~subject:s inputs) reqs
  in
  (* Batching changes slot geometry, not per-position outcomes: each
     position's seeds derive from its global index either way. *)
  check_bool "same decisions as sequential" true
    (List.map (fun (s : Ledger.slot) -> (s.Ledger.index, s.Ledger.decision)) log
    = List.map
        (fun (s : Ledger.slot) -> (s.Ledger.index, s.Ledger.decision))
        sequential)

let test_engine_snapshot_roundtrip () =
  let cfg = mixed_cfg () in
  let reqs = List.init 10 (fun i -> (i, mixed_inputs i)) in
  let e = Engine.create ~batch:4 cfg in
  List.iter (fun (s, inputs) -> ignore (Engine.submit e ~subject:s inputs)) reqs;
  ignore (Engine.step e);
  ignore (Engine.flush e);
  let snap = Engine.to_snapshot e in
  (* Round-trip through the actual wire encoding. *)
  let snap =
    match Json.of_string (Json.to_string snap) with
    | Ok j -> j
    | Error m -> Alcotest.failf "snapshot does not re-parse: %s" m
  in
  let e' =
    match Engine.of_snapshot ~batch:4 cfg snap with
    | Ok e' -> e'
    | Error m -> Alcotest.failf "of_snapshot: %s" m
  in
  check_int "height restored" (Engine.height e) (Engine.height e');
  check_bool "log restored" true (Engine.decisions e = Engine.decisions e');
  check_bool "stats restored" true (Engine.stats e = Engine.stats e');
  (* Catch-up: a consumer at height 6 receives exactly positions 6.. *)
  let tail = Engine.decisions_from e' 6 in
  check_int "catch-up length" 4 (List.length tail);
  check_int "catch-up starts at 6" 6 (List.hd tail).Ledger.index;
  (* A snapshot from a different config is refused. *)
  let other = Ledger.config ~byzantine:[ 7; 8 ] ~n:9 ~t:2 ~seed:1 () in
  check_bool "seed mismatch refused" true
    (match Engine.of_snapshot other snap with Error _ -> true | Ok _ -> false)

let test_engine_append_committed () =
  (* A follower building its log purely from a primary's decision stream
     must converge to the same committed list. *)
  let cfg = mixed_cfg () in
  let reqs = List.init 10 (fun i -> (i, mixed_inputs i)) in
  let log, _ = Engine.run ~batch:4 ~jobs:1 cfg reqs in
  let follower = Engine.create ~batch:4 cfg in
  List.iter
    (fun s ->
      match Engine.append_committed follower s with
      | Ok `Applied -> ()
      | Ok `Stale -> Alcotest.fail "fresh slot marked stale"
      | Error m -> Alcotest.failf "append: %s" m)
    log;
  check_bool "replicated log identical" true (Engine.decisions follower = log);
  check_int "height follows" 10 (Engine.height follower);
  (* Replaying an already-applied slot is stale, not an error (overlap
     after a re-catchup). *)
  (match Engine.append_committed follower (List.hd log) with
  | Ok `Stale -> ()
  | _ -> Alcotest.fail "replay should be stale");
  check_int "stale replay does not grow the log" 10 (Engine.height follower);
  (* A gap means the stream desynced and must be refused. *)
  let far = Ledger.compute cfg ~index:15 ~subject:15 (mixed_inputs 15) in
  check_bool "gap refused" true
    (match Engine.append_committed follower far with
    | Error _ -> true
    | Ok _ -> false);
  (* Mixing local pending submissions with replication is refused. *)
  ignore (Engine.submit follower ~subject:99 (mixed_inputs 0));
  let next = Ledger.compute cfg ~index:10 ~subject:10 (mixed_inputs 10) in
  check_bool "pending guard" true
    (match Engine.append_committed follower next with
    | Error _ -> true
    | Ok _ -> false)

let () =
  Alcotest.run "multishot"
    [
      ( "ledger",
        [
          Alcotest.test_case "all slots decided" `Quick test_all_slots_decided;
          Alcotest.test_case "byzantine speaker rotated past" `Quick
            test_byzantine_speaker_rotated_past;
          Alcotest.test_case "crash speaker rotated past" `Quick
            test_crash_speaker_rotated_past;
          Alcotest.test_case "thin margin adjusted (V-B)" `Quick
            test_thin_margin_adjusted;
          Alcotest.test_case "no-retry skips" `Quick test_no_retry_skips;
          Alcotest.test_case "algo1 ledger flags invalid commits" `Quick
            test_algo1_ledger_can_commit_invalid;
          Alcotest.test_case "deterministic" `Quick test_determinism;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "slot independence (seeding regression)" `Quick
            test_slot_independence;
        ] );
      ( "engine",
        [
          Alcotest.test_case "batch=1 matches sequential ledger" `Quick
            test_engine_matches_sequential;
          Alcotest.test_case "jobs invariance (1 vs all cores)" `Quick
            test_engine_jobs_invariance;
          Alcotest.test_case "step waits, flush forces" `Quick
            test_engine_step_flush;
          Alcotest.test_case "retry under pipelining" `Quick
            test_engine_retry_under_pipelining;
          Alcotest.test_case "append_committed replication" `Quick
            test_engine_append_committed;
          Alcotest.test_case "snapshot round-trip and catch-up" `Quick
            test_engine_snapshot_roundtrip;
        ] );
    ]
