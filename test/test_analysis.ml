(* Tests of the analysis layer: witness constructions, the experiment
   harness (smoke + shape assertions on the produced tables), and the
   Figure 1 cross-validation. *)

module Table = Vv_prelude.Table
module W = Vv_analysis.Witness
module Oid = Vv_ballot.Option_id

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

(* --- witness builders --- *)

let test_inputs_builder () =
  let l = W.inputs ~ag:5 ~bg:2 ~cg:3 in
  match Vv_core.Bounds.decompose ~tie:Vv_ballot.Tie_break.default l with
  | None -> Alcotest.fail "decompose"
  | Some (w, ag, bg, cg) ->
      check_int "A_G" 5 ag;
      check_int "B_G" 2 bg;
      check_int "C_G" 3 cg;
      check (Alcotest.testable Oid.pp Oid.equal) "winner" (Oid.of_int 0) w

let test_inputs_builder_validation () =
  Alcotest.check_raises "cg needs bg"
    (Invalid_argument "Witness.inputs: cg > 0 requires bg >= 1") (fun () ->
      ignore (W.inputs ~ag:3 ~bg:0 ~cg:2));
  Alcotest.check_raises "ag >= bg"
    (Invalid_argument "Witness.inputs: need ag >= bg") (fun () ->
      ignore (W.inputs ~ag:1 ~bg:2 ~cg:0))

let test_inputs_builder_sweep () =
  (* The builder must hit the requested decomposition across a grid. *)
  for ag = 2 to 6 do
    for bg = 1 to min ag 3 do
      for cg = 0 to 4 do
        let l = W.inputs ~ag ~bg ~cg in
        match Vv_core.Bounds.decompose ~tie:Vv_ballot.Tie_break.default l with
        | Some (_, ag', bg', cg') ->
            check_int (Fmt.str "ag %d %d %d" ag bg cg) ag ag';
            check_int (Fmt.str "bg %d %d %d" ag bg cg) bg bg';
            check_int (Fmt.str "cg %d %d %d" ag bg cg) cg cg'
        | None -> Alcotest.fail "decompose"
      done
    done
  done

let test_section7_firing_point () =
  check (Alcotest.option Alcotest.int) "paper's example fires at 7" (Some 7)
    (W.incremental_firing_point ~n:10 W.section7_sequence)

let test_lemma2_cells_match_theory () =
  List.iter
    (fun t ->
      List.iter
        (fun gap ->
          let c = W.lemma2_cell ~t ~bg:1 ~cg:1 ~gap in
          check_bool
            (Fmt.str "t=%d gap=%d matches" t gap)
            true c.W.matches_theory)
        [ t - 1; t; t + 1; t + 2 ])
    [ 1; 2; 3 ]

let test_theorem10_demo () =
  List.iter
    (fun t ->
      let d = W.theorem10_demo ~t in
      check_bool (Fmt.str "lax violates at t=%d" t) true d.W.lax_violates;
      check_bool (Fmt.str "strict safe at t=%d" t) true d.W.strict_safe)
    [ 1; 2 ]

(* --- experiment harness shape --- *)

let rows_of t = List.length (Table.rows t)

let test_fig1a_shape () =
  let t = Vv_analysis.Exp_fig1.fig1a () in
  check_int "four profiles" 4 (rows_of t)

let test_fig1b_small () =
  (* Shrunk workload: exact and Monte-Carlo must agree within the reported
     half-width (plus slack), per row. *)
  let t = Vv_analysis.Exp_fig1.fig1b ~t_max:1 ~mc_samples:4000 ~trials:20 () in
  check_int "4 profiles x 2 tolerances" 8 (rows_of t);
  List.iter
    (fun row ->
      match row with
      | [ _; _; exact; mc; hw; _ ] ->
          let exact = float_of_string exact
          and mc = float_of_string mc
          and hw = float_of_string hw in
          check_bool "exact ~ mc" true (abs_float (exact -. mc) < hw +. 0.02)
      | _ -> Alcotest.fail "row shape")
    (Table.rows t)

let test_fig1c_shape () =
  let t = Vv_analysis.Exp_fig1.fig1c () in
  check_int "four profiles" 4 (rows_of t);
  (* H_s at f=0 is exactly 0 for every profile. *)
  List.iter
    (fun row ->
      match row with
      | _ :: _ :: f0 :: _ -> check (Alcotest.string) "H_s(0)=0" "0" f0
      | _ -> Alcotest.fail "row shape")
    (Table.rows t)

let test_e4_shape () =
  let t = Vv_analysis.Exp_examples.e4 () in
  check_int "four scenario rows" 4 (rows_of t);
  (* Row 1: algo1 fooled (term yes, validity no); row 2: SCT safe. *)
  (match Table.rows t with
  | [ _; _; _; "term"; _; _; _; _; _ ] :: _ -> ()
  | r1 :: r2 :: _ ->
      (match r1 with
      | [ _; _; _; _; term; _; validity; _; _ ] ->
          check (Alcotest.string) "algo1 terminates" "yes" term;
          check (Alcotest.string) "algo1 fooled" "no" validity
      | _ -> Alcotest.fail "row shape");
      (match r2 with
      | [ _; _; _; _; term; _; _; safe; _ ] ->
          check (Alcotest.string) "sct stalls" "no" term;
          check (Alcotest.string) "sct safe" "yes" safe
      | _ -> Alcotest.fail "row shape")
  | _ -> Alcotest.fail "table shape")

let test_e6_all_green () =
  let t = Vv_analysis.Exp_bounds.e6 () in
  check_bool "has rows" true (rows_of t > 0);
  List.iter
    (fun row ->
      match row with
      | [ _; _; _; ineq15; term; valid ] ->
          check (Alcotest.string) "ineq15 holds on grid" "yes" ineq15;
          check (Alcotest.string) "algo4 terminates" "yes" term;
          check (Alcotest.string) "algo4 valid" "yes" valid
      | _ -> Alcotest.fail "row shape")
    (Table.rows t)

let test_e7_matches () =
  let t = Vv_analysis.Exp_bounds.e7_lemma2 () in
  List.iter
    (fun row ->
      match List.rev row with
      | matches :: _ -> check (Alcotest.string) "matches theory" "yes" matches
      | [] -> Alcotest.fail "row shape")
    (Table.rows t)

let test_e10_frontier_monotone () =
  (* More dispersion can never increase the max tolerable t. *)
  let t = Vv_analysis.Exp_bounds.e10_frontier ~n:12 () in
  let cells =
    List.map
      (fun row ->
        match row with
        | [ _; _; disp; _; bft; _; sct ] ->
            (int_of_string disp, int_of_string bft, int_of_string sct)
        | _ -> Alcotest.fail "row shape")
      (Table.rows t)
  in
  List.iter
    (fun (d1, b1, s1) ->
      List.iter
        (fun (d2, b2, s2) ->
          if d1 < d2 then begin
            check_bool "bft monotone" true (b1 >= b2);
            check_bool "sct monotone" true (s1 >= s2)
          end)
        cells)
    cells

let test_e11_ablation_shape () =
  let t = Vv_analysis.Exp_bounds.e11_judgment_ablation ~t:2 () in
  List.iter
    (fun row ->
      match row with
      | [ dp; _; dec_term; _; tie_term; tie_valid ] ->
          let dp = int_of_string dp in
          (* Theorem 10: the tie attack wins exactly below delta_P = t. *)
          check (Alcotest.string)
            (Fmt.str "tie validity at dp=%d" dp)
            (if dp < 2 then "no" else "yes")
            tie_valid;
          check (Alcotest.string)
            (Fmt.str "tie termination at dp=%d" dp)
            (if dp < 2 then "yes" else "no")
            tie_term;
          (* Property 3: the decisive electorate (gap 5) terminates iff
             gap > delta_P + t. *)
          check (Alcotest.string)
            (Fmt.str "decisive termination at dp=%d" dp)
            (if 5 > dp + 2 then "yes" else "no")
            dec_term
      | _ -> Alcotest.fail "row shape")
    (Table.rows t)

let test_e12_shapes () =
  let t = Vv_analysis.Exp_radio.e12_topologies () in
  check_bool "topologies present" true (rows_of t >= 4);
  List.iter
    (fun row ->
      match row with
      | [ _; _; _; term; valid; _; _ ] ->
          check (Alcotest.string) "exact on every topology" "yes" term;
          check (Alcotest.string) "valid on every topology" "yes" valid
      | _ -> Alcotest.fail "row shape")
    (Table.rows t);
  let p = Vv_analysis.Exp_radio.e12_poison () in
  match Table.rows p with
  | [ _; [ _; _; _; _; c_exact ]; _; [ _; _; _; r_valid; r_exact ] ] ->
      check (Alcotest.string) "poison inert on complete" "yes" c_exact;
      check (Alcotest.string) "poison breaks exactness on ring" "no" r_exact;
      check (Alcotest.string) "never a wrong decision" "yes" r_valid
  | _ -> Alcotest.fail "poison table shape"

let test_e13_shapes () =
  (* E13a: SCT column never exceeds the BFT column (Pr(gap>2t) <= Pr(gap>t)). *)
  let t = Vv_analysis.Exp_probability.e13_sct_price () in
  List.iter
    (fun row ->
      match row with
      | _ :: cells ->
          let rec pairs = function
            | bft :: sct :: rest ->
                check_bool "sct <= bft" true
                  (float_of_string sct <= float_of_string bft +. 1e-9);
                pairs rest
            | _ -> ()
          in
          pairs cells
      | [] -> Alcotest.fail "row shape")
    (Table.rows t);
  (* E13b: strong validity fails below N = mt and holds above. *)
  let p = Vv_analysis.Exp_probability.e13_neiger () in
  List.iter
    (fun row ->
      match row with
      | [ _; above; _; strong; _ ] ->
          if above = "yes" then
            check (Alcotest.string) "strong ok above mt" "yes" strong
      | _ -> Alcotest.fail "row shape")
    (Table.rows p);
  (match Table.rows p with
  | [ _; _; _; first_strong; _ ] :: _ ->
      check (Alcotest.string) "fails below mt" "no" first_strong
  | _ -> Alcotest.fail "table shape")

let test_e14_shapes () =
  let w = Vv_analysis.Exp_extensions.e14_weighted () in
  (* Stake concentration never raises the tolerable adversary weight above
     the uniform profile's. *)
  (match Table.rows w with
  | ([ _; _; _; uniform_exact; _ ] :: rest) ->
      List.iter
        (fun row ->
          match row with
          | [ _; _; _; exact; _ ] ->
              check_bool "concentration does not help" true
                (int_of_string exact <= int_of_string uniform_exact)
          | _ -> Alcotest.fail "row shape")
        rest
  | _ -> Alcotest.fail "weighted table shape");
  let m = Vv_analysis.Exp_extensions.e14_multidim () in
  List.iter
    (fun row ->
      match List.rev row with
      | safe :: _ -> check (Alcotest.string) "multidim always safe" "yes" safe
      | [] -> Alcotest.fail "row shape")
    (Table.rows m)

let test_experiments_registry () =
  check_int "eighteen experiments" 18 (List.length Vv_analysis.Experiments.all);
  List.iter
    (fun id ->
      check_bool (Fmt.str "find %s" id) true
        (Vv_analysis.Experiments.find id <> None))
    Vv_analysis.Experiments.ids;
  check_bool "unknown id" true (Vv_analysis.Experiments.find "nope" = None)

let () =
  Alcotest.run "analysis"
    [
      ( "witness",
        [
          Alcotest.test_case "inputs builder" `Quick test_inputs_builder;
          Alcotest.test_case "builder validation" `Quick
            test_inputs_builder_validation;
          Alcotest.test_case "builder sweep" `Quick test_inputs_builder_sweep;
          Alcotest.test_case "section VII-A firing point" `Quick
            test_section7_firing_point;
          Alcotest.test_case "lemma 2 cells" `Quick test_lemma2_cells_match_theory;
          Alcotest.test_case "theorem 10 demo" `Quick test_theorem10_demo;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "fig1a shape" `Quick test_fig1a_shape;
          Alcotest.test_case "fig1b exact~mc" `Slow test_fig1b_small;
          Alcotest.test_case "fig1c zero at f=0" `Quick test_fig1c_shape;
          Alcotest.test_case "e4 narrative" `Quick test_e4_shape;
          Alcotest.test_case "e6 all green" `Quick test_e6_all_green;
          Alcotest.test_case "e7 matches theory" `Quick test_e7_matches;
          Alcotest.test_case "e10 frontier monotone" `Quick
            test_e10_frontier_monotone;
          Alcotest.test_case "e11 ablation (Thm 10 + Prop 3)" `Quick
            test_e11_ablation_shape;
          Alcotest.test_case "e12 radio topologies + poison" `Quick
            test_e12_shapes;
          Alcotest.test_case "e13 SCT price + Neiger bound" `Quick
            test_e13_shapes;
          Alcotest.test_case "e14 extensions" `Quick test_e14_shapes;
          Alcotest.test_case "registry" `Quick test_experiments_registry;
        ] );
    ]
