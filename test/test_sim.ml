(* Tests of the simulation engine: delivery, crash filtering, communication
   model enforcement, delays, determinism and stall reporting. *)

open Vv_sim

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

(* A toy flood protocol: broadcast the input at round 0, record every
   arrival with its round, decide on the full log at [decide_round]. *)
module Flood = struct
  type input = int
  type msg = int
  type output = (int * int * int) list (* (arrival round, src, value) *)
  type state = { log : output; decided : output option }

  let name = "flood"
  let decide_round = 6
  let equal_msg = Int.equal

  let init (_ : Protocol.ctx) v ~outbox =
    Outbox.broadcast outbox v;
    { log = []; decided = None }

  let step (_ : Protocol.ctx) st ~round ~inbox ~outbox:_ =
    let log =
      st.log
      @ List.rev (Inbox.fold (fun acc src v -> (round, src, v) :: acc) [] inbox)
    in
    let decided =
      if round >= decide_round && st.decided = None then Some log else st.decided
    in
    { log; decided }

  let output st = st.decided
  let phase st = if st.decided = None then "flood" else "done"
  let inert _ = false
end

module E = Engine.Make (Flood)

let values res =
  (* Per honest node: sorted (src, value) pairs seen. *)
  List.map
    (fun out ->
      match out with
      | None -> []
      | Some log -> List.sort compare (List.map (fun (_, s, v) -> (s, v)) log))
    (E.honest_outputs res)

let test_full_delivery () =
  let cfg = Config.make ~n:4 ~t_max:1 () in
  let res = E.run_exn cfg ~inputs:(fun id -> 100 + id) () in
  let expected = List.init 4 (fun i -> (i, 100 + i)) in
  List.iter
    (fun seen -> check (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
        "every node sees every input (incl. self)" expected seen)
    (values res);
  check_int "honest messages" 16 res.metrics.Metrics.honest_messages;
  check_bool "not stalled" false res.stalled

let test_crash_mid_broadcast () =
  (* Node 2 crashes while broadcasting at round 0: only node 0 receives its
     vote — the Lemma 4 scenario where X_i <> X_G. *)
  let faults =
    [| Fault.Honest; Fault.Honest; Fault.Crash { at_round = 0; deliver_to = [ 0 ] } |]
  in
  let cfg = Config.make ~n:3 ~t_max:1 ~faults ()
  in
  let res = E.run_exn cfg ~inputs:(fun id -> 100 + id) () in
  (match values res with
  | [ seen0; seen1 ] ->
      check_bool "node0 got crash vote" true (List.mem (2, 102) seen0);
      check_bool "node1 missed crash vote" false (List.mem (2, 102) seen1)
  | _ -> Alcotest.fail "expected two honest outputs");
  check_int "f counted" 1 (Config.faulty_count cfg)

let test_crashed_node_silent_after () =
  (* A node crashing at round 0 sends nothing in later rounds; with an empty
     deliver_to it is silent from the start. *)
  let faults =
    [| Fault.Honest; Fault.Crash { at_round = 0; deliver_to = [] }; Fault.Honest |]
  in
  let cfg = Config.make ~n:3 ~t_max:1 ~faults () in
  let res = E.run_exn cfg ~inputs:(fun id -> id) () in
  List.iter
    (fun seen -> check_bool "no votes from crashed" false (List.mem_assoc 1 seen))
    (values res)

let test_byzantine_equivocation_p2p_allowed () =
  let cfg = Config.with_byzantine ~n:4 ~t_max:1 [ 3 ] () in
  let adversary =
    Adversary.named "equivocate" (fun view ->
        if view.Adversary.round <> 0 then []
        else
          List.init view.Adversary.n (fun dst ->
              { Adversary.src = 3; dst; msg = 900 + dst }))
  in
  let res = E.run_exn cfg ~inputs:(fun id -> id) ~adversary () in
  (match values res with
  | seen0 :: _ -> check_bool "per-recipient message" true (List.mem (3, 900) seen0)
  | [] -> Alcotest.fail "no outputs");
  check_int "byz messages counted" 4 res.metrics.Metrics.byzantine_messages

let test_local_broadcast_blocks_equivocation () =
  let cfg =
    Config.with_byzantine ~comm:Types.Local_broadcast ~n:4 ~t_max:1 [ 3 ] ()
  in
  let adversary =
    Adversary.named "equivocate" (fun view ->
        if view.Adversary.round <> 0 then []
        else
          List.init view.Adversary.n (fun dst ->
              { Adversary.src = 3; dst; msg = 900 + dst }))
  in
  (* The result-returning run reports the violation as an Error... *)
  (match E.run cfg ~inputs:(fun id -> id) ~adversary () with
  | Error (`Invalid_adversary _) -> ()
  | Ok _ ->
      Alcotest.fail "equivocation should be rejected under local broadcast");
  (* ...and run_exn raises. *)
  (try
     ignore (E.run_exn cfg ~inputs:(fun id -> id) ~adversary ());
     Alcotest.fail "equivocation should be rejected under local broadcast"
   with Engine.Invalid_adversary _ -> ());
  (* Partial broadcast (not reaching everyone) is rejected too. *)
  let partial =
    Adversary.named "partial" (fun view ->
        if view.Adversary.round <> 0 then []
        else [ { Adversary.src = 3; dst = 0; msg = 7 } ])
  in
  match E.run cfg ~inputs:(fun id -> id) ~adversary:partial () with
  | Error (`Invalid_adversary _) -> ()
  | Ok _ ->
      Alcotest.fail "partial broadcast should be rejected under local broadcast"

let test_local_broadcast_identical_ok () =
  let cfg =
    Config.with_byzantine ~comm:Types.Local_broadcast ~n:4 ~t_max:1 [ 3 ] ()
  in
  let adversary =
    Adversary.broadcast_each_round ~name:"same" ~when_round:(fun r -> r = 0)
      (fun ~src:_ _view -> Some 777)
  in
  let res = E.run_exn cfg ~inputs:(fun id -> id) ~adversary () in
  List.iter
    (fun seen -> check_bool "all received 777" true (List.mem (3, 777) seen))
    (values res)

let test_local_broadcast_two_distinct_broadcasts_ok () =
  (* Honest nodes may emit several envelopes per round, each broadcast to
     the whole neighbourhood; the adversary validator must grant Byzantine
     nodes the same right.  The old validator required all of a sender's
     messages in a round to be identical, conflating two distinct uniform
     broadcasts with per-recipient equivocation — found by the exhaustive
     checker on Vote_and_propose scripts. *)
  let cfg =
    Config.with_byzantine ~comm:Types.Local_broadcast ~n:4 ~t_max:1 [ 3 ] ()
  in
  let adversary =
    Adversary.named "two-broadcasts" (fun view ->
        if view.Adversary.round <> 0 then []
        else
          List.concat_map
            (fun msg ->
              List.map
                (fun dst -> { Adversary.src = 3; dst; msg })
                (view.Adversary.reach 3))
            [ 701; 702 ])
  in
  let res = E.run_exn cfg ~inputs:(fun id -> id) ~adversary () in
  List.iter
    (fun seen ->
      check_bool "first broadcast delivered" true (List.mem (3, 701) seen);
      check_bool "second broadcast delivered" true (List.mem (3, 702) seen))
    (values res)

let test_adversary_from_honest_rejected () =
  let cfg = Config.with_byzantine ~n:4 ~t_max:1 [ 3 ] () in
  let adversary =
    Adversary.named "impersonate" (fun view ->
        if view.Adversary.round <> 0 then []
        else [ { Adversary.src = 0; dst = 1; msg = 1 } ])
  in
  match E.run cfg ~inputs:(fun id -> id) ~adversary () with
  | Error (`Invalid_adversary reason) ->
      check_bool "reason names the node" true
        (String.length reason > 0)
  | Ok _ -> Alcotest.fail "sending from honest id must be rejected"

let test_uniform_delay_bounds () =
  let cfg = Config.make ~n:5 ~t_max:1 ~delay:(Delay.Uniform { lo = 1; hi = 3 }) () in
  let res = E.run_exn cfg ~inputs:(fun id -> id) () in
  List.iter
    (fun out ->
      match out with
      | None -> Alcotest.fail "undecided"
      | Some log ->
          check_int "all messages arrive" 5 (List.length log);
          List.iter
            (fun (round, _, _) ->
              check_bool "arrival within bounds" true (round >= 1 && round <= 3))
            log)
    (E.honest_outputs res)

let test_determinism () =
  let run () =
    let cfg =
      Config.make ~n:6 ~t_max:1 ~delay:(Delay.Uniform { lo = 1; hi = 4 }) ~seed:99 ()
    in
    E.run_exn cfg ~inputs:(fun id -> id * 3) ()
  in
  let a = run () and b = run () in
  check_bool "same outputs" true (E.honest_outputs a = E.honest_outputs b);
  check_int "same rounds" a.rounds_used b.rounds_used

(* A protocol that never decides must be reported as stalled at
   max_rounds. *)
module Mute = struct
  type input = unit
  type msg = unit
  type output = unit
  type state = unit

  let name = "mute"
  let equal_msg () () = true
  let init _ () ~outbox:_ = ()
  let step _ () ~round:_ ~inbox:_ ~outbox:_ = ()
  let output () = None
  let phase () = "mute"
  let inert () = true
end

let test_stall_reported () =
  let module EM = Engine.Make (Mute) in
  let cfg = Config.make ~n:3 ~t_max:0 ~max_rounds:10 () in
  let res = EM.run_exn cfg ~inputs:(fun _ -> ()) () in
  check_bool "stalled" true res.EM.stalled;
  check_int "ran to cutoff" 10 res.EM.rounds_used

(* Regression for the max_rounds off-by-one: the old loop ran
   [0 .. max_rounds] — max_rounds + 1 rounds — so a stalled run recorded
   max_rounds + 1 executed rounds in its trace and [rounds_used] disagreed
   with the trace's [total_rounds].  The fixed convention (engine.ml header)
   is: at most [max_rounds] rounds execute, and [rounds_used] counts them. *)
let test_max_rounds_is_a_round_budget () =
  let module EM = Engine.Make (Mute) in
  let budget = 7 in
  let cfg = Config.make ~n:2 ~t_max:0 ~max_rounds:budget () in
  let res = EM.run_exn cfg ~inputs:(fun _ -> ()) () in
  check_int "exactly max_rounds rounds executed" budget
    res.EM.trace.Trace.total_rounds;
  check_int "rounds_used equals the trace's total_rounds" budget
    res.EM.rounds_used;
  (* Every recorded round index stays inside 0 .. max_rounds - 1. *)
  List.iter
    (fun (r : Trace.round_record) ->
      check_bool "round index within budget" true
        (r.Trace.round >= 0 && r.Trace.round < budget))
    res.EM.trace.Trace.rounds

let test_unicast_under_local_broadcast_rejected () =
  let module Uni = struct
    type input = unit
    type msg = unit
    type output = unit
    type state = unit

    let name = "uni"
    let equal_msg () () = true
    let init _ () ~outbox = Outbox.unicast outbox 0 ()
    let step _ () ~round:_ ~inbox:_ ~outbox:_ = ()
    let output () = Some ()
    let phase () = "uni"
    let inert () = false
  end in
  let module EU = Engine.Make (Uni) in
  let cfg = Config.make ~comm:Types.Local_broadcast ~n:3 ~t_max:0 () in
  try
    ignore (EU.run_exn cfg ~inputs:(fun _ -> ()) ());
    Alcotest.fail "honest unicast must be rejected under local broadcast"
  with Invalid_argument _ -> ()

(* --- topology-aware delivery --- *)

let ring4 = [| [ 1; 3 ]; [ 0; 2 ]; [ 1; 3 ]; [ 0; 2 ] |]

let test_topology_broadcast_reaches_neighbours () =
  let cfg = Config.make ~topology:ring4 ~n:4 ~t_max:0 () in
  check (Alcotest.list Alcotest.int) "reach of 0" [ 0; 1; 3 ] (Config.reach cfg 0);
  let res = E.run_exn cfg ~inputs:(fun id -> 100 + id) () in
  (match values res with
  | seen0 :: seen1 :: _ ->
      check_bool "0 hears neighbour 1" true (List.mem (1, 101) seen0);
      check_bool "0 does not hear non-neighbour 2" false (List.mem (2, 102) seen0);
      check_bool "0 hears itself" true (List.mem (0, 100) seen0);
      check_bool "1 hears 2" true (List.mem (2, 102) seen1)
  | _ -> Alcotest.fail "outputs");
  (* 4 nodes x 3 recipients each. *)
  check_int "message count" 12 res.metrics.Metrics.honest_messages

let test_topology_validation () =
  Alcotest.check_raises "symmetry"
    (Invalid_argument "Config.make: topology must be symmetric") (fun () ->
      ignore (Config.make ~topology:[| [ 1 ]; [] |] ~n:2 ~t_max:0 ()));
  Alcotest.check_raises "self loop"
    (Invalid_argument "Config.make: topology self-loop") (fun () ->
      ignore (Config.make ~topology:[| [ 0 ] |] ~n:1 ~t_max:0 ()));
  Alcotest.check_raises "length"
    (Invalid_argument "Config.make: topology must have length n") (fun () ->
      ignore (Config.make ~topology:[| [] |] ~n:2 ~t_max:0 ()))

let test_topology_local_broadcast_neighbourhood () =
  (* Under local broadcast with a topology, a Byzantine node must cover
     exactly its neighbourhood: all-nodes coverage is now invalid too. *)
  let cfg =
    Config.with_byzantine ~comm:Types.Local_broadcast ~topology:ring4 ~n:4
      ~t_max:1 [ 2 ] ()
  in
  let to_all =
    Adversary.named "to-all" (fun view ->
        if view.Adversary.round <> 0 then []
        else List.init 4 (fun dst -> { Adversary.src = 2; dst; msg = 9 }))
  in
  (match E.run cfg ~inputs:(fun id -> id) ~adversary:to_all () with
  | Error (`Invalid_adversary _) -> ()
  | Ok _ -> Alcotest.fail "beyond-neighbourhood broadcast must be rejected");
  let to_neighbourhood =
    Adversary.broadcast_each_round ~name:"ok" ~when_round:(fun r -> r = 0)
      (fun ~src:_ _ -> Some 9)
  in
  let res = E.run_exn cfg ~inputs:(fun id -> id) ~adversary:to_neighbourhood () in
  check_int "neighbourhood size messages" 3 res.metrics.Metrics.byzantine_messages

let test_config_validation () =
  Alcotest.check_raises "n positive" (Invalid_argument "Config.make: n must be positive")
    (fun () -> ignore (Config.make ~n:0 ~t_max:0 ()));
  Alcotest.check_raises "faults arity"
    (Invalid_argument "Config.make: faults array must have length n") (fun () ->
      ignore (Config.make ~n:3 ~t_max:0 ~faults:[| Fault.Honest |] ()));
  let cfg = Config.with_byzantine ~n:5 ~t_max:1 [ 4 ] () in
  check_bool "within tolerance" true (Config.within_tolerance cfg);
  let cfg2 = Config.with_byzantine ~n:5 ~t_max:1 [ 3; 4 ] () in
  check_bool "over tolerance" false (Config.within_tolerance cfg2);
  check (Alcotest.list Alcotest.int) "honest ids" [ 0; 1; 2 ] (Config.honest_ids cfg2)

let test_delay_validation () =
  Alcotest.check_raises "fixed >= 1" (Invalid_argument "Delay.Fixed: delay must be >= 1")
    (fun () -> Delay.validate (Delay.Fixed 0));
  Alcotest.check_raises "uniform bounds"
    (Invalid_argument "Delay.Uniform: need 1 <= lo <= hi") (fun () ->
      Delay.validate (Delay.Uniform { lo = 2; hi = 1 }));
  Alcotest.check_raises "async fairness >= 1"
    (Invalid_argument "Delay.Asynchronous: fairness must be >= 1") (fun () ->
      Delay.validate (Delay.Asynchronous { fairness = 0; schedule = None }));
  Alcotest.check_raises "gst >= 0"
    (Invalid_argument "Delay.Eventually_synchronous: gst must be >= 0")
    (fun () ->
      Delay.validate
        (Delay.Eventually_synchronous { gst = -1; bound = 2; schedule = None }));
  Alcotest.check_raises "gst bound >= 1"
    (Invalid_argument "Delay.Eventually_synchronous: bound must be >= 1")
    (fun () ->
      Delay.validate
        (Delay.Eventually_synchronous { gst = 3; bound = 0; schedule = None }));
  check (Alcotest.option Alcotest.int) "bound sync" (Some 1) (Delay.bound Delay.Synchronous);
  check (Alcotest.option Alcotest.int) "bound uniform" (Some 4)
    (Delay.bound (Delay.Uniform { lo = 2; hi = 4 }));
  (* The synchrony axis: asynchrony exposes no protocol-visible bound at
     all; under GST the bound is the eventual one, while the engine-facing
     [max_delay] shrinks toward it as the send round approaches gst. *)
  let async = Delay.Asynchronous { fairness = 5; schedule = None } in
  check (Alcotest.option Alcotest.int) "bound async" None (Delay.bound async);
  check (Alcotest.option Alcotest.int) "max_delay async = fairness" (Some 5)
    (Delay.max_delay async ~round:7);
  let es = Delay.Eventually_synchronous { gst = 4; bound = 2; schedule = None } in
  check (Alcotest.option Alcotest.int) "bound gst = eventual bound" (Some 2)
    (Delay.bound es);
  check (Alcotest.option Alcotest.int) "max_delay pre-GST" (Some 6)
    (Delay.max_delay es ~round:0);
  check (Alcotest.option Alcotest.int) "max_delay at GST-1" (Some 3)
    (Delay.max_delay es ~round:3);
  check (Alcotest.option Alcotest.int) "max_delay post-GST" (Some 2)
    (Delay.max_delay es ~round:9)

let test_in_flight_view () =
  (* The rushing adversary can inspect the scheduler's pending deliveries.
     Under Fixed 2 delay the round-0 broadcasts are still in flight
     (arrival round 2) when the adversary acts in round 1, and have been
     drained by the time it acts in round 2.  Flood only sends at init, so
     the expected pending set is exactly the two honest broadcasts. *)
  let seen = ref [] in
  let adversary =
    Adversary.named "observer" (fun view ->
        seen := (view.Adversary.round, view.Adversary.in_flight ()) :: !seen;
        [])
  in
  let cfg =
    Config.with_byzantine ~delay:(Delay.Fixed 2) ~max_rounds:8 ~n:3 ~t_max:1
      [ 2 ] ()
  in
  ignore (E.run_exn cfg ~inputs:(fun id -> id) ~adversary ());
  let at r = List.assoc r !seen in
  let triples = Alcotest.(list (triple int int int)) in
  (* Round 0: the adversary acts before any send has been routed. *)
  check triples "nothing in flight at round 0" [] (at 0);
  check triples "round-0 broadcasts pending at round 1"
    [ (2, 0, 0); (2, 0, 1); (2, 0, 2); (2, 1, 0); (2, 1, 1); (2, 1, 2) ]
    (at 1);
  check triples "drained once delivered" [] (at 2)

let () =
  Alcotest.run "sim"
    [
      ( "delivery",
        [
          Alcotest.test_case "full delivery" `Quick test_full_delivery;
          Alcotest.test_case "crash mid-broadcast (Lemma 4)" `Quick
            test_crash_mid_broadcast;
          Alcotest.test_case "crashed node silent" `Quick
            test_crashed_node_silent_after;
          Alcotest.test_case "uniform delay bounds" `Quick test_uniform_delay_bounds;
        ] );
      ( "adversary",
        [
          Alcotest.test_case "p2p equivocation allowed" `Quick
            test_byzantine_equivocation_p2p_allowed;
          Alcotest.test_case "local broadcast blocks equivocation (Prop 6)"
            `Quick test_local_broadcast_blocks_equivocation;
          Alcotest.test_case "local broadcast identical ok" `Quick
            test_local_broadcast_identical_ok;
          Alcotest.test_case "local broadcast: two distinct broadcasts ok"
            `Quick test_local_broadcast_two_distinct_broadcasts_ok;
          Alcotest.test_case "impersonating honest rejected" `Quick
            test_adversary_from_honest_rejected;
          Alcotest.test_case "in-flight view" `Quick test_in_flight_view;
        ] );
      ( "engine",
        [
          Alcotest.test_case "deterministic given seed" `Quick test_determinism;
          Alcotest.test_case "stall reported" `Quick test_stall_reported;
          Alcotest.test_case "max_rounds is a round budget" `Quick
            test_max_rounds_is_a_round_budget;
          Alcotest.test_case "unicast rejected under local broadcast" `Quick
            test_unicast_under_local_broadcast_rejected;
          Alcotest.test_case "config validation" `Quick test_config_validation;
          Alcotest.test_case "topology broadcast" `Quick
            test_topology_broadcast_reaches_neighbours;
          Alcotest.test_case "topology validation" `Quick test_topology_validation;
          Alcotest.test_case "topology local-broadcast neighbourhood" `Quick
            test_topology_local_broadcast_neighbourhood;
          Alcotest.test_case "delay validation" `Quick test_delay_validation;
        ] );
    ]
