(* Tests for the prelude: PRNG determinism and distributional sanity,
   statistics, and table rendering. *)

module Rng = Vv_prelude.Rng
module Stats = Vv_prelude.Stats
module Table = Vv_prelude.Table

let check = Alcotest.check
let check_int = check Alcotest.int
let check_float = check (Alcotest.float 1e-9)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check_int "same stream" (Rng.bits a) (Rng.bits b)
  done

let test_rng_split_independent () =
  let a = Rng.create 42 in
  let b = Rng.split a in
  let xs = List.init 50 (fun _ -> Rng.bits a) in
  let ys = List.init 50 (fun _ -> Rng.bits b) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_rng_int_range () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int r 13 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 13)
  done;
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_rng_float_range () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.float r in
    Alcotest.(check bool) "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_rng_uniformity () =
  (* Chi-square-ish sanity: each of 10 buckets within 3x of expectation. *)
  let r = Rng.create 11 in
  let counts = Array.make 10 0 in
  let trials = 10_000 in
  for _ = 1 to trials do
    let i = Rng.int r 10 in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "bucket plausible" true (c > 700 && c < 1300))
    counts

let test_categorical () =
  let r = Rng.create 3 in
  let p = [| 0.7; 0.2; 0.1 |] in
  let counts = Array.make 3 0 in
  let trials = 20_000 in
  for _ = 1 to trials do
    let i = Rng.categorical r p in
    counts.(i) <- counts.(i) + 1
  done;
  let freq i = float_of_int counts.(i) /. float_of_int trials in
  Alcotest.(check bool) "p0" true (abs_float (freq 0 -. 0.7) < 0.02);
  Alcotest.(check bool) "p1" true (abs_float (freq 1 -. 0.2) < 0.02);
  Alcotest.(check bool) "p2" true (abs_float (freq 2 -. 0.1) < 0.02)

let test_categorical_zero_mass_tail () =
  (* Regression: the fallback for "u rounded past the accumulated mass"
     used to return the raw last index even when that cell had p = 0.
     With a subnormal total mass the rounding is forced: for any draw
     u0 > 0.5, [u0 *. 2^-1074] rounds up to [2^-1074] itself, so the scan
     exhausts the accumulated mass on roughly half of all draws and the
     pre-fix code returned index 1 — an outcome of probability zero. *)
  let p = [| ldexp 1.0 (-1074); 0.0 |] in
  let r = Rng.create 11 in
  for _ = 1 to 200 do
    let i = Rng.categorical r p in
    Alcotest.(check bool) "sampled index has positive mass" true (p.(i) > 0.0)
  done;
  (* Zero cells before the positive tail were never affected; pin that. *)
  let r = Rng.create 12 in
  let p = [| 0.0; 0.3; 0.7 |] in
  for _ = 1 to 200 do
    Alcotest.(check bool) "leading zero cell never drawn" true
      (Rng.categorical r p > 0)
  done

let test_shuffle_permutation () =
  let r = Rng.create 5 in
  let a = Array.init 20 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 20 Fun.id) sorted

let test_sample_without_replacement () =
  let r = Rng.create 5 in
  let s = Rng.sample_without_replacement r ~k:5 ~n:10 in
  check_int "size" 5 (List.length s);
  check_int "distinct" 5 (List.length (List.sort_uniq compare s));
  List.iter (fun x -> Alcotest.(check bool) "range" true (x >= 0 && x < 10)) s

let test_stats_basics () =
  check_float "mean" 2.5 (Stats.mean [ 1.0; 2.0; 3.0; 4.0 ]);
  check_float "median even" 2.5 (Stats.median [ 1.0; 2.0; 3.0; 4.0 ]);
  check_float "median odd" 2.0 (Stats.median [ 3.0; 1.0; 2.0 ]);
  check_float "variance" 3.7 (Stats.variance [ 1.0; 2.0; 3.0; 4.0; 6.0 ]);
  check_float "p0" 1.0 (Stats.percentile [ 1.0; 2.0; 3.0 ] 0.0);
  check_float "p100" 3.0 (Stats.percentile [ 1.0; 2.0; 3.0 ] 100.0);
  check_float "p50" 2.0 (Stats.percentile [ 1.0; 2.0; 3.0 ] 50.0)

let test_stats_summary () =
  let s = Stats.summarize [ 2.0; 4.0; 6.0; 8.0 ] in
  check_int "n" 4 s.Stats.n;
  check_float "mean" 5.0 s.Stats.mean;
  check_float "min" 2.0 s.Stats.min;
  check_float "max" 8.0 s.Stats.max

let test_histogram () =
  let h = Stats.histogram ~bins:4 ~lo:0.0 ~hi:4.0 [ 0.5; 1.5; 1.6; 3.9; 4.0; -1.0; 5.0 ] in
  Alcotest.(check (array int)) "bins" [| 1; 2; 0; 2 |] h.Stats.counts;
  (* Regression: outliers used to be dropped without signal — they must be
     reported in the under/over cells and counted in the total. *)
  check_int "under" 1 h.Stats.under;
  check_int "over" 1 h.Stats.over;
  check_int "no sample lost" 7 (Stats.histogram_total h);
  (* The closed upper edge lands in the last bin by construction, even when
     the bin width is not exactly representable. *)
  let edge = Stats.histogram ~bins:3 ~lo:0.0 ~hi:1.0 [ 1.0; 1.0 ] in
  Alcotest.(check (array int)) "v = hi in last bin" [| 0; 0; 2 |] edge.Stats.counts;
  check_int "edge is not an outlier" 0 edge.Stats.over

let test_chi_square () =
  (* A perfectly matching sample has statistic 0. *)
  check_float "exact fit" 0.0
    (Stats.chi_square ~observed:[| 50; 50 |] ~expected_probs:[| 0.5; 0.5 |]);
  (* A wildly off sample fails the 0.001 test. *)
  Alcotest.(check bool) "bad fit rejected" false
    (Stats.chi_square_fits ~observed:[| 100; 0 |]
       ~expected_probs:[| 0.5; 0.5 |]);
  Alcotest.check_raises "arity" (Invalid_argument "Stats.chi_square: arity mismatch")
    (fun () ->
      ignore (Stats.chi_square ~observed:[| 1 |] ~expected_probs:[| 0.5; 0.5 |]))

let test_rng_chi_square_uniform () =
  (* Rng.int must pass a chi-square goodness-of-fit against uniform. *)
  let r = Rng.create 1234 in
  let k = 8 in
  let observed = Array.make k 0 in
  for _ = 1 to 8000 do
    let i = Rng.int r k in
    observed.(i) <- observed.(i) + 1
  done;
  Alcotest.(check bool) "uniform fit" true
    (Stats.chi_square_fits ~observed
       ~expected_probs:(Array.make k (1.0 /. float_of_int k)))

let test_binomial_confidence () =
  let p, hw = Stats.binomial_confidence ~successes:50 ~trials:100 in
  check_float "p" 0.5 p;
  Alcotest.(check bool) "half width plausible" true (hw > 0.05 && hw < 0.15)

let test_table () =
  let t =
    Table.create ~title:"demo" ~headers:[ "name"; "value" ]
      ~aligns:[ Table.Left; Table.Right ] ()
  in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  check_int "rows" 2 (List.length (Table.rows t));
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: wrong arity")
    (fun () -> Table.add_row t [ "only-one" ]);
  let csv = Table.to_csv t in
  Alcotest.(check bool) "csv header" true
    (String.length csv > 0 && String.sub csv 0 10 = "name,value")

let test_cells () =
  check (Alcotest.string) "fcell int" "3" (Table.fcell 3.0);
  check (Alcotest.string) "fcell frac" "0.2500" (Table.fcell 0.25);
  check (Alcotest.string) "icell" "42" (Table.icell 42);
  check (Alcotest.string) "bcell" "yes" (Table.bcell true)

(* Property: percentile is monotone in p. *)
let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile monotone"
    QCheck.(pair (list_of_size Gen.(int_range 1 20) (float_range (-100.) 100.))
              (pair (float_range 0. 100.) (float_range 0. 100.)))
    (fun (l, (p1, p2)) ->
      QCheck.assume (l <> []);
      let lo, hi = if p1 <= p2 then (p1, p2) else (p2, p1) in
      Stats.percentile l lo <= Stats.percentile l hi +. 1e-9)

(* Property: shuffle preserves multiset. *)
let prop_shuffle_multiset =
  QCheck.Test.make ~name:"shuffle preserves multiset"
    QCheck.(pair small_int (list small_int))
    (fun (seed, l) ->
      let r = Rng.create seed in
      let a = Array.of_list l in
      Rng.shuffle r a;
      List.sort compare (Array.to_list a) = List.sort compare l)

let qcheck_cases = List.map QCheck_alcotest.to_alcotest
    [ prop_percentile_monotone; prop_shuffle_multiset ]

(* --- json --- *)

module Json = Vv_prelude.Json

let json_ok s =
  match Json.of_string s with
  | Ok v -> v
  | Error msg -> Alcotest.failf "%S should parse: %s" s msg

let json_err s =
  match Json.of_string s with
  | Ok _ -> Alcotest.failf "%S should be rejected" s
  | Error msg -> msg

let check_string = check Alcotest.string

let json_string s =
  match json_ok s with
  | Json.String v -> v
  | _ -> Alcotest.failf "%S is not a string" s

let test_json_unicode_escapes () =
  check_string "ascii escape" "A" (json_string {|"A"|});
  check_string "two-byte" "\xc3\xa9" (json_string "\"\\u00e9\"");
  (* BMP escape decodes to UTF-8 bytes (U+2603, snowman). *)
  check_string "snowman" "\xe2\x98\x83" (json_string "\"\\u2603\"");
  (* A surrogate pair combines into one astral code point (U+1D11E,
     musical G clef). This is the regression: the parser used to reject
     every \uD800-\uDFFF escape outright. *)
  check_string "surrogate pair" "\xf0\x9d\x84\x9e"
    (json_string "\"\\ud834\\udd1e\"");
  (* Case-insensitive hex. *)
  check_string "upper hex" "\xf0\x9d\x84\x9e"
    (json_string "\"\\uD834\\uDD1E\"");
  (* Raw UTF-8 passes through untouched. *)
  check_string "raw utf-8" "\xe2\x98\x83" (json_string "\"\xe2\x98\x83\"")

let test_json_lone_surrogates () =
  let contains needle haystack =
    let n = String.length needle and h = String.length haystack in
    let rec at i = i + n <= h && (String.sub haystack i n = needle || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool) "lone high" true
    (contains "surrogate" (json_err {|"\ud834"|}));
  Alcotest.(check bool) "lone low" true
    (contains "surrogate" (json_err {|"\udd1e"|}));
  Alcotest.(check bool) "high then non-escape" true
    (contains "surrogate" (json_err {|"\ud834x"|}));
  Alcotest.(check bool) "high then non-low escape" true
    (contains "surrogate" (json_err {|"\ud834A"|}));
  ignore (json_err {|"\u12"|});
  ignore (json_err {|"\u12g4"|});
  (* int_of_string accepts underscores and 0x prefixes; the hex scanner
     must not. *)
  ignore (json_err {|"\u1_34"|})

let test_json_roundtrip () =
  let samples =
    [
      {|"☃"|}; {|"𝄞"|}; {|"  low "|};
      {|{"k":["😀",1,-2.5,true,null]}|};
    ]
  in
  List.iter
    (fun s ->
      let v = json_ok s in
      let v' = json_ok (Json.to_string v) in
      Alcotest.(check bool) "print/parse fixpoint" true (v = v'))
    samples

(* --- io --- *)

module Io = Vv_prelude.Io

let test_write_atomic () =
  let dir = Filename.temp_file "vv_io" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let path = Filename.concat dir "out.csv" in
  (match Io.write_atomic ~path "first\n" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "write failed: %s" e);
  (match Io.write_atomic ~path "second\n" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "overwrite failed: %s" e);
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  check_string "overwrite wins" "second" line;
  (* No temp droppings left next to the target. *)
  check_int "only the target remains" 1 (Array.length (Sys.readdir dir));
  Sys.remove path;
  Sys.rmdir dir

let test_write_atomic_unwritable () =
  match Io.write_atomic ~path:"/nonexistent-dir/sub/out.csv" "x" with
  | Ok () -> Alcotest.fail "write into a missing directory should fail"
  | Error msg -> Alcotest.(check bool) "message nonempty" true (msg <> "")

let test_rng_derive () =
  (* Stable values: Engine slot seeding and Executor.derive_seed both sit
     on this function, so its outputs are load-bearing for goldens. *)
  check_int "matches two-step avalanche" (Rng.bits (Rng.create (Rng.bits (Rng.create 7) lxor 3)))
    (Rng.derive 7 3);
  Alcotest.(check bool) "indices separate" true
    (Rng.derive 7 0 <> Rng.derive 7 1)

let () =
  Alcotest.run "prelude"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "uniformity" `Quick test_rng_uniformity;
          Alcotest.test_case "categorical frequencies" `Quick test_categorical;
          Alcotest.test_case "categorical zero-mass tail (regression)" `Quick
            test_categorical_zero_mass_tail;
          Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_permutation;
          Alcotest.test_case "sampling without replacement" `Quick
            test_sample_without_replacement;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basics" `Quick test_stats_basics;
          Alcotest.test_case "summary" `Quick test_stats_summary;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "binomial confidence" `Quick test_binomial_confidence;
          Alcotest.test_case "chi-square" `Quick test_chi_square;
          Alcotest.test_case "rng uniformity (chi-square)" `Quick
            test_rng_chi_square_uniform;
        ] );
      ( "table",
        [
          Alcotest.test_case "render and csv" `Quick test_table;
          Alcotest.test_case "cell formatting" `Quick test_cells;
        ] );
      ( "json",
        [
          Alcotest.test_case "unicode escapes decode to UTF-8" `Quick
            test_json_unicode_escapes;
          Alcotest.test_case "lone surrogates and bad hex rejected" `Quick
            test_json_lone_surrogates;
          Alcotest.test_case "print/parse round-trip" `Quick test_json_roundtrip;
        ] );
      ( "io",
        [
          Alcotest.test_case "write_atomic replaces without droppings" `Quick
            test_write_atomic;
          Alcotest.test_case "write_atomic surfaces unwritable paths" `Quick
            test_write_atomic_unwritable;
          Alcotest.test_case "rng derive is the pinned avalanche" `Quick
            test_rng_derive;
        ] );
      ("properties", qcheck_cases);
    ]
