(* Tests of the ballot layer: tallies, the Sort decomposition, tie-breaking
   conventions, and the paper's validity predicates. *)

open Vv_ballot

let o = Option_id.of_int
let opt_testable = Alcotest.testable Option_id.pp Option_id.equal
let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_opt = check (Alcotest.option opt_testable)

(* The Section III-A example: 7 nodes (one Byzantine), candidates Alice(A),
   Bob(B), Carol(C); honest votes 3xA, 2xB, 1xC; the faulty node votes B. *)
let example_honest = [ o 0; o 0; o 0; o 1; o 1; o 2 ]
let example_view = Tally.of_list (o 1 :: example_honest)

let test_example_counts () =
  check_int "B_1" 3 (Tally.count example_view (o 1));
  check_int "A_1" 3 (Tally.count example_view (o 0));
  check_int "C_1" 1 (Tally.count example_view (o 2));
  check_int "total" 7 (Tally.total example_view);
  check_int "distinct" 3 (Tally.distinct example_view)

let test_tally_basics () =
  let t = Tally.empty in
  check_int "empty count" 0 (Tally.count t (o 0));
  check_bool "empty" true (Tally.is_empty t);
  let t = Tally.add_many t (o 3) 4 in
  check_int "bulk add" 4 (Tally.count t (o 3));
  let t2 = Tally.merge t (Tally.of_list [ o 3; o 1 ]) in
  check_int "merged" 5 (Tally.count t2 (o 3));
  check_int "merged other" 1 (Tally.count t2 (o 1));
  Alcotest.check_raises "negative" (Invalid_argument "Tally.add_many: negative count")
    (fun () -> ignore (Tally.add_many t (o 0) (-1)))

let test_sort_decomposition () =
  (* Inputs {0,0,0,1,1,2,3}: A=0 (3 votes), B=1 (2 votes), C covers {2,3}. *)
  let t = Tally.of_list [ o 0; o 0; o 0; o 1; o 1; o 2; o 3 ] in
  match Tally.top ~tie:Tie_break.default t with
  | None -> Alcotest.fail "expected top"
  | Some { a; a_count; b; b_count; c_count } ->
      check_opt "A" (Some (o 0)) (Some a);
      check_int "A count" 3 a_count;
      check_opt "B" (Some (o 1)) b;
      check_int "B count" 2 b_count;
      check_int "C total" 2 c_count

let test_tie_break_conventions () =
  let t = Tally.of_list [ o 0; o 0; o 1; o 1 ] in
  check_opt "prefer larger" (Some (o 1))
    (Tally.plurality ~tie:Tie_break.Prefer_larger t);
  check_opt "prefer smaller" (Some (o 0))
    (Tally.plurality ~tie:Tie_break.Prefer_smaller t);
  let reversed = Tie_break.Custom (fun x y -> Option_id.compare y x) in
  check_opt "custom reversed" (Some (o 0)) (Tally.plurality ~tie:reversed t)

let test_gap () =
  let t = Tally.of_list [ o 0; o 0; o 0; o 1 ] in
  check (Alcotest.option Alcotest.int) "gap" (Some 2)
    (Tally.gap ~tie:Tie_break.default t);
  check (Alcotest.option Alcotest.int) "single option gap"
    (Some 5)
    (Tally.gap ~tie:Tie_break.default (Tally.of_counts [ (o 0, 5) ]));
  check (Alcotest.option Alcotest.int) "empty" None
    (Tally.gap ~tie:Tie_break.default Tally.empty)

let test_voting_preference () =
  check_bool "A > B" true
    (Validity.voting_preference ~honest_inputs:example_honest (o 0) (o 1));
  check_bool "B !> A" false
    (Validity.voting_preference ~honest_inputs:example_honest (o 1) (o 0));
  (* Equal counts: strict preference must fail both ways. *)
  let tied = [ o 0; o 1 ] in
  check_bool "tie no pref" false
    (Validity.voting_preference ~honest_inputs:tied (o 0) (o 1));
  check_bool "tie no pref rev" false
    (Validity.voting_preference ~honest_inputs:tied (o 1) (o 0))

let test_integrity () =
  (* Lemma 2's scenario: B_i >= A_i forbids outputting A. *)
  let view = Tally.of_counts [ (o 0, 3); (o 1, 5) ] in
  check_bool "cannot output A" false
    (Validity.integrity_allows ~view ~output:(o 0));
  check_bool "can output B" true (Validity.integrity_allows ~view ~output:(o 1));
  let tie_view = Tally.of_counts [ (o 0, 4); (o 1, 4) ] in
  check_bool "tie forbids both" false
    (Validity.integrity_allows ~view:tie_view ~output:(o 0) );
  check_bool "tie forbids both'" false
    (Validity.integrity_allows ~view:tie_view ~output:(o 1))

let test_voting_validity () =
  let honest = [ o 0; o 0; o 0; o 1; o 1; o 2; o 3 ] in
  (* Output 0 everywhere: valid. *)
  check_bool "valid" true
    (Validity.voting_validity ~tie:Tie_break.default ~honest_inputs:honest
       ~outputs:[ Some (o 0); Some (o 0) ]);
  (* Output 1: violates. *)
  check_bool "invalid" false
    (Validity.voting_validity ~tie:Tie_break.default ~honest_inputs:honest
       ~outputs:[ Some (o 1) ]);
  (* Undecided nodes never violate. *)
  check_bool "stall ok" true
    (Validity.voting_validity ~tie:Tie_break.default ~honest_inputs:honest
       ~outputs:[ None; None ]);
  (* Tie without strict plurality: strict checker is vacuous, tb checker
     pins the tie-break winner. *)
  let tied = [ o 0; o 0; o 1; o 1 ] in
  check_bool "tie vacuous" true
    (Validity.voting_validity ~tie:Tie_break.default ~honest_inputs:tied
       ~outputs:[ Some (o 0) ]);
  check_bool "tie tb pinned" false
    (Validity.voting_validity_tb ~tie:Tie_break.default ~honest_inputs:tied
       ~outputs:[ Some (o 0) ]);
  check_bool "tie tb winner" true
    (Validity.voting_validity_tb ~tie:Tie_break.default ~honest_inputs:tied
       ~outputs:[ Some (o 1) ])

let test_strong_validity_and_agreement () =
  let honest = [ o 0; o 1 ] in
  check_bool "strong ok" true
    (Validity.strong_validity ~honest_inputs:honest ~outputs:[ Some (o 1) ]);
  check_bool "strong bad" false
    (Validity.strong_validity ~honest_inputs:honest ~outputs:[ Some (o 5) ]);
  check_bool "agreement ok" true
    (Validity.agreement ~outputs:[ Some (o 1); None; Some (o 1) ]);
  check_bool "agreement bad" false
    (Validity.agreement ~outputs:[ Some (o 1); Some (o 2) ]);
  check_bool "termination needs all" false
    (Validity.termination ~outputs:[ Some (o 1); None ])

let test_differential_validity () =
  let honest = [ o 0; o 0; o 0; o 1; o 1 ] in
  (* Output 1 trails the plurality by 1: 1-differential but not 0. *)
  check_bool "0-diff fails" false
    (Validity.differential_validity ~delta:0 ~honest_inputs:honest
       ~outputs:[ Some (o 1) ]);
  check_bool "1-diff holds" true
    (Validity.differential_validity ~delta:1 ~honest_inputs:honest
       ~outputs:[ Some (o 1) ]);
  check_bool "plurality is 0-diff" true
    (Validity.differential_validity ~delta:0 ~honest_inputs:honest
       ~outputs:[ Some (o 0) ]);
  check_bool "undecided ok" true
    (Validity.differential_validity ~delta:0 ~honest_inputs:honest
       ~outputs:[ None ]);
  Alcotest.check_raises "negative delta"
    (Invalid_argument "differential_validity: negative delta") (fun () ->
      ignore
        (Validity.differential_validity ~delta:(-1) ~honest_inputs:honest
           ~outputs:[]))

(* Paper remark after Def III.3: voting validity implies strong validity. *)
let test_voting_implies_strong () =
  let honest = [ o 0; o 0; o 1 ] in
  match Validity.honest_plurality ~tie:Tie_break.default ~honest_inputs:honest with
  | None -> Alcotest.fail "plurality expected"
  | Some w ->
      check_bool "winner is an honest input" true
        (List.exists (Option_id.equal w) honest)

(* --- weighted voting --- *)

let wv c w = Weighted.vote ~choice:(o c) ~weight:w

let test_weighted_tally () =
  let votes = [ wv 0 5; wv 1 3; wv 0 2; wv 2 1 ] in
  let t = Weighted.tally votes in
  check_int "A weight" 7 (Tally.count t (o 0));
  check_int "B weight" 3 (Tally.count t (o 1));
  check_int "total" 11 (Weighted.total_weight votes);
  check_opt "weighted plurality" (Some (o 0))
    (Weighted.plurality ~tie:Tie_break.default votes);
  Alcotest.check_raises "positive weight"
    (Invalid_argument "Weighted.vote: weight must be positive") (fun () ->
      ignore (Weighted.vote ~choice:(o 0) ~weight:0))

let test_weighted_thresholds () =
  (* Gap 7 - 3 = 4: safe against weight <= 3, SCT-safe against weight 1. *)
  let votes = [ wv 0 7; wv 1 3 ] in
  let tie = Tie_break.default in
  check_bool "exact at W_F=3" true
    (Weighted.exactness_guaranteed ~tie ~byz_weight:3 votes);
  check_bool "not exact at W_F=4" false
    (Weighted.exactness_guaranteed ~tie ~byz_weight:4 votes);
  check_bool "sct at W_F=1" true (Weighted.sct_guaranteed ~tie ~byz_weight:1 votes);
  check_bool "not sct at W_F=2" false
    (Weighted.sct_guaranteed ~tie ~byz_weight:2 votes);
  check_opt "adversary target below threshold" (Some (o 1))
    (Weighted.adversary_target ~tie ~byz_weight:4 votes);
  check_opt "no target above threshold" None
    (Weighted.adversary_target ~tie ~byz_weight:3 votes)

let test_weighted_expand_consistent () =
  let votes = [ wv 0 3; wv 1 2; wv 2 1 ] in
  let expanded = Weighted.expand votes in
  check_int "size = total weight" 6 (List.length expanded);
  check_opt "same plurality"
    (Weighted.plurality ~tie:Tie_break.default votes)
    (Tally.plurality ~tie:Tie_break.default (Tally.of_list expanded))

let test_weighted_validity () =
  let honest = [ wv 0 5; wv 1 4 ] in
  check_bool "valid" true
    (Weighted.voting_validity ~tie:Tie_break.default ~honest_votes:honest
       ~outputs:[ Some (o 0) ]);
  check_bool "invalid" false
    (Weighted.voting_validity ~tie:Tie_break.default ~honest_votes:honest
       ~outputs:[ Some (o 1) ])

(* --- properties --- *)

let gen_inputs =
  QCheck.make
    ~print:(fun l -> Fmt.str "%a" Fmt.(Dump.list int) l)
    QCheck.Gen.(list_size (int_range 1 30) (int_range 0 5))

let prop_plurality_maximal =
  QCheck.Test.make ~name:"plurality has maximal count" gen_inputs (fun l ->
      let inputs = List.map o l in
      let t = Tally.of_list inputs in
      match Tally.plurality ~tie:Tie_break.default t with
      | None -> false
      | Some w ->
          let cw = Tally.count t w in
          List.for_all (fun (_, c) -> c <= cw) (Tally.support t))

let prop_top_consistent =
  QCheck.Test.make ~name:"top decomposition partitions the total" gen_inputs
    (fun l ->
      let inputs = List.map o l in
      let t = Tally.of_list inputs in
      match Tally.top ~tie:Tie_break.default t with
      | None -> false
      | Some { a_count; b_count; c_count; _ } ->
          a_count + b_count + c_count = Tally.total t)

let prop_voting_implies_strong =
  QCheck.Test.make ~name:"voting validity implies strong validity" gen_inputs
    (fun l ->
      let inputs = List.map o l in
      match Validity.honest_plurality ~tie:Tie_break.default ~honest_inputs:inputs with
      | None -> true
      | Some w ->
          Validity.strong_validity ~honest_inputs:inputs ~outputs:[ Some w ])

let prop_tie_breaks_agree_on_strict =
  QCheck.Test.make ~name:"tie-break irrelevant under strict plurality"
    gen_inputs (fun l ->
      let inputs = List.map o l in
      if not (Validity.has_strict_plurality ~honest_inputs:inputs) then true
      else
        Validity.honest_plurality ~tie:Tie_break.Prefer_larger
          ~honest_inputs:inputs
        = Validity.honest_plurality ~tie:Tie_break.Prefer_smaller
            ~honest_inputs:inputs)

let gen_weighted =
  QCheck.make
    ~print:(fun l -> Fmt.str "%a" Fmt.(Dump.list (Dump.pair int int)) l)
    QCheck.Gen.(
      list_size (int_range 1 12) (pair (int_range 0 3) (int_range 1 9)))

let prop_weighted_expand_equiv =
  QCheck.Test.make ~name:"weighted plurality = expanded plurality" gen_weighted
    (fun l ->
      let votes = List.map (fun (c, w) -> wv c w) l in
      Weighted.plurality ~tie:Tie_break.default votes
      = Tally.plurality ~tie:Tie_break.default
          (Tally.of_list (Weighted.expand votes)))

let prop_weighted_exactness_monotone =
  QCheck.Test.make ~name:"weighted exactness anti-monotone in W_F" gen_weighted
    (fun l ->
      let votes = List.map (fun (c, w) -> wv c w) l in
      let tie = Tie_break.default in
      let rec go w =
        w > 10
        || ((not (Weighted.exactness_guaranteed ~tie ~byz_weight:(w + 1) votes))
            || Weighted.exactness_guaranteed ~tie ~byz_weight:w votes)
           && go (w + 1)
      in
      go 0)

let prop_plurality_is_zero_differential =
  QCheck.Test.make ~name:"plurality winner is 0-differential" gen_inputs
    (fun l ->
      let inputs = List.map o l in
      match Validity.honest_plurality ~tie:Tie_break.default ~honest_inputs:inputs with
      | None -> true
      | Some w ->
          Validity.differential_validity ~delta:0 ~honest_inputs:inputs
            ~outputs:[ Some w ])

let prop_differential_monotone_in_delta =
  QCheck.Test.make ~name:"differential validity monotone in delta" gen_inputs
    (fun l ->
      let inputs = List.map o l in
      match inputs with
      | [] -> true
      | v :: _ ->
          let holds d =
            Validity.differential_validity ~delta:d ~honest_inputs:inputs
              ~outputs:[ Some v ]
          in
          let rec check_chain d = d > 5 || ((not (holds d)) || holds (d + 1)) && check_chain (d + 1) in
          check_chain 0)

let prop_integrity_of_winner =
  QCheck.Test.make ~name:"strict winner always passes integrity" gen_inputs
    (fun l ->
      let inputs = List.map o l in
      let view = Tally.of_list inputs in
      if not (Validity.has_strict_plurality ~honest_inputs:inputs) then true
      else
        match Tally.plurality ~tie:Tie_break.default view with
        | None -> false
        | Some w -> Validity.integrity_allows ~view ~output:w)

(* Satellite: [Tie_break.compare_ranked] must be a total order consistent
   with [Tie_break.wins], under both tie-break conventions.  These pin the
   monomorphic comparator against regressions back to polymorphic
   [compare] (whose meaning would drift with the representation). *)
let gen_ranked =
  QCheck.make
    ~print:(fun (x, c) -> Printf.sprintf "(opt %d, count %d)" x c)
    QCheck.Gen.(pair (int_range 0 5) (int_range 0 4))

let ranked (x, c) = (o x, c)
let sign v = Stdlib.compare v 0
let conventions = [ Tie_break.Prefer_larger; Tie_break.Prefer_smaller ]

let prop_compare_ranked_antisym =
  QCheck.Test.make ~name:"compare_ranked antisymmetric (both conventions)"
    QCheck.(pair gen_ranked gen_ranked)
    (fun (a, b) ->
      let a = ranked a and b = ranked b in
      List.for_all
        (fun tb ->
          sign (Tie_break.compare_ranked tb a b)
          = -sign (Tie_break.compare_ranked tb b a))
        conventions)

let prop_compare_ranked_transitive =
  QCheck.Test.make ~name:"compare_ranked transitive (both conventions)"
    QCheck.(triple gen_ranked gen_ranked gen_ranked)
    (fun (a, b, c) ->
      let a = ranked a and b = ranked b and c = ranked c in
      List.for_all
        (fun tb ->
          let cmp = Tie_break.compare_ranked tb in
          if cmp a b <= 0 && cmp b c <= 0 then cmp a c <= 0 else true)
        conventions)

let prop_compare_ranked_consistent_with_wins =
  QCheck.Test.make
    ~name:"compare_ranked ties resolve exactly by Tie_break.wins"
    QCheck.(triple (int_range 0 5) (int_range 0 5) (int_range 0 4))
    (fun (x, y, c) ->
      QCheck.assume (x <> y);
      List.for_all
        (fun tb ->
          let lt = Tie_break.compare_ranked tb (o x, c) (o y, c) < 0 in
          lt = Tie_break.wins tb (o x) (o y))
        conventions)

(* --- the first-class property layer --- *)

(* A random classification scene: tie convention, tolerance, a non-empty
   honest multiset and an arbitrary (possibly partial, possibly absurd)
   output vector. *)
let gen_property_case =
  QCheck.make
    ~print:(fun (tie, t_tol, honest, outs) ->
      Fmt.str "tie=%s t=%d honest=%a outputs=%a"
        (match tie with
        | Tie_break.Prefer_larger -> "larger"
        | Tie_break.Prefer_smaller -> "smaller"
        | Tie_break.Custom _ -> "custom")
        t_tol
        Fmt.(Dump.list int)
        honest
        Fmt.(Dump.list (Dump.option int))
        outs)
    QCheck.Gen.(
      bool >>= fun larger ->
      int_range 0 4 >>= fun t_tol ->
      list_size (int_range 1 20) (int_range 0 5) >>= fun honest ->
      list_size (int_range 0 12) (opt (int_range 0 7)) >>= fun outs ->
      return
        ( (if larger then Tie_break.Prefer_larger else Tie_break.Prefer_smaller),
          t_tol,
          honest,
          outs ))

let scene_of (tie, t_tol, honest, outs) =
  (tie, t_tol, List.map o honest, List.map (Option.map o) outs)

(* The byte-equivalence contract of the refactor: the two voting
   instances are the legacy predicates, on every input. *)
let prop_property_voting_matches_legacy =
  QCheck.Test.make ~name:"Property voting instances = legacy Validity"
    gen_property_case (fun case ->
      let tie, t_tol, honest_inputs, outputs = scene_of case in
      Property.admissible Property.voting ~tie ~t_tol ~honest_inputs ~outputs
      = Validity.voting_validity_tb ~tie ~honest_inputs ~outputs
      && Property.admissible Property.voting_strict ~tie ~t_tol ~honest_inputs
           ~outputs
         = Validity.voting_validity ~tie ~honest_inputs ~outputs)

(* Every declared hierarchy edge is a theorem: admissibility under the
   stronger property forces admissibility under everything it implies,
   on arbitrary output vectors. *)
let prop_hierarchy_sound =
  QCheck.Test.make ~name:"admissibility respects the hierarchy edges"
    gen_property_case (fun case ->
      let tie, t_tol, honest_inputs, outputs = scene_of case in
      List.for_all
        (fun p ->
          (not (Property.admissible p ~tie ~t_tol ~honest_inputs ~outputs))
          || List.for_all
               (fun q ->
                 (not (Property.implies p q))
                 || Property.admissible q ~tie ~t_tol ~honest_inputs ~outputs)
               Property.all)
        Property.all)

(* Non-vacuous soundness: deciding a property's mandated output is
   admissible for the property itself and all the way down its cone. *)
let prop_required_output_admissible =
  QCheck.Test.make ~name:"required_output admissible down the cone"
    gen_property_case (fun case ->
      let tie, t_tol, honest_inputs, _ = scene_of case in
      List.for_all
        (fun p ->
          match p.Property.required_output with
          | None -> true
          | Some f -> (
              match f ~tie ~honest_inputs with
              | None -> true
              | Some v ->
                  let outputs = [ Some v; None; Some v ] in
                  List.for_all
                    (fun q ->
                      (not (Property.implies p q))
                      || Property.admissible q ~tie ~t_tol ~honest_inputs
                           ~outputs)
                    Property.all))
        Property.all)

let test_property_hierarchy () =
  let imp = Property.implies in
  check_bool "implies is reflexive" true
    (List.for_all (fun p -> imp p p) Property.all);
  check_bool "voting -> voting-strict" true
    (imp Property.voting Property.voting_strict);
  check_bool "voting -> strong" true (imp Property.voting Property.strong);
  check_bool "voting -> weak" true (imp Property.voting Property.weak);
  check_bool "voting -> interval" true (imp Property.voting Property.interval);
  check_bool "voting -/-> median" false (imp Property.voting Property.median);
  check_bool "median -> interval" true (imp Property.median Property.interval);
  check_bool "median -> weak" true (imp Property.median Property.weak);
  check_bool "median -/-> strong" false (imp Property.median Property.strong);
  check_bool "strong -/-> voting" false (imp Property.strong Property.voting);
  check_bool "voting-strict entails only itself" true
    (List.for_all
       (fun q ->
         Property.equal q Property.voting_strict
         || not (imp Property.voting_strict q))
       Property.all);
  (* The missing voting -> median edge is semantic, not an omission:
     honest inputs {0,0,3,4,5} have plurality 0, yet at t = 0 the median
     window of the sorted multiset is [3, 3]. *)
  let honest_inputs = List.map o [ 0; 0; 3; 4; 5 ] in
  let outputs = [ Some (o 0) ] in
  let adm p =
    Property.admissible p ~tie:Tie_break.default ~t_tol:0 ~honest_inputs
      ~outputs
  in
  check_bool "plurality decision is voting-admissible" true
    (adm Property.voting);
  check_bool "but not median-admissible" false (adm Property.median)

let test_property_registry () =
  check_int "six properties" 6 (List.length Property.all);
  check
    Alcotest.(list string)
    "names"
    [ "voting"; "voting-strict"; "strong"; "weak"; "interval"; "median" ]
    Property.names;
  List.iter
    (fun p ->
      match Property.of_name (Property.id p) with
      | Some q ->
          check_bool (Property.id p ^ " round-trips") true (Property.equal p q)
      | None -> Alcotest.failf "of_name %s returned None" (Property.id p))
    Property.all;
  check_bool "unknown name" true (Property.of_name "nope" = None)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_plurality_maximal;
      prop_top_consistent;
      prop_voting_implies_strong;
      prop_tie_breaks_agree_on_strict;
      prop_weighted_expand_equiv;
      prop_weighted_exactness_monotone;
      prop_plurality_is_zero_differential;
      prop_differential_monotone_in_delta;
      prop_integrity_of_winner;
      prop_compare_ranked_antisym;
      prop_compare_ranked_transitive;
      prop_compare_ranked_consistent_with_wins;
      prop_property_voting_matches_legacy;
      prop_hierarchy_sound;
      prop_required_output_admissible;
    ]

let () =
  Alcotest.run "ballot"
    [
      ( "tally",
        [
          Alcotest.test_case "section III-A example" `Quick test_example_counts;
          Alcotest.test_case "basics" `Quick test_tally_basics;
          Alcotest.test_case "sort decomposition" `Quick test_sort_decomposition;
          Alcotest.test_case "gap" `Quick test_gap;
        ] );
      ( "tie-break",
        [ Alcotest.test_case "conventions" `Quick test_tie_break_conventions ] );
      ( "weighted",
        [
          Alcotest.test_case "tally and plurality" `Quick test_weighted_tally;
          Alcotest.test_case "exactness thresholds" `Quick
            test_weighted_thresholds;
          Alcotest.test_case "expand consistency" `Quick
            test_weighted_expand_consistent;
          Alcotest.test_case "weighted validity" `Quick test_weighted_validity;
        ] );
      ( "validity",
        [
          Alcotest.test_case "voting preference" `Quick test_voting_preference;
          Alcotest.test_case "integrity (Def III.2)" `Quick test_integrity;
          Alcotest.test_case "voting validity (Def III.3)" `Quick
            test_voting_validity;
          Alcotest.test_case "strong validity + agreement" `Quick
            test_strong_validity_and_agreement;
          Alcotest.test_case "delta-differential validity [23]" `Quick
            test_differential_validity;
          Alcotest.test_case "voting implies strong" `Quick
            test_voting_implies_strong;
        ] );
      ( "property",
        [
          Alcotest.test_case "hierarchy shape" `Quick test_property_hierarchy;
          Alcotest.test_case "registry round-trip" `Quick
            test_property_registry;
        ] );
      ("properties", qcheck_cases);
    ]
