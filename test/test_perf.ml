(* Allocation regression tests for the engine hot path.

   The zero-allocation message API (Outbox emission, indexed Inbox views
   over the per-round delivery arena, int-packed scheduling) promises that
   a steady-state round allocates a bounded, small number of minor-heap
   words regardless of traffic: buffers are warm after the first few
   rounds, deliveries are packed ints, and the per-round cost reduces to
   the trace record plus whatever the protocol itself allocates.

   [Gc.minor_words] is deterministic for a fixed code path, unlike
   wall-clock on a noisy host, so these tests pin the budget exactly: the
   marginal words/round of a long run over a shorter one of the same
   configuration.  A regression that re-introduces per-delivery allocation
   (boxing deliveries, rebuilding inbox lists, per-round views) multiplies
   the marginal cost by the traffic volume and trips the budget at once. *)

open Vv_sim

(* A chatty protocol that never decides and never goes inert: every node
   broadcasts an immediate int each round and scans its inbox.  16
   deliveries per round at n=4 — enough traffic that any per-delivery
   allocation is visible — with zero protocol-side allocation. *)
module Chatty = struct
  type input = int
  type msg = int
  type output = int
  type state = { mutable seen : int }

  let name = "chatty"
  let equal_msg = Int.equal

  let init (_ : Protocol.ctx) v ~outbox =
    Outbox.broadcast outbox v;
    { seen = 0 }

  let step (_ : Protocol.ctx) st ~round:_ ~inbox ~outbox =
    let acc = ref st.seen in
    for i = 0 to Inbox.length inbox - 1 do
      acc := !acc lxor Inbox.msg inbox i lxor Inbox.src inbox i
    done;
    st.seen <- !acc;
    Outbox.broadcast outbox st.seen;
    st

  let output _ = None
  let phase _ = "chat"
  let inert _ = false
end

module E = Engine.Make (Chatty)

let minor_words_of_run ~max_rounds =
  let cfg = Config.make ~n:4 ~t_max:1 ~max_rounds () in
  let w0 = Gc.minor_words () in
  let res = E.run_exn cfg ~inputs:(fun id -> id) () in
  let w1 = Gc.minor_words () in
  assert res.E.stalled;
  int_of_float (w1 -. w0)

(* The steady-state budget: the marginal allocation of one additional
   round of 16 broadcast deliveries.  Currently dominated by the trace's
   round record (~15 words); 64 leaves slack for representation changes
   while still catching any per-delivery or per-view regression (16
   deliveries at even 3 boxed words each would add ~48). *)
let words_per_round_budget = 64

let test_round_allocation () =
  let short = minor_words_of_run ~max_rounds:100 in
  let long = minor_words_of_run ~max_rounds:1100 in
  let per_round = (long - short) / 1000 in
  Alcotest.(check bool)
    (Printf.sprintf
       "steady-state allocation: %d words/round exceeds the %d-word budget"
       per_round words_per_round_budget)
    true
    (per_round <= words_per_round_budget);
  (* And the budget is not vacuously loose: a warm round costs something
     (the trace record), so a zero reading would mean the measurement is
     broken (e.g. the run fast-forwarded instead of executing rounds). *)
  Alcotest.(check bool) "rounds actually execute and allocate" true
    (per_round > 0)

(* Same measurement with the run's fixed costs included: whole-run words
   divided by rounds must stay within a small multiple of the marginal
   budget, so per-run setup (engine arrays, scheduler buckets, trace
   buffer) cannot silently balloon either. *)
let test_run_allocation () =
  let total = minor_words_of_run ~max_rounds:1000 in
  let per_round = total / 1000 in
  Alcotest.(check bool)
    (Printf.sprintf "whole-run allocation: %d words/round (budget %d)"
       per_round (2 * words_per_round_budget))
    true
    (per_round <= 2 * words_per_round_budget)

(* --- GST scheduler hot path --- *)

(* The same marginal measurement under the Eventually_synchronous model.
   Any RNG-drawing delay model pays for its draws (the splitmix state is
   a boxed int64, so each draw allocates a few words — 16 deliveries make
   that the dominant per-round cost), so the GST pin is relative: one
   additional round under ES, post-GST, must cost no more than the same
   round under Uniform over the same delay range plus the synchronous
   budget.  That catches the synchrony axis reintroducing per-delivery
   structure (boxed verdicts, per-round views, option churn in the clamp)
   without re-litigating the RNG's own allocation.  GST sits past the
   short run's horizon so both runs cross it identically warmed. *)
let minor_words_of_delay_run ~delay ~max_rounds =
  let cfg = Config.make ~n:4 ~t_max:1 ~max_rounds ~delay () in
  let w0 = Gc.minor_words () in
  let res = E.run_exn cfg ~inputs:(fun id -> id) () in
  let w1 = Gc.minor_words () in
  assert res.E.stalled;
  int_of_float (w1 -. w0)

let marginal_words_per_round ~delay =
  let short = minor_words_of_delay_run ~delay ~max_rounds:100 in
  let long = minor_words_of_delay_run ~delay ~max_rounds:1100 in
  (long - short) / 1000

let test_gst_round_allocation () =
  let uniform =
    marginal_words_per_round ~delay:(Delay.Uniform { lo = 1; hi = 2 })
  in
  let gst =
    marginal_words_per_round
      ~delay:
        (Delay.Eventually_synchronous { gst = 50; bound = 2; schedule = None })
  in
  Alcotest.(check bool)
    (Printf.sprintf
       "gst scheduler: %d words/round vs uniform %d + budget %d" gst uniform
       words_per_round_budget)
    true
    (gst <= uniform + words_per_round_budget);
  Alcotest.(check bool) "gst rounds actually execute and allocate" true
    (gst > 0)

(* --- chaos transit verdicts --- *)

(* The packed transit verdict ([Network.transit_i]) keeps the per-link
   chaos decision off the heap: an inert link consumes neither randomness
   nor words, and an active one costs at most the RNG draws (a float draw
   may box).  The variant-returning [Network.transit] stays available for
   callers that want the decoded record. *)
let transit_words net ~count =
  let rng = Network.rng net in
  let sink = ref 0 in
  let w0 = Gc.minor_words () in
  for i = 1 to count do
    sink := !sink lxor Network.transit_i net rng ~round:(i land 15) ~src:0 ~dst:2
  done;
  let w1 = Gc.minor_words () in
  ignore !sink;
  int_of_float (w1 -. w0)

let test_transit_allocation () =
  (* Inert substrate: the guard short-circuits before any draw — exactly
     zero words across 10k calls. *)
  let inert = Network.make ~seed:3 () in
  Alcotest.(check int) "inert transit allocates nothing" 0
    (transit_words inert ~count:10_000);
  (* Active substrate: marginal cost per verdict stays within a few boxed
     RNG draws (at most three per verdict: drop, jitter, duplicate). *)
  let active = Network.make ~drop:0.3 ~jitter:1 ~duplicate:0.1 ~seed:3 () in
  let short = transit_words active ~count:1_000 in
  let long = transit_words active ~count:11_000 in
  let per_call = (long - short) / 10_000 in
  Alcotest.(check bool)
    (Printf.sprintf "active transit: %d words/call (budget 64)" per_call)
    true
    (per_call <= 64)

(* --- serve hot loop --- *)

(* The per-request cost of the daemon's framing layer: parse one submit
   line, render its ack.  Unlike the engine round above this path does
   allocate (a JSON tree in, a response string out) — the pin is that the
   cost stays proportional to one small request, not to connection
   lifetime or ledger height.  Same marginal-words idiom: a long batch
   over a short one cancels warmup. *)
let submit_line =
  {|{"id":42,"method":"submit","params":{"subject":7,"inputs":[0,1,0,2,1,0,0,0,0]}}|}

let rpc_words_of ~count =
  let sink = ref 0 in
  let w0 = Gc.minor_words () in
  for _ = 1 to count do
    match Vv_serve.Rpc.parse submit_line with
    | Ok (Vv_serve.Rpc.Submit { subject; _ }) ->
        sink :=
          !sink + subject
          + String.length
              (Vv_serve.Rpc.submit_ack ~id:(Vv_prelude.Json.Int 42)
                 ~position:11 ~slot:2 ~lane:3)
    | _ -> assert false
  done;
  let w1 = Gc.minor_words () in
  assert (!sink > 0);
  int_of_float (w1 -. w0)

let words_per_request_budget = 1500

let test_rpc_allocation () =
  let short = rpc_words_of ~count:200 in
  let long = rpc_words_of ~count:1200 in
  let per_request = (long - short) / 1000 in
  Alcotest.(check bool)
    (Printf.sprintf
       "serve framing: %d words/request exceeds the %d-word budget"
       per_request words_per_request_budget)
    true
    (per_request <= words_per_request_budget);
  Alcotest.(check bool) "requests actually allocate" true (per_request > 0)

let () =
  Alcotest.run "perf"
    [
      ( "allocation",
        [
          Alcotest.test_case "steady-state words/round" `Quick
            test_round_allocation;
          Alcotest.test_case "whole-run words/round" `Quick
            test_run_allocation;
          Alcotest.test_case "gst scheduler words/round" `Quick
            test_gst_round_allocation;
          Alcotest.test_case "chaos transit words/verdict" `Quick
            test_transit_allocation;
          Alcotest.test_case "serve framing words/request" `Quick
            test_rpc_allocation;
        ] );
    ]
