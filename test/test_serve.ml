(* End-to-end tests of the serve daemon: a real server domain, real Unix
   sockets, multiple clients, snapshot restart and catch-up. *)

module Json = Vv_prelude.Json
module Oid = Vv_ballot.Option_id
module Ledger = Vv_multishot.Ledger
module Engine = Vv_multishot.Engine
module Rpc = Vv_serve.Rpc
module Server = Vv_serve.Server
module Client = Vv_serve.Client

let o = Oid.of_int
let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

let cfg ?(seed = 0x5e7e) () =
  Ledger.config ~byzantine:[ 7; 8 ]
    ~retry:(Ledger.Rotate_and_adjust (Vv_core.Session.Bandwagon, 6))
    ~n:9 ~t:2 ~seed ()

let mixed_inputs i =
  if i mod 3 = 2 then List.map o [ 0; 0; 0; 1; 1; 2; 3 ] @ [ o 0; o 0 ]
  else
    List.init 7 (fun j -> if j = 6 then o ((i + 1) mod 3) else o (i mod 3))
    @ [ o 0; o 0 ]

let fresh_path =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Printf.sprintf "%s/vv-test-serve-%d-%d.sock"
      (Filename.get_temp_dir_name ())
      (Unix.getpid ()) !counter

(* Boot a daemon on a fresh socket, run [f path], always join the server
   (f is responsible for sending shutdown). *)
let with_server ?batch ?jobs ?snapshot f =
  let path = fresh_path () in
  let listen = Server.listen_unix path in
  let daemon =
    Domain.spawn (fun () -> Server.serve ?batch ?jobs ?snapshot ~listen (cfg ()))
  in
  let result = f path in
  let outcome = Domain.join daemon in
  Unix.close listen;
  if Sys.file_exists path then Sys.remove path;
  (result, outcome)

(* --- rpc parsing --- *)

let test_rpc_parse () =
  (match Rpc.parse {|{"id":7,"method":"submit","params":{"subject":3,"inputs":[0,1,0]}}|} with
  | Ok (Rpc.Submit { id; subject; inputs }) ->
      check_bool "id echoed" true (id = Json.Int 7);
      check_int "subject" 3 subject;
      check_int "arity" 3 (List.length inputs)
  | _ -> Alcotest.fail "submit should parse");
  (match Rpc.parse {|{"id":1,"method":"catchup"}|} with
  | Ok (Rpc.Catchup { from; _ }) -> check_int "default from" 0 from
  | _ -> Alcotest.fail "catchup should parse");
  check_bool "unknown method rejected" true
    (Result.is_error (Rpc.parse {|{"id":1,"method":"frobnicate"}|}));
  check_bool "non-object rejected" true (Result.is_error (Rpc.parse "[1,2]"));
  check_bool "bad inputs rejected" true
    (Result.is_error
       (Rpc.parse {|{"id":1,"method":"submit","params":{"subject":1,"inputs":["a"]}}|}))

let test_rpc_decision_roundtrip () =
  let slot = Ledger.compute (cfg ()) ~index:5 ~subject:42 (mixed_inputs 0) in
  match Rpc.decision_of_line (Rpc.decision ~batch:4 slot) with
  | Some slot' -> check_bool "slot round-trips the wire" true (slot = slot')
  | None -> Alcotest.fail "decision line should reconstruct"

(* --- end-to-end --- *)

let test_load_matches_local () =
  let reqs = List.init 17 (fun i -> (i, mixed_inputs i)) in
  let (report : Client.report), outcome =
    with_server ~batch:4 ~jobs:2 (fun path ->
        let conns =
          List.init 3 (fun _ -> Client.connect_unix ~retry_for:10. path)
        in
        let r =
          match Client.run_load ~shutdown:true ~conns reqs with
          | Ok r -> r
          | Error msg -> Alcotest.failf "run_load: %s" msg
        in
        List.iter Client.close conns;
        r)
  in
  check_int "all submitted" 17 report.Client.submitted;
  check_int "all decided" 17 (List.length report.Client.decisions);
  check_bool "no errors" true (report.Client.errors = []);
  check_int "server height" 17 outcome.Server.height;
  check_int "server saw the pool" 3 outcome.Server.served_clients;
  (* The socket path changes nothing: same log as an in-process engine. *)
  let expected, _ = Engine.run ~batch:4 ~jobs:1 (cfg ()) reqs in
  check_bool "socket == local engine" true (report.Client.decisions = expected)

let test_snapshot_restart_catchup () =
  let snapshot = Filename.temp_file "vv-serve" ".snap" in
  Sys.remove snapshot;
  let first = List.init 8 (fun i -> (i, mixed_inputs i)) in
  let second = List.init 6 (fun i -> (i + 8, mixed_inputs (i + 8))) in
  (* First life: commit 8 positions, shut down. *)
  let _, outcome1 =
    with_server ~batch:4 ~snapshot (fun path ->
        let conn = Client.connect_unix ~retry_for:10. path in
        (match Client.run_load ~shutdown:true ~conns:[ conn ] first with
        | Ok _ -> ()
        | Error msg -> Alcotest.failf "first life: %s" msg);
        Client.close conn)
  in
  check_int "first life height" 8 outcome1.Server.height;
  (* Second life: resumes at 8, serves catch-up from 0, extends to 14. *)
  let catchup_count, outcome2 =
    with_server ~batch:4 ~snapshot (fun path ->
        let conn = Client.connect_unix ~retry_for:10. path in
        Client.send conn
          {|{"id":"cu","method":"catchup","params":{"from":0}}|};
        let replayed = ref 0 in
        let rec drain () =
          match Client.recv_line ~timeout:10. conn with
          | None -> Alcotest.fail "catch-up stream ended early"
          | Some line -> (
              match Rpc.decision_of_line line with
              | Some _ ->
                  incr replayed;
                  if !replayed < 8 then drain ()
              | None -> drain ())
        in
        drain ();
        (match Client.run_load ~shutdown:true ~conns:[ conn ] second with
        | Ok _ -> ()
        | Error msg -> Alcotest.failf "second life: %s" msg);
        Client.close conn;
        !replayed)
  in
  check_int "full catch-up replayed" 8 catchup_count;
  check_int "restart resumed and extended" 14 outcome2.Server.height;
  (* The combined run equals one uninterrupted engine run: restart is
     invisible in the committed log. *)
  let snap_json =
    let ic = open_in_bin snapshot in
    let body = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match Json.of_string (String.trim body) with
    | Ok j -> j
    | Error m -> Alcotest.failf "snapshot unreadable: %s" m
  in
  let restored =
    match Engine.of_snapshot ~batch:4 (cfg ()) snap_json with
    | Ok e -> e
    | Error m -> Alcotest.failf "snapshot rejected: %s" m
  in
  let expected, _ = Engine.run ~batch:4 ~jobs:1 (cfg ()) (first @ second) in
  check_bool "two lives == one uninterrupted run" true
    (Engine.decisions restored = expected);
  Sys.remove snapshot

let test_bad_requests_get_errors () =
  let (errors : string list), _ =
    with_server ~batch:2 (fun path ->
        let conn = Client.connect_unix ~retry_for:10. path in
        let errs = ref [] in
        let roundtrip line =
          Client.send conn line;
          match Client.recv_line ~timeout:10. conn with
          | None -> Alcotest.fail "no response"
          | Some resp -> (
              match Json.of_string resp with
              | Ok (Json.Obj fields) -> (
                  match List.assoc_opt "error" fields with
                  | Some _ -> errs := resp :: !errs
                  | None -> ())
              | _ -> ())
        in
        roundtrip "not json at all";
        roundtrip {|{"id":1,"method":"frobnicate"}|};
        roundtrip {|{"id":2,"method":"submit","params":{"subject":1,"inputs":[0]}}|};
        Client.send conn {|{"id":3,"method":"shutdown"}|};
        ignore (Client.recv_line ~timeout:10. conn);
        Client.close conn;
        !errs)
  in
  check_int "every bad request answered with an error" 3 (List.length errors)

let () =
  Alcotest.run "serve"
    [
      ( "rpc",
        [
          Alcotest.test_case "parse" `Quick test_rpc_parse;
          Alcotest.test_case "decision line round-trip" `Quick
            test_rpc_decision_roundtrip;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "load matches local engine" `Quick
            test_load_matches_local;
          Alcotest.test_case "snapshot restart and catch-up" `Quick
            test_snapshot_restart_catchup;
          Alcotest.test_case "bad requests get error responses" `Quick
            test_bad_requests_get_errors;
        ] );
    ]
