(* End-to-end tests of the serve daemon: a real server domain, real Unix
   sockets, multiple clients, snapshot restart and catch-up. *)

module Json = Vv_prelude.Json
module Oid = Vv_ballot.Option_id
module Ledger = Vv_multishot.Ledger
module Engine = Vv_multishot.Engine
module Rpc = Vv_serve.Rpc
module Server = Vv_serve.Server
module Replica = Vv_serve.Replica
module Client = Vv_serve.Client

let o = Oid.of_int
let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

let cfg ?(seed = 0x5e7e) () =
  Ledger.config ~byzantine:[ 7; 8 ]
    ~retry:(Ledger.Rotate_and_adjust (Vv_core.Session.Bandwagon, 6))
    ~n:9 ~t:2 ~seed ()

let mixed_inputs i =
  if i mod 3 = 2 then List.map o [ 0; 0; 0; 1; 1; 2; 3 ] @ [ o 0; o 0 ]
  else
    List.init 7 (fun j -> if j = 6 then o ((i + 1) mod 3) else o (i mod 3))
    @ [ o 0; o 0 ]

let fresh_path =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Printf.sprintf "%s/vv-test-serve-%d-%d.sock"
      (Filename.get_temp_dir_name ())
      (Unix.getpid ()) !counter

(* Boot a daemon on a fresh socket, run [f path], always join the server
   (f is responsible for sending shutdown). *)
let with_server ?batch ?jobs ?snapshot ?max_outq ?sndbuf f =
  let path = fresh_path () in
  let listen = Server.listen_unix path in
  let daemon =
    Domain.spawn (fun () ->
        Server.serve ?batch ?jobs ?snapshot ?max_outq ?sndbuf ~listen (cfg ()))
  in
  let result = f path in
  let outcome = Domain.join daemon in
  Unix.close listen;
  if Sys.file_exists path then Sys.remove path;
  (result, outcome)

(* --- rpc parsing --- *)

let test_rpc_parse () =
  (match Rpc.parse {|{"id":7,"method":"submit","params":{"subject":3,"inputs":[0,1,0]}}|} with
  | Ok (Rpc.Submit { id; subject; inputs }) ->
      check_bool "id echoed" true (id = Json.Int 7);
      check_int "subject" 3 subject;
      check_int "arity" 3 (List.length inputs)
  | _ -> Alcotest.fail "submit should parse");
  (match Rpc.parse {|{"id":1,"method":"catchup"}|} with
  | Ok (Rpc.Catchup { from; _ }) -> check_int "default from" 0 from
  | _ -> Alcotest.fail "catchup should parse");
  check_bool "unknown method rejected" true
    (Result.is_error (Rpc.parse {|{"id":1,"method":"frobnicate"}|}));
  check_bool "non-object rejected" true (Result.is_error (Rpc.parse "[1,2]"));
  check_bool "bad inputs rejected" true
    (Result.is_error
       (Rpc.parse {|{"id":1,"method":"submit","params":{"subject":1,"inputs":["a"]}}|}))

let test_rpc_decision_roundtrip () =
  let slot = Ledger.compute (cfg ()) ~index:5 ~subject:42 (mixed_inputs 0) in
  match Rpc.decision_of_line (Rpc.decision ~batch:4 slot) with
  | Some slot' -> check_bool "slot round-trips the wire" true (slot = slot')
  | None -> Alcotest.fail "decision line should reconstruct"

(* --- end-to-end --- *)

let test_load_matches_local () =
  let reqs = List.init 17 (fun i -> (i, mixed_inputs i)) in
  let (report : Client.report), outcome =
    with_server ~batch:4 ~jobs:2 (fun path ->
        let conns =
          List.init 3 (fun _ -> Client.connect_unix ~retry_for:10. path)
        in
        let r =
          match Client.run_load ~shutdown:true ~conns reqs with
          | Ok r -> r
          | Error msg -> Alcotest.failf "run_load: %s" msg
        in
        List.iter Client.close conns;
        r)
  in
  check_int "all submitted" 17 report.Client.submitted;
  check_int "all decided" 17 (List.length report.Client.decisions);
  check_bool "no errors" true (report.Client.errors = []);
  check_int "server height" 17 outcome.Server.height;
  check_int "server saw the pool" 3 outcome.Server.served_clients;
  (* The socket path changes nothing: same log as an in-process engine. *)
  let expected, _ = Engine.run ~batch:4 ~jobs:1 (cfg ()) reqs in
  check_bool "socket == local engine" true (report.Client.decisions = expected)

let test_snapshot_restart_catchup () =
  let snapshot = Filename.temp_file "vv-serve" ".snap" in
  Sys.remove snapshot;
  let first = List.init 8 (fun i -> (i, mixed_inputs i)) in
  let second = List.init 6 (fun i -> (i + 8, mixed_inputs (i + 8))) in
  (* First life: commit 8 positions, shut down. *)
  let _, outcome1 =
    with_server ~batch:4 ~snapshot (fun path ->
        let conn = Client.connect_unix ~retry_for:10. path in
        (match Client.run_load ~shutdown:true ~conns:[ conn ] first with
        | Ok _ -> ()
        | Error msg -> Alcotest.failf "first life: %s" msg);
        Client.close conn)
  in
  check_int "first life height" 8 outcome1.Server.height;
  (* Second life: resumes at 8, serves catch-up from 0, extends to 14. *)
  let catchup_count, outcome2 =
    with_server ~batch:4 ~snapshot (fun path ->
        let conn = Client.connect_unix ~retry_for:10. path in
        Client.send conn
          {|{"id":"cu","method":"catchup","params":{"from":0}}|};
        let replayed = ref 0 in
        let rec drain () =
          match Client.recv_line ~timeout:10. conn with
          | None -> Alcotest.fail "catch-up stream ended early"
          | Some line -> (
              match Rpc.decision_of_line line with
              | Some _ ->
                  incr replayed;
                  if !replayed < 8 then drain ()
              | None -> drain ())
        in
        drain ();
        (match Client.run_load ~shutdown:true ~conns:[ conn ] second with
        | Ok _ -> ()
        | Error msg -> Alcotest.failf "second life: %s" msg);
        Client.close conn;
        !replayed)
  in
  check_int "full catch-up replayed" 8 catchup_count;
  check_int "restart resumed and extended" 14 outcome2.Server.height;
  (* The combined run equals one uninterrupted engine run: restart is
     invisible in the committed log. *)
  let snap_json =
    let ic = open_in_bin snapshot in
    let body = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match Json.of_string (String.trim body) with
    | Ok j -> j
    | Error m -> Alcotest.failf "snapshot unreadable: %s" m
  in
  let restored =
    match Engine.of_snapshot ~batch:4 (cfg ()) snap_json with
    | Ok e -> e
    | Error m -> Alcotest.failf "snapshot rejected: %s" m
  in
  let expected, _ = Engine.run ~batch:4 ~jobs:1 (cfg ()) (first @ second) in
  check_bool "two lives == one uninterrupted run" true
    (Engine.decisions restored = expected);
  Sys.remove snapshot

let test_bad_requests_get_errors () =
  let (errors : string list), _ =
    with_server ~batch:2 (fun path ->
        let conn = Client.connect_unix ~retry_for:10. path in
        let errs = ref [] in
        let roundtrip line =
          Client.send conn line;
          match Client.recv_line ~timeout:10. conn with
          | None -> Alcotest.fail "no response"
          | Some resp -> (
              match Json.of_string resp with
              | Ok (Json.Obj fields) -> (
                  match List.assoc_opt "error" fields with
                  | Some _ -> errs := resp :: !errs
                  | None -> ())
              | _ -> ())
        in
        roundtrip "not json at all";
        roundtrip {|{"id":1,"method":"frobnicate"}|};
        roundtrip {|{"id":2,"method":"submit","params":{"subject":1,"inputs":[0]}}|};
        Client.send conn {|{"id":3,"method":"shutdown"}|};
        ignore (Client.recv_line ~timeout:10. conn);
        Client.close conn;
        !errs)
  in
  check_int "every bad request answered with an error" 3 (List.length errors)

(* A server dying under a client must surface as [Error] from the load
   driver — not as an uncaught EPIPE/ECONNRESET escaping [send] or
   [recv_line] (the pre-fix behaviour). *)
let test_server_death_is_an_error () =
  let result, _ =
    with_server ~batch:2 (fun path ->
        let victim = Client.connect_unix ~retry_for:10. path in
        let killer = Client.connect_unix ~retry_for:10. path in
        (match
           Client.request killer ~id:(Json.String "k") ~meth:"shutdown"
             (Json.Obj [])
         with
        | Ok _ -> ()
        | Error msg -> Alcotest.failf "shutdown request: %s" msg);
        Client.close killer;
        (* Give the daemon time to exit so the victim's socket is dead. *)
        Unix.sleepf 0.1;
        let reqs = List.init 6 (fun i -> (i, mixed_inputs i)) in
        let r = Client.run_load ~timeout:5. ~conns:[ victim ] reqs in
        Client.close victim;
        r)
  in
  match result with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "load against a dead server should be an Error"

(* Pipelined requests: a response read while awaiting a different id is
   stashed on the connection and handed back later, never dropped. *)
let test_out_of_order_responses_stashed () =
  let (), _ =
    with_server ~batch:2 (fun path ->
        let conn = Client.connect_unix ~retry_for:10. path in
        Client.send conn {|{"id":"a","method":"status"}|};
        Client.send conn {|{"id":"b","method":"status"}|};
        (* Await b first: a's response arrives first on the wire and must
           be stashed, then found by the later wait. *)
        (match Client.wait_response conn ~id:(Json.String "b") with
        | Ok (Json.Obj _) -> ()
        | Ok _ | Error _ -> Alcotest.fail "response b lost");
        (match Client.wait_response conn ~id:(Json.String "a") with
        | Ok (Json.Obj _) -> ()
        | Ok _ | Error _ -> Alcotest.fail "response a dropped");
        (match
           Client.request conn ~id:(Json.String "s") ~meth:"shutdown"
             (Json.Obj [])
         with
        | Ok _ -> ()
        | Error msg -> Alcotest.failf "shutdown: %s" msg);
        Client.close conn)
  in
  ()

(* A client that never reads must not stall decisions to anyone else:
   its outbound queue hits the bound, it is disconnected, the burst
   completes for the live clients. Small sndbuf + small max_outq keep
   the data volume test-sized (AF_UNIX limits in-flight bytes by the
   sender's SO_SNDBUF). *)
let test_stalled_consumer_disconnected () =
  let reqs = List.init 160 (fun i -> (i, mixed_inputs i)) in
  let (report : Client.report), outcome =
    with_server ~batch:4 ~max_outq:8192 ~sndbuf:4096 (fun path ->
        let stalled = Client.connect_unix ~retry_for:10. path in
        let conns =
          List.init 2 (fun _ -> Client.connect_unix ~retry_for:10. path)
        in
        let r =
          match Client.run_load ~shutdown:true ~conns reqs with
          | Ok r -> r
          | Error msg -> Alcotest.failf "run_load under a stalled peer: %s" msg
        in
        List.iter Client.close (stalled :: conns);
        r)
  in
  check_int "every position decided" 160 (List.length report.Client.decisions);
  check_bool "no errors" true (report.Client.errors = []);
  check_int "server height" 160 outcome.Server.height;
  check_bool "the stalled client was disconnected" true
    (outcome.Server.slow_disconnects >= 1)

let test_listen_unix_socket_hygiene () =
  (* A live daemon on the path: claiming it must fail loudly. *)
  let (), _ =
    with_server ~batch:2 (fun path ->
        (match Server.listen_unix path with
        | _ -> Alcotest.fail "claiming a live socket should fail"
        | exception Failure _ -> ());
        let conn = Client.connect_unix ~retry_for:10. path in
        (match
           Client.request conn ~id:(Json.String "s") ~meth:"shutdown"
             (Json.Obj [])
         with
        | Ok _ -> ()
        | Error msg -> Alcotest.failf "shutdown: %s" msg);
        Client.close conn)
  in
  (* A stale file from a dead listener: silently reclaimed. *)
  let path = fresh_path () in
  let dead = Server.listen_unix path in
  Unix.close dead;
  check_bool "stale socket file left behind" true (Sys.file_exists path);
  let reclaimed = Server.listen_unix path in
  Unix.close reclaimed;
  Sys.remove path

(* --- follower replication --- *)

let await_follower_height ~timeout conn target =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec poll () =
    match Client.status conn with
    | Ok (Json.Obj fields)
      when List.assoc_opt "height" fields = Some (Json.Int target) ->
        true
    | _ when Unix.gettimeofday () > deadline -> false
    | _ ->
        Unix.sleepf 0.02;
        poll ()
  in
  poll ()

let test_follower_replicates () =
  let path_p = fresh_path () and path_f = fresh_path () in
  let listen_p = Server.listen_unix path_p in
  let primary =
    Domain.spawn (fun () -> Server.serve ~batch:4 ~listen:listen_p (cfg ()))
  in
  let listen_f = Server.listen_unix path_f in
  let follower =
    Domain.spawn (fun () ->
        Replica.run ~batch:4 ~retry_every:0.05
          ~primary:(Unix.ADDR_UNIX path_p) ~listen:listen_f (cfg ()))
  in
  let reqs = List.init 12 (fun i -> (i, mixed_inputs i)) in
  let conn = Client.connect_unix ~retry_for:10. path_p in
  (match Client.run_load ~conns:[ conn ] reqs with
  | Ok r -> check_int "primary decided" 12 (List.length r.Client.decisions)
  | Error msg -> Alcotest.failf "load: %s" msg);
  let fconn = Client.connect_unix ~retry_for:10. path_f in
  (* Followers are read-only. *)
  (match
     Client.request fconn ~id:(Json.Int 0) ~meth:"submit"
       (Json.Obj
          [ ("subject", Json.Int 99);
            ("inputs", Json.List (List.map (fun i -> Json.Int (Oid.to_int i)) (mixed_inputs 0))) ])
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "follower accepted a submit");
  check_bool "follower converged" true
    (await_follower_height ~timeout:15. fconn 12);
  let primary_log =
    match Client.catchup ~from:0 conn with
    | Ok l -> l
    | Error msg -> Alcotest.failf "primary catchup: %s" msg
  in
  let follower_log =
    match Client.catchup ~from:0 fconn with
    | Ok l -> l
    | Error msg -> Alcotest.failf "follower catchup: %s" msg
  in
  check_int "replicated everything" 12 (List.length follower_log);
  check_bool "follower log == primary log" true (follower_log = primary_log);
  (match
     Client.request fconn ~id:(Json.String "s") ~meth:"shutdown" (Json.Obj [])
   with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "follower shutdown: %s" msg);
  let f_out = Domain.join follower in
  check_int "one catchup" 1 f_out.Replica.catchups;
  check_int "follower height" 12 f_out.Replica.height;
  (match
     Client.request conn ~id:(Json.String "s") ~meth:"shutdown" (Json.Obj [])
   with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "primary shutdown: %s" msg);
  let (_ : Server.outcome) = Domain.join primary in
  Client.close conn;
  Client.close fconn;
  Unix.close listen_p;
  Unix.close listen_f;
  List.iter (fun p -> if Sys.file_exists p then Sys.remove p) [ path_p; path_f ]

(* Racy load: positions race across connections, so only the set of
   decided subjects is pinned — every submitted subject, exactly once. *)
let test_racy_load_subject_set () =
  let reqs = List.init 24 (fun i -> (i, mixed_inputs i)) in
  let (report : Client.report), outcome =
    with_server ~batch:4 (fun path ->
        let conns =
          List.init 3 (fun _ -> Client.connect_unix ~retry_for:10. path)
        in
        let r =
          match Client.run_load_racy ~shutdown:true ~conns reqs with
          | Ok r -> r
          | Error msg -> Alcotest.failf "run_load_racy: %s" msg
        in
        List.iter Client.close conns;
        r)
  in
  check_int "all accepted" 24 report.Client.submitted;
  check_bool "no errors" true (report.Client.errors = []);
  check_int "server height" 24 outcome.Server.height;
  check_bool "decided subjects == submitted subjects" true
    (Client.subjects_decided report = List.init 24 Fun.id)

(* --- connect-retry backoff --- *)

(* The retry pacing is a pure function of (seed, attempt): capped
   exponential slots (0.05s doubling to 1s) scaled by jitter in
   [0.5, 1.0).  Pin determinism, the envelope, monotone slot growth, the
   cap, and that distinct seeds actually de-synchronize. *)
let test_retry_backoff () =
  let slot attempt = Float.min (0.05 *. (2. ** float_of_int (attempt - 1))) 1.0 in
  (* deterministic: same (seed, attempt) -> same delay *)
  List.iter
    (fun attempt ->
      check (Alcotest.float 0.) "replayable"
        (Client.retry_delay ~seed:7 ~attempt)
        (Client.retry_delay ~seed:7 ~attempt))
    [ 1; 2; 3; 8; 40; 100 ];
  (* envelope: slot/2 <= delay < slot, hence never above the 1s cap *)
  List.iter
    (fun attempt ->
      let d = Client.retry_delay ~seed:11 ~attempt in
      let s = slot attempt in
      check_bool
        (Printf.sprintf "attempt %d in [slot/2, slot)" attempt)
        true
        (d >= (s /. 2.) -. 1e-9 && d < s);
      check_bool (Printf.sprintf "attempt %d capped" attempt) true (d <= 1.0))
    (List.init 64 (fun i -> i + 1));
  (* first slots grow: un-jittered lower bound of attempt k+2 exceeds the
     upper bound of attempt k while below the cap *)
  check_bool "slots double below the cap" true
    (slot 3 /. 2. >= slot 1 && slot 5 /. 2. >= slot 3);
  (* distinct seeds de-synchronize: two clients' schedules differ
     somewhere early *)
  let schedule seed =
    List.init 8 (fun i -> Client.retry_delay ~seed ~attempt:(i + 1))
  in
  check_bool "seeds de-synchronize" true (schedule 1 <> schedule 2);
  (* attempt 0 is rejected loudly *)
  Alcotest.check_raises "attempt 0"
    (Invalid_argument "Client.retry_delay: attempt must be >= 1") (fun () ->
      ignore (Client.retry_delay ~seed:1 ~attempt:0))

(* The retrying connect still works end-to-end: a client started before
   the socket exists connects (with backoff pacing) once the listener
   comes up. *)
let test_retry_connect_races_startup () =
  let path = fresh_path () in
  let listener =
    Domain.spawn (fun () ->
        Unix.sleepf 0.15;
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind fd (Unix.ADDR_UNIX path);
        Unix.listen fd 1;
        let c, _ = Unix.accept fd in
        Unix.close c;
        Unix.close fd)
  in
  let conn = Client.connect_unix ~retry_for:5.0 ~retry_seed:42 path in
  Domain.join listener;
  Client.close conn;
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  check_bool "connected after startup race" true true

let () =
  Alcotest.run "serve"
    [
      ( "rpc",
        [
          Alcotest.test_case "parse" `Quick test_rpc_parse;
          Alcotest.test_case "decision line round-trip" `Quick
            test_rpc_decision_roundtrip;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "load matches local engine" `Quick
            test_load_matches_local;
          Alcotest.test_case "snapshot restart and catch-up" `Quick
            test_snapshot_restart_catchup;
          Alcotest.test_case "bad requests get error responses" `Quick
            test_bad_requests_get_errors;
          Alcotest.test_case "server death surfaces as Error" `Quick
            test_server_death_is_an_error;
          Alcotest.test_case "out-of-order responses stashed" `Quick
            test_out_of_order_responses_stashed;
          Alcotest.test_case "stalled consumer disconnected" `Quick
            test_stalled_consumer_disconnected;
          Alcotest.test_case "unix socket hygiene" `Quick
            test_listen_unix_socket_hygiene;
          Alcotest.test_case "racy load decides the subject set" `Quick
            test_racy_load_subject_set;
        ] );
      ( "replica",
        [
          Alcotest.test_case "follower replicates the primary" `Quick
            test_follower_replicates;
        ] );
      ( "backoff",
        [
          Alcotest.test_case "retry delay schedule" `Quick test_retry_backoff;
          Alcotest.test_case "retrying connect races startup" `Quick
            test_retry_connect_races_startup;
        ] );
    ]
