(* Tests of the baseline (approximate-validity) protocols: median validity,
   interval validity, strong consensus, k-set consensus and approximate
   agreement — including the exactness failures that motivate the paper. *)

open Vv_sim
module B = Vv_baselines
module BR = Vv_analysis.Baseline_runner

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

let cfg ?(seed = 0x8a5e) ~n ~t byz = Config.with_byzantine ~seed ~n ~t_max:t byz ()

let all_equal = function
  | [] -> true
  | x :: rest -> List.for_all (( = ) x) rest

(* --- median validity --- *)

let test_median_no_faults () =
  (* 9 honest nodes with values 100..108: the exact median is 104. *)
  let c = cfg ~n:9 ~t:2 [] in
  let s = BR.run_median c ~inputs:(fun id -> 100 + id) ~collude:false in
  let outs = List.filter_map Fun.id s.BR.outputs in
  check_int "all decide" 9 (List.length outs);
  check_bool "agreement" true (all_equal outs);
  check_int "exact median without faults" 104 (List.hd outs)

let test_median_with_collusion_close_not_exact () =
  (* Two colluders flood the runner-up value; the agreed output must stay
     within t positions of the honest median (the [5] guarantee shape) but
     may miss it. *)
  let c = cfg ~n:11 ~t:2 [ 9; 10 ] in
  let s = BR.run_median c ~inputs:(fun id -> 100 + min id 8) ~collude:true in
  let outs = List.filter_map Fun.id s.BR.outputs in
  check_bool "agreement" true (all_equal outs);
  let out = List.hd outs in
  (* honest values 100..108, median 104, t = 2 positions: [102, 106]. *)
  check_bool "within t positions of median" true (out >= 102 && out <= 106)

let test_median_outlier_immunity () =
  (* The t-trim discards Byzantine extremes entirely. *)
  let c = cfg ~n:11 ~t:2 [ 9; 10 ] in
  let module A = Vv_sim.Adversary in
  let outlier =
    A.named "outliers" (fun view ->
        if view.A.round <> 0 then []
        else
          List.concat_map
            (fun src ->
              List.init view.A.n (fun dst ->
                  { A.src; dst; msg = B.Exchange_ba.Raw 1_000_000 }))
            view.A.byzantine)
  in
  let module E = BR.Median_E in
  let res = E.run_exn c ~inputs:(fun id -> 100 + min id 8) ~adversary:outlier () in
  let outs = List.filter_map Fun.id (E.honest_outputs res) in
  check_bool "agreement" true (all_equal outs);
  check_bool "outliers trimmed" true (List.hd outs >= 100 && List.hd outs <= 108)

(* --- interval validity --- *)

let test_interval_kth () =
  let c = cfg ~n:9 ~t:1 [] in
  let s =
    BR.run_interval c
      ~inputs:(fun id -> { B.Interval_validity.value = 10 * (id + 1); k = 2 })
      ~collude:false
  in
  let outs = List.filter_map Fun.id s.BR.outputs in
  check_bool "agreement" true (all_equal outs);
  (* Values 10..90, t=1 trims to 20..80; k=2 -> 30. *)
  check_int "k-th smallest of trimmed" 30 (List.hd outs)

let test_interval_collusion_stays_in_interval () =
  let c = cfg ~n:11 ~t:2 [ 9; 10 ] in
  let s =
    BR.run_interval c
      ~inputs:(fun id -> { B.Interval_validity.value = 100 + min id 8; k = 5 })
      ~collude:true
  in
  let outs = List.filter_map Fun.id s.BR.outputs in
  check_bool "agreement" true (all_equal outs);
  check_bool "inside honest range" true
    (List.hd outs >= 100 && List.hd outs <= 108)

(* --- strong consensus --- *)

let test_strong_decisive () =
  let c = cfg ~n:9 ~t:2 [ 7; 8 ] in
  (* 7 honest: six vote 3, one votes 5 — decisive. *)
  let s =
    BR.run_strong c ~inputs:(fun id -> if id = 6 then 5 else 3) ~collude:true
  in
  let outs = List.filter_map Fun.id s.BR.outputs in
  check_bool "agreement" true (all_equal outs);
  check_int "plurality survives" 3 (List.hd outs)

let test_strong_flipped_by_collusion () =
  (* The Section I failure: honest 4-vs-3 split, two colluders flip it.
     Strong validity still holds (5 is an honest input) but the output is
     NOT the honest plurality — the exactness gap Algorithm 1 closes. *)
  let c = cfg ~n:9 ~t:2 [ 7; 8 ] in
  let s =
    BR.run_strong c ~inputs:(fun id -> if id < 4 then 3 else 5) ~collude:true
  in
  let outs = List.filter_map Fun.id s.BR.outputs in
  check_bool "agreement" true (all_equal outs);
  check_int "honest plurality lost" 5 (List.hd outs)

(* --- k-set consensus --- *)

let test_kset_no_faults_single_value () =
  let module E = BR.Kset_E in
  let c = Config.make ~n:6 ~t_max:2 () in
  let s = BR.run_kset c ~inputs:(fun id -> { B.Kset.value = 10 + id; k = 2 }) in
  let outs = List.filter_map Fun.id s.BR.outputs in
  check_int "all decide" 6 (List.length outs);
  check_int "one value without faults" 1 (B.Kset.distinct_outputs s.BR.outputs);
  check_int "min wins" 10 (List.hd outs)

let test_kset_bounded_disagreement_under_crashes () =
  (* Crash nodes dying mid-broadcast can split the flood-min, but never
     into more than k distinct outputs. *)
  let faults =
    [|
      Fault.Crash { at_round = 0; deliver_to = [ 1 ] };
      Fault.Honest; Fault.Honest; Fault.Honest; Fault.Honest; Fault.Honest;
    |]
  in
  let c = Config.make ~n:6 ~t_max:2 ~faults () in
  let s = BR.run_kset c ~inputs:(fun id -> { B.Kset.value = 10 + id; k = 2 }) in
  let distinct = B.Kset.distinct_outputs s.BR.outputs in
  check_bool "at most k distinct outputs" true (distinct >= 1 && distinct <= 2);
  List.iter
    (fun o ->
      match o with
      | Some v -> check_bool "output is someone's input" true (v >= 10 && v <= 15)
      | None -> Alcotest.fail "kset must terminate")
    s.BR.outputs

(* --- approximate agreement --- *)

let test_approx_converges () =
  let c = cfg ~n:9 ~t:2 [ 7; 8 ] in
  let outs, _, _ =
    BR.run_approx c
      ~inputs:(fun id -> { B.Approx.value = float_of_int (10 * id); rounds = 10 })
      ~outlier:(Some 1e9)
  in
  let spread = B.Approx.spread outs in
  check_bool "tight spread despite outliers" true (spread < 1.0);
  List.iter
    (fun o ->
      match o with
      | Some v -> check_bool "within honest hull" true (v >= 0.0 && v <= 60.0)
      | None -> Alcotest.fail "approx must terminate")
    outs

let test_approx_validation () =
  Alcotest.check_raises "rounds >= 1" (Invalid_argument "approx: rounds must be >= 1")
    (fun () ->
      let c = Config.make ~n:3 ~t_max:0 () in
      ignore
        (BR.run_approx c
           ~inputs:(fun _ -> { B.Approx.value = 1.0; rounds = 0 })
           ~outlier:None))

(* --- properties --- *)

let gen_values =
  QCheck.make
    ~print:(fun l -> Fmt.str "%a" Fmt.(Dump.list int) l)
    QCheck.Gen.(list_size (int_range 5 11) (int_range 0 50))

let prop_median_agreement =
  QCheck.Test.make ~count:40 ~name:"median baseline always agrees" gen_values
    (fun values ->
      let ng = List.length values in
      let t = 1 in
      let c = cfg ~n:(ng + t) ~t [ ng ] in
      let arr = Array.of_list values in
      let s =
        BR.run_median c ~inputs:(fun id -> arr.(min id (ng - 1))) ~collude:true
      in
      all_equal (List.filter_map Fun.id s.BR.outputs))

let prop_strong_output_is_some_input =
  QCheck.Test.make ~count:40
    ~name:"strong baseline outputs someone's value" gen_values (fun values ->
      let ng = List.length values in
      let t = 1 in
      let c = cfg ~n:(ng + t) ~t [ ng ] in
      let arr = Array.of_list values in
      let s =
        BR.run_strong c ~inputs:(fun id -> arr.(min id (ng - 1))) ~collude:true
      in
      match List.filter_map Fun.id s.BR.outputs with
      | [] -> true
      | out :: _ -> List.mem out values)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_median_agreement; prop_strong_output_is_some_input ]

let () =
  Alcotest.run "baselines"
    [
      ( "median",
        [
          Alcotest.test_case "exact without faults" `Quick test_median_no_faults;
          Alcotest.test_case "close-not-exact under collusion" `Quick
            test_median_with_collusion_close_not_exact;
          Alcotest.test_case "outlier immunity" `Quick test_median_outlier_immunity;
        ] );
      ( "interval",
        [
          Alcotest.test_case "k-th smallest" `Quick test_interval_kth;
          Alcotest.test_case "collusion stays in interval" `Quick
            test_interval_collusion_stays_in_interval;
        ] );
      ( "strong",
        [
          Alcotest.test_case "decisive plurality survives" `Quick
            test_strong_decisive;
          Alcotest.test_case "thin plurality flipped (Section I)" `Quick
            test_strong_flipped_by_collusion;
        ] );
      ( "kset",
        [
          Alcotest.test_case "single value without faults" `Quick
            test_kset_no_faults_single_value;
          Alcotest.test_case "bounded disagreement under crashes" `Quick
            test_kset_bounded_disagreement_under_crashes;
        ] );
      ( "approx",
        [
          Alcotest.test_case "converges despite outliers" `Quick
            test_approx_converges;
          Alcotest.test_case "validation" `Quick test_approx_validation;
        ] );
      ("properties", qcheck_cases);
    ]
