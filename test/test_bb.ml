(* Tests of the Byzantine Broadcast substrates: honest-sender validity,
   agreement under an equivocating Byzantine sender, silent senders, and
   round/tolerance accounting. *)

open Vv_sim

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

module Run (Sub : Vv_bb.Bb_intf.S) = struct
  module P = Vv_bb.Protocol_of.Make (Sub)
  module E = Engine.Make (P)

  let go ~n ~t ~byz ~sender ~value ?adversary () =
    let cfg = Config.with_byzantine ~n ~t_max:t byz () in
    let inputs id =
      { Vv_bb.Protocol_of.sender;
        value = (if id = sender then Some value else None) }
    in
    let res = E.run_exn cfg ~inputs ?adversary () in
    (res, E.honest_outputs res)
end

module Run_ds = Run (Vv_bb.Dolev_strong)
module Run_pk = Run (Vv_bb.Phase_king)
module Run_eig = Run (Vv_bb.Eig)

let run_bb (choice : Vv_bb.Bb.choice) ~n ~t ~byz ~sender ~value () =
  match choice with
  | Vv_bb.Bb.Dolev_strong ->
      let res, outs = Run_ds.go ~n ~t ~byz ~sender ~value () in
      ((res.Run_ds.E.rounds_used, res.Run_ds.E.stalled), outs)
  | Vv_bb.Bb.Phase_king ->
      let res, outs = Run_pk.go ~n ~t ~byz ~sender ~value () in
      ((res.Run_pk.E.rounds_used, res.Run_pk.E.stalled), outs)
  | Vv_bb.Bb.Eig ->
      let res, outs = Run_eig.go ~n ~t ~byz ~sender ~value () in
      ((res.Run_eig.E.rounds_used, res.Run_eig.E.stalled), outs)

let all_choices =
  [ ("dolev-strong", Vv_bb.Bb.Dolev_strong); ("phase-king", Vv_bb.Bb.Phase_king); ("eig", Vv_bb.Bb.Eig) ]

(* Honest sender: every honest node outputs the sender's value. *)
let test_honest_sender () =
  List.iter
    (fun (label, choice) ->
      let _, outs = run_bb choice ~n:7 ~t:1 ~byz:[ 6 ] ~sender:0 ~value:42 () in
      List.iter
        (fun o ->
          check (Alcotest.option Alcotest.int) (label ^ " honest-sender value")
            (Some 42) o)
        outs)
    all_choices

(* No faults at all, several (n, t) sizes. *)
let test_all_honest_sizes () =
  List.iter
    (fun (label, choice) ->
      List.iter
        (fun (n, t) ->
          let _, outs = run_bb choice ~n ~t ~byz:[] ~sender:1 ~value:7 () in
          check_int (Fmt.str "%s n=%d t=%d all decide" label n t) n
            (List.length outs);
          List.iter
            (fun o ->
              check (Alcotest.option Alcotest.int) label (Some 7) o)
            outs)
        [ (4, 0); (5, 1); (9, 2) ])
    all_choices

(* Silent Byzantine sender: all honest nodes must agree (on bottom). *)
let test_silent_sender () =
  List.iter
    (fun (label, choice) ->
      let _, outs = run_bb choice ~n:7 ~t:1 ~byz:[ 0 ] ~sender:0 ~value:0 () in
      (match outs with
      | [] -> Alcotest.fail "no honest outputs"
      | first :: rest ->
          List.iter
            (fun o ->
              check (Alcotest.option Alcotest.int) (label ^ " silent agreement")
                first o)
            rest);
      List.iter
        (fun o ->
          check (Alcotest.option Alcotest.int) (label ^ " silent -> bottom")
            (Some Vv_bb.Bb_intf.bottom) o)
        outs)
    all_choices

(* Equivocating Byzantine sender under point-to-point: agreement must still
   hold among honest nodes (validity does not apply). *)
let ds_equivocator ~sender =
  Adversary.named "ds-equivocate" (fun view ->
      if view.Adversary.round <> 0 then []
      else
        List.init view.Adversary.n (fun dst ->
            let v = if dst mod 2 = 0 then 10 else 20 in
            { Adversary.src = sender; dst; msg = Vv_bb.Auth.initial ~sender v }))

let pk_equivocator ~sender =
  Adversary.named "pk-equivocate" (fun view ->
      if view.Adversary.round <> 0 then []
      else
        List.init view.Adversary.n (fun dst ->
            let v = if dst mod 2 = 0 then 10 else 20 in
            {
              Adversary.src = sender;
              dst;
              msg = Vv_bb.Phase_king.Val { phase = -1; value = v };
            }))

let eig_equivocator ~sender =
  Adversary.named "eig-equivocate" (fun view ->
      if view.Adversary.round <> 0 then []
      else
        List.init view.Adversary.n (fun dst ->
            let v = if dst mod 2 = 0 then 10 else 20 in
            { Adversary.src = sender; dst; msg = Vv_bb.Eig.Init v }))

let assert_agreement label outs =
  match outs with
  | [] -> Alcotest.fail "no honest outputs"
  | first :: rest ->
      check_bool (label ^ " all decided") true
        (List.for_all Option.is_some (first :: rest));
      List.iter
        (fun o -> check (Alcotest.option Alcotest.int) (label ^ " agreement") first o)
        rest

let test_equivocating_sender () =
  let sender = 0 in
  let _, outs =
    Run_ds.go ~n:7 ~t:2 ~byz:[ 0; 6 ] ~sender ~value:0
      ~adversary:(ds_equivocator ~sender) ()
  in
  assert_agreement "dolev-strong equivocation" outs;
  let _, outs =
    Run_pk.go ~n:9 ~t:2 ~byz:[ 0 ] ~sender ~value:0
      ~adversary:(pk_equivocator ~sender) ()
  in
  assert_agreement "phase-king equivocation" outs;
  let _, outs =
    Run_eig.go ~n:7 ~t:2 ~byz:[ 0 ] ~sender ~value:0
      ~adversary:(eig_equivocator ~sender) ()
  in
  assert_agreement "eig equivocation" outs

(* Dolev-Strong must run in exactly t+1 exchange rounds.  [rounds_used]
   counts executed engine rounds: round 0 (the substrate's start) plus the
   exchange rounds, so a k-exchange substrate reports k + 1. *)
let test_round_counts () =
  let (rounds, _), _ = run_bb Vv_bb.Bb.Dolev_strong ~n:5 ~t:2 ~byz:[] ~sender:0 ~value:3 () in
  check_int "ds rounds" (2 + 1 + 1) rounds;
  let (rounds, _), _ = run_bb Vv_bb.Bb.Eig ~n:7 ~t:2 ~byz:[] ~sender:0 ~value:3 () in
  check_int "eig rounds" (2 + 2 + 1) rounds;
  let (rounds, _), _ = run_bb Vv_bb.Bb.Phase_king ~n:9 ~t:2 ~byz:[] ~sender:0 ~value:3 () in
  check_int "pk rounds" ((2 * 2) + 3 + 1) rounds

(* Signature chains: forged or truncated chains must not verify. *)
let test_auth () =
  let c = Vv_bb.Auth.initial ~sender:3 99 in
  check_bool "initial valid" true (Vv_bb.Auth.valid c ~sender:3 ~len:1);
  check_bool "wrong sender" false (Vv_bb.Auth.valid c ~sender:4 ~len:1);
  check_bool "wrong len" false (Vv_bb.Auth.valid c ~sender:3 ~len:2);
  let c2 = Vv_bb.Auth.extend c ~signer:5 in
  check_bool "extended valid" true (Vv_bb.Auth.valid c2 ~sender:3 ~len:2);
  let dup = Vv_bb.Auth.extend c ~signer:3 in
  check_bool "duplicate signer invalid" false (Vv_bb.Auth.valid dup ~sender:3 ~len:2)

(* Crash-faulty sender: it may reach only a subset in its last broadcast;
   agreement among honest nodes must still hold for every substrate. *)
let test_crash_sender_agreement () =
  let run_crash (choice : Vv_bb.Bb.choice) label =
    let (module Sub) = Vv_bb.Bb.sub choice in
    let module P = Vv_bb.Protocol_of.Make (Sub) in
    let module E = Engine.Make (P) in
    let faults = Array.make 7 Fault.Honest in
    faults.(0) <- Fault.Crash { at_round = 0; deliver_to = [ 1; 2; 3 ] };
    let cfg = Config.make ~faults ~n:7 ~t_max:2 () in
    let inputs id =
      { Vv_bb.Protocol_of.sender = 0;
        value = (if id = 0 then Some 5 else None) }
    in
    let res = E.run_exn cfg ~inputs () in
    assert_agreement label (E.honest_outputs res)
  in
  run_crash Vv_bb.Bb.Dolev_strong "ds crash sender";
  run_crash Vv_bb.Bb.Eig "eig crash sender";
  run_crash Vv_bb.Bb.Phase_king "pk crash sender"

(* Crash-faulty relay: an honest-until-crash relay dies mid-protocol; the
   sender is honest so validity must hold. *)
let test_crash_relay_validity () =
  let run_crash (choice : Vv_bb.Bb.choice) label =
    let (module Sub) = Vv_bb.Bb.sub choice in
    let module P = Vv_bb.Protocol_of.Make (Sub) in
    let module E = Engine.Make (P) in
    let faults = Array.make 7 Fault.Honest in
    faults.(3) <- Fault.Crash { at_round = 1; deliver_to = [ 0; 5 ] };
    let cfg = Config.make ~faults ~n:7 ~t_max:2 () in
    let inputs id =
      { Vv_bb.Protocol_of.sender = 0;
        value = (if id = 0 then Some 9 else None) }
    in
    let res = E.run_exn cfg ~inputs () in
    List.iter
      (fun o ->
        check (Alcotest.option Alcotest.int) (label ^ " validity") (Some 9) o)
      (E.honest_outputs res)
  in
  run_crash Vv_bb.Bb.Dolev_strong "ds crash relay";
  run_crash Vv_bb.Bb.Eig "eig crash relay";
  run_crash Vv_bb.Bb.Phase_king "pk crash relay"

(* Delta batching: the lock-step substrates must also work under a fixed
   delay of 2 and 3 rounds (Protocol_of batches local rounds by delta). *)
let test_delta_batching () =
  List.iter
    (fun delta ->
      List.iter
        (fun (label, choice) ->
          let (module Sub) = Vv_bb.Bb.sub choice in
          let module P = Vv_bb.Protocol_of.Make (Sub) in
          let module E = Engine.Make (P) in
          let cfg =
            Config.make ~delay:(Delay.Fixed delta) ~n:7 ~t_max:1 ()
          in
          let inputs id =
            { Vv_bb.Protocol_of.sender = 2;
              value = (if id = 2 then Some 4 else None) }
          in
          let res = E.run_exn cfg ~inputs () in
          List.iter
            (fun o ->
              check (Alcotest.option Alcotest.int)
                (Fmt.str "%s delta=%d" label delta)
                (Some 4) o)
            (E.honest_outputs res);
          check_int
            (Fmt.str "%s delta=%d rounds" label delta)
            ((Sub.rounds ~n:7 ~t:1 * delta) + 1)
            res.E.rounds_used)
        all_choices)
    [ 2; 3 ]

(* Uniform delays within the declared bound also work via batching. *)
let test_uniform_delay_batching () =
  let module P = Vv_bb.Protocol_of.Make (Vv_bb.Dolev_strong) in
  let module E = Engine.Make (P) in
  let cfg =
    Config.make ~delay:(Delay.Uniform { lo = 1; hi = 3 }) ~n:6 ~t_max:2 ()
  in
  let inputs id =
    { Vv_bb.Protocol_of.sender = 0; value = (if id = 0 then Some 8 else None) }
  in
  let res = E.run_exn cfg ~inputs () in
  List.iter
    (fun o ->
      check (Alcotest.option Alcotest.int) "uniform batching" (Some 8) o)
    (E.honest_outputs res)

(* min_n consistency with each substrate's documented assumption. *)
let test_min_n () =
  check_int "ds min" 3 (Vv_bb.Bb.min_n Vv_bb.Bb.Dolev_strong ~t:1);
  check_int "eig min" 7 (Vv_bb.Bb.min_n Vv_bb.Bb.Eig ~t:2);
  check_int "pk min" 9 (Vv_bb.Bb.min_n Vv_bb.Bb.Phase_king ~t:2)

(* Agreement of the hot-path monomorphic comparators with the polymorphic
   structural versions they replaced: the engine's local-broadcast grouping
   and the substrates' dedup logic must order/equate messages exactly as
   generic compare did, or goldens drift. *)

let sign c = if c < 0 then -1 else if c > 0 then 1 else 0

let gen_eig_msg =
  QCheck.Gen.(
    let id = int_range 0 6 in
    let value = int_range (-1) 5 in
    oneof
      [
        map (fun v -> Vv_bb.Eig.Init v) value;
        map2
          (fun path value -> Vv_bb.Eig.Report { path; value })
          (list_size (int_range 0 3) id)
          value;
      ])

let arb_eig_pair =
  QCheck.make
    ~print:(fun (a, b) ->
      let p m =
        match m with
        | Vv_bb.Eig.Init v -> Fmt.str "Init %d" v
        | Vv_bb.Eig.Report { path; value } ->
            Fmt.str "Report {path=%a; value=%d}" Fmt.(Dump.list int) path value
      in
      Fmt.str "(%s, %s)" (p a) (p b))
    QCheck.Gen.(pair gen_eig_msg gen_eig_msg)

let prop_eig_compare_agrees =
  QCheck.Test.make ~name:"Eig.compare_msg agrees with polymorphic compare"
    arb_eig_pair (fun (a, b) ->
      sign (Vv_bb.Eig.compare_msg a b) = sign (Stdlib.compare a b))

let prop_eig_equal_agrees =
  QCheck.Test.make ~name:"Eig.equal_msg agrees with structural equality"
    arb_eig_pair (fun (a, b) ->
      Vv_bb.Eig.equal_msg a b = (a = b)
      && Vv_bb.Eig.equal_msg a b = (Vv_bb.Eig.compare_msg a b = 0))

let gen_pk_msg =
  QCheck.Gen.(
    let phase = int_range (-1) 3 and value = int_range (-1) 5 in
    oneof
      [
        map2 (fun phase value -> Vv_bb.Phase_king.Val { phase; value }) phase
          value;
        map2 (fun phase value -> Vv_bb.Phase_king.King { phase; value }) phase
          value;
      ])

let prop_pk_equal_agrees =
  QCheck.Test.make ~name:"Phase_king.equal_msg agrees with structural equality"
    (QCheck.make QCheck.Gen.(pair gen_pk_msg gen_pk_msg))
    (fun (a, b) -> Vv_bb.Phase_king.equal_msg a b = (a = b))

let gen_kb_msg =
  QCheck.Gen.(
    let phase = int_range (-1) 3 and value = int_range (-1) 5 in
    oneof
      [
        map2 (fun phase value -> Vv_bb.King_ba.Val { phase; value }) phase value;
        map2 (fun phase value -> Vv_bb.King_ba.King { phase; value }) phase
          value;
      ])

let prop_kb_equal_agrees =
  QCheck.Test.make ~name:"King_ba.equal_msg agrees with structural equality"
    (QCheck.make QCheck.Gen.(pair gen_kb_msg gen_kb_msg))
    (fun (a, b) -> Vv_bb.King_ba.equal_msg a b = (a = b))

(* Signature-chain invariants under the incremental digest: a chain built
   by initial+extend over distinct non-sender relays validates at exactly
   its length, rejects every other claimed length and sender, and
   [mem_signer] agrees with membership in [signers]. *)
let gen_chain_shape =
  QCheck.Gen.(
    pair (int_range 0 6)
      (pair (int_range 0 9) (list_size (int_range 0 5) (int_range 0 6))))

let build_chain ~sender ~value relays =
  let distinct =
    List.fold_left
      (fun acc r -> if r = sender || List.mem r acc then acc else acc @ [ r ])
      [] relays
  in
  ( List.fold_left
      (fun c signer -> Vv_bb.Auth.extend c ~signer)
      (Vv_bb.Auth.initial ~sender value)
      distinct,
    1 + List.length distinct )

let prop_auth_chain_valid =
  QCheck.Test.make ~name:"auth chains validate at their exact length"
    (QCheck.make gen_chain_shape)
    (fun (sender, (value, relays)) ->
      let chain, len = build_chain ~sender ~value relays in
      Vv_bb.Auth.valid chain ~sender ~len
      && (not (Vv_bb.Auth.valid chain ~sender ~len:(len + 1)))
      && (not (Vv_bb.Auth.valid chain ~sender ~len:(len - 1)))
      && not (Vv_bb.Auth.valid chain ~sender:(sender + 1) ~len))

let prop_auth_duplicate_signer =
  QCheck.Test.make ~name:"re-signing by an existing signer invalidates"
    (QCheck.make gen_chain_shape)
    (fun (sender, (value, relays)) ->
      let chain, len = build_chain ~sender ~value relays in
      let dup = Vv_bb.Auth.extend chain ~signer:sender in
      not (Vv_bb.Auth.valid dup ~sender ~len:(len + 1)))

let prop_auth_mem_signer =
  QCheck.Test.make ~name:"mem_signer agrees with the signer list"
    (QCheck.make QCheck.Gen.(pair gen_chain_shape (int_range 0 8)))
    (fun ((sender, (value, relays)), probe) ->
      let chain, _ = build_chain ~sender ~value relays in
      Vv_bb.Auth.mem_signer chain probe
      = List.mem probe (Vv_bb.Auth.signers chain))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_eig_compare_agrees;
      prop_eig_equal_agrees;
      prop_pk_equal_agrees;
      prop_kb_equal_agrees;
      prop_auth_chain_valid;
      prop_auth_duplicate_signer;
      prop_auth_mem_signer;
    ]

let () =
  Alcotest.run "bb"
    [
      ( "broadcast",
        [
          Alcotest.test_case "honest sender delivers value" `Quick test_honest_sender;
          Alcotest.test_case "all-honest across sizes" `Quick test_all_honest_sizes;
          Alcotest.test_case "silent Byzantine sender agrees on bottom" `Quick
            test_silent_sender;
          Alcotest.test_case "equivocating sender keeps agreement" `Quick
            test_equivocating_sender;
          Alcotest.test_case "round counts" `Quick test_round_counts;
          Alcotest.test_case "crash sender keeps agreement" `Quick
            test_crash_sender_agreement;
          Alcotest.test_case "crash relay keeps validity" `Quick
            test_crash_relay_validity;
          Alcotest.test_case "delta batching (fixed delays)" `Quick
            test_delta_batching;
          Alcotest.test_case "delta batching (uniform delays)" `Quick
            test_uniform_delay_batching;
        ] );
      ( "auth",
        [
          Alcotest.test_case "signature chain validity" `Quick test_auth;
          Alcotest.test_case "substrate tolerance" `Quick test_min_n;
        ] );
      ("comparator-agreement", qcheck_cases);
    ]
