(* Golden regression tests: small, fully deterministic experiment tables
   pinned as CSV.  Any behavioural drift in the protocols, the bounds
   arithmetic or the probability kernels shows up here as a diff. *)

module Table = Vv_prelude.Table

let check_csv name expected (t : Table.t) =
  Alcotest.(check string) name expected (Table.to_csv t)

let test_fig1a () =
  check_csv "fig1a"
    "profile,p1,p2,p3,p4,H(p),H0 (xN_G)\n\
     D1,0.70,0.10,0.10,0.10,1.3568,13.57\n\
     D2,0.55,0.25,0.10,0.10,1.6388,16.39\n\
     D3,0.40,0.30,0.20,0.10,1.8464,18.46\n\
     D4,0.25,0.25,0.25,0.25,2,20\n"
    (Vv_analysis.Exp_fig1.fig1a ())

let test_e5_firing () =
  check_csv "e5a"
    "delta_P,fires after k votes,paper says\n\
     0,7,7 (Section VII-A)\n\
     1,8,-\n"
    (Vv_analysis.Exp_examples.e5_firing ())

let test_e7_theorem10 () =
  check_csv "e7b"
    "t,lax (t-1) violates,strict (t) safe\n\
     1,yes,yes\n\
     2,yes,yes\n\
     3,yes,yes\n"
    (Vv_analysis.Exp_bounds.e7_theorem10 ())

let test_e10_third_option () =
  check_csv "e10b"
    "honest inputs,B_G,C_G,bound (t=3),N,term,valid\n\
     A*9 B*4      (hesitant voters all pick B),4,0,14,16,yes,yes\n\
     \"A*9 B*2 C,D  (two hesitant voters pick third options)\",2,2,12,16,yes,yes\n"
    (Vv_analysis.Exp_bounds.e10_third_option ())

let test_e11 () =
  check_csv "e11"
    "delta_P,quorum,decisive: term,decisive: valid,tie attack: term,tie \
     attack: tb-valid\n\
     0,N-t,yes,yes,yes,no\n\
     0,t+1,yes,yes,yes,no\n\
     1,N-t,yes,yes,yes,no\n\
     1,t+1,yes,yes,yes,no\n\
     2,N-t,yes,yes,no,yes\n\
     2,t+1,yes,yes,no,yes\n\
     3,N-t,no,yes,no,yes\n\
     3,t+1,no,yes,no,yes\n\
     4,N-t,no,yes,no,yes\n\
     4,t+1,no,yes,no,yes\n\
     5,N-t,no,yes,no,yes\n\
     5,t+1,no,yes,no,yes\n"
    (Vv_analysis.Exp_bounds.e11_judgment_ablation ())

(* A pinned end-to-end protocol run: outputs, round and message counts. *)
let test_pinned_run () =
  let r =
    Vv_core.Runner.simple ~protocol:Vv_core.Runner.Algo1
      ~strategy:Vv_core.Strategy.Collude_second ~t:1 ~f:1
      (List.map Vv_ballot.Option_id.of_int [ 0; 0; 0; 0; 0; 1 ])
  in
  (* Every honest node decides in round index 6, so 7 rounds execute
     (rounds_used counts executed rounds — see engine.ml's convention). *)
  Alcotest.(check int) "rounds" 7 r.Vv_core.Runner.rounds;
  Alcotest.(check int) "honest msgs" 126 r.Vv_core.Runner.honest_msgs;
  Alcotest.(check int) "byz msgs" 7 r.Vv_core.Runner.byz_msgs;
  Alcotest.(check (list (option int)))
    "decision rounds"
    (List.init 6 (fun _ -> Some 6))
    r.Vv_core.Runner.decision_rounds

let test_pinned_exact_cell () =
  let dist = Vv_dist.Profiles.(distribution d2) in
  let p = Vv_dist.Exact.pr_voting_validity dist ~t:2 in
  Alcotest.(check (float 1e-10)) "D2 t=2 cell" 0.5582 (Float.round (p *. 1e4) /. 1e4)

let () =
  Alcotest.run "golden"
    [
      ( "tables",
        [
          Alcotest.test_case "fig1a" `Quick test_fig1a;
          Alcotest.test_case "e5 firing point" `Quick test_e5_firing;
          Alcotest.test_case "e7 theorem 10" `Quick test_e7_theorem10;
          Alcotest.test_case "e10 third option" `Quick test_e10_third_option;
          Alcotest.test_case "e11 ablation" `Quick test_e11;
        ] );
      ( "runs",
        [
          Alcotest.test_case "pinned algo1 run" `Quick test_pinned_run;
          Alcotest.test_case "pinned fig1b cell" `Quick test_pinned_exact_cell;
        ] );
    ]
