(* Tests of the batch execution layer: the enumeration cache against the
   uncached oracle, chunk-size-independent determinism of batch summaries,
   the structured trace against the outcome it summarises, and
   invalid-adversary accounting. *)

module Exact = Vv_dist.Exact
module Cache = Vv_dist.Cache
module Multinomial = Vv_dist.Multinomial
module Runner = Vv_core.Runner
module Strategy = Vv_core.Strategy
module Executor = Vv_exec.Executor
module Summary = Vv_exec.Summary
module Emit = Vv_exec.Emit
module Json = Vv_prelude.Json
module Oid = Vv_ballot.Option_id
module Trace = Vv_sim.Trace

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

(* --- cache vs uncached oracle --- *)

(* Random (n, probs, threshold) with n <= 12 and 2..4 options; probs from
   integer weights so they sum to 1 within Multinomial.create's 1e-9. *)
let dist_query_gen =
  QCheck.Gen.(
    int_range 1 12 >>= fun n ->
    int_range 2 4 >>= fun m ->
    list_repeat m (int_range 1 9) >>= fun weights ->
    int_range (-1) (n + 1) >>= fun threshold ->
    let total = float_of_int (List.fold_left ( + ) 0 weights) in
    let p =
      Array.of_list (List.map (fun w -> float_of_int w /. total) weights)
    in
    return (n, p, threshold))

let dist_query_print (n, p, threshold) =
  Fmt.str "n=%d p=[%a] threshold=%d" n
    Fmt.(array ~sep:comma float)
    p threshold

let prop_cache_matches_exact =
  QCheck.Test.make ~count:200 ~name:"Cache.pr_gap_gt = Exact.pr_gap_gt"
    (QCheck.make ~print:dist_query_print dist_query_gen)
    (fun (n, p, threshold) ->
      let dist = Multinomial.create ~n ~p in
      let cached = Cache.pr_gap_gt dist ~threshold in
      let uncached = Exact.pr_gap_gt dist ~threshold in
      Float.abs (cached -. uncached) < 1e-9)

let test_cache_hit_accounting () =
  Cache.clear ();
  let dist = Vv_dist.Profiles.(distribution d2) in
  for t = 0 to 4 do
    ignore (Cache.pr_voting_validity dist ~t)
  done;
  let s = Cache.stats () in
  check_int "one enumeration" 1 s.Cache.misses;
  check_int "four O(1) lookups" 4 s.Cache.hits;
  check_int "one entry" 1 s.Cache.entries;
  (* The gap distribution itself is served from the same entry. *)
  let pmf = Cache.gap_distribution dist in
  check_int "pmf length n+1" (Multinomial.n dist + 1) (Array.length pmf);
  check_int "still one entry" 1 (Cache.stats ()).Cache.entries;
  Cache.clear ();
  check_int "cleared" 0 (Cache.stats ()).Cache.entries

let test_cache_edge_thresholds () =
  let dist = Multinomial.create ~n:6 ~p:[| 0.5; 0.5 |] in
  check (Alcotest.float 0.0) "threshold < 0 is certain" 1.0
    (Cache.pr_gap_gt dist ~threshold:(-1));
  check (Alcotest.float 0.0) "threshold >= n is impossible" 0.0
    (Cache.pr_gap_gt dist ~threshold:6)

(* Regression for the key canonicalisation: keys are the probabilities'
   IEEE-754 bits with -0.0 normalised to 0.0, so equal-valued
   distributions — including ones that spell a zero-mass tail cell 0.0 vs
   -0.0 — always share one entry, independent of float-comparison and
   hashing quirks of the previous raw [float list] key. *)
let test_cache_key_canonical () =
  Cache.clear ();
  let q p = ignore (Cache.pr_gap_gt (Multinomial.create ~n:8 ~p) ~threshold:2) in
  q [| 0.6; 0.4; 0.0 |];
  q [| 0.6; 0.4; -0.0 |];
  (* A fresh, independently built but equal-valued vector also hits. *)
  q [| 3.0 /. 5.0; 2.0 /. 5.0; 0.0 |];
  let s = Cache.stats () in
  check_int "one enumeration for the three spellings" 1 s.Cache.misses;
  check_int "two hits" 2 s.Cache.hits;
  check_int "one entry" 1 s.Cache.entries;
  (* Genuinely different parameters still miss. *)
  q [| 0.4; 0.6; 0.0 |];
  check_int "distinct values get their own entry" 2 (Cache.stats ()).Cache.entries;
  Cache.clear ()

(* --- batch determinism across chunk sizes --- *)

let batch_spec =
  Runner.simple_spec ~protocol:Runner.Algo1 ~strategy:Strategy.Collude_second
    ~t:1 ~f:1
    (List.map Oid.of_int [ 0; 0; 0; 1; 2 ])

let test_chunk_size_invariance () =
  let summary chunk_size =
    Executor.run_trials ~chunk_size ~trials:40 ~seed:0xbadc batch_spec
  in
  let reference = Json.to_string (Summary.to_json (summary 1)) in
  List.iter
    (fun chunk_size ->
      check Alcotest.string
        (Fmt.str "chunk_size=%d byte-identical" chunk_size)
        reference
        (Json.to_string (Summary.to_json (summary chunk_size))))
    [ 3; 7; 40; 1000 ];
  (* And the runs actually did something. *)
  let s = summary 7 in
  check_int "all trials ran" 40 s.Summary.total;
  check_bool "some successes" true (s.Summary.successes > 0)

let test_generator_order_and_progress () =
  let seen = ref [] in
  let ticks = ref [] in
  let s =
    Executor.run_generator ~chunk_size:4 ~seed:7
      ~on_progress:(fun p -> ticks := p.Executor.done_ :: !ticks)
      ~count:10
      (fun i ->
        seen := i :: !seen;
        batch_spec)
  in
  check (Alcotest.list Alcotest.int) "generator called in index order"
    (List.init 10 Fun.id) (List.rev !seen);
  check (Alcotest.list Alcotest.int) "progress after each chunk" [ 4; 8; 10 ]
    (List.rev !ticks);
  check_int "total" 10 s.Summary.total

let test_derive_seed_depends_only_on_index () =
  List.iter
    (fun i ->
      check_int "stable" (Executor.derive_seed ~seed:42 i)
        (Executor.derive_seed ~seed:42 i))
    [ 0; 1; 5; 100 ];
  check_bool "distinct indices differ" true
    (Executor.derive_seed ~seed:42 0 <> Executor.derive_seed ~seed:42 1);
  check_bool "distinct seeds differ" true
    (Executor.derive_seed ~seed:1 3 <> Executor.derive_seed ~seed:2 3)

(* Regression for the old [seed lxor (i * 0x9E3779B9)] mix: any pair
   [(s, i)] and [(s lxor (i * c) lxor (j * c), j)] collapsed to the same
   pre-hash value and therefore the same stream — e.g. index 1 under seed
   [s] equalled index 0 under seed [s lxor c].  The splitmix-of-splitmix
   derivation hashes the seed before the index is folded in, so no xor
   algebra on the inputs lines the streams up. *)
let test_derive_seed_no_xor_collisions () =
  let c = 0x9E3779B9 in
  List.iter
    (fun s ->
      check_bool "index 1 vs shifted seed at index 0" true
        (Executor.derive_seed ~seed:s 1
        <> Executor.derive_seed ~seed:(s lxor c) 0);
      check_bool "index 2 vs shifted seed at index 1" true
        (Executor.derive_seed ~seed:s 2
        <> Executor.derive_seed ~seed:(s lxor (2 * c) lxor c) 1))
    [ 0; 1; 42; 0x5eed; max_int ]

(* The derivation is part of the reproducibility contract: batches logged
   in EXPERIMENTS.md must replay bit-for-bit, so the exact values are
   pinned. *)
let test_derive_seed_golden () =
  List.iter
    (fun (seed, i, expect) ->
      check_int (Fmt.str "derive_seed ~seed:%d %d" seed i) expect
        (Executor.derive_seed ~seed i))
    [
      (42, 0, 2375575238713981129);
      (42, 1, 199654906051158098);
      (42, 2, 4588304528281974559);
      (0x5eed, 100, 1301434136221258189);
      (0, 0, 2080277311359033222);
    ]

let test_summary_merge_unit_and_commutative () =
  let s =
    Executor.run_trials ~chunk_size:5 ~trials:12 ~seed:9 batch_spec
  in
  let js x = Json.to_string (Summary.to_json x) in
  check Alcotest.string "empty is left unit" (js s)
    (js (Summary.merge Summary.empty s));
  check Alcotest.string "empty is right unit" (js s)
    (js (Summary.merge s Summary.empty));
  let a =
    Executor.run_trials ~chunk_size:5 ~trials:5 ~seed:11 batch_spec
  in
  check Alcotest.string "merge commutes" (js (Summary.merge a s))
    (js (Summary.merge s a))

(* --- domain-pool execution --- *)

let summary_bytes s = Json.to_string (Summary.to_json s)

(* Byte-identical summaries at every (jobs, chunk_size): the executor's
   central determinism promise, and the suite `make check-parallel` runs. *)
let test_jobs_invariance () =
  let reference =
    summary_bytes (Executor.run_trials ~jobs:1 ~trials:60 ~seed:0x90b5 batch_spec)
  in
  List.iter
    (fun (jobs, chunk_size) ->
      check Alcotest.string
        (Fmt.str "jobs=%d chunk_size=%d byte-identical" jobs chunk_size)
        reference
        (summary_bytes
           (Executor.run_trials ~jobs ~chunk_size ~trials:60 ~seed:0x90b5
              batch_spec)))
    [ (1, 5); (2, 64); (2, 7); (4, 64); (4, 1); (4, 13) ]

let prop_jobs_and_chunks_invariant =
  QCheck.Test.make ~count:12
    ~name:"run_trials byte-identical across jobs and chunk_size"
    QCheck.(
      make
        ~print:(fun (j, c, n) -> Fmt.str "jobs=%d chunk=%d trials=%d" j c n)
        Gen.(
          triple (int_range 1 4) (int_range 1 40) (int_range 5 30)))
    (fun (jobs, chunk_size, trials) ->
      let seq =
        summary_bytes (Executor.run_trials ~jobs:1 ~trials ~seed:0xfeed batch_spec)
      in
      let par =
        summary_bytes
          (Executor.run_trials ~jobs ~chunk_size ~trials ~seed:0xfeed batch_spec)
      in
      String.equal seq par)

(* With a stateful generator (shared rng drawn inside gen), results must
   still match, because the generator is drained in index order on the
   calling domain before workers start. *)
let test_jobs_invariance_stateful_generator () =
  let summary jobs =
    let rng = Vv_prelude.Rng.create 0xf1b2 in
    Executor.run_generator ~jobs ~chunk_size:8 ~count:40 (fun _ ->
        let honest =
          Vv_dist.Montecarlo.sample_inputs
            Vv_dist.Profiles.(distribution d2)
            rng
        in
        Runner.simple_spec ~protocol:Runner.Algo1
          ~strategy:Strategy.Collude_second ~t:1 ~f:1
          ~seed:(Vv_prelude.Rng.bits rng) honest)
  in
  let reference = summary_bytes (summary 1) in
  List.iter
    (fun jobs ->
      check Alcotest.string
        (Fmt.str "stateful generator, jobs=%d" jobs)
        reference
        (summary_bytes (summary jobs)))
    [ 2; 4 ]

let test_parallel_progress_monotone () =
  let ticks = ref [] in
  let s =
    Executor.run_generator ~jobs:4 ~chunk_size:5 ~seed:5
      ~on_progress:(fun p -> ticks := p.Executor.done_ :: !ticks)
      ~count:37
      (fun _ -> batch_spec)
  in
  check_int "all instances ran" 37 s.Summary.total;
  let ticks = List.rev !ticks in
  check_bool "at least one tick" true (ticks <> []);
  check_int "last tick reports completion" 37 (List.nth ticks (List.length ticks - 1));
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  check_bool "ticks non-decreasing" true (monotone ticks)

let test_jobs_validation () =
  Alcotest.check_raises "negative jobs"
    (Invalid_argument "Executor: negative jobs") (fun () ->
      ignore (Executor.run_trials ~jobs:(-1) ~trials:3 ~seed:1 batch_spec));
  (* jobs=0 resolves to "cores - 1" and must still run. *)
  let s = Executor.run_trials ~jobs:0 ~trials:5 ~seed:1 batch_spec in
  check_int "jobs=0 runs everything" 5 s.Summary.total

(* Concurrent cache queries from several domains agree with the uncached
   oracle, and racing first queries never duplicate entries. *)
let test_cache_parallel_stress () =
  Cache.clear ();
  let dists =
    List.map
      (fun p -> Multinomial.create ~n:9 ~p)
      [
        [| 0.7; 0.1; 0.1; 0.1 |];
        [| 0.55; 0.25; 0.1; 0.1 |];
        [| 0.4; 0.3; 0.2; 0.1 |];
        [| 0.25; 0.25; 0.25; 0.25 |];
        [| 0.5; 0.5 |];
        [| 0.6; 0.4; 0.0 |];
      ]
  in
  let thresholds = [ -1; 0; 1; 2; 5; 9 ] in
  let oracle =
    List.map
      (fun d -> List.map (fun t -> Exact.pr_gap_gt d ~threshold:t) thresholds)
      dists
  in
  let rounds = 5 in
  let worker () =
    let ok = ref true in
    for _ = 1 to rounds do
      List.iter2
        (fun d expected ->
          List.iter2
            (fun t e ->
              if Float.abs (Cache.pr_gap_gt d ~threshold:t -. e) >= 1e-9 then
                ok := false)
            thresholds expected)
        dists oracle
    done;
    !ok
  in
  let domains = Array.init 4 (fun _ -> Domain.spawn worker) in
  let agree = Array.for_all Fun.id (Array.map Domain.join domains) in
  check_bool "all domains agree with the Exact oracle" true agree;
  let s = Cache.stats () in
  check_int "no duplicate entries under racing inserts"
    (List.length dists) s.Cache.entries;
  check_int "every query accounted as hit or miss"
    (4 * rounds * List.length dists * List.length thresholds)
    (s.Cache.hits + s.Cache.misses);
  Cache.clear ()

(* --- trace vs outcome --- *)

let test_trace_consistent_with_outcome () =
  let o =
    Runner.simple ~protocol:Runner.Algo1 ~strategy:Strategy.Collude_second
      ~t:1 ~f:1
      (List.map Oid.of_int [ 0; 0; 0; 1; 2 ])
  in
  let tr = o.Runner.trace in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 tr.Trace.rounds in
  check_int "per-round honest sends sum to the total" tr.Trace.honest_msgs
    (sum (fun r -> r.Trace.honest_sent));
  check_int "per-round byz sends sum to the total" tr.Trace.byz_msgs
    (sum (fun r -> r.Trace.byz_sent));
  check_int "outcome honest msgs come from the trace" o.Runner.honest_msgs
    tr.Trace.honest_msgs;
  check_int "outcome byz msgs come from the trace" o.Runner.byz_msgs
    tr.Trace.byz_msgs;
  check_int "every executed round is recorded" o.Runner.rounds
    tr.Trace.total_rounds;
  check_bool "stall flag matches" o.Runner.stalled tr.Trace.stalled;
  (* decide_rounds agrees with the outcome's per-node decision rounds
     (honest ids are 0..ng-1 under simple_spec). *)
  List.iteri
    (fun id dr ->
      check (Alcotest.option Alcotest.int)
        (Fmt.str "decide round of node %d" id)
        dr
        (Trace.decide_round tr id))
    o.Runner.decision_rounds;
  (* Phase transitions were recorded from round 0 and end decided. *)
  (match Trace.phases_of tr 0 with
  | [] -> Alcotest.fail "no phase events for node 0"
  | first :: _ as evs ->
      check_int "first phase at round 0" 0 first.Trace.at_round;
      let last = List.nth evs (List.length evs - 1) in
      check Alcotest.string "terminal phase" "decided" last.Trace.phase);
  (* CSV emitter: one header plus one line per executed round. *)
  let lines =
    String.split_on_char '\n' (String.trim (Trace.to_csv tr))
  in
  check_int "csv lines" (tr.Trace.total_rounds + 1) (List.length lines);
  check Alcotest.string "csv header" Trace.csv_header (List.hd lines)

(* --- invalid adversary accounting --- *)

let equivocation_spec =
  (* Split_top2 equivocates per recipient; under Algorithm 4's local
     broadcast model the engine rejects it. *)
  Runner.simple_spec ~protocol:Runner.Algo4_local ~strategy:Strategy.Split_top2
    ~t:1 ~f:1
    (List.map Oid.of_int [ 0; 0; 0; 1; 2 ])

let test_invalid_adversary_counted () =
  (match Runner.run_checked equivocation_spec with
  | Error (`Invalid_adversary _) -> ()
  | Ok _ -> Alcotest.fail "expected Invalid_adversary from run_checked");
  let s = Executor.run_trials ~chunk_size:2 ~trials:5 ~seed:3 equivocation_spec in
  check_int "all runs counted" 5 s.Summary.total;
  check_int "all flagged invalid" 5 s.Summary.invalid_adversary;
  check_int "none terminated" 0 s.Summary.terminated

(* --- emit formats --- *)

let test_emit_round_trip () =
  List.iter
    (fun f ->
      match Emit.of_string (Emit.to_string f) with
      | Some f' -> check_bool "round-trips" true (f = f')
      | None -> Alcotest.fail "of_string failed")
    Emit.all;
  check_bool "unknown rejected" true (Emit.of_string "xml" = None)

(* A table whose cells exercise every CSV quoting branch: commas, quotes,
   newlines, their combinations, and the unquoted plain/empty cases. *)
let gnarly_table () =
  let t =
    Vv_prelude.Table.create ~title:"gnarly"
      ~headers:[ "plain"; "comma,head"; "quote\"head" ]
      ()
  in
  Vv_prelude.Table.add_row t [ "a"; "x,y"; "say \"hi\"" ];
  Vv_prelude.Table.add_row t [ "line\nbreak"; ""; "both,\"and\"\nmore" ];
  t

let test_csv_escaping () =
  check Alcotest.string "rfc4180 quoting"
    ("plain,\"comma,head\",\"quote\"\"head\"\n"
   ^ "a,\"x,y\",\"say \"\"hi\"\"\"\n"
   ^ "\"line\nbreak\",,\"both,\"\"and\"\"\nmore\"\n")
    (Vv_prelude.Table.to_csv (gnarly_table ()))

(* [Emit.tables_string Json] must be ONE top-level JSON value (an array),
   not a stream of objects — consumers parse the report with a single
   [json.load].  The invariant is structural: exactly one '\n', at the
   end, and the payload is '[' ... ']'. *)
let test_json_one_top_level_value () =
  List.iter
    (fun tbls ->
      let s = Emit.tables_string Emit.Json tbls in
      let n = String.length s in
      check_bool "ends with newline" true (n > 0 && s.[n - 1] = '\n');
      let body = String.sub s 0 (n - 1) in
      check_bool "no interior newline" true
        (not (String.contains body '\n'));
      check_bool "top-level array" true
        (String.length body >= 2
        && body.[0] = '['
        && body.[String.length body - 1] = ']'))
    [ []; [ gnarly_table () ]; [ gnarly_table (); gnarly_table () ] ]

(* The string renderers are the CLI's source of truth for --out: check
   they agree with the printing formatter (Table) and the direct CSV
   rendering, and that concatenation over a list matches per-table
   rendering for the text formats. *)
let test_emit_strings_agree () =
  let t = gnarly_table () in
  check Alcotest.string "table = pp"
    (Format.asprintf "%a" Vv_prelude.Table.pp t)
    (Emit.table_string Emit.Table t);
  check Alcotest.string "csv = to_csv" (Vv_prelude.Table.to_csv t)
    (Emit.table_string Emit.Csv t);
  List.iter
    (fun fmt ->
      check Alcotest.string "tables = concat of table"
        (String.concat "" (List.map (Emit.table_string fmt) [ t; t ]))
        (Emit.tables_string fmt [ t; t ]))
    [ Emit.Table; Emit.Csv ]

let () =
  Alcotest.run "exec"
    [
      ( "cache",
        [
          QCheck_alcotest.to_alcotest prop_cache_matches_exact;
          Alcotest.test_case "hit/miss accounting" `Quick
            test_cache_hit_accounting;
          Alcotest.test_case "edge thresholds" `Quick
            test_cache_edge_thresholds;
          Alcotest.test_case "key canonicalisation (regression)" `Quick
            test_cache_key_canonical;
        ] );
      ( "executor",
        [
          Alcotest.test_case "chunk-size invariance (byte-identical)" `Quick
            test_chunk_size_invariance;
          Alcotest.test_case "generator order and progress" `Quick
            test_generator_order_and_progress;
          Alcotest.test_case "derived seeds" `Quick
            test_derive_seed_depends_only_on_index;
          Alcotest.test_case "derived seeds: no xor collisions (regression)"
            `Quick test_derive_seed_no_xor_collisions;
          Alcotest.test_case "derived seeds: golden values" `Quick
            test_derive_seed_golden;
          Alcotest.test_case "summary merge laws" `Quick
            test_summary_merge_unit_and_commutative;
          Alcotest.test_case "invalid adversary counted" `Quick
            test_invalid_adversary_counted;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "jobs invariance (byte-identical)" `Quick
            test_jobs_invariance;
          QCheck_alcotest.to_alcotest prop_jobs_and_chunks_invariant;
          Alcotest.test_case "stateful generator across jobs" `Quick
            test_jobs_invariance_stateful_generator;
          Alcotest.test_case "progress monotone under domains" `Quick
            test_parallel_progress_monotone;
          Alcotest.test_case "jobs validation and jobs=0" `Quick
            test_jobs_validation;
          Alcotest.test_case "cache stress across domains" `Quick
            test_cache_parallel_stress;
        ] );
      ( "trace",
        [
          Alcotest.test_case "trace consistent with outcome" `Quick
            test_trace_consistent_with_outcome;
        ] );
      ( "emit",
        [
          Alcotest.test_case "format round-trip" `Quick test_emit_round_trip;
          Alcotest.test_case "csv escaping" `Quick test_csv_escaping;
          Alcotest.test_case "json: one top-level value" `Quick
            test_json_one_top_level_value;
          Alcotest.test_case "string renderers agree" `Quick
            test_emit_strings_agree;
        ] );
    ]
