(** Minimal JSON tree, printer and parser for the machine-readable
    emitters (run traces, batch summaries, tables) and the tools that read
    them back (the bench regression gate). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) JSON. [Float] values with no JSON representation
    (NaN, infinities) print as [null]. *)

val pp : Format.formatter -> t -> unit

val of_int_option : int option -> t
(** [None] is [Null]. *)

val of_histogram : (int * int) list -> t
(** A [(value, count)] histogram as a list of two-element arrays. *)

val of_string : string -> (t, string) result
(** Parse one JSON document. [\uXXXX] escapes decode to UTF-8 — surrogate
    pairs combine into one non-BMP code point, lone surrogates are an
    error. Numbers without fraction or exponent parse as [Int], the rest
    as [Float]. [Error] carries a message with the byte offset. *)
