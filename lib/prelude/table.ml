(* Aligned plain-text tables and CSV-like series, used by the bench harness
   to print every figure/table of the paper as rows the reader can diff. *)

type align = Left | Right

type t = {
  title : string;
  headers : string list;
  aligns : align list;
  mutable rows : string list list; (* reversed *)
}

let create ~title ~headers ?aligns () =
  let aligns =
    match aligns with
    | Some a ->
        if List.length a <> List.length headers then
          invalid_arg "Table.create: aligns/headers length mismatch";
        a
    | None -> List.map (fun _ -> Right) headers
  in
  { title; headers; aligns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.headers then
    invalid_arg "Table.add_row: wrong arity";
  t.rows <- row :: t.rows

let rows t = List.rev t.rows

let cell_widths t =
  let all = t.headers :: rows t in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  let note row =
    List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) row
  in
  List.iter note all;
  widths

let pad align width s =
  let missing = width - String.length s in
  if missing <= 0 then s
  else
    match align with
    | Left -> s ^ String.make missing ' '
    | Right -> String.make missing ' ' ^ s

let pp ppf t =
  let widths = cell_widths t in
  let line row =
    let cells =
      List.mapi
        (fun i c ->
          let a = List.nth t.aligns i in
          pad a widths.(i) c)
        row
    in
    String.concat "  " cells
  in
  let rule =
    String.concat "--"
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  Fmt.pf ppf "== %s ==@." t.title;
  Fmt.pf ppf "%s@." (line t.headers);
  Fmt.pf ppf "%s@." rule;
  List.iter (fun r -> Fmt.pf ppf "%s@." (line r)) (rows t)

let print t = pp Fmt.stdout t

let to_csv t =
  let quote s =
    if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
      "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
    else s
  in
  let line row = String.concat "," (List.map quote row) in
  String.concat "\n" (line t.headers :: List.map line (rows t)) ^ "\n"

let title t = t.title

let to_json t =
  Json.Obj
    [
      ("title", Json.String t.title);
      ("headers", Json.List (List.map (fun h -> Json.String h) t.headers));
      ( "rows",
        Json.List
          (List.map
             (fun r -> Json.List (List.map (fun c -> Json.String c) r))
             (rows t)) );
    ]

let fcell ?(decimals = 4) v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.*f" decimals v

let icell = string_of_int
let bcell b = if b then "yes" else "no"
