(** Deterministic splitmix64 pseudo-random number generator.

    All randomness in the library flows through this module so that every
    simulation and experiment is reproducible bit-for-bit from its seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] advances [t] and returns a statistically independent stream;
    useful to give each simulated node its own generator. *)

val bits : t -> int
(** [bits t] is a uniform non-negative 62-bit integer. *)

val derive : int -> int -> int
(** [derive seed i] is the deterministic child seed for index [i] under
    base [seed]: two independent splitmix64 avalanche steps, so distinct
    [(seed, i)] pairs do not collide under simple xor algebra. Chain it to
    build seed trees ([derive (derive seed slot) attempt]) whose leaves do
    not depend on how many draws any sibling stream consumed. The batch
    executor's per-instance seeding ({!Vv_exec.Executor.derive_seed}) is
    exactly this function. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument] if
    [bound <= 0]. *)

val float : t -> float
(** [float t] is uniform in [\[0, 1)] with 53 bits of precision. *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choose : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val sample_without_replacement : t -> k:int -> n:int -> int list
(** [sample_without_replacement t ~k ~n] draws [k] distinct indices from
    [\[0, n)]. *)

val categorical : t -> float array -> int
(** [categorical t p] draws index [i] with probability [p.(i)] (after
    renormalisation). The returned index always has [p.(i) > 0]: when
    floating-point rounding pushes the draw past the accumulated mass, the
    fallback is the last positive-probability cell, never a zero-mass tail
    cell. Raises [Invalid_argument] on non-positive total mass. *)
