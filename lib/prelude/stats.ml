let mean = function
  | [] -> invalid_arg "Stats.mean: empty list"
  | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let variance l =
  match l with
  | [] | [ _ ] -> 0.0
  | l ->
      let m = mean l in
      let n = float_of_int (List.length l) in
      List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 l /. (n -. 1.0)

let stddev l = sqrt (variance l)

let sorted_of l = List.sort compare l

let median l =
  match sorted_of l with
  | [] -> invalid_arg "Stats.median: empty list"
  | s ->
      let n = List.length s in
      if n mod 2 = 1 then List.nth s (n / 2)
      else (List.nth s ((n / 2) - 1) +. List.nth s (n / 2)) /. 2.0

let percentile l p =
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p outside [0,100]";
  match sorted_of l with
  | [] -> invalid_arg "Stats.percentile: empty list"
  | s ->
      let n = List.length s in
      let rank = p /. 100.0 *. float_of_int (n - 1) in
      let lo = int_of_float (floor rank) in
      let hi = int_of_float (ceil rank) in
      if lo = hi then List.nth s lo
      else
        let w = rank -. float_of_int lo in
        ((1.0 -. w) *. List.nth s lo) +. (w *. List.nth s hi)

let min_max = function
  | [] -> invalid_arg "Stats.min_max: empty list"
  | x :: rest ->
      List.fold_left (fun (lo, hi) v -> (min lo v, max hi v)) (x, x) rest

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  median : float;
  max : float;
}

let summarize l =
  let lo, hi = min_max l in
  {
    n = List.length l;
    mean = mean l;
    stddev = stddev l;
    min = lo;
    median = median l;
    max = hi;
  }

let pp_summary ppf s =
  Fmt.pf ppf "n=%d mean=%.3f sd=%.3f min=%.3f med=%.3f max=%.3f" s.n s.mean
    s.stddev s.min s.median s.max

type histogram = { counts : int array; under : int; over : int }

let histogram_total h =
  Array.fold_left ( + ) (h.under + h.over) h.counts

let histogram ~bins ~lo ~hi values =
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  if hi <= lo then invalid_arg "Stats.histogram: hi must exceed lo";
  let counts = Array.make bins 0 in
  let under = ref 0 and over = ref 0 in
  let width = (hi -. lo) /. float_of_int bins in
  let place v =
    if v < lo then incr under
    else if v > hi then incr over
    else if v = hi then
      (* The closed upper edge belongs to the last bin by construction, not
         by relying on the float division landing on [bins] exactly. *)
      counts.(bins - 1) <- counts.(bins - 1) + 1
    else begin
      let i = int_of_float ((v -. lo) /. width) in
      (* Guard against float rounding pushing an in-range value past the
         last bin (e.g. when [width] rounds down). *)
      let i = if i >= bins then bins - 1 else i in
      counts.(i) <- counts.(i) + 1
    end
  in
  List.iter place values;
  { counts; under = !under; over = !over }

(* Pearson chi-square statistic of observed counts against expected cell
   probabilities.  Cells with zero expectation must have zero observations
   (raises otherwise). *)
let chi_square ~observed ~expected_probs =
  let k = Array.length observed in
  if Array.length expected_probs <> k then
    invalid_arg "Stats.chi_square: arity mismatch";
  let trials = float_of_int (Array.fold_left ( + ) 0 observed) in
  if trials <= 0.0 then invalid_arg "Stats.chi_square: no observations";
  let stat = ref 0.0 in
  Array.iteri
    (fun i o ->
      let e = expected_probs.(i) *. trials in
      if e <= 0.0 then begin
        if o > 0 then
          invalid_arg "Stats.chi_square: observation in zero-probability cell"
      end
      else stat := !stat +. (((float_of_int o -. e) ** 2.0) /. e))
    observed;
  !stat

(* Upper critical values of the chi-square distribution at significance
   0.001, for 1..30 degrees of freedom (Abramowitz & Stegun table).  Used
   by the statistical self-tests: exceeding this is a one-in-a-thousand
   event for a correct sampler. *)
let chi_square_critical_999 = [|
  10.828; 13.816; 16.266; 18.467; 20.515; 22.458; 24.322; 26.124; 27.877;
  29.588; 31.264; 32.909; 34.528; 36.123; 37.697; 39.252; 40.790; 42.312;
  43.820; 45.315; 46.797; 48.268; 49.728; 51.179; 52.620; 54.052; 55.476;
  56.892; 58.301; 59.703;
|]

let chi_square_fits ~observed ~expected_probs =
  let nonzero =
    Array.fold_left
      (fun acc p -> if p > 0.0 then acc + 1 else acc)
      0 expected_probs
  in
  let dof = nonzero - 1 in
  if dof < 1 || dof > Array.length chi_square_critical_999 then
    invalid_arg "Stats.chi_square_fits: dof out of table range";
  chi_square ~observed ~expected_probs <= chi_square_critical_999.(dof - 1)

let binomial_confidence ~successes ~trials =
  (* Normal-approximation 95% confidence half-width for a proportion. *)
  if trials <= 0 then invalid_arg "Stats.binomial_confidence";
  let p = float_of_int successes /. float_of_int trials in
  let half = 1.96 *. sqrt (p *. (1.0 -. p) /. float_of_int trials) in
  (p, half)
