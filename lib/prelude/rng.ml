(* Splitmix64: a small, fast, high-quality deterministic PRNG.  We avoid
   [Stdlib.Random] so that every simulation in this repository is
   reproducible bit-for-bit across OCaml versions and runs. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let golden_gamma = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  (* Derive an independent stream: a fresh generator seeded from this one. *)
  { state = next_int64 t }

let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

(* Two independent splitmix64 steps: hash the base seed on its own, fold
   the index into that hash, hash again.  Each step is a full 64-bit
   avalanche, so distinct (seed, index) pairs collide only if
   [hash(s1) lxor i1 = hash(s2) lxor i2] — unlike a plain
   [seed lxor (i * const)] mix.  Chaining [derive] builds seed trees
   (batch instance seeds, ledger slot/attempt seeds) whose leaves are
   independent of how many draws any sibling consumed. *)
let derive seed i = bits (create (bits (create seed) lxor i))

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let rec go () =
    let r = bits t in
    let v = r mod bound in
    if r - v + (bound - 1) < 0 then go () else v
  in
  go ()

let float t =
  (* 53 random bits mapped to [0, 1). *)
  let b = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int b *. (1.0 /. 9007199254740992.0)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t l =
  match l with
  | [] -> invalid_arg "Rng.choose: empty list"
  | l -> List.nth l (int t (List.length l))

let sample_without_replacement t ~k ~n =
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement";
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  Array.to_list (Array.sub a 0 k)

let categorical t probabilities =
  (* Draw an index according to the given probability vector.  The vector is
     renormalised defensively so that slightly-off inputs still sample.  The
     fallback for when rounding pushes [u] past the accumulated mass must
     land on a cell that actually carries probability: returning the raw
     last index would sample a zero-probability outcome whenever the vector
     ends in zero-mass cells (e.g. [u = total] after the multiply rounds
     up), so the scan is capped at the last positive cell instead. *)
  let total = Array.fold_left ( +. ) 0.0 probabilities in
  if total <= 0.0 then invalid_arg "Rng.categorical: non-positive mass";
  let u = float t *. total in
  let last_positive =
    let rec find i = if probabilities.(i) > 0.0 then i else find (i - 1) in
    find (Array.length probabilities - 1)
  in
  let rec go i acc =
    if i >= last_positive then last_positive
    else
      let acc = acc +. probabilities.(i) in
      if u < acc then i else go (i + 1) acc
  in
  go 0 0.0
