(** Small descriptive-statistics toolkit used by the experiment harness. *)

val mean : float list -> float
(** Arithmetic mean. Raises [Invalid_argument] on the empty list. *)

val variance : float list -> float
(** Unbiased sample variance; 0 for lists shorter than two elements. *)

val stddev : float list -> float

val median : float list -> float
(** Median (average of the two middle elements for even lengths). *)

val percentile : float list -> float -> float
(** [percentile l p] is the linearly-interpolated [p]-th percentile,
    [p] in [\[0, 100\]]. *)

val min_max : float list -> float * float

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  median : float;
  max : float;
}

val summarize : float list -> summary
val pp_summary : summary Fmt.t

type histogram = {
  counts : int array;  (** in-range counts, one cell per bin *)
  under : int;  (** samples strictly below [lo] *)
  over : int;  (** samples strictly above [hi] *)
}

val histogram : bins:int -> lo:float -> hi:float -> float list -> histogram
(** Fixed-width histogram over the closed interval [\[lo, hi\]].
    Out-of-range samples are never silently dropped: they are reported in
    the [under]/[over] outlier cells, so
    [histogram_total (histogram ... values) = List.length values] always
    holds. The upper edge [v = hi] lands in the last bin by construction. *)

val histogram_total : histogram -> int
(** Total number of samples placed, outliers included. *)

val chi_square : observed:int array -> expected_probs:float array -> float
(** Pearson chi-square statistic. Raises [Invalid_argument] on arity
    mismatch, zero observations, or observations in zero-probability
    cells. *)

val chi_square_fits : observed:int array -> expected_probs:float array -> bool
(** Goodness-of-fit test at significance 0.001 (dof = non-zero cells − 1,
    at most 30): [false] is a one-in-a-thousand event for a correct
    sampler. *)

val binomial_confidence : successes:int -> trials:int -> float * float
(** [(p, half_width)] where [half_width] is the 95% normal-approximation
    confidence half-width of the proportion. *)
