(** Aligned plain-text tables; every reproduced figure/table is printed as
    one of these so results can be compared against the paper by eye or
    by diffing CSV output. *)

type align = Left | Right
type t

val create : title:string -> headers:string list -> ?aligns:align list -> unit -> t
(** A table with a title and column headers. Default alignment is [Right]
    for every column. *)

val add_row : t -> string list -> unit
(** Appends a row. Raises [Invalid_argument] if the arity differs from the
    headers. *)

val rows : t -> string list list
(** Rows in insertion order. *)

val pp : t Fmt.t
val print : t -> unit

val to_csv : t -> string
(** RFC-4180-style CSV rendering (headers first). *)

val title : t -> string

val to_json : t -> Json.t
(** [{title; headers; rows}] with every cell as a string, so all three
    output formats of the CLI render the same data. *)

val fcell : ?decimals:int -> float -> string
(** Format a float cell ([decimals] defaults to 4; integral values print
    without a fractional part). *)

val icell : int -> string
val bcell : bool -> string
