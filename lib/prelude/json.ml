(* A minimal JSON tree and printer, enough for the machine-readable
   emitters (run traces, batch summaries, tables).  Kept dependency-free on
   purpose: output only, no parsing. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Floats print shortest-round-trip style; infinities and NaN have no JSON
   representation, so they degrade to null. *)
let float_repr v =
  if Float.is_nan v || v = Float.infinity || v = Float.neg_infinity then None
  else if Float.is_integer v && Float.abs v < 1e15 then
    Some (Printf.sprintf "%.1f" v)
  else Some (Printf.sprintf "%.12g" v)

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float v -> (
      match float_repr v with
      | None -> Buffer.add_string buf "null"
      | Some s -> Buffer.add_string buf s)
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          emit buf v)
        fields;
      Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  emit buf t;
  Buffer.contents buf

let pp ppf t = Fmt.string ppf (to_string t)

let of_int_option = function None -> Null | Some i -> Int i

let of_histogram h = List (List.map (fun (v, c) -> List [ Int v; Int c ]) h)
