(* A minimal JSON tree, printer and parser, enough for the
   machine-readable emitters (run traces, batch summaries, tables) and the
   tools that read them back (the bench regression gate).  Kept
   dependency-free on purpose. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Floats print shortest-round-trip style; infinities and NaN have no JSON
   representation, so they degrade to null. *)
let float_repr v =
  if Float.is_nan v || v = Float.infinity || v = Float.neg_infinity then None
  else if Float.is_integer v && Float.abs v < 1e15 then
    Some (Printf.sprintf "%.1f" v)
  else Some (Printf.sprintf "%.12g" v)

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float v -> (
      match float_repr v with
      | None -> Buffer.add_string buf "null"
      | Some s -> Buffer.add_string buf s)
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          emit buf v)
        fields;
      Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  emit buf t;
  Buffer.contents buf

let pp ppf t = Fmt.string ppf (to_string t)

let of_int_option = function None -> Null | Some i -> Int i

let of_histogram h = List (List.map (fun (v, c) -> List [ Int v; Int c ]) h)

(* Recursive-descent parser for standard JSON.  [\uXXXX] escapes decode
   to UTF-8, including surrogate pairs for non-BMP code points; lone
   surrogates are an error rather than mangled output.  Numbers parse as
   [Int] when they carry no fraction, exponent or overflow, [Float]
   otherwise. *)
exception Parse_error of string

(* Encode one Unicode scalar value as UTF-8. The parser never passes a
   surrogate here (pairs are combined first, lone halves rejected). *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          match e with
          | '"' | '\\' | '/' -> Buffer.add_char buf e; go ()
          | 'n' -> Buffer.add_char buf '\n'; go ()
          | 'r' -> Buffer.add_char buf '\r'; go ()
          | 't' -> Buffer.add_char buf '\t'; go ()
          | 'b' -> Buffer.add_char buf '\b'; go ()
          | 'f' -> Buffer.add_char buf '\012'; go ()
          | 'u' ->
              (* Exactly four hex digits — [int_of_string "0x…"] would
                 also accept underscores, so validate by hand. *)
              let hex4 () =
                if !pos + 4 > n then fail "truncated \\u escape";
                let digit c =
                  match c with
                  | '0' .. '9' -> Char.code c - Char.code '0'
                  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
                  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
                  | _ -> fail "invalid \\u escape"
                in
                let code =
                  (digit s.[!pos] lsl 12)
                  lor (digit s.[!pos + 1] lsl 8)
                  lor (digit s.[!pos + 2] lsl 4)
                  lor digit s.[!pos + 3]
                in
                pos := !pos + 4;
                code
              in
              let code = hex4 () in
              if code >= 0xD800 && code <= 0xDBFF then begin
                (* High surrogate: the low half must follow immediately as
                   another \u escape; together they name one non-BMP code
                   point. *)
                if
                  not
                    (!pos + 2 <= n && s.[!pos] = '\\' && s.[!pos + 1] = 'u')
                then fail "high surrogate without a following \\u escape";
                pos := !pos + 2;
                let low = hex4 () in
                if low < 0xDC00 || low > 0xDFFF then
                  fail "high surrogate not followed by a low surrogate";
                add_utf8 buf
                  (0x10000 + ((code - 0xD800) lsl 10) + (low - 0xDC00))
              end
              else if code >= 0xDC00 && code <= 0xDFFF then
                fail "lone low surrogate"
              else add_utf8 buf code;
              go ()
          | _ -> fail "invalid escape")
      | c -> Buffer.add_char buf c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    match int_of_string_opt lit with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt lit with
        | Some f -> Float f
        | None -> fail "invalid number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg
