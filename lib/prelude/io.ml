(* Atomic file writes for report and snapshot output.

   Every writer in the CLI and the serve daemon goes through
   [write_atomic]: the payload lands in a sibling temp file first and is
   renamed over the target only after a successful close, so an
   interrupted or failing run never leaves a truncated report or a
   half-written snapshot behind.  Failures come back as [Error] with a
   human-readable message instead of an uncaught [Sys_error]. *)

let write_atomic ~path content =
  let dir = Filename.dirname path in
  let base = Filename.basename path in
  match Filename.temp_file ~temp_dir:dir base ".tmp" with
  | exception Sys_error msg -> Error msg
  | tmp -> (
      let cleanup () = try Sys.remove tmp with Sys_error _ -> () in
      match open_out_bin tmp with
      | exception Sys_error msg ->
          cleanup ();
          Error msg
      | oc -> (
          match
            output_string oc content;
            close_out oc
          with
          | exception Sys_error msg ->
              close_out_noerr oc;
              cleanup ();
              Error msg
          | () -> (
              match Sys.rename tmp path with
              | () -> Ok ()
              | exception Sys_error msg ->
                  cleanup ();
                  Error msg)))
