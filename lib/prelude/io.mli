(** Atomic file writes for reports and snapshots. *)

val write_atomic : path:string -> string -> (unit, string) result
(** [write_atomic ~path content] writes [content] to a unique temp file in
    [path]'s directory and renames it over [path], so the target is never
    observed truncated: it either keeps its previous content or holds the
    complete new payload. [Error] carries the failing [Sys_error] message
    (unwritable directory, full disk, rename failure); the temp file is
    removed on every failure path. *)
