(* Convenience runner for the multi-hop radio voting protocol. *)

open Vv_sim
module Oid = Vv_ballot.Option_id

module E = Engine.Make (Radio_voting)

type outcome = {
  outputs : Oid.t option list;  (* honest, node-id order *)
  honest_inputs : Oid.t list;
  termination : bool;
  agreement : bool;
  voting_validity : bool;
  stalled : bool;
  rounds : int;
  messages : int;
  trace : Trace.snapshot;  (* per-round structured history *)
}

(* Byzantine strategies over the flood message type. *)
type strategy =
  | Passive
  | Originate_second
      (** each Byzantine node floods its own ballot for the honest
          runner-up — the legitimate worst case *)
  | Poison_origin of Types.node_id * int
      (** [(victim, fake_option)]: cast own ballots for the fake option,
          then re-originate a fake copy of the victim's ballot — the relay
          attack first-accept flooding cannot stop beyond one hop ([36]).
          Strikes as soon as the first honest ballot is observed, so the
          fake overtakes true copies two or more hops out. *)

let observed_runner_up ~tie (view : Radio_voting.msg Adversary.view) =
  let ballots = Hashtbl.create 16 in
  for i = 0 to view.Adversary.sent_len - 1 do
    match view.Adversary.sent_msg i with
    | Radio_voting.Flood
        { origin; payload = Radio_voting.Ballot { subject; choice } }
      when view.Adversary.sent_src i = origin
           && not (Hashtbl.mem ballots origin) ->
        Hashtbl.add ballots origin (subject, choice)
    | Radio_voting.Flood _ -> ()
  done;
  let entries =
    Hashtbl.fold (fun o b acc -> (o, b) :: acc) ballots [] |> List.sort compare
  in
  match entries with
  | [] -> None
  | (_, (subject, _)) :: _ ->
      let tally =
        Vv_ballot.Tally.of_list (List.map (fun (_, (_, c)) -> c) entries)
      in
      (match Vv_ballot.Tally.top ~tie tally with
      | Some { Vv_ballot.Tally.a; b = Some b; _ } -> Some (subject, a, b)
      | Some { Vv_ballot.Tally.a; b = None; _ } -> Some (subject, a, a)
      | None -> None)

let adversary_of ~tie = function
  | Passive -> Adversary.passive
  | Originate_second ->
      let target = ref None in
      Adversary.broadcast_each_round ~name:"radio-originate-second"
        ~when_round:(fun _ -> true) (fun ~src view ->
          (match !target with
          | None -> target := observed_runner_up ~tie view
          | Some _ -> ());
          match !target with
          | Some (s, _, second) ->
              Some
                (Radio_voting.Flood
                   {
                     origin = src;
                     payload = Radio_voting.Ballot { subject = s; choice = second };
                   })
          | None -> None)
  | Poison_origin (victim, fake_option) ->
      (* A radio transmits one frame per round: cast the coalition's own
         ballots the round the first honest ballot is observed, then
         re-originate the fake copy of the victim's ballot.  Launched this
         early, the fake overtakes the true copy at every node two or more
         hops from the victim. *)
      let fake = Oid.of_int fake_option in
      let first_ballot = ref None in
      Adversary.named "radio-poison" (fun view ->
          (match !first_ballot with
          | None ->
              for i = 0 to view.Adversary.sent_len - 1 do
                match view.Adversary.sent_msg i with
                | Radio_voting.Flood
                    { payload = Radio_voting.Ballot { subject; _ }; _ }
                  when !first_ballot = None ->
                    first_ballot := Some (view.Adversary.round, subject)
                | Radio_voting.Flood _ -> ()
              done
          | Some _ -> ());
          match !first_ballot with
          | Some (r0, s) when view.Adversary.round = r0 ->
              List.concat_map
                (fun src ->
                  let msg =
                    Radio_voting.Flood
                      {
                        origin = src;
                        payload = Radio_voting.Ballot { subject = s; choice = fake };
                      }
                  in
                  List.map
                    (fun dst -> { Adversary.src; dst; msg })
                    (view.Adversary.reach src))
                view.Adversary.byzantine
          | Some (r0, s) when view.Adversary.round = r0 + 1 ->
              List.concat_map
                (fun src ->
                  let msg =
                    Radio_voting.Flood
                      {
                        origin = victim;
                        payload = Radio_voting.Ballot { subject = s; choice = fake };
                      }
                  in
                  List.map
                    (fun dst -> { Adversary.src; dst; msg })
                    (view.Adversary.reach src))
                view.Adversary.byzantine
          | _ -> [])

let run ?(strategy = Originate_second) ?(tie = Vv_ballot.Tie_break.default)
    ?(seed = 0x4ad10) ?(subject = 1) ?(speaker = 0) ?(max_rounds = 400)
    ?(crash = []) ~topology ~t ~byzantine inputs =
  let n = Topology.size topology in
  if List.length inputs <> n then
    invalid_arg "Radio_runner.run: inputs must match topology size";
  if not (Topology.connected topology) then
    invalid_arg "Radio_runner.run: topology must be connected";
  let faults = Array.make n Fault.Honest in
  List.iter (fun id -> faults.(id) <- Fault.Byzantine) byzantine;
  List.iter
    (fun (id, at_round, deliver_to) ->
      faults.(id) <- Fault.Crash { at_round; deliver_to })
    crash;
  let cfg =
    Config.make ~faults ~comm:Types.Local_broadcast ~max_rounds ~seed
      ~topology:(Array.init n (Topology.neighbours topology))
      ~n ~t_max:t ()
  in
  let diameter = Topology.diameter topology in
  let proto_inputs id =
    {
      Radio_voting.speaker;
      subject;
      preference = List.nth inputs id;
      diameter;
      tie;
    }
  in
  let res =
    match
      E.run cfg ~inputs:proto_inputs ~adversary:(adversary_of ~tie strategy) ()
    with
    | Ok res -> res
    | Error (`Invalid_adversary reason) ->
        raise (Engine.Invalid_adversary reason)
  in
  let honest = Config.honest_ids cfg in
  let outputs = List.map (fun id -> res.E.outputs.(id)) honest in
  let honest_inputs = List.map (fun id -> List.nth inputs id) honest in
  {
    outputs;
    honest_inputs;
    termination = Vv_ballot.Validity.termination ~outputs;
    agreement = Vv_ballot.Validity.agreement ~outputs;
    voting_validity =
      Vv_ballot.Validity.voting_validity ~tie ~honest_inputs ~outputs;
    stalled = res.E.stalled;
    rounds = res.E.rounds_used;
    messages = Metrics.total res.E.metrics;
    trace = res.E.trace;
  }
