(* Multi-hop voting over a radio network (extension of Algorithm 4).

   Algorithm 4 assumes every node hears every other directly.  On a
   multi-hop topology, each phase instead disseminates by flooding:
   messages are tagged with their origin, nodes accept the first copy per
   (origin, kind) — preferring a copy heard directly from the origin —
   and rebroadcast on first acceptance.  With diameter D and delay bound
   delta, a flood launched at round r reaches every honest-connected node
   by r + D*delta, so the propose step runs at round 2*D*delta + 1 and
   the decide quorum is evaluated on endorsement floods thereafter.

   Guarantees, and their limits (documented, exercised in tests/E12):
   - crash faults: exact voting validity as long as the residual honest
     graph stays connected (a partition starves the quorum and the run
     stalls — never decides wrongly);
   - Byzantine faults: a Byzantine *relay* cannot equivocate (local
     broadcast) but can consistently re-originate a fake copy of a remote
     node's vote; first-accept flooding protects only direct neighbours,
     so beyond one hop exactness additionally requires the connectivity
     bound of Khan-Naqvi-Vaidya [36] and their relay protocol.  On the
     complete graph this protocol degenerates exactly to Algorithm 4. *)

open Vv_sim
module Oid = Vv_ballot.Option_id
module Tally = Vv_ballot.Tally

type payload =
  | Subject of int
  | Ballot of { subject : int; choice : Oid.t }
  | Endorse of { subject : int; choice : Oid.t }

type msg = Flood of { origin : Types.node_id; payload : payload }
type output = Oid.t

type input = {
  speaker : Types.node_id;
  subject : int;
  preference : Oid.t;
  diameter : int;  (** of the deployment topology (part of common setup) *)
  tie : Vv_ballot.Tie_break.t;
}

type state = {
  cfg : input;
  delta : int;
  mutable subject : int option;
  votes : (Types.node_id, int * Oid.t) Hashtbl.t;  (* first ballot per origin *)
  endorses : (Types.node_id, int * Oid.t) Hashtbl.t;
  (* Cached endorsement tally for the known subject, so the per-round
     decide check does not re-fold the table (stalled partitioned runs
     burn the whole round budget otherwise). *)
  mutable endorse_tally : Tally.t;
  mutable endorse_dirty : bool;
  mutable voted : bool;
  mutable proposed : bool;
  mutable decided : Oid.t option;
}

let name = "radio-voting"

let equal_payload a b =
  match (a, b) with
  | Subject u, Subject v -> Int.equal u v
  | Ballot a, Ballot b -> a.subject = b.subject && Oid.equal a.choice b.choice
  | Endorse a, Endorse b -> a.subject = b.subject && Oid.equal a.choice b.choice
  | (Subject _ | Ballot _ | Endorse _), _ -> false

let equal_msg (Flood a) (Flood b) =
  a.origin = b.origin && equal_payload a.payload b.payload

let flood outbox ~origin payload =
  Outbox.broadcast outbox (Flood { origin; payload })

let tally_of table s =
  Hashtbl.fold
    (fun _origin (subj, choice) acc ->
      if subj = s then Tally.add acc choice else acc)
    table Tally.empty

(* The subject is learned exactly once; seed the cached endorsement tally
   from whatever endorsements arrived before it. *)
let learn_subject st s =
  st.subject <- Some s;
  st.endorse_tally <- tally_of st.endorses s;
  st.endorse_dirty <- true

let init (ctx : Protocol.ctx) cfg ~outbox =
  if cfg.diameter < 1 then invalid_arg "Radio_voting: diameter must be >= 1";
  let delta =
    match ctx.delta with
    | Some d -> d
    | None -> invalid_arg (name ^ ": requires a known delay bound")
  in
  let st =
    {
      cfg;
      delta;
      subject = None;
      votes = Hashtbl.create 16;
      endorses = Hashtbl.create 16;
      endorse_tally = Tally.empty;
      endorse_dirty = false;
      voted = false;
      proposed = false;
      decided = None;
    }
  in
  if ctx.me = cfg.speaker then begin
    learn_subject st cfg.subject;
    flood outbox ~origin:ctx.me (Subject cfg.subject)
  end;
  st

(* Accept an item into the local tables; true when it is new (and should
   therefore be relayed). *)
let accept st ~origin payload =
  match payload with
  | Subject s ->
      if origin = st.cfg.speaker && st.subject = None && s >= 0 then begin
        learn_subject st s;
        true
      end
      else false
  | Ballot { subject; choice } ->
      if not (Hashtbl.mem st.votes origin) then begin
        Hashtbl.add st.votes origin (subject, choice);
        true
      end
      else false
  | Endorse { subject; choice } ->
      if not (Hashtbl.mem st.endorses origin) then begin
        Hashtbl.add st.endorses origin (subject, choice);
        (match st.subject with
        | Some s when subject = s ->
            st.endorse_tally <- Tally.add st.endorse_tally choice;
            st.endorse_dirty <- true
        | Some _ | None -> ());
        true
      end
      else false

let step (ctx : Protocol.ctx) st ~round ~inbox ~outbox =
  (* First-accept with direct preference: copies heard from their origin
     are processed before relayed copies of the same round. *)
  let ingest (Flood { origin; payload }) =
    if accept st ~origin payload then flood outbox ~origin payload
  and is_direct src (Flood f) = src = f.origin in
  Inbox.iter (fun src m -> if is_direct src m then ingest m) inbox;
  Inbox.iter (fun src m -> if not (is_direct src m) then ingest m) inbox;
  (* Phase 2: vote as soon as the subject is known. *)
  (match st.subject with
  | Some s when not st.voted ->
      st.voted <- true;
      let payload = Ballot { subject = s; choice = st.cfg.preference } in
      ignore (accept st ~origin:ctx.me payload);
      flood outbox ~origin:ctx.me payload
  | Some _ | None -> ());
  (* Phase 3: propose once every honest flood has had time to settle. *)
  let propose_round = ((2 * st.cfg.diameter) * st.delta) + 1 in
  (match st.subject with
  | Some s
    when (not st.proposed) && st.decided = None && round >= propose_round ->
      st.proposed <- true;
      let ballot = tally_of st.votes s in
      if Tally.total ballot >= ctx.t + 1 then begin
        match Tally.top ~tie:st.cfg.tie ballot with
        | Some { Tally.a; a_count; b_count; _ } when a_count > b_count ->
            let payload = Endorse { subject = s; choice = a } in
            ignore (accept st ~origin:ctx.me payload);
            flood outbox ~origin:ctx.me payload
        | Some _ | None -> ()
      end
  | Some _ | None -> ());
  (* Phase 4: decide on N - t endorsements for one choice; the quorum test
     depends only on the endorsement tally, so skip unchanged rounds. *)
  (match st.subject with
  | Some _ when st.decided = None && st.endorse_dirty -> begin
      st.endorse_dirty <- false;
      let quorum = ctx.n - ctx.t in
      match Tally.ranked ~tie:st.cfg.tie st.endorse_tally with
      | (choice, c) :: _ when c >= quorum -> st.decided <- Some choice
      | _ -> ()
    end
  | Some _ | None -> ());
  st

let output st = st.decided

(* Conservative: radio runs are not fast-forwarded. *)
let inert _ = false

let phase st =
  if st.decided <> None then "decided"
  else if st.proposed then "proposed"
  else if st.voted then "vote"
  else "disseminate"
