(** Convenience runner for {!Radio_voting} on a {!Topology}. *)

module Oid = Vv_ballot.Option_id

module E : module type of Vv_sim.Engine.Make (Radio_voting)

type outcome = {
  outputs : Oid.t option list;  (** honest nodes, node-id order *)
  honest_inputs : Oid.t list;
  termination : bool;
  agreement : bool;
  voting_validity : bool;
  stalled : bool;
  rounds : int;
  messages : int;
  trace : Vv_sim.Trace.snapshot;  (** per-round structured history *)
}

type strategy =
  | Passive
  | Originate_second
      (** Byzantine nodes flood their own ballots for the honest runner-up
          — the legitimate worst case *)
  | Poison_origin of Vv_sim.Types.node_id * int
      (** [(victim, fake_option)]: own ballots plus a re-originated fake
          copy of the victim's ballot, struck on first honest ballot —
          the relay attack first-accept flooding cannot stop beyond one
          hop ([36]) *)

val adversary_of :
  tie:Vv_ballot.Tie_break.t -> strategy -> Radio_voting.msg Vv_sim.Adversary.t

val run :
  ?strategy:strategy ->
  ?tie:Vv_ballot.Tie_break.t ->
  ?seed:int ->
  ?subject:int ->
  ?speaker:Vv_sim.Types.node_id ->
  ?max_rounds:int ->
  ?crash:(Vv_sim.Types.node_id * int * Vv_sim.Types.node_id list) list ->
  topology:Topology.t ->
  t:int ->
  byzantine:Vv_sim.Types.node_id list ->
  Oid.t list ->
  outcome
(** Raises [Invalid_argument] on a disconnected topology or mismatched
    inputs length. *)
