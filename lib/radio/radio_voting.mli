(** Multi-hop voting over a radio network (extension of Algorithm 4).

    Each phase disseminates by origin-tagged flooding with first-accept
    (preferring copies heard directly from the origin); the propose step
    waits [2 * diameter * delta] rounds. Exact under crash faults while
    the residual honest graph stays connected; under Byzantine relays the
    one-hop protection of first-accept is the limit — beyond it the
    connectivity bound of Khan-Naqvi-Vaidya [36] applies (see
    {!Radio_runner.strategy} and experiment E12). Degenerates to
    Algorithm 4 on the complete graph. Implements {!Vv_sim.Protocol.S}. *)

module Oid = Vv_ballot.Option_id

type payload =
  | Subject of int
  | Ballot of { subject : int; choice : Oid.t }
  | Endorse of { subject : int; choice : Oid.t }

type msg = Flood of { origin : Vv_sim.Types.node_id; payload : payload }
type output = Oid.t

type input = {
  speaker : Vv_sim.Types.node_id;
  subject : int;
  preference : Oid.t;
  diameter : int;  (** of the deployment topology (common setup data) *)
  tie : Vv_ballot.Tie_break.t;
}

type state

val name : string

val equal_msg : msg -> msg -> bool

val init :
  Vv_sim.Protocol.ctx -> input -> outbox:msg Vv_sim.Outbox.t -> state

val step :
  Vv_sim.Protocol.ctx ->
  state ->
  round:int ->
  inbox:msg Vv_sim.Inbox.t ->
  outbox:msg Vv_sim.Outbox.t ->
  state

val output : state -> output option
val phase : state -> string
val inert : state -> bool
