(** Validity properties as first-class values.

    Following Civit et al., "On the Validity of Consensus" (arXiv
    2301.04920), a validity property is the parameter that decides
    solvability — so it is data here, not code baked into the checker:
    an id, an admissibility predicate over (honest inputs, outputs), an
    optional mandated output, and the hierarchy edges to the properties
    it entails. The oracle ({!Vv_check.Oracle}), the baselines and the
    E21 campaign all quantify over values of this type.

    Conventions match {!Validity}: [honest_inputs] lists non-faulty
    preferences only; [outputs] lists, per honest node, its decision
    ([None] = undecided, which never violates validity). [t_tol] is the
    fault-tolerance budget [t] of the configuration under test — only
    the median instance reads it. *)

type t = {
  id : string;  (** stable name, used in CLI flags and violation labels *)
  description : string;
  admissible :
    tie:Tie_break.t ->
    t_tol:int ->
    honest_inputs:Option_id.t list ->
    outputs:Option_id.t option list ->
    bool;
      (** does this (inputs, outputs) pair satisfy the property? *)
  required_output :
    (tie:Tie_break.t -> honest_inputs:Option_id.t list -> Option_id.t option)
    option;
      (** when the property mandates a unique decision value, the value;
          [None] inner result = no mandate for these inputs *)
  stronger_than : string list;
      (** ids of properties this one entails (direct edges; {!implies}
          takes the reflexive-transitive closure) *)
}

val id : t -> string
val admissible :
  t ->
  tie:Tie_break.t ->
  t_tol:int ->
  honest_inputs:Option_id.t list ->
  outputs:Option_id.t option list ->
  bool

val pp : t Fmt.t
(** Prints the id. *)

val equal : t -> t -> bool
(** Id equality. *)

val voting : t
(** Tie-break-aware voting validity — delegates to
    {!Validity.voting_validity_tb} and is byte-equivalent to it. *)

val voting_strict : t
(** Strict voting validity (Definition III.3 without tie-break) —
    delegates to {!Validity.voting_validity}. *)

val strong : t
(** Neiger's strong validity: every decided output is an honest input. *)

val weak : t
(** Unanimity validity: a unanimous honest electorate forces its value. *)

val interval : t
(** Melnyk-Wattenhofer interval validity over options read as integers:
    decided outputs lie within [min, max] of the honest inputs. *)

val median : t
(** Stolz-Wattenhofer median validity over options read as integers:
    decided outputs lie within [t_tol] positions of the median of the
    sorted honest multiset. *)

val all : t list
(** Every built-in instance, in CLI/report order:
    voting, voting-strict, strong, weak, interval, median. *)

val names : string list
(** Ids of {!all}, same order. *)

val find : string -> t option
(** Look up a built-in instance by id. *)

val of_name : string -> t option
(** Alias of {!find}. *)

val implies : t -> t -> bool
(** [implies p q]: does [p] entail [q] in the validity hierarchy?
    Reflexive-transitive closure of [stronger_than]. *)
