(* The paper breaks count ties by "an established rule agreed by all nodes"
   (Definition III.1 remark).  Its running convention is: when A_G = B_G the
   nodes choose B, i.e. among tied options the later one in the option order
   wins.  We expose the rule as a value so protocols and checkers can be
   instantiated with either convention (and tested under both). *)

type t =
  | Prefer_larger  (** the paper's convention: tied counts -> larger option id wins *)
  | Prefer_smaller  (** tied counts -> smaller option id wins *)
  | Custom of (Option_id.t -> Option_id.t -> int)
      (** a total order on options; greater-in-order wins ties *)

let default = Prefer_larger

(* [wins t x y] decides whether option [x] beats option [y] when their
   counts are equal. *)
let wins t x y =
  match t with
  | Prefer_larger -> Option_id.compare x y > 0
  | Prefer_smaller -> Option_id.compare x y < 0
  | Custom cmp -> cmp x y > 0

(* Comparator ordering (option, count) pairs from winner to loser: higher
   count first, ties resolved by the rule.  Counts and option ids compare
   through the explicit monomorphic comparators — never polymorphic
   [compare], which would silently change meaning if either type stopped
   being a bare int. *)
let compare_ranked t (x, cx) (y, cy) =
  let by_count = Int.compare cy cx in
  if by_count <> 0 then by_count
  else if Option_id.equal x y then 0
  else if wins t x y then -1
  else 1

let pp ppf = function
  | Prefer_larger -> Fmt.string ppf "prefer-larger"
  | Prefer_smaller -> Fmt.string ppf "prefer-smaller"
  | Custom _ -> Fmt.string ppf "custom"
