(* Validity as a first-class value (after Civit et al., "On the Validity
   of Consensus", arXiv 2301.04920): a property is data — an id, an
   admissibility predicate over (honest inputs, outputs), an optional
   mandated output, and the hierarchy edges to the properties it
   entails — so the checker's oracle, the baselines and the campaigns
   can all quantify over *which* validity they are asked about instead
   of hard-coding the paper's voting validity.

   The two voting instances delegate to {!Validity} verbatim, so they
   are byte-equivalent to the legacy predicates (test_ballot pins this
   with qcheck); the remaining instances are the baselines' guarantees
   (strong/Neiger, weak unanimity, interval, t-trimmed median) stated
   over the same (inputs, outputs) vocabulary.

   Hierarchy edges, each a theorem over non-empty honest multisets:

     voting ─→ voting-strict   (the tie-break-aware form only adds
                                constraints when no strict plurality
                                exists)
     voting ─→ strong          (the plurality winner is an honest input)
     strong ─→ weak            (unanimity makes every honest input the
                                unanimous value)
     strong ─→ interval        (honest inputs lie in the honest range)
     median ─→ interval        (positions m±t of the sorted honest
                                multiset lie between its extremes)
     interval ─→ weak          (a unanimous multiset has a one-point
                                range)

   [voting-strict] entails nothing: it is vacuous whenever no strict
   plurality exists, so its admissible outputs are then unconstrained —
   in particular not necessarily honest inputs. *)

type t = {
  id : string;
  description : string;
  admissible :
    tie:Tie_break.t ->
    t_tol:int ->
    honest_inputs:Option_id.t list ->
    outputs:Option_id.t option list ->
    bool;
  required_output :
    (tie:Tie_break.t -> honest_inputs:Option_id.t list -> Option_id.t option)
    option;
  stronger_than : string list;
}

let id p = p.id

let admissible p = p.admissible

let pp ppf p = Fmt.string ppf p.id

let decided_all_satisfy pred outputs =
  List.for_all (function None -> true | Some v -> pred v) outputs

let voting =
  {
    id = "voting";
    description =
      "tie-break-aware voting validity: every decided output is the \
       established-rule plurality of honest inputs (Definition III.3)";
    admissible =
      (fun ~tie ~t_tol:_ ~honest_inputs ~outputs ->
        Validity.voting_validity_tb ~tie ~honest_inputs ~outputs);
    required_output =
      Some (fun ~tie ~honest_inputs -> Validity.honest_plurality ~tie ~honest_inputs);
    stronger_than = [ "voting-strict"; "strong" ];
  }

let voting_strict =
  {
    id = "voting-strict";
    description =
      "strict voting validity: whenever one option strictly beats every \
       other among honest inputs, every decided output is that option \
       (Definition III.3, no tie-break)";
    admissible =
      (fun ~tie ~t_tol:_ ~honest_inputs ~outputs ->
        Validity.voting_validity ~tie ~honest_inputs ~outputs);
    required_output =
      Some
        (fun ~tie ~honest_inputs ->
          if Validity.has_strict_plurality ~honest_inputs then
            Validity.honest_plurality ~tie ~honest_inputs
          else None);
    stronger_than = [];
  }

let strong =
  {
    id = "strong";
    description =
      "strong validity (Neiger): every decided output is some honest input";
    admissible =
      (fun ~tie:_ ~t_tol:_ ~honest_inputs ~outputs ->
        Validity.strong_validity ~honest_inputs ~outputs);
    required_output = None;
    stronger_than = [ "weak"; "interval" ];
  }

let unanimous_value = function
  | [] -> None
  | v :: rest -> if List.for_all (Option_id.equal v) rest then Some v else None

let weak =
  {
    id = "weak";
    description =
      "weak (unanimity) validity: if every honest input is the same value, \
       every decided output is that value";
    admissible =
      (fun ~tie:_ ~t_tol:_ ~honest_inputs ~outputs ->
        match unanimous_value honest_inputs with
        | None -> true
        | Some v -> decided_all_satisfy (Option_id.equal v) outputs);
    required_output =
      Some (fun ~tie:_ ~honest_inputs -> unanimous_value honest_inputs);
    stronger_than = [];
  }

(* The range-valued instances read option ids as integers — the same
   convention the interval/median baselines use for their workloads. *)
let honest_range honest_inputs =
  match List.map Option_id.to_int honest_inputs with
  | [] -> None
  | v :: rest ->
      Some (List.fold_left min v rest, List.fold_left max v rest)

let interval =
  {
    id = "interval";
    description =
      "interval validity (Melnyk-Wattenhofer): every decided output lies \
       within [min, max] of the honest inputs, read as integers";
    admissible =
      (fun ~tie:_ ~t_tol:_ ~honest_inputs ~outputs ->
        match honest_range honest_inputs with
        | None -> true
        | Some (lo, hi) ->
            decided_all_satisfy
              (fun v ->
                let v = Option_id.to_int v in
                lo <= v && v <= hi)
              outputs);
    required_output = None;
    stronger_than = [ "weak" ];
  }

(* Positions [m - t, m + t] (clamped) of the ascending honest multiset,
   m = k/2 — the Stolz-Wattenhofer "within t positions of the median"
   guarantee the median baseline's t-trim realises. *)
let median_window ~t_tol honest_inputs =
  match honest_inputs with
  | [] -> None
  | _ ->
      let sorted =
        List.sort Int.compare (List.map Option_id.to_int honest_inputs)
        |> Array.of_list
      in
      let k = Array.length sorted in
      let m = k / 2 in
      Some (sorted.(max 0 (m - t_tol)), sorted.(min (k - 1) (m + t_tol)))

let median =
  {
    id = "median";
    description =
      "median validity (Stolz-Wattenhofer): every decided output lies \
       within t positions of the median of the sorted honest inputs, \
       read as integers";
    admissible =
      (fun ~tie:_ ~t_tol ~honest_inputs ~outputs ->
        match median_window ~t_tol honest_inputs with
        | None -> true
        | Some (lo, hi) ->
            decided_all_satisfy
              (fun v ->
                let v = Option_id.to_int v in
                lo <= v && v <= hi)
              outputs);
    required_output = None;
    stronger_than = [ "interval" ];
  }

let all = [ voting; voting_strict; strong; weak; interval; median ]

let names = List.map id all

let find id = List.find_opt (fun p -> String.equal p.id id) all

let of_name = find

let equal a b = String.equal a.id b.id

(* Reflexive-transitive closure of [stronger_than]; unknown ids in an
   edge list simply contribute nothing. *)
let implies p q =
  let rec reaches seen id =
    String.equal id q.id
    || (not (List.mem id seen))
       &&
       match find id with
       | None -> false
       | Some p' -> List.exists (reaches (id :: seen)) p'.stronger_than
  in
  reaches [] p.id
