(* Output-format selection shared by every vvc experiment subcommand.
   Tables are the human-facing default; csv and json render the same
   underlying Table.t, so switching format never changes the data. *)

module Table = Vv_prelude.Table
module Json = Vv_prelude.Json

type format = Table | Csv | Json

let all = [ Table; Csv; Json ]

let to_string = function Table -> "table" | Csv -> "csv" | Json -> "json"

let of_string = function
  | "table" -> Some Table
  | "csv" -> Some Csv
  | "json" -> Some Json
  | _ -> None

let pp_format ppf f = Format.pp_print_string ppf (to_string f)

let table fmt tbl =
  match fmt with
  | Table -> Table.print tbl
  | Csv -> print_string (Table.to_csv tbl)
  | Json -> print_endline (Json.to_string (Table.to_json tbl))

let tables fmt tbls =
  match fmt with
  | Table | Csv -> List.iter (table fmt) tbls
  | Json ->
      (* One top-level JSON value, not a stream of them. *)
      print_endline
        (Json.to_string (Json.List (List.map Table.to_json tbls)))

let json fmt ~fallback value =
  match fmt with
  | Json -> print_endline (Json.to_string value)
  | Table | Csv -> fallback ()
