(* Output-format selection shared by every vvc experiment subcommand.
   Tables are the human-facing default; csv and json render the same
   underlying Table.t, so switching format never changes the data. *)

module Table = Vv_prelude.Table
module Json = Vv_prelude.Json

type format = Table | Csv | Json

let all = [ Table; Csv; Json ]

let to_string = function Table -> "table" | Csv -> "csv" | Json -> "json"

let of_string = function
  | "table" -> Some Table
  | "csv" -> Some Csv
  | "json" -> Some Json
  | _ -> None

let pp_format ppf f = Format.pp_print_string ppf (to_string f)

(* The [*_string] renderers are the source of truth; the printing entry
   points below emit exactly those bytes, so writing a rendering to a
   file (vvc --out) is byte-identical to printing it. Table.pp uses no
   break hints, so rendering through a string formatter cannot reflow. *)

let table_string fmt tbl =
  match fmt with
  | Table -> Format.asprintf "%a" Table.pp tbl
  | Csv -> Table.to_csv tbl
  | Json -> Json.to_string (Table.to_json tbl) ^ "\n"

let tables_string fmt tbls =
  match fmt with
  | Table | Csv -> String.concat "" (List.map (table_string fmt) tbls)
  | Json ->
      (* One top-level JSON value, not a stream of them. *)
      Json.to_string (Json.List (List.map Table.to_json tbls)) ^ "\n"

let table fmt tbl = print_string (table_string fmt tbl)
let tables fmt tbls = print_string (tables_string fmt tbls)

let json fmt ~fallback value =
  match fmt with
  | Json -> print_endline (Json.to_string value)
  | Table | Csv -> fallback ()
