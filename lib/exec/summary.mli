(** Typed aggregation of batch outcomes.

    A summary is a pure value. [empty] is the unit of [merge], and [merge]
    is associative and commutative, so the executor's chunking strategy
    cannot change the result: summarising a batch yields byte-identical
    output for any chunk size. *)

type histogram = (int * int) list
(** Sorted ascending by key; counts are strictly positive. *)

type t = {
  total : int;  (** runs observed, including invalid-adversary runs *)
  terminated : int;
  stalled : int;
  invalid_adversary : int;
      (** runs whose adversary violated the fault plan ([Error] from
          {!Vv_core.Runner.run_checked}) — counted, never raised *)
  successes : int;  (** terminated with tie-break-aware voting validity *)
  agreement_failures : int;
  validity_failures : int;  (** strict voting validity, Definition III.3 *)
  strong_validity_failures : int;
  safety_inadmissible : int;
  honest_msgs : int;
  byz_msgs : int;
  round_hist : histogram;  (** rounds used per run *)
  decide_round_hist : histogram;  (** per honest node decide round *)
  message_hist : histogram;  (** total messages per run *)
}

val empty : t

val observe :
  t -> (Vv_core.Runner.outcome, [ `Invalid_adversary of string ]) result -> t
(** Fold one run into the summary. *)

val merge : t -> t -> t

val success_rate : t -> float
val stall_rate : t -> float
val termination_rate : t -> float
val mean_rounds : t -> float
val mean_messages : t -> float

val to_table : ?title:string -> t -> Vv_prelude.Table.t
val to_csv : ?title:string -> t -> string
val to_json : t -> Vv_prelude.Json.t
val pp : Format.formatter -> t -> unit
