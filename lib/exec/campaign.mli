(** Declarative experiment campaigns compiled onto {!Executor.map}.

    A campaign is a first-class value describing one experiment: an id, a
    one-line [what], named grid axes, a profile-indexed cell list, a
    per-cell kernel, and a collector folding the (cell, row) pairs back
    into tables. Running one inherits the executor's determinism
    contract: cells are index-addressed, each cell's derived seed depends
    only on (base seed, cell index), and the collector sees pairs in
    cell-list order at every [jobs] value — so a campaign's emitted
    tables are byte-identical whether it ran on one domain or many. *)

type profile = Smoke | Full
(** The two tiers every campaign supports: [Smoke] is the CI-sized grid,
    [Full] the paper-sized one. *)

val all_profiles : profile list
val profile_label : profile -> string
val profile_of_string : string -> profile option

type ctx = {
  profile : profile;  (** the tier this run was invoked at *)
  base_seed : int;  (** campaign seed ([--seed] or the campaign default) *)
  cell_seed : int;  (** {!Executor.derive_seed}[ ~seed:base_seed index] *)
  index : int;  (** this cell's position in the cell list *)
  jobs : int;
      (** worker-domain budget, for cells that thread parallelism into an
          inner jobs-invariant sweep instead of fanning out per cell *)
}
(** What a cell kernel may depend on. Nothing else — in particular not
    the claiming domain or any shared mutable state — so results cannot
    depend on scheduling. *)

type emitted = {
  tables : Vv_prelude.Table.t list;
  ok : bool;  (** [false] makes the CLI exit non-zero (chaos, check) *)
  verdict : string option;
      (** a trailing human-facing line, printed after the tables in
          non-JSON formats (the model checker's OK/VIOLATIONS line) *)
}

val tables : Vv_prelude.Table.t list -> emitted
(** The common case: tables only, [ok = true], no verdict. *)

type t
(** A campaign with its cell and row types hidden, so heterogeneous
    campaigns form one registry list. *)

val v :
  id:string ->
  what:string ->
  ?axes:(string * string list) list ->
  ?seed:int ->
  cells:(profile -> 'cell list) ->
  run_cell:(ctx -> 'cell -> 'row) ->
  collect:(profile -> ('cell * 'row) list -> emitted) ->
  unit ->
  t
(** [v ~id ~what ~cells ~run_cell ~collect ()] declares a campaign.
    [axes] names the grid dimensions for documentation and listings; it
    is descriptive, not load-bearing. [seed] (default [0]) is the base
    seed used when the caller passes none — ported experiments keep
    their legacy hard-coded seed here so default outputs are unchanged. *)

val id : t -> string
val what : t -> string
val axes : t -> (string * string list) list
val default_seed : t -> int

type outcome = {
  emitted : emitted;
  cells_run : int;
  elapsed : float;  (** wall-clock seconds for the whole campaign *)
  cell_seconds : float array;  (** per-cell wall-clock, index-addressed *)
}

val run :
  ?profile:profile ->
  ?jobs:int ->
  ?seed:int ->
  ?on_progress:(Executor.progress -> unit) ->
  t ->
  outcome
(** Run a campaign: enumerate cells for [profile] (default [Full]), fan
    them out over {!Executor.map} with chunk size 1 (each cell is one
    unit of work and one progress tick), and collect. [jobs] defaults to
    [1]; [0] means all cores but one; emitted tables are identical at
    every value. [seed] overrides the campaign's default base seed.
    Raises [Invalid_argument] when [jobs < 0]. *)
