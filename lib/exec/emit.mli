(** Output-format selection shared by every vvc experiment subcommand.

    All three formats render the same {!Vv_prelude.Table.t} values, so
    [--format] changes the encoding, never the data. *)

type format = Table | Csv | Json

val all : format list
val to_string : format -> string
val of_string : string -> format option
val pp_format : Format.formatter -> format -> unit

val table_string : format -> Vv_prelude.Table.t -> string
(** Render one table in the chosen format (JSON on one line, trailing
    newline included). {!table} prints exactly these bytes. *)

val tables_string : format -> Vv_prelude.Table.t list -> string
(** Render several; under [Json] they form one top-level array — one
    top-level JSON value, not a stream. {!tables} prints exactly these
    bytes, so a rendering written to a file matches stdout. *)

val table : format -> Vv_prelude.Table.t -> unit
(** Print one table in the chosen format (JSON on one line). *)

val tables : format -> Vv_prelude.Table.t list -> unit
(** Print several; under [Json] they form one top-level array. *)

val json : format -> fallback:(unit -> unit) -> Vv_prelude.Json.t -> unit
(** Emit [value] under [Json]; otherwise run [fallback] (used where the
    human-facing rendering is richer than a table). *)
