(** Chunked batch executor over {!Vv_core.Runner} specifications, with an
    optional domain pool.

    Instances run in chunks; each chunk folds into a {!Summary.t} merged
    into the running total in chunk-index order. Chunking is an
    implementation knob (progress reporting, the unit of work a worker
    domain claims), never a semantic one: with the same [seed], any
    [chunk_size] and any [jobs] produce a byte-identical summary, because
    per-instance seeds depend only on [(seed, index)], {!Summary.merge} is
    associative, and chunk summaries merge in ascending index order on
    every path.

    With [jobs > 1] the generator is drained on the calling domain first,
    still in index order — generators that carry state (e.g. sampling
    honest inputs from one shared rng) therefore see exactly the calls of
    the sequential path — and only {!Vv_core.Runner.run_checked} runs on
    the workers. The shared state reachable from a run ({!Vv_dist.Cache},
    the log-factorial table) is domain-safe.

    An adversary that violates its fault plan surfaces as the summary's
    [invalid_adversary] count rather than an exception, so one bad
    configuration cannot kill a sweep. *)

type progress = { done_ : int; total : int }

val derive_seed : seed:int -> int -> int
(** The per-instance seed for index [i] under base [seed]: two independent
    splitmix64 steps (hash the base seed, fold in the index, hash again),
    so distinct [(seed, index)] pairs do not collide under simple xor
    algebra. Exposed so tests and experiment code can reproduce a single
    instance of a batch in isolation. *)

val run_generator :
  ?chunk_size:int ->
  ?jobs:int ->
  ?seed:int ->
  ?on_progress:(progress -> unit) ->
  count:int ->
  (int -> Vv_core.Runner.spec) ->
  Summary.t
(** [run_generator ~count gen] executes [gen 0 .. gen (count-1)]; [gen] is
    always invoked in index order on the calling domain. With [?seed],
    each instance's spec is reseeded with [derive_seed ~seed i]; without
    it, each spec's own seed is used. [?jobs] (default [1]) sets the
    number of worker domains; [0] means all available cores but one; the
    summary is byte-identical for every value. [on_progress] fires after
    every chunk with non-decreasing [done_] counts (exactly [chunk_size]
    apart only when [jobs = 1]). Raises [Invalid_argument] when
    [chunk_size <= 0], [jobs < 0] or [count < 0]. *)

val run_specs :
  ?chunk_size:int ->
  ?jobs:int ->
  ?seed:int ->
  ?on_progress:(progress -> unit) ->
  Vv_core.Runner.spec list ->
  Summary.t

val run_trials :
  ?chunk_size:int ->
  ?jobs:int ->
  trials:int ->
  seed:int ->
  Vv_core.Runner.spec ->
  Summary.t
(** The common Monte-Carlo shape: the same specification [trials] times
    under derived seeds. *)

val map :
  ?chunk_size:int ->
  ?jobs:int ->
  ?on_progress:(progress -> unit) ->
  count:int ->
  (int -> 'a) ->
  'a array
(** [map ~count f] evaluates [f 0 .. f (count - 1)] into an
    index-addressed array, fanning chunks out over the domain pool when
    [jobs <> 1] (same [jobs] semantics as {!run_generator}). Result slots
    are disjoint, so the output is identical at every [jobs] and
    [chunk_size] by construction. [f] must be domain-safe and independent
    of evaluation order. [on_progress] fires after every completed chunk
    with non-decreasing [done_] counts. Raises [Invalid_argument] when
    [chunk_size <= 0], [jobs < 0] or [count < 0]. *)
