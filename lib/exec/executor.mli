(** Chunked batch executor over {!Vv_core.Runner} specifications.

    Instances run sequentially in chunks; each chunk folds into a
    {!Summary.t} merged into the running total. Chunking is an
    implementation knob (progress reporting), never a semantic one: with
    the same [seed], any [chunk_size] produces a byte-identical summary,
    because per-instance seeds depend only on [(seed, index)] and
    {!Summary.merge} is associative.

    An adversary that violates its fault plan surfaces as the summary's
    [invalid_adversary] count rather than an exception, so one bad
    configuration cannot kill a sweep. *)

type progress = { done_ : int; total : int }

val derive_seed : seed:int -> int -> int
(** The per-instance seed for index [i] under base [seed]. Exposed so
    tests and experiment code can reproduce a single instance of a batch
    in isolation. *)

val run_generator :
  ?chunk_size:int ->
  ?seed:int ->
  ?on_progress:(progress -> unit) ->
  count:int ->
  (int -> Vv_core.Runner.spec) ->
  Summary.t
(** [run_generator ~count gen] executes [gen 0 .. gen (count-1)]. With
    [?seed], each instance's spec is reseeded with [derive_seed ~seed i];
    without it, each spec's own seed is used. [on_progress] fires after
    every chunk. Raises [Invalid_argument] when [chunk_size <= 0] or
    [count < 0]. *)

val run_specs :
  ?chunk_size:int ->
  ?seed:int ->
  ?on_progress:(progress -> unit) ->
  Vv_core.Runner.spec list ->
  Summary.t

val run_trials :
  ?chunk_size:int -> trials:int -> seed:int -> Vv_core.Runner.spec -> Summary.t
(** The common Monte-Carlo shape: the same specification [trials] times
    under derived seeds. *)
