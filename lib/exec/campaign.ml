(* Declarative experiment campaigns.

   A campaign is a first-class description of one experiment: an id, a
   one-line [what], named grid [axes], a profile-indexed cell list, a
   per-cell kernel, and a collector that turns the (cell, row) pairs back
   into tables.  [run] compiles that description onto [Executor.map] with
   chunk size 1 — each cell is the unit of parallel work and of progress
   reporting — so every campaign inherits the executor's jobs-invariance:
   rows are index-addressed, cell seeds depend only on (base seed, cell
   index), and [collect] always sees the pairs in cell-list order, no
   matter how many domains ran them.

   Campaigns whose legacy implementation drew from one rng shared across
   the whole table (fig1b, e8, e15) are modelled as single-cell campaigns:
   the one cell threads [ctx.jobs] down to the inner [run_generator],
   which is itself jobs-invariant because generators drain on the calling
   domain.  Everything else gets genuine per-cell fan-out. *)

module Table = Vv_prelude.Table

type profile = Smoke | Full

let all_profiles = [ Smoke; Full ]
let profile_label = function Smoke -> "smoke" | Full -> "full"

let profile_of_string = function
  | "smoke" -> Some Smoke
  | "full" -> Some Full
  | _ -> None

type ctx = {
  profile : profile;
  base_seed : int;
  cell_seed : int;
  index : int;
  jobs : int;
}

type emitted = { tables : Table.t list; ok : bool; verdict : string option }

let tables tbls = { tables = tbls; ok = true; verdict = None }

type ('cell, 'row) def = {
  id : string;
  what : string;
  axes : (string * string list) list;
  default_seed : int;
  cells : profile -> 'cell list;
  run_cell : ctx -> 'cell -> 'row;
  collect : profile -> ('cell * 'row) list -> emitted;
}

type t = Def : ('cell, 'row) def -> t

let v ~id ~what ?(axes = []) ?(seed = 0) ~cells ~run_cell ~collect () =
  Def { id; what; axes; default_seed = seed; cells; run_cell; collect }

let id (Def d) = d.id
let what (Def d) = d.what
let axes (Def d) = d.axes
let default_seed (Def d) = d.default_seed

type outcome = {
  emitted : emitted;
  cells_run : int;
  elapsed : float;
  cell_seconds : float array;
}

let run ?(profile = Full) ?(jobs = 1) ?seed ?on_progress (Def d) =
  let base_seed = Option.value seed ~default:d.default_seed in
  let cells = Array.of_list (d.cells profile) in
  let count = Array.length cells in
  let t0 = Unix.gettimeofday () in
  let timed =
    Executor.map ~chunk_size:1 ~jobs ?on_progress ~count (fun i ->
        let ctx =
          {
            profile;
            base_seed;
            cell_seed = Executor.derive_seed ~seed:base_seed i;
            index = i;
            jobs;
          }
        in
        let c0 = Unix.gettimeofday () in
        let row = d.run_cell ctx cells.(i) in
        (row, Unix.gettimeofday () -. c0))
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  let pairs =
    Array.to_list (Array.mapi (fun i (row, _) -> (cells.(i), row)) timed)
  in
  let emitted = d.collect profile pairs in
  { emitted; cells_run = count; elapsed; cell_seconds = Array.map snd timed }
