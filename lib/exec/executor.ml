(* Chunked batch executor.

   Work arrives as a list of specs or as a generator over [0, count);
   instances execute sequentially in chunks, each chunk folding into its
   own Summary which is then merged into the running total.  Chunking
   exists for progress reporting and bounded liveness on long sweeps —
   it must never change results, which holds because

   - per-instance seeds depend only on (base seed, index), never on the
     chunk layout, and
   - [Summary.merge] is associative with [Summary.empty] as unit.

   Everything runs on one domain: the exact-enumeration cache and the
   log-factorial table behind Vv_dist are process-global and unguarded,
   so sharding across domains belongs above this layer if it ever
   happens. *)

module Rng = Vv_prelude.Rng
module Runner = Vv_core.Runner

let default_chunk_size = 64

(* Per-instance seed: hash (seed, index) through one splitmix64 step.
   0x9E3779B9 is the 32-bit golden-ratio constant; the multiply keeps
   distinct indices far apart even for sequential i, and the splitmix
   step behind Rng.bits finishes the mixing. *)
let derive_seed ~seed i = Rng.bits (Rng.create (seed lxor (i * 0x9E3779B9)))

type progress = { done_ : int; total : int }

let run_seq ?(chunk_size = default_chunk_size) ?seed ?on_progress ~count gen =
  if chunk_size <= 0 then invalid_arg "Executor: chunk_size must be positive";
  if count < 0 then invalid_arg "Executor: negative count";
  let reseed i spec =
    match seed with
    | None -> spec
    | Some seed -> Runner.with_seed (derive_seed ~seed i) spec
  in
  let total = ref Summary.empty in
  let i = ref 0 in
  while !i < count do
    let stop = min count (!i + chunk_size) in
    let chunk = ref Summary.empty in
    while !i < stop do
      let spec = reseed !i (gen !i) in
      chunk := Summary.observe !chunk (Runner.run_checked spec);
      incr i
    done;
    total := Summary.merge !total !chunk;
    match on_progress with
    | Some f -> f { done_ = !i; total = count }
    | None -> ()
  done;
  !total

let run_generator ?chunk_size ?seed ?on_progress ~count gen =
  run_seq ?chunk_size ?seed ?on_progress ~count gen

let run_specs ?chunk_size ?seed ?on_progress specs =
  let arr = Array.of_list specs in
  run_seq ?chunk_size ?seed ?on_progress ~count:(Array.length arr) (fun i ->
      arr.(i))

let run_trials ?chunk_size ~trials ~seed spec =
  run_seq ?chunk_size ~seed ~count:trials (fun _ -> spec)
