(* Chunked batch executor with an optional domain pool.

   Work arrives as a list of specs or as a generator over [0, count);
   instances execute in chunks, each chunk folding into its own Summary
   which is then merged into the total in chunk-index order.  Chunking
   exists for progress reporting, bounded liveness on long sweeps, and as
   the unit of work claimed by worker domains — it must never change
   results, which holds because

   - per-instance seeds depend only on (base seed, index), never on the
     chunk layout or the claiming domain,
   - [Summary.merge] is associative with [Summary.empty] as unit, and
   - chunk summaries are merged in ascending chunk index, the same order
     the sequential path produces them.

   Parallel execution ([jobs > 1]) is a hand-rolled pool: the generator is
   first drained on the calling domain in index order (so generators that
   carry state — e.g. drawing honest inputs from one shared rng — behave
   identically at every [jobs]), then worker domains claim chunk indices
   from an atomic counter, run their instances, and park the chunk summary
   in a per-chunk slot; the final fold over slots is index-ordered.  The
   shared state the workers can reach (Vv_dist's enumeration cache and
   log-factorial table) is domain-safe as of this layer's parallelisation
   — see Vv_dist.Cache and Multinomial.warm_log_factorial. *)

module Rng = Vv_prelude.Rng
module Runner = Vv_core.Runner

let default_chunk_size = 64

(* Per-instance seed: {!Vv_prelude.Rng.derive}, two independent splitmix64
   steps — the scheme lives in the prelude so other layers (the multishot
   ledger's slot/attempt seeds) derive from the identical function. *)
let derive_seed ~seed i = Rng.derive seed i

(* [jobs = 0] means "all available cores but one". *)
let resolve_jobs jobs =
  if jobs < 0 then invalid_arg "Executor: negative jobs";
  if jobs = 0 then max 1 (Domain.recommended_domain_count () - 1) else jobs

type progress = { done_ : int; total : int }

let reseed ~seed i spec =
  match seed with
  | None -> spec
  | Some seed -> Runner.with_seed (derive_seed ~seed i) spec

let run_one_domain ~chunk_size ~seed ?on_progress ~count gen =
  let total = ref Summary.empty in
  let i = ref 0 in
  while !i < count do
    let stop = min count (!i + chunk_size) in
    let chunk = ref Summary.empty in
    while !i < stop do
      let spec = reseed ~seed !i (gen !i) in
      chunk := Summary.observe !chunk (Runner.run_checked spec);
      incr i
    done;
    total := Summary.merge !total !chunk;
    match on_progress with
    | Some f -> f { done_ = !i; total = count }
    | None -> ()
  done;
  !total

let run_domain_pool ~jobs ~chunk_size ~seed ?on_progress ~count gen =
  (* Drain the generator on this domain, in index order. *)
  let specs =
    let rec build i acc =
      if i = count then Array.of_list (List.rev acc)
      else build (i + 1) (reseed ~seed i (gen i) :: acc)
    in
    build 0 []
  in
  let chunks = (count + chunk_size - 1) / chunk_size in
  let results = Array.make chunks Summary.empty in
  let next_chunk = Atomic.make 0 in
  let completed = Atomic.make 0 in
  let progress_lock = Mutex.create () in
  let report lo hi =
    match on_progress with
    | None -> ()
    | Some f ->
        ignore (Atomic.fetch_and_add completed (hi - lo));
        (* Serialise callbacks; reading [completed] inside the lock keeps
           the reported counts non-decreasing across calls. *)
        Mutex.protect progress_lock (fun () ->
            f { done_ = Atomic.get completed; total = count })
  in
  let worker () =
    let rec loop () =
      let c = Atomic.fetch_and_add next_chunk 1 in
      if c < chunks then begin
        let lo = c * chunk_size and hi = min count ((c + 1) * chunk_size) in
        let s = ref Summary.empty in
        for i = lo to hi - 1 do
          s := Summary.observe !s (Runner.run_checked specs.(i))
        done;
        results.(c) <- !s;
        report lo hi;
        loop ()
      end
    in
    loop ()
  in
  let helpers = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  Array.iter Domain.join helpers;
  Array.fold_left Summary.merge Summary.empty results

let run ?(chunk_size = default_chunk_size) ?jobs ?seed ?on_progress ~count gen =
  if chunk_size <= 0 then invalid_arg "Executor: chunk_size must be positive";
  if count < 0 then invalid_arg "Executor: negative count";
  let jobs = resolve_jobs (Option.value jobs ~default:1) in
  if jobs = 1 || count <= chunk_size then
    run_one_domain ~chunk_size ~seed ?on_progress ~count gen
  else run_domain_pool ~jobs ~chunk_size ~seed ?on_progress ~count gen

let run_generator ?chunk_size ?jobs ?seed ?on_progress ~count gen =
  run ?chunk_size ?jobs ?seed ?on_progress ~count gen

let run_specs ?chunk_size ?jobs ?seed ?on_progress specs =
  let arr = Array.of_list specs in
  run ?chunk_size ?jobs ?seed ?on_progress ~count:(Array.length arr) (fun i ->
      arr.(i))

let run_trials ?chunk_size ?jobs ~trials ~seed spec =
  run ?chunk_size ?jobs ~seed ~count:trials (fun _ -> spec)

(* Generic deterministic fan-out: evaluate [f 0 .. f (count-1)] into an
   index-addressed array.  Result slots are disjoint, so the claiming
   order of chunks cannot affect the output — the array is identical at
   every [jobs] by construction.  [f] must be domain-safe (it runs on
   worker domains when [jobs > 1]) and must not rely on evaluation
   order.  [on_progress] fires after every completed chunk with
   non-decreasing [done_] counts, exactly as in [run_generator]. *)
let map ?(chunk_size = default_chunk_size) ?jobs ?on_progress ~count f =
  if chunk_size <= 0 then invalid_arg "Executor.map: chunk_size must be positive";
  if count < 0 then invalid_arg "Executor.map: negative count";
  let jobs = resolve_jobs (Option.value jobs ~default:1) in
  if jobs = 1 || count <= chunk_size then begin
    match on_progress with
    | None -> Array.init count f
    | Some report ->
        let results = Array.make count None in
        let i = ref 0 in
        while !i < count do
          let stop = min count (!i + chunk_size) in
          while !i < stop do
            results.(!i) <- Some (f !i);
            incr i
          done;
          report { done_ = !i; total = count }
        done;
        Array.map
          (function Some v -> v | None -> assert false)
          results
  end
  else begin
    let results = Array.make count None in
    let chunks = (count + chunk_size - 1) / chunk_size in
    let next_chunk = Atomic.make 0 in
    let completed = Atomic.make 0 in
    let progress_lock = Mutex.create () in
    let report lo hi =
      match on_progress with
      | None -> ()
      | Some f ->
          ignore (Atomic.fetch_and_add completed (hi - lo));
          Mutex.protect progress_lock (fun () ->
              f { done_ = Atomic.get completed; total = count })
    in
    let worker () =
      let rec loop () =
        let c = Atomic.fetch_and_add next_chunk 1 in
        if c < chunks then begin
          let lo = c * chunk_size and hi = min count ((c + 1) * chunk_size) in
          for i = lo to hi - 1 do
            results.(i) <- Some (f i)
          done;
          report lo hi;
          loop ()
        end
      in
      loop ()
    in
    let helpers = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join helpers;
    Array.map
      (function Some v -> v | None -> assert false (* every slot claimed *))
      results
  end
