(* Typed aggregation of batch outcomes.

   A summary is a pure value: [empty] is the unit of [merge], and [merge]
   is associative and commutative (histograms are sorted assoc lists
   merged by key), so a batch summarises to the same bytes no matter how
   the executor chunks the work — the property the determinism test in
   test_exec.ml pins down. *)

module Table = Vv_prelude.Table
module Json = Vv_prelude.Json

type histogram = (int * int) list

type t = {
  total : int;
  terminated : int;
  stalled : int;
  invalid_adversary : int;
  successes : int;
  agreement_failures : int;
  validity_failures : int;
  strong_validity_failures : int;
  safety_inadmissible : int;
  honest_msgs : int;
  byz_msgs : int;
  round_hist : histogram;
  decide_round_hist : histogram;
  message_hist : histogram;
}

let empty =
  {
    total = 0;
    terminated = 0;
    stalled = 0;
    invalid_adversary = 0;
    successes = 0;
    agreement_failures = 0;
    validity_failures = 0;
    strong_validity_failures = 0;
    safety_inadmissible = 0;
    honest_msgs = 0;
    byz_msgs = 0;
    round_hist = [];
    decide_round_hist = [];
    message_hist = [];
  }

(* Merge two sorted assoc lists, adding counts on equal keys. *)
let merge_hist a b =
  let rec go a b =
    match (a, b) with
    | [], rest | rest, [] -> rest
    | (ka, va) :: ta, (kb, vb) :: tb ->
        if ka < kb then (ka, va) :: go ta b
        else if kb < ka then (kb, vb) :: go a tb
        else (ka, va + vb) :: go ta tb
  in
  go a b

let bump key hist = merge_hist [ (key, 1) ] hist

let observe acc (result : (Vv_core.Runner.outcome, [ `Invalid_adversary of string ]) result) =
  match result with
  | Error (`Invalid_adversary _) ->
      { acc with total = acc.total + 1; invalid_adversary = acc.invalid_adversary + 1 }
  | Ok o ->
      let open Vv_core.Runner in
      let decide_round_hist =
        List.fold_left
          (fun h r -> match r with Some r -> bump r h | None -> h)
          acc.decide_round_hist o.decision_rounds
      in
      {
        total = acc.total + 1;
        terminated = (acc.terminated + if o.termination then 1 else 0);
        stalled = (acc.stalled + if o.stalled then 1 else 0);
        invalid_adversary = acc.invalid_adversary;
        successes =
          (acc.successes + if o.termination && o.voting_validity_tb then 1 else 0);
        agreement_failures =
          (acc.agreement_failures + if o.agreement then 0 else 1);
        validity_failures =
          (acc.validity_failures + if o.voting_validity then 0 else 1);
        strong_validity_failures =
          (acc.strong_validity_failures + if o.strong_validity then 0 else 1);
        safety_inadmissible =
          (acc.safety_inadmissible + if o.safety_admissible then 0 else 1);
        honest_msgs = acc.honest_msgs + o.honest_msgs;
        byz_msgs = acc.byz_msgs + o.byz_msgs;
        round_hist = bump o.rounds acc.round_hist;
        decide_round_hist;
        message_hist = bump (o.honest_msgs + o.byz_msgs) acc.message_hist;
      }

let merge a b =
  {
    total = a.total + b.total;
    terminated = a.terminated + b.terminated;
    stalled = a.stalled + b.stalled;
    invalid_adversary = a.invalid_adversary + b.invalid_adversary;
    successes = a.successes + b.successes;
    agreement_failures = a.agreement_failures + b.agreement_failures;
    validity_failures = a.validity_failures + b.validity_failures;
    strong_validity_failures =
      a.strong_validity_failures + b.strong_validity_failures;
    safety_inadmissible = a.safety_inadmissible + b.safety_inadmissible;
    honest_msgs = a.honest_msgs + b.honest_msgs;
    byz_msgs = a.byz_msgs + b.byz_msgs;
    round_hist = merge_hist a.round_hist b.round_hist;
    decide_round_hist = merge_hist a.decide_round_hist b.decide_round_hist;
    message_hist = merge_hist a.message_hist b.message_hist;
  }

let rate num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den

let success_rate t = rate t.successes t.total
let stall_rate t = rate t.stalled t.total
let termination_rate t = rate t.terminated t.total

let mean_of_hist hist =
  let count, weighted =
    List.fold_left (fun (c, w) (k, v) -> (c + v, w + (k * v))) (0, 0) hist
  in
  rate weighted count

let mean_rounds t = mean_of_hist t.round_hist
let mean_messages t = mean_of_hist t.message_hist

let to_table ?(title = "batch summary") t =
  let tbl =
    Table.create ~title
      ~headers:[ "metric"; "value" ]
      ~aligns:[ Table.Left; Table.Right ]
      ()
  in
  let add name value = Table.add_row tbl [ name; value ] in
  add "runs" (Table.icell t.total);
  add "successes" (Table.icell t.successes);
  add "success rate" (Table.fcell (success_rate t));
  add "terminated" (Table.icell t.terminated);
  add "stalled" (Table.icell t.stalled);
  add "stall rate" (Table.fcell (stall_rate t));
  add "invalid adversary" (Table.icell t.invalid_adversary);
  add "agreement failures" (Table.icell t.agreement_failures);
  add "validity failures" (Table.icell t.validity_failures);
  add "strong validity failures" (Table.icell t.strong_validity_failures);
  add "safety inadmissible" (Table.icell t.safety_inadmissible);
  add "honest messages" (Table.icell t.honest_msgs);
  add "byzantine messages" (Table.icell t.byz_msgs);
  add "mean rounds" (Table.fcell (mean_rounds t));
  add "mean messages" (Table.fcell (mean_messages t));
  tbl

let to_csv ?title t = Table.to_csv (to_table ?title t)

let to_json t =
  Json.Obj
    [
      ("total", Json.Int t.total);
      ("terminated", Json.Int t.terminated);
      ("stalled", Json.Int t.stalled);
      ("invalid_adversary", Json.Int t.invalid_adversary);
      ("successes", Json.Int t.successes);
      ("agreement_failures", Json.Int t.agreement_failures);
      ("validity_failures", Json.Int t.validity_failures);
      ("strong_validity_failures", Json.Int t.strong_validity_failures);
      ("safety_inadmissible", Json.Int t.safety_inadmissible);
      ("success_rate", Json.Float (success_rate t));
      ("stall_rate", Json.Float (stall_rate t));
      ("honest_msgs", Json.Int t.honest_msgs);
      ("byz_msgs", Json.Int t.byz_msgs);
      ("round_histogram", Json.of_histogram t.round_hist);
      ("decide_round_histogram", Json.of_histogram t.decide_round_hist);
      ("message_histogram", Json.of_histogram t.message_hist);
    ]

let pp ppf t = Table.pp ppf (to_table t)
