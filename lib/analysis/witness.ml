(* Constructive scenario builders for the impossibility/possibility sweeps
   (experiment E7): honest input multisets with prescribed A_G, B_G, C_G,
   and the worked examples of Sections I, IV and VII.

   These are *hand-built* tightness witnesses: each one pins a single
   below-bound configuration with a single adversary strategy.  The
   exhaustive small-model checker (lib/check) generalises them — its
   tightness oracle demands that *every* bound kind be defeated somewhere
   in the enumerated below-bound space, discovering the witness rather
   than hard-coding it.  When the checker reports a shrunk tightness
   witness it is playing the role of [lemma2_cell]/[theorem10_demo] over
   the whole small-model universe. *)

module Oid = Vv_ballot.Option_id

(* Honest inputs with exactly [ag] votes on option 0, [bg] on option 1 and
   [cg] distributed over further options in chunks small enough that option
   1 stays the runner-up.  Raises when the request is inconsistent
   (positive [cg] requires [bg >= 1], and [ag] must dominate). *)
let inputs ~ag ~bg ~cg =
  if ag < bg then invalid_arg "Witness.inputs: need ag >= bg";
  if bg < 0 || cg < 0 then invalid_arg "Witness.inputs: negative counts";
  if cg > 0 && bg = 0 then
    invalid_arg "Witness.inputs: cg > 0 requires bg >= 1";
  let chunk = max bg 1 in
  let rec spread opt remaining acc =
    if remaining = 0 then acc
    else
      let take = min chunk remaining in
      (* Keep every C-option strictly below bg unless bg itself is the
         ceiling; ties inside C are harmless. *)
      let take = if take = bg && bg > 1 then bg - 1 else take in
      let take = max 1 (min take remaining) in
      spread (opt + 1) (remaining - take)
        (acc @ List.init take (fun _ -> Oid.of_int opt))
  in
  List.init ag (fun _ -> Oid.of_int 0)
  @ List.init bg (fun _ -> Oid.of_int 1)
  @ spread 2 cg []

(* The Section I / IV motivating example: 10 nodes, 3 Byzantine, honest
   preferences {0,0,0,1,1,2,3}. *)
let section1_example =
  List.map Oid.of_int [ 0; 0; 0; 1; 1; 2; 3 ]

(* The Section VII-A arrival sequence {0,0,1,0,0,0,2,3,0,1} (N = 10). *)
let section7_sequence = [ 0; 0; 1; 0; 0; 0; 2; 3; 0; 1 ]

(* Simulate the Section VII-A single-node trace: feed the arrival sequence
   one vote at a time and report after how many receipts Inequality (14)
   first fires (with delta_P = 0). *)
let incremental_firing_point ?(delta_p = 0) ~n sequence =
  let tie = Vv_ballot.Tie_break.default in
  let rec go tally count = function
    | [] -> None
    | v :: rest -> (
        let tally = Vv_ballot.Tally.add tally (Oid.of_int v) in
        let count = count + 1 in
        match Vv_ballot.Tally.top ~tie tally with
        | Some { Vv_ballot.Tally.a_count; c_count; _ }
          when Vv_core.Bounds.incremental_ready ~n ~delta_p ~a_i:a_count
                 ~c_i:c_count ->
            Some count
        | _ -> go tally count rest)
  in
  go Vv_ballot.Tally.empty 0 sequence

(* Lemma 2 / Theorem 3 sweep cell: run Algorithm 1 with the colluding
   adversary at a prescribed honest gap and report whether exactness
   (termination with voting validity) survived. *)
type cell = {
  gap : int;
  n : int;
  bound_ok : bool;
  terminated : bool;
  valid : bool;
  exact : bool;  (* terminated && valid *)
  matches_theory : bool;
}

let lemma2_cell ~t ~bg ~cg ~gap =
  let honest = inputs ~ag:(bg + gap) ~bg ~cg in
  let ng = List.length honest in
  let n = ng + t in
  let bound_ok =
    Vv_core.Bounds.satisfied Vv_core.Bounds.Bft ~n ~t ~bg ~cg && n > 3 * t
  in
  let r =
    Vv_core.Runner.simple ~protocol:Vv_core.Runner.Algo1
      ~strategy:Vv_core.Strategy.Collude_second ~t ~f:t honest
  in
  (* Use the tie-break-aware checker: at gap = 0 the strict form is vacuous
     but the established rule still pins the required winner. *)
  let exact =
    r.Vv_core.Runner.termination && r.Vv_core.Runner.voting_validity_tb
  in
  {
    gap;
    n;
    bound_ok;
    terminated = r.Vv_core.Runner.termination;
    valid = r.Vv_core.Runner.voting_validity_tb;
    exact;
    (* Lemma 2: gap <= t lets the adversary defeat exactness; Theorem 9:
       above the bound the protocol is correct. *)
    matches_theory = (if gap <= t then not exact else exact || not bound_ok);
  }

(* Theorem 10's two indistinguishable cases, run against a lax SCT protocol
   with delta_P = t - 1.  Case 2 (honest tie, Byzantine boost on option 0)
   must fool the lax protocol while the real SCT (delta_P = t) stalls. *)
type theorem10_result = {
  lax_violates : bool;  (* delta_P = t-1 decided against the tie-break *)
  strict_safe : bool;  (* delta_P = t stayed admissible *)
}

let theorem10_demo ~t =
  if t < 1 then invalid_arg "theorem10_demo: need t >= 1";
  (* Case 2 of the proof: A_G = B_G, all Byzantine vote option 0; ties
     break towards option 1 (Prefer_larger), so deciding 0 violates the
     tie-break-aware voting validity. *)
  let k = 2 * t in
  let honest =
    List.init k (fun _ -> Oid.of_int 0) @ List.init k (fun _ -> Oid.of_int 1)
  in
  let run judgment =
    Vv_core.Runner.run
      (Vv_core.Runner.spec
         ~byzantine:(List.init t (fun i -> (2 * k) + i))
         ~protocol:Vv_core.Runner.Algo2_sct
         ~strategy:(Vv_core.Strategy.Collude_fixed 0) ~judgment_override:judgment
         ~n:((2 * k) + t) ~t
         (honest @ List.init t (fun _ -> Oid.of_int 0)))
  in
  let lax = run (Vv_core.Variant.Delta_custom (t - 1)) in
  let strict = run Vv_core.Variant.Delta_t in
  {
    lax_violates = not lax.Vv_core.Runner.voting_validity_tb;
    strict_safe = strict.Vv_core.Runner.safety_admissible
                  && not strict.Vv_core.Runner.termination;
  }
