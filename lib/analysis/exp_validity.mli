(** Experiment E21: the validity hierarchy made executable.

    Runs every implementation (three voting-validity protocol variants
    and the strong/median/interval exchange-based baselines) on wide /
    tie / over-fault electorates and judges each single outcome against
    every first-class validity property ({!Vv_ballot.Property.all}).  A
    (impl, config, property) triple is predicted solvable when [f <= t],
    the implementation's own bound holds, and the implementation's
    promised property implies the judged one — the arXiv 2301.04920
    solvability reading.  The campaign is [ok] iff every predicted
    triple is exact on all trials; unpredicted triples are observed and
    tabulated but assert nothing. *)

val default_trials : Vv_exec.Campaign.profile -> int
(** Per-cell trials: 2 at [Smoke], 4 at [Full]. *)

val campaign : ?trials:int -> unit -> Vv_exec.Campaign.t
(** The registered campaign (id ["e21"], seed [0xe21]). [trials]
    overrides the profile's per-cell trial count. *)
