(* Experiments E6, E7 and E10: the tolerance bounds.

   E6: the local broadcast model (Algorithm 4) sheds Inequality (3)'s 3t
       term — sweep (N, t) showing Algorithm 4 succeeding at points where
       N <= 3t as long as Inequality (15) holds.
   E7: adversarial sweeps around the Lemma 2 / Theorem 3 threshold (the
       exactness flip at A_G - B_G = t) and the Theorem 10 demonstration
       that a safety-guaranteed protocol cannot use delta_P < t.
   E10: Theorem 12's trade-off between fault tolerance and vote dispersion
        tolerance, including the third-option trick of Section VI-A. *)

module Table = Vv_prelude.Table
module Bounds = Vv_core.Bounds
module Runner = Vv_core.Runner
module Strategy = Vv_core.Strategy
module Oid = Vv_ballot.Option_id
module Campaign = Vv_exec.Campaign

let e6_table () =
  Table.create
    ~title:
      "E6: local broadcast drops the 3t term - Algorithm 4 at N <= 3t \
       (B_G=1, C_G=0, f=t colluders)"
    ~headers:
      [ "N"; "t"; "3t<N (Ineq3)"; "Ineq15 ok"; "algo4 term"; "algo4 valid" ]
    ~aligns:
      [ Table.Right; Table.Right; Table.Right; Table.Right; Table.Right;
        Table.Right ]
    ()

(* Points where the electorate has a strict plurality (A_G > B_G with
   B_G = 1, C_G = 0) — the same guard the original row loop applied. *)
let e6_cells =
  List.filter
    (fun (n, tol) ->
      let bg = 1 in
      let ng = n - tol in
      ng - bg > bg)
    [ (7, 1); (7, 2); (9, 2); (9, 3); (10, 3); (11, 3); (12, 4); (13, 4) ]

let e6_row (n, tol) =
  let bg = 1 and cg = 0 in
  let ng = n - tol in
  let ag = ng - bg in
  let honest = Witness.inputs ~ag ~bg ~cg in
  let ineq3 = n > 3 * tol in
  let ineq15 = Bounds.satisfied Bounds.Cft ~n ~t:tol ~bg ~cg in
  let r =
    Runner.simple ~protocol:Runner.Algo4_local ~strategy:Strategy.Collude_second
      ~t:tol ~f:tol honest
  in
  [
    Table.icell n;
    Table.icell tol;
    Table.bcell ineq3;
    Table.bcell ineq15;
    Table.bcell r.Runner.termination;
    Table.bcell r.Runner.voting_validity;
  ]

let e6 () =
  let t = e6_table () in
  List.iter (fun c -> Table.add_row t (e6_row c)) e6_cells;
  t

let e6_campaign =
  Campaign.v ~id:"e6"
    ~what:"Algorithm 4 under local broadcast: the 3t term disappears"
    ~axes:[ ("(N,t)", List.map (fun (n, t) -> Fmt.str "%d,%d" n t) e6_cells) ]
    ~cells:(fun _ -> e6_cells)
    ~run_cell:(fun _ c -> e6_row c)
    ~collect:(fun _ pairs ->
      let t = e6_table () in
      List.iter (fun (_, row) -> Table.add_row t row) pairs;
      Campaign.tables [ t ])
    ()

let e7a_table () =
  Table.create
    ~title:
      "E7a: exactness flips at the Lemma 2 threshold (Algorithm 1 vs f=t \
       colluders)"
    ~headers:
      [ "t"; "B_G"; "C_G"; "gap"; "N"; "bound ok"; "term"; "valid";
        "exact"; "matches theory" ]
    ~aligns:(List.init 10 (fun i -> if i < 5 then Table.Right else Table.Right))
    ()

(* The nested sweep flattened in loop order: t, then B_G, then C_G
   (skipping the impossible C_G > 0 with B_G = 0), then the gap. *)
let e7a_cells =
  List.concat_map
    (fun tol ->
      List.concat_map
        (fun bg ->
          List.concat_map
            (fun cg ->
              if cg > 0 && bg = 0 then []
              else
                List.map
                  (fun gap -> (tol, bg, cg, gap))
                  [ tol - 1; tol; tol + 1; tol + 2 ])
            [ 0; 1; 2 ])
        [ 1; 2 ])
    [ 1; 2; 3 ]

let e7a_row (tol, bg, cg, gap) =
  let c = Witness.lemma2_cell ~t:tol ~bg ~cg ~gap in
  [
    Table.icell tol;
    Table.icell bg;
    Table.icell cg;
    Table.icell gap;
    Table.icell c.Witness.n;
    Table.bcell c.Witness.bound_ok;
    Table.bcell c.Witness.terminated;
    Table.bcell c.Witness.valid;
    Table.bcell c.Witness.exact;
    Table.bcell c.Witness.matches_theory;
  ]

let e7_lemma2 () =
  let t = e7a_table () in
  List.iter (fun c -> Table.add_row t (e7a_row c)) e7a_cells;
  t

let e7b_table () =
  Table.create
    ~title:
      "E7b: Theorem 10 - SCT with delta_P = t-1 is fooled on honest ties; \
       delta_P = t stalls safely"
    ~headers:[ "t"; "lax (t-1) violates"; "strict (t) safe" ]
    ~aligns:[ Table.Right; Table.Right; Table.Right ]
    ()

let e7b_row tol =
  let d = Witness.theorem10_demo ~t:tol in
  [
    Table.icell tol;
    Table.bcell d.Witness.lax_violates;
    Table.bcell d.Witness.strict_safe;
  ]

let e7_theorem10 () =
  let t = e7b_table () in
  List.iter (fun tol -> Table.add_row t (e7b_row tol)) [ 1; 2; 3 ];
  t

type e7_cell = E7_lemma2 of (int * int * int * int) | E7_theorem10 of int

let e7_campaign =
  Campaign.v ~id:"e7"
    ~what:"Impossibility thresholds: Lemma 2 flip and Theorem 10"
    ~axes:
      [ ("t", [ "1"; "2"; "3" ]); ("B_G", [ "1"; "2" ]);
        ("C_G", [ "0"; "1"; "2" ]); ("gap", [ "t-1"; "t"; "t+1"; "t+2" ]) ]
    ~cells:(fun _ ->
      List.map (fun c -> E7_lemma2 c) e7a_cells
      @ List.map (fun t -> E7_theorem10 t) [ 1; 2; 3 ])
    ~run_cell:(fun _ -> function
      | E7_lemma2 c -> e7a_row c
      | E7_theorem10 t -> e7b_row t)
    ~collect:(fun _ pairs ->
      let rows p =
        List.filter_map (fun (c, r) -> if p c then Some r else None) pairs
      in
      let ta = e7a_table () in
      List.iter (Table.add_row ta)
        (rows (function E7_lemma2 _ -> true | _ -> false));
      let tb = e7b_table () in
      List.iter (Table.add_row tb)
        (rows (function E7_theorem10 _ -> true | _ -> false));
      Campaign.tables [ ta; tb ])
    ()

let e10a_table ~n () =
  Table.create
    ~title:
      (Fmt.str
         "E10a: Theorem 12 frontier at N=%d - max tolerable t vs vote \
          dispersion (2B_G + C_G)"
         n)
    ~headers:
      [ "B_G"; "C_G"; "2B_G+C_G"; "t_vd (K=2)"; "max t BFT/CFT";
        "t_vd (K=3)"; "max t SCT" ]
    ~aligns:(List.init 7 (fun _ -> Table.Right))
    ()

let e10a_cells =
  List.concat_map
    (fun bg ->
      List.filter_map
        (fun cg -> if cg > 0 && bg = 0 then None else Some (bg, cg))
        [ 0; 1; 2; 3; 4 ])
    [ 0; 1; 2; 3 ]

let e10a_row ~n (bg, cg) =
  [
    Table.icell bg;
    Table.icell cg;
    Table.icell ((2 * bg) + cg);
    Table.fcell ~decimals:1 (Bounds.vote_dispersion_tolerance Bounds.Bft ~bg ~cg);
    Table.icell (Bounds.max_tolerable_t Bounds.Bft ~n ~bg ~cg);
    Table.fcell ~decimals:1 (Bounds.vote_dispersion_tolerance Bounds.Sct ~bg ~cg);
    Table.icell (Bounds.max_tolerable_t Bounds.Sct ~n ~bg ~cg);
  ]

let e10_frontier ?(n = 12) () =
  let t = e10a_table ~n () in
  List.iter (fun c -> Table.add_row t (e10a_row ~n c)) e10a_cells;
  t

(* E11: ablation of the local judgment condition delta_P.

   Two workloads at t = 2: a decisive electorate (gap = 5) where larger
   delta_P only costs termination (Property 3 needs gap > delta_P + t for
   every honest node to propose), and the Theorem 10 honest-tie attack
   where delta_P < t lets the colluders force an invalid decision through
   the t+1 quorum.  Together they show delta_P = t is the unique safe and
   live choice for safety-guaranteed protocols, and delta_P = 0 maximises
   liveness when validity-below-the-bound is acceptable (Algorithm 1). *)
let e11_table ~t () =
  Table.create
    ~title:
      (Fmt.str
         "E11: delta_P ablation at t=%d - termination on a decisive \
          electorate vs safety under the Theorem 10 tie attack"
         t)
    ~headers:
      [ "delta_P"; "quorum"; "decisive: term"; "decisive: valid";
        "tie attack: term"; "tie attack: tb-valid" ]
    ~aligns:(List.init 6 (fun _ -> Table.Right))
    ()

let e11_cells ~t =
  List.concat_map
    (fun dp ->
      List.map
        (fun (quorum_label, protocol) -> (dp, quorum_label, protocol))
        [ ("N-t", Runner.Algo1); ("t+1", Runner.Algo2_sct) ])
    (List.init ((2 * t) + 2) Fun.id)

let e11_row ~t (dp, quorum_label, protocol) =
  let decisive = Witness.inputs ~ag:(1 + ((2 * t) + 1)) ~bg:1 ~cg:0 in
  let k = 2 * t in
  let tie_inputs =
    List.init k (fun _ -> Oid.of_int 0) @ List.init k (fun _ -> Oid.of_int 1)
  in
  let run_with strategy inputs =
    Runner.run
      (Runner.spec
         ~byzantine:(List.init t (fun i -> List.length inputs + i))
         ~protocol ~strategy
         ~judgment_override:(Vv_core.Variant.Delta_custom dp)
         ~n:(List.length inputs + t)
         ~t
         (inputs @ List.init t (fun _ -> Oid.of_int 0)))
  in
  let dec = run_with Strategy.Collude_second decisive in
  let tie = run_with (Strategy.Collude_fixed 0) tie_inputs in
  [
    Table.icell dp;
    quorum_label;
    Table.bcell dec.Runner.termination;
    Table.bcell dec.Runner.voting_validity;
    Table.bcell tie.Runner.termination;
    Table.bcell tie.Runner.voting_validity_tb;
  ]

let e11_judgment_ablation ?(t = 2) () =
  let tab = e11_table ~t () in
  List.iter (fun c -> Table.add_row tab (e11_row ~t c)) (e11_cells ~t);
  tab

let e11_campaign =
  let t = 2 in
  Campaign.v ~id:"e11"
    ~what:"Ablation: local judgment condition delta_P (liveness vs safety)"
    ~axes:
      [ ("delta_P", List.init ((2 * t) + 2) string_of_int);
        ("quorum", [ "N-t"; "t+1" ]) ]
    ~cells:(fun _ -> e11_cells ~t)
    ~run_cell:(fun _ c -> e11_row ~t c)
    ~collect:(fun _ pairs ->
      let tab = e11_table ~t () in
      List.iter (fun (_, row) -> Table.add_row tab row) pairs;
      Campaign.tables [ tab ])
    ()

(* Section VI-A's remark: moving a hesitant vote from the runner-up B to a
   third option C shrinks the bound (B_G weighs double).  Compare the two
   input multisets empirically at the marginal tolerance. *)
let e10b_table () =
  Table.create
    ~title:
      "E10b: third-option trick - voting C instead of B buys one more \
       tolerable fault"
    ~headers:
      [ "honest inputs"; "B_G"; "C_G"; "bound (t=3)"; "N"; "term"; "valid" ]
    ~aligns:
      [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
        Table.Right; Table.Right ]
    ()

(* 13 honest votes: A x9 + four votes that either pile on B or spread. *)
let e10b_cells =
  [
    ( "A*9 B*4      (hesitant voters all pick B)",
      Witness.inputs ~ag:9 ~bg:4 ~cg:0 );
    ( "A*9 B*2 C,D  (two hesitant voters pick third options)",
      List.map Oid.of_int [ 0; 0; 0; 0; 0; 0; 0; 0; 0; 1; 1; 2; 3 ] );
  ]

(* Returns [None] (no row) for degenerate multisets [decompose] rejects. *)
let e10b_row (label, honest) =
  match Bounds.decompose ~tie:Vv_ballot.Tie_break.default honest with
  | None -> None
  | Some (_, _, bg, cg) ->
      let tol = 3 in
      let n = List.length honest + tol in
      let r =
        Runner.simple ~protocol:Runner.Algo1 ~strategy:Strategy.Collude_second
          ~t:tol ~f:tol honest
      in
      Some
        [
          label;
          Table.icell bg;
          Table.icell cg;
          Table.icell (Bounds.bft_bound ~t:tol ~bg ~cg);
          Table.icell n;
          Table.bcell r.Runner.termination;
          Table.bcell r.Runner.voting_validity;
        ]

let e10_third_option () =
  let t = e10b_table () in
  List.iter
    (fun c -> match e10b_row c with Some row -> Table.add_row t row | None -> ())
    e10b_cells;
  t

(* Two sub-tables, one campaign: the frontier grid (one cell per
   (B_G, C_G) point) and the third-option comparison. *)
type e10_cell =
  | E10_frontier of (int * int)
  | E10_third of (string * Vv_ballot.Option_id.t list)

let e10_campaign =
  Campaign.v ~id:"e10"
    ~what:"Theorem 12: dispersion-tolerance frontier and third-option trick"
    ~axes:
      [ ("B_G", [ "0"; "1"; "2"; "3" ]); ("C_G", [ "0"; "1"; "2"; "3"; "4" ]) ]
    ~cells:(fun _ ->
      List.map (fun c -> E10_frontier c) e10a_cells
      @ List.map (fun c -> E10_third c) e10b_cells)
    ~run_cell:(fun _ cell ->
      match cell with
      | E10_frontier c -> Some (e10a_row ~n:12 c)
      | E10_third c -> e10b_row c)
    ~collect:(fun _ pairs ->
      let rows p =
        List.filter_map
          (fun (c, row) ->
            match row with Some r when p c -> Some r | _ -> None)
          pairs
      in
      let ta = e10a_table ~n:12 () in
      List.iter (Table.add_row ta)
        (rows (function E10_frontier _ -> true | _ -> false));
      let tb = e10b_table () in
      List.iter (Table.add_row tb)
        (rows (function E10_third _ -> true | _ -> false));
      Campaign.tables [ ta; tb ])
    ()
