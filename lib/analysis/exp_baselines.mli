(** Experiments E8-E9: baseline comparison and protocol cost. *)

val e8_election :
  ?trials:int -> ?ng:int -> ?t:int -> ?seed:int -> unit -> Vv_prelude.Table.t
(** Election workload: exact-plurality / agreement / termination rates of
    the voting-validity protocols vs the approximate baselines under
    collusion. *)

val e8_sensor :
  ?trials:int -> ?ng:int -> ?t:int -> ?seed:int -> unit -> Vv_prelude.Table.t
(** Sensor workload with Byzantine outliers: where median/approximate
    agreement win and plurality voting has nothing to find. *)

val e9 : ?t:int -> unit -> Vv_prelude.Table.t
(** Rounds and messages per protocol and substrate across system sizes. *)

val e8_campaign : Vv_exec.Campaign.t
(** Two coarse cells (election, sensor), each threading its own rng; the
    default seed reproduces the legacy per-table seeds byte-for-byte.
    Smoke tier shrinks the trial counts. *)

val e9_campaign : Vv_exec.Campaign.t
(** One cell per (protocol, substrate, N_G) triple; deterministic. *)
