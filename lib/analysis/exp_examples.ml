(* Experiments E4-E5: the paper's worked examples.

   E4: the Section I / IV motivating scenario (N = 10, t = 3, honest inputs
       {0,0,0,1,1,2,3}): Algorithm 1 is driven to the wrong output by the
       colluding adversary, while the safety-guaranteed Algorithm 2 stalls
       rather than lies, and both decide correctly once the bound holds.
   E5: the Section VII-A incremental threshold example and a delay sweep
       comparing rounds-to-decision of Algorithms 1 and 3. *)

module Table = Vv_prelude.Table
module Runner = Vv_core.Runner
module Strategy = Vv_core.Strategy
module Oid = Vv_ballot.Option_id
module Campaign = Vv_exec.Campaign

let describe_outputs outputs =
  let cells =
    List.map
      (function None -> "-" | Some v -> Oid.to_string v)
      outputs
  in
  String.concat "" cells

let run_row protocol strategy ~tol ~f honest =
  let r = Runner.simple ~protocol ~strategy ~t:tol ~f honest in
  [
    Runner.protocol_label protocol;
    Fmt.str "%a" Strategy.pp strategy;
    Table.icell tol;
    Table.icell f;
    Table.bcell r.Runner.termination;
    Table.bcell r.Runner.agreement;
    Table.bcell r.Runner.voting_validity;
    Table.bcell r.Runner.safety_admissible;
    describe_outputs r.Runner.outputs;
  ]

let e4_table () =
  Table.create
    ~title:
      "E4: Section I example - honest {A,A,A,B,B,C,D}, N=10, t=3 vs N=13, \
       t=3"
    ~headers:
      [ "protocol"; "adversary"; "t"; "f"; "term"; "agree"; "validity";
        "safe"; "outputs" ]
    ~aligns:
      [ Table.Left; Table.Left; Table.Right; Table.Right; Table.Right;
        Table.Right; Table.Right; Table.Right; Table.Left ]
    ()

(* Below the bound (N = 10 <= 2t + 2B_G + C_G = 12): Algorithm 1 is
   fooled; SCT stalls but stays safe.  Then the same dispersion with a
   decisive plurality (gap > 2t): both succeed. *)
let e4_cells =
  let honest = Witness.section1_example in
  let decisive =
    List.map Oid.of_int [ 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 1; 1; 2; 3 ]
  in
  [
    (Runner.Algo1, honest);
    (Runner.Algo2_sct, honest);
    (Runner.Algo1, decisive);
    (Runner.Algo2_sct, decisive);
  ]

let e4_row (protocol, honest) =
  run_row protocol Strategy.Collude_second ~tol:3 ~f:3 honest

let e4 () =
  let t = e4_table () in
  List.iter (fun c -> Table.add_row t (e4_row c)) e4_cells;
  t

let e4_campaign =
  Campaign.v ~id:"e4"
    ~what:"Section I/IV worked example: Algorithm 1 fooled, SCT safe"
    ~axes:[ ("protocol", [ "algo1"; "algo2-sct" ]);
            ("electorate", [ "section1"; "decisive" ]) ]
    ~cells:(fun _ -> e4_cells)
    ~run_cell:(fun _ c -> e4_row c)
    ~collect:(fun _ pairs ->
      let t = e4_table () in
      List.iter (fun (_, row) -> Table.add_row t row) pairs;
      Campaign.tables [ t ])
    ()

let e5a_table () =
  Table.create
    ~title:
      "E5a: Section VII-A example - incremental threshold firing point \
       (N=10, arrivals 0,0,1,0,0,0,2,3,0,1)"
    ~headers:[ "delta_P"; "fires after k votes"; "paper says" ]
    ~aligns:[ Table.Right; Table.Right; Table.Left ]
    ()

let e5a_row dp =
  let fires =
    match dp with
    | 0 -> Witness.incremental_firing_point ~n:10 Witness.section7_sequence
    | _ ->
        Witness.incremental_firing_point ~delta_p:dp ~n:10
          Witness.section7_sequence
  in
  let paper = if dp = 0 then "7 (Section VII-A)" else "-" in
  [
    Table.icell dp;
    (match fires with Some k -> Table.icell k | None -> "-");
    paper;
  ]

let e5_firing () =
  let t = e5a_table () in
  List.iter (fun dp -> Table.add_row t (e5a_row dp)) [ 0; 1 ];
  t

let mean_decision_round (r : Runner.outcome) =
  let rounds = List.filter_map Fun.id r.Runner.decision_rounds in
  match rounds with
  | [] -> None
  | l ->
      Some
        (List.fold_left ( + ) 0 l |> fun s ->
         float_of_int s /. float_of_int (List.length l))

(* E5c: adversarial scheduling.  The network (within its bound delta) may
   order deliveries to hurt the incremental threshold: votes for the
   leading option arrive last, so Inequality (14) fires as late as
   possible.  Algorithm 3 must still decide no later than Algorithm 1's
   fixed 2*delta wait — optimistic responsiveness degrades gracefully to
   the synchronous bound. *)
let e5c_table ~delta () =
  Table.create
    ~title:
      (Fmt.str
         "E5c: adversarial schedule (leader votes delayed to the bound \
          delta=%d) - Algorithm 3 degrades to Algorithm 1's wait, never \
          worse"
         delta)
    ~headers:[ "protocol"; "schedule"; "term"; "valid"; "rounds" ]
    ~aligns:[ Table.Left; Table.Left; Table.Right; Table.Right; Table.Right ]
    ()

let e5c_cases = [ `Algo1_worst; `Algo3_starved; `Algo3_instant ]

let e5c_row ~delta case =
  let honest = List.map Oid.of_int [ 0; 0; 0; 0; 0; 1 ] in
  let n = List.length honest + 1 in
  (* Senders preferring the leader get the full delay; everyone else is
     delivered immediately.  Sender ids 0..4 vote 0 (the leader). *)
  let schedule ~round:_ ~src ~dst:_ = if src <= 4 then delta else 1 in
  let run protocol delay =
    Runner.run
      (Runner.spec ~byzantine:[ n - 1 ] ~protocol
         ~strategy:Vv_core.Strategy.Collude_second ~delay ~n ~t:1
         (honest @ [ Oid.of_int 0 ]))
  in
  let adversarial = Vv_sim.Delay.Adversarial { bound = delta; schedule } in
  let label, protocol, delay, sched_label =
    match case with
    | `Algo1_worst ->
        ("algo1", Runner.Algo1, Vv_sim.Delay.Fixed delta, "uniform worst")
    | `Algo3_starved ->
        ("algo3", Runner.Algo3_incremental, adversarial, "leader-starved")
    | `Algo3_instant ->
        ("algo3", Runner.Algo3_incremental, Vv_sim.Delay.Fixed 1, "instant")
  in
  let r = run protocol delay in
  [
    label;
    sched_label;
    Table.bcell r.Runner.termination;
    Table.bcell r.Runner.voting_validity;
    Table.icell r.Runner.rounds;
  ]

let e5_adversarial_schedule ?(delta = 4) () =
  let t = e5c_table ~delta () in
  List.iter (fun case -> Table.add_row t (e5c_row ~delta case)) e5c_cases;
  t

let e5b_table () =
  Table.create
    ~title:
      "E5b: rounds to decision, Algorithm 1 (wait 2*delta) vs Algorithm 3 \
       (incremental) - uniform delays 1..delta"
    ~headers:
      [ "delta"; "algo1 mean decision round"; "algo3 mean decision round";
        "speedup" ]
    ~aligns:[ Table.Right; Table.Right; Table.Right; Table.Right ]
    ()

let e5b_deltas = [ 1; 2; 3; 4; 5; 6 ]

let e5b_row ~seeds hi =
  let honest = List.map Oid.of_int [ 0; 0; 0; 0; 0; 1 ] in
  let delay =
    if hi = 1 then Vv_sim.Delay.Synchronous
    else Vv_sim.Delay.Uniform { lo = 1; hi }
  in
  let mean_of protocol =
    let acc = ref 0.0 and cnt = ref 0 in
    for seed = 1 to seeds do
      let r =
        Runner.simple ~protocol ~strategy:Strategy.Collude_second ~delay
          ~seed:(seed * 7919) ~t:1 ~f:1 honest
      in
      match mean_decision_round r with
      | Some m ->
          acc := !acc +. m;
          incr cnt
      | None -> ()
    done;
    if !cnt = 0 then nan else !acc /. float_of_int !cnt
  in
  let m1 = mean_of Runner.Algo1 in
  let m3 = mean_of Runner.Algo3_incremental in
  [
    Table.icell hi;
    Table.fcell ~decimals:2 m1;
    Table.fcell ~decimals:2 m3;
    Table.fcell ~decimals:2 (m1 /. m3);
  ]

let e5_delay_sweep ?(seeds = 12) () =
  let t = e5b_table () in
  List.iter (fun hi -> Table.add_row t (e5b_row ~seeds hi)) e5b_deltas;
  t

(* Three sub-tables, one campaign: the firing-point rows, the delay
   sweep (one cell per delta; every trial seed is explicit, so the cells
   are independent), and the adversarial schedule. *)
type e5_cell =
  | E5_firing of int
  | E5_sweep of int
  | E5_adv of [ `Algo1_worst | `Algo3_starved | `Algo3_instant ]

let e5_campaign =
  Campaign.v ~id:"e5"
    ~what:"Section VII-A incremental threshold: firing point + delay sweep"
    ~axes:
      [ ("table", [ "firing"; "delay-sweep"; "adversarial" ]);
        ("delta", List.map string_of_int e5b_deltas) ]
    ~cells:(fun _ ->
      List.map (fun dp -> E5_firing dp) [ 0; 1 ]
      @ List.map (fun hi -> E5_sweep hi) e5b_deltas
      @ List.map (fun c -> E5_adv c) e5c_cases)
    ~run_cell:(fun ctx cell ->
      let seeds =
        match ctx.Campaign.profile with Campaign.Full -> 12 | Campaign.Smoke -> 4
      in
      match cell with
      | E5_firing dp -> e5a_row dp
      | E5_sweep hi -> e5b_row ~seeds hi
      | E5_adv case -> e5c_row ~delta:4 case)
    ~collect:(fun _ pairs ->
      let rows p = List.filter_map (fun (c, r) -> if p c then Some r else None) pairs in
      let ta = e5a_table () in
      List.iter (Table.add_row ta)
        (rows (function E5_firing _ -> true | _ -> false));
      let tb = e5b_table () in
      List.iter (Table.add_row tb)
        (rows (function E5_sweep _ -> true | _ -> false));
      let tc = e5c_table ~delta:4 () in
      List.iter (Table.add_row tc)
        (rows (function E5_adv _ -> true | _ -> false));
      Campaign.tables [ ta; tb; tc ])
    ()
