(** The experiment registry: every figure/experiment of the paper keyed by
    id (DESIGN.md §4 is the index, EXPERIMENTS.md the paper-vs-measured
    record). Each entry is a first-class {!Vv_exec.Campaign.t}; ids and
    emitted tables are unchanged from the legacy closure registry. *)

val all : Vv_exec.Campaign.t list
(** Registry order — fig1a..fig1c, then e4..e15. *)

val find : string -> Vv_exec.Campaign.t option
val ids : string list

val run_all :
  ?out:Format.formatter -> ?profile:Vv_exec.Campaign.profile -> unit -> unit
(** Print every campaign's tables on one domain (the [bench/main.exe]
    harness). [profile] defaults to [Full]; [Smoke] is the CI-sized
    tier used by [bench --quick]. *)
