(* Experiment E19: follower replication with primary crash-recovery.

   Each cell stages the full replication lifecycle with real daemons:
   boot a primary and a follower (each in its own domain, each on its own
   Unix socket, each with its own snapshot file), drive burst A through
   the primary and let the decisions stream to the follower, then kill
   the primary, restart it from its snapshot — exercising the
   stale-socket probe in {!Server.listen_unix} and the follower's
   reconnect-and-re-catchup path — and drive burst B.  The cell passes
   when the follower's replayed log is structurally identical to the
   primary's, every submitted subject decided exactly once, and the
   follower made exactly two catchups (boot + post-restart reconnect).

   Racy cells drive burst B with {!Client.run_load_racy}: submissions
   race across connections, so the position assignment — and with it the
   committed/attempts figures — is scheduling-dependent.  Those columns
   print "-" and the pinned facts shrink to what survives the race: the
   decided-subject set, follower ≡ primary, validity, and the catchup
   count.  Deterministic cells additionally pin the whole ledger against
   an in-process {!Engine.run} over the concatenated bursts, proving the
   crash/restart seam assigns positions exactly as an uninterrupted run
   would. *)

module Table = Vv_prelude.Table
module Rng = Vv_prelude.Rng
module Json = Vv_prelude.Json
module Oid = Vv_ballot.Option_id
module Ledger = Vv_multishot.Ledger
module Engine = Vv_multishot.Engine
module Server = Vv_serve.Server
module Replica = Vv_serve.Replica
module Client = Vv_serve.Client
module Campaign = Vv_exec.Campaign

type cell = {
  batch : int;
  clients : int;
  sa : int;  (* burst A subjects, before the primary crash *)
  sb : int;  (* burst B subjects, after the restart *)
  racy : bool;  (* burst B ack-serialized or all-in-flight *)
}

type row = {
  stats : Engine.stats;  (* of the primary's final log *)
  follower_eq : bool;  (* follower log == primary log after resync *)
  matches_local : bool;  (* deterministic cells: log == Engine.run *)
  subjects_ok : bool;  (* every subject decided exactly once *)
  catchups : int;  (* follower's successful primary connections *)
  clean : bool;  (* no errors, both daemons shut down orderly *)
}

let cells = function
  | Campaign.Smoke ->
      [ { batch = 2; clients = 2; sa = 10; sb = 10; racy = false } ]
  | Campaign.Full ->
      [
        { batch = 4; clients = 3; sa = 24; sb = 24; racy = false };
        { batch = 4; clients = 4; sa = 24; sb = 24; racy = true };
        { batch = 8; clients = 4; sa = 32; sb = 32; racy = false };
      ]

let n = 9
let t = 2

let config seed =
  Ledger.config
    ~byzantine:(List.init t (fun i -> n - 1 - i))
    ~retry:(Ledger.Rotate_and_adjust (Vv_core.Session.Bandwagon, 6))
    ~seed ~n ~t ()

let requests ~seed ~first count =
  let rng = Rng.create (Rng.derive seed (1 + first)) in
  let dist = Vv_dist.Multinomial.create ~n:(n - t) ~p:[| 0.5; 0.3; 0.2 |] in
  List.init count (fun i ->
      let honest = Vv_dist.Montecarlo.sample_inputs dist rng in
      (first + i, honest @ List.init t (fun _ -> Oid.of_int 0)))

let shutdown_via path =
  let c = Client.connect_unix ~retry_for:5. path in
  let r =
    Client.request c ~id:(Json.String "stop") ~meth:"shutdown" (Json.Obj [])
  in
  Client.close c;
  match r with Ok _ -> true | Error _ -> false

(* Poll the follower until its replicated height reaches [target]. *)
let await_height ~deadline path target =
  let c = Client.connect_unix ~retry_for:5. path in
  let rec poll () =
    match Client.status c with
    | Ok (Json.Obj fields) when List.assoc_opt "height" fields
                                = Some (Json.Int target) ->
        true
    | _ when Unix.gettimeofday () > deadline -> false
    | _ ->
        Unix.sleepf 0.02;
        poll ()
  in
  let reached = poll () in
  Client.close c;
  reached

let read_log path =
  let c = Client.connect_unix ~retry_for:5. path in
  let log = Client.catchup ~from:0 c in
  Client.close c;
  log

let run_cell (ctx : Campaign.ctx) cell =
  let cfg = config ctx.Campaign.cell_seed in
  let stem =
    Printf.sprintf "%s/vvc-e19-%d-%d"
      (Filename.get_temp_dir_name ())
      (Unix.getpid ()) ctx.Campaign.index
  in
  let sock_p = stem ^ "-p.sock" and sock_f = stem ^ "-f.sock" in
  let snap_p = stem ^ "-p.snap" and snap_f = stem ^ "-f.snap" in
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ sock_p; sock_f; snap_p; snap_f ];
  let boot_primary () =
    let listen = Server.listen_unix sock_p in
    let d =
      Domain.spawn (fun () ->
          Server.serve ~batch:cell.batch ~jobs:ctx.Campaign.jobs
            ~snapshot:snap_p ~listen cfg)
    in
    (listen, d)
  in
  let listen_p, primary = boot_primary () in
  let listen_f = Server.listen_unix sock_f in
  let follower =
    Domain.spawn (fun () ->
        Replica.run ~batch:cell.batch ~jobs:ctx.Campaign.jobs
          ~snapshot:snap_f ~retry_every:0.05
          ~primary:(Unix.ADDR_UNIX sock_p) ~listen:listen_f cfg)
  in
  let fail fmt =
    Printf.ksprintf
      (fun msg -> failwith (Printf.sprintf "e19 cell %d: %s" ctx.Campaign.index msg))
      fmt
  in
  let burst ~racy reqs =
    let conns =
      List.init cell.clients (fun _ -> Client.connect_unix ~retry_for:10. sock_p)
    in
    let driver = if racy then Client.run_load_racy else Client.run_load in
    let r = driver ~conns reqs in
    List.iter Client.close conns;
    match r with Ok rep -> rep | Error msg -> fail "burst: %s" msg
  in
  (* Burst A, then crash the primary and bring it back from its snapshot. *)
  let reqs_a = requests ~seed:ctx.Campaign.cell_seed ~first:0 cell.sa in
  let rep_a = burst ~racy:false reqs_a in
  if not (shutdown_via sock_p) then fail "primary shutdown (pre-crash)";
  let (_ : Server.outcome) = Domain.join primary in
  Unix.close listen_p;
  (* The dead listener's socket file survives; the restart's listen_unix
     must probe it, find no live daemon, and reclaim the path. *)
  let listen_p, primary = boot_primary () in
  let reqs_b = requests ~seed:ctx.Campaign.cell_seed ~first:cell.sa cell.sb in
  let rep_b = burst ~racy:cell.racy reqs_b in
  let total = cell.sa + cell.sb in
  let primary_log =
    match read_log sock_p with
    | Ok l -> l
    | Error msg -> fail "primary catchup: %s" msg
  in
  (* The follower re-catches-up on its own clock; wait for convergence. *)
  let deadline = Unix.gettimeofday () +. 30. in
  let converged = await_height ~deadline sock_f total in
  let follower_log =
    match read_log sock_f with
    | Ok l -> l
    | Error msg -> fail "follower catchup: %s" msg
  in
  if not (shutdown_via sock_f) then fail "follower shutdown";
  let f_out = Domain.join follower in
  Unix.close listen_f;
  if not (shutdown_via sock_p) then fail "primary shutdown (final)";
  let (_ : Server.outcome) = Domain.join primary in
  Unix.close listen_p;
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ sock_p; sock_f; snap_p; snap_f ];
  let subjects_of log =
    List.sort compare (List.map (fun (s : Ledger.slot) -> s.Ledger.subject) log)
  in
  let matches_local =
    cell.racy
    || primary_log = fst (Engine.run ~batch:cell.batch ~jobs:1 cfg (reqs_a @ reqs_b))
  in
  {
    stats =
      Engine.stats_of ~batch:cell.batch ~bb:cfg.Ledger.bb ~n:cfg.Ledger.n
        ~t:cfg.Ledger.t primary_log;
    follower_eq = converged && follower_log = primary_log;
    matches_local;
    subjects_ok = subjects_of primary_log = List.init total Fun.id;
    catchups = f_out.Replica.catchups;
    clean =
      rep_a.Client.errors = [] && rep_b.Client.errors = []
      && List.length primary_log = total;
  }

let collect _profile pairs =
  let tab =
    Table.create
      ~title:
        (Fmt.str
           "E19: follower replication across a primary crash (n=%d t=%d, \
            SCT, rotate-and-adjust)"
           n t)
      ~headers:
        [ "batch"; "clients"; "subjects"; "racy"; "committed"; "attempts";
          "log==local"; "follower=="; "subjects"; "catchups"; "valid" ]
      ~aligns:
        [ Table.Right; Table.Right; Table.Right; Table.Right; Table.Right;
          Table.Right; Table.Right; Table.Right; Table.Right; Table.Right;
          Table.Right ]
      ()
  in
  List.iter
    (fun (cell, r) ->
      (* Racy cells race position assignment, so any position-dependent
         figure is scheduling noise: print "-" and pin only what the race
         preserves. *)
      let det s = if cell.racy then "-" else s in
      Table.add_row tab
        [
          Table.icell cell.batch;
          Table.icell cell.clients;
          Table.icell (cell.sa + cell.sb);
          Table.bcell cell.racy;
          det (Table.icell r.stats.Engine.committed);
          det (Table.icell r.stats.Engine.attempts_total);
          det (Table.bcell r.matches_local);
          Table.bcell r.follower_eq;
          Table.bcell r.subjects_ok;
          Table.icell r.catchups;
          Table.bcell r.stats.Engine.all_valid;
        ])
    pairs;
  let ok =
    List.for_all
      (fun (_, r) ->
        r.follower_eq && r.matches_local && r.subjects_ok && r.clean
        && r.catchups = 2 && r.stats.Engine.all_valid)
      pairs
  in
  {
    Campaign.tables = [ tab ];
    ok;
    verdict =
      Some
        (Fmt.str
           "%s: follower resynced byte-identically across a primary crash \
            in %d/%d cells"
           (if ok then "OK" else "DIVERGED")
           (List.length
              (List.filter (fun (_, r) -> r.follower_eq) pairs))
           (List.length pairs));
  }

let e19_campaign =
  Campaign.v ~id:"e19"
    ~what:
      "follower replication: catchup resync, primary crash-recovery, and \
       racy-load subject-set equivalence"
    ~seed:0xe19
    ~axes:[ ("batch", [ "4"; "8" ]); ("racy", [ "false"; "true" ]) ]
    ~cells ~run_cell ~collect ()
