(* Experiments E1-E3: regenerate Figure 1 of Section VI-B.

   E1 / Fig 1(a): the preference profiles D1-D4 and their initial system
                  entropy H_0.
   E2 / Fig 1(b): Pr(A_G - B_G > t) per profile and tolerance t, computed
                  three independent ways — exact enumeration of Equations
                  9-13, Monte-Carlo sampling, and *empirical runs of
                  Algorithm 1* against the worst-case colluding adversary
                  on inputs drawn from the profile.
   E3 / Fig 1(c): the system entropy H_s of achieving voting validity as a
                  function of the actual number of faults f. *)

module Table = Vv_prelude.Table
module Profiles = Vv_dist.Profiles
module Cache = Vv_dist.Cache
module Mc = Vv_dist.Montecarlo
module Rng = Vv_prelude.Rng
module Campaign = Vv_exec.Campaign

let profile_names = List.map (fun (p : Profiles.t) -> p.Profiles.name) Profiles.all

let fig1a_table () =
  Table.create ~title:"Figure 1(a): preference profiles and entropy"
    ~headers:[ "profile"; "p1"; "p2"; "p3"; "p4"; "H(p)"; "H0 (xN_G)" ]
    ~aligns:
      [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
        Table.Right; Table.Right ]
    ()

let fig1a_row ~ng (pr : Profiles.t) =
  let cells = Array.to_list (Array.map (fun p -> Table.fcell ~decimals:2 p) pr.p) in
  [ pr.Profiles.name ] @ cells
  @ [
      Table.fcell ~decimals:4 (Vv_dist.Entropy.shannon pr.Profiles.p);
      Table.fcell ~decimals:2 (Profiles.initial_entropy ~ng pr);
    ]

let fig1a ?(ng = Profiles.default_ng) () =
  let t = fig1a_table () in
  List.iter (fun pr -> Table.add_row t (fig1a_row ~ng pr)) Profiles.all;
  t

let fig1a_campaign =
  Campaign.v ~id:"fig1a"
    ~what:"Figure 1(a): preference profiles D1-D4 and initial entropy"
    ~axes:[ ("profile", profile_names) ]
    ~cells:(fun _ -> Profiles.all)
    ~run_cell:(fun _ pr -> fig1a_row ~ng:Profiles.default_ng pr)
    ~collect:(fun _ pairs ->
      let t = fig1a_table () in
      List.iter (fun (_, row) -> Table.add_row t row) pairs;
      Campaign.tables [ t ])
    ()

(* One empirical success estimate: sample honest inputs from the profile,
   run Algorithm 1 with f = t colluders on the runner-up, and read the
   success rate (terminated with the exact honest plurality) off the batch
   summary.  The generator is invoked in index order on the calling domain
   at every [jobs] value, so drawing from the shared rng inside it is
   reproducible even when the runs themselves fan out across domains. *)
let empirical_success ?jobs ~trials ~t ~rng dist =
  let summary =
    Vv_exec.Executor.run_generator ?jobs ~count:trials (fun _ ->
        let honest = Mc.sample_inputs dist rng in
        Vv_core.Runner.simple_spec ~protocol:Vv_core.Runner.Algo1
          ~strategy:Vv_core.Strategy.Collude_second ~t ~f:t
          ~seed:(Rng.bits rng) honest)
  in
  Vv_exec.Summary.success_rate summary

let fig1b ?jobs ?(ng = Profiles.default_ng) ?(t_max = 4) ?(mc_samples = 20_000)
    ?(trials = 150) ?(seed = 0xf1b) () =
  let rng = Rng.create seed in
  let t =
    Table.create
      ~title:
        "Figure 1(b): Pr(A_G - B_G > t) - exact vs Monte-Carlo vs protocol \
         runs"
      ~headers:
        [ "profile"; "t"; "exact"; "monte-carlo"; "+/-"; "protocol-runs" ]
      ~aligns:
        [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
          Table.Right ]
      ()
  in
  List.iter
    (fun (pr : Profiles.t) ->
      let dist = Profiles.distribution ~ng pr in
      for tol = 0 to t_max do
        let exact = Cache.pr_voting_validity dist ~t:tol in
        let mc, hw =
          Mc.pr_voting_validity dist ~t:tol ~samples:mc_samples ~rng
        in
        let emp = empirical_success ?jobs ~trials ~t:tol ~rng dist in
        Table.add_row t
          [
            pr.Profiles.name;
            Table.icell tol;
            Table.fcell exact;
            Table.fcell mc;
            Table.fcell hw;
            Table.fcell emp;
          ]
      done)
    Profiles.all;
  t

(* The whole fig1b table draws Monte-Carlo samples and protocol inputs
   from one rng shared across every profile and tolerance, so the
   campaign is a single cell: the grid cannot fan out without changing
   the stream, but the cell threads [ctx.jobs] into the inner
   [run_generator] sweep, which is jobs-invariant by construction. *)
let fig1b_campaign =
  Campaign.v ~id:"fig1b"
    ~what:"Figure 1(b): Pr(A_G - B_G > t) exact / Monte-Carlo / protocol runs"
    ~seed:0xf1b
    ~axes:[ ("profile", profile_names); ("t", [ "0"; "1"; "2"; "3"; "4" ]) ]
    ~cells:(fun _ -> [ () ])
    ~run_cell:(fun ctx () ->
      match ctx.Campaign.profile with
      | Campaign.Full ->
          fig1b ~jobs:ctx.Campaign.jobs ~seed:ctx.Campaign.base_seed ()
      | Campaign.Smoke ->
          fig1b ~jobs:ctx.Campaign.jobs ~seed:ctx.Campaign.base_seed ~t_max:2
            ~mc_samples:4_000 ~trials:30 ())
    ~collect:(fun _ pairs -> Campaign.tables (List.map snd pairs))
    ()

let fig1c_table ~f_max () =
  Table.create ~title:"Figure 1(c): system entropy H_s vs actual faults f"
    ~headers:
      ([ "profile"; "H0" ] @ List.init (f_max + 1) (fun f -> Fmt.str "f=%d" f))
    ~aligns:(Table.Left :: List.init (f_max + 2) (fun _ -> Table.Right))
    ()

let fig1c_row ~ng ~f_max (pr : Profiles.t) =
  let dist = Profiles.distribution ~ng pr in
  let cells =
    List.init (f_max + 1) (fun f -> Table.fcell (Cache.system_entropy dist ~f))
  in
  [ pr.Profiles.name; Table.fcell ~decimals:2 (Profiles.initial_entropy ~ng pr) ]
  @ cells

let fig1c ?(ng = Profiles.default_ng) ?(f_max = 4) () =
  let t = fig1c_table ~f_max () in
  List.iter (fun pr -> Table.add_row t (fig1c_row ~ng ~f_max pr)) Profiles.all;
  t

let fig1c_campaign =
  Campaign.v ~id:"fig1c"
    ~what:"Figure 1(c): system entropy H_s vs actual faults"
    ~axes:[ ("profile", profile_names); ("f", [ "0"; "1"; "2"; "3"; "4" ]) ]
    ~cells:(fun _ -> Profiles.all)
    ~run_cell:(fun _ pr -> fig1c_row ~ng:Profiles.default_ng ~f_max:4 pr)
    ~collect:(fun _ pairs ->
      let t = fig1c_table ~f_max:4 () in
      List.iter (fun (_, row) -> Table.add_row t row) pairs;
      Campaign.tables [ t ])
    ()
