(** Experiment E15: convergence of Section V-B revote sessions. *)

val e15 :
  ?trials:int ->
  ?ng:int ->
  ?t:int ->
  ?max_sessions:int ->
  ?seed:int ->
  unit ->
  Vv_prelude.Table.t
(** Success rate, mean sessions to decision and first-try rate per
    preference profile and adjustment policy. *)

val e15_campaign : Vv_exec.Campaign.t
(** A single cell: the table shares one rng across the whole grid.  The
    default seed reproduces the legacy output byte-for-byte; smoke tier
    shrinks the trial count. *)
