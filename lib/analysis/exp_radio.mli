(** Experiment E12 (extension): multi-hop voting over radio topologies. *)

val e12_topologies : unit -> Vv_prelude.Table.t
(** The same electorate across connected topologies: exactness everywhere,
    latency scaling with diameter. *)

val e12_poison : unit -> Vv_prelude.Table.t
(** The relay-poisoning limit of first-accept flooding ([36]): inert on the
    complete graph, exactness-breaking (never validity-breaking) beyond one
    hop. *)

val e12_campaign : Vv_exec.Campaign.t
(** Topology cells plus relay-poisoning cells; two tables,
    deterministic. *)
