(** Experiment E17: resilience campaigns on the chaos network substrate.

    Sweeps fault intensity — per-link drop rate x transient-partition
    width x recovery lag — across every protocol variant (the
    synchronous pipeline plus the network-agnostic {!Vv_bb.Na_voting}
    under the E20 forging adversary), classifying
    each grid cell as Exact (all honest nodes decide the true plurality),
    Stall (some honest node never decides) or Violation (a decided value
    breaks safety-guaranteed admissibility, Definition V.1, or
    agreement). The degradation envelope is the frontier of the Exact
    region; the safety-guaranteed variant (Algorithm 2) must show zero
    Violation cells anywhere on the grid — [ok] records exactly that.

    Deterministic at any [jobs]: runs fan out through
    {!Vv_exec.Executor.map} with per-index derived seeds and are
    aggregated sequentially in index order. *)

type profile = Vv_exec.Campaign.profile = Smoke | Full
(** Re-export of {!Vv_exec.Campaign.profile}. [Smoke] is the CI tier (3 drop rates x 3 partition scenarios x 6
    variants x 3 trials); [Full] widens every axis. *)

type cls = Exact | Stall | Violation

val cls_label : cls -> string

type scenario = {
  width : int;  (** honest nodes isolated by the transient partition *)
  heal : int;  (** rounds until the partition heals (recovery lag) *)
}

type variant =
  | Std of Vv_core.Runner.protocol
      (** a synchronous voting pipeline variant *)
  | Na
      (** {!Vv_bb.Na_voting} — the network-agnostic broadcast protocol
          of E20 — run through the same substrate faults under the E20
          forging adversary *)

val variant_label : variant -> string

type cell = {
  variant : variant;
  drop : float;
  scenario : scenario;
  exact : int;  (** trials classified Exact *)
  stalls : int;
  violations : int;
  rounds_avg : float;
  dropped_avg : float;  (** deliveries destroyed by the substrate *)
  retrans_avg : float;  (** retransmission attempts fired *)
}

val cell_class : cell -> cls
(** Worst classification over the cell's trials:
    Violation > Stall > Exact. *)

type result = {
  profile : profile;
  retransmit : bool;
  trials : int;
  cells : cell list;  (** grid order: variant, then drop, then scenario *)
  runs : int;  (** total protocol executions *)
  ok : bool;
      (** the safety-guaranteed variant (Algo2_sct) and the
          network-agnostic variant ([Na]) had zero Violation trials on
          the whole grid *)
}

val run :
  ?jobs:int -> ?retransmit:bool -> ?seed:int -> ?trials:int -> profile ->
  result
(** Execute the campaign. [retransmit] (default [false]) enables
    {!Vv_sim.Retransmit.default} for every run; [trials] overrides the
    profile's per-cell trial count. Byte-identical output at every
    [jobs]. Raises [Invalid_argument] when [trials < 1]. *)

val tables : result -> Vv_prelude.Table.t list
(** The per-cell degradation grid and the per-protocol envelope summary,
    for the shared {!Vv_exec.Emit} path. *)

val campaign : ?retransmit:bool -> ?trials:int -> unit -> Vv_exec.Campaign.t
(** The same grid as {!run}, packaged as a campaign: one cell per grid
    point, per-trial seeds reconstructed from the flat (cell, trial)
    index, [ok] wired to the emitted value so the CLI can exit non-zero
    on a safety violation. *)
