(** Experiment E20: the network-agnostic validity region across
    synchrony models.

    Sweeps (t_s, t_a) tolerance pairs x network model (synchronous,
    eventually-synchronous with swept GST placement, asynchronous) x an
    electorate probe straddling the arXiv 2410.19721 bound, running
    {!Vv_bb.Na_voting} under a scripted forging adversary.  Per cell the
    governing tolerance is [t = t_s] on the synchronous network and
    [t = t_a] otherwise, and achievability is predicted by
    [f <= t && N > max{3t, 2t + 2*B_G + C_G}]; [ok] demands that every
    predicted-achievable cell is Exact on all trials — observed
    violations may only appear outside the bound.

    Deterministic at any [jobs]: per-index derived seeds through
    {!Vv_exec.Executor.map}, aggregated in index order. *)

type profile = Vv_exec.Campaign.profile = Smoke | Full

type cls = Exact | Stall | Violation

val cls_label : cls -> string

type sched =
  | Sync
  | Gst of int  (** GST round, uniform admissible scheduler *)
  | Gst_adv of int
      (** GST round, adversary-supplied schedule: every message held to
          the admissibility cap (pre-GST messages land at [gst + bound],
          post-GST ones take the full eventual bound) — the worst
          schedule the model admits *)
  | Async

val sched_label : sched -> string

type probe =
  | Wide  (** [f = t], margin comfortably inside the bound *)
  | Overfault  (** [f = t_s + 1]: beyond even the synchronous tolerance *)
  | Margin  (** [f = t] but [A_G < B_G + f]: outside the validity bound *)

val probe_label : probe -> string

type cell = {
  t_s : int;
  t_a : int;
  sched : sched;
  probe : probe;
  ag : int;
  bg : int;
  cg : int;
  f : int;
}

val cell_n : cell -> int

val predicted : cell -> bool
(** The bound prediction: [f <= t && n > 3t && n > 2t + 2*bg + cg] for
    the cell's governing tolerance. *)

type stats = {
  cell : cell;
  exact : int;
  stalls : int;
  violations : int;
  rounds_avg : float;
}

val cell_class : stats -> cls
(** Worst classification over the cell's trials:
    Violation > Stall > Exact. *)

type result = {
  profile : profile;
  trials : int;
  cells : stats list;  (** grid order: (t_s, t_a), then network, then probe *)
  runs : int;
  ok : bool;  (** every predicted-achievable cell Exact on all trials *)
}

val run : ?jobs:int -> ?seed:int -> ?trials:int -> profile -> result
(** Execute the campaign; byte-identical output at every [jobs]. Raises
    [Invalid_argument] when [trials < 1]. *)

val tables : result -> Vv_prelude.Table.t list
(** The per-cell grid and the (t_s, t_a) region summary, for the shared
    {!Vv_exec.Emit} path. *)

val campaign : ?trials:int -> unit -> Vv_exec.Campaign.t
(** The same grid packaged as a campaign: one cell per grid point, [ok]
    wired through so the CLI exits nonzero on any in-bound violation. *)
