(** Experiments E1-E3: regenerate Figure 1 (Section VI-B). *)

val fig1a : ?ng:int -> unit -> Vv_prelude.Table.t
(** Figure 1(a): the D1-D4 profiles and initial system entropy H_0. *)

val empirical_success :
  ?jobs:int ->
  trials:int ->
  t:int ->
  rng:Vv_prelude.Rng.t ->
  Vv_dist.Multinomial.t ->
  float
(** Fraction of Algorithm-1 runs (inputs sampled from the profile, f = t
    colluders) that terminated with the exact honest plurality. [?jobs]
    fans the runs out across domains (see {!Vv_exec.Executor}); the result
    is identical at every value. *)

val fig1b :
  ?jobs:int ->
  ?ng:int ->
  ?t_max:int ->
  ?mc_samples:int ->
  ?trials:int ->
  ?seed:int ->
  unit ->
  Vv_prelude.Table.t
(** Figure 1(b): [Pr(A_G - B_G > t)] per profile and tolerance, computed by
    exact enumeration, Monte-Carlo, and live protocol runs (the latter
    parallelisable via [?jobs], with identical output at every value). *)

val fig1c : ?ng:int -> ?f_max:int -> unit -> Vv_prelude.Table.t
(** Figure 1(c): system entropy H_s vs actual faults f. *)

val fig1a_campaign : Vv_exec.Campaign.t
(** One cell per profile; deterministic. *)

val fig1b_campaign : Vv_exec.Campaign.t
(** A single cell (the table shares one rng across the whole grid) that
    threads the campaign's jobs budget into the inner protocol-run sweep.
    Smoke tier shrinks [t_max], the Monte-Carlo sample count and the
    trial count. *)

val fig1c_campaign : Vv_exec.Campaign.t
(** One cell per profile; deterministic. *)
