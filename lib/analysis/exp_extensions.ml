(* Experiment E14: the library extensions in action.

   E14a: weighted (stake-based) voting thresholds — how stake
         concentration moves the tolerable adversary weight (the weighted
         Lemma-2 threshold of Vv_ballot.Weighted).
   E14b: approval voting under collusion — the endorsement-gap analogue of
         the paper's exactness condition, run on the live protocol.
   E14c: multi-dimensional subjects — coordinate-wise voting validity with
         per-coordinate stalls isolated (SCT). *)

module Table = Vv_prelude.Table
module Oid = Vv_ballot.Option_id
module Weighted = Vv_ballot.Weighted
module Campaign = Vv_exec.Campaign

let e14a_table () =
  Table.create
    ~title:
      "E14a: stake-weighted thresholds - max tolerable adversary weight \
       per stake profile (options A/B)"
    ~headers:
      [ "stake profile"; "total W"; "gap"; "max W_F exact"; "max W_F SCT" ]
    ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
    ()

let e14a_cells =
  let v c w = Weighted.vote ~choice:(Oid.of_int c) ~weight:w in
  [
    ( "uniform: 7xA(1) 3xB(1)",
      List.init 7 (fun _ -> v 0 1) @ List.init 3 (fun _ -> v 1 1) );
    ("whale-for-A: A(8) + 6xB(1)", v 0 8 :: List.init 6 (fun _ -> v 1 1));
    ( "whale-against: 8xA(1) + B(6)",
      List.init 8 (fun _ -> v 0 1) @ [ v 1 6 ] );
    ("two whales: A(7) B(5)", [ v 0 7; v 1 5 ]);
  ]

let e14a_row (label, votes) =
  let tie = Vv_ballot.Tie_break.default in
  let max_wf pred votes =
    let rec go w = if pred ~byz_weight:(w + 1) votes then go (w + 1) else w in
    go (-1)
  in
  let gap = Option.value ~default:0 (Weighted.gap ~tie votes) in
  [
    label;
    Table.icell (Weighted.total_weight votes);
    Table.icell gap;
    Table.icell (max_wf (Weighted.exactness_guaranteed ~tie) votes);
    Table.icell (max_wf (Weighted.sct_guaranteed ~tie) votes);
  ]

let e14_weighted () =
  let tab = e14a_table () in
  List.iter (fun c -> Table.add_row tab (e14a_row c)) e14a_cells;
  tab

module Approval = Vv_core.Approval.Make (Vv_bb.Plain)

let e14b_table () =
  Table.create
    ~title:
      "E14b: approval voting under collusion (N=7, t=f=1; endorsements \
       listed as A/B/C)"
    ~headers:
      [ "honest approval sets"; "A/B/C endorsements"; "gap"; "term"; "winner" ]
    ~aligns:[ Table.Left; Table.Left; Table.Right; Table.Right; Table.Left ]
    ()

let e14b_cells =
  [
    ( "everyone {A}, half also {B}",
      fun id ->
        if id mod 2 = 0 then [ Oid.of_int 0; Oid.of_int 1 ]
        else [ Oid.of_int 0 ] );
    ( "split camps {A,C} vs {B,C}",
      fun id ->
        if id < 3 then [ Oid.of_int 0; Oid.of_int 2 ]
        else [ Oid.of_int 1; Oid.of_int 2 ] );
    ( "thin: {A,B} x3, {A} x1, {B} x2",
      fun id ->
        if id < 3 then [ Oid.of_int 0; Oid.of_int 1 ]
        else if id = 3 then [ Oid.of_int 0 ]
        else [ Oid.of_int 1 ] );
  ]

let e14b_row (label, approvals) =
  let honest_approvals = List.init 6 approvals in
  let counts =
    List.fold_left
      (fun acc set ->
        List.fold_left Vv_ballot.Tally.add acc (List.sort_uniq Oid.compare set))
      Vv_ballot.Tally.empty honest_approvals
  in
  let cell =
    Fmt.str "%d/%d/%d"
      (Vv_ballot.Tally.count counts (Oid.of_int 0))
      (Vv_ballot.Tally.count counts (Oid.of_int 1))
      (Vv_ballot.Tally.count counts (Oid.of_int 2))
  in
  let gap =
    Option.value ~default:0
      (Vv_ballot.Tally.gap ~tie:Vv_ballot.Tie_break.default counts)
  in
  let cfg = Vv_sim.Config.with_byzantine ~n:7 ~t_max:1 [ 6 ] () in
  let r =
    Approval.execute cfg ~speaker:0 ~subject:1 ~approvals ~quorum_gap:0
      ~collude:true ()
  in
  let term = List.for_all Option.is_some r.Vv_core.Approval.outputs in
  let winner =
    match List.filter_map Fun.id r.Vv_core.Approval.outputs with
    | w :: _ -> Oid.to_string w
    | [] -> "-"
  in
  [ label; cell; Table.icell gap; Table.bcell term; winner ]

let e14_approval () =
  let tab = e14b_table () in
  List.iter (fun c -> Table.add_row tab (e14b_row c)) e14b_cells;
  tab

let e14c_table () =
  Table.create
    ~title:
      "E14c: multi-dimensional subject (manoeuvre x speed), SCT per \
       coordinate (N=9, t=f=1)"
    ~headers:
      [ "electorate"; "coord 0"; "coord 1"; "termination"; "validity"; "safe" ]
    ~aligns:
      [ Table.Left; Table.Left; Table.Left; Table.Right; Table.Right;
        Table.Right ]
    ()

let e14c_cells =
  let o = Oid.of_int in
  [
    ( "both decisive",
      List.init 8 (fun i -> [ o 0; o (if i = 7 then 2 else 1) ]) );
    ( "coord 1 contested",
      List.init 8 (fun i -> [ o 0; o (if i < 4 then 1 else 2) ]) );
  ]

(* Returns [None] (no row) when the output vector is not two-dimensional. *)
let e14c_row (label, inputs) =
  let show = function Some v -> Oid.to_string v | None -> "stalled" in
  let r =
    Vv_core.Multidim.run ~protocol:Vv_core.Runner.Algo2_sct ~t:1 ~f:1 inputs
  in
  match r.Vv_core.Multidim.output_vector with
  | [ c0; c1 ] ->
      Some
        [
          label;
          show c0;
          show c1;
          Table.bcell r.Vv_core.Multidim.termination;
          Table.bcell r.Vv_core.Multidim.voting_validity;
          Table.bcell r.Vv_core.Multidim.safety_admissible;
        ]
  | _ -> None

let e14_multidim () =
  let tab = e14c_table () in
  List.iter
    (fun c ->
      match e14c_row c with Some row -> Table.add_row tab row | None -> ())
    e14c_cells;
  tab

type e14_cell =
  | E14_weighted of (string * Weighted.vote list)
  | E14_approval of (string * (int -> Oid.t list))
  | E14_multidim of (string * Oid.t list list)

let e14_campaign =
  Campaign.v ~id:"e14"
    ~what:"Extensions: weighted stakes, approval voting, multi-dimensional"
    ~axes:[ ("extension", [ "weighted"; "approval"; "multidim" ]) ]
    ~cells:(fun _ ->
      List.map (fun c -> E14_weighted c) e14a_cells
      @ List.map (fun c -> E14_approval c) e14b_cells
      @ List.map (fun c -> E14_multidim c) e14c_cells)
    ~run_cell:(fun _ cell ->
      match cell with
      | E14_weighted c -> Some (e14a_row c)
      | E14_approval c -> Some (e14b_row c)
      | E14_multidim c -> e14c_row c)
    ~collect:(fun _ pairs ->
      let rows p =
        List.filter_map
          (fun (c, row) ->
            match row with Some r when p c -> Some r | _ -> None)
          pairs
      in
      let ta = e14a_table () in
      List.iter (Table.add_row ta)
        (rows (function E14_weighted _ -> true | _ -> false));
      let tb = e14b_table () in
      List.iter (Table.add_row tb)
        (rows (function E14_approval _ -> true | _ -> false));
      let tc = e14c_table () in
      List.iter (Table.add_row tc)
        (rows (function E14_multidim _ -> true | _ -> false));
      Campaign.tables [ ta; tb; tc ])
    ()
