(* Experiment E18: sustained multi-shot throughput through the serve
   daemon.

   Each cell boots a real `vvc serve` daemon (its own domain, a Unix
   socket in the temp directory), connects a pool of clients, and drives
   an ack-serialized round-robin burst of subjects through the JSON-RPC
   protocol — the same wire path production traffic takes.  The decision
   stream is reconstructed on the client side and cross-checked
   byte-for-byte against an in-process {!Engine.run} on the identical
   request list, so the table proves the socket path changes nothing.

   The emitted table carries only deterministic columns (committed,
   attempts, pipelined round counts, validity, the local cross-check);
   the wall-clock decisions/s figure is nondeterministic by nature and is
   reported in the verdict line, which golden pinning ignores. *)

module Table = Vv_prelude.Table
module Rng = Vv_prelude.Rng
module Oid = Vv_ballot.Option_id
module Ledger = Vv_multishot.Ledger
module Engine = Vv_multishot.Engine
module Server = Vv_serve.Server
module Client = Vv_serve.Client
module Campaign = Vv_exec.Campaign

type cell = { batch : int; clients : int; subjects : int }

type row = {
  stats : Engine.stats;
  rate : float;  (* decisions/s, wall-clock — verdict only, never a table *)
  matches_local : bool;  (* served log == in-process Engine.run log *)
  clean : bool;  (* no error responses, every submission decided *)
}

let cells = function
  | Campaign.Smoke -> [ { batch = 2; clients = 2; subjects = 12 } ]
  | Campaign.Full ->
      [
        { batch = 1; clients = 1; subjects = 64 };
        { batch = 4; clients = 4; subjects = 192 };
        { batch = 8; clients = 8; subjects = 192 };
      ]

let n = 9
let t = 2

let config seed =
  Ledger.config
    ~byzantine:(List.init t (fun i -> n - 1 - i))
    ~retry:(Ledger.Rotate_and_adjust (Vv_core.Session.Bandwagon, 6))
    ~seed ~n ~t ()

(* The request list is the cell's entire identity: positions are assigned
   in list order (the driver ack-serializes), so the committed ledger is a
   pure function of (cell_seed, subjects). *)
let requests ~seed count =
  let rng = Rng.create (Rng.derive seed 1) in
  let dist = Vv_dist.Multinomial.create ~n:(n - t) ~p:[| 0.5; 0.3; 0.2 |] in
  List.init count (fun subject ->
      let honest = Vv_dist.Montecarlo.sample_inputs dist rng in
      (subject, honest @ List.init t (fun _ -> Oid.of_int 0)))

let run_cell (ctx : Campaign.ctx) cell =
  let cfg = config ctx.Campaign.cell_seed in
  let reqs = requests ~seed:ctx.Campaign.cell_seed cell.subjects in
  let path =
    Printf.sprintf "%s/vvc-e18-%d-%d.sock"
      (Filename.get_temp_dir_name ())
      (Unix.getpid ()) ctx.Campaign.index
  in
  let listen = Server.listen_unix path in
  let daemon =
    Domain.spawn (fun () ->
        Server.serve ~batch:cell.batch ~jobs:ctx.Campaign.jobs ~listen cfg)
  in
  let conns =
    List.init cell.clients (fun _ -> Client.connect_unix ~retry_for:10. path)
  in
  let report =
    match Client.run_load ~shutdown:true ~conns reqs with
    | Ok r -> r
    | Error msg ->
        List.iter Client.close conns;
        Unix.close listen;
        failwith (Printf.sprintf "e18 cell %d: %s" ctx.Campaign.index msg)
  in
  let (_ : Server.outcome) = Domain.join daemon in
  List.iter Client.close conns;
  Unix.close listen;
  if Sys.file_exists path then Sys.remove path;
  (* Same requests through an in-process engine: the socket path must not
     change a single decision. *)
  let expected, _ = Engine.run ~batch:cell.batch ~jobs:1 cfg reqs in
  let stats =
    Engine.stats_of ~batch:cell.batch ~bb:cfg.Ledger.bb ~n:cfg.Ledger.n
      ~t:cfg.Ledger.t report.Client.decisions
  in
  {
    stats;
    rate = report.Client.rate;
    matches_local = report.Client.decisions = expected;
    clean =
      report.Client.errors = []
      && List.length report.Client.decisions = cell.subjects;
  }

let collect _profile pairs =
  let tab =
    Table.create
      ~title:
        (Fmt.str
           "E18: serve daemon load generation (n=%d t=%d, SCT, \
            rotate-and-adjust)"
           n t)
      ~headers:
        [ "batch"; "clients"; "subjects"; "committed"; "skipped"; "attempts";
          "rounds seq"; "rounds piped"; "pipe speedup"; "valid"; "match" ]
      ~aligns:
        [ Table.Right; Table.Right; Table.Right; Table.Right; Table.Right;
          Table.Right; Table.Right; Table.Right; Table.Right; Table.Right;
          Table.Right ]
      ()
  in
  List.iter
    (fun (cell, r) ->
      Table.add_row tab
        [
          Table.icell cell.batch;
          Table.icell cell.clients;
          Table.icell cell.subjects;
          Table.icell r.stats.Engine.committed;
          Table.icell r.stats.Engine.skipped;
          Table.icell r.stats.Engine.attempts_total;
          Table.icell r.stats.Engine.rounds_sequential;
          Table.icell r.stats.Engine.rounds_pipelined;
          Table.fcell ~decimals:2
            (float_of_int r.stats.Engine.rounds_sequential
            /. float_of_int (max 1 r.stats.Engine.rounds_pipelined));
          Table.bcell r.stats.Engine.all_valid;
          Table.bcell r.matches_local;
        ])
    pairs;
  let ok =
    List.for_all
      (fun (_, r) -> r.matches_local && r.clean && r.stats.Engine.all_valid)
      pairs
  in
  let peak =
    List.fold_left (fun acc (_, r) -> Float.max acc r.rate) 0. pairs
  in
  {
    Campaign.tables = [ tab ];
    ok;
    verdict =
      Some
        (Fmt.str "%s: sustained %.0f decisions/s at peak over %d cells"
           (if ok then "OK" else "MISMATCH")
           peak (List.length pairs));
  }

let e18_campaign =
  Campaign.v ~id:"e18"
    ~what:
      "serve daemon under load: JSON-RPC throughput, pipelining, and \
       socket-vs-local equivalence"
    ~seed:0xe18
    ~axes:
      [ ("batch", [ "1"; "4"; "8" ]); ("clients", [ "1"; "4"; "8" ]) ]
    ~cells ~run_cell ~collect ()
