(** Experiments E6, E7, E10 and E11: the tolerance bounds, executed. *)

val e6 : unit -> Vv_prelude.Table.t
(** Algorithm 4 under local broadcast at points with [N <= 3t]
    (Inequality 15). *)

val e7_lemma2 : unit -> Vv_prelude.Table.t
(** Sweep of {!Witness.lemma2_cell} over (t, B_G, C_G, gap). *)

val e7_theorem10 : unit -> Vv_prelude.Table.t
(** {!Witness.theorem10_demo} for t = 1..3. *)

val e10_frontier : ?n:int -> unit -> Vv_prelude.Table.t
(** Theorem 12: max tolerable t vs vote dispersion for K = 2 and K = 3. *)

val e10_third_option : unit -> Vv_prelude.Table.t
(** Section VI-A's remark: moving hesitant votes from the runner-up to
    third options shrinks the bound (B_G weighs double). *)

val e11_judgment_ablation : ?t:int -> unit -> Vv_prelude.Table.t
(** Ablation of delta_P x quorum: liveness on a decisive electorate vs
    safety under the Theorem 10 tie attack. *)

val e6_campaign : Vv_exec.Campaign.t
(** One cell per (N, t) point; deterministic. *)

val e7_campaign : Vv_exec.Campaign.t
(** Lemma 2 sweep cells plus Theorem 10 demo cells; two tables. *)

val e10_campaign : Vv_exec.Campaign.t
(** Frontier grid cells plus the third-option comparison; two tables. *)

val e11_campaign : Vv_exec.Campaign.t
(** One cell per (delta_P, quorum) pair; deterministic. *)
