(** Experiment E14: the library extensions in action. *)

val e14_weighted : unit -> Vv_prelude.Table.t
(** Stake-weighted thresholds: max tolerable adversary weight per stake
    profile. *)

val e14_approval : unit -> Vv_prelude.Table.t
(** Approval voting under collusion: the endorsement-gap exactness
    condition on the live protocol. *)

val e14_multidim : unit -> Vv_prelude.Table.t
(** Multi-dimensional subjects with per-coordinate SCT verdicts. *)

val e14_campaign : Vv_exec.Campaign.t
(** Weighted, approval and multi-dimensional cells; three tables,
    deterministic. *)
