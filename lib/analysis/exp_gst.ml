(* Experiment E20: the network-agnostic validity region across synchrony
   models.

   The grid is (t_s, t_a) pairs x network model (synchronous /
   eventually-synchronous with swept GST placement / asynchronous) x an
   electorate probe, running {!Vv_bb.Na_voting} against a scripted
   adversary.  Per network the governing tolerance is t = t_s when the
   network is synchronous and t = t_a otherwise (the fallback path is
   what survives pre-GST and asynchronous scheduling), and the
   achievability prediction per cell is the 2410.19721 bound

     achievable  <=>  f <= t  /\  N > max{3t, 2t + 2*B_G + C_G}.

   Three probes per (t_s, t_a, network) triple straddle the bound:
     wide       f = t and a plurality margin comfortably inside the
                bound — must be Exact in every trial;
     over-f     f = t_s + 1 (beyond even the synchronous tolerance) —
                the adversary forges a (t_s + 1)-quorum of Fin messages,
                so decided values are garbage;
     margin     f = t but A_G < B_G + f (violating
                N > 2t + 2*B_G + C_G) — the Byzantine inputs flip the
                plurality, so runs decide the wrong option (or stall).

   The adversary script is time-based and network-agnostic: broadcast
   Inp(1) and Fin(1) at round 0, Vote(1) at delta, Comm(1) at 2*delta,
   FbVote(1) at 3*delta, from every Byzantine node.  Within tolerance it
   is impotent (every threshold the protocol uses strictly exceeds the
   Byzantine count); beyond, the round-0 Fin forgery beats the honest
   paths to the decision.

   Classification per run mirrors E17: Violation (an honest node decided
   something other than the honest plurality, or honest nodes disagree),
   Stall (some honest node never decides — admissible outside the
   bound), Exact.  [ok] is the acceptance criterion: a predicted-
   achievable cell must be Exact on every trial, and violations may only
   appear outside the bound.  Byte-identical at every [--jobs] via
   per-index derived seeds, like E16–E19. *)

module Table = Vv_prelude.Table
module Executor = Vv_exec.Executor
module Campaign = Vv_exec.Campaign
module Delay = Vv_sim.Delay
module Config = Vv_sim.Config
module Adversary = Vv_sim.Adversary
module Na_voting = Vv_bb.Na_voting

type profile = Campaign.profile = Smoke | Full

let profile_label = Campaign.profile_label

type cls = Exact | Stall | Violation

let cls_label = function
  | Exact -> "exact"
  | Stall -> "stall"
  | Violation -> "violation"

type sched = Sync | Gst of int | Gst_adv of int | Async

let sched_label = function
  | Sync -> "sync"
  | Gst g -> Fmt.str "gst=%d" g
  | Gst_adv g -> Fmt.str "gst-adv=%d" g
  | Async -> "async"

(* The engine delay model and the protocol's timeout per network.  The
   eventually-synchronous bound is 2 so the sync path's delta covers it;
   the asynchronous fairness cap is invisible to the protocol. *)
let es_bound = 2

let async_fairness = 4

(* The adversary-supplied GST schedule: every message is held to the
   admissibility cap — pre-GST messages land at the last legal round
   (gst + bound), post-GST ones take the full eventual bound.  This is
   the worst schedule the model admits, uniformly across links, and it
   is a pure function of its arguments as Config.make demands. *)
let worst_case_schedule ~gst ~round ~src:_ ~dst:_ =
  if round < gst then max 1 (gst + es_bound - round) else es_bound

let delay_of = function
  | Sync -> Delay.Synchronous
  | Gst gst -> Delay.Eventually_synchronous { gst; bound = es_bound; schedule = None }
  | Gst_adv gst ->
      Delay.Eventually_synchronous
        { gst; bound = es_bound;
          schedule = Some (fun ~round ~src ~dst -> worst_case_schedule ~gst ~round ~src ~dst) }
  | Async -> Delay.Asynchronous { fairness = async_fairness; schedule = None }

let sync_delta_of = function
  | Sync -> 1
  | Gst _ | Gst_adv _ -> es_bound
  | Async -> 1

(* Governing tolerance: the synchronous path's only when the network
   really is synchronous; the fallback's everywhere else. *)
let t_mode ~t_s ~t_a = function
  | Sync -> t_s
  | Gst _ | Gst_adv _ | Async -> t_a

type probe = Wide | Overfault | Margin

let probe_label = function
  | Wide -> "wide"
  | Overfault -> "over-f"
  | Margin -> "margin"

type cell = {
  t_s : int;
  t_a : int;
  sched : sched;
  probe : probe;
  ag : int;  (** honest votes on option 0 (the true plurality) *)
  bg : int;  (** honest votes on option 1 (the runner-up) *)
  cg : int;  (** honest votes spread over distinct further options *)
  f : int;  (** Byzantine nodes *)
}

let cell_n c = c.ag + c.bg + c.cg + c.f

(* The bound prediction for one cell. *)
let predicted c =
  let t = t_mode ~t_s:c.t_s ~t_a:c.t_a c.sched in
  let n = cell_n c in
  c.f <= t && n > 3 * t && n > (2 * t) + (2 * c.bg) + c.cg

(* Electorate construction per probe.  Every cell must satisfy the
   protocol's standing requirement n > 2*t_s + t_a, so [ag] is bumped
   until it holds. *)
let cell_of ~t_s ~t_a sched probe =
  let t = t_mode ~t_s ~t_a sched in
  let viable ~ag ~bg ~cg ~f = ag + bg + cg + f > (2 * t_s) + t_a in
  let rec bump ~ag ~bg ~cg ~f =
    if viable ~ag ~bg ~cg ~f then ag else bump ~ag:(ag + 1) ~bg ~cg ~f
  in
  match probe with
  | Wide ->
      (* f = t, margin A_G - B_G > t + t_s beyond any input skew. *)
      let bg = 1 and cg = 1 and f = t in
      let ag = bump ~ag:((2 * t) + bg + 2) ~bg ~cg ~f in
      { t_s; t_a; sched; probe; ag; bg; cg; f }
  | Overfault ->
      (* Same comfortable electorate, one fault past even t_s. *)
      let bg = 1 and cg = 1 and f = t_s + 1 in
      let ag = bump ~ag:((2 * t) + bg + 2) ~bg ~cg ~f in
      { t_s; t_a; sched; probe; ag; bg; cg; f }
  | Margin ->
      (* f = t but A_G < B_G + f: Byzantine inputs flip the plurality.
         Grown symmetrically until n > 2*t_s + t_a (preserving
         A_G = B_G + f - 1, which keeps the cell outside
         N > 2t + 2*B_G + C_G). *)
      let f = t in
      let rec find s =
        let bg = t + 1 + s in
        let ag = bg + f - 1 in
        if viable ~ag ~bg ~cg:0 ~f then (ag, bg) else find (s + 1)
      in
      let ag, bg = find 0 in
      { t_s; t_a; sched; probe; ag; bg; cg = 0; f }

type stats = {
  cell : cell;
  exact : int;
  stalls : int;
  violations : int;
  rounds_avg : float;
}

let cell_class s =
  if s.violations > 0 then Violation
  else if s.stalls > 0 then Stall
  else Exact

(* A predicted-achievable cell must be Exact on every trial; outside the
   bound anything goes (violations are expected, stalls admissible). *)
let stats_ok s = (not (predicted s.cell)) || cell_class s = Exact

type result = {
  profile : profile;
  trials : int;
  cells : stats list;
  runs : int;
  ok : bool;
}

let pairs = function
  | Smoke -> [ (1, 1); (2, 1) ]
  | Full -> [ (1, 1); (2, 1); (2, 2); (3, 1) ]

let scheds = function
  | Smoke -> [ Sync; Gst 3; Gst_adv 3; Async ]
  | Full -> [ Sync; Gst 0; Gst 3; Gst_adv 3; Gst 6; Async ]

let probes = [ Wide; Overfault; Margin ]

let default_trials = function Smoke -> 2 | Full -> 4

let max_rounds = 24

let grid profile =
  List.concat_map
    (fun (t_s, t_a) ->
      List.concat_map
        (fun sched -> List.map (cell_of ~t_s ~t_a sched) probes)
        (scheds profile))
    (pairs profile)

(* Honest inputs: option 0 x ag, option 1 x bg, then cg distinct
   singleton options — the plurality winner is option 0 (ties break
   low). *)
let input_of c id =
  if id < c.ag then 0
  else if id < c.ag + c.bg then 1
  else if id < c.ag + c.bg + c.cg then 2 + (id - c.ag - c.bg)
  else 0 (* Byzantine slot; never stepped *)

(* The scripted adversary: every Byzantine node broadcasts the scripted
   forgeries for the round.  Time-based, so it needs no view state; the
   round-0 Fin(1) is the (t_s + 1)-quorum forgery. *)
let adversary ~delta =
  let msgs_for round =
    if round = 0 then
      [ { Na_voting.kind = Inp; value = 1 }; { Na_voting.kind = Fin; value = 1 } ]
    else if round = delta then [ { Na_voting.kind = Vote; value = 1 } ]
    else if round = 2 * delta then [ { Na_voting.kind = Comm; value = 1 } ]
    else if round = 3 * delta then [ { Na_voting.kind = FbVote; value = 1 } ]
    else []
  in
  Adversary.named "gst-forger" (fun view ->
      List.concat_map
        (fun src ->
          List.concat_map
            (fun msg ->
              List.map
                (fun dst -> { Adversary.src; dst; msg })
                (view.Adversary.reach src))
            (msgs_for view.Adversary.round))
        view.Adversary.byzantine)

let classify ~honest outputs =
  let decided = List.filter_map (fun id -> outputs.(id)) honest in
  let wrong = List.exists (fun v -> v <> 0) decided in
  let disagree =
    match decided with [] -> false | v :: rest -> List.exists (( <> ) v) rest
  in
  if wrong || disagree then Violation
  else if List.length decided < List.length honest then Stall
  else Exact

let run_trial c ~seed =
  let n = cell_n c in
  let delta = sync_delta_of c.sched in
  let module P = Na_voting.Make (struct
    let t_s = c.t_s
    let t_a = c.t_a
    let sync_delta = delta
  end) in
  let module E = Vv_sim.Engine.Make (P) in
  let byz = List.init c.f (fun i -> n - c.f + i) in
  let cfg =
    Config.with_byzantine ~delay:(delay_of c.sched) ~max_rounds ~seed ~n
      ~t_max:c.t_s byz ()
  in
  let res =
    E.run_exn cfg ~inputs:(input_of c) ~adversary:(adversary ~delta) ()
  in
  (classify ~honest:(Config.honest_ids cfg) res.E.outputs, res.E.rounds_used)

(* One grid cell's statistics; every trial seed is a pure function of
   (campaign seed, cell index, trial index), so the campaign replays
   bit-for-bit at every [jobs]. *)
let cell_stats ~trials ~seed ~index cell =
  let exact = ref 0 and stalls = ref 0 and violations = ref 0 in
  let rounds = ref 0 in
  for k = 0 to trials - 1 do
    let run_seed = Executor.derive_seed ~seed ((index * trials) + k) in
    let cls, r = run_trial cell ~seed:run_seed in
    (match cls with
    | Exact -> incr exact
    | Stall -> incr stalls
    | Violation -> incr violations);
    rounds := !rounds + r
  done;
  {
    cell;
    exact = !exact;
    stalls = !stalls;
    violations = !violations;
    rounds_avg = float_of_int !rounds /. float_of_int trials;
  }

let run ?jobs ?(seed = 0x657a11) ?trials profile =
  let trials =
    match trials with Some k -> k | None -> default_trials profile
  in
  if trials < 1 then invalid_arg "Exp_gst.run: trials must be >= 1";
  let cells = Array.of_list (grid profile) in
  let ncells = Array.length cells in
  let stats =
    Executor.map ?jobs ~chunk_size:1 ~count:ncells (fun i ->
        cell_stats ~trials ~seed ~index:i cells.(i))
    |> Array.to_list
  in
  {
    profile;
    trials;
    cells = stats;
    runs = ncells * trials;
    ok = List.for_all stats_ok stats;
  }

(* --- tables --- *)

let electorate_label c = Fmt.str "%d/%d/%d" c.ag c.bg c.cg

let grid_table r =
  let tab =
    Table.create
      ~title:
        (Fmt.str
           "E20: network-agnostic validity grid (profile=%s trials=%d; \
            es bound=%d, async fairness=%d)"
           (profile_label r.profile) r.trials es_bound async_fairness)
      ~headers:
        [ "t_s"; "t_a"; "network"; "probe"; "A/B/C"; "f"; "n"; "t";
          "predicted"; "class"; "exact"; "stall"; "violation"; "avg rounds";
          "ok" ]
      ~aligns:
        [ Table.Right; Table.Right; Table.Left; Table.Left; Table.Left;
          Table.Right; Table.Right; Table.Right; Table.Left; Table.Left;
          Table.Right; Table.Right; Table.Right; Table.Right; Table.Left ]
      ()
  in
  List.iter
    (fun s ->
      let c = s.cell in
      Table.add_row tab
        [
          Table.icell c.t_s;
          Table.icell c.t_a;
          sched_label c.sched;
          probe_label c.probe;
          electorate_label c;
          Table.icell c.f;
          Table.icell (cell_n c);
          Table.icell (t_mode ~t_s:c.t_s ~t_a:c.t_a c.sched);
          (if predicted c then "achievable" else "outside");
          cls_label (cell_class s);
          Table.icell s.exact;
          Table.icell s.stalls;
          Table.icell s.violations;
          Table.fcell ~decimals:1 s.rounds_avg;
          (if stats_ok s then "yes" else "NO");
        ])
    r.cells;
  tab

(* The (t_s, t_a) region summary: per tolerance pair and network, the
   observed class of each probe against the bound prediction. *)
let region_table r =
  let tab =
    Table.create
      ~title:
        "E20: achievable region vs N > max{3t, 2t + 2*B_G + C_G} (t = t_s \
         sync, t_a otherwise)"
      ~headers:
        [ "t_s"; "t_a"; "network"; "t"; "wide (in-bound)"; "over-f"; "margin";
          "bound matched" ]
      ~aligns:
        [ Table.Right; Table.Right; Table.Left; Table.Right; Table.Left;
          Table.Left; Table.Left; Table.Left ]
      ()
  in
  List.iter
    (fun (t_s, t_a) ->
      List.iter
        (fun sched ->
          let find probe =
            List.find
              (fun s ->
                s.cell.t_s = t_s && s.cell.t_a = t_a && s.cell.sched = sched
                && s.cell.probe = probe)
              r.cells
          in
          let w = find Wide and o = find Overfault and m = find Margin in
          let matched = stats_ok w && stats_ok o && stats_ok m in
          Table.add_row tab
            [
              Table.icell t_s;
              Table.icell t_a;
              sched_label sched;
              Table.icell (t_mode ~t_s ~t_a sched);
              cls_label (cell_class w);
              cls_label (cell_class o);
              cls_label (cell_class m);
              (if matched then "yes" else "NO");
            ])
        (scheds r.profile))
    (pairs r.profile);
  tab

let tables r = [ grid_table r; region_table r ]

let campaign ?trials () =
  let trials_for profile =
    match trials with Some k -> k | None -> default_trials profile
  in
  Campaign.v ~id:"gst"
    ~what:
      "Network-agnostic validity: (t_s, t_a) region across sync / GST / \
       async schedulers"
    ~seed:0x657a11
    ~axes:
      [ ("(t_s,t_a)",
         List.map (fun (s, a) -> Fmt.str "(%d,%d)" s a) (pairs Full));
        ("network", List.map sched_label (scheds Full));
        ("probe", List.map probe_label probes) ]
    ~cells:grid
    ~run_cell:(fun ctx cell ->
      let trials = trials_for ctx.Campaign.profile in
      if trials < 1 then invalid_arg "Exp_gst.campaign: trials must be >= 1";
      cell_stats ~trials ~seed:ctx.Campaign.base_seed ~index:ctx.Campaign.index
        cell)
    ~collect:(fun profile pairs ->
      let cells = List.map snd pairs in
      let r =
        {
          profile;
          trials = trials_for profile;
          cells;
          runs = List.length cells * trials_for profile;
          ok = List.for_all stats_ok cells;
        }
      in
      { Campaign.tables = tables r; ok = r.ok; verdict = None })
    ()
