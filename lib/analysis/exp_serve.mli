(** Experiment E18: boot a real serve daemon per cell, drive an
    ack-serialized client burst over JSON-RPC, and cross-check the
    streamed decisions byte-for-byte against an in-process engine run.
    Wall-clock decisions/s is reported in the (unpinned) verdict line. *)

val e18_campaign : Vv_exec.Campaign.t
