(** Experiment E13: probability companions to Figure 1. *)

val e13_sct_price : ?ng:int -> ?t_max:int -> unit -> Vv_prelude.Table.t
(** [Pr(gap > t)] (BFT exactness) vs [Pr(gap > 2t)] (SCT termination) per
    profile — the price of the safety guarantee. *)

val e13_neiger : ?t:int -> ?m:int -> unit -> Vv_prelude.Table.t
(** Neiger's [N > mt] strong-consensus bound, demonstrated empirically on
    the strong-consensus baseline with an alien-value flooding coalition. *)

val e13_campaign : Vv_exec.Campaign.t
(** Price-of-safety cells (one per profile) plus Neiger cells (one per
    system size); two tables, deterministic. *)
