(* Facade over the experiment suite: every table/figure of the paper (and
   every quantitative claim we additionally exercise) keyed by experiment
   id.  Each entry is a first-class {!Vv_exec.Campaign.t}; the ids, the
   [what] lines and the emitted tables are unchanged from the legacy
   [unit -> Table.t list] registry.  DESIGN.md §4 is the index;
   EXPERIMENTS.md records paper-vs-measured for each id. *)

module Table = Vv_prelude.Table
module Campaign = Vv_exec.Campaign

let all : Campaign.t list =
  [
    Exp_fig1.fig1a_campaign;
    Exp_fig1.fig1b_campaign;
    Exp_fig1.fig1c_campaign;
    Exp_examples.e4_campaign;
    Exp_examples.e5_campaign;
    Exp_bounds.e6_campaign;
    Exp_bounds.e7_campaign;
    Exp_baselines.e8_campaign;
    Exp_baselines.e9_campaign;
    Exp_bounds.e10_campaign;
    Exp_bounds.e11_campaign;
    Exp_radio.e12_campaign;
    Exp_probability.e13_campaign;
    Exp_extensions.e14_campaign;
    Exp_session.e15_campaign;
    Exp_serve.e18_campaign;
    Exp_replica.e19_campaign;
    Exp_validity.campaign ();
  ]

let find id = List.find_opt (fun c -> String.equal (Campaign.id c) id) all

let ids = List.map Campaign.id all

let run_all ?(out = Fmt.stdout) ?(profile = Campaign.Full) () =
  List.iter
    (fun c ->
      Fmt.pf out "@.### %s — %s@.@." (Campaign.id c) (Campaign.what c);
      let outcome = Campaign.run ~profile c in
      List.iter (fun t -> Table.pp out t) outcome.Campaign.emitted.Campaign.tables)
    all
