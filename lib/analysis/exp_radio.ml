(* Experiment E12 (extension): multi-hop voting over radio topologies.

   E12a: the same electorate voting over different connected topologies —
         the flooding generalisation of Algorithm 4 stays exact wherever
         the honest subgraph is connected; latency scales with diameter
         and message cost with edges x rounds.
   E12b: the relay-poisoning limit: first-accept flooding protects only
         direct neighbours of a victim; on multi-hop topologies the fake
         copy wins beyond one hop and exactness (termination) is lost —
         never validity.  This is precisely where the connectivity bound
         of Khan-Naqvi-Vaidya [36] becomes necessary. *)

module Table = Vv_prelude.Table
module T = Vv_radio.Topology
module R = Vv_radio.Radio_runner
module Oid = Vv_ballot.Option_id
module Campaign = Vv_exec.Campaign

(* 9 nodes, one Byzantine (node 8); honest A=6 vs B=2. *)
let inputs9 =
  List.map Oid.of_int [ 0; 0; 0; 1; 0; 1; 0; 0; 0 ]

let topologies =
  [
    ("complete-9", T.complete 9);
    ("ring-9 (k=1)", T.ring ~k:1 9);
    ("ring-9 (k=2)", T.ring ~k:2 9);
    ("grid-3x3", T.grid ~w:3 ~h:3);
    ("geometric-9 (r=.5)", T.random_geometric ~n:9 ~radius:0.5 ~seed:12);
  ]

let e12a_table () =
  Table.create
    ~title:
      "E12a: multi-hop radio voting across topologies (N=9, t=f=1, \
       colluding origin)"
    ~headers:
      [ "topology"; "diameter"; "min degree"; "term"; "valid"; "rounds";
        "messages" ]
    ~aligns:
      [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
        Table.Right; Table.Right ]
    ()

let e12a_cells = List.filter (fun (_, topo) -> T.connected topo) topologies

let e12a_row (label, topo) =
  let r =
    R.run ~strategy:R.Originate_second ~topology:topo ~t:1 ~byzantine:[ 8 ]
      inputs9
  in
  [
    label;
    Table.icell (T.diameter topo);
    Table.icell (T.min_degree topo);
    Table.bcell r.R.termination;
    Table.bcell r.R.voting_validity;
    Table.icell r.R.rounds;
    Table.icell r.R.messages;
  ]

let e12_topologies () =
  let tab = e12a_table () in
  List.iter (fun c -> Table.add_row tab (e12a_row c)) e12a_cells;
  tab

let e12b_table () =
  Table.create
    ~title:
      "E12b: relay poisoning - first-accept flooding protects one hop \
       only (victim 0, fake on the runner-up)"
    ~headers:[ "topology"; "attack"; "term"; "valid"; "exact" ]
    ~aligns:[ Table.Left; Table.Left; Table.Right; Table.Right; Table.Right ]
    ()

let e12b_cells =
  [
    ("complete-8", `Complete, `Collude, "collude");
    ("complete-8", `Complete, `Poison, "poison origin 0");
    ("ring-8", `Ring, `Collude, "collude");
    ("ring-8", `Ring, `Poison, "poison origin 0");
  ]

let e12b_row (label, topo, strat, attack) =
  (* Thin-but-safe margin: honest A=5, B=2 on 8 nodes, Byzantine node 5. *)
  let inputs = List.map Oid.of_int [ 0; 0; 0; 0; 1; 1; 1; 0 ] in
  let topology =
    match topo with `Complete -> T.complete 8 | `Ring -> T.ring ~k:1 8
  in
  let strategy =
    match strat with
    | `Collude -> R.Originate_second
    | `Poison -> R.Poison_origin (0, 1)
  in
  let r = R.run ~strategy ~topology ~t:1 ~byzantine:[ 5 ] inputs in
  [
    label;
    attack;
    Table.bcell r.R.termination;
    Table.bcell r.R.voting_validity;
    Table.bcell (r.R.termination && r.R.voting_validity);
  ]

let e12_poison () =
  let tab = e12b_table () in
  List.iter (fun c -> Table.add_row tab (e12b_row c)) e12b_cells;
  tab

type e12_cell =
  | E12_topo of (string * T.t)
  | E12_poison of
      (string * [ `Complete | `Ring ] * [ `Collude | `Poison ] * string)

let e12_campaign =
  Campaign.v ~id:"e12"
    ~what:"Extension: multi-hop radio voting across topologies + [36] limit"
    ~axes:
      [ ("topology", List.map fst topologies);
        ("attack", [ "collude"; "poison" ]) ]
    ~cells:(fun _ ->
      List.map (fun c -> E12_topo c) e12a_cells
      @ List.map (fun c -> E12_poison c) e12b_cells)
    ~run_cell:(fun _ cell ->
      match cell with
      | E12_topo c -> e12a_row c
      | E12_poison c -> e12b_row c)
    ~collect:(fun _ pairs ->
      let rows p =
        List.filter_map (fun (c, r) -> if p c then Some r else None) pairs
      in
      let ta = e12a_table () in
      List.iter (Table.add_row ta)
        (rows (function E12_topo _ -> true | _ -> false));
      let tb = e12b_table () in
      List.iter (Table.add_row tb)
        (rows (function E12_poison _ -> true | _ -> false));
      Campaign.tables [ ta; tb ])
    ()
