(* Experiment E17: resilience campaigns on the chaos network substrate.

   The grid is drop rate x (partition width, recovery lag) x protocol
   variant; duplication and jitter ride along scaled to the drop axis
   (duplicate = drop/2, jitter = 1 whenever drop > 0) so every substrate
   axis is exercised without adding grid dimensions.  Each cell runs
   [trials] Monte-Carlo instances under derived seeds; the network seed
   is the instance seed, so both the protocol randomness and the fault
   pattern vary per trial while the whole campaign replays bit-for-bit
   from the campaign seed.

   Classification per run:
     Violation  a decided value breaks safety-guaranteed admissibility
                (Definition V.1) or agreement — never admissible for the
                safety-guaranteed variant, whatever the network does;
     Stall      some honest node never decides (admissible degradation);
     Exact      terminated with the true plurality everywhere.

   The electorate is the A=9/B=2/C=1 gap-7 witness with t = f = 2: on
   faithful links every variant is Exact (gap > 2t), so any degradation
   observed on the grid is attributable to the injected faults. *)

module Table = Vv_prelude.Table
module Runner = Vv_core.Runner
module Executor = Vv_exec.Executor
module Campaign = Vv_exec.Campaign
module Network = Vv_sim.Network
module Retransmit = Vv_sim.Retransmit
module Config = Vv_sim.Config
module Adversary = Vv_sim.Adversary
module Trace = Vv_sim.Trace
module Na_voting = Vv_bb.Na_voting

type profile = Campaign.profile = Smoke | Full

let profile_label = Campaign.profile_label

type cls = Exact | Stall | Violation

let cls_label = function
  | Exact -> "exact"
  | Stall -> "stall"
  | Violation -> "violation"

type scenario = { width : int; heal : int }

(* The grid's protocol axis: the synchronous voting pipeline variants,
   plus the network-agnostic broadcast protocol of E20 run through the
   very same substrate faults. *)
type variant = Std of Runner.protocol | Na

let variant_label = function
  | Std p -> Runner.protocol_label p
  | Na -> "na-voting"

type cell = {
  variant : variant;
  drop : float;
  scenario : scenario;
  exact : int;
  stalls : int;
  violations : int;
  rounds_avg : float;
  dropped_avg : float;
  retrans_avg : float;
}

let cell_class c =
  if c.violations > 0 then Violation
  else if c.stalls > 0 then Stall
  else Exact

type result = {
  profile : profile;
  retransmit : bool;
  trials : int;
  cells : cell list;
  runs : int;
  ok : bool;
}

let protocols =
  [
    Runner.Algo1;
    Runner.Algo2_sct;
    Runner.Algo3_incremental;
    Runner.Algo4_local;
    Runner.Cft;
  ]

let variants = List.map (fun p -> Std p) protocols @ [ Na ]

let drops = function
  | Smoke -> [ 0.0; 0.2; 0.4 ]
  | Full -> [ 0.0; 0.1; 0.2; 0.3; 0.45 ]

let scenarios = function
  | Smoke -> [ { width = 0; heal = 0 }; { width = 1; heal = 3 };
               { width = 2; heal = 6 } ]
  | Full ->
      [ { width = 0; heal = 0 }; { width = 1; heal = 4 };
        { width = 2; heal = 8 }; { width = 3; heal = 12 } ]

let default_trials = function Smoke -> 3 | Full -> 5

(* The partition opens after the first broadcast exchanges are in flight
   and heals [heal] rounds later. *)
let partition_start = 2

let scenario_label s =
  if s.width = 0 || s.heal = 0 then "-"
  else
    Fmt.str "w=%d [%d,%d)" s.width partition_start (partition_start + s.heal)

(* Gap-7 electorate (A=9, B=2, C=1): Exact for every variant on faithful
   links with t = f = 2. *)
let honest_inputs = Witness.inputs ~ag:9 ~bg:2 ~cg:1
let t_tol = 2
let f_actual = 2
let max_rounds = 60

let network_of ~drop ~scenario ~seed =
  let partitions =
    if scenario.width = 0 || scenario.heal = 0 then []
    else
      [
        {
          Network.window =
            {
              Network.from_round = partition_start;
              until_round = partition_start + scenario.heal;
            };
          isolated = List.init scenario.width Fun.id;
        };
      ]
  in
  Network.make ~drop ~duplicate:(drop /. 2.)
    ~jitter:(if drop > 0.0 then 1 else 0)
    ~partitions ~seed ()

let classify (o : Runner.outcome) =
  if not (o.Runner.safety_admissible && o.Runner.agreement) then Violation
  else if not o.Runner.termination then Stall
  else Exact

(* --- the network-agnostic variant ------------------------------------ *)

(* Na_voting's timeout multiple; covers the Uniform {lo=1; hi=2} engine
   delay the whole grid runs under. *)
let na_delta = 2

(* Same electorate as the sync variants: A=9/B=2/C=1, f = t = 2.  Option
   0 is the strict-plurality winner every honest node must decide. *)
let na_input id =
  if id < 9 then 0 else if id < 11 then 1 else if id < 12 then 2 else 0

(* The E20 forger, rephased to this cell's delta: a time-based script
   broadcasting forged quorum fragments for the runner-up at every phase
   boundary.  Two Byzantine nodes cannot complete a (t_s + 1) = 3 Fin
   quorum on their own, so any decision for option 1 needs honest help —
   which the substrate can only withhold, never fabricate. *)
let na_adversary =
  let msgs_for round =
    if round = 0 then
      [ { Na_voting.kind = Inp; value = 1 }; { Na_voting.kind = Fin; value = 1 } ]
    else if round = na_delta then [ { Na_voting.kind = Vote; value = 1 } ]
    else if round = 2 * na_delta then [ { Na_voting.kind = Comm; value = 1 } ]
    else if round = 3 * na_delta then [ { Na_voting.kind = FbVote; value = 1 } ]
    else []
  in
  Adversary.named "chaos-forger" (fun view ->
      List.concat_map
        (fun src ->
          List.concat_map
            (fun msg ->
              List.map
                (fun dst -> { Adversary.src; dst; msg })
                (view.Adversary.reach src))
            (msgs_for view.Adversary.round))
        view.Adversary.byzantine)

(* Safety for the network-agnostic run: every decided honest value is
   the true plurality (0) and all decided values agree; undecided honest
   nodes are a stall, never a violation. *)
let na_classify ~honest outputs =
  let decided = List.filter_map (fun id -> outputs.(id)) honest in
  let wrong = List.exists (fun v -> v <> 0) decided in
  let disagree =
    match decided with [] -> false | v :: rest -> List.exists (( <> ) v) rest
  in
  if wrong || disagree then Violation
  else if List.length decided < List.length honest then Stall
  else Exact

let na_trial ~retransmit ~network ~seed =
  let module P = Na_voting.Make (struct
    let t_s = t_tol
    let t_a = t_tol
    let sync_delta = na_delta
  end) in
  let module E = Vv_sim.Engine.Make (P) in
  let n = 12 + f_actual in
  let byz = List.init f_actual (fun i -> n - f_actual + i) in
  let cfg =
    Config.with_byzantine
      ~delay:(Vv_sim.Delay.Uniform { lo = 1; hi = 2 })
      ~network ?retransmit ~max_rounds ~seed ~n ~t_max:t_tol byz ()
  in
  let res = E.run_exn cfg ~inputs:na_input ~adversary:na_adversary () in
  ( na_classify ~honest:(Config.honest_ids cfg) res.E.outputs,
    res.E.rounds_used,
    res.E.trace.Trace.dropped_msgs,
    res.E.trace.Trace.retrans_msgs )

let grid profile =
  List.concat_map
    (fun variant ->
      List.concat_map
        (fun drop ->
          List.map (fun scenario -> (variant, drop, scenario))
            (scenarios profile))
        (drops profile))
    variants

(* One grid cell's statistics.  Every trial seed is a pure function of
   (campaign seed, cell index, trial index) — the same flat indexing the
   pre-campaign executor used — so the whole campaign replays bit-for-bit
   from the campaign seed at every [jobs] value. *)
let cell_stats ~trials ~retransmit ~seed ~index (variant, drop, scenario) =
  let retransmit_policy = if retransmit then Some Retransmit.default else None in
  let exact = ref 0 and stalls = ref 0 and violations = ref 0 in
  let rounds = ref 0 and dropped = ref 0 and retrans = ref 0 in
  for k = 0 to trials - 1 do
    let run_seed = Executor.derive_seed ~seed ((index * trials) + k) in
    let network = network_of ~drop ~scenario ~seed:run_seed in
    let cls, r, d, rt =
      match variant with
      | Na -> na_trial ~retransmit:retransmit_policy ~network ~seed:run_seed
      | Std protocol -> (
          let spec =
            Runner.simple_spec ~protocol
              ~delay:(Vv_sim.Delay.Uniform { lo = 1; hi = 2 })
              ~network ?retransmit:retransmit_policy ~seed:run_seed ~max_rounds
              ~t:t_tol ~f:f_actual honest_inputs
          in
          match Runner.run_checked spec with
          | Ok o ->
              ( classify o,
                o.Runner.rounds,
                o.Runner.trace.Vv_sim.Trace.dropped_msgs,
                o.Runner.trace.Vv_sim.Trace.retrans_msgs )
          | Error (`Invalid_adversary _) ->
              (* An adversary invalidated by the fault plan is a harness
                 bug, not a protocol property — surface it loudly. *)
              (Violation, 0, 0, 0))
    in
    (match cls with
    | Exact -> incr exact
    | Stall -> incr stalls
    | Violation -> incr violations);
    rounds := !rounds + r;
    dropped := !dropped + d;
    retrans := !retrans + rt
  done;
  let avg x = float_of_int x /. float_of_int trials in
  {
    variant;
    drop;
    scenario;
    exact = !exact;
    stalls = !stalls;
    violations = !violations;
    rounds_avg = avg !rounds;
    dropped_avg = avg !dropped;
    retrans_avg = avg !retrans;
  }

(* The safety contract of the grid: the safety-guaranteed sync variant
   and the network-agnostic protocol must never decide wrongly, whatever
   the substrate does — a single Violation trial on either fails the
   campaign (and `vvc chaos` exits nonzero). *)
let result_ok cells =
  List.for_all
    (fun c ->
      match c.variant with
      | Std Runner.Algo2_sct | Na -> c.violations = 0
      | Std _ -> true)
    cells

let run ?jobs ?(retransmit = false) ?(seed = 0xc4a05) ?trials profile =
  let trials =
    match trials with Some k -> k | None -> default_trials profile
  in
  if trials < 1 then invalid_arg "Exp_chaos.run: trials must be >= 1";
  let specs = Array.of_list (grid profile) in
  let ncells = Array.length specs in
  let cells =
    Executor.map ?jobs ~chunk_size:1 ~count:ncells (fun i ->
        cell_stats ~trials ~retransmit ~seed ~index:i specs.(i))
    |> Array.to_list
  in
  {
    profile;
    retransmit;
    trials;
    cells;
    runs = ncells * trials;
    ok = result_ok cells;
  }

(* --- tables --- *)

let grid_table r =
  let tab =
    Table.create
      ~title:
        (Fmt.str
           "E17: chaos degradation grid (profile=%s trials=%d retransmit=%b; \
            dup=drop/2, jitter=1 when drop>0)"
           (profile_label r.profile) r.trials r.retransmit)
      ~headers:
        [ "protocol"; "drop"; "partition"; "class"; "exact"; "stall";
          "violation"; "avg rounds"; "avg dropped"; "avg retrans" ]
      ~aligns:
        [ Table.Left; Table.Right; Table.Left; Table.Left; Table.Right;
          Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ]
      ()
  in
  List.iter
    (fun c ->
      Table.add_row tab
        [
          variant_label c.variant;
          Table.fcell ~decimals:2 c.drop;
          scenario_label c.scenario;
          cls_label (cell_class c);
          Table.icell c.exact;
          Table.icell c.stalls;
          Table.icell c.violations;
          Table.fcell ~decimals:1 c.rounds_avg;
          Table.fcell ~decimals:1 c.dropped_avg;
          Table.fcell ~decimals:1 c.retrans_avg;
        ])
    r.cells;
  tab

(* The envelope: the largest swept drop rate below which the
   partition-free column stays all-Exact, per protocol. *)
let envelope_table r =
  let tab =
    Table.create
      ~title:"E17: degradation envelope per protocol"
      ~headers:
        [ "protocol"; "cells"; "exact"; "stall"; "violation";
          "clean drop <="; "safety violations" ]
      ~aligns:
        [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
          Table.Right; Table.Right ]
      ()
  in
  List.iter
    (fun variant ->
      let cs = List.filter (fun c -> c.variant = variant) r.cells in
      let count f = List.length (List.filter f cs) in
      let clean_envelope =
        (* Largest prefix of the ascending drop axis whose
           partition-free cell is Exact. *)
        List.fold_left
          (fun (continue, best) d ->
            if not continue then (false, best)
            else
              let ok =
                List.exists
                  (fun c ->
                    c.drop = d && c.scenario.width = 0
                    && cell_class c = Exact)
                  cs
              in
              if ok then (true, Some d) else (false, best))
          (true, None) (drops r.profile)
        |> snd
      in
      let violations =
        List.fold_left (fun acc c -> acc + c.violations) 0 cs
      in
      Table.add_row tab
        [
          variant_label variant;
          Table.icell (List.length cs);
          Table.icell (count (fun c -> cell_class c = Exact));
          Table.icell (count (fun c -> cell_class c = Stall));
          Table.icell (count (fun c -> cell_class c = Violation));
          (match clean_envelope with
          | Some d -> Table.fcell ~decimals:2 d
          | None -> "-");
          Table.icell violations;
        ])
    variants;
  tab

let tables r = [ grid_table r; envelope_table r ]

let campaign ?(retransmit = false) ?trials () =
  let trials_for profile =
    match trials with Some k -> k | None -> default_trials profile
  in
  Campaign.v ~id:"chaos"
    ~what:"Chaos resilience: degradation grid under lossy/partitioned links"
    ~seed:0xc4a05
    ~axes:
      [ ("protocol", List.map variant_label variants);
        ("drop", List.map (Fmt.str "%.2f") (drops Full));
        ("partition", List.map scenario_label (scenarios Full)) ]
    ~cells:grid
    ~run_cell:(fun ctx cell ->
      let trials = trials_for ctx.Campaign.profile in
      if trials < 1 then invalid_arg "Exp_chaos.campaign: trials must be >= 1";
      cell_stats ~trials ~retransmit ~seed:ctx.Campaign.base_seed
        ~index:ctx.Campaign.index cell)
    ~collect:(fun profile pairs ->
      let cells = List.map snd pairs in
      let r =
        {
          profile;
          retransmit;
          trials = trials_for profile;
          cells;
          runs = List.length cells * trials_for profile;
          ok = result_ok cells;
        }
      in
      { Campaign.tables = tables r; ok = r.ok; verdict = None })
    ()
