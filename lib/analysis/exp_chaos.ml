(* Experiment E17: resilience campaigns on the chaos network substrate.

   The grid is drop rate x (partition width, recovery lag) x protocol
   variant; duplication and jitter ride along scaled to the drop axis
   (duplicate = drop/2, jitter = 1 whenever drop > 0) so every substrate
   axis is exercised without adding grid dimensions.  Each cell runs
   [trials] Monte-Carlo instances under derived seeds; the network seed
   is the instance seed, so both the protocol randomness and the fault
   pattern vary per trial while the whole campaign replays bit-for-bit
   from the campaign seed.

   Classification per run:
     Violation  a decided value breaks safety-guaranteed admissibility
                (Definition V.1) or agreement — never admissible for the
                safety-guaranteed variant, whatever the network does;
     Stall      some honest node never decides (admissible degradation);
     Exact      terminated with the true plurality everywhere.

   The electorate is the A=9/B=2/C=1 gap-7 witness with t = f = 2: on
   faithful links every variant is Exact (gap > 2t), so any degradation
   observed on the grid is attributable to the injected faults. *)

module Table = Vv_prelude.Table
module Runner = Vv_core.Runner
module Executor = Vv_exec.Executor
module Campaign = Vv_exec.Campaign
module Network = Vv_sim.Network
module Retransmit = Vv_sim.Retransmit

type profile = Campaign.profile = Smoke | Full

let profile_label = Campaign.profile_label

type cls = Exact | Stall | Violation

let cls_label = function
  | Exact -> "exact"
  | Stall -> "stall"
  | Violation -> "violation"

type scenario = { width : int; heal : int }

type cell = {
  protocol : Runner.protocol;
  drop : float;
  scenario : scenario;
  exact : int;
  stalls : int;
  violations : int;
  rounds_avg : float;
  dropped_avg : float;
  retrans_avg : float;
}

let cell_class c =
  if c.violations > 0 then Violation
  else if c.stalls > 0 then Stall
  else Exact

type result = {
  profile : profile;
  retransmit : bool;
  trials : int;
  cells : cell list;
  runs : int;
  ok : bool;
}

let protocols =
  [
    Runner.Algo1;
    Runner.Algo2_sct;
    Runner.Algo3_incremental;
    Runner.Algo4_local;
    Runner.Cft;
  ]

let drops = function
  | Smoke -> [ 0.0; 0.2; 0.4 ]
  | Full -> [ 0.0; 0.1; 0.2; 0.3; 0.45 ]

let scenarios = function
  | Smoke -> [ { width = 0; heal = 0 }; { width = 1; heal = 3 };
               { width = 2; heal = 6 } ]
  | Full ->
      [ { width = 0; heal = 0 }; { width = 1; heal = 4 };
        { width = 2; heal = 8 }; { width = 3; heal = 12 } ]

let default_trials = function Smoke -> 3 | Full -> 5

(* The partition opens after the first broadcast exchanges are in flight
   and heals [heal] rounds later. *)
let partition_start = 2

let scenario_label s =
  if s.width = 0 || s.heal = 0 then "-"
  else
    Fmt.str "w=%d [%d,%d)" s.width partition_start (partition_start + s.heal)

(* Gap-7 electorate (A=9, B=2, C=1): Exact for every variant on faithful
   links with t = f = 2. *)
let honest_inputs = Witness.inputs ~ag:9 ~bg:2 ~cg:1
let t_tol = 2
let f_actual = 2
let max_rounds = 60

let network_of ~drop ~scenario ~seed =
  let partitions =
    if scenario.width = 0 || scenario.heal = 0 then []
    else
      [
        {
          Network.window =
            {
              Network.from_round = partition_start;
              until_round = partition_start + scenario.heal;
            };
          isolated = List.init scenario.width Fun.id;
        };
      ]
  in
  Network.make ~drop ~duplicate:(drop /. 2.)
    ~jitter:(if drop > 0.0 then 1 else 0)
    ~partitions ~seed ()

let classify (o : Runner.outcome) =
  if not (o.Runner.safety_admissible && o.Runner.agreement) then Violation
  else if not o.Runner.termination then Stall
  else Exact

let grid profile =
  List.concat_map
    (fun protocol ->
      List.concat_map
        (fun drop ->
          List.map (fun scenario -> (protocol, drop, scenario))
            (scenarios profile))
        (drops profile))
    protocols

(* One grid cell's statistics.  Every trial seed is a pure function of
   (campaign seed, cell index, trial index) — the same flat indexing the
   pre-campaign executor used — so the whole campaign replays bit-for-bit
   from the campaign seed at every [jobs] value. *)
let cell_stats ~trials ~retransmit ~seed ~index (protocol, drop, scenario) =
  let retransmit_policy = if retransmit then Some Retransmit.default else None in
  let exact = ref 0 and stalls = ref 0 and violations = ref 0 in
  let rounds = ref 0 and dropped = ref 0 and retrans = ref 0 in
  for k = 0 to trials - 1 do
    let run_seed = Executor.derive_seed ~seed ((index * trials) + k) in
    let network = network_of ~drop ~scenario ~seed:run_seed in
    let spec =
      Runner.simple_spec ~protocol
        ~delay:(Vv_sim.Delay.Uniform { lo = 1; hi = 2 })
        ~network ?retransmit:retransmit_policy ~seed:run_seed ~max_rounds
        ~t:t_tol ~f:f_actual honest_inputs
    in
    let cls, r, d, rt =
      match Runner.run_checked spec with
      | Ok o ->
          ( classify o,
            o.Runner.rounds,
            o.Runner.trace.Vv_sim.Trace.dropped_msgs,
            o.Runner.trace.Vv_sim.Trace.retrans_msgs )
      | Error (`Invalid_adversary _) ->
          (* An adversary invalidated by the fault plan is a harness
             bug, not a protocol property — surface it loudly. *)
          (Violation, 0, 0, 0)
    in
    (match cls with
    | Exact -> incr exact
    | Stall -> incr stalls
    | Violation -> incr violations);
    rounds := !rounds + r;
    dropped := !dropped + d;
    retrans := !retrans + rt
  done;
  let avg x = float_of_int x /. float_of_int trials in
  {
    protocol;
    drop;
    scenario;
    exact = !exact;
    stalls = !stalls;
    violations = !violations;
    rounds_avg = avg !rounds;
    dropped_avg = avg !dropped;
    retrans_avg = avg !retrans;
  }

let result_ok cells =
  List.for_all
    (fun c -> c.protocol <> Runner.Algo2_sct || c.violations = 0)
    cells

let run ?jobs ?(retransmit = false) ?(seed = 0xc4a05) ?trials profile =
  let trials =
    match trials with Some k -> k | None -> default_trials profile
  in
  if trials < 1 then invalid_arg "Exp_chaos.run: trials must be >= 1";
  let specs = Array.of_list (grid profile) in
  let ncells = Array.length specs in
  let cells =
    Executor.map ?jobs ~chunk_size:1 ~count:ncells (fun i ->
        cell_stats ~trials ~retransmit ~seed ~index:i specs.(i))
    |> Array.to_list
  in
  {
    profile;
    retransmit;
    trials;
    cells;
    runs = ncells * trials;
    ok = result_ok cells;
  }

(* --- tables --- *)

let grid_table r =
  let tab =
    Table.create
      ~title:
        (Fmt.str
           "E17: chaos degradation grid (profile=%s trials=%d retransmit=%b; \
            dup=drop/2, jitter=1 when drop>0)"
           (profile_label r.profile) r.trials r.retransmit)
      ~headers:
        [ "protocol"; "drop"; "partition"; "class"; "exact"; "stall";
          "violation"; "avg rounds"; "avg dropped"; "avg retrans" ]
      ~aligns:
        [ Table.Left; Table.Right; Table.Left; Table.Left; Table.Right;
          Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ]
      ()
  in
  List.iter
    (fun c ->
      Table.add_row tab
        [
          Runner.protocol_label c.protocol;
          Table.fcell ~decimals:2 c.drop;
          scenario_label c.scenario;
          cls_label (cell_class c);
          Table.icell c.exact;
          Table.icell c.stalls;
          Table.icell c.violations;
          Table.fcell ~decimals:1 c.rounds_avg;
          Table.fcell ~decimals:1 c.dropped_avg;
          Table.fcell ~decimals:1 c.retrans_avg;
        ])
    r.cells;
  tab

(* The envelope: the largest swept drop rate below which the
   partition-free column stays all-Exact, per protocol. *)
let envelope_table r =
  let tab =
    Table.create
      ~title:"E17: degradation envelope per protocol"
      ~headers:
        [ "protocol"; "cells"; "exact"; "stall"; "violation";
          "clean drop <="; "safety violations" ]
      ~aligns:
        [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
          Table.Right; Table.Right ]
      ()
  in
  List.iter
    (fun protocol ->
      let cs = List.filter (fun c -> c.protocol = protocol) r.cells in
      let count f = List.length (List.filter f cs) in
      let clean_envelope =
        (* Largest prefix of the ascending drop axis whose
           partition-free cell is Exact. *)
        List.fold_left
          (fun (continue, best) d ->
            if not continue then (false, best)
            else
              let ok =
                List.exists
                  (fun c ->
                    c.drop = d && c.scenario.width = 0
                    && cell_class c = Exact)
                  cs
              in
              if ok then (true, Some d) else (false, best))
          (true, None) (drops r.profile)
        |> snd
      in
      let violations =
        List.fold_left (fun acc c -> acc + c.violations) 0 cs
      in
      Table.add_row tab
        [
          Runner.protocol_label protocol;
          Table.icell (List.length cs);
          Table.icell (count (fun c -> cell_class c = Exact));
          Table.icell (count (fun c -> cell_class c = Stall));
          Table.icell (count (fun c -> cell_class c = Violation));
          (match clean_envelope with
          | Some d -> Table.fcell ~decimals:2 d
          | None -> "-");
          Table.icell violations;
        ])
    protocols;
  tab

let tables r = [ grid_table r; envelope_table r ]

let campaign ?(retransmit = false) ?trials () =
  let trials_for profile =
    match trials with Some k -> k | None -> default_trials profile
  in
  Campaign.v ~id:"chaos"
    ~what:"Chaos resilience: degradation grid under lossy/partitioned links"
    ~seed:0xc4a05
    ~axes:
      [ ("protocol", List.map Runner.protocol_label protocols);
        ("drop", List.map (Fmt.str "%.2f") (drops Full));
        ("partition", List.map scenario_label (scenarios Full)) ]
    ~cells:grid
    ~run_cell:(fun ctx cell ->
      let trials = trials_for ctx.Campaign.profile in
      if trials < 1 then invalid_arg "Exp_chaos.campaign: trials must be >= 1";
      cell_stats ~trials ~retransmit ~seed:ctx.Campaign.base_seed
        ~index:ctx.Campaign.index cell)
    ~collect:(fun profile pairs ->
      let cells = List.map snd pairs in
      let r =
        {
          profile;
          retransmit;
          trials = trials_for profile;
          cells;
          runs = List.length cells * trials_for profile;
          ok = result_ok cells;
        }
      in
      { Campaign.tables = tables r; ok = r.ok; verdict = None })
    ()
