(* Experiment E15: how fast do revote sessions converge? (Section V-B)

   E13a showed SCT terminates first-try with probability Pr(gap > 2t),
   which is small on dispersed electorates.  Section V-B's remedy is
   revoting with adjusted preferences; this experiment measures how many
   sessions that takes per profile and per adjustment policy. *)

module Table = Vv_prelude.Table
module Profiles = Vv_dist.Profiles
module Rng = Vv_prelude.Rng
module Session = Vv_core.Session
module Campaign = Vv_exec.Campaign

let e15 ?(trials = 60) ?(ng = Profiles.default_ng) ?(t = 2)
    ?(max_sessions = 8) ?(seed = 0xe15) () =
  let tab =
    Table.create
      ~title:
        (Fmt.str
           "E15: revote sessions to convergence (SCT, N_G=%d, t=f=%d, cap \
            %d sessions)"
           ng t max_sessions)
      ~headers:
        [ "profile"; "policy"; "success rate"; "mean sessions";
          "first-try rate" ]
      ~aligns:
        [ Table.Left; Table.Left; Table.Right; Table.Right; Table.Right ]
      ()
  in
  let rng = Rng.create seed in
  List.iter
    (fun (pr : Profiles.t) ->
      let dist = Profiles.distribution ~ng pr in
      List.iter
        (fun (policy_label, policy) ->
          let decided = ref 0 and sessions = ref 0 and first = ref 0 in
          for _ = 1 to trials do
            let honest = Vv_dist.Montecarlo.sample_inputs dist rng in
            let r =
              Session.run ~policy ~max_sessions ~seed:(Rng.bits rng) ~t ~f:t
                honest
            in
            if r.Session.decided <> None then begin
              incr decided;
              sessions := !sessions + r.Session.sessions_used;
              if r.Session.sessions_used = 1 then incr first
            end
          done;
          Table.add_row tab
            [
              pr.Profiles.name;
              policy_label;
              Table.fcell ~decimals:2
                (float_of_int !decided /. float_of_int trials);
              Table.fcell ~decimals:2
                (if !decided = 0 then nan
                 else float_of_int !sessions /. float_of_int !decided);
              Table.fcell ~decimals:2
                (float_of_int !first /. float_of_int trials);
            ])
        [ ("abandon-third", Session.Abandon_third);
          ("bandwagon", Session.Bandwagon) ])
    Profiles.all;
  tab

(* The whole grid draws trial inputs and seeds from one rng shared across
   every profile and policy, so the campaign is a single cell.  Smoke tier
   shrinks the trial count. *)
let e15_campaign =
  Campaign.v ~id:"e15"
    ~what:
      "Section V-B revote sessions: convergence per profile and policy"
    ~seed:0xe15
    ~axes:
      [ ("profile",
         List.map (fun (p : Profiles.t) -> p.Profiles.name) Profiles.all);
        ("policy", [ "abandon-third"; "bandwagon" ]) ]
    ~cells:(fun _ -> [ () ])
    ~run_cell:(fun ctx () ->
      let trials =
        match ctx.Campaign.profile with Campaign.Full -> 60 | Campaign.Smoke -> 15
      in
      e15 ~trials ~seed:ctx.Campaign.base_seed ())
    ~collect:(fun _ pairs -> Campaign.tables (List.map snd pairs))
    ()
