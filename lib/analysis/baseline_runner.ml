(* Engine plumbing for the baseline protocols (experiment E8): run each
   comparator on a shared workload against a matched adversary and return
   substrate-independent summaries. *)

open Vv_sim
module B = Vv_baselines

type summary = {
  outputs : int option list;  (* honest, id order *)
  rounds : int;
  stalled : bool;
}

(* Adversary against the exchange-and-agree baselines: observe the honest
   Raw values in round 0 and flood the runner-up (same collusion the voting
   protocols face). *)
let raw_collude () : B.Exchange_ba.msg Adversary.t =
  Adversary.named "raw-collude" (fun view ->
      if view.Adversary.round <> 0 then []
      else
        let seen = Hashtbl.create 16 in
        for i = 0 to view.Adversary.sent_len - 1 do
          match view.Adversary.sent_msg i with
          | B.Exchange_ba.Raw v ->
              let src = view.Adversary.sent_src i in
              if not (Hashtbl.mem seen src) then Hashtbl.add seen src v
          | B.Exchange_ba.Ba _ -> ()
        done;
        let counts = Hashtbl.create 8 in
        Hashtbl.iter
          (fun _ v ->
            let c = try Hashtbl.find counts v with Not_found -> 0 in
            Hashtbl.replace counts v (c + 1))
          seen;
        let ranked =
          Hashtbl.fold (fun v c acc -> (c, v) :: acc) counts []
          |> List.sort (fun (c1, v1) (c2, v2) ->
                 if c1 <> c2 then compare c2 c1 else compare v1 v2)
        in
        match ranked with
        | [] -> []
        | [ (_, only) ] ->
            List.concat_map
              (fun src ->
                List.init view.Adversary.n (fun dst ->
                    { Adversary.src; dst; msg = B.Exchange_ba.Raw only }))
              view.Adversary.byzantine
        | _ :: (_, second) :: _ ->
            List.concat_map
              (fun src ->
                List.init view.Adversary.n (fun dst ->
                    { Adversary.src; dst; msg = B.Exchange_ba.Raw second }))
              view.Adversary.byzantine)

(* Adversary against approximate agreement: flood an extreme outlier every
   round (the sensor-failure scenario of [5]). *)
let approx_outlier ~value : float Adversary.t =
  Adversary.named "approx-outlier" (fun view ->
      List.concat_map
        (fun src ->
          List.init view.Adversary.n (fun dst ->
              { Adversary.src; dst; msg = value }))
        view.Adversary.byzantine)

module Median_E = Engine.Make (B.Median_validity)
module Interval_E = Engine.Make (B.Interval_validity)
module Strong_E = Engine.Make (B.Strong_consensus)
module Kset_E = Engine.Make (B.Kset)
module Approx_E = Engine.Make (B.Approx)

let run_median cfg ~inputs ~collude =
  let adversary = if collude then Some (raw_collude ()) else None in
  let res = Median_E.run_exn cfg ~inputs ?adversary () in
  {
    outputs = Median_E.honest_outputs res;
    rounds = res.Median_E.rounds_used;
    stalled = res.Median_E.stalled;
  }

let run_interval cfg ~inputs ~collude =
  let adversary = if collude then Some (raw_collude ()) else None in
  let res = Interval_E.run_exn cfg ~inputs ?adversary () in
  {
    outputs = Interval_E.honest_outputs res;
    rounds = res.Interval_E.rounds_used;
    stalled = res.Interval_E.stalled;
  }

let run_strong cfg ~inputs ~collude =
  let adversary = if collude then Some (raw_collude ()) else None in
  let res = Strong_E.run_exn cfg ~inputs ?adversary () in
  {
    outputs = Strong_E.honest_outputs res;
    rounds = res.Strong_E.rounds_used;
    stalled = res.Strong_E.stalled;
  }

let run_kset cfg ~inputs =
  let res = Kset_E.run_exn cfg ~inputs () in
  {
    outputs = Kset_E.honest_outputs res;
    rounds = res.Kset_E.rounds_used;
    stalled = res.Kset_E.stalled;
  }

(* Approx keeps float outputs; expose them directly. *)
let run_approx cfg ~inputs ~outlier =
  let adversary =
    match outlier with None -> None | Some v -> Some (approx_outlier ~value:v)
  in
  let res = Approx_E.run_exn cfg ~inputs ?adversary () in
  ( Approx_E.honest_outputs res,
    res.Approx_E.rounds_used,
    res.Approx_E.stalled )
