(* Experiment E13: two probability companions to Figure 1.

   E13a: Pr(BFT exactness) = Pr(A_G - B_G > t) vs Pr(SCT termination) =
         Pr(A_G - B_G > 2t) per profile — quantifying the price of the
         safety guarantee (Inequality 6 vs Property 2) on the same
         electorate distributions.
   E13b: Neiger's strong-consensus bound N > mt, demonstrated empirically
         on the strong-consensus baseline: with honest inputs maximally
         dispersed over m options and N <= mt, a coalition of t nodes
         flooding a value NOBODY honest holds wins the plurality — strong
         validity itself collapses, which voting validity (a fortiori)
         rules out by stalling. *)

module Table = Vv_prelude.Table
module Profiles = Vv_dist.Profiles
module Cache = Vv_dist.Cache
module Oid = Vv_ballot.Option_id
module Campaign = Vv_exec.Campaign

let e13a_table ~t_max () =
  Table.create
    ~title:
      "E13a: the price of the safety guarantee - Pr(gap > t) vs \
       Pr(gap > 2t) per profile"
    ~headers:
      ([ "profile" ]
      @ List.concat_map
          (fun t -> [ Fmt.str "BFT t=%d" t; Fmt.str "SCT t=%d" t ])
          (List.init t_max (fun i -> i + 1)))
    ~aligns:(Table.Left :: List.init (2 * t_max) (fun _ -> Table.Right))
    ()

let e13a_row ~ng ~t_max (pr : Profiles.t) =
  let dist = Profiles.distribution ~ng pr in
  let cells =
    List.concat_map
      (fun t ->
        [
          Table.fcell (Cache.pr_voting_validity dist ~t);
          Table.fcell (Cache.pr_sct_termination dist ~t);
        ])
      (List.init t_max (fun i -> i + 1))
  in
  pr.Profiles.name :: cells

let e13_sct_price ?(ng = Profiles.default_ng) ?(t_max = 3) () =
  let tab = e13a_table ~t_max () in
  List.iter
    (fun pr -> Table.add_row tab (e13a_row ~ng ~t_max pr))
    Profiles.all;
  tab

let e13b_table ~t ~m () =
  Table.create
    ~title:
      (Fmt.str
         "E13b: Neiger's N > mt bound, empirically (m=%d options, t=f=%d, \
          coalition floods a value no honest node holds)"
         m t)
    ~headers:[ "N"; "N > mt"; "honest spread"; "strong validity"; "alien won" ]
    ~aligns:[ Table.Right; Table.Right; Table.Left; Table.Right; Table.Right ]
    ()

let e13b_points ~t ~m =
  [ (m * t) - 1; m * t; (m * t) + 1; (m * t) + 3; (m * t) + 6 ]

let e13b_row ~t ~m n =
  let ng = n - t in
  (* Spread honest inputs as evenly as possible over options 0..m-1;
     the adversary floods option [m] (held by nobody honest). *)
  let honest = List.init ng (fun i -> i mod m) in
  let cfg =
    Vv_sim.Config.with_byzantine ~n ~t_max:t (List.init t (fun i -> ng + i)) ()
  in
  let arr = Array.of_list honest in
  let module A = Vv_sim.Adversary in
  let alien = m in
  let adversary =
    A.named "alien-flood" (fun view ->
        if view.A.round <> 0 then []
        else
          List.concat_map
            (fun src ->
              List.init view.A.n (fun dst ->
                  { A.src; dst; msg = Vv_baselines.Exchange_ba.Raw alien }))
            view.A.byzantine)
  in
  let module E = Baseline_runner.Strong_E in
  let res =
    E.run_exn cfg ~inputs:(fun id -> arr.(min id (ng - 1))) ~adversary ()
  in
  let outputs = E.honest_outputs res in
  let strong_ok =
    List.for_all (function None -> true | Some v -> List.mem v honest) outputs
  in
  let alien_won =
    List.exists (function Some v -> v = alien | None -> false) outputs
  in
  let spread =
    let counts = Array.make (m + 1) 0 in
    List.iter (fun v -> counts.(v) <- counts.(v) + 1) honest;
    String.concat "/" (List.init m (fun i -> string_of_int counts.(i)))
  in
  [
    Table.icell n;
    Table.bcell (n > m * t);
    spread;
    Table.bcell strong_ok;
    Table.bcell alien_won;
  ]

let e13_neiger ?(t = 3) ?(m = 4) () =
  let tab = e13b_table ~t ~m () in
  List.iter (fun n -> Table.add_row tab (e13b_row ~t ~m n)) (e13b_points ~t ~m);
  tab

type e13_cell = Price of Profiles.t | Neiger of int

let e13_campaign =
  let t = 3 and m = 4 in
  Campaign.v ~id:"e13"
    ~what:"Probability companions: SCT's price; Neiger's N > mt, empirically"
    ~axes:
      [ ("profile", List.map (fun (p : Profiles.t) -> p.Profiles.name)
           Profiles.all);
        ("N", List.map string_of_int (e13b_points ~t ~m)) ]
    ~cells:(fun _ ->
      List.map (fun pr -> Price pr) Profiles.all
      @ List.map (fun n -> Neiger n) (e13b_points ~t ~m))
    ~run_cell:(fun _ cell ->
      match cell with
      | Price pr -> e13a_row ~ng:Profiles.default_ng ~t_max:3 pr
      | Neiger n -> e13b_row ~t ~m n)
    ~collect:(fun _ pairs ->
      let rows p =
        List.filter_map (fun (c, r) -> if p c then Some r else None) pairs
      in
      let ta = e13a_table ~t_max:3 () in
      List.iter (Table.add_row ta)
        (rows (function Price _ -> true | _ -> false));
      let tb = e13b_table ~t ~m () in
      List.iter (Table.add_row tb)
        (rows (function Neiger _ -> true | _ -> false));
      Campaign.tables [ ta; tb ])
    ()
