(** Experiments E4-E5: the paper's worked examples. *)

val e4 : unit -> Vv_prelude.Table.t
(** Section I / IV example: Algorithm 1 fooled below the bound, SCT stalls
    safely; both exact above it. *)

val e5_firing : unit -> Vv_prelude.Table.t
(** Section VII-A: the incremental threshold fires after 7 of 10 votes. *)

val e5_delay_sweep : ?seeds:int -> unit -> Vv_prelude.Table.t
(** Mean rounds-to-decision of Algorithms 1 vs 3 under uniform delays
    1..delta. *)

val e5_adversarial_schedule : ?delta:int -> unit -> Vv_prelude.Table.t
(** Worst-case scheduling: leader votes delayed to the bound. Algorithm 3
    degrades to Algorithm 1's synchronous wait, never beyond. *)

val e4_campaign : Vv_exec.Campaign.t
(** One cell per (protocol, electorate); deterministic. *)

val e5_campaign : Vv_exec.Campaign.t
(** All three E5 tables as one grid: firing-point, delay-sweep and
    adversarial-schedule cells. Smoke tier shrinks the sweep's seed
    count. *)
