(* Experiments E8-E9: comparison against the approximate-validity baselines
   and protocol cost accounting.

   E8a: election workload — how often does each protocol deliver the exact
        plurality of honest inputs under collusion? (the paper's Section I
        claim: approximate validities cannot, voting validity can whenever
        the dispersion bound holds).
   E8b: sensor workload with Byzantine outliers — the converse: median /
        approximate agreement shine on continuous values where plurality is
        meaningless (all honest values distinct, Algorithm 1 stalls).
   E9:  rounds and messages per protocol and substrate. *)

module Table = Vv_prelude.Table
module Runner = Vv_core.Runner
module Strategy = Vv_core.Strategy
module Oid = Vv_ballot.Option_id
module Rng = Vv_prelude.Rng
module Validity = Vv_ballot.Validity
module Property = Vv_ballot.Property
module Campaign = Vv_exec.Campaign

type rates = {
  mutable exact : int;
  mutable agree : int;
  mutable term : int;
  trials : int;
}

let new_rates trials = { exact = 0; agree = 0; term = 0; trials }

let rate n r = float_of_int n /. float_of_int r.trials

(* Judge a run through the shared predicates: [Validity] for liveness and
   agreement, the first-class voting property for exactness (with
   termination, a non-empty decided list all equal to the plurality is
   exactly the old first-decided-equals-target check). *)
let record r ~honest ~outputs =
  let term = Validity.termination ~outputs in
  let agree = Validity.agreement ~outputs in
  let exact =
    term && agree
    && Property.admissible Property.voting ~tie:Vv_ballot.Tie_break.default
         ~t_tol:0 ~honest_inputs:honest ~outputs
  in
  if term then r.term <- r.term + 1;
  if agree then r.agree <- r.agree + 1;
  if exact then r.exact <- r.exact + 1

let e8_election ?(trials = 120) ?(ng = 10) ?(t = 2) ?(seed = 0xe8) () =
  let rng = Rng.create seed in
  let dist = Vv_dist.Profiles.distribution ~ng Vv_dist.Profiles.d2 in
  let n = ng + t in
  let byz = List.init t (fun i -> ng + i) in
  let algo1 = new_rates trials
  and sct = new_rates trials
  and strong = new_rates trials
  and median = new_rates trials
  and interval = new_rates trials in
  for _ = 1 to trials do
    let honest = Vv_dist.Montecarlo.sample_inputs dist rng in
    let seed = Rng.bits rng in
    (* Voting-validity protocols. *)
    let r1 =
      Runner.simple ~protocol:Runner.Algo1 ~strategy:Strategy.Collude_second
        ~seed ~t ~f:t honest
    in
    record algo1 ~honest ~outputs:r1.Runner.outputs;
    let r2 =
      Runner.simple ~protocol:Runner.Algo2_sct
        ~strategy:Strategy.Collude_second ~seed ~t ~f:t honest
    in
    record sct ~honest ~outputs:r2.Runner.outputs;
    (* Baselines: same workload as raw integers. *)
    let cfg = Vv_sim.Config.with_byzantine ~seed ~n ~t_max:t byz () in
    let input_arr = Array.of_list honest in
    let as_int id = Oid.to_int input_arr.(min id (ng - 1)) in
    let to_opts (s : Baseline_runner.summary) =
      List.map
        (Option.map (fun v -> Oid.of_int (max 0 v)))
        s.Baseline_runner.outputs
    in
    let s = Baseline_runner.run_strong cfg ~inputs:as_int ~collude:true in
    record strong ~honest ~outputs:(to_opts s);
    let m = Baseline_runner.run_median cfg ~inputs:as_int ~collude:true in
    record median ~honest ~outputs:(to_opts m);
    let iv =
      Baseline_runner.run_interval cfg
        ~inputs:(fun id ->
          { Vv_baselines.Interval_validity.value = as_int id; k = (ng + 1) / 2 })
        ~collude:true
    in
    record interval ~honest ~outputs:(to_opts iv)
  done;
  let t_out =
    Table.create
      ~title:
        (Fmt.str
           "E8a: election workload (D2, N_G=%d, t=f=%d, colluding adversary) \
            - exact-plurality rate"
           ng t)
      ~headers:[ "protocol"; "exact"; "agreement"; "termination" ]
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
      ()
  in
  List.iter
    (fun (name, r) ->
      Table.add_row t_out
        [
          name;
          Table.fcell ~decimals:3 (rate r.exact r);
          Table.fcell ~decimals:3 (rate r.agree r);
          Table.fcell ~decimals:3 (rate r.term r);
        ])
    [
      ("algo1 (voting validity)", algo1);
      ("algo2 (SCT)", sct);
      ("strong-consensus", strong);
      ("median-validity", median);
      ("interval-validity", interval);
    ];
  t_out

let e8_sensor ?(trials = 60) ?(ng = 9) ?(t = 2) ?(seed = 0x5e45) () =
  let rng = Rng.create seed in
  let n = ng + t in
  let byz = List.init t (fun i -> ng + i) in
  let abs_err = ref 0.0 and med_stall = ref 0 in
  let approx_spread = ref 0.0 in
  let algo1_stalls = ref 0 and algo1_err = ref 0.0 and algo1_decides = ref 0 in
  let sct_stalls = ref 0 in
  for _ = 1 to trials do
    (* Distinct readings around 100: a plurality does not exist. *)
    let base = Array.init ng (fun i -> 90 + i + Rng.int rng 3) in
    let values = Array.to_list base in
    let sorted = List.sort compare values in
    let true_median = List.nth sorted (ng / 2) in
    let seed = Rng.bits rng in
    let cfg = Vv_sim.Config.with_byzantine ~seed ~n ~t_max:t byz () in
    let m =
      Baseline_runner.run_median cfg
        ~inputs:(fun id -> base.(min id (ng - 1)))
        ~collude:true
    in
    (match List.filter_map Fun.id m.Baseline_runner.outputs with
    | [] -> incr med_stall
    | out :: _ ->
        abs_err := !abs_err +. abs_float (float_of_int (out - true_median)));
    let outs, _, _ =
      Baseline_runner.run_approx cfg
        ~inputs:(fun id ->
          { Vv_baselines.Approx.value = float_of_int base.(min id (ng - 1));
            rounds = 8 })
        ~outlier:(Some 1e6)
    in
    approx_spread := !approx_spread +. Vv_baselines.Approx.spread outs;
    let r1 =
      Runner.simple ~protocol:Runner.Algo1 ~strategy:Strategy.Collude_second
        ~seed ~t ~f:t
        (List.map Oid.of_int values)
    in
    if not r1.Runner.termination then incr algo1_stalls
    else begin
      (match List.filter_map Fun.id r1.Runner.outputs with
      | out :: _ ->
          incr algo1_decides;
          algo1_err :=
            !algo1_err
            +. abs_float (float_of_int (Oid.to_int out - true_median))
      | [] -> ())
    end;
    let r2 =
      Runner.simple ~protocol:Runner.Algo2_sct ~strategy:Strategy.Collude_second
        ~seed ~t ~f:t
        (List.map Oid.of_int values)
    in
    if not r2.Runner.termination then incr sct_stalls
  done;
  let tt =
    Table.create
      ~title:
        (Fmt.str
           "E8b: sensor workload (distinct readings + Byzantine outliers, \
            N_G=%d, t=f=%d)"
           ng t)
      ~headers:[ "metric"; "value" ]
      ~aligns:[ Table.Left; Table.Right ]
      ()
  in
  Table.add_row tt
    [
      "median baseline: mean |output - true median|";
      Table.fcell ~decimals:2 (!abs_err /. float_of_int (max 1 (trials - !med_stall)));
    ];
  Table.add_row tt
    [
      "approximate agreement: mean honest spread (outliers trimmed)";
      Table.fcell ~decimals:4 (!approx_spread /. float_of_int trials);
    ];
  Table.add_row tt
    [
      "algo1 stall rate (no plurality exists on distinct readings)";
      Table.fcell ~decimals:2
        (float_of_int !algo1_stalls /. float_of_int trials);
    ];
  Table.add_row tt
    [
      "algo1 mean |output - true median| when the adversary forces a decision";
      Table.fcell ~decimals:2 (!algo1_err /. float_of_int (max 1 !algo1_decides));
    ];
  Table.add_row tt
    [
      "algo2 (SCT) stall rate (refuses to guess)";
      Table.fcell ~decimals:2 (float_of_int !sct_stalls /. float_of_int trials);
    ];
  tt

(* The election and sensor workloads each thread their own rng through
   every trial, so the campaign exposes them as two coarse cells rather
   than one cell per trial.  The default campaign seed reproduces the two
   legacy per-table seeds exactly; an explicit [--seed] derives a fresh
   per-cell seed for the sensor workload instead. *)
type e8_cell = [ `Election | `Sensor ]

let e8_campaign =
  Campaign.v ~id:"e8"
    ~what:"Baselines: exactness on elections; median/approx on sensors"
    ~seed:0xe8
    ~axes:[ ("workload", [ "election"; "sensor" ]) ]
    ~cells:(fun _ -> ([ `Election; `Sensor ] : e8_cell list))
    ~run_cell:(fun ctx cell ->
      let smoke = ctx.Campaign.profile = Campaign.Smoke in
      match cell with
      | `Election ->
          let trials = if smoke then 30 else 120 in
          e8_election ~trials ~seed:ctx.Campaign.base_seed ()
      | `Sensor ->
          let trials = if smoke then 15 else 60 in
          let seed =
            if ctx.Campaign.base_seed = 0xe8 then 0x5e45
            else ctx.Campaign.cell_seed
          in
          e8_sensor ~trials ~seed ())
    ~collect:(fun _ pairs -> Campaign.tables (List.map snd pairs))
    ()

let e9_table () =
  Table.create
    ~title:"E9: protocol cost (decisive inputs A*(N_G-1),B; t=f=1)"
    ~headers:
      [ "protocol"; "substrate"; "N"; "rounds"; "honest msgs"; "byz msgs" ]
    ~aligns:
      [ Table.Left; Table.Left; Table.Right; Table.Right; Table.Right;
        Table.Right ]
    ()

let e9_variants =
  [
    (Runner.Algo1, Vv_bb.Bb.Dolev_strong, "dolev-strong");
    (Runner.Algo1, Vv_bb.Bb.Eig, "eig");
    (Runner.Algo1, Vv_bb.Bb.Phase_king, "phase-king");
    (Runner.Algo2_sct, Vv_bb.Bb.Dolev_strong, "dolev-strong");
    (Runner.Algo3_incremental, Vv_bb.Bb.Dolev_strong, "dolev-strong");
    (Runner.Algo4_local, Vv_bb.Bb.Dolev_strong, "plain/local");
    (Runner.Cft, Vv_bb.Bb.Dolev_strong, "plain");
  ]

let e9_cells =
  List.concat_map
    (fun ng ->
      List.map (fun (protocol, bb, label) -> (protocol, bb, label, ng))
        e9_variants)
    [ 6; 9; 12 ]

let e9_row ~t (protocol, bb, label, ng) =
  let honest = Witness.inputs ~ag:(ng - 1) ~bg:1 ~cg:0 in
  let r =
    Runner.simple ~protocol ~bb ~strategy:Strategy.Collude_second ~t ~f:t honest
  in
  [
    Runner.protocol_label protocol;
    label;
    Table.icell (ng + t);
    Table.icell r.Runner.rounds;
    Table.icell r.Runner.honest_msgs;
    Table.icell r.Runner.byz_msgs;
  ]

let e9 ?(t = 1) () =
  let tt = e9_table () in
  List.iter (fun c -> Table.add_row tt (e9_row ~t c)) e9_cells;
  tt

let e9_campaign =
  Campaign.v ~id:"e9"
    ~what:"Protocol cost: rounds and messages per protocol/substrate"
    ~axes:
      [ ("N_G", [ "6"; "9"; "12" ]);
        ("substrate", [ "dolev-strong"; "eig"; "phase-king"; "plain" ]) ]
    ~cells:(fun _ -> e9_cells)
    ~run_cell:(fun _ c -> e9_row ~t:1 c)
    ~collect:(fun _ pairs ->
      let tt = e9_table () in
      List.iter (fun (_, row) -> Table.add_row tt row) pairs;
      Campaign.tables [ tt ])
    ()
