(** Experiment E19: boot a primary and a follower daemon per cell, drive
    a burst, crash and restart the primary from its snapshot, drive a
    second burst (optionally racy), and verify the follower's replicated
    log converges byte-identically to the primary's with exactly two
    catchups. Racy cells pin subject-set equality instead of positions. *)

val e19_campaign : Vv_exec.Campaign.t
