(* Experiment E21: the validity hierarchy made executable.

   Civit et al., "On the Validity of Consensus" (arXiv 2301.04920),
   treats the validity property as the parameter that decides
   solvability.  This campaign cross-validates that view against our
   executable bounds: every (implementation, fault-config) cell runs
   once per trial and the single outcome is judged against *every*
   first-class property (Vv_ballot.Property.all).  A cell/property pair
   is predicted solvable when

     f <= t  /\  the implementation's own bound holds  /\
     Property.implies (promise impl) property

   — the voting protocols promise voting validity (so everything in its
   implication cone), the exchange-based baselines promise the property
   they are named after (strong / median / interval).  The campaign
   fails, and `vvc validity` exits nonzero, iff any predicted-solvable
   pair shows a violation or a stall; unpredicted pairs are observed and
   tabulated but assert nothing, which is exactly the 2301.04920
   reading: outside the solvable region the hierarchy is silent.

   Three fault configurations probe the interesting regimes:
   - wide:      strict plurality with a gap above every bound — the
                paper's exactness regime, everything in each promise
                cone must hold;
   - tie:       honest plurality tied (A_G = B_G) — the voting bounds
                cannot hold, so only the baselines' promises remain
                predicted (and strict voting validity is vacuous);
   - overfault: f > t — nothing is predicted for anyone. *)

module Table = Vv_prelude.Table
module Runner = Vv_core.Runner
module Strategy = Vv_core.Strategy
module Oid = Vv_ballot.Option_id
module Property = Vv_ballot.Property
module Validity = Vv_ballot.Validity
module Executor = Vv_exec.Executor
module Campaign = Vv_exec.Campaign
module Config = Vv_sim.Config
module Oracle = Vv_check.Oracle

type impl =
  | Voting of Runner.protocol
  | Strong_ba
  | Median_ba
  | Interval_ba

let impls =
  [
    Voting Runner.Algo1; Voting Runner.Algo2_sct; Voting Runner.Cft;
    Strong_ba; Median_ba; Interval_ba;
  ]

let impl_label = function
  | Voting p -> Runner.protocol_label p
  | Strong_ba -> "strong-ba"
  | Median_ba -> "median-ba"
  | Interval_ba -> "interval-ba"

(* What each implementation promises — the shared first-class instances,
   not private predicates. *)
let promise = function
  | Voting _ -> Property.voting
  | Strong_ba -> Vv_baselines.Strong_consensus.property
  | Median_ba -> Vv_baselines.Median_validity.property
  | Interval_ba -> Vv_baselines.Interval_validity.property

type config = {
  label : string;
  ag : int;  (** honest plurality votes *)
  bg : int;  (** honest runner-up votes *)
  cg : int;  (** honest other votes (distinct options) *)
  t : int;  (** declared tolerance *)
  f : int;  (** actual fault count *)
}

let configs =
  [
    { label = "wide"; ag = 9; bg = 2; cg = 1; t = 2; f = 2 };
    { label = "tie"; ag = 4; bg = 4; cg = 1; t = 2; f = 2 };
    { label = "overfault"; ag = 9; bg = 2; cg = 1; t = 2; f = 3 };
  ]

let honest_inputs c = Witness.inputs ~ag:c.ag ~bg:c.bg ~cg:c.cg

let cell_n c = c.ag + c.bg + c.cg + c.f

(* The exchange-based baselines agree via Phase-King BA, whose substrate
   tolerance is n > 4t. *)
let impl_bound_holds impl c =
  match impl with
  | Voting proto ->
      Vv_core.Bounds.satisfied_for (Oracle.kind_of proto)
        ~tie:Vv_ballot.Tie_break.default ~n:(cell_n c) ~t:c.t
        (honest_inputs c)
  | Strong_ba | Median_ba | Interval_ba -> cell_n c > 4 * c.t

let predicted impl c property =
  c.f <= c.t && impl_bound_holds impl c
  && Property.implies (promise impl) property

(* --- one trial ------------------------------------------------------- *)

let max_rounds = 60

(* The colluding adversary the voting protocols are proved against; the
   crash-tolerant variant gets silent faults (collusion is outside its
   model), and the baselines face the flood-the-runner-up collusion of
   E8. *)
let run_impl impl c ~seed =
  let honest = honest_inputs c in
  match impl with
  | Voting proto ->
      let strategy =
        match proto with
        | Runner.Cft -> Strategy.Passive
        | _ -> Strategy.Collude_second
      in
      let r =
        Runner.simple ~protocol:proto ~strategy ~seed ~max_rounds ~t:c.t
          ~f:c.f honest
      in
      (honest, r.Runner.outputs)
  | Strong_ba | Median_ba | Interval_ba ->
      let n = cell_n c in
      let ng = n - c.f in
      let byz = List.init c.f (fun i -> ng + i) in
      let cfg = Config.with_byzantine ~seed ~n ~t_max:c.t byz () in
      let input_arr = Array.of_list honest in
      let as_int id = Oid.to_int input_arr.(min id (ng - 1)) in
      let to_opts (s : Baseline_runner.summary) =
        List.map
          (Option.map (fun v -> Oid.of_int (max 0 v)))
          s.Baseline_runner.outputs
      in
      let s =
        match impl with
        | Strong_ba ->
            Baseline_runner.run_strong cfg ~inputs:as_int ~collude:true
        | Median_ba ->
            Baseline_runner.run_median cfg ~inputs:as_int ~collude:true
        | Interval_ba | Voting _ ->
            Baseline_runner.run_interval cfg
              ~inputs:(fun id ->
                {
                  Vv_baselines.Interval_validity.value = as_int id;
                  k = (ng + 1) / 2;
                })
              ~collude:true
      in
      (honest, to_opts s)

type cls = Exact | Stall | Violation

(* Safety (agreement + the property over decided outputs) is judged even
   on partial runs; a safe non-terminating run is a stall. *)
let classify_against property ~t_tol ~honest ~outputs =
  let admissible =
    Property.admissible property ~tie:Vv_ballot.Tie_break.default ~t_tol
      ~honest_inputs:honest ~outputs
  in
  if (not (Validity.agreement ~outputs)) || not admissible then Violation
  else if not (Validity.termination ~outputs) then Stall
  else Exact

(* --- per-cell statistics --------------------------------------------- *)

type counts = { exact : int; stalls : int; violations : int }

type stats = {
  impl : impl;
  config : config;
  per_property : (Property.t * counts) list;  (** [Property.all] order *)
}

let cell_stats ~trials ~seed ~index (impl, config) =
  let acc =
    Array.make (List.length Property.all)
      { exact = 0; stalls = 0; violations = 0 }
  in
  for k = 0 to trials - 1 do
    let run_seed = Executor.derive_seed ~seed ((index * trials) + k) in
    let honest, outputs = run_impl impl config ~seed:run_seed in
    List.iteri
      (fun pi property ->
        let c = acc.(pi) in
        acc.(pi) <-
          (match
             classify_against property ~t_tol:config.t ~honest ~outputs
           with
          | Exact -> { c with exact = c.exact + 1 }
          | Stall -> { c with stalls = c.stalls + 1 }
          | Violation -> { c with violations = c.violations + 1 }))
      Property.all
  done;
  {
    impl;
    config;
    per_property = List.mapi (fun pi p -> (p, acc.(pi))) Property.all;
  }

let pair_ok impl config (property, c) =
  (not (predicted impl config property))
  || (c.violations = 0 && c.stalls = 0)

let stats_ok s = List.for_all (pair_ok s.impl s.config) s.per_property

type result = {
  profile : Campaign.profile;
  trials : int;
  cells : stats list;
  ok : bool;
}

let default_trials = function Campaign.Smoke -> 2 | Campaign.Full -> 4

(* --- tables ---------------------------------------------------------- *)

let electorate_label c = Fmt.str "%d/%d/%d" c.ag c.bg c.cg

let grid_table r =
  let tab =
    Table.create
      ~title:
        (Fmt.str
           "E21: validity hierarchy grid (profile=%s trials=%d; predicted = \
            f<=t, bound holds, promise implies property)"
           (Campaign.profile_label r.profile) r.trials)
      ~headers:
        [ "impl"; "promise"; "config"; "A/B/C"; "n"; "t"; "f"; "validity";
          "predicted"; "exact"; "stall"; "violation"; "ok" ]
      ~aligns:
        [ Table.Left; Table.Left; Table.Left; Table.Left; Table.Right;
          Table.Right; Table.Right; Table.Left; Table.Left; Table.Right;
          Table.Right; Table.Right; Table.Left ]
      ()
  in
  List.iter
    (fun s ->
      List.iter
        (fun ((property, c) as pair) ->
          Table.add_row tab
            [
              impl_label s.impl;
              Property.id (promise s.impl);
              s.config.label;
              electorate_label s.config;
              Table.icell (cell_n s.config);
              Table.icell s.config.t;
              Table.icell s.config.f;
              Property.id property;
              (if predicted s.impl s.config property then "solvable"
               else "outside");
              Table.icell c.exact;
              Table.icell c.stalls;
              Table.icell c.violations;
              (if pair_ok s.impl s.config pair then "yes" else "NO");
            ])
        s.per_property)
    r.cells;
  tab

(* The hierarchy at a glance: one row per (impl, config), one column per
   property; [*] marks predicted-solvable pairs, the letter is the worst
   observed class (E exact / s stall / V violation). *)
let matrix_table r =
  let tab =
    Table.create
      ~title:
        "E21: solvability matrix (* = predicted solvable; E exact, s \
         stall, V VIOLATION)"
      ~headers:("impl" :: "config" :: Property.names)
      ~aligns:(Table.Left :: Table.Left :: List.map (fun _ -> Table.Left) Property.names)
      ()
  in
  List.iter
    (fun s ->
      Table.add_row tab
        (impl_label s.impl :: s.config.label
        :: List.map
             (fun (property, c) ->
               let mark =
                 if predicted s.impl s.config property then "*" else ""
               in
               let letter =
                 if c.violations > 0 then "V"
                 else if c.stalls > 0 then "s"
                 else "E"
               in
               mark ^ letter)
             s.per_property))
    r.cells;
  tab

let tables r = [ grid_table r; matrix_table r ]

let verdict_line r =
  let bad =
    List.concat_map
      (fun s ->
        List.filter_map
          (fun ((property, _) as pair) ->
            if pair_ok s.impl s.config pair then None
            else
              Some
                (Fmt.str "%s/%s/%s" (impl_label s.impl) s.config.label
                   (Property.id property)))
          s.per_property)
      r.cells
  in
  if bad = [] then
    Fmt.str
      "OK: every predicted-solvable (impl, config, validity) cell exact — \
       hierarchy matched on %d cells"
      (List.length r.cells)
  else
    Fmt.str "FAIL: predicted-solvable cells not exact: %s"
      (String.concat ", " bad)

(* --- campaign -------------------------------------------------------- *)

let grid _profile =
  List.concat_map (fun impl -> List.map (fun c -> (impl, c)) configs) impls

let campaign ?trials () =
  let trials_for profile =
    match trials with Some k -> k | None -> default_trials profile
  in
  Campaign.v ~id:"e21"
    ~what:
      "Validity hierarchy: every implementation x fault-config judged \
       against every first-class property (arXiv 2301.04920)"
    ~seed:0xe21
    ~axes:
      [ ("impl", List.map impl_label impls);
        ("config", List.map (fun c -> c.label) configs);
        ("validity", Property.names) ]
    ~cells:grid
    ~run_cell:(fun ctx cell ->
      let trials = trials_for ctx.Campaign.profile in
      if trials < 1 then
        invalid_arg "Exp_validity.campaign: trials must be >= 1";
      cell_stats ~trials ~seed:ctx.Campaign.base_seed
        ~index:ctx.Campaign.index cell)
    ~collect:(fun profile pairs ->
      let cells = List.map snd pairs in
      let r =
        {
          profile;
          trials = trials_for profile;
          cells;
          ok = List.for_all stats_ok cells;
        }
      in
      { Campaign.tables = tables r; ok = r.ok;
        verdict = Some (verdict_line r) })
    ()
