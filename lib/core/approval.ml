(* Approval voting with voting validity (extension).

   Parhami's taxonomy [16] — which the paper cites for the plurality
   scheme — also covers approval voting: each voter endorses a *set* of
   acceptable options and the option with the most endorsements wins.  The
   paper's machinery transfers: a Byzantine node can add at most t bogus
   endorsements to any single option and remove none, so the Property-2
   argument gives exactness whenever the honest endorsement gap between
   the winner and the runner-up exceeds t (delta_P = 0, quorum N - t), and
   a safety-guaranteed variant needs a gap above 2t.

   Structurally a sibling of Voting.Make: Phase 1 broadcasts the subject
   through a BB substrate; Phase 2 broadcasts approval sets; Phase 3
   proposes the local endorsement leader after the 2*delta wait; Phase 4
   decides on a quorum of matching proposes. *)

open Vv_sim
module Oid = Vv_ballot.Option_id
module Tally = Vv_ballot.Tally

type subject = int

type exec = {
  outputs : Oid.t option list;
  rounds : int;
  stalled : bool;
}

(* The honest-endorsement analogue of Definition III.3. *)
let honest_leader ~tie approvals =
  let tally =
    List.fold_left
      (fun acc set -> List.fold_left Tally.add acc (List.sort_uniq Oid.compare set))
      Tally.empty approvals
  in
  Tally.top ~tie tally

let approval_validity ~tie ~honest_approvals ~outputs =
  match honest_leader ~tie honest_approvals with
  | Some { Tally.a; a_count; b_count; _ } when a_count > b_count ->
      List.for_all
        (function None -> true | Some v -> Oid.equal v a)
        outputs
  | Some _ | None -> true

module Make (Sub : Vv_bb.Bb_intf.S) = struct
  type msg =
    | Prepare of Sub.msg
    | Approve of { subject : subject; choices : Oid.t list }
    | Propose of { subject : subject; choice : Oid.t }

  type input = {
    speaker : Types.node_id;
    subject : subject;
    approvals : Oid.t list;  (** non-empty set of endorsed options *)
    quorum_gap : int;  (** delta_P: 0 for BFT, t for safety-guaranteed *)
    tie : Vv_ballot.Tie_break.t;
  }

  module P = struct
    type nonrec input = input
    type nonrec msg = msg
    type output = Oid.t

    type state = {
      cfg : input;
      delta : int;
      bb_rounds : int;
      mutable bb : Sub.state;
      bb_buffer : Sub.msg Vv_bb.Bb_intf.inbox;
      sub_outbox : Sub.msg Outbox.t;  (* reusable sub-machine scratch *)
      mutable subject : subject option;
      ballots : (Types.node_id, subject * Oid.t list) Hashtbl.t;
      proposes : (Types.node_id, subject * Oid.t) Hashtbl.t;
      (* Cached aggregates over the tables, maintained incrementally at
         ingest once the subject is known (see Voting for the rationale:
         stalled rounds must not re-fold the tables). *)
      mutable endorse_tally : Tally.t;
      mutable senders : int;  (* ballots matching the subject *)
      mutable prop_tally : Tally.t;
      mutable prop_dirty : bool;
      mutable deadline : int option;
      mutable proposed : bool;
      mutable decided : Oid.t option;
    }

    let name = "approval/" ^ Sub.name

    let equal_msg a b =
      match (a, b) with
      | Prepare a, Prepare b -> Sub.equal_msg a b
      | Approve a, Approve b ->
          a.subject = b.subject && List.equal Oid.equal a.choices b.choices
      | Propose a, Propose b ->
          a.subject = b.subject && Oid.equal a.choice b.choice
      | (Prepare _ | Approve _ | Propose _), _ -> false

    let init (ctx : Protocol.ctx) cfg ~outbox =
      if cfg.approvals = [] then
        invalid_arg "Approval: empty approval set";
      let delta =
        match ctx.delta with
        | Some d -> d
        | None -> invalid_arg (name ^ ": requires a known delay bound")
      in
      let value = if ctx.me = cfg.speaker then Some cfg.subject else None in
      let sub_outbox = Outbox.create () in
      let bb =
        Sub.start ~n:ctx.n ~t:ctx.t ~me:ctx.me ~sender:cfg.speaker ~value
          ~outbox:sub_outbox
      in
      Outbox.transfer sub_outbox ~f:(fun m -> Prepare m) ~into:outbox;
      {
        cfg;
        delta;
        bb_rounds = Sub.rounds ~n:ctx.n ~t:ctx.t;
        bb;
        bb_buffer = Vv_bb.Bb_intf.inbox_create ();
        sub_outbox;
        subject = None;
        ballots = Hashtbl.create 16;
        proposes = Hashtbl.create 16;
        endorse_tally = Tally.empty;
        senders = 0;
        prop_tally = Tally.empty;
        prop_dirty = false;
        deadline = None;
        proposed = false;
        decided = None;
      }

    let add_ballot acc choices =
      List.fold_left Tally.add acc (List.sort_uniq Oid.compare choices)

    (* From-scratch folds, used once when the subject becomes known. *)
    let endorsements st s =
      Hashtbl.fold
        (fun _src (subj, choices) acc ->
          if subj = s then add_ballot acc choices else acc)
        st.ballots Tally.empty

    let senders_for st s =
      Hashtbl.fold
        (fun _src (subj, _) acc -> if subj = s then acc + 1 else acc)
        st.ballots 0

    let propose_tally st s =
      Hashtbl.fold
        (fun _src (subj, choice) acc ->
          if subj = s then Tally.add acc choice else acc)
        st.proposes Tally.empty

    let step (ctx : Protocol.ctx) st ~round ~inbox ~outbox =
      Inbox.iter
        (fun src m ->
          match m with
          | Prepare b ->
              if st.subject = None then Vv_bb.Bb_intf.inbox_push st.bb_buffer src b
          | Approve { subject; choices } ->
              if not (Hashtbl.mem st.ballots src) then begin
                Hashtbl.add st.ballots src (subject, choices);
                match st.subject with
                | Some s when subject = s ->
                    st.endorse_tally <- add_ballot st.endorse_tally choices;
                    st.senders <- st.senders + 1
                | Some _ | None -> ()
              end
          | Propose { subject; choice } ->
              if not (Hashtbl.mem st.proposes src) then begin
                Hashtbl.add st.proposes src (subject, choice);
                match st.subject with
                | Some s when subject = s ->
                    st.prop_tally <- Tally.add st.prop_tally choice;
                    st.prop_dirty <- true
                | Some _ | None -> ()
              end)
        inbox;
      if st.subject = None && round mod st.delta = 0 then begin
        let lround = round / st.delta in
        if lround >= 1 && lround <= st.bb_rounds then begin
          let sub =
            Sub.step ~n:ctx.n ~t:ctx.t ~me:ctx.me st.bb ~lround
              ~inbox:st.bb_buffer ~outbox:st.sub_outbox
          in
          st.bb <- sub;
          Vv_bb.Bb_intf.inbox_clear st.bb_buffer;
          Outbox.transfer st.sub_outbox ~f:(fun m -> Prepare m) ~into:outbox;
          if lround = st.bb_rounds then begin
            let s = Sub.result sub in
            st.subject <- Some s;
            if s >= 0 then begin
              st.endorse_tally <- endorsements st s;
              st.senders <- senders_for st s;
              st.prop_tally <- propose_tally st s;
              st.prop_dirty <- true;
              Outbox.broadcast outbox
                (Approve { subject = s; choices = st.cfg.approvals })
            end
          end
        end
      end;
      (match st.subject with
      | Some s when s >= 0 && (not st.proposed) && st.decided = None ->
          if st.deadline = None && st.senders >= ctx.t + 1 then
            st.deadline <- Some (round + (2 * st.delta));
          (match st.deadline with
          | Some d when round >= d -> begin
              st.proposed <- true;
              match Tally.top ~tie:st.cfg.tie st.endorse_tally with
              | Some { Tally.a; a_count; b_count; _ }
                when a_count - b_count > st.cfg.quorum_gap ->
                  Outbox.broadcast outbox (Propose { subject = s; choice = a })
              | Some _ | None -> ()
            end
          | Some _ | None -> ())
      | Some _ | None -> ());
      (match st.subject with
      | Some s when s >= 0 && st.decided = None && st.prop_dirty -> begin
          ignore s;
          st.prop_dirty <- false;
          match Tally.ranked ~tie:st.cfg.tie st.prop_tally with
          | (choice, c) :: _ when c >= ctx.n - ctx.t -> st.decided <- Some choice
          | _ -> ()
        end
      | Some _ | None -> ());
      st

    let output st = st.decided

    (* Conservative: approval runs are not fast-forwarded. *)
    let inert _ = false

    let phase st =
      if st.decided <> None then "decided"
      else if st.proposed then "proposed"
      else
        match st.subject with
        | None -> "prepare"
        | Some s when s < 0 -> "no-subject"
        | Some _ -> "approve"
  end

  module E = Engine.Make (P)

  (* Colluding adversary: endorse the honest runner-up (and only it). *)
  let collude_second ?(tie = Vv_ballot.Tie_break.default) () :
      msg Adversary.t =
    let acted = ref false in
    Adversary.named "approval-collude-second" (fun view ->
        if !acted then []
        else
          let seen = Hashtbl.create 16 in
          for i = 0 to view.Adversary.sent_len - 1 do
            match view.Adversary.sent_msg i with
            | Approve { subject; choices } ->
                let src = view.Adversary.sent_src i in
                if not (Hashtbl.mem seen src) then
                  Hashtbl.add seen src (subject, choices)
            | Prepare _ | Propose _ -> ()
          done;
          let ballots =
            Hashtbl.fold (fun _ b acc -> b :: acc) seen []
            |> List.sort (fun (s1, c1) (s2, c2) ->
                   match Int.compare s1 s2 with
                   | 0 -> List.compare Oid.compare c1 c2
                   | c -> c)
          in
          match ballots with
          | [] -> []
          | (s, _) :: _ -> (
              let approvals = List.map snd ballots in
              match honest_leader ~tie approvals with
              | Some { Tally.b = Some b; _ } ->
                  acted := true;
                  List.concat_map
                    (fun src ->
                      List.init view.Adversary.n (fun dst ->
                          {
                            Adversary.src;
                            dst;
                            msg = Approve { subject = s; choices = [ b ] };
                          }))
                    view.Adversary.byzantine
              | Some _ | None -> []))

  let execute cfg ~speaker ~subject ~approvals ~quorum_gap
      ?(tie = Vv_ballot.Tie_break.default) ~collude () =
    let inputs id =
      { speaker; subject; approvals = approvals id; quorum_gap; tie }
    in
    let adversary =
      if collude then collude_second ~tie () else Adversary.passive
    in
    let res = E.run_exn cfg ~inputs ~adversary () in
    {
      outputs = E.honest_outputs res;
      rounds = res.E.rounds_used;
      stalled = res.E.stalled;
    }
end
