(** Adversary strategies, as data.

    A plain enumeration so experiment specifications can name strategies
    independently of the {!Voting.Make} functor instance; each instance's
    [adversary_of] turns one into a concrete {!Vv_sim.Adversary.t} over its
    own message type. *)

(** One round of a {!Scripted} adversary.  Integers index into the live
    option set observed at trigger time (distinct honest choices, in
    option order), clamped to its length. *)
type script_action =
  | Skip  (** stay silent this round *)
  | Vote_all of int
      (** broadcast a vote for live option [i] from every Byzantine node *)
  | Vote_split of int * int
      (** equivocate: vote option [i] to even recipients, [j] to odd ones —
          point-to-point only, rejected by the engine under local broadcast *)
  | Propose_all of int  (** broadcast a forged propose for live option [i] *)
  | Vote_and_propose of int * int
      (** broadcast votes for [i] and proposes for [j] in the same round *)

type t =
  | Passive
      (** Byzantine nodes stay silent — exercises Lemma 6's claim that
          quorums are reachable from honest nodes alone. *)
  | Collude_second
      (** All Byzantine nodes vote for the honest runner-up: the worst-case
          strategy behind Lemma 2 / Theorem 3. *)
  | Collude_fixed of int  (** All Byzantine nodes vote a fixed option id. *)
  | Split_top2
      (** Equivocation: vote the leader to even-numbered recipients and the
          runner-up to odd ones. Rejected by the engine under the local
          broadcast model. *)
  | Propose_second
      (** [Collude_second] plus forged [propose] messages for the runner-up
          — attacks the decide quorum directly (Theorem 11's argument that
          [t < t+1] forged proposes cannot decide). *)
  | Random_votes of int  (** Seeded uniform votes over the observed domain. *)
  | Late_collude of int
      (** [Collude_second] delayed by the given number of rounds — the
          strong adversary's message-withholding power aimed at the wait
          windows. *)
  | Scripted of script_action list
      (** Replay the per-round actions, one per round, starting the round
          the first honest vote is observed — the enumerable adversary
          universe of the exhaustive checker. *)

val pp_script_action : script_action Fmt.t
val pp_script : script_action list Fmt.t
val pp : t Fmt.t
val of_name : string -> t option
val all_names : string list
