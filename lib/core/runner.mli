(** One-stop experiment runner: specify a system, execute a protocol
    against an adversary, and classify the outcome against every property
    of Section III-C. *)

module Oid = Vv_ballot.Option_id

type protocol =
  | Algo1  (** BFT voting, Inequality (3) *)
  | Algo2_sct  (** safety-guaranteed, Inequality (7) *)
  | Algo3_incremental  (** optimistic responsiveness, Inequality (14) *)
  | Algo4_local  (** local broadcast model, Inequality (15) *)
  | Cft  (** crash faults only; plain Phase 1 *)
  | Sct_incremental  (** Algorithm 2 with the Algorithm 3 trigger *)

val protocol_label : protocol -> string
val variant_of : protocol -> Variant.t

type spec = private {
  n : int;
  t : int;
  inputs : Oid.t list;  (** length [n]; entries at Byzantine ids ignored *)
  byzantine : Vv_sim.Types.node_id list;
  crash : (Vv_sim.Types.node_id * int * Vv_sim.Types.node_id list) list;
      (** (node, crash round, recipients of its final broadcast) *)
  protocol : protocol;
  bb : Vv_bb.Bb.choice;
  strategy : Strategy.t;
  tie : Vv_ballot.Tie_break.t;
  delay : Vv_sim.Delay.t;
  network : Vv_sim.Network.t;
      (** chaos substrate; [Network.none] = faithful links *)
  retransmit : Vv_sim.Retransmit.t option;
  seed : int;
  max_rounds : int;
  subject : int;
  speaker : Vv_sim.Types.node_id;
  judgment_override : Variant.judgment option;
}

val spec :
  ?byzantine:Vv_sim.Types.node_id list ->
  ?crash:(Vv_sim.Types.node_id * int * Vv_sim.Types.node_id list) list ->
  ?protocol:protocol ->
  ?bb:Vv_bb.Bb.choice ->
  ?strategy:Strategy.t ->
  ?tie:Vv_ballot.Tie_break.t ->
  ?delay:Vv_sim.Delay.t ->
  ?network:Vv_sim.Network.t ->
  ?retransmit:Vv_sim.Retransmit.t ->
  ?seed:int ->
  ?max_rounds:int ->
  ?subject:int ->
  ?speaker:Vv_sim.Types.node_id ->
  ?judgment_override:Variant.judgment ->
  n:int ->
  t:int ->
  Oid.t list ->
  spec
(** Raises [Invalid_argument] when [inputs] does not have length [n]. *)

val with_seed : int -> spec -> spec
(** Same specification with a different PRNG seed — how the batch executor
    derives per-instance seeds deterministically. *)

type outcome = {
  outputs : Oid.t option list;  (** honest nodes, node-id order *)
  honest_inputs : Oid.t list;
  termination : bool;
  agreement : bool;
  voting_validity : bool;  (** strict form, Definition III.3 *)
  voting_validity_tb : bool;  (** tie-break-aware form *)
  strong_validity : bool;
  safety_admissible : bool;  (** Definition V.1 *)
  stalled : bool;
  rounds : int;
  honest_msgs : int;
  byz_msgs : int;
  decision_rounds : int option list;
  trace : Vv_sim.Trace.snapshot;  (** per-round structured history *)
}

val run_checked :
  spec -> (outcome, [ `Invalid_adversary of string ]) result
(** Execute the specification. An adversary that violates the fault plan
    or the communication model is reported as an [Error] — batch callers
    aggregate it instead of dying. *)

val run : spec -> outcome
(** Like {!run_checked} but raises {!Vv_sim.Engine.Invalid_adversary}. *)

val simple_spec :
  ?protocol:protocol ->
  ?strategy:Strategy.t ->
  ?bb:Vv_bb.Bb.choice ->
  ?tie:Vv_ballot.Tie_break.t ->
  ?delay:Vv_sim.Delay.t ->
  ?network:Vv_sim.Network.t ->
  ?retransmit:Vv_sim.Retransmit.t ->
  ?seed:int ->
  ?max_rounds:int ->
  t:int ->
  f:int ->
  Oid.t list ->
  spec
(** The specification {!simple} runs, without running it — feed these to
    the batch executor. *)

val simple :
  ?protocol:protocol ->
  ?strategy:Strategy.t ->
  ?bb:Vv_bb.Bb.choice ->
  ?tie:Vv_ballot.Tie_break.t ->
  ?delay:Vv_sim.Delay.t ->
  ?network:Vv_sim.Network.t ->
  ?retransmit:Vv_sim.Retransmit.t ->
  ?seed:int ->
  ?max_rounds:int ->
  t:int ->
  f:int ->
  Oid.t list ->
  outcome
(** The paper's standard setup: the given honest inputs first, then [f]
    Byzantine nodes, honest node 0 as speaker, [Collude_second] adversary
    by default. *)
