(* One-stop experiment runner: build a system specification, execute the
   chosen protocol against the chosen adversary, and classify the outcome
   against every property of Section III-C. *)

open Vv_sim
module Oid = Vv_ballot.Option_id
module Validity = Vv_ballot.Validity

module V_ds = Voting.Make (Vv_bb.Dolev_strong)
module V_eig = Voting.Make (Vv_bb.Eig)
module V_pk = Voting.Make (Vv_bb.Phase_king)
module V_plain = Voting.Make (Vv_bb.Plain)

type protocol =
  | Algo1  (** BFT voting, Inequality (3) *)
  | Algo2_sct  (** safety-guaranteed, Inequality (7) *)
  | Algo3_incremental  (** optimistic responsiveness, Inequality (14) *)
  | Algo4_local  (** local broadcast model, Inequality (15) *)
  | Cft  (** crash faults only; plain Phase 1 *)
  | Sct_incremental  (** Algorithm 2 with the Algorithm 3 trigger *)

let protocol_label = function
  | Algo1 -> "algo1"
  | Algo2_sct -> "algo2-sct"
  | Algo3_incremental -> "algo3-incr"
  | Algo4_local -> "algo4-local"
  | Cft -> "cft"
  | Sct_incremental -> "sct-incr"

let variant_of = function
  | Algo1 -> Variant.algo1
  | Algo2_sct -> Variant.algo2_sct
  | Algo3_incremental -> Variant.algo3_incremental
  | Algo4_local -> Variant.algo4_local
  | Cft -> Variant.cft
  | Sct_incremental -> Variant.sct_incremental

type spec = {
  n : int;
  t : int;
  inputs : Oid.t list;  (** length n; entries at Byzantine ids are ignored *)
  byzantine : Types.node_id list;
  crash : (Types.node_id * int * Types.node_id list) list;
      (** (node, crash round, recipients of its final broadcast) *)
  protocol : protocol;
  bb : Vv_bb.Bb.choice;  (** Phase-1 substrate for Algorithms 1-3 *)
  strategy : Strategy.t;
  tie : Vv_ballot.Tie_break.t;
  delay : Delay.t;
  network : Network.t;  (** chaos substrate; [Network.none] = faithful links *)
  retransmit : Retransmit.t option;
  seed : int;
  max_rounds : int;
  subject : int;
  speaker : Types.node_id;
  judgment_override : Variant.judgment option;
      (** replace the variant's local judgment condition delta_P — used by
          the Theorem 10 experiments to run SCT with delta_P < t *)
}

let spec ?(byzantine = []) ?(crash = []) ?(protocol = Algo1)
    ?(bb = Vv_bb.Bb.default) ?(strategy = Strategy.Passive)
    ?(tie = Vv_ballot.Tie_break.default) ?(delay = Delay.Synchronous)
    ?(network = Network.none) ?retransmit ?(seed = 0x5eed) ?(max_rounds = 200)
    ?(subject = 1) ?(speaker = 0) ?judgment_override ~n ~t inputs =
  if List.length inputs <> n then
    invalid_arg "Runner.spec: inputs must have length n";
  {
    n;
    t;
    inputs;
    byzantine;
    crash;
    protocol;
    bb;
    strategy;
    tie;
    delay;
    network;
    retransmit;
    seed;
    max_rounds;
    subject;
    speaker;
    judgment_override;
  }

let with_seed seed (s : spec) = { s with seed }

type outcome = {
  outputs : Oid.t option list;  (** honest nodes, node-id order *)
  honest_inputs : Oid.t list;
  termination : bool;
  agreement : bool;
  voting_validity : bool;  (** strict form, Definition III.3 *)
  voting_validity_tb : bool;  (** tie-break-aware form *)
  strong_validity : bool;
  safety_admissible : bool;  (** Definition V.1 *)
  stalled : bool;
  rounds : int;
  honest_msgs : int;
  byz_msgs : int;
  decision_rounds : int option list;
  trace : Vv_sim.Trace.snapshot;  (** per-round structured history *)
}

let config_of (s : spec) =
  let faults = Array.make s.n Fault.Honest in
  List.iter
    (fun id ->
      if id < 0 || id >= s.n then invalid_arg "Runner: byzantine id out of range";
      faults.(id) <- Fault.Byzantine)
    s.byzantine;
  List.iter
    (fun (id, at_round, deliver_to) ->
      if id < 0 || id >= s.n then invalid_arg "Runner: crash id out of range";
      if faults.(id) <> Fault.Honest then
        invalid_arg "Runner: node both Byzantine and crash";
      faults.(id) <- Fault.Crash { at_round; deliver_to })
    s.crash;
  let comm =
    match s.protocol with
    | Algo4_local -> Types.Local_broadcast
    | Algo1 | Algo2_sct | Algo3_incremental | Cft | Sct_incremental ->
        Types.Point_to_point
  in
  Config.make ~faults ~comm ~delay:s.delay ~network:s.network
    ?retransmit:s.retransmit ~max_rounds:s.max_rounds ~seed:s.seed ~n:s.n
    ~t_max:s.t ()

let outcome_of (s : spec) cfg (exec : Voting.exec) =
  let honest_inputs =
    List.map (fun id -> List.nth s.inputs id) (Config.honest_ids cfg)
  in
  let outputs = exec.Voting.outputs in
  {
    outputs;
    honest_inputs;
    termination = Validity.termination ~outputs;
    agreement = Validity.agreement ~outputs;
    voting_validity =
      Validity.voting_validity ~tie:s.tie ~honest_inputs ~outputs;
    voting_validity_tb =
      Validity.voting_validity_tb ~tie:s.tie ~honest_inputs ~outputs;
    strong_validity = Validity.strong_validity ~honest_inputs ~outputs;
    safety_admissible =
      Validity.safety_guaranteed_admissible ~tie:s.tie ~honest_inputs ~outputs;
    stalled = exec.Voting.stalled;
    rounds = exec.Voting.rounds;
    honest_msgs = exec.Voting.honest_msgs;
    byz_msgs = exec.Voting.byz_msgs;
    decision_rounds = exec.Voting.decision_rounds;
    trace = exec.Voting.trace;
  }

let run_checked (s : spec) =
  let cfg = config_of s in
  let variant = Variant.with_tie s.tie (variant_of s.protocol) in
  let variant =
    match s.judgment_override with
    | None -> variant
    | Some judgment -> { variant with Variant.judgment }
  in
  let preferences id = List.nth s.inputs id in
  let exec =
    match s.protocol with
    | Algo4_local | Cft ->
        V_plain.execute_checked cfg ~variant ~speaker:s.speaker
          ~subject:s.subject ~preferences ~strategy:s.strategy
    | Algo1 | Algo2_sct | Algo3_incremental | Sct_incremental -> (
        match s.bb with
        | Vv_bb.Bb.Dolev_strong ->
            V_ds.execute_checked cfg ~variant ~speaker:s.speaker
              ~subject:s.subject ~preferences ~strategy:s.strategy
        | Vv_bb.Bb.Eig ->
            V_eig.execute_checked cfg ~variant ~speaker:s.speaker
              ~subject:s.subject ~preferences ~strategy:s.strategy
        | Vv_bb.Bb.Phase_king ->
            V_pk.execute_checked cfg ~variant ~speaker:s.speaker
              ~subject:s.subject ~preferences ~strategy:s.strategy)
  in
  Result.map (outcome_of s cfg) exec

let run (s : spec) =
  match run_checked s with
  | Ok o -> o
  | Error (`Invalid_adversary reason) ->
      raise (Vv_sim.Engine.Invalid_adversary reason)

(* Convenience: the paper's standard setup — honest inputs listed first,
   the last [f] nodes Byzantine, speaker honest node 0. *)
let simple_spec ?(protocol = Algo1) ?(strategy = Strategy.Collude_second)
    ?(bb = Vv_bb.Bb.default) ?(tie = Vv_ballot.Tie_break.default)
    ?(delay = Delay.Synchronous) ?(network = Network.none) ?retransmit
    ?(seed = 0x5eed) ?(max_rounds = 200) ~t ~f honest_inputs =
  let ng = List.length honest_inputs in
  let n = ng + f in
  let byzantine = List.init f (fun i -> ng + i) in
  (* Byzantine slots still need placeholder inputs. *)
  let filler = match honest_inputs with x :: _ -> x | [] -> Oid.of_int 0 in
  let inputs = honest_inputs @ List.init f (fun _ -> filler) in
  spec ~byzantine ~protocol ~bb ~strategy ~tie ~delay ~network ?retransmit
    ~seed ~max_rounds ~n ~t inputs

let simple ?protocol ?strategy ?bb ?tie ?delay ?network ?retransmit ?seed
    ?max_rounds ~t ~f honest_inputs =
  run
    (simple_spec ?protocol ?strategy ?bb ?tie ?delay ?network ?retransmit
       ?seed ?max_rounds ~t ~f honest_inputs)
