(* The paper's voting protocols (Algorithms 1-4 and the CFT variant) as one
   state machine parameterised by a Phase-1 broadcast substrate and a
   {!Variant}.

   Phase 1 (Prepare)  — the speaker reliably broadcasts the subject through
                        [Sub] (Dolev-Strong / EIG / Phase-King for the BFT
                        algorithms, Plain for Algorithm 4 and CFT);
   Phase 2 (Vote)     — on outputting a valid subject every node broadcasts
                        its preference;
   Phase 3 (Propose)  — After_wait: once t+1 votes arrive, wait 2*delta_t,
                        Sort the ballot and propose A_i if A_i - B_i >
                        delta_P (Algorithm 1 Line 10-15);
                        Incremental: propose as soon as Inequality (14)
                        fires (Algorithm 3);
   Phase 4 (Decide)   — output on a quorum of matching proposes (N - t for
                        Algorithms 1/3/4, t + 1 for the safety-guaranteed
                        Algorithm 2).

   Sub-machine rounds are batched by the known delay bound delta so the
   lock-step substrates also run under Fixed/Uniform delays. *)

open Vv_sim
module Oid = Vv_ballot.Option_id
module Tally = Vv_ballot.Tally

type subject = int

(* Substrate-independent execution summary, so callers can dispatch over
   differently-typed Make instances and still get one result type. *)
type exec = {
  outputs : Oid.t option list;  (** honest nodes, in node-id order *)
  decision_rounds : int option list;  (** honest nodes, in node-id order *)
  rounds : int;
  stalled : bool;
  honest_msgs : int;
  byz_msgs : int;
  trace : Trace.snapshot;  (** structured per-round history of the run *)
}

module Make (Sub : Vv_bb.Bb_intf.S) = struct
  type msg =
    | Prepare of Sub.msg
    | Vote of { subject : subject; choice : Oid.t }
    | Propose of { subject : subject; choice : Oid.t }

  type input = {
    variant : Variant.t;
    speaker : Types.node_id;
    subject : subject;  (** consulted at the speaker only *)
    preference : Oid.t;  (** this node's vote v_i *)
  }

  module P = struct
    type nonrec input = input
    type nonrec msg = msg
    type output = Oid.t

    type state = {
      variant : Variant.t;
      preference : Oid.t;
      delta : int;
      bb_rounds : int;
      mutable bb : Sub.state;
      mutable bb_buffer : (Types.node_id * Sub.msg) list;  (* reversed *)
      mutable subject : subject option;  (* set once; may be Bb_intf.bottom *)
      votes : (Types.node_id, subject * Oid.t) Hashtbl.t;  (* first per sender *)
      proposes : (Types.node_id, subject * Oid.t) Hashtbl.t;
      mutable vote_deadline : int option;
      mutable propose_done : bool;
      mutable decided : Oid.t option;
    }

    let name = "voting/" ^ Sub.name

    let init (ctx : Protocol.ctx) input =
      let delta =
        match ctx.delta with
        | Some d -> d
        | None -> invalid_arg (name ^ ": requires a known delay bound")
      in
      let value = if ctx.me = input.speaker then Some input.subject else None in
      let bb, bb_out =
        Sub.start ~n:ctx.n ~t:ctx.t ~me:ctx.me ~sender:input.speaker ~value
      in
      let st =
        {
          variant = input.variant;
          preference = input.preference;
          delta;
          bb_rounds = Sub.rounds ~n:ctx.n ~t:ctx.t;
          bb;
          bb_buffer = [];
          subject = None;
          votes = Hashtbl.create 16;
          proposes = Hashtbl.create 16;
          vote_deadline = None;
          propose_done = false;
          decided = None;
        }
      in
      let wrap (e : Sub.msg Types.envelope) =
        { Types.dest = e.Types.dest; payload = Prepare e.Types.payload }
      in
      (st, List.map wrap bb_out)

    (* Tally of the first votes per sender matching subject [s]. *)
    let tally_for table s =
      Hashtbl.fold
        (fun _src (subj, choice) acc ->
          if subj = s then Tally.add acc choice else acc)
        table Tally.empty

    let step (ctx : Protocol.ctx) st ~round ~inbox =
      let outbox = ref [] in
      let emit e = outbox := e :: !outbox in
      (* Ingest. *)
      List.iter
        (fun (src, m) ->
          match m with
          | Prepare b ->
              if st.subject = None then st.bb_buffer <- (src, b) :: st.bb_buffer
          | Vote { subject; choice } ->
              if not (Hashtbl.mem st.votes src) then
                Hashtbl.add st.votes src (subject, choice)
          | Propose { subject; choice } ->
              if not (Hashtbl.mem st.proposes src) then
                Hashtbl.add st.proposes src (subject, choice))
        inbox;
      (* Phase 1: progress the broadcast sub-machine (batched by delta). *)
      if st.subject = None && round mod st.delta = 0 then begin
        let lround = round / st.delta in
        if lround >= 1 && lround <= st.bb_rounds then begin
          let sub, bb_out =
            Sub.step ~n:ctx.n ~t:ctx.t ~me:ctx.me st.bb ~lround
              ~inbox:(List.rev st.bb_buffer)
          in
          st.bb <- sub;
          st.bb_buffer <- [];
          List.iter
            (fun (e : Sub.msg Types.envelope) ->
              emit { Types.dest = e.Types.dest; payload = Prepare e.Types.payload })
            bb_out;
          if lround = st.bb_rounds then begin
            let s = Sub.result sub in
            st.subject <- Some s;
            (* Phase 2: a valid subject triggers the vote (Line 7-9). *)
            if s >= 0 then
              emit (Types.broadcast (Vote { subject = s; choice = st.preference }))
          end
        end
      end;
      let tolerance = ctx.t in
      (* Phase 3: propose. *)
      (match st.subject with
      | Some s when s >= 0 && (not st.propose_done) && st.decided = None ->
          let ballot = tally_for st.votes s in
          let total = Tally.total ballot in
          let dp = Variant.delta_p st.variant ~tolerance in
          let tie = st.variant.Variant.tie in
          (match st.variant.Variant.propose with
          | Variant.After_wait ->
              if st.vote_deadline = None && total >= tolerance + 1 then
                st.vote_deadline <- Some (round + (2 * st.delta));
              (match st.vote_deadline with
              | Some d when round >= d -> begin
                  st.propose_done <- true;
                  match Tally.top ~tie ballot with
                  | Some { Tally.a; a_count; b_count; _ }
                    when a_count - b_count > dp ->
                      emit (Types.broadcast (Propose { subject = s; choice = a }))
                  | Some _ | None -> ()
                end
              | Some _ | None -> ())
          | Variant.Incremental ->
              if total >= tolerance + 1 then begin
                match Tally.top ~tie ballot with
                | Some { Tally.a; a_count; c_count; _ }
                  when Bounds.incremental_ready ~n:ctx.n ~delta_p:dp
                         ~a_i:a_count ~c_i:c_count ->
                    st.propose_done <- true;
                    emit (Types.broadcast (Propose { subject = s; choice = a }))
                | Some _ | None -> ()
              end)
      | Some _ | None -> ());
      (* Phase 4: decide on a quorum of matching proposes (Line 16-17). *)
      (match st.subject with
      | Some s when s >= 0 && st.decided = None -> begin
          let quorum = Variant.quorum_size st.variant ~n:ctx.n ~tolerance in
          let counts = tally_for st.proposes s in
          match Tally.ranked ~tie:st.variant.Variant.tie counts with
          | (choice, c) :: _ when c >= quorum -> st.decided <- Some choice
          | _ -> ()
        end
      | Some _ | None -> ());
      (st, List.rev !outbox)

    let output st = st.decided

    (* The Section IV phase the node is in, for trace events. *)
    let phase st =
      if st.decided <> None then "decided"
      else if st.propose_done then "proposed"
      else
        match st.subject with
        | None -> "prepare"
        | Some s when s < 0 -> "no-subject"
        | Some _ -> "vote"
  end

  module E = Engine.Make (P)

  (* --- Adversary strategies over this message type --- *)

  (* First vote per honest sender observed in the current round's traffic
     (a broadcast appears once per recipient; deduplicate by source). *)
  let observed_votes (view : msg Adversary.view) =
    let seen = Hashtbl.create 16 in
    List.iter
      (fun (d : msg Types.delivery) ->
        match d.Types.msg with
        | Vote { subject; choice } ->
            if not (Hashtbl.mem seen d.Types.src) then
              Hashtbl.add seen d.Types.src (subject, choice)
        | Prepare _ | Propose _ -> ())
      view.Adversary.honest_sent;
    Hashtbl.fold (fun src sv acc -> (src, sv) :: acc) seen []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

  let broadcast_from_all (view : msg Adversary.view) m =
    List.concat_map
      (fun src ->
        List.init view.Adversary.n (fun dst -> { Adversary.src; dst; msg = m }))
      view.Adversary.byzantine

  (* Rank the observed honest ballot and return (subject, winner,
     runner-up); the runner-up defaults to the winner when unique. *)
  let observed_top2 ~tie votes =
    match votes with
    | [] -> None
    | (_, (s, _)) :: _ ->
        let ballot =
          Tally.of_list
            (List.filter_map
               (fun (_, (subj, choice)) -> if subj = s then Some choice else None)
               votes)
        in
        (match Tally.top ~tie ballot with
        | Some { Tally.a; b; _ } ->
            Some (s, a, Option.value b ~default:a)
        | None -> None)

  let adversary_of ?(tie = Vv_ballot.Tie_break.default) (spec : Strategy.t) :
      msg Adversary.t =
    match spec with
    | Strategy.Passive -> Adversary.passive
    | Strategy.Collude_second ->
        let acted = ref false in
        Adversary.named "collude-second" (fun view ->
            if !acted then []
            else
              match observed_top2 ~tie (observed_votes view) with
              | None -> []
              | Some (s, _, second) ->
                  acted := true;
                  broadcast_from_all view (Vote { subject = s; choice = second }))
    | Strategy.Collude_fixed target ->
        let acted = ref false in
        Adversary.named "collude-fixed" (fun view ->
            if !acted then []
            else
              match observed_votes view with
              | [] -> []
              | (_, (s, _)) :: _ ->
                  acted := true;
                  broadcast_from_all view
                    (Vote { subject = s; choice = Oid.of_int target }))
    | Strategy.Split_top2 ->
        let acted = ref false in
        Adversary.named "split-top2" (fun view ->
            if !acted then []
            else
              match observed_top2 ~tie (observed_votes view) with
              | None -> []
              | Some (s, first, second) ->
                  acted := true;
                  List.concat_map
                    (fun src ->
                      List.init view.Adversary.n (fun dst ->
                          let choice = if dst mod 2 = 0 then first else second in
                          {
                            Adversary.src;
                            dst;
                            msg = Vote { subject = s; choice };
                          }))
                    view.Adversary.byzantine)
    | Strategy.Propose_second ->
        let acted = ref false in
        Adversary.named "propose-second" (fun view ->
            if !acted then []
            else
              match observed_top2 ~tie (observed_votes view) with
              | None -> []
              | Some (s, _, second) ->
                  acted := true;
                  broadcast_from_all view (Vote { subject = s; choice = second })
                  @ broadcast_from_all view
                      (Propose { subject = s; choice = second }))
    | Strategy.Late_collude delay_rounds ->
        (* Observe the honest ballot, then sit on the colluding votes for
           [delay_rounds] rounds before releasing them. *)
        let pending = ref None in
        let acted = ref false in
        Adversary.named "late-collude" (fun view ->
            (match (!pending, !acted) with
            | None, false -> (
                match observed_top2 ~tie (observed_votes view) with
                | Some (s, _, second) ->
                    pending := Some (view.Adversary.round + delay_rounds, s, second)
                | None -> ())
            | _ -> ());
            match !pending with
            | Some (release, s, second)
              when view.Adversary.round >= release && not !acted ->
                acted := true;
                broadcast_from_all view (Vote { subject = s; choice = second })
            | _ -> [])
    | Strategy.Random_votes seed ->
        let acted = ref false in
        let rng = Vv_prelude.Rng.create seed in
        Adversary.named "random-votes" (fun view ->
            if !acted then []
            else
              let votes = observed_votes view in
              match votes with
              | [] -> []
              | (_, (s, _)) :: _ ->
                  acted := true;
                  let domain =
                    List.sort_uniq Oid.compare
                      (List.map (fun (_, (_, c)) -> c) votes)
                  in
                  List.concat_map
                    (fun src ->
                      let choice = Vv_prelude.Rng.choose rng domain in
                      List.init view.Adversary.n (fun dst ->
                          {
                            Adversary.src;
                            dst;
                            msg = Vote { subject = s; choice };
                          }))
                    view.Adversary.byzantine)
    | Strategy.Scripted actions ->
        (* Trigger on the first round honest votes appear; capture the
           subject and the live option set (distinct honest choices in
           option order) so every script index has a fixed meaning. *)
        let trigger view =
          match observed_votes view with
          | [] -> None
          | ((_, (s, _)) :: _) as votes ->
              let domain =
                List.sort_uniq Oid.compare
                  (List.filter_map
                     (fun (_, (subj, c)) -> if subj = s then Some c else None)
                     votes)
              in
              if domain = [] then None else Some (s, Array.of_list domain)
        in
        let live domain i =
          (* Clamp: scripts are enumerated for up to d options but must stay
             meaningful when fewer are live. *)
          domain.(min (max i 0) (Array.length domain - 1))
        in
        (* Broadcast along [view.reach] (not all of [n]) so plans stay legal
           under local broadcast and on sparse topologies. *)
        let reach_broadcast view m =
          List.concat_map
            (fun src ->
              List.map
                (fun dst -> { Adversary.src; dst; msg = m })
                (view.Adversary.reach src))
            view.Adversary.byzantine
        in
        let interp (s, domain) action view =
          match action with
          | Strategy.Skip -> []
          | Strategy.Vote_all i ->
              reach_broadcast view (Vote { subject = s; choice = live domain i })
          | Strategy.Vote_split (i, j) ->
              List.concat_map
                (fun src ->
                  List.map
                    (fun dst ->
                      let choice = live domain (if dst mod 2 = 0 then i else j) in
                      { Adversary.src; dst; msg = Vote { subject = s; choice } })
                    (view.Adversary.reach src))
                view.Adversary.byzantine
          | Strategy.Propose_all i ->
              reach_broadcast view (Propose { subject = s; choice = live domain i })
          | Strategy.Vote_and_propose (i, j) ->
              reach_broadcast view (Vote { subject = s; choice = live domain i })
              @ reach_broadcast view
                  (Propose { subject = s; choice = live domain j })
        in
        Adversary.of_script
          ~name:(Fmt.str "%a" Strategy.pp_script actions)
          ~trigger ~interp actions

  (* One full run, summarised substrate-independently. *)
  let execute_checked cfg ~variant ~speaker ~subject ~preferences ~strategy =
    let inputs id =
      { variant; speaker; subject; preference = preferences id }
    in
    let adversary = adversary_of ~tie:variant.Variant.tie strategy in
    match E.run cfg ~inputs ~adversary () with
    | Error _ as e -> e
    | Ok res ->
        let honest = Config.honest_ids cfg in
        Ok
          {
            outputs = List.map (fun id -> res.E.outputs.(id)) honest;
            decision_rounds =
              List.map (fun id -> res.E.decision_round.(id)) honest;
            rounds = res.E.rounds_used;
            stalled = res.E.stalled;
            honest_msgs = res.E.metrics.Metrics.honest_messages;
            byz_msgs = res.E.metrics.Metrics.byzantine_messages;
            trace = res.E.trace;
          }

  let execute cfg ~variant ~speaker ~subject ~preferences ~strategy =
    match execute_checked cfg ~variant ~speaker ~subject ~preferences ~strategy with
    | Ok exec -> exec
    | Error (`Invalid_adversary reason) ->
        raise (Engine.Invalid_adversary reason)
end
