(* The paper's voting protocols (Algorithms 1-4 and the CFT variant) as one
   state machine parameterised by a Phase-1 broadcast substrate and a
   {!Variant}.

   Phase 1 (Prepare)  — the speaker reliably broadcasts the subject through
                        [Sub] (Dolev-Strong / EIG / Phase-King for the BFT
                        algorithms, Plain for Algorithm 4 and CFT);
   Phase 2 (Vote)     — on outputting a valid subject every node broadcasts
                        its preference;
   Phase 3 (Propose)  — After_wait: once t+1 votes arrive, wait 2*delta_t,
                        Sort the ballot and propose A_i if A_i - B_i >
                        delta_P (Algorithm 1 Line 10-15);
                        Incremental: propose as soon as Inequality (14)
                        fires (Algorithm 3);
   Phase 4 (Decide)   — output on a quorum of matching proposes (N - t for
                        Algorithms 1/3/4, t + 1 for the safety-guaranteed
                        Algorithm 2).

   Sub-machine rounds are batched by the known delay bound delta so the
   lock-step substrates also run under Fixed/Uniform delays. *)

open Vv_sim
module Oid = Vv_ballot.Option_id
module Tally = Vv_ballot.Tally

type subject = int

(* Substrate-independent execution summary, so callers can dispatch over
   differently-typed Make instances and still get one result type. *)
type exec = {
  outputs : Oid.t option list;  (** honest nodes, in node-id order *)
  decision_rounds : int option list;  (** honest nodes, in node-id order *)
  rounds : int;
  stalled : bool;
  honest_msgs : int;
  byz_msgs : int;
  trace : Trace.snapshot;  (** structured per-round history of the run *)
}

module Make (Sub : Vv_bb.Bb_intf.S) = struct
  type msg =
    | Prepare of Sub.msg
    | Vote of { subject : subject; choice : Oid.t }
    | Propose of { subject : subject; choice : Oid.t }

  type input = {
    variant : Variant.t;
    speaker : Types.node_id;
    subject : subject;  (** consulted at the speaker only *)
    preference : Oid.t;  (** this node's vote v_i *)
  }

  module P = struct
    type nonrec input = input
    type nonrec msg = msg
    type output = Oid.t

    type state = {
      variant : Variant.t;
      preference : Oid.t;
      delta : int;
      bb_rounds : int;
      mutable bb : Sub.state;
      bb_buffer : Sub.msg Vv_bb.Bb_intf.inbox;
          (* arrivals of the current delta batch, in delivery order *)
      sub_outbox : Sub.msg Outbox.t;
          (* reusable scratch the sub-machine emits into; its entries are
             transfer-wrapped into [Prepare] after every sub-call *)
      mutable subject : subject option;  (* set once; may be Bb_intf.bottom *)
      votes : (Types.node_id, subject * Oid.t) Hashtbl.t;  (* first per sender *)
      proposes : (Types.node_id, subject * Oid.t) Hashtbl.t;
      (* Incrementally maintained tallies of the votes/proposes matching
         [subject] (meaningful once the subject is known), with dirty
         flags — so rounds without relevant arrivals skip the propose and
         decide evaluations entirely instead of re-folding the tables.
         This is what makes stalled executions (which burn the whole
         round budget) cheap. *)
      mutable vote_tally : Tally.t;
      mutable votes_dirty : bool;
      mutable prop_tally : Tally.t;
      mutable prop_dirty : bool;
      mutable vote_deadline : int option;
      mutable propose_done : bool;
      mutable decided : Oid.t option;
    }

    let name = "voting/" ^ Sub.name

    let equal_msg a b =
      match (a, b) with
      | Prepare a, Prepare b -> Sub.equal_msg a b
      | Vote a, Vote b -> a.subject = b.subject && Oid.equal a.choice b.choice
      | Propose a, Propose b ->
          a.subject = b.subject && Oid.equal a.choice b.choice
      | (Prepare _ | Vote _ | Propose _), _ -> false

    let init (ctx : Protocol.ctx) input ~outbox =
      let delta =
        match ctx.delta with
        | Some d -> d
        | None -> invalid_arg (name ^ ": requires a known delay bound")
      in
      let value = if ctx.me = input.speaker then Some input.subject else None in
      let sub_outbox = Outbox.create () in
      let bb =
        Sub.start ~n:ctx.n ~t:ctx.t ~me:ctx.me ~sender:input.speaker ~value
          ~outbox:sub_outbox
      in
      Outbox.transfer sub_outbox ~f:(fun m -> Prepare m) ~into:outbox;
      {
        variant = input.variant;
        preference = input.preference;
        delta;
        bb_rounds = Sub.rounds ~n:ctx.n ~t:ctx.t;
        bb;
        bb_buffer = Vv_bb.Bb_intf.inbox_create ();
        sub_outbox;
        subject = None;
        votes = Hashtbl.create 16;
        proposes = Hashtbl.create 16;
        vote_tally = Tally.empty;
        votes_dirty = false;
        prop_tally = Tally.empty;
        prop_dirty = false;
        vote_deadline = None;
        propose_done = false;
        decided = None;
      }

    (* Tally of the first votes per sender matching subject [s] — the
       from-scratch fold, used once when the subject becomes known (to
       cover messages that arrived early); thereafter the cached tallies
       are maintained incrementally at ingest. *)
    let tally_for table s =
      Hashtbl.fold
        (fun _src (subj, choice) acc ->
          if subj = s then Tally.add acc choice else acc)
        table Tally.empty

    let step (ctx : Protocol.ctx) st ~round ~inbox ~outbox =
      (* Ingest — an indexed loop rather than [Inbox.iter] so a quiet
         round allocates no closure. *)
      for i = 0 to Inbox.length inbox - 1 do
        let src = Inbox.src inbox i in
        match Inbox.msg inbox i with
        | Prepare b -> (
            match st.subject with
            | None -> Vv_bb.Bb_intf.inbox_push st.bb_buffer src b
            | Some _ -> ())
        | Vote { subject; choice } ->
            if not (Hashtbl.mem st.votes src) then begin
              Hashtbl.add st.votes src (subject, choice);
              match st.subject with
              | Some s when subject = s ->
                  st.vote_tally <- Tally.add st.vote_tally choice;
                  st.votes_dirty <- true
              | Some _ | None -> ()
            end
        | Propose { subject; choice } ->
            if not (Hashtbl.mem st.proposes src) then begin
              Hashtbl.add st.proposes src (subject, choice);
              match st.subject with
              | Some s when subject = s ->
                  st.prop_tally <- Tally.add st.prop_tally choice;
                  st.prop_dirty <- true
              | Some _ | None -> ()
            end
      done;
      (* Phase 1: progress the broadcast sub-machine (batched by delta). *)
      let no_subject =
        match st.subject with None -> true | Some _ -> false
      in
      if no_subject && round mod st.delta = 0 then begin
        let lround = round / st.delta in
        if lround >= 1 && lround <= st.bb_rounds then begin
          let sub =
            Sub.step ~n:ctx.n ~t:ctx.t ~me:ctx.me st.bb ~lround
              ~inbox:st.bb_buffer ~outbox:st.sub_outbox
          in
          st.bb <- sub;
          Vv_bb.Bb_intf.inbox_clear st.bb_buffer;
          Outbox.transfer st.sub_outbox ~f:(fun m -> Prepare m) ~into:outbox;
          if lround = st.bb_rounds then begin
            let s = Sub.result sub in
            st.subject <- Some s;
            if s >= 0 then begin
              (* Seed the cached tallies from everything that arrived before
                 the subject was known. *)
              st.vote_tally <- tally_for st.votes s;
              st.prop_tally <- tally_for st.proposes s;
              st.votes_dirty <- true;
              st.prop_dirty <- true;
              (* Phase 2: a valid subject triggers the vote (Line 7-9). *)
              Outbox.broadcast outbox
                (Vote { subject = s; choice = st.preference })
            end
          end
        end
      end;
      let tolerance = ctx.t in
      (* Phase 3: propose.  Everything below depends only on the cached
         ballot and (for After_wait) the pending deadline, so the arm is
         entered only when a relevant vote arrived this round or a
         deadline is armed — a quiet stalled round does no tally work. *)
      let deadline_armed =
        match st.vote_deadline with Some _ -> true | None -> false
      in
      (match st.subject with
      | Some s
        when s >= 0
             && (not st.propose_done)
             && (match st.decided with None -> true | Some _ -> false)
             && (st.votes_dirty || deadline_armed) ->
          let ballot = st.vote_tally in
          let tie = st.variant.Variant.tie in
          (match st.variant.Variant.propose with
          | Variant.After_wait ->
              if
                (not deadline_armed)
                && Tally.total ballot >= tolerance + 1
              then st.vote_deadline <- Some (round + (2 * st.delta));
              (match st.vote_deadline with
              | Some d when round >= d -> begin
                  st.propose_done <- true;
                  let dp = Variant.delta_p st.variant ~tolerance in
                  match Tally.top ~tie ballot with
                  | Some { Tally.a; a_count; b_count; _ }
                    when a_count - b_count > dp ->
                      Outbox.broadcast outbox
                        (Propose { subject = s; choice = a })
                  | Some _ | None -> ()
                end
              | Some _ | None -> ())
          | Variant.Incremental ->
              (* Inequality (14) depends only on the ballot: re-evaluate
                 only when a relevant vote arrived. *)
              if st.votes_dirty && Tally.total ballot >= tolerance + 1 then begin
                let dp = Variant.delta_p st.variant ~tolerance in
                match Tally.top ~tie ballot with
                | Some { Tally.a; a_count; c_count; _ }
                  when Bounds.incremental_ready ~n:ctx.n ~delta_p:dp
                         ~a_i:a_count ~c_i:c_count ->
                    st.propose_done <- true;
                    Outbox.broadcast outbox (Propose { subject = s; choice = a })
                | Some _ | None -> ()
              end);
          st.votes_dirty <- false
      | Some _ | None -> ());
      (* Phase 4: decide on a quorum of matching proposes (Line 16-17).
         The quorum test depends only on the propose tally, so skip it on
         rounds where no relevant propose arrived. *)
      (match st.subject with
      | Some s
        when s >= 0 && st.prop_dirty
             && (match st.decided with None -> true | Some _ -> false) -> begin
          ignore s;
          st.prop_dirty <- false;
          let quorum = Variant.quorum_size st.variant ~n:ctx.n ~tolerance in
          match Tally.ranked ~tie:st.variant.Variant.tie st.prop_tally with
          | (choice, c) :: _ when c >= quorum -> st.decided <- Some choice
          | _ -> ()
        end
      | Some _ | None -> ());
      st

    let output st = st.decided

    (* Inert states, for the engine's stalled-run fast-forward: [step] on
       an empty inbox is a permanent no-op exactly when the sub-machine
       has delivered a subject (Phase 1 never re-enters), no propose
       deadline is pending, and no unconsumed tally dirt remains — then
       Phases 3 and 4 are gated off at every future round.  A decided
       node trivially qualifies, as does one whose subject is invalid
       (s < 0 disables Phases 2-4 outright). *)
    let inert st =
      match st.decided with
      | Some _ -> true
      | None -> (
          match st.subject with
          | None -> false
          | Some s ->
              s < 0
              || ((not st.prop_dirty)
                 && (st.propose_done
                    || ((not st.votes_dirty)
                       &&
                       match st.vote_deadline with
                       | None -> true
                       | Some _ -> false))))

    (* The Section IV phase the node is in, for trace events. *)
    let phase st =
      match st.decided with
      | Some _ -> "decided"
      | None -> (
          if st.propose_done then "proposed"
          else
            match st.subject with
            | None -> "prepare"
            | Some s when s < 0 -> "no-subject"
            | Some _ -> "vote")
  end

  module E = Engine.Make (P)

  (* --- Adversary strategies over this message type --- *)

  (* First vote per honest sender observed in the current round's traffic
     (a broadcast appears once per recipient; deduplicate by source).  The
     scan reads the indexed view directly, so rounds whose traffic carries
     no votes — the whole Phase-1 storm — allocate nothing here. *)
  let observed_votes (view : msg Adversary.view) =
    let len = view.Adversary.sent_len in
    let seen = ref None in
    for i = 0 to len - 1 do
      match view.Adversary.sent_msg i with
      | Vote { subject; choice } ->
          let tbl =
            match !seen with
            | Some tbl -> tbl
            | None ->
                let tbl = Hashtbl.create 16 in
                seen := Some tbl;
                tbl
          in
          let src = view.Adversary.sent_src i in
          if not (Hashtbl.mem tbl src) then Hashtbl.add tbl src (subject, choice)
      | Prepare _ | Propose _ -> ()
    done;
    match !seen with
    | None -> []
    | Some tbl ->
        Hashtbl.fold (fun src sv acc -> (src, sv) :: acc) tbl []
        |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

  let broadcast_from_all (view : msg Adversary.view) m =
    List.concat_map
      (fun src ->
        List.init view.Adversary.n (fun dst -> { Adversary.src; dst; msg = m }))
      view.Adversary.byzantine

  (* Rank the observed honest ballot and return (subject, winner,
     runner-up); the runner-up defaults to the winner when unique. *)
  let observed_top2 ~tie votes =
    match votes with
    | [] -> None
    | (_, (s, _)) :: _ ->
        let ballot =
          Tally.of_list
            (List.filter_map
               (fun (_, (subj, choice)) -> if subj = s then Some choice else None)
               votes)
        in
        (match Tally.top ~tie ballot with
        | Some { Tally.a; b; _ } ->
            Some (s, a, Option.value b ~default:a)
        | None -> None)

  let adversary_of ?(tie = Vv_ballot.Tie_break.default) (spec : Strategy.t) :
      msg Adversary.t =
    match spec with
    | Strategy.Passive -> Adversary.passive
    | Strategy.Collude_second ->
        let acted = ref false in
        Adversary.named ~quiescent:(fun () -> true) "collude-second" (fun view ->
            if !acted then []
            else
              match observed_top2 ~tie (observed_votes view) with
              | None -> []
              | Some (s, _, second) ->
                  acted := true;
                  broadcast_from_all view (Vote { subject = s; choice = second }))
    | Strategy.Collude_fixed target ->
        let acted = ref false in
        Adversary.named ~quiescent:(fun () -> true) "collude-fixed" (fun view ->
            if !acted then []
            else
              match observed_votes view with
              | [] -> []
              | (_, (s, _)) :: _ ->
                  acted := true;
                  broadcast_from_all view
                    (Vote { subject = s; choice = Oid.of_int target }))
    | Strategy.Split_top2 ->
        let acted = ref false in
        Adversary.named ~quiescent:(fun () -> true) "split-top2" (fun view ->
            if !acted then []
            else
              match observed_top2 ~tie (observed_votes view) with
              | None -> []
              | Some (s, first, second) ->
                  acted := true;
                  List.concat_map
                    (fun src ->
                      List.init view.Adversary.n (fun dst ->
                          let choice = if dst mod 2 = 0 then first else second in
                          {
                            Adversary.src;
                            dst;
                            msg = Vote { subject = s; choice };
                          }))
                    view.Adversary.byzantine)
    | Strategy.Propose_second ->
        let acted = ref false in
        Adversary.named ~quiescent:(fun () -> true) "propose-second" (fun view ->
            if !acted then []
            else
              match observed_top2 ~tie (observed_votes view) with
              | None -> []
              | Some (s, _, second) ->
                  acted := true;
                  broadcast_from_all view (Vote { subject = s; choice = second })
                  @ broadcast_from_all view
                      (Propose { subject = s; choice = second }))
    | Strategy.Late_collude delay_rounds ->
        (* Observe the honest ballot, then sit on the colluding votes for
           [delay_rounds] rounds before releasing them. *)
        let pending = ref None in
        let acted = ref false in
        Adversary.named
          ~quiescent:(fun () ->
            !acted || match !pending with None -> true | Some _ -> false)
          "late-collude" (fun view ->
            (match (!pending, !acted) with
            | None, false -> (
                match observed_top2 ~tie (observed_votes view) with
                | Some (s, _, second) ->
                    pending := Some (view.Adversary.round + delay_rounds, s, second)
                | None -> ())
            | _ -> ());
            match !pending with
            | Some (release, s, second)
              when view.Adversary.round >= release && not !acted ->
                acted := true;
                broadcast_from_all view (Vote { subject = s; choice = second })
            | _ -> [])
    | Strategy.Random_votes seed ->
        let acted = ref false in
        let rng = Vv_prelude.Rng.create seed in
        Adversary.named ~quiescent:(fun () -> true) "random-votes" (fun view ->
            if !acted then []
            else
              let votes = observed_votes view in
              match votes with
              | [] -> []
              | (_, (s, _)) :: _ ->
                  acted := true;
                  let domain =
                    List.sort_uniq Oid.compare
                      (List.map (fun (_, (_, c)) -> c) votes)
                  in
                  List.concat_map
                    (fun src ->
                      let choice = Vv_prelude.Rng.choose rng domain in
                      List.init view.Adversary.n (fun dst ->
                          {
                            Adversary.src;
                            dst;
                            msg = Vote { subject = s; choice };
                          }))
                    view.Adversary.byzantine)
    | Strategy.Scripted actions ->
        (* Trigger on the first round honest votes appear; capture the
           subject and the live option set (distinct honest choices in
           option order) so every script index has a fixed meaning. *)
        let trigger view =
          match observed_votes view with
          | [] -> None
          | ((_, (s, _)) :: _) as votes ->
              let domain =
                List.sort_uniq Oid.compare
                  (List.filter_map
                     (fun (_, (subj, c)) -> if subj = s then Some c else None)
                     votes)
              in
              if domain = [] then None else Some (s, Array.of_list domain)
        in
        let live domain i =
          (* Clamp: scripts are enumerated for up to d options but must stay
             meaningful when fewer are live. *)
          domain.(min (max i 0) (Array.length domain - 1))
        in
        (* Broadcast along [view.reach] (not all of [n]) so plans stay legal
           under local broadcast and on sparse topologies. *)
        let reach_broadcast view m =
          List.concat_map
            (fun src ->
              List.map
                (fun dst -> { Adversary.src; dst; msg = m })
                (view.Adversary.reach src))
            view.Adversary.byzantine
        in
        let interp (s, domain) action view =
          match action with
          | Strategy.Skip -> []
          | Strategy.Vote_all i ->
              reach_broadcast view (Vote { subject = s; choice = live domain i })
          | Strategy.Vote_split (i, j) ->
              List.concat_map
                (fun src ->
                  List.map
                    (fun dst ->
                      let choice = live domain (if dst mod 2 = 0 then i else j) in
                      { Adversary.src; dst; msg = Vote { subject = s; choice } })
                    (view.Adversary.reach src))
                view.Adversary.byzantine
          | Strategy.Propose_all i ->
              reach_broadcast view (Propose { subject = s; choice = live domain i })
          | Strategy.Vote_and_propose (i, j) ->
              reach_broadcast view (Vote { subject = s; choice = live domain i })
              @ reach_broadcast view
                  (Propose { subject = s; choice = live domain j })
        in
        Adversary.of_script ~quiet_trigger:true
          ~name:(Fmt.str "%a" Strategy.pp_script actions)
          ~trigger ~interp actions

  (* One full run, summarised substrate-independently. *)
  let execute_checked cfg ~variant ~speaker ~subject ~preferences ~strategy =
    let inputs id =
      { variant; speaker; subject; preference = preferences id }
    in
    let adversary = adversary_of ~tie:variant.Variant.tie strategy in
    match E.run cfg ~inputs ~adversary () with
    | Error _ as e -> e
    | Ok res ->
        let honest = Config.honest_ids cfg in
        Ok
          {
            outputs = List.map (fun id -> res.E.outputs.(id)) honest;
            decision_rounds =
              List.map (fun id -> res.E.decision_round.(id)) honest;
            rounds = res.E.rounds_used;
            stalled = res.E.stalled;
            honest_msgs = res.E.metrics.Metrics.honest_messages;
            byz_msgs = res.E.metrics.Metrics.byzantine_messages;
            trace = res.E.trace;
          }

  let execute cfg ~variant ~speaker ~subject ~preferences ~strategy =
    match execute_checked cfg ~variant ~speaker ~subject ~preferences ~strategy with
    | Ok exec -> exec
    | Error (`Invalid_adversary reason) ->
        raise (Engine.Invalid_adversary reason)
end
