(* Adversary strategies for the voting protocols, as data.

   The strategies are defined here as a plain enumeration so experiment
   specifications can name them independently of the Voting functor
   instance; Voting.Make turns a strategy into a concrete
   Vv_sim.Adversary.t over its own message type. *)

(* One round of a scripted adversary, as data.  Integers index into the
   live option set the adversary observed at trigger time (the distinct
   honest choices, in option order), clamped to its length — so scripts
   enumerated for d options stay meaningful when replayed against
   executions that happen to expose fewer. *)
type script_action =
  | Skip  (** stay silent this round *)
  | Vote_all of int  (** broadcast a vote for option [i] from every Byzantine node *)
  | Vote_split of int * int
      (** equivocate: vote option [i] to even recipients, [j] to odd ones
          (point-to-point only; illegal under local broadcast) *)
  | Propose_all of int  (** broadcast a forged propose for option [i] *)
  | Vote_and_propose of int * int
      (** broadcast votes for [i] and proposes for [j] in the same round *)

type t =
  | Passive
      (** Byzantine nodes stay silent — stresses that quorums are reachable
          from honest nodes alone (Lemma 6). *)
  | Collude_second
      (** All Byzantine nodes vote for the honest runner-up B — the
          worst-case strategy behind Lemma 2 / Theorem 3. *)
  | Collude_fixed of int
      (** All Byzantine nodes vote for a fixed option id. *)
  | Split_top2
      (** Equivocation: each Byzantine node votes A to even-numbered nodes
          and B to odd ones (point-to-point only). *)
  | Propose_second
      (** Collude_second, plus matching [propose B] messages — attacks the
          decide quorum directly (max t < t+1 forged proposes, Thm 11). *)
  | Random_votes of int
      (** Independent uniform votes over the observed option domain, seeded
          for reproducibility. *)
  | Late_collude of int
      (** Collude_second, but withhold the Byzantine votes for the given
          number of rounds after observing the honest ballot — exercises
          the strong adversary's message-delaying power against the
          protocols' wait windows. *)
  | Scripted of script_action list
      (** Replay the per-round actions, starting the round the first honest
          vote is observed — the enumerable adversary universe of the
          exhaustive checker (Vv_check). *)

let pp_script_action ppf = function
  | Skip -> Fmt.string ppf "-"
  | Vote_all i -> Fmt.pf ppf "v%d" i
  | Vote_split (i, j) -> Fmt.pf ppf "v%dx%d" i j
  | Propose_all i -> Fmt.pf ppf "p%d" i
  | Vote_and_propose (i, j) -> Fmt.pf ppf "v%dp%d" i j

let pp_script ppf actions =
  Fmt.pf ppf "scripted:%a" Fmt.(list ~sep:(any ".") pp_script_action) actions

let pp ppf = function
  | Passive -> Fmt.string ppf "passive"
  | Collude_second -> Fmt.string ppf "collude-second"
  | Collude_fixed v -> Fmt.pf ppf "collude-fixed:%d" v
  | Split_top2 -> Fmt.string ppf "split-top2"
  | Propose_second -> Fmt.string ppf "propose-second"
  | Random_votes s -> Fmt.pf ppf "random:%d" s
  | Late_collude d -> Fmt.pf ppf "late-collude:%d" d
  | Scripted actions -> pp_script ppf actions

let of_name = function
  | "passive" -> Some Passive
  | "collude-second" -> Some Collude_second
  | "split-top2" -> Some Split_top2
  | "propose-second" -> Some Propose_second
  | "random" -> Some (Random_votes 7)
  | "late-collude" -> Some (Late_collude 3)
  | _ -> None

let all_names =
  [
    "passive"; "collude-second"; "split-top2"; "propose-second"; "random";
    "late-collude";
  ]
