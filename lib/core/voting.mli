(** The paper's voting protocols (Algorithms 1-4 and CFT) as one state
    machine parameterised by a Phase-1 broadcast substrate and a
    {!Variant}.

    Phases (Section IV-B): (1) the speaker reliably broadcasts the subject
    through [Sub]; (2) nodes broadcast their preference on output of a
    valid subject; (3) nodes propose their local plurality [A_i] when the
    variant's judgment condition fires; (4) nodes decide on a quorum of
    matching proposes. *)

module Oid = Vv_ballot.Option_id

type subject = int

type exec = {
  outputs : Oid.t option list;  (** honest nodes, in node-id order *)
  decision_rounds : int option list;  (** honest nodes, in node-id order *)
  rounds : int;
  stalled : bool;
  honest_msgs : int;
  byz_msgs : int;
  trace : Vv_sim.Trace.snapshot;  (** structured per-round history *)
}
(** Substrate-independent execution summary. *)

module Make (Sub : Vv_bb.Bb_intf.S) : sig
  type msg =
    | Prepare of Sub.msg  (** Phase 1 sub-machine traffic *)
    | Vote of { subject : subject; choice : Oid.t }
    | Propose of { subject : subject; choice : Oid.t }

  type input = {
    variant : Variant.t;
    speaker : Vv_sim.Types.node_id;
    subject : subject;  (** consulted at the speaker only *)
    preference : Oid.t;  (** this node's vote [v_i] *)
  }

  module P :
    Vv_sim.Protocol.S
      with type input = input
       and type msg = msg
       and type output = Oid.t

  module E : module type of Vv_sim.Engine.Make (P)

  val observed_votes :
    msg Vv_sim.Adversary.view ->
    (Vv_sim.Types.node_id * (subject * Oid.t)) list
  (** First vote per non-Byzantine sender in this round's traffic. *)

  val adversary_of :
    ?tie:Vv_ballot.Tie_break.t -> Strategy.t -> msg Vv_sim.Adversary.t

  val execute_checked :
    Vv_sim.Config.t ->
    variant:Variant.t ->
    speaker:Vv_sim.Types.node_id ->
    subject:subject ->
    preferences:(Vv_sim.Types.node_id -> Oid.t) ->
    strategy:Strategy.t ->
    (exec, [ `Invalid_adversary of string ]) result
  (** One full run against the strategy's adversary; an adversary that
      violates the fault plan or communication model is an [Error], not an
      exception. *)

  val execute :
    Vv_sim.Config.t ->
    variant:Variant.t ->
    speaker:Vv_sim.Types.node_id ->
    subject:subject ->
    preferences:(Vv_sim.Types.node_id -> Oid.t) ->
    strategy:Strategy.t ->
    exec
  (** Like {!execute_checked} but raises {!Vv_sim.Engine.Invalid_adversary}. *)
end
