(* Generic "exchange, pick a candidate, agree" baseline skeleton.

   Round 0: every node broadcasts its (encoded) input.
   Round 1: collect one value per sender, compute a local candidate with
            the baseline-specific rule (trimmed median, k-th smallest,
            plurality, ...).
   Rounds 2..2(t+1)+1: King_ba aligns the candidates (n > 4t).

   This is the common shape of the approximate-validity comparators the
   paper discusses in Sections I-II: the output is an *agreed* value close
   to the desired statistic, but — unlike the voting-validity protocols —
   not guaranteed to be the exact plurality of honest inputs. *)

open Vv_sim

(* Exposed so experiment adversaries can inject crafted values. *)
type msg = Raw of int | Ba of Vv_bb.King_ba.msg

module type CANDIDATE = sig
  val name : string

  type input

  val encode : input -> int
  (** How the raw input is broadcast (must be non-negative). *)

  val candidate : n:int -> t:int -> received:int list -> input -> int
  (** Local rule applied to the per-sender deduplicated, ascending-sorted
      received values. *)
end

module Make (C : CANDIDATE) :
  Protocol.S
    with type input = C.input
     and type msg = msg
     and type output = int = struct
  type input = C.input
  type nonrec msg = msg
  type output = int

  type state = {
    own : C.input;
    raw : (Types.node_id, int) Hashtbl.t;
    mutable ba : Vv_bb.King_ba.state option;
    ba_outbox : Vv_bb.King_ba.msg Outbox.t;  (* reusable sub-machine scratch *)
    ba_inbox : Vv_bb.King_ba.msg Vv_bb.Bb_intf.inbox;
        (* reusable per-round arrival buffer for the sub-machine *)
    ba_rounds : int;
    mutable decided : int option;
  }

  let name = C.name

  let equal_msg a b =
    match (a, b) with
    | Raw u, Raw v -> Int.equal u v
    | Ba u, Ba v -> Vv_bb.King_ba.equal_msg u v
    | (Raw _ | Ba _), _ -> false

  let init (ctx : Protocol.ctx) own ~outbox =
    Outbox.broadcast outbox (Raw (C.encode own));
    {
      own;
      raw = Hashtbl.create 16;
      ba = None;
      ba_outbox = Outbox.create ();
      ba_inbox = Vv_bb.Bb_intf.inbox_create ();
      ba_rounds = Vv_bb.King_ba.rounds ~t:ctx.t;
      decided = None;
    }

  let step (ctx : Protocol.ctx) st ~round ~inbox ~outbox =
    Vv_bb.Bb_intf.inbox_clear st.ba_inbox;
    for i = 0 to Inbox.length inbox - 1 do
      match Inbox.msg inbox i with
      | Raw v ->
          let src = Inbox.src inbox i in
          if round = 1 && not (Hashtbl.mem st.raw src) then
            Hashtbl.add st.raw src v
      | Ba b -> Vv_bb.Bb_intf.inbox_push st.ba_inbox (Inbox.src inbox i) b
    done;
    if round = 1 then begin
      let received =
        Hashtbl.fold (fun _ v acc -> v :: acc) st.raw []
        |> List.sort Int.compare
      in
      let cand = C.candidate ~n:ctx.n ~t:ctx.t ~received st.own in
      let ba = Vv_bb.King_ba.start cand ~outbox:st.ba_outbox in
      Outbox.transfer st.ba_outbox ~f:(fun m -> Ba m) ~into:outbox;
      st.ba <- Some ba;
      st
    end
    else
      match st.ba with
      | Some ba when round - 1 <= st.ba_rounds ->
          let lround = round - 1 in
          let ba =
            Vv_bb.King_ba.step ~n:ctx.n ~t:ctx.t ~me:ctx.me ba ~lround
              ~inbox:st.ba_inbox ~outbox:st.ba_outbox
          in
          Outbox.transfer st.ba_outbox ~f:(fun m -> Ba m) ~into:outbox;
          st.ba <- Some ba;
          if lround = st.ba_rounds then st.decided <- Some (Vv_bb.King_ba.result ba);
          st
      | Some _ | None -> st

  let output st = st.decided

  let phase st =
    if st.decided <> None then "decided"
    else if st.ba <> None then "agree"
    else "exchange"

  (* Conservative: baseline runs are not fast-forwarded. *)
  let inert _ = false
end
