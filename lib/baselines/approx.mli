(** Synchronous approximate agreement (Dolev et al. [18]) on scalars.

    Each round: broadcast, drop the [t] lowest and highest received, move
    to the midpoint of the rest. The honest range contracts geometrically
    — close, never exact (the other classic relaxation contrasted in
    Section I). *)

type input = { value : float; rounds : int }
type msg = float
type output = float
type state

val name : string

val equal_msg : msg -> msg -> bool

val midpoint : t:int -> float list -> float
(** Midpoint of the t-trimmed list ([nan] when empty). *)

val init :
  Vv_sim.Protocol.ctx -> input -> outbox:msg Vv_sim.Outbox.t -> state
(** Raises [Invalid_argument] when [rounds < 1]. *)

val step :
  Vv_sim.Protocol.ctx ->
  state ->
  round:int ->
  inbox:msg Vv_sim.Inbox.t ->
  outbox:msg Vv_sim.Outbox.t ->
  state

val output : state -> output option
val phase : state -> string
val inert : state -> bool

val spread : float option list -> float
(** Maximum pairwise distance between decided values. *)
