(** Median-validity agreement (Stolz-Wattenhofer [5] style baseline).

    Exchange values, take the median of the t-trimmed received multiset,
    agree via Phase-King BA ([n > 4t]). With [f <= t] faults the output is
    close to (within [t] positions of) the honest median, never guaranteed
    exact — the contrast motivating the paper's Section I. Implements
    {!Vv_sim.Protocol.S} over {!Exchange_ba.msg} with integer inputs. *)

val trim : t:int -> int list -> int list
(** Drop the [t] smallest and [t] largest of an ascending list (keeps at
    least one element). *)

val median_of : int list -> int
(** Middle element of an ascending list; {!Vv_bb.Bb_intf.bottom} on []. *)

include
  Vv_sim.Protocol.S
    with type input = int
     and type msg = Exchange_ba.msg
     and type output = int

val property : Vv_ballot.Property.t
(** {!Vv_ballot.Property.median} — the shared first-class instance of the
    guarantee this baseline realises; judge its runs through this, not a
    private predicate. *)
