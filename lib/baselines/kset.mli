(** k-set consensus (Chaudhuri [17]) under crash faults: flood-min for
    [floor(t/k) + 1] rounds; at most [k] distinct outputs survive.

    The "relax agreement" escape from the impossibility results — it gives
    up exactly what voting validity keeps (Section I taxonomy). *)

type input = { value : int; k : int }
type msg = int
type output = int
type state

val name : string

val equal_msg : msg -> msg -> bool

val rounds : t:int -> k:int -> int

val init :
  Vv_sim.Protocol.ctx -> input -> outbox:msg Vv_sim.Outbox.t -> state
(** Raises [Invalid_argument] when [k < 1] or the value is negative. *)

val step :
  Vv_sim.Protocol.ctx ->
  state ->
  round:int ->
  inbox:msg Vv_sim.Inbox.t ->
  outbox:msg Vv_sim.Outbox.t ->
  state

val output : state -> output option
val phase : state -> string
val inert : state -> bool

val distinct_outputs : int option list -> int
(** Number of distinct decided values — the weakened agreement metric. *)
