(* Median-validity agreement in the style of Stolz-Wattenhofer [5]: nodes
   exchange values, locally take the median of the t-trimmed received
   multiset, and agree on the result.  With f <= t faults the output is
   guaranteed close to (within t positions of) the true honest median but
   not exact — the contrast motivating the paper's Section I. *)

let trim ~t values =
  (* Drop the t smallest and t largest; keep at least one value. *)
  let n = List.length values in
  if n = 0 then []
  else if n <= 2 * t then [ List.nth values (n / 2) ]
  else
    values |> List.filteri (fun i _ -> i >= t && i < n - t)

let median_of = function
  | [] -> Vv_bb.Bb_intf.bottom
  | l -> List.nth l (List.length l / 2)

include Exchange_ba.Make (struct
  let name = "baseline/median"

  type input = int

  let encode v =
    if v < 0 then invalid_arg "median baseline: negative input" else v

  let candidate ~n:_ ~t ~received _own = median_of (trim ~t received)
end)

(* The guarantee this baseline realises, as the shared first-class
   instance — campaigns and tests judge runs through it rather than a
   private predicate. *)
let property = Vv_ballot.Property.median
