(* Strong-consensus-style baseline (Neiger [3]): nodes exchange inputs,
   take the plurality of what they received (Byzantine votes included —
   there is no dispersion-aware judgment condition), and agree on the
   result.  Satisfies strong validity in the regimes of [3] but, unlike
   Algorithm 1, offers no guarantee that the output is the plurality of
   *honest* inputs: t colluding votes swing it (the Section I example). *)

let plurality values =
  let counts = Hashtbl.create 8 in
  List.iter
    (fun v ->
      let c = try Hashtbl.find counts v with Not_found -> 0 in
      Hashtbl.replace counts v (c + 1))
    values;
  Hashtbl.fold
    (fun v c (bv, bc) ->
      if c > bc || (c = bc && v < bv) then (v, c) else (bv, bc))
    counts
    (Vv_bb.Bb_intf.bottom, 0)
  |> fst

include Exchange_ba.Make (struct
  let name = "baseline/strong"

  type input = int

  let encode v =
    if v < 0 then invalid_arg "strong baseline: negative input" else v

  let candidate ~n:_ ~t:_ ~received _own = plurality received
end)

let property = Vv_ballot.Property.strong
