(* k-set consensus (Chaudhuri [17]) under crash faults: the agreement
   property is *weakened* to "at most k distinct outputs".  Classic
   synchronous flood-min: floor(t/k) + 1 rounds of broadcasting the
   smallest value seen; each crash that matters costs the adversary one
   round's worth of partition, so at most k values survive.

   Included to illustrate the paper's taxonomy (Section I): relaxing
   agreement is the other escape from the impossibility results, and it
   gives up exactly what voting validity is designed to keep. *)

open Vv_sim

type input = { value : int; k : int }

type msg = int
type output = int

type state = {
  k : int;
  mutable current : int;
  total_rounds : int;
  mutable decided : int option;
}

let name = "baseline/kset"

let equal_msg = Int.equal

let rounds ~t ~k = (t / k) + 1

let init (ctx : Protocol.ctx) { value; k } ~outbox =
  if k < 1 then invalid_arg "kset: k must be >= 1";
  if value < 0 then invalid_arg "kset: negative input";
  Outbox.broadcast outbox value;
  { k; current = value; total_rounds = rounds ~t:ctx.t ~k; decided = None }

let step (_ : Protocol.ctx) st ~round ~inbox ~outbox =
  Inbox.iter
    (fun _ v -> if v >= 0 && v < st.current then st.current <- v)
    inbox;
  if round < st.total_rounds then Outbox.broadcast outbox st.current
  else if st.decided = None && round >= st.total_rounds then
    st.decided <- Some st.current;
  st

let output st = st.decided
let phase st = if st.decided <> None then "decided" else "exchange"

(* Conservative: baseline runs are not fast-forwarded. *)
let inert _ = false

(* The weakened agreement property: number of distinct decided values. *)
let distinct_outputs outputs =
  outputs
  |> List.filter_map Fun.id
  |> List.sort_uniq Int.compare
  |> List.length
