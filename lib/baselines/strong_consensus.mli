(** Strong-consensus-style baseline (Neiger [3]).

    Exchange inputs, take the plurality of everything received (Byzantine
    votes included — no dispersion-aware judgment condition), agree via
    Phase-King BA. Satisfies strong validity in the regimes of [3] but [t]
    colluding votes can swing the winner (the Section I example); compare
    against Algorithm 1's exactness guarantee in experiment E8. *)

val plurality : int list -> int
(** Most frequent value (ties to the smaller); {!Vv_bb.Bb_intf.bottom} on
    the empty list. *)

include
  Vv_sim.Protocol.S
    with type input = int
     and type msg = Exchange_ba.msg
     and type output = int

val property : Vv_ballot.Property.t
(** {!Vv_ballot.Property.strong} — the shared first-class instance of the
    guarantee this baseline realises. *)
