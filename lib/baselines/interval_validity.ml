(* Interval-validity agreement in the style of Melnyk-Wattenhofer [6]: the
   target statistic is the k-th smallest honest value; nodes exchange
   values, take the k-th smallest of the t-trimmed received multiset, and
   agree.  The output lands in an interval around the true k-th smallest
   rather than hitting it exactly. *)

type query = { value : int; k : int }

include Exchange_ba.Make (struct
  let name = "baseline/interval"

  type input = query

  let encode q =
    if q.value < 0 then invalid_arg "interval baseline: negative input"
    else q.value

  let candidate ~n:_ ~t ~received own =
    let trimmed = Median_validity.trim ~t received in
    match trimmed with
    | [] -> Vv_bb.Bb_intf.bottom
    | l ->
        let idx = min (max 0 (own.k - 1)) (List.length l - 1) in
        List.nth l idx
end)

let property = Vv_ballot.Property.interval
