(* Synchronous approximate agreement (Dolev-Lynch-Pinter-Stark-Weihl [18])
   on scalar values: each round, broadcast the current value, drop the t
   lowest and t highest received, and move to the midpoint of the rest.
   The honest range contracts geometrically; after enough rounds all
   honest values are within epsilon — close, never exact.  The other
   classic relaxation the paper contrasts with (Section I: "allowing each
   node to output a single value ... within a distance of epsilon"). *)

open Vv_sim

type input = { value : float; rounds : int }

type msg = float
type output = float

type state = {
  mutable current : float;
  total_rounds : int;
  mutable decided : float option;
}

let name = "baseline/approx"

let equal_msg = Float.equal

let midpoint ~t values =
  let sorted = List.sort Float.compare values in
  let m = List.length sorted in
  let kept =
    if m <= 2 * t then sorted
    else List.filteri (fun i _ -> i >= t && i < m - t) sorted
  in
  match kept with
  | [] -> nan
  | l ->
      let lo = List.hd l and hi = List.nth l (List.length l - 1) in
      (lo +. hi) /. 2.0

let init (_ : Protocol.ctx) { value; rounds } ~outbox =
  if rounds < 1 then invalid_arg "approx: rounds must be >= 1";
  Outbox.broadcast outbox value;
  { current = value; total_rounds = rounds; decided = None }

let step (ctx : Protocol.ctx) st ~round ~inbox ~outbox =
  let values = Inbox.fold (fun acc _ v -> v :: acc) [] inbox in
  if values <> [] then st.current <- midpoint ~t:ctx.t values;
  if round < st.total_rounds then Outbox.broadcast outbox st.current
  else if st.decided = None then st.decided <- Some st.current;
  st

let output st = st.decided
let phase st = if st.decided <> None then "decided" else "average"

(* Conservative: baseline runs are not fast-forwarded. *)
let inert _ = false

(* Maximum pairwise distance between decided honest values. *)
let spread outputs =
  let decided = List.filter_map Fun.id outputs in
  match decided with
  | [] -> 0.0
  | l ->
      let lo = List.fold_left min (List.hd l) l in
      let hi = List.fold_left max (List.hd l) l in
      hi -. lo
