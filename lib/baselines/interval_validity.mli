(** Interval-validity agreement (Melnyk-Wattenhofer [6] style baseline).

    Targets the k-th smallest honest value: exchange, take the k-th
    smallest of the t-trimmed received multiset, agree via Phase-King BA.
    Output lands in an interval around the target, never guaranteed exact.
    Implements {!Vv_sim.Protocol.S} over {!Exchange_ba.msg}. *)

type query = { value : int; k : int }

include
  Vv_sim.Protocol.S
    with type input = query
     and type msg = Exchange_ba.msg
     and type output = int

val property : Vv_ballot.Property.t
(** {!Vv_ballot.Property.interval} — the shared first-class instance of
    the guarantee this baseline realises. *)
