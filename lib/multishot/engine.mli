(** Multi-shot throughput engine: subject batching, slot sharding across
    Executor domains, pipelined cost accounting and snapshot/catch-up.

    Submissions are assigned global positions in arrival order; position
    [p] lands in slot [p / batch], lane [p mod batch], and is decided by
    {!Ledger.compute} — pure per position — so groups of positions fan
    out through {!Vv_exec.Executor.map} and merge in index order. The
    committed log is byte-identical at every [jobs] value, and an engine
    at [batch = 1] reproduces a sequential {!Ledger.decide} loop exactly.

    The serve daemon ({!Vv_serve.Server}) drives one engine per process:
    [submit] on every vote submission, [step] after each read burst
    (decides full slots only), [flush] on demand, [to_snapshot] /
    [of_snapshot] for restart catch-up. *)

module Oid = Vv_ballot.Option_id

type t

val create : ?batch:int -> ?jobs:int -> Ledger.config -> t
(** [batch] (default 1) subjects per slot; [jobs] (default 1) worker
    domains for slot fan-out, [0] = all cores but one. Raises
    [Invalid_argument] when [batch < 1] or [jobs < 0]. *)

val config : t -> Ledger.config
val batch : t -> int

val height : t -> int
(** Committed (decided) positions so far. *)

val pending : t -> int
(** Accepted submissions not yet decided. *)

val slot_of : t -> int -> int
val lane_of : t -> int -> int

val submit : t -> subject:int -> Oid.t list -> int
(** Queue one subject with its per-node inputs (length [n]); returns the
    assigned global position. Raises [Invalid_argument] on wrong arity. *)

val step : t -> Ledger.slot list
(** Decide every pending submission that completes a full slot, in
    position order; partial trailing slots wait. Returns the newly
    committed decisions ([slot.index] is the global position). *)

val flush : t -> Ledger.slot list
(** Decide everything pending, including a partial final slot. *)

val append_committed :
  t -> Ledger.slot -> ([ `Applied | `Stale ], string) result
(** Append a slot decided elsewhere — how a {!Vv_serve.Replica} follower
    applies its primary's decision stream. [`Applied] extends the log
    (the slot's index must equal the current height), [`Stale] ignores a
    replayed slot below the height; a gap above the height, or an engine
    holding local pending submissions, is an [Error] (the follower must
    re-catchup). *)

val decisions : t -> Ledger.slot list
(** The committed log, in position order. *)

val decisions_from : t -> int -> Ledger.slot list
(** Committed decisions at positions [>= from] (restart catch-up). *)

val all_committed_valid : t -> bool
(** Every committed decision carried voting validity. *)

type stats = {
  decided : int;
  committed : int;
  skipped : int;
  slots_used : int;
  attempts_total : int;
  rounds_instances : int;
      (** sum of per-instance rounds: the unbatched, unpipelined cost *)
  rounds_sequential : int;
      (** sum of per-slot durations: batched but not pipelined *)
  rounds_pipelined : int;
      (** makespan with slot [k+1]'s Phase-1 broadcast overlapping slot
          [k]'s Phase 2 (the broadcast layer is the serial resource) *)
  all_valid : bool;
}

val stats : t -> stats

val stats_of :
  batch:int ->
  bb:Vv_bb.Bb.choice ->
  n:int ->
  t:int ->
  Ledger.slot list ->
  stats
(** Pure form of {!stats}, usable on a decision log reconstructed from a
    served decision stream. Deterministic and jobs-invariant. *)

val run :
  ?batch:int ->
  ?jobs:int ->
  Ledger.config ->
  (int * Oid.t list) list ->
  Ledger.slot list * stats
(** Submit every [(subject, inputs)] request, flush, and return the
    committed log with its stats. *)

val to_snapshot : t -> Vv_prelude.Json.t
(** Committed state only (config echo + decision log); pending
    submissions are the clients' to resubmit. *)

val of_snapshot :
  ?batch:int ->
  ?jobs:int ->
  Ledger.config ->
  Vv_prelude.Json.t ->
  (t, string) result
(** Rebuild an engine from a snapshot. Fails when the snapshot's seed,
    [n], [t] or (if [?batch] is given) batch size disagree with the
    requested configuration, or the decision log is malformed. *)
