(* Multi-shot voting: a ledger of repeated single-shot instances.

   The paper's protocols are single-shot ("thus not yet directly
   applicable in some distributed scenarios" — Section VIII); this module
   packages the future-work direction it sketches: a sequence of voting
   slots, each deciding one subject, with

   - round-robin speaker rotation: a Byzantine or crashed speaker stalls
     its slot, and the slot is retried under the next speaker;
   - optional electorate adjustment between retries (the Section V-B
     remedy, via Vv_core.Session policies);
   - per-slot property classification and ledger-level invariants (every
     committed slot carries its validity verdict).

   The Byzantine set persists across slots (the same adversary keeps
   attacking).

   Slots are *independent*: every random draw a slot consumes comes from
   seeds derived as [Rng.derive (Rng.derive cfg.seed index) attempt], and
   the slot's first speaker is [index mod n].  Nothing about a slot
   depends on how many attempts earlier slots burned — which is what lets
   {!Engine} shard and pipeline slots across domains while staying
   byte-identical to the sequential ledger.  (The original implementation
   drew each attempt's seed from one shared RNG stream and rotated one
   shared speaker cursor, silently coupling every slot to its
   predecessors' retry history.) *)

module Oid = Vv_ballot.Option_id
module Rng = Vv_prelude.Rng
module Json = Vv_prelude.Json
module Runner = Vv_core.Runner

type retry =
  | No_retry  (** a stalled slot is recorded as skipped *)
  | Rotate_speaker of int
      (** retry under the next speaker, up to the given attempts *)
  | Rotate_and_adjust of Vv_core.Session.policy * int
      (** rotate and also apply an electorate adjustment between attempts *)

type config = {
  n : int;
  t : int;
  byzantine : Vv_sim.Types.node_id list;
  crash : (Vv_sim.Types.node_id * int * Vv_sim.Types.node_id list) list;
      (** per-slot crash plans: these nodes crash in *every* attempt at
          the given round (e.g. an unreliable host) *)
  protocol : Runner.protocol;
  strategy : Vv_core.Strategy.t;
  bb : Vv_bb.Bb.choice;
  tie : Vv_ballot.Tie_break.t;
  retry : retry;
  seed : int;
}

let config ?(byzantine = []) ?(crash = []) ?(protocol = Runner.Algo2_sct)
    ?(strategy = Vv_core.Strategy.Collude_second) ?(bb = Vv_bb.Bb.default)
    ?(tie = Vv_ballot.Tie_break.default)
    ?(retry = Rotate_speaker 4) ?(seed = 0x1ed9) ~n ~t () =
  if n <= 0 then invalid_arg "Ledger.config: n must be positive";
  List.iter
    (fun id ->
      if id < 0 || id >= n then
        invalid_arg "Ledger.config: byzantine id out of range")
    byzantine;
  List.iter
    (fun (id, _, _) ->
      if id < 0 || id >= n then
        invalid_arg "Ledger.config: crash id out of range")
    crash;
  { n; t; byzantine; crash; protocol; strategy; bb; tie; retry; seed }

type slot = {
  index : int;
  subject : int;
  decision : Oid.t option;  (** [None] = skipped after exhausting retries *)
  speaker : Vv_sim.Types.node_id;  (** speaker of the deciding attempt *)
  attempts : int;
  valid : bool;  (** tie-break-aware voting validity of the final attempt *)
  rounds_total : int;  (** simulation rounds summed over attempts *)
}

type t = {
  cfg : config;
  mutable slots : slot list;  (* reversed *)
}

let create cfg = { cfg; slots = [] }

let height t = List.length t.slots
let slots t = List.rev t.slots

let committed t =
  List.filter_map
    (fun s -> match s.decision with Some v -> Some (s.index, v) | None -> None)
    (slots t)

(* All committed slots carried voting validity — the ledger-level safety
   invariant callers should assert. *)
let all_committed_valid t =
  List.for_all
    (fun s -> match s.decision with Some _ -> s.valid | None -> true)
    (slots t)

let max_attempts cfg =
  match cfg.retry with
  | No_retry -> 1
  | Rotate_speaker k | Rotate_and_adjust (_, k) ->
      if k < 1 then invalid_arg "Ledger: retry attempts must be >= 1" else k

(* Decide one slot as a pure function of (config, index, subject, inputs):
   run attempts under rotating speakers until one terminates or the retry
   budget is exhausted.  Attempt [k] (from 1) speaks as
   [(speaker_base + k - 1) mod n] under seed [derive (derive seed index) k];
   the adjustment policy's draws come from the reserved attempt-0 child
   stream.  Domain-safe: no shared mutable state. *)
let compute cfg ?speaker_base ~index ~subject inputs =
  if List.length inputs <> cfg.n then
    invalid_arg "Ledger.compute: inputs must have length n";
  if index < 0 then invalid_arg "Ledger.compute: negative index";
  let base =
    match speaker_base with
    | Some s ->
        if s < 0 then invalid_arg "Ledger.compute: negative speaker_base"
        else s mod cfg.n
    | None -> index mod cfg.n
  in
  let budget = max_attempts cfg in
  let slot_seed = Rng.derive cfg.seed index in
  (* Attempt seeds use children 1.., so child 0 is free for the policy. *)
  let adjust_rng = Rng.create (Rng.derive slot_seed 0) in
  let rec attempt k inputs rounds_acc =
    let speaker = (base + k - 1) mod cfg.n in
    let outcome =
      Runner.run
        (Runner.spec ~byzantine:cfg.byzantine ~crash:cfg.crash
           ~protocol:cfg.protocol ~bb:cfg.bb ~strategy:cfg.strategy
           ~tie:cfg.tie ~seed:(Rng.derive slot_seed k) ~subject ~speaker
           ~n:cfg.n ~t:cfg.t inputs)
    in
    let rounds_acc = rounds_acc + outcome.Runner.rounds in
    if outcome.Runner.termination then
      let decision =
        match List.filter_map Fun.id outcome.Runner.outputs with
        | v :: _ -> Some v
        | [] -> None
      in
      {
        index;
        subject;
        decision;
        speaker;
        attempts = k;
        valid = outcome.Runner.voting_validity_tb;
        rounds_total = rounds_acc;
      }
    else if k >= budget then
      {
        index;
        subject;
        decision = None;
        speaker;
        attempts = k;
        valid = true;  (* nothing decided, nothing violated *)
        rounds_total = rounds_acc;
      }
    else
      let inputs =
        match cfg.retry with
        | Rotate_and_adjust (policy, _) ->
            (* Adjust honest entries only; Byzantine slots are ignored by
               the runner anyway. *)
            Vv_core.Session.adjust ~tie:cfg.tie ~rng:adjust_rng policy inputs
        | No_retry | Rotate_speaker _ -> inputs
      in
      attempt (k + 1) inputs rounds_acc
  in
  attempt 1 inputs 0

let decide t ~subject inputs =
  if List.length inputs <> t.cfg.n then
    invalid_arg "Ledger.decide: inputs must have length n";
  let slot = compute t.cfg ~index:(height t) ~subject inputs in
  t.slots <- slot :: t.slots;
  slot

(* --- snapshot serialisation (used by Engine and the serve daemon) --- *)

let slot_to_json s =
  Json.Obj
    [
      ("index", Json.Int s.index);
      ("subject", Json.Int s.subject);
      ("decision", Json.of_int_option (Option.map Oid.to_int s.decision));
      ("speaker", Json.Int s.speaker);
      ("attempts", Json.Int s.attempts);
      ("valid", Json.Bool s.valid);
      ("rounds_total", Json.Int s.rounds_total);
    ]

let slot_of_json j =
  let ( let* ) = Result.bind in
  match j with
  | Json.Obj fields ->
      let int key =
        match List.assoc_opt key fields with
        | Some (Json.Int i) -> Ok i
        | _ -> Error (Printf.sprintf "slot: missing int field %S" key)
      in
      let* index = int "index" in
      let* subject = int "subject" in
      let* decision =
        match List.assoc_opt "decision" fields with
        | Some Json.Null -> Ok None
        | Some (Json.Int i) -> Ok (Some (Oid.of_int i))
        | _ -> Error "slot: decision must be an int or null"
      in
      let* speaker = int "speaker" in
      let* attempts = int "attempts" in
      let* valid =
        match List.assoc_opt "valid" fields with
        | Some (Json.Bool b) -> Ok b
        | _ -> Error "slot: missing bool field \"valid\""
      in
      let* rounds_total = int "rounds_total" in
      Ok { index; subject; decision; speaker; attempts; valid; rounds_total }
  | _ -> Error "slot: expected an object"

let pp_slot ppf s =
  Fmt.pf ppf "slot %d: subject=%d %a (speaker %d, %d attempt%s, %d rounds)"
    s.index s.subject
    (fun ppf -> function
      | Some v -> Fmt.pf ppf "decided %a%s" Oid.pp v
                    (if s.valid then "" else " [INVALID]")
      | None -> Fmt.string ppf "skipped")
    s.decision s.speaker s.attempts
    (if s.attempts = 1 then "" else "s")
    s.rounds_total
