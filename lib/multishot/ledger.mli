(** Multi-shot voting: a ledger of repeated single-shot instances (the
    Section VIII future-work direction).

    Each slot decides one subject under a rotating speaker; stalled slots
    (Byzantine/crashed speaker, or a safety-guaranteed protocol refusing a
    thin margin) are retried under the next speaker, optionally with the
    Section V-B electorate adjustment between attempts. Deterministic from
    the config seed — and slot-independent: slot [i]'s seeds derive from
    [(seed, i, attempt)] and its first speaker is [i mod n], so no slot
    depends on how many attempts its predecessors consumed. {!Engine}
    relies on this to shard slots across domains byte-identically. *)

module Oid = Vv_ballot.Option_id

type retry =
  | No_retry  (** a stalled slot is recorded as skipped *)
  | Rotate_speaker of int  (** retry under the next speaker, max attempts *)
  | Rotate_and_adjust of Vv_core.Session.policy * int
      (** rotate and adjust the electorate between attempts *)

type config = private {
  n : int;
  t : int;
  byzantine : Vv_sim.Types.node_id list;  (** persists across slots *)
  crash : (Vv_sim.Types.node_id * int * Vv_sim.Types.node_id list) list;
      (** nodes that crash at the given round in every attempt *)
  protocol : Vv_core.Runner.protocol;
  strategy : Vv_core.Strategy.t;
  bb : Vv_bb.Bb.choice;
  tie : Vv_ballot.Tie_break.t;
  retry : retry;
  seed : int;
}

val config :
  ?byzantine:Vv_sim.Types.node_id list ->
  ?crash:(Vv_sim.Types.node_id * int * Vv_sim.Types.node_id list) list ->
  ?protocol:Vv_core.Runner.protocol ->
  ?strategy:Vv_core.Strategy.t ->
  ?bb:Vv_bb.Bb.choice ->
  ?tie:Vv_ballot.Tie_break.t ->
  ?retry:retry ->
  ?seed:int ->
  n:int ->
  t:int ->
  unit ->
  config
(** Defaults: SCT protocol (exactness never sacrificed across the ledger),
    colluding adversary, rotate-speaker with 4 attempts. *)

type slot = {
  index : int;
  subject : int;
  decision : Oid.t option;  (** [None] = skipped after exhausting retries *)
  speaker : Vv_sim.Types.node_id;  (** speaker of the deciding attempt *)
  attempts : int;
  valid : bool;  (** tie-break-aware voting validity of the final attempt *)
  rounds_total : int;
}

type t

val create : config -> t
val height : t -> int
val slots : t -> slot list
(** In slot order. *)

val committed : t -> (int * Oid.t) list
(** (slot index, decision) for every decided slot. *)

val all_committed_valid : t -> bool
(** The ledger safety invariant: every committed slot carried voting
    validity. *)

val decide : t -> subject:int -> Oid.t list -> slot
(** Run one slot on the given per-node inputs (length [n]; Byzantine
    entries ignored). Appends and returns the slot. Equivalent to
    {!compute} at [index = height t]. *)

val compute :
  config -> ?speaker_base:int -> index:int -> subject:int -> Oid.t list -> slot
(** [compute cfg ~index ~subject inputs] decides the slot at [index] as a
    pure function of its arguments: attempt [k] (from 1) runs under seed
    [Rng.derive (Rng.derive cfg.seed index) k] with speaker
    [(speaker_base + k - 1) mod n] ([speaker_base] defaults to
    [index mod n]). Independent of every other slot and domain-safe, so
    callers may fan slots out across domains and merge in index order.
    Raises [Invalid_argument] on wrong arity or negative [index]. *)

val slot_to_json : slot -> Vv_prelude.Json.t
val slot_of_json : Vv_prelude.Json.t -> (slot, string) result
(** Lossless slot serialisation, used by {!Engine} snapshots. *)

val pp_slot : slot Fmt.t
