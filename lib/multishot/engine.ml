(* Multi-shot throughput engine: batches subjects into slots, shards slot
   computation across Executor domains, and accounts for slot pipelining.

   The engine owns the submit queue and the committed log; deciding is
   pure per subject ({!Ledger.compute}), so a group of positions fans out
   through {!Vv_exec.Executor.map} and merges in index order — the
   committed log is byte-identical at every [jobs] value, and an engine
   with [batch = 1] and [jobs = 1] reproduces {!Ledger.decide} exactly.

   Positions, slots and lanes.  Every accepted submission gets the next
   global position [p]; with batch size [b] it lands in slot [p / b],
   lane [p mod b].  All lanes of a slot run under the same speaker
   schedule (first speaker [slot mod n]) — one slot is one "instance" of
   the ledger protocol deciding [b] subjects at once.

   Pipelining model.  Phase 1 of a slot is the Byzantine-broadcast of its
   votes ([Bb.rounds] rounds per attempt); Phase 2 is the vote/decide
   exchange.  The broadcast layer is the serial resource: slot k+1 may
   start its Phase-1 broadcast as soon as slot k's broadcasts are done,
   overlapping slot k's Phase 2.  With per-slot broadcast occupancy
   [o_k = max-attempts_k * phase1] and duration [d_k = max-lane
   rounds_total_k],

     start_0 = 0,  start_{k+1} = start_k + o_k,
     pipelined_makespan = max_k (start_k + d_k).

   All three cost figures in {!stats} (per-instance sum, per-slot
   sequential sum, pipelined makespan) are computed from committed slots
   only, so they are deterministic and jobs-invariant. *)

module Oid = Vv_ballot.Option_id
module Rng = Vv_prelude.Rng
module Json = Vv_prelude.Json
module Executor = Vv_exec.Executor

type t = {
  cfg : Ledger.config;
  batch : int;
  jobs : int;
  mutable decided_rev : Ledger.slot list;
  mutable ndecided : int;
  mutable pending_rev : (int * Oid.t list) list;
  mutable npending : int;
}

let create ?(batch = 1) ?(jobs = 1) cfg =
  if batch < 1 then invalid_arg "Engine.create: batch must be >= 1";
  if jobs < 0 then invalid_arg "Engine.create: negative jobs";
  {
    cfg;
    batch;
    jobs;
    decided_rev = [];
    ndecided = 0;
    pending_rev = [];
    npending = 0;
  }

let config t = t.cfg
let batch t = t.batch
let height t = t.ndecided
let pending t = t.npending

let slot_of t position = position / t.batch
let lane_of t position = position mod t.batch

let decisions t = List.rev t.decided_rev

let decisions_from t from =
  List.filter (fun (s : Ledger.slot) -> s.Ledger.index >= from) (decisions t)

let submit t ~subject inputs =
  if List.length inputs <> t.cfg.Ledger.n then
    invalid_arg "Engine.submit: inputs must have length n";
  let position = t.ndecided + t.npending in
  t.pending_rev <- (subject, inputs) :: t.pending_rev;
  t.npending <- t.npending + 1;
  position

(* Decide the first [m] pending submissions (in submit order) and append
   them to the committed log. *)
let decide_group t m =
  if m <= 0 then []
  else begin
    let pending = List.rev t.pending_rev in
    let rec split k acc = function
      | rest when k = 0 -> (List.rev acc, rest)
      | [] -> (List.rev acc, [])
      | x :: rest -> split (k - 1) (x :: acc) rest
    in
    let now, later = split m [] pending in
    let items = Array.of_list now in
    let p0 = t.ndecided in
    let slots =
      Executor.map ~jobs:t.jobs ~count:(Array.length items) (fun i ->
          let subject, inputs = items.(i) in
          let position = p0 + i in
          Ledger.compute t.cfg
            ~speaker_base:(slot_of t position mod t.cfg.Ledger.n)
            ~index:position ~subject inputs)
    in
    Array.iter
      (fun s ->
        t.decided_rev <- s :: t.decided_rev;
        t.ndecided <- t.ndecided + 1)
      slots;
    t.pending_rev <- List.rev later;
    t.npending <- t.npending - Array.length items;
    Array.to_list slots
  end

(* Decide every pending submission that completes a full slot; partial
   trailing slots wait for more traffic (or a flush). *)
let step t =
  let total = t.ndecided + t.npending in
  let full = total / t.batch * t.batch in
  decide_group t (full - t.ndecided)

let flush t = decide_group t t.npending

(* Follower replication: append a slot decided elsewhere (a primary's
   decision stream) instead of computing it. Only meaningful on an
   engine that never takes submissions of its own. *)
let append_committed t (s : Ledger.slot) =
  if t.npending > 0 then
    Error "append_committed: engine has local pending submissions"
  else if s.Ledger.index < t.ndecided then Ok `Stale
  else if s.Ledger.index > t.ndecided then
    Error
      (Printf.sprintf "append_committed: gap (log height %d, slot index %d)"
         t.ndecided s.Ledger.index)
  else begin
    t.decided_rev <- s :: t.decided_rev;
    t.ndecided <- t.ndecided + 1;
    Ok `Applied
  end

let all_committed_valid t =
  List.for_all
    (fun (s : Ledger.slot) ->
      match s.Ledger.decision with Some _ -> s.Ledger.valid | None -> true)
    t.decided_rev

(* --- cost accounting --- *)

type stats = {
  decided : int;
  committed : int;
  skipped : int;
  slots_used : int;
  attempts_total : int;
  rounds_instances : int;
  rounds_sequential : int;
  rounds_pipelined : int;
  all_valid : bool;
}

let stats_of ~batch ~bb ~n ~t:tol (slots : Ledger.slot list) =
  if batch < 1 then invalid_arg "Engine.stats_of: batch must be >= 1";
  let phase1 = Vv_bb.Bb.rounds bb ~n ~t:tol in
  (* Group committed positions by slot, in position order. *)
  let groups = Hashtbl.create 16 in
  let max_slot = ref (-1) in
  List.iter
    (fun (s : Ledger.slot) ->
      let k = s.Ledger.index / batch in
      if k > !max_slot then max_slot := k;
      Hashtbl.replace groups k
        (s :: (Option.value ~default:[] (Hashtbl.find_opt groups k))))
    slots;
  let decided = List.length slots in
  let committed =
    List.length
      (List.filter (fun (s : Ledger.slot) -> s.Ledger.decision <> None) slots)
  in
  let attempts_total =
    List.fold_left (fun a (s : Ledger.slot) -> a + s.Ledger.attempts) 0 slots
  in
  let rounds_instances =
    List.fold_left (fun a (s : Ledger.slot) -> a + s.Ledger.rounds_total) 0 slots
  in
  let slots_used = Hashtbl.length groups in
  let seq = ref 0 and start = ref 0 and makespan = ref 0 in
  for k = 0 to !max_slot do
    match Hashtbl.find_opt groups k with
    | None -> ()
    | Some lanes ->
        let duration =
          List.fold_left
            (fun a (s : Ledger.slot) -> max a s.Ledger.rounds_total)
            0 lanes
        in
        let occupancy =
          phase1
          * List.fold_left
              (fun a (s : Ledger.slot) -> max a s.Ledger.attempts)
              0 lanes
        in
        seq := !seq + duration;
        makespan := max !makespan (!start + duration);
        (* The broadcast layer frees after this slot's (retried)
           Phase-1 broadcasts, but never before the slot itself could
           have finished broadcasting — occupancy is capped by
           duration so a short final attempt cannot let the next slot
           start before this one's own rounds elapse in sequence. *)
        start := !start + min occupancy duration
  done;
  {
    decided;
    committed;
    skipped = decided - committed;
    slots_used;
    attempts_total;
    rounds_instances;
    rounds_sequential = !seq;
    rounds_pipelined = !makespan;
    all_valid =
      List.for_all
        (fun (s : Ledger.slot) ->
          match s.Ledger.decision with
          | Some _ -> s.Ledger.valid
          | None -> true)
        slots;
  }

let stats t =
  stats_of ~batch:t.batch ~bb:t.cfg.Ledger.bb ~n:t.cfg.Ledger.n
    ~t:t.cfg.Ledger.t (decisions t)

(* --- one-shot convenience --- *)

let run ?batch ?jobs cfg requests =
  let t = create ?batch ?jobs cfg in
  List.iter (fun (subject, inputs) -> ignore (submit t ~subject inputs)) requests;
  ignore (flush t);
  (decisions t, stats t)

(* --- snapshots --- *)

let snapshot_version = 1

let to_snapshot t =
  Json.Obj
    [
      ("version", Json.Int snapshot_version);
      ("seed", Json.Int t.cfg.Ledger.seed);
      ("n", Json.Int t.cfg.Ledger.n);
      ("t", Json.Int t.cfg.Ledger.t);
      ("batch", Json.Int t.batch);
      ("decided", Json.List (List.map Ledger.slot_to_json (decisions t)));
    ]

let of_snapshot ?batch ?jobs cfg j =
  let ( let* ) = Result.bind in
  match j with
  | Json.Obj fields ->
      let int key =
        match List.assoc_opt key fields with
        | Some (Json.Int i) -> Ok i
        | _ -> Error (Printf.sprintf "snapshot: missing int field %S" key)
      in
      let* version = int "version" in
      let* () =
        if version = snapshot_version then Ok ()
        else Error (Printf.sprintf "snapshot: unsupported version %d" version)
      in
      let check key actual =
        let* recorded = int key in
        if recorded = actual then Ok ()
        else
          Error
            (Printf.sprintf "snapshot: %s mismatch (snapshot %d, config %d)"
               key recorded actual)
      in
      let* () = check "seed" cfg.Ledger.seed in
      let* () = check "n" cfg.Ledger.n in
      let* () = check "t" cfg.Ledger.t in
      let* snap_batch = int "batch" in
      let* batch =
        match batch with
        | None -> Ok snap_batch
        | Some b when b = snap_batch -> Ok b
        | Some b ->
            Error
              (Printf.sprintf "snapshot: batch mismatch (snapshot %d, config %d)"
                 snap_batch b)
      in
      let* decided =
        match List.assoc_opt "decided" fields with
        | Some (Json.List items) ->
            List.fold_left
              (fun acc item ->
                let* acc = acc in
                let* s = Ledger.slot_of_json item in
                Ok (s :: acc))
              (Ok []) items
            |> Result.map List.rev
        | _ -> Error "snapshot: missing decided list"
      in
      let* () =
        if
          List.mapi (fun i (s : Ledger.slot) -> (i, s.Ledger.index)) decided
          |> List.for_all (fun (i, idx) -> i = idx)
        then Ok ()
        else Error "snapshot: decided positions are not dense from 0"
      in
      let t = create ~batch ?jobs cfg in
      t.decided_rev <- List.rev decided;
      t.ndecided <- List.length decided;
      Ok t
  | _ -> Error "snapshot: expected an object"
