(* Deterministic round-based execution engine — zero-allocation hot path.

   Round structure (per round r >= 0):
     1. deliver all messages scheduled for r: the round's bucket is sorted
        into the delivery arena (grouped by recipient, sorted by sender,
        stable in scheduling order) and each node reads its inbox as an
        {!Inbox.t} window over the arena;
     2. fire retransmission timers due this round (chaos runs only): each
        destroyed-and-retryable delivery re-enters the network substrate;
     3. step every honest and not-yet-crashed node in id order (round 0 is
        [P.init]); each node pushes its sends into a reusable {!Outbox.t},
        which the engine expands against the topology and the crash filter
        (mid-broadcast crashes deliver to a subset, Lemma 4) into the
        round's send buffer;
     4. let the rushing adversary observe step 3's messages and inject the
        Byzantine nodes' messages, validated against the communication
        model (Property 6 relies on that validation); a statically passive
        adversary skips this step entirely;
     5. route every delivery — honest and adversarial alike — through the
        chaos substrate (Config.network): per-link omission, duplication,
        jitter clamped into the declared delay bound, partitions and
        outages; survivors get a delay and are scheduled.  A delivery the
        substrate destroys is final unless a retransmission policy
        (Config.retransmit) queues a capped-exponential-backoff retry.

   With [Network.none] and no retransmission (the defaults) step 2 is
   empty and step 5 degenerates to the plain delay assignment, drawing
   nothing from the chaos RNG — runs are byte-identical to the
   pre-substrate engine.

   Representation: a delivery in flight is not a record but an immediate
   meta word ([src lsl 20 lor dst]; the retry queue adds the attempt
   count in higher bits) alongside an untyped message slot, both living
   in preallocated growable buffers.  Future rounds are scheduled into a
   round-indexed circular bucket array (power-of-two capacity, slot =
   round land (cap - 1), grown on collision) instead of a Hashtbl of
   lists.  Together with the outbox/inbox-view protocol API this makes
   the steady-state round loop allocate almost nothing — the per-round
   budget is pinned by test_perf.ml, and every campaign golden is
   byte-identical to the list-based engine's output.

   Determinism contract (pinned by the goldens): the delay RNG is drawn
   once per routed delivery in routing order — retransmissions first (in
   queue order), then adversary plans (in plan order), then honest sends
   (node id order, emission order, neighbourhood order) — and each
   node's inbox lists arrivals sorted by sender id, ties in scheduling
   order.  The chaos RNG is consulted per transit in the same routing
   order.

   Round-count convention: the engine executes at most [Config.max_rounds]
   rounds, with indices 0 .. max_rounds - 1.  Execution stops early the
   round every honest node has decided; a run that exhausts the budget
   with undecided honest nodes is reported as a stall (an admissible
   outcome for safety-guaranteed protocols, Definition V.1).
   [rounds_used] is the *number* of rounds executed — equal to the trace's
   [total_rounds], and equal to [max_rounds] exactly on stalled runs —
   while [decision_round.(i)] is the 0-based *index* of the round node [i]
   decided in (so a node deciding in the last admissible round has
   [decision_round = max_rounds - 1]).  Historically the loop ran
   [max_rounds + 1] rounds and [rounds_used] was the last round index,
   leaving both off by one against the configured budget; the regression
   test in test_sim.ml pins the fixed convention.

   Each run additionally accumulates a structured {!Trace.snapshot}:
   per-round send counts, adversary injections, chaos-substrate activity
   (dropped / duplicated / retransmitted), per-node phase transitions (via
   [P.phase]) and decide rounds.  The snapshot is immutable and is the
   source of the result's {!Metrics.t}. *)

exception Invalid_adversary of string

(* Round-level tracing: enable with `Logs.Src.set_level Engine.log_src
   (Some Logs.Debug)` (the vvc CLI exposes this as --trace). *)
let log_src = Logs.Src.create "vv.engine" ~doc:"simulation engine rounds"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* --- packed deliveries and untyped buffers (engine-internal) --- *)

(* Meta word layout: [attempt lsl 40 | src lsl 20 | dst].  20 bits per id
   bounds n at ~10^6 nodes, far beyond simulation sizes; attempts are
   single digits. *)
let dst_bits = 20

let id_mask = (1 lsl dst_bits) - 1

let attempt_shift = 2 * dst_bits

let dummy = Obj.repr ()

(* A growable pair of parallel arrays: one immediate meta word and one
   untyped message per entry.  Cleared and refilled every round without
   re-allocation. *)
type buf = {
  mutable meta : int array;
  mutable bmsgs : Obj.t array;
  mutable blen : int;
}

let buf_make () = { meta = [||]; bmsgs = [||]; blen = 0 }

let buf_grow b =
  let cap = Array.length b.meta in
  let ncap = if cap = 0 then 8 else 2 * cap in
  let meta = Array.make ncap 0 and msgs = Array.make ncap dummy in
  Array.blit b.meta 0 meta 0 b.blen;
  Array.blit b.bmsgs 0 msgs 0 b.blen;
  b.meta <- meta;
  b.bmsgs <- msgs

let buf_push b m msg =
  if b.blen = Array.length b.meta then buf_grow b;
  b.meta.(b.blen) <- m;
  b.bmsgs.(b.blen) <- msg;
  b.blen <- b.blen + 1

let buf_clear b =
  (* Drop message references so finished rounds do not pin payloads. *)
  Array.fill b.bmsgs 0 b.blen dummy;
  b.blen <- 0

(* Round-indexed circular bucket scheduler: the replacement for the old
   Hashtbl-of-lists pending map.  Slot = round land (cap - 1); a slot
   remembers which round its contents belong to, and a collision with a
   non-empty slot doubles the capacity until every live bucket lands on a
   distinct slot (bounded by max_rounds, and never reached with the
   repo's delay bounds and the default capacity). *)
module Sched = struct
  type bucket = { mutable round : int; buf : buf }

  type t = {
    mutable cap : int;
    mutable buckets : bucket array;
    mutable live : int;  (* deliveries currently scheduled, all buckets *)
  }

  let create () =
    let cap = 16 in
    {
      cap;
      buckets = Array.init cap (fun _ -> { round = -1; buf = buf_make () });
      live = 0;
    }

  let grow t =
    let live =
      Array.to_list t.buckets |> List.filter (fun b -> b.buf.blen > 0)
    in
    let rec fit cap =
      let seen = Array.make cap false in
      let ok =
        List.for_all
          (fun b ->
            let s = b.round land (cap - 1) in
            if seen.(s) then false
            else begin
              seen.(s) <- true;
              true
            end)
          live
      in
      if ok then cap else fit (2 * cap)
    in
    let cap = fit (2 * t.cap) in
    let buckets = Array.init cap (fun _ -> { round = -1; buf = buf_make () }) in
    List.iter (fun b -> buckets.(b.round land (cap - 1)) <- b) live;
    t.cap <- cap;
    t.buckets <- buckets

  let rec bucket_for t round =
    let b = t.buckets.(round land (t.cap - 1)) in
    if b.round = round then b
    else if b.buf.blen = 0 then begin
      b.round <- round;
      b
    end
    else begin
      grow t;
      bucket_for t round
    end

  let push t round meta msg =
    buf_push (bucket_for t round).buf meta msg;
    t.live <- t.live + 1

  (* The bucket due at [round], or [None]; the caller consumes the buffer
     and must [buf_clear] it afterwards (the live count is surrendered
     here, on take). *)
  let take t round =
    let b = t.buckets.(round land (t.cap - 1)) in
    if b.round = round && b.buf.blen > 0 then begin
      t.live <- t.live - b.buf.blen;
      Some b.buf
    end
    else None

  let is_empty t = t.live = 0

  (* Fold over every delivery still scheduled, across all live buckets,
     in no particular order (callers sort).  Feeds the adversary's
     in-flight view; allocates nothing itself. *)
  let fold t f acc =
    let acc = ref acc in
    Array.iter
      (fun b ->
        for i = 0 to b.buf.blen - 1 do
          acc := f !acc b.round b.buf.meta.(i)
        done)
      t.buckets;
    !acc
end

module Make (P : Protocol.S) = struct
  type result = {
    config : Config.t;
    outputs : P.output option array;  (** indexed by node id; Byzantine slots stay [None] *)
    decision_round : int option array;
    rounds_used : int;
    metrics : Metrics.t;
    trace : Trace.snapshot;
    stalled : bool;  (** hit [max_rounds] with undecided honest nodes *)
  }

  let honest_outputs res =
    List.map (fun id -> res.outputs.(id)) (Config.honest_ids res.config)

  (* Monomorphic assoc over message keys (the old polymorphic List.assoc
     here was a hot-path hazard and wrong for messages with non-structural
     components). *)
  let rec assoc_msg msg = function
    | [] -> None
    | (m, dsts) :: rest ->
        if P.equal_msg m msg then Some dsts else assoc_msg msg rest

  let rec remove_msg msg = function
    | [] -> []
    | ((m, _) as hd) :: rest ->
        if P.equal_msg m msg then rest else hd :: remove_msg msg rest

  (* Validate one round of adversary output against the fault plan and the
     communication model. *)
  let validate_adversary (cfg : Config.t) (plans : P.msg Adversary.delivery_plan list) =
    let module A = Adversary in
    List.iter
      (fun (p : P.msg A.delivery_plan) ->
        if not (Fault.is_byzantine (Config.fault_of cfg p.A.src)) then
          raise
            (Invalid_adversary
               (Fmt.str "adversary sent from non-Byzantine node %d" p.A.src));
        if p.A.dst < 0 || p.A.dst >= cfg.n then
          raise (Invalid_adversary "adversary destination out of range"))
      plans;
    match cfg.comm with
    | Types.Point_to_point -> ()
    | Types.Local_broadcast ->
        (* A Byzantine sender may broadcast several messages in one round —
           honest nodes can emit several sends, too — but each message
           must reach its whole neighbourhood identically.  Per-recipient
           variation (equivocation) and partial broadcasts both surface as
           a message whose recipient set is not exactly the neighbourhood.
           (The old per-sender uniformity check wrongly rejected two
           distinct uniform broadcasts in one round; the exhaustive checker
           found that on its first sweep.) *)
        let by_src = Hashtbl.create 8 in
        List.iter
          (fun (p : P.msg Adversary.delivery_plan) ->
            let groups =
              match Hashtbl.find_opt by_src p.Adversary.src with
              | None -> []
              | Some l -> l
            in
            let groups =
              match assoc_msg p.Adversary.msg groups with
              | Some dsts ->
                  (p.Adversary.msg, p.Adversary.dst :: dsts)
                  :: remove_msg p.Adversary.msg groups
              | None -> (p.Adversary.msg, [ p.Adversary.dst ]) :: groups
            in
            Hashtbl.replace by_src p.Adversary.src groups)
          plans;
        Hashtbl.iter
          (fun src groups ->
            List.iter
              (fun (_msg, dsts) ->
                let dsts = List.sort_uniq Int.compare dsts in
                if not (List.equal Int.equal dsts (Config.reach cfg src)) then
                  raise
                    (Invalid_adversary
                       (Fmt.str
                          "node %d local-broadcast message did not reach \
                           its whole neighbourhood (equivocation or \
                           partial broadcast)"
                          src)))
              groups)
          by_src

  let run_exn (cfg : Config.t) ~inputs ?(adversary = Adversary.passive) () =
    let n = cfg.Config.n in
    let max_rounds = cfg.Config.max_rounds in
    let network = cfg.Config.network in
    let retransmit = cfg.Config.retransmit in
    let chaos_active = not (Network.is_none network) in
    let chaos = chaos_active || retransmit <> None in
    let master = Vv_prelude.Rng.create cfg.Config.seed in
    let node_rngs = Array.init n (fun _ -> Vv_prelude.Rng.split master) in
    let delay_rng = Vv_prelude.Rng.split master in
    (* Chaos draws come from a separate stream seeded by the network plan
       alone, so a chaos plan replays identically across engine seeds and
       the delay/node streams are untouched by its presence. *)
    let chaos_rng = Network.rng network in
    let delta = Delay.bound cfg.Config.delay in
    let debugging =
      match Logs.Src.level log_src with Some Logs.Debug -> true | _ -> false
    in
    (* Per-node context records, allocated once per run. *)
    let ctxs =
      Array.init n (fun id ->
          {
            Protocol.n;
            t = cfg.Config.t_max;
            me = id;
            comm = cfg.Config.comm;
            delta;
            rng = node_rngs.(id);
          })
    in
    let tb =
      Trace.builder ~chaos ~protocol:P.name ~adversary:adversary.Adversary.name
        ~n ~t:cfg.Config.t_max ()
    in
    (* Node states, written before they are first read (round 0 is init). *)
    let states : P.state array = Obj.magic (Array.make n dummy) in
    let outputs : P.output option array = Array.make n None in
    let decision_round : int option array = Array.make n None in
    let phases : string option array = Array.make n None in
    let note_phase ~round id state =
      let phase = P.phase state in
      match phases.(id) with
      | Some p when String.equal p phase -> ()
      | Some _ | None ->
          phases.(id) <- Some phase;
          Trace.record_phase tb ~round ~node:id ~phase
    in
    (* Last round (inclusive) each node still steps: crash nodes step
       through their crash round, Byzantine nodes never do. *)
    let step_until =
      Array.init n (fun id ->
          match cfg.Config.faults.(id) with
          | Fault.Honest -> max_int
          | Fault.Crash { at_round; _ } -> at_round
          | Fault.Byzantine -> -1)
    in
    let honest = Config.honest_ids cfg in
    let byzantine = Config.byzantine_ids cfg in
    let undecided_honest = ref (List.length honest) in
    let reach_fn = Config.reach cfg in
    (* Future deliveries and retransmission timers, as packed circular
       bucket queues. *)
    let pending = Sched.create () in
    let retries = Sched.create () in
    let schedule ~arrival ~src ~dst msg =
      if arrival < max_rounds then
        Sched.push pending arrival ((src lsl dst_bits) lor dst) msg
    in
    let queue_retry ~round ~attempt ~src ~dst msg =
      match retransmit with
      | Some policy when attempt < policy.Retransmit.max_attempts ->
          let next = attempt + 1 in
          let at = round + Retransmit.backoff policy ~attempt:next in
          if at < max_rounds then
            Sched.push retries at
              ((next lsl attempt_shift) lor (src lsl dst_bits) lor dst)
              msg
      | Some _ | None -> ()
    in
    (* Per-round chaos accounting, reset each round. *)
    let dropped = ref 0 and duplicated = ref 0 and retransmitted = ref 0 in
    let base_delay ~round ~src ~dst =
      Delay.resolve cfg.Config.delay delay_rng ~round ~src ~dst
    in
    (* Jitter must stay within the delay model's own delivery guarantee:
       the substrate reorders arrivals but cannot break the assumption
       honest protocols rely on.  The cap is per send round — constant
       (= delta_t) for the bounded models, the fairness cap under
       [Asynchronous], and the shrinking [gst + bound - round] admissible
       window pre-GST under [Eventually_synchronous]. *)
    let clamp ~round d =
      match Delay.max_delay cfg.Config.delay ~round with
      | Some b -> if d < b then d else b
      | None -> d
    in
    (* [route] is the send->delivery path: chaos verdict, delay
       assignment, arrival-time cut check, retransmission queuing.  The
       non-chaos path is exactly the legacy delay assignment (and draws
       nothing from the chaos stream). *)
    let route ~round ~attempt ~src ~dst msg =
      if not chaos_active then
        let arrival = round + base_delay ~round ~src ~dst in
        schedule ~arrival ~src ~dst msg
      else
        (* Packed verdict ([Network.transit_i]): no allocation per chaos
           delivery, identical draw order to the record form. *)
        let v = Network.transit_i network chaos_rng ~round ~src ~dst in
        if v = Network.dropped_i then begin
          incr dropped;
          queue_retry ~round ~attempt ~src ~dst msg
        end
        else begin
          let extra_delay = v lsr 1 in
          let arrival =
            round + clamp ~round (base_delay ~round ~src ~dst + extra_delay)
          in
          (* A message in flight into a partition/outage window is lost
             at the receiver. *)
          if Network.cut network ~round:arrival ~src ~dst then begin
            incr dropped;
            queue_retry ~round ~attempt ~src ~dst msg
          end
          else schedule ~arrival ~src ~dst msg;
          if v land 1 = 1 then begin
            incr duplicated;
            (* The duplicate gets its own delay draws and is never
               retried — the original covers the retransmission. *)
            let extra = Network.extra_delay network chaos_rng in
            let arrival =
              round + clamp ~round (base_delay ~round ~src ~dst + extra)
            in
            if Network.cut network ~round:arrival ~src ~dst then incr dropped
            else schedule ~arrival ~src ~dst msg
          end
        end
    in
    (* Delivery arena: each round's bucket is counting-sorted by key
       [dst * n + src] (stable in scheduling order), reproducing the old
       per-recipient stable-sort-by-sender inbox order exactly; nodes
       then read (offset, length) windows of the arena. *)
    let arena_srcs = ref [||] and arena_msgs = ref [||] in
    let counts = Array.make (n * n) 0 in
    let inbox_off = Array.make n 0 in
    let inbox_len = Array.make n 0 in
    let have_inbox = ref false in
    let sort_into_arena (b : buf) =
      let len = b.blen in
      if Array.length !arena_srcs < len then begin
        let cap = max len (2 * Array.length !arena_srcs) in
        arena_srcs := Array.make cap 0;
        arena_msgs := Array.make cap dummy
      end;
      Array.fill counts 0 (n * n) 0;
      for i = 0 to len - 1 do
        let m = b.meta.(i) in
        let key = ((m land id_mask) * n) + ((m lsr dst_bits) land id_mask) in
        counts.(key) <- counts.(key) + 1
      done;
      let cum = ref 0 in
      for key = 0 to (n * n) - 1 do
        if key mod n = 0 then inbox_off.(key / n) <- !cum;
        let c = counts.(key) in
        counts.(key) <- !cum;
        cum := !cum + c
      done;
      for d = 0 to n - 1 do
        inbox_len.(d) <-
          (if d = n - 1 then len else inbox_off.(d + 1)) - inbox_off.(d)
      done;
      for i = 0 to len - 1 do
        let m = b.meta.(i) in
        let src = (m lsr dst_bits) land id_mask in
        let key = ((m land id_mask) * n) + src in
        let pos = counts.(key) in
        counts.(key) <- pos + 1;
        !arena_srcs.(pos) <- src;
        !arena_msgs.(pos) <- b.bmsgs.(i)
      done
    in
    (* This round's inbox of node [id], as the old assoc-list shape (for
       the adversary's view only — honest nodes read the window). *)
    let segment_list id =
      if not !have_inbox then []
      else begin
        let off = inbox_off.(id) in
        let rec go i acc =
          if i < off then acc
          else
            go (i - 1)
              ((!arena_srcs.(i), (Obj.obj !arena_msgs.(i) : P.msg)) :: acc)
        in
        go (off + inbox_len.(id) - 1) []
      end
    in
    let inbox : P.msg Inbox.t = Inbox.create () in
    let outbox : P.msg Outbox.t = Outbox.create () in
    (* The round's expanded honest sends (after crash filtering), packed;
       doubles as the adversary's observation and the routing work list. *)
    let honest_buf = buf_make () in
    let expand_outbox ~round ~src =
      let reach = cfg.Config.reach_arr.(src) in
      let olen = Outbox.length outbox in
      for i = 0 to olen - 1 do
        let dst = Outbox.dst outbox i in
        let msg = Obj.repr (Outbox.msg outbox i) in
        if dst = Outbox.broadcast_dst then
          for j = 0 to Array.length reach - 1 do
            let d = reach.(j) in
            if Config.delivers cfg ~src ~round ~dst:d then
              buf_push honest_buf ((src lsl dst_bits) lor d) msg
          done
        else begin
          (* Honest nodes under local broadcast may only broadcast. *)
          (match cfg.Config.comm with
          | Types.Local_broadcast ->
              invalid_arg
                (Fmt.str "%s: node %d attempted unicast under local broadcast"
                   P.name src)
          | Types.Point_to_point -> ());
          let neighbour =
            match cfg.Config.topology with
            | None -> dst >= 0 && dst < n
            | Some _ ->
                let rec mem j =
                  j < Array.length reach && (reach.(j) = dst || mem (j + 1))
                in
                mem 0
          in
          if not neighbour then
            invalid_arg
              (Fmt.str "%s: node %d unicast to non-neighbour %d" P.name src dst);
          if Config.delivers cfg ~src ~round ~dst then
            buf_push honest_buf ((src lsl dst_bits) lor dst) msg
        end
      done
    in
    (* One reusable adversary view per run (the indexed-window analogue of
       the inbox): [round]/[sent_len] are refreshed each round, accessors
       read the live send buffer and arena, so observation is free until
       the adversary asks for content. *)
    let view =
      {
        Adversary.round = 0;
        sent_len = 0;
        sent_src = (fun i -> (honest_buf.meta.(i) lsr dst_bits) land id_mask);
        sent_dst = (fun i -> honest_buf.meta.(i) land id_mask);
        sent_msg = (fun i -> (Obj.obj honest_buf.bmsgs.(i) : P.msg));
        byz_inbox = segment_list;
        in_flight =
          (fun () ->
            Sched.fold pending
              (fun acc r m ->
                (r, (m lsr dst_bits) land id_mask, m land id_mask) :: acc)
              []
            |> List.sort compare);
        byzantine;
        n;
        reach = reach_fn;
      }
    in
    let rounds_used = ref 0 in
    let stalled = ref false in
    let newly_decided = ref [] in
    (try
       for round = 0 to max_rounds - 1 do
         rounds_used := round + 1;
         dropped := 0;
         duplicated := 0;
         retransmitted := 0;
         newly_decided := [];
         (* 1. deliver: sort this round's bucket into the arena. *)
         (match Sched.take pending round with
         | None -> have_inbox := false
         | Some b ->
             sort_into_arena b;
             buf_clear b;
             have_inbox := true);
         (* 2. fire retransmission timers due this round, in queue order. *)
         (match Sched.take retries round with
         | None -> ()
         | Some b ->
             (* The buffer must be released before routing (retries can
                queue further retries for later rounds, and routing this
                round's sends appends to [pending]) — copy it out via the
                round's scratch buffer.  Retries are rare enough that the
                swap is free in the common case. *)
             let len = b.blen in
             for i = 0 to len - 1 do
               incr retransmitted;
               let m = b.meta.(i) in
               route ~round
                 ~attempt:(m lsr attempt_shift)
                 ~src:((m lsr dst_bits) land id_mask)
                 ~dst:(m land id_mask) b.bmsgs.(i)
             done;
             buf_clear b);
         buf_clear honest_buf;
         (* 3. step honest and not-yet-crashed nodes in id order. *)
         for id = 0 to n - 1 do
           if round <= step_until.(id) then begin
             if !have_inbox then
               Inbox.set_view inbox ~srcs:!arena_srcs ~msgs:!arena_msgs
                 ~off:inbox_off.(id) ~len:inbox_len.(id)
             else Inbox.set_empty inbox;
             Outbox.clear outbox;
             let state' =
               if round = 0 then P.init ctxs.(id) (inputs id) ~outbox
               else P.step ctxs.(id) states.(id) ~round ~inbox ~outbox
             in
             states.(id) <- state';
             note_phase ~round id state';
             (match P.output state' with
             | Some _ as out -> (
                 match outputs.(id) with
                 | Some _ -> ()
                 | None ->
                     outputs.(id) <- out;
                     decision_round.(id) <- Some round;
                     newly_decided := id :: !newly_decided;
                     if Fault.is_honest cfg.Config.faults.(id) then
                       decr undecided_honest;
                     Trace.record_decide tb ~round ~node:id;
                     if debugging then
                       Log.debug (fun m ->
                           m "%s: node %d decided at round %d" P.name id round))
             | None -> ());
             expand_outbox ~round ~src:id
           end
         done;
         (* 4. rushing adversary: observes this round's honest messages.
            A statically passive adversary skips the view entirely. *)
         let plans =
           if adversary.Adversary.passive then []
           else begin
             view.Adversary.round <- round;
             view.Adversary.sent_len <- honest_buf.blen;
             let plans = adversary.Adversary.act view in
             (match plans with [] -> () | _ :: _ -> validate_adversary cfg plans);
             plans
           end
         in
         (* 5. route: adversary plans first, then honest sends — the RNG
            draw order the goldens pin. *)
         List.iter
           (fun (p : P.msg Adversary.delivery_plan) ->
             route ~round ~attempt:0 ~src:p.Adversary.src ~dst:p.Adversary.dst
               (Obj.repr p.Adversary.msg))
           plans;
         for i = 0 to honest_buf.blen - 1 do
           let m = honest_buf.meta.(i) in
           route ~round ~attempt:0
             ~src:((m lsr dst_bits) land id_mask)
             ~dst:(m land id_mask) honest_buf.bmsgs.(i)
         done;
         Trace.record_round tb ~round ~honest_sent:honest_buf.blen
           ~byz_sent:(List.length plans) ~dropped:!dropped
           ~duplicated:!duplicated ~retransmitted:!retransmitted
           ~newly_decided:!newly_decided;
         if debugging then
           Log.debug (fun m ->
               m "%s: round %d sent honest=%d byzantine=%d dropped=%d (%s)"
                 P.name round honest_buf.blen (List.length plans) !dropped
                 adversary.Adversary.name);
         if !undecided_honest = 0 then raise Exit;
         (* Fast-forward: when nothing is in flight, no timer can fire, the
            adversary is quiescent and every still-stepping node is inert,
            all remaining rounds are provably quiet — synthesize their
            (identical) trace records and jump to the stall verdict. *)
         if
           round < max_rounds - 1
           && Sched.is_empty pending && Sched.is_empty retries
           && (adversary.Adversary.passive || adversary.Adversary.quiescent ())
         then begin
           let all_inert = ref true in
           for id = 0 to n - 1 do
             (* Byzantine nodes never step (and hold no state); a crash
                node past its crash round is as quiet as one mid-life and
                inert.  Only nodes that will still step need the check. *)
             if step_until.(id) > round && not (P.inert states.(id)) then
               all_inert := false
           done;
           if !all_inert then begin
             for r = round + 1 to max_rounds - 1 do
               Trace.record_round tb ~round:r ~honest_sent:0 ~byz_sent:0
                 ~dropped:0 ~duplicated:0 ~retransmitted:0 ~newly_decided:[]
             done;
             rounds_used := max_rounds;
             stalled := true;
             raise Exit
           end
         end
       done;
       stalled := !undecided_honest > 0
     with Exit -> ());
    let trace = Trace.snapshot tb ~stalled:!stalled in
    {
      config = cfg;
      outputs;
      decision_round;
      rounds_used = !rounds_used;
      metrics = Metrics.of_trace trace;
      trace;
      stalled = !stalled;
    }

  let run (cfg : Config.t) ~inputs ?adversary () =
    match run_exn cfg ~inputs ?adversary () with
    | res -> Ok res
    | exception Invalid_adversary reason -> Error (`Invalid_adversary reason)
end
