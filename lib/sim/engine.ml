(* Deterministic round-based execution engine.

   Round structure (per round r >= 0):
     1. deliver all messages scheduled for r, forming each node's inbox;
     2. fire retransmission timers due this round (chaos runs only): each
        destroyed-and-retryable delivery re-enters the network substrate;
     3. step every honest and not-yet-crashed node in id order (round 0 is
        [P.init]);
     4. expand envelopes to per-recipient deliveries and apply the crash
        filter (mid-broadcast crashes deliver to a subset, Lemma 4) via the
        fault plans compiled at Config.make;
     5. let the rushing adversary observe step 4's messages and inject the
        Byzantine nodes' messages, validated against the communication
        model (Property 6 relies on that validation);
     6. route every delivery — honest and adversarial alike — through the
        chaos substrate (Config.network): per-link omission, duplication,
        jitter clamped into the declared delay bound, partitions and
        outages; survivors get a delay and are scheduled.  A delivery the
        substrate destroys is final unless a retransmission policy
        (Config.retransmit) queues a capped-exponential-backoff retry.

   With [Network.none] and no retransmission (the defaults) step 2 is
   empty and step 6 degenerates to the plain delay assignment, drawing
   nothing from the chaos RNG — runs are byte-identical to the
   pre-substrate engine.

   Round-count convention: the engine executes at most [Config.max_rounds]
   rounds, with indices 0 .. max_rounds - 1.  Execution stops early the
   round every honest node has decided; a run that exhausts the budget
   with undecided honest nodes is reported as a stall (an admissible
   outcome for safety-guaranteed protocols, Definition V.1).
   [rounds_used] is the *number* of rounds executed — equal to the trace's
   [total_rounds], and equal to [max_rounds] exactly on stalled runs —
   while [decision_round.(i)] is the 0-based *index* of the round node [i]
   decided in (so a node deciding in the last admissible round has
   [decision_round = max_rounds - 1]).  Historically the loop ran
   [max_rounds + 1] rounds and [rounds_used] was the last round index,
   leaving both off by one against the configured budget; the regression
   test in test_sim.ml pins the fixed convention.

   Each run additionally accumulates a structured {!Trace.snapshot}:
   per-round send counts, adversary injections, chaos-substrate activity
   (dropped / duplicated / retransmitted), per-node phase transitions (via
   [P.phase]) and decide rounds.  The snapshot is immutable and is the
   source of the result's {!Metrics.t}. *)

exception Invalid_adversary of string

(* Round-level tracing: enable with `Logs.Src.set_level Engine.log_src
   (Some Logs.Debug)` (the vvc CLI exposes this as --trace). *)
let log_src = Logs.Src.create "vv.engine" ~doc:"simulation engine rounds"

module Log = (val Logs.src_log log_src : Logs.LOG)

module Make (P : Protocol.S) = struct
  type result = {
    config : Config.t;
    outputs : P.output option array;  (** indexed by node id; Byzantine slots stay [None] *)
    decision_round : int option array;
    rounds_used : int;
    metrics : Metrics.t;
    trace : Trace.snapshot;
    stalled : bool;  (** hit [max_rounds] with undecided honest nodes *)
  }

  let honest_outputs res =
    List.map (fun id -> res.outputs.(id)) (Config.honest_ids res.config)

  (* Validate one round of adversary output against the fault plan and the
     communication model. *)
  let validate_adversary (cfg : Config.t) (plans : P.msg Adversary.delivery_plan list) =
    let module A = Adversary in
    List.iter
      (fun (p : P.msg A.delivery_plan) ->
        if not (Fault.is_byzantine (Config.fault_of cfg p.A.src)) then
          raise
            (Invalid_adversary
               (Fmt.str "adversary sent from non-Byzantine node %d" p.A.src));
        if p.A.dst < 0 || p.A.dst >= cfg.n then
          raise (Invalid_adversary "adversary destination out of range"))
      plans;
    match cfg.comm with
    | Types.Point_to_point -> ()
    | Types.Local_broadcast ->
        (* A Byzantine sender may broadcast several messages in one round —
           honest nodes can emit several envelopes, too — but each message
           must reach its whole neighbourhood identically.  Per-recipient
           variation (equivocation) and partial broadcasts both surface as
           a message whose recipient set is not exactly the neighbourhood.
           (The old per-sender uniformity check wrongly rejected two
           distinct uniform broadcasts in one round; the exhaustive checker
           found that on its first sweep.) *)
        let by_src = Hashtbl.create 8 in
        List.iter
          (fun (p : P.msg Adversary.delivery_plan) ->
            let groups =
              match Hashtbl.find_opt by_src p.Adversary.src with
              | None -> []
              | Some l -> l
            in
            let groups =
              match List.assoc_opt p.Adversary.msg groups with
              | Some dsts ->
                  (p.Adversary.msg, p.Adversary.dst :: dsts)
                  :: List.remove_assoc p.Adversary.msg groups
              | None -> (p.Adversary.msg, [ p.Adversary.dst ]) :: groups
            in
            Hashtbl.replace by_src p.Adversary.src groups)
          plans;
        Hashtbl.iter
          (fun src groups ->
            List.iter
              (fun (_msg, dsts) ->
                let dsts = List.sort_uniq Int.compare dsts in
                if dsts <> Config.reach cfg src then
                  raise
                    (Invalid_adversary
                       (Fmt.str
                          "node %d local-broadcast message did not reach \
                           its whole neighbourhood (equivocation or \
                           partial broadcast)"
                          src)))
              groups)
          by_src

  let expand_envelopes cfg ~round ~src envelopes =
    (* Honest nodes under local broadcast may only broadcast. *)
    let expand (e : P.msg Types.envelope) =
      match (e.Types.dest, cfg.Config.comm) with
      | Types.Unicast _, Types.Local_broadcast ->
          invalid_arg
            (Fmt.str "%s: node %d attempted unicast under local broadcast"
               P.name src)
      | Types.Unicast dst, Types.Point_to_point ->
          if not (List.mem dst (Config.reach cfg src)) then
            invalid_arg
              (Fmt.str "%s: node %d unicast to non-neighbour %d" P.name src dst);
          [ { Types.src; dst; msg = e.Types.payload } ]
      | Types.Broadcast, _ ->
          List.map
            (fun dst -> { Types.src; dst; msg = e.Types.payload })
            (Config.reach cfg src)
    in
    let deliveries = List.concat_map expand envelopes in
    (* Crash filter: a node crashing this round reaches only its chosen
       subset; afterwards it is silent (the engine stops stepping it).
       [Config.delivers] is the plan compiled to an O(1) check. *)
    List.filter (fun (d : P.msg Types.delivery) ->
        Config.delivers cfg ~src ~round ~dst:d.Types.dst)
      deliveries

  let run_exn (cfg : Config.t) ~inputs ?(adversary = Adversary.passive) () =
    let n = cfg.Config.n in
    let network = cfg.Config.network in
    let retransmit = cfg.Config.retransmit in
    let chaos_active = not (Network.is_none network) in
    let chaos = chaos_active || retransmit <> None in
    let master = Vv_prelude.Rng.create cfg.Config.seed in
    let node_rngs = Array.init n (fun _ -> Vv_prelude.Rng.split master) in
    let delay_rng = Vv_prelude.Rng.split master in
    (* Chaos draws come from a separate stream seeded by the network plan
       alone, so a chaos plan replays identically across engine seeds and
       the delay/node streams are untouched by its presence. *)
    let chaos_rng = Network.rng network in
    let delta = Delay.bound cfg.Config.delay in
    let ctx_of id =
      {
        Protocol.n;
        t = cfg.Config.t_max;
        me = id;
        comm = cfg.Config.comm;
        delta;
        rng = node_rngs.(id);
      }
    in
    let tb =
      Trace.builder ~chaos ~protocol:P.name ~adversary:adversary.Adversary.name
        ~n ~t:cfg.Config.t_max ()
    in
    let states : P.state option array = Array.make n None in
    let outputs : P.output option array = Array.make n None in
    let decision_round : int option array = Array.make n None in
    let phases : string option array = Array.make n None in
    let note_phase ~round id state =
      let phase = P.phase state in
      if phases.(id) <> Some phase then begin
        phases.(id) <- Some phase;
        Trace.record_phase tb ~round ~node:id ~phase
      end
    in
    (* Messages scheduled for future rounds. *)
    let pending : (int, P.msg Types.delivery list) Hashtbl.t =
      Hashtbl.create 64
    in
    let schedule_at arrival (d : P.msg Types.delivery) =
      let cur =
        match Hashtbl.find_opt pending arrival with None -> [] | Some l -> l
      in
      Hashtbl.replace pending arrival (d :: cur)
    in
    (* Retransmission timers: round -> (delivery, attempt) in fire order. *)
    let retries : (int, (P.msg Types.delivery * int) list) Hashtbl.t =
      Hashtbl.create 16
    in
    let queue_retry ~round ~attempt (d : P.msg Types.delivery) =
      match retransmit with
      | Some policy when attempt < policy.Retransmit.max_attempts ->
          let next = attempt + 1 in
          let at = round + Retransmit.backoff policy ~attempt:next in
          if at < cfg.Config.max_rounds then begin
            let cur =
              match Hashtbl.find_opt retries at with None -> [] | Some l -> l
            in
            Hashtbl.replace retries at ((d, next) :: cur)
          end
      | Some _ | None -> ()
    in
    (* Per-round chaos accounting, reset each round. *)
    let dropped = ref 0 and duplicated = ref 0 and retransmitted = ref 0 in
    let base_delay ~round (d : P.msg Types.delivery) =
      Delay.resolve cfg.Config.delay delay_rng ~round ~src:d.Types.src
        ~dst:d.Types.dst
    in
    (* Jitter must stay within the declared synchrony bound delta_t: the
       substrate reorders arrivals but cannot break the assumption honest
       protocols rely on. *)
    let clamp d = match delta with Some b -> min d b | None -> d in
    (* [route] is the send->delivery path: chaos verdict, delay
       assignment, arrival-time cut check, retransmission queuing.  The
       non-chaos path is exactly the legacy delay assignment (and draws
       nothing from the chaos stream). *)
    let route ~round ~attempt (d : P.msg Types.delivery) =
      if not chaos_active then
        schedule_at (round + base_delay ~round d) d
      else
        match
          Network.transit network chaos_rng ~round ~src:d.Types.src
            ~dst:d.Types.dst
        with
        | Network.Dropped ->
            incr dropped;
            queue_retry ~round ~attempt d
        | Network.Deliver { extra_delay; duplicate } ->
            let copy ~retryable extra =
              let arrival = round + clamp (base_delay ~round d + extra) in
              (* A message in flight into a partition/outage window is
                 lost at the receiver. *)
              if
                Network.cut network ~round:arrival ~src:d.Types.src
                  ~dst:d.Types.dst
              then begin
                incr dropped;
                if retryable then queue_retry ~round ~attempt d
              end
              else schedule_at arrival d
            in
            copy ~retryable:true extra_delay;
            if duplicate then begin
              incr duplicated;
              (* The duplicate gets its own delay draws and is never
                 retried — the original covers the retransmission. *)
              copy ~retryable:false (Network.extra_delay network chaos_rng)
            end
    in
    let inbox_at round =
      match Hashtbl.find_opt pending round with
      | None -> [||]
      | Some l ->
          Hashtbl.remove pending round;
          (* Stable per-recipient inboxes ordered by (sender, send order). *)
          let boxes = Array.make n [] in
          List.iter
            (fun (d : P.msg Types.delivery) ->
              boxes.(d.Types.dst) <- (d.Types.src, d.Types.msg) :: boxes.(d.Types.dst))
            l;
          Array.map
            (List.stable_sort (fun (a, _) (b, _) -> Int.compare a b))
            boxes
    in
    let steps_node id = Fault.is_honest (Config.fault_of cfg id)
                        || (match Config.fault_of cfg id with
                            | Fault.Crash _ -> true
                            | Fault.Honest | Fault.Byzantine -> false)
    in
    let honest = Config.honest_ids cfg in
    let byzantine = Config.byzantine_ids cfg in
    let all_honest_decided () =
      List.for_all (fun id -> outputs.(id) <> None) honest
    in
    let rounds_used = ref 0 in
    let stalled = ref false in
    (try
       for round = 0 to cfg.Config.max_rounds - 1 do
         rounds_used := round + 1;
         dropped := 0;
         duplicated := 0;
         retransmitted := 0;
         let boxes = inbox_at round in
         (* Fire retransmission timers due this round, in queue order. *)
         (match Hashtbl.find_opt retries round with
         | None -> ()
         | Some l ->
             Hashtbl.remove retries round;
             List.iter
               (fun (d, attempt) ->
                 incr retransmitted;
                 route ~round ~attempt d)
               (List.rev l));
         let honest_sent = ref [] in
         let newly_decided = ref [] in
         (* Step honest and not-yet-crashed nodes in id order. *)
         for id = 0 to n - 1 do
           let plan = Config.fault_of cfg id in
           if steps_node id && not (Fault.is_crashed plan ~round) then begin
             let inbox = if Array.length boxes = 0 then [] else boxes.(id) in
             let state', envelopes =
               if round = 0 then P.init (ctx_of id) (inputs id)
               else
                 match states.(id) with
                 | None -> assert false
                 | Some s -> P.step (ctx_of id) s ~round ~inbox
             in
             states.(id) <- Some state';
             note_phase ~round id state';
             (match P.output state' with
             | Some _ as out when outputs.(id) = None ->
                 outputs.(id) <- out;
                 decision_round.(id) <- Some round;
                 newly_decided := id :: !newly_decided;
                 Trace.record_decide tb ~round ~node:id;
                 Log.debug (fun m ->
                     m "%s: node %d decided at round %d" P.name id round)
             | _ -> ());
             let deliveries = expand_envelopes cfg ~round ~src:id envelopes in
             honest_sent := List.rev_append deliveries !honest_sent
           end
         done;
         let honest_sent = List.rev !honest_sent in
         (* Rushing adversary: observes this round's honest messages. *)
         let byz_inbox =
           List.map
             (fun id ->
               ( id,
                 if Array.length boxes = 0 then [] else boxes.(id) ))
             byzantine
         in
         let view =
           { Adversary.round; honest_sent; byz_inbox; byzantine; n;
             reach = Config.reach cfg }
         in
         let plans = adversary.Adversary.act view in
         validate_adversary cfg plans;
         List.iter
           (fun (p : P.msg Adversary.delivery_plan) ->
             route ~round ~attempt:0
               { Types.src = p.Adversary.src; dst = p.Adversary.dst; msg = p.Adversary.msg })
           plans;
         List.iter (fun d -> route ~round ~attempt:0 d) honest_sent;
         Trace.record_round tb ~round ~honest_sent:(List.length honest_sent)
           ~byz_sent:(List.length plans) ~dropped:!dropped
           ~duplicated:!duplicated ~retransmitted:!retransmitted
           ~newly_decided:!newly_decided;
         Log.debug (fun m ->
             m "%s: round %d sent honest=%d byzantine=%d dropped=%d (%s)"
               P.name round
               (List.length honest_sent) (List.length plans) !dropped
               adversary.Adversary.name);
         if all_honest_decided () then raise Exit
       done;
       stalled := not (all_honest_decided ())
     with Exit -> ());
    let trace = Trace.snapshot tb ~stalled:!stalled in
    {
      config = cfg;
      outputs;
      decision_round;
      rounds_used = !rounds_used;
      metrics = Metrics.of_trace trace;
      trace;
      stalled = !stalled;
    }

  let run (cfg : Config.t) ~inputs ?adversary () =
    match run_exn cfg ~inputs ?adversary () with
    | res -> Ok res
    | exception Invalid_adversary reason -> Error (`Invalid_adversary reason)
end
