(** Shared simulator vocabulary: node identities, communication models and
    the adversary's view of a concrete message in flight.

    Message *emission* lives in {!Outbox} (protocols push sends into a
    reusable buffer) and message *reception* in {!Inbox} (an indexed
    read-only view over the engine's per-round delivery arena); the old
    [envelope] list API was retired with the zero-allocation engine. *)

type node_id = int

type comm_model =
  | Point_to_point
      (** a Byzantine node may send different messages to different nodes *)
  | Local_broadcast
      (** every message is received identically by all nodes (Section
          III-B3, complete graph) *)

val pp_comm_model : comm_model Fmt.t

type 'msg delivery = { src : node_id; dst : node_id; msg : 'msg }
(** A concrete point-to-point message in flight, as observed by the
    rushing adversary ({!Adversary.view}). *)
