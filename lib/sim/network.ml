(* Chaos network substrate (see network.mli for the model).

   The substrate sits between the engine's send step and the delay layer:
   every delivery is offered to [transit] at its send round, and the engine
   re-checks [cut] at the computed arrival round so messages in flight into
   a partition or outage window are lost.  All decisions are driven by a
   chaos-private RNG seeded from [seed] alone; because the engine offers
   deliveries in a deterministic order, a [(t, seed)] pair replays the same
   fault pattern bit-for-bit.

   Guarded draws: the RNG is consulted only for axes with strictly
   positive intensity, and never for self-deliveries or already-cut links.
   Adding a zero axis to a plan therefore cannot shift the decisions made
   for the others. *)

type window = { from_round : int; until_round : int }

type partition = { window : window; isolated : Types.node_id list }

type outage = { node : Types.node_id; window : window }

type t = {
  drop : float;
  duplicate : float;
  jitter : int;
  partitions : partition list;
  outages : outage list;
  seed : int;
}

let none =
  { drop = 0.0; duplicate = 0.0; jitter = 0; partitions = []; outages = [];
    seed = 0 }

let validate_window what { from_round; until_round } =
  if from_round < 0 then
    invalid_arg (Fmt.str "Network.make: %s window starts before round 0" what);
  if until_round < from_round then
    invalid_arg (Fmt.str "Network.make: %s window ends before it starts" what)

let make ?(drop = 0.0) ?(duplicate = 0.0) ?(jitter = 0) ?(partitions = [])
    ?(outages = []) ?(seed = 0xc4a05) () =
  let prob what p =
    if not (p >= 0.0 && p < 1.0) then
      invalid_arg (Fmt.str "Network.make: %s must be in [0, 1)" what)
  in
  prob "drop" drop;
  prob "duplicate" duplicate;
  if jitter < 0 then invalid_arg "Network.make: jitter must be >= 0";
  List.iter (fun (p : partition) -> validate_window "partition" p.window)
    partitions;
  List.iter
    (fun (o : outage) ->
      validate_window "outage" o.window;
      if o.node < 0 then invalid_arg "Network.make: outage node out of range")
    outages;
  List.iter
    (fun (p : partition) ->
      List.iter
        (fun id ->
          if id < 0 then
            invalid_arg "Network.make: partition node out of range")
        p.isolated)
    partitions;
  { drop; duplicate; jitter; partitions; outages; seed }

let is_none t =
  t.drop = 0.0 && t.duplicate = 0.0 && t.jitter = 0 && t.partitions = []
  && t.outages = []

let window_active w ~round = round >= w.from_round && round < w.until_round

(* Explicit recursion instead of [List.exists fun ...]: the closures would
   capture (round, src, dst) and so allocate on every call, putting heap
   traffic on the engine's per-delivery hot path even for an inert
   substrate (test_perf.ml pins the inert path at zero words). *)
let rec partition_cut ~round ~src ~dst = function
  | [] -> false
  | (p : partition) :: rest ->
      (window_active p.window ~round
      && List.mem src p.isolated <> List.mem dst p.isolated)
      || partition_cut ~round ~src ~dst rest

let rec outage_cut ~round ~src ~dst = function
  | [] -> false
  | (o : outage) :: rest ->
      (window_active o.window ~round && (o.node = src || o.node = dst))
      || outage_cut ~round ~src ~dst rest

let cut t ~round ~src ~dst =
  src <> dst
  && (partition_cut ~round ~src ~dst t.partitions
     || outage_cut ~round ~src ~dst t.outages)

let rng t = Vv_prelude.Rng.create (0x1dea7 lxor (t.seed * 0x9e3779b9))

type verdict = Dropped | Deliver of { extra_delay : int; duplicate : bool }

let extra_delay t rng =
  if t.jitter = 0 then 0 else Vv_prelude.Rng.int rng (t.jitter + 1)

let dropped_i = -1

(* The packed form of [transit]: the engine's hot path calls this so a
   chaos delivery costs zero allocations.  Draw order is identical to
   [transit] (which is now a thin decoder over this), so traces and
   goldens are unchanged.  Layout: [extra_delay lsl 1 lor duplicate];
   [dropped_i] for a destroyed delivery. *)
let transit_i t rng ~round ~src ~dst =
  if src = dst then 0
  else if cut t ~round ~src ~dst then dropped_i
  else if t.drop > 0.0 && Vv_prelude.Rng.float rng < t.drop then dropped_i
  else
    let extra = extra_delay t rng in
    let duplicate =
      t.duplicate > 0.0 && Vv_prelude.Rng.float rng < t.duplicate
    in
    (extra lsl 1) lor (if duplicate then 1 else 0)

let transit t rng ~round ~src ~dst =
  match transit_i t rng ~round ~src ~dst with
  | v when v = dropped_i -> Dropped
  | v -> Deliver { extra_delay = v lsr 1; duplicate = v land 1 = 1 }

let pp ppf t =
  if is_none t then Fmt.string ppf "none"
  else
    Fmt.pf ppf "drop=%.2f dup=%.2f jitter=%d partitions=%d outages=%d seed=%#x"
      t.drop t.duplicate t.jitter
      (List.length t.partitions)
      (List.length t.outages) t.seed
