(** Deterministic round-based execution engine.

    Executes a {!Protocol.S} state machine on every honest (and
    not-yet-crashed) node, delivers messages according to the configured
    delay model, applies the crash filter of {!Fault}, and hands a rushing
    full-information adversary this round's honest traffic before letting it
    inject Byzantine messages. The engine validates adversary output against
    the communication model: equivocation or partial broadcast under
    {!Types.Local_broadcast} is an invalid adversary (this is the
    restriction behind Property 6).

    Every run additionally produces an immutable {!Trace.snapshot} with
    per-round send counts, adversary injections, per-node phase transitions
    and decide rounds. *)

exception Invalid_adversary of string

val log_src : Logs.src
(** Round-level tracing source ("vv.engine"); set its level to [Debug] to
    watch sends and decisions per round. *)

module Make (P : Protocol.S) : sig
  type result = {
    config : Config.t;
    outputs : P.output option array;
        (** indexed by node id; Byzantine slots stay [None] *)
    decision_round : int option array;
        (** 0-based index of the round each node decided in *)
    rounds_used : int;
        (** number of rounds executed (round indices 0 .. [rounds_used] - 1);
            equals the trace's [total_rounds], at most [Config.max_rounds],
            and exactly [max_rounds] on stalled runs *)
    metrics : Metrics.t;  (** derived from [trace]; immutable *)
    trace : Trace.snapshot;
    stalled : bool;
        (** true when [max_rounds] elapsed with undecided honest nodes — an
            admissible outcome for safety-guaranteed protocols (Def. V.1) *)
  }

  val honest_outputs : result -> P.output option list
  (** Outputs of the honest nodes, in node-id order. *)

  val run :
    Config.t ->
    inputs:(Types.node_id -> P.input) ->
    ?adversary:P.msg Adversary.t ->
    unit ->
    (result, [ `Invalid_adversary of string ]) Stdlib.result
  (** Runs to decision or [max_rounds]. [inputs] is consulted for honest and
      crash-faulty nodes (Byzantine inputs are the adversary's business).
      An adversary violating the fault plan or the communication model
      yields [Error (`Invalid_adversary reason)] instead of raising — the
      form batch executors want. *)

  val run_exn :
    Config.t ->
    inputs:(Types.node_id -> P.input) ->
    ?adversary:P.msg Adversary.t ->
    unit ->
    result
  (** Same, but raises {!Invalid_adversary} — the original behaviour, kept
      for interactive callers and tests that assert on the exception. *)
end
