(** Per-node fault plans (Section III-B1).

    Crash-faulty nodes run the honest protocol until their crash round, then
    deliver that round's messages only to a chosen subset and fall silent —
    the mid-broadcast crash behind Lemma 4's [X_i <> X_G]. *)

type t =
  | Honest
  | Byzantine
  | Crash of { at_round : int; deliver_to : Types.node_id list }

val is_byzantine : t -> bool
val is_honest : t -> bool

val is_crashed : t -> round:int -> bool
(** True strictly after the crash round. *)

val delivers : t -> round:int -> dst:Types.node_id -> bool
(** Whether a message sent in [round] reaches [dst] under this plan. *)

type compiled
(** A plan specialised to a system size: the crash [deliver_to] list
    precomputed as a bool array keyed by node id, making the engine's
    per-delivery check O(1). Built once by {!Config.make}. *)

val compile : n:int -> t -> compiled
(** Raises [Invalid_argument] when a [deliver_to] id is outside [0, n). *)

val compiled_delivers : compiled -> round:int -> dst:Types.node_id -> bool
(** Agrees with {!delivers} on every ([round], [dst]) for the plan it was
    compiled from (pinned by a qcheck property in the test suite). *)

val pp : t Fmt.t
