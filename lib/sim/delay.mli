(** Message delay models — the simulator's synchrony axis.

    A message sent in round [r] arrives at the start of round [r + delay]
    with [delay >= 1]. [Synchronous] is the paper's lock-step model;
    [Uniform] staggers arrivals for the incremental-threshold protocol
    (Algorithm 3) and models partial synchrony with a known bound;
    [Asynchronous] and [Eventually_synchronous] make the synchrony model
    first-class (Tseng, arXiv 1608.07923): no protocol-visible bound at
    all, and the GST model of partial synchrony, respectively. *)

type schedule = round:int -> src:Types.node_id -> dst:Types.node_id -> int

type t =
  | Synchronous  (** every message arrives the next round *)
  | Fixed of int
  | Uniform of { lo : int; hi : int }
  | Per_message of schedule  (** unbounded user-supplied model *)
  | Adversarial of { bound : int; schedule : schedule }
      (** an adversary-chosen schedule under a declared bound [delta_t] —
          the strong adversary's message-delaying power; [resolve] raises
          when the schedule breaks its own bound *)
  | Asynchronous of { fairness : int; schedule : schedule option }
      (** genuine asynchrony: {!bound} is [None] (protocols see no
          delta_t), delivery order is scheduler-chosen — uniformly random
          without a [schedule], adversary-chosen with one — under the
          fairness cap [1 <= delay <= fairness].  The cap is the liveness
          guarantee that every honest-to-honest message is eventually
          delivered, not a synchrony assumption: honest protocols are not
          told it. *)
  | Eventually_synchronous of { gst : int; bound : int; schedule : schedule option }
      (** the GST model: arbitrary scheduling before the global
          stabilization time — any message sent at round [r < gst] may be
          held back, but must arrive by [gst + bound] — and
          [Adversarial]-style bounded delay ([<= bound]) from [gst] on.
          Without a [schedule], delays are drawn uniformly over the
          admissible range, so pre-GST chaos and post-GST stabilization
          compose deterministically from one engine seed. *)

val validate : t -> unit
(** Raises [Invalid_argument] on delays below 1, inverted bounds,
    [fairness < 1], [gst < 0] or a GST [bound < 1]. *)

val validate_schedule : t -> n:int -> max_rounds:int -> unit
(** Probe a user-supplied schedule over every [(round, src, dst)] in
    [\[0, max_rounds) x \[0, n)^2] and raise [Invalid_argument] naming the
    offending triple — and the declared bound it broke — on a delay below
    1, above the declared bound ([Adversarial], [Asynchronous]), or past
    the GST admissibility cap ([gst + bound - round] before [gst], [bound]
    after).  {!Config.make} calls this so malformed schedules fail at
    construction instead of mid-run. Schedules must be pure functions of
    their arguments. No-op for the built-in randomized models. *)

val bound : t -> int option
(** The delay upper bound (the paper's [delta_t], in rounds) honest nodes
    may rely on; [None] for [Per_message] and [Asynchronous].  For
    [Eventually_synchronous] this is the *eventual* bound that holds from
    GST on — what a partially-synchronous protocol is promised. *)

val max_delay : t -> round:int -> int option
(** The largest delay any message sent at [round] can be assigned — the
    engine's clamp for chaos-substrate jitter, so injected reordering
    never breaks the model's own delivery guarantee.  Equals {!bound} for
    every round-independent model; [Some fairness] for [Asynchronous];
    for [Eventually_synchronous] it is [gst + bound - round] before GST
    (pre-GST messages must still land by [gst + bound]) and [bound]
    after. *)

val resolve :
  t -> Vv_prelude.Rng.t -> round:int -> src:Types.node_id -> dst:Types.node_id -> int

val pp : t Fmt.t
