(** Message delay models.

    A message sent in round [r] arrives at the start of round [r + delay]
    with [delay >= 1]. [Synchronous] is the paper's lock-step model;
    [Uniform] staggers arrivals for the incremental-threshold protocol
    (Algorithm 3) and models partial synchrony. *)

type schedule = round:int -> src:Types.node_id -> dst:Types.node_id -> int

type t =
  | Synchronous  (** every message arrives the next round *)
  | Fixed of int
  | Uniform of { lo : int; hi : int }
  | Per_message of schedule  (** unbounded user-supplied model *)
  | Adversarial of { bound : int; schedule : schedule }
      (** an adversary-chosen schedule under a declared bound [delta_t] —
          the strong adversary's message-delaying power; [resolve] raises
          when the schedule breaks its own bound *)

val validate : t -> unit
(** Raises [Invalid_argument] on delays below 1 or inverted bounds. *)

val validate_schedule : t -> n:int -> max_rounds:int -> unit
(** Probe a [Per_message] or [Adversarial] schedule over every
    [(round, src, dst)] in [\[0, max_rounds) x \[0, n)^2] and raise
    [Invalid_argument] naming the offending triple on a delay below 1 (or
    above the declared bound) — {!Config.make} calls this so malformed
    schedules fail at construction instead of mid-run. Schedules must be
    pure functions of their arguments. No-op for the built-in models. *)

val bound : t -> int option
(** The delay upper bound (the paper's [delta_t], in rounds) honest nodes
    may rely on; [None] for [Per_message]. *)

val resolve :
  t -> Vv_prelude.Rng.t -> round:int -> src:Types.node_id -> dst:Types.node_id -> int

val pp : t Fmt.t
