(* Read-only inbox view — the receive half of the zero-allocation
   protocol API.

   The engine sorts each round's deliveries into one arena (grouped by
   recipient, sorted by sender id, stable in scheduling order — the
   same deterministic order the old assoc-list inboxes had) and hands
   every node a *view*: an (offset, length) window over the arena's
   parallel source/message arrays.  One view value is reused for all
   nodes of all rounds, so reading an inbox allocates nothing.

   Like {!Outbox.t}, the message array is untyped [Obj.t] storage; the
   phantom parameter guarantees reader and writer agree on 'msg.  Views
   are transient: they are only valid for the duration of the
   [Protocol.S.step] call they are passed to, and protocols must copy
   out (e.g. via [to_list]) anything they want to keep. *)

type 'msg t = {
  mutable srcs : int array;  (* arena: sender ids *)
  mutable msgs : Obj.t array;  (* arena: messages, parallel to [srcs] *)
  mutable off : int;
  mutable len : int;
}

let create () = { srcs = [||]; msgs = [||]; off = 0; len = 0 }

let set_view t ~srcs ~msgs ~off ~len =
  t.srcs <- srcs;
  t.msgs <- msgs;
  t.off <- off;
  t.len <- len

let set_empty t = t.len <- 0

let length t = t.len
let is_empty t = t.len = 0

let src t i = t.srcs.(t.off + i)
let msg (t : 'msg t) i : 'msg = Obj.obj t.msgs.(t.off + i)

let iter f t =
  for i = 0 to t.len - 1 do
    f (src t i) (msg t i)
  done

let fold f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc (src t i) (msg t i)
  done;
  !acc

let to_list t =
  let rec go i acc =
    if i < 0 then acc else go (i - 1) ((src t i, msg t i) :: acc)
  in
  go (t.len - 1) []

(* Append the view's entries to [acc] in *reverse* arrival order — the
   shape protocols that buffer arrivals across rounds want (they cons
   onto a reversed buffer and [List.rev] once per batch). *)
let rev_append_to t acc =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := (src t i, msg t i) :: !acc
  done;
  !acc
