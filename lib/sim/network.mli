(** Chaos network substrate: deterministic, seeded fault injection between
    send and delivery.

    The substrate composes, per delivery, the lossy-link adversary the
    paper's reliable model abstracts away: independent per-link omission,
    duplication, bounded reordering (extra delay clamped into the declared
    {!Delay.bound}), transient bidirectional partitions, and node outages
    (a node silent for a round interval, then rejoining with its protocol
    state intact — the network-level face of crash-recovery).

    Everything is data: a [t] value plus its [seed] fully determines the
    fault pattern of a run against the engine's deterministic send order,
    so campaigns, the small-model checker and scripted adversaries can
    replay a chaos plan exactly.  Self-deliveries ([src = dst], a node
    hearing its own broadcast) never traverse the network and are exempt
    from every fault.

    {!none} injects nothing; the engine routes through the legacy path in
    that case (no chaos RNG is consulted), so traces stay byte-identical
    with the substrate compiled in but disabled. *)

type window = {
  from_round : int;  (** first round the fault is active *)
  until_round : int;  (** first round it has healed (exclusive bound) *)
}

type partition = {
  window : window;
  isolated : Types.node_id list;
      (** bidirectional cut between this node set and its complement while
          the window is active; traffic within either side is unaffected *)
}

type outage = {
  node : Types.node_id;
  window : window;
      (** every link touching [node] is cut while active: the node sends
          into the void and receives nothing, but keeps its state and
          rejoins when the window closes *)
}

type t = private {
  drop : float;  (** per-delivery omission probability, in [0, 1) *)
  duplicate : float;  (** per-delivery duplication probability, in [0, 1) *)
  jitter : int;
      (** max extra rounds of delay per delivery; the engine clamps
          [base + jitter] into the declared {!Delay.bound} so reordering
          stays within the synchrony assumption *)
  partitions : partition list;
  outages : outage list;
  seed : int;  (** chaos-private RNG seed, independent of the engine seed *)
}

val none : t
(** The identity substrate: nothing dropped, duplicated, delayed or cut. *)

val make :
  ?drop:float ->
  ?duplicate:float ->
  ?jitter:int ->
  ?partitions:partition list ->
  ?outages:outage list ->
  ?seed:int ->
  unit ->
  t
(** Validates probabilities in [0, 1), [jitter >= 0] and well-formed
    windows ([0 <= from_round <= until_round]). Node ids are validated
    against [n] by {!Config.make}. *)

val is_none : t -> bool
(** True when the substrate can have no observable effect (all intensities
    zero, no partitions or outages) — the engine then uses the legacy
    delivery path and draws nothing from the chaos RNG, keeping existing
    traces byte-identical. The [seed] does not participate: a seeded but
    zero-intensity substrate is still [is_none]. *)

val window_active : window -> round:int -> bool

val cut : t -> round:int -> src:Types.node_id -> dst:Types.node_id -> bool
(** Whether the [src -> dst] link is severed at [round] by a partition or
    an outage. Always false for [src = dst]. *)

val rng : t -> Vv_prelude.Rng.t
(** A fresh chaos RNG for one run, derived from [seed] only. *)

type verdict =
  | Dropped  (** omitted (or cut at send time); never reaches the delay layer *)
  | Deliver of { extra_delay : int; duplicate : bool }
      (** deliver with [extra_delay] rounds of jitter; [duplicate] requests
          a second, independently delayed copy *)

val transit : t -> Vv_prelude.Rng.t -> round:int -> src:Types.node_id -> dst:Types.node_id -> verdict
(** One send-time decision. Draws from the RNG only for intensities that
    are strictly positive (and never for self-deliveries or cut links), so
    the chaos stream is stable under adding zero-intensity axes. The
    engine additionally re-checks {!cut} at the arrival round: a message
    in flight into a partition or outage window is lost. *)

val dropped_i : int
(** The {!transit_i} encoding of [Dropped] ([-1]). *)

val transit_i : t -> Vv_prelude.Rng.t -> round:int -> src:Types.node_id -> dst:Types.node_id -> int
(** [transit] without the allocation: returns {!dropped_i} for a destroyed
    delivery, otherwise [extra_delay lsl 1 lor duplicate_bit].  Identical
    RNG draw order to {!transit} (which decodes this function), so traces
    and goldens are unchanged; the engine's hot path uses this form so a
    chaos delivery allocates nothing. *)

val extra_delay : t -> Vv_prelude.Rng.t -> int
(** An independent jitter draw (0 when [jitter = 0], without consuming
    randomness) — used for the duplicate copy's own delay. *)

val pp : t Fmt.t
