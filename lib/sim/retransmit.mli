(** Sender-side retransmission with capped exponential backoff, in round
    units.

    The simulator is omniscient: it knows at send time when the chaos
    substrate destroyed a delivery (omission, or a partition/outage cut at
    the send or arrival round), which stands in for the ack timeout a real
    sender would run.  Under a policy, each destroyed delivery is re-offered
    to the substrate after a backoff — attempt [k] fires
    [min (base * 2^(k-1), cap)] rounds after attempt [k - 1] — until it
    gets through or [max_attempts] is exhausted.  Duplicate copies injected
    by the substrate are never retransmitted (the original already was).

    Retransmission is off by default ({!Config.make} takes
    [?retransmit:t option] defaulting to [None]), so every existing trace
    stays byte-identical. *)

type t = private {
  base : int;  (** backoff of the first retry, in rounds; >= 1 *)
  cap : int;  (** upper bound on any single backoff, in rounds; >= base *)
  max_attempts : int;  (** retries per delivery (not counting the original) *)
}

val make : ?base:int -> ?cap:int -> ?max_attempts:int -> unit -> t
(** Defaults: [base = 1], [cap = 8], [max_attempts = 5]. Raises
    [Invalid_argument] on [base < 1], [cap < base] or [max_attempts < 1]. *)

val default : t

val backoff : t -> attempt:int -> int
(** Rounds to wait before retry number [attempt] (1-based):
    [min (base * 2^(attempt - 1), cap)]. *)

val pp : t Fmt.t
