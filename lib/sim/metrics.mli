(** Message and round accounting (experiment E9).

    Immutable — derived from a completed run's {!Trace.snapshot}. *)

type t = {
  honest_messages : int;
  byzantine_messages : int;
  rounds : int;
}

val make : honest_messages:int -> byzantine_messages:int -> rounds:int -> t
val of_trace : Trace.snapshot -> t
val total : t -> int
val pp : t Fmt.t
