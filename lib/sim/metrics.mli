(** Message and round accounting (experiments E9 and E17).

    Immutable — derived from a completed run's {!Trace.snapshot}. The
    chaos counters are zero for runs without the substrate. *)

type t = {
  honest_messages : int;
  byzantine_messages : int;
  dropped_messages : int;  (** destroyed by the chaos substrate *)
  duplicated_messages : int;  (** extra copies injected by the substrate *)
  retransmitted_messages : int;  (** retransmission attempts fired *)
  rounds : int;
}

val make :
  ?dropped_messages:int ->
  ?duplicated_messages:int ->
  ?retransmitted_messages:int ->
  honest_messages:int ->
  byzantine_messages:int ->
  rounds:int ->
  unit ->
  t

val of_trace : Trace.snapshot -> t
val total : t -> int
val pp : t Fmt.t
