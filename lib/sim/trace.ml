(* Structured per-run traces.

   The engine records, while it runs, one [round_record] per executed round
   (send counts, adversary injections, decisions, and — under the chaos
   substrate — dropped/duplicated/retransmitted deliveries) plus every
   per-node phase transition reported by the protocol's [Protocol.S.phase].
   At the end of the run the accumulated history is frozen into an
   immutable [snapshot] — the replacement for the old mutable [Metrics.t]
   aliasing: callers get a value they can store, diff, and emit (CSV/JSON)
   without worrying about the engine mutating it behind their back.

   The [chaos] flag records whether the run had the substrate (or
   retransmission) engaged; the CSV/JSON emitters add the chaos columns
   only then, so traces of plain runs stay byte-identical to the
   pre-substrate format. *)

module Json = Vv_prelude.Json

type round_record = {
  round : int;
  honest_sent : int;  (** honest point-to-point deliveries sent this round *)
  byz_sent : int;  (** adversary deliveries injected this round *)
  dropped : int;  (** deliveries destroyed by the chaos substrate *)
  duplicated : int;  (** extra copies injected by the substrate *)
  retransmitted : int;  (** retransmission attempts fired this round *)
  newly_decided : Types.node_id list;  (** ascending *)
  decided_total : int;  (** cumulative honest decisions after this round *)
}

type phase_event = {
  at_round : int;
  node : Types.node_id;
  phase : string;  (** the phase entered *)
}

type snapshot = {
  protocol : string;
  adversary : string;
  n : int;
  t : int;
  rounds : round_record list;  (** ascending by round *)
  phases : phase_event list;  (** chronological, then by node id *)
  decide_rounds : (Types.node_id * int) list;  (** ascending by node id *)
  honest_msgs : int;
  byz_msgs : int;
  dropped_msgs : int;
  dup_msgs : int;
  retrans_msgs : int;
  total_rounds : int;  (** rounds executed (last round index + 1) *)
  stalled : bool;
  chaos : bool;  (** substrate or retransmission engaged for this run *)
}

(* --- builder (engine-internal mutability, frozen by [snapshot]) --- *)

type builder = {
  b_protocol : string;
  b_adversary : string;
  b_n : int;
  b_t : int;
  b_chaos : bool;
  mutable b_rounds : round_record list;  (* reversed *)
  mutable b_phases : phase_event list;  (* reversed *)
  mutable b_decides : (Types.node_id * int) list;  (* reversed *)
  mutable b_honest : int;
  mutable b_byz : int;
  mutable b_dropped : int;
  mutable b_dup : int;
  mutable b_retrans : int;
  mutable b_decided : int;
}

let builder ?(chaos = false) ~protocol ~adversary ~n ~t () =
  {
    b_protocol = protocol;
    b_adversary = adversary;
    b_n = n;
    b_t = t;
    b_chaos = chaos;
    b_rounds = [];
    b_phases = [];
    b_decides = [];
    b_honest = 0;
    b_byz = 0;
    b_dropped = 0;
    b_dup = 0;
    b_retrans = 0;
    b_decided = 0;
  }

let record_phase b ~round ~node ~phase =
  b.b_phases <- { at_round = round; node; phase } :: b.b_phases

let record_decide b ~round ~node =
  b.b_decides <- (node, round) :: b.b_decides;
  b.b_decided <- b.b_decided + 1

(* All counters are mandatory: the engine calls this once per round, and
   optional-argument wrapping would allocate three [Some] blocks per call
   on an otherwise allocation-free path. *)
let record_round b ~round ~honest_sent ~byz_sent ~dropped ~duplicated
    ~retransmitted ~newly_decided =
  b.b_honest <- b.b_honest + honest_sent;
  b.b_byz <- b.b_byz + byz_sent;
  b.b_dropped <- b.b_dropped + dropped;
  b.b_dup <- b.b_dup + duplicated;
  b.b_retrans <- b.b_retrans + retransmitted;
  b.b_rounds <-
    {
      round;
      honest_sent;
      byz_sent;
      dropped;
      duplicated;
      retransmitted;
      newly_decided = List.sort Int.compare newly_decided;
      decided_total = b.b_decided;
    }
    :: b.b_rounds

let snapshot b ~stalled =
  let rounds = List.rev b.b_rounds in
  {
    protocol = b.b_protocol;
    adversary = b.b_adversary;
    n = b.b_n;
    t = b.b_t;
    rounds;
    phases = List.rev b.b_phases;
    decide_rounds =
      List.sort
        (fun (n1, r1) (n2, r2) ->
          match Int.compare n1 n2 with 0 -> Int.compare r1 r2 | c -> c)
        (List.rev b.b_decides);
    honest_msgs = b.b_honest;
    byz_msgs = b.b_byz;
    dropped_msgs = b.b_dropped;
    dup_msgs = b.b_dup;
    retrans_msgs = b.b_retrans;
    total_rounds = (match b.b_rounds with [] -> 0 | r :: _ -> r.round + 1);
    stalled;
    chaos = b.b_chaos;
  }

(* --- queries --- *)

let messages_total s = s.honest_msgs + s.byz_msgs

let decide_round s node = List.assoc_opt node s.decide_rounds

let phases_of s node = List.filter (fun e -> e.node = node) s.phases

(* --- emitters --- *)

let csv_header = "round,honest_sent,byz_sent,newly_decided,decided_total"

let csv_header_chaos =
  "round,honest_sent,byz_sent,dropped,duplicated,retransmitted,\
   newly_decided,decided_total"

let to_csv s =
  let ids l = String.concat ";" (List.map string_of_int l) in
  let line (r : round_record) =
    if s.chaos then
      Fmt.str "%d,%d,%d,%d,%d,%d,%s,%d" r.round r.honest_sent r.byz_sent
        r.dropped r.duplicated r.retransmitted (ids r.newly_decided)
        r.decided_total
    else
      Fmt.str "%d,%d,%d,%s,%d" r.round r.honest_sent r.byz_sent
        (ids r.newly_decided) r.decided_total
  in
  let header = if s.chaos then csv_header_chaos else csv_header in
  String.concat "\n" (header :: List.map line s.rounds) ^ "\n"

let round_to_json ~chaos (r : round_record) =
  Json.Obj
    ([
       ("round", Json.Int r.round);
       ("honest_sent", Json.Int r.honest_sent);
       ("byz_sent", Json.Int r.byz_sent);
     ]
    @ (if chaos then
         [
           ("dropped", Json.Int r.dropped);
           ("duplicated", Json.Int r.duplicated);
           ("retransmitted", Json.Int r.retransmitted);
         ]
       else [])
    @ [
        ("newly_decided", Json.List (List.map (fun i -> Json.Int i) r.newly_decided));
        ("decided_total", Json.Int r.decided_total);
      ])

let to_json s =
  Json.Obj
    ([
       ("protocol", Json.String s.protocol);
       ("adversary", Json.String s.adversary);
       ("n", Json.Int s.n);
       ("t", Json.Int s.t);
       ("total_rounds", Json.Int s.total_rounds);
       ("stalled", Json.Bool s.stalled);
       ("honest_msgs", Json.Int s.honest_msgs);
       ("byz_msgs", Json.Int s.byz_msgs);
     ]
    @ (if s.chaos then
         [
           ("dropped_msgs", Json.Int s.dropped_msgs);
           ("dup_msgs", Json.Int s.dup_msgs);
           ("retrans_msgs", Json.Int s.retrans_msgs);
         ]
       else [])
    @ [
        ( "decide_rounds",
          Json.Obj
            (List.map
               (fun (node, r) -> (string_of_int node, Json.Int r))
               s.decide_rounds) );
        ( "phases",
          Json.List
            (List.map
               (fun e ->
                 Json.Obj
                   [
                     ("round", Json.Int e.at_round);
                     ("node", Json.Int e.node);
                     ("phase", Json.String e.phase);
                   ])
               s.phases) );
        ("rounds", Json.List (List.map (round_to_json ~chaos:s.chaos) s.rounds));
      ])

let pp ppf s =
  Fmt.pf ppf "%s vs %s: %d rounds, msgs(honest=%d byz=%d), stalled=%b"
    s.protocol s.adversary s.total_rounds s.honest_msgs s.byz_msgs s.stalled;
  if s.chaos then
    Fmt.pf ppf ", chaos(dropped=%d dup=%d retrans=%d)" s.dropped_msgs
      s.dup_msgs s.retrans_msgs
