(* Reusable send buffer — the emit half of the zero-allocation protocol
   API.

   A protocol step writes its sends into the outbox the engine passes it
   ([unicast]/[broadcast]); the engine then reads the entries back
   positionally and expands them against the topology and crash filter.
   Entries live in two parallel growable arrays: a destination word
   ([broadcast_dst] = -1 encodes a broadcast) and the message itself,
   stored untyped so one buffer can be reused for every round of a run
   without re-allocation.  In steady state emitting therefore costs two
   array writes; only capacity growth allocates.

   The untyped [Obj.t] storage is safe because the only reader,
   {!msg}, converts back at the same type 'msg the writer used — the
   phantom parameter never lets the two drift apart.  The backing array
   is created from a unit dummy (an immediate), so it is a uniform
   array even when 'msg is [float]: boxed floats go in and come back
   out unchanged, never triggering the flat-float-array representation.

   An outbox is single-owner scratch state: the engine clears it before
   every [init]/[step] call, and protocols must not retain it across
   calls. *)

type 'msg t = {
  mutable dsts : int array;  (* broadcast_dst = broadcast *)
  mutable msgs : Obj.t array;
  mutable len : int;
}

let broadcast_dst = -1

let dummy = Obj.repr ()

let create ?(capacity = 16) () =
  let capacity = max capacity 1 in
  { dsts = Array.make capacity 0; msgs = Array.make capacity dummy; len = 0 }

let length t = t.len
let is_empty t = t.len = 0

let clear t =
  (* Drop message references so a cleared outbox does not keep the last
     round's payloads alive. *)
  Array.fill t.msgs 0 t.len dummy;
  t.len <- 0

let grow t =
  let cap = Array.length t.dsts in
  let dsts = Array.make (2 * cap) 0 in
  let msgs = Array.make (2 * cap) dummy in
  Array.blit t.dsts 0 dsts 0 t.len;
  Array.blit t.msgs 0 msgs 0 t.len;
  t.dsts <- dsts;
  t.msgs <- msgs

let push t dst msg =
  if t.len = Array.length t.dsts then grow t;
  t.dsts.(t.len) <- dst;
  t.msgs.(t.len) <- Obj.repr msg;
  t.len <- t.len + 1

let unicast t dst msg =
  if dst < 0 then invalid_arg "Outbox.unicast: negative destination";
  push t dst msg

let broadcast t msg = push t broadcast_dst msg

let dst t i = t.dsts.(i)
let is_broadcast t i = t.dsts.(i) = broadcast_dst
let msg (t : 'msg t) i : 'msg = Obj.obj t.msgs.(i)

let iter f t =
  for i = 0 to t.len - 1 do
    f ~dst:t.dsts.(i) (msg t i)
  done

(* Append every entry of [t], with messages mapped through [f], to
   [into] — the wrapping step of an embedded sub-machine (e.g. Voting
   wrapping substrate messages into [Prepare]) — then clear [t]. *)
let transfer t ~f ~into =
  for i = 0 to t.len - 1 do
    push into t.dsts.(i) (f (msg t i))
  done;
  clear t
