(* Message and round accounting for the complexity experiments (E9).

   Immutable: the engine derives one [t] from the run's {!Trace.snapshot}
   when execution completes, so callers can no longer alias a metrics
   record that mutates under them mid-run. *)

type t = {
  honest_messages : int;
  byzantine_messages : int;
  rounds : int;
}

let make ~honest_messages ~byzantine_messages ~rounds =
  { honest_messages; byzantine_messages; rounds }

let of_trace (tr : Trace.snapshot) =
  {
    honest_messages = tr.Trace.honest_msgs;
    byzantine_messages = tr.Trace.byz_msgs;
    rounds = tr.Trace.total_rounds;
  }

let total t = t.honest_messages + t.byzantine_messages

let pp ppf t =
  Fmt.pf ppf "rounds=%d msgs(honest=%d byz=%d)" t.rounds t.honest_messages
    t.byzantine_messages
