(* Message and round accounting for the complexity experiments (E9) and
   the chaos campaigns (E17).

   Immutable: the engine derives one [t] from the run's {!Trace.snapshot}
   when execution completes, so callers can no longer alias a metrics
   record that mutates under them mid-run. *)

type t = {
  honest_messages : int;
  byzantine_messages : int;
  dropped_messages : int;
  duplicated_messages : int;
  retransmitted_messages : int;
  rounds : int;
}

let make ?(dropped_messages = 0) ?(duplicated_messages = 0)
    ?(retransmitted_messages = 0) ~honest_messages ~byzantine_messages
    ~rounds () =
  {
    honest_messages;
    byzantine_messages;
    dropped_messages;
    duplicated_messages;
    retransmitted_messages;
    rounds;
  }

let of_trace (tr : Trace.snapshot) =
  {
    honest_messages = tr.Trace.honest_msgs;
    byzantine_messages = tr.Trace.byz_msgs;
    dropped_messages = tr.Trace.dropped_msgs;
    duplicated_messages = tr.Trace.dup_msgs;
    retransmitted_messages = tr.Trace.retrans_msgs;
    rounds = tr.Trace.total_rounds;
  }

let total t = t.honest_messages + t.byzantine_messages

let pp ppf t =
  Fmt.pf ppf "rounds=%d msgs(honest=%d byz=%d)" t.rounds t.honest_messages
    t.byzantine_messages;
  if t.dropped_messages + t.duplicated_messages + t.retransmitted_messages > 0
  then
    Fmt.pf ppf " chaos(dropped=%d dup=%d retrans=%d)" t.dropped_messages
      t.duplicated_messages t.retransmitted_messages
