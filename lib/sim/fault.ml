(* Fault plans for individual nodes (Section III-B1).

   A crash-faulty node runs the honest protocol until its crash round; in
   the crash round its outgoing messages reach only an adversary-chosen
   subset of recipients, after which it is silent forever.  This realises
   the mid-broadcast crash used in the proof of Lemma 4 (X_i <> X_G). *)

type t =
  | Honest
  | Byzantine
  | Crash of { at_round : int; deliver_to : Types.node_id list }

let is_byzantine = function Byzantine -> true | Honest | Crash _ -> false
let is_honest = function Honest -> true | Byzantine | Crash _ -> false

let is_crashed plan ~round =
  match plan with
  | Honest | Byzantine -> false
  | Crash { at_round; _ } -> round > at_round

(* Whether a message sent at [round] from a node with this plan reaches
   [dst]. *)
let delivers plan ~round ~dst =
  match plan with
  | Honest | Byzantine -> true
  | Crash { at_round; deliver_to } ->
      if round < at_round then true
      else if round > at_round then false
      else List.mem dst deliver_to

(* Compiled delivery predicate: the crash plan's [deliver_to] list turned
   into a bool array keyed by node id when the system is built
   (Config.make), so the engine's per-delivery check is O(1) instead of
   O(|deliver_to|) — the hot path under chaos campaigns, where every
   retransmission re-enters the crash filter. *)
type compiled =
  | All  (** honest / Byzantine: the plan never withholds a delivery *)
  | Crashed of { at_round : int; mask : bool array }

let compile ~n plan =
  match plan with
  | Honest | Byzantine -> All
  | Crash { at_round; deliver_to } ->
      let mask = Array.make n false in
      List.iter
        (fun dst ->
          if dst < 0 || dst >= n then
            invalid_arg "Fault.compile: deliver_to out of range";
          mask.(dst) <- true)
        deliver_to;
      Crashed { at_round; mask }

let compiled_delivers compiled ~round ~dst =
  match compiled with
  | All -> true
  | Crashed { at_round; mask } ->
      if round < at_round then true
      else if round > at_round then false
      else mask.(dst)

let pp ppf = function
  | Honest -> Fmt.string ppf "honest"
  | Byzantine -> Fmt.string ppf "byzantine"
  | Crash { at_round; deliver_to } ->
      Fmt.pf ppf "crash@r%d(->%d nodes)" at_round (List.length deliver_to)
