(* Static description of one simulated distributed system: size, declared
   tolerance t, the actual fault plan of every node, the communication
   model, and the delay model. *)

type t = {
  n : int;
  t_max : int;  (** the tolerance t, known to every node *)
  faults : Fault.t array;  (** length n; which nodes actually misbehave *)
  compiled : Fault.compiled array;
      (** per-node delivery predicates precomputed from [faults] (crash
          [deliver_to] lists as bool arrays) — the engine's O(1) hot path *)
  comm : Types.comm_model;
  delay : Delay.t;
  max_rounds : int;
  seed : int;
  topology : Types.node_id list array option;
      (** adjacency lists (undirected, no self-loops); [None] = complete
          graph.  A broadcast reaches the sender's neighbours (plus the
          sender itself); under [Local_broadcast] the radio constraint is
          enforced per neighbourhood. *)
  network : Network.t;  (** chaos substrate; [Network.none] = reliable links *)
  retransmit : Retransmit.t option;  (** [None] = no retransmission (default) *)
  reach_arr : Types.node_id array array;
      (** per-source broadcast recipients (neighbourhood plus self,
          ascending), precomputed so the engine's expansion loop never
          allocates; on the complete graph every slot shares one array *)
  reach_list : Types.node_id list array;  (** same, as cached lists *)
}

let validate_topology ~n adj =
  if Array.length adj <> n then
    invalid_arg "Config.make: topology must have length n";
  Array.iteri
    (fun u neighbours ->
      List.iter
        (fun v ->
          if v < 0 || v >= n then
            invalid_arg "Config.make: topology neighbour out of range";
          if v = u then invalid_arg "Config.make: topology self-loop";
          if not (List.mem u adj.(v)) then
            invalid_arg "Config.make: topology must be symmetric")
        neighbours;
      if List.length (List.sort_uniq Int.compare neighbours) <> List.length neighbours
      then invalid_arg "Config.make: duplicate topology neighbour")
    adj

let validate_network ~n (net : Network.t) =
  let node what id =
    if id < 0 || id >= n then
      invalid_arg (Fmt.str "Config.make: %s node %d out of range" what id)
  in
  List.iter
    (fun (p : Network.partition) ->
      List.iter (node "partition") p.Network.isolated)
    net.Network.partitions;
  List.iter
    (fun (o : Network.outage) -> node "outage" o.Network.node)
    net.Network.outages

let make ?faults ?(comm = Types.Point_to_point) ?(delay = Delay.Synchronous)
    ?(max_rounds = 200) ?(seed = 0x5eed) ?topology
    ?(network = Network.none) ?retransmit ~n ~t_max () =
  if n <= 0 then invalid_arg "Config.make: n must be positive";
  if t_max < 0 then invalid_arg "Config.make: t must be non-negative";
  Delay.validate delay;
  (* Probe user-supplied schedules up front so a malformed one fails here,
     naming its (round, src, dst), instead of raising mid-run. *)
  Delay.validate_schedule delay ~n ~max_rounds;
  Option.iter (validate_topology ~n) topology;
  validate_network ~n network;
  let faults =
    match faults with
    | None -> Array.make n Fault.Honest
    | Some f ->
        if Array.length f <> n then
          invalid_arg "Config.make: faults array must have length n";
        Array.copy f
  in
  Array.iter
    (function
      | Fault.Crash { at_round; deliver_to } ->
          if at_round < 0 then invalid_arg "Config.make: negative crash round";
          List.iter
            (fun d ->
              if d < 0 || d >= n then
                invalid_arg "Config.make: crash deliver_to out of range")
            deliver_to
      | Fault.Honest | Fault.Byzantine -> ())
    faults;
  let compiled = Array.map (Fault.compile ~n) faults in
  (* Broadcast recipients per source (neighbourhood plus self, ascending),
     compiled once: the engine's expansion loop indexes [reach_arr] and the
     adversary view hands out the cached lists, so neither allocates. *)
  let reach_arr, reach_list =
    match topology with
    | None ->
        let all = Array.init n Fun.id in
        let all_l = Array.to_list all in
        (Array.make n all, Array.make n all_l)
    | Some adj ->
        let arrs =
          Array.mapi
            (fun src neighbours ->
              let a = Array.of_list (src :: neighbours) in
              Array.sort Int.compare a;
              a)
            adj
        in
        (arrs, Array.map Array.to_list arrs)
  in
  { n; t_max; faults; compiled; comm; delay; max_rounds; seed;
    topology = Option.map Array.copy topology; network; retransmit;
    reach_arr; reach_list }

(* Recipients of a broadcast from [src]: its neighbourhood plus itself. *)
let reach cfg src = cfg.reach_list.(src)

let ids_where cfg pred =
  let acc = ref [] in
  for i = cfg.n - 1 downto 0 do
    if pred cfg.faults.(i) then acc := i :: !acc
  done;
  !acc

let honest_ids cfg = ids_where cfg Fault.is_honest
let byzantine_ids cfg = ids_where cfg Fault.is_byzantine

let crash_ids cfg =
  ids_where cfg (function Fault.Crash _ -> true | _ -> false)

let faulty_count cfg = cfg.n - List.length (honest_ids cfg)

let fault_of cfg id =
  if id < 0 || id >= cfg.n then invalid_arg "Config.fault_of: id out of range";
  cfg.faults.(id)

(* O(1) crash-filter for the engine: the compiled form of
   [Fault.delivers (fault_of cfg src)]. *)
let delivers cfg ~src ~round ~dst =
  Fault.compiled_delivers cfg.compiled.(src) ~round ~dst

let within_tolerance cfg = faulty_count cfg <= cfg.t_max

(* Convenience: mark the given nodes Byzantine, all others honest. *)
let with_byzantine ?comm ?delay ?max_rounds ?seed ?topology ?network
    ?retransmit ~n ~t_max byz () =
  let faults = Array.make n Fault.Honest in
  List.iter
    (fun id ->
      if id < 0 || id >= n then
        invalid_arg "Config.with_byzantine: id out of range";
      faults.(id) <- Fault.Byzantine)
    byz;
  make ~faults ?comm ?delay ?max_rounds ?seed ?topology ?network ?retransmit
    ~n ~t_max ()

let pp ppf cfg =
  Fmt.pf ppf "n=%d t=%d faulty=%d comm=%a delay=%a" cfg.n cfg.t_max
    (faulty_count cfg) Types.pp_comm_model cfg.comm Delay.pp cfg.delay;
  if not (Network.is_none cfg.network) then
    Fmt.pf ppf " chaos(%a)" Network.pp cfg.network;
  Option.iter (fun r -> Fmt.pf ppf " retransmit(%a)" Retransmit.pp r)
    cfg.retransmit
