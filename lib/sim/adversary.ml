(* The strong adversary of Section III-B1.

   The adversary is full-information and rushing: each round it observes
   every message honest (and crashing) nodes send in that round *before*
   choosing the Byzantine nodes' messages, and it controls all Byzantine
   nodes jointly (collusion).  Under point-to-point it may send different
   messages to different recipients (the paper's k -i-> A notation); the
   engine rejects that under the local broadcast model. *)

type 'msg view = {
  round : int;
  honest_sent : 'msg Types.delivery list;
      (** messages actually sent by non-Byzantine nodes this round, after
          crash filtering — what a rushing adversary can observe *)
  byz_inbox : (Types.node_id * (Types.node_id * 'msg) list) list;
      (** per Byzantine node: messages it received this round *)
  byzantine : Types.node_id list;
  n : int;
  reach : Types.node_id -> Types.node_id list;
      (** broadcast recipients of a node: its neighbourhood plus itself
          (all nodes under the complete graph) *)
}

type 'msg t = { name : string; act : 'msg view -> 'msg delivery_plan list }

and 'msg delivery_plan = {
  src : Types.node_id;  (** must be Byzantine *)
  dst : Types.node_id;
  msg : 'msg;
}

let passive = { name = "passive"; act = (fun _ -> []) }

let named name act = { name; act }

(* Broadcast [msg] from every Byzantine node to its whole neighbourhood,
   each round that [when_round] accepts.  Legal under both communication
   models and any topology. *)
let broadcast_each_round ~name ~when_round msg_of =
  let act view =
    if not (when_round view.round) then []
    else
      List.concat_map
        (fun src ->
          match msg_of ~src view with
          | None -> []
          | Some msg ->
              List.map (fun dst -> { src; dst; msg }) (view.reach src))
        view.byzantine
  in
  { name; act }

(* Compose: run both adversaries and concatenate their plans. *)
let combine name a b =
  { name; act = (fun view -> a.act view @ b.act view) }

(* Replay a per-round action script.  Each round before [trigger] fires the
   adversary stays silent; the round [trigger] returns a context the first
   script action is interpreted against that round's view, the next action
   the following round, and so on.  After the script is exhausted the
   adversary is silent again.  The context is captured once, at trigger
   time, so a script's meaning cannot drift as the execution evolves —
   that is what makes scripts enumerable as plain data by the checker. *)
let of_script ~name ~trigger ~interp script =
  let state = ref None (* context, remaining actions *) in
  let act view =
    (match !state with
    | None -> (
        match trigger view with
        | Some ctx -> state := Some (ctx, script)
        | None -> ())
    | Some _ -> ());
    match !state with
    | None | Some (_, []) -> []
    | Some (ctx, action :: rest) ->
        state := Some (ctx, rest);
        interp ctx action view
  in
  { name; act }
