(* The strong adversary of Section III-B1.

   The adversary is full-information and rushing: each round it observes
   every message honest (and crashing) nodes send in that round *before*
   choosing the Byzantine nodes' messages, and it controls all Byzantine
   nodes jointly (collusion).  Under point-to-point it may send different
   messages to different recipients (the paper's k -i-> A notation); the
   engine rejects that under the local broadcast model. *)

(* The view is an indexed window over the engine's packed send buffer —
   the adversary-side analogue of {!Inbox}.  The engine allocates one view
   per run and refreshes [round]/[sent_len] each round, so observing a
   round allocates nothing until the adversary actually asks for message
   content.  Accessors are only valid during the [act] call. *)
type 'msg view = {
  mutable round : int;
  mutable sent_len : int;
      (** number of messages non-Byzantine nodes sent this round, after
          crash filtering — what a rushing adversary can observe *)
  sent_src : int -> Types.node_id;
  sent_dst : int -> Types.node_id;
  sent_msg : int -> 'msg;
      (** the i-th honest send of the round, 0 <= i < [sent_len], in
          (node id, emission, neighbourhood) order *)
  byz_inbox : Types.node_id -> (Types.node_id * 'msg) list;
      (** messages the given Byzantine node received this round *)
  in_flight : unit -> (int * Types.node_id * Types.node_id) list;
      (** the engine's pending schedule: every delivery already routed but
          not yet handed to its recipient, as (arrival round, src, dst)
          triples sorted ascending — the full-information adversary's
          window onto in-flight scheduling, so a scripted adversary can
          time its injections against worst-case delivery orders under
          [Asynchronous]/[Eventually_synchronous] delays.  Allocates a
          fresh list per call; only valid during [act]. *)
  byzantine : Types.node_id list;
  n : int;
  reach : Types.node_id -> Types.node_id list;
      (** broadcast recipients of a node: its neighbourhood plus itself
          (all nodes under the complete graph) *)
}

type 'msg t = {
  name : string;
  act : 'msg view -> 'msg delivery_plan list;
  passive : bool;
      (* statically known to never inject anything: lets the engine skip
         building the view (and validating the empty plan) every round *)
  quiescent : unit -> bool;
      (* [quiescent ()] promises that from now on [act], applied to any
         view with no honest traffic and empty Byzantine inboxes, returns
         [] without changing internal state or drawing randomness.  The
         engine uses it to fast-forward provably-quiet executions; a
         conservative [fun () -> false] is always sound. *)
}

and 'msg delivery_plan = {
  src : Types.node_id;  (** must be Byzantine *)
  dst : Types.node_id;
  msg : 'msg;
}

let never_quiescent () = false

let passive =
  { name = "passive"; act = (fun _ -> []); passive = true;
    quiescent = (fun () -> true) }

let named ?(quiescent = never_quiescent) name act =
  { name; act; passive = false; quiescent }

(* Broadcast [msg] from every Byzantine node to its whole neighbourhood,
   each round that [when_round] accepts.  Legal under both communication
   models and any topology. *)
let broadcast_each_round ~name ~when_round msg_of =
  let act view =
    if not (when_round view.round) then []
    else
      List.concat_map
        (fun src ->
          match msg_of ~src view with
          | None -> []
          | Some msg ->
              List.map (fun dst -> { src; dst; msg }) (view.reach src))
        view.byzantine
  in
  { name; act; passive = false; quiescent = never_quiescent }

(* Compose: run both adversaries and concatenate their plans. *)
let combine name a b =
  { name; act = (fun view -> a.act view @ b.act view);
    passive = a.passive && b.passive;
    quiescent = (fun () -> a.quiescent () && b.quiescent ()) }

(* Replay a per-round action script.  Each round before [trigger] fires the
   adversary stays silent; the round [trigger] returns a context the first
   script action is interpreted against that round's view, the next action
   the following round, and so on.  After the script is exhausted the
   adversary is silent again.  The context is captured once, at trigger
   time, so a script's meaning cannot drift as the execution evolves —
   that is what makes scripts enumerable as plain data by the checker. *)
let of_script ?(quiet_trigger = false) ~name ~trigger ~interp script =
  let state = ref None (* context, remaining actions *) in
  let act view =
    (match !state with
    | None -> (
        match trigger view with
        | Some ctx -> state := Some (ctx, script)
        | None -> ())
    | Some _ -> ());
    match !state with
    | None | Some (_, []) -> []
    | Some (ctx, action :: rest) ->
        state := Some (ctx, rest);
        interp ctx action view
  in
  (* Quiet once the script is exhausted, and — when the caller promises a
     traffic-reactive trigger via [quiet_trigger] — also before it fires;
     mid-script the replay advances every round regardless of the view. *)
  let quiescent () =
    match !state with
    | Some (_, []) -> true
    | None -> quiet_trigger
    | Some (_, _ :: _) -> false
  in
  { name; act; passive = false; quiescent }
