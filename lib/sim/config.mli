(** Static description of one simulated system run. *)

type t = private {
  n : int;  (** total number of nodes (the paper's N) *)
  t_max : int;  (** declared tolerance t, known to all nodes *)
  faults : Fault.t array;  (** actual per-node fault plans (defines f) *)
  compiled : Fault.compiled array;
      (** delivery predicates precomputed from [faults] at construction *)
  comm : Types.comm_model;
  delay : Delay.t;
  max_rounds : int;  (** engine cut-off; a stall is reported, not an error *)
  seed : int;
  topology : Types.node_id list array option;
      (** undirected adjacency; [None] = complete graph. A broadcast
          reaches the sender's neighbourhood (plus itself); the radio
          constraint of [Local_broadcast] is enforced per neighbourhood. *)
  network : Network.t;
      (** chaos substrate between send and delivery; [Network.none]
          (the default) is the paper's reliable network *)
  retransmit : Retransmit.t option;
      (** retransmission policy for chaos-destroyed deliveries; [None]
          (the default) leaves losses final *)
  reach_arr : Types.node_id array array;
      (** per-source broadcast recipients (neighbourhood plus self,
          ascending), precomputed at {!make}; the engine's allocation-free
          expansion path.  Do not mutate. *)
  reach_list : Types.node_id list array;
      (** the same recipients as cached lists (what {!reach} returns) *)
}

val make :
  ?faults:Fault.t array ->
  ?comm:Types.comm_model ->
  ?delay:Delay.t ->
  ?max_rounds:int ->
  ?seed:int ->
  ?topology:Types.node_id list array ->
  ?network:Network.t ->
  ?retransmit:Retransmit.t ->
  n:int ->
  t_max:int ->
  unit ->
  t
(** Validates sizes, crash plans, topology (length [n], symmetric, no
    self-loops or duplicates), chaos-plan node ids, and — via a probe
    sweep over every [(round, src, dst)] — user-supplied
    [Per_message]/[Adversarial] delay schedules, so malformed schedules
    fail here (naming the offending point) rather than mid-run. Defaults:
    all honest, point-to-point, synchronous delay, 200 rounds, fixed seed,
    complete graph, no chaos, no retransmission. *)

val reach : t -> Types.node_id -> Types.node_id list
(** Recipients of a broadcast from the node: its neighbourhood plus
    itself (every node under the complete graph), ascending. *)

val honest_ids : t -> Types.node_id list
val byzantine_ids : t -> Types.node_id list
val crash_ids : t -> Types.node_id list

val faulty_count : t -> int
(** The actual number of faulty nodes f (Byzantine + crash). *)

val fault_of : t -> Types.node_id -> Fault.t

val delivers : t -> src:Types.node_id -> round:int -> dst:Types.node_id -> bool
(** O(1) crash filter: whether a message sent by [src] in [round] survives
    [src]'s fault plan (the compiled form of {!Fault.delivers}). *)

val within_tolerance : t -> bool
(** [f <= t]. *)

val with_byzantine :
  ?comm:Types.comm_model ->
  ?delay:Delay.t ->
  ?max_rounds:int ->
  ?seed:int ->
  ?topology:Types.node_id list array ->
  ?network:Network.t ->
  ?retransmit:Retransmit.t ->
  n:int ->
  t_max:int ->
  Types.node_id list ->
  unit ->
  t
(** All nodes honest except the listed Byzantine ones. *)

val pp : t Fmt.t
