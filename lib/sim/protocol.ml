(* Protocols are round-based state machines executed by Engine.

   Each honest (and, until its crash round, each crash-faulty) node holds a
   [state]; every round the engine hands the node its inbox (a read-only
   {!Inbox.t} view over the round's delivery arena) and a cleared
   {!Outbox.t} to push sends into, and asks for the next state.  Returning
   envelope lists was retired with the zero-allocation engine: emitting
   into the warm outbox and reading the indexed inbox allocate nothing.

   Nodes know N and t but never f or the fault plan, matching
   Section III-A. *)

type ctx = {
  n : int;
  t : int;
  me : Types.node_id;
  comm : Types.comm_model;
  delta : int option;
      (** known delay bound in rounds (the paper's delta_t) when the network
          is synchronous; [None] under unbounded/unknown delay *)
  rng : Vv_prelude.Rng.t;  (** node-private deterministic randomness *)
}

module type S = sig
  type input
  type state
  type msg
  type output

  val name : string

  val equal_msg : msg -> msg -> bool
  (** Monomorphic message equality, used by the engine's local-broadcast
      validator to group an adversary's sends per distinct message
      (Property 6) without falling back to polymorphic comparison. *)

  val init : ctx -> input -> outbox:msg Outbox.t -> state
  (** Initial state; round-0 sends go into [outbox]. *)

  val step :
    ctx -> state -> round:int -> inbox:msg Inbox.t -> outbox:msg Outbox.t -> state
  (** One round transition. [round] counts from 1 (round 0 is [init]);
      [inbox] views the messages arriving at the start of this round in
      deterministic (sender id, send order) order, and is only valid for
      the duration of the call.  Sends are pushed into [outbox], which
      the engine clears beforehand. *)

  val output : state -> output option
  (** The node's decision, once made. Must be stable: once [Some v], the
      protocol must never change it. *)

  val phase : state -> string
  (** Short label of the node's current protocol phase (e.g. "prepare",
      "vote", "decided"). The engine records a {!Trace.phase_event}
      whenever the label changes between rounds; protocols with no phase
      structure may return a constant. *)

  val inert : state -> bool
  (** [inert st] promises that [step] on [st] with an empty inbox is a
      no-op forever: it returns a state observably equal to [st] (same
      [output], same [phase], still inert), emits nothing, and draws no
      randomness — at every future round.  The engine fast-forwards a run
      to its stall verdict once every live node is inert, the schedule is
      empty and the adversary is {!Adversary.t.quiescent}; the skipped
      rounds are recorded exactly as the quiet rounds they would have
      been, so traces are unchanged.  [fun _ -> false] is always sound;
      the promise must hold round-independently (a state waiting on a
      timer or an unfinished sub-machine is not inert). *)
end
