(* Protocols are round-based state machines executed by Engine.

   Each honest (and, until its crash round, each crash-faulty) node holds a
   [state]; every round the engine delivers the node's inbox and asks for
   the next state plus outgoing envelopes.  Nodes know N and t but never f
   or the fault plan, matching Section III-A. *)

type ctx = {
  n : int;
  t : int;
  me : Types.node_id;
  comm : Types.comm_model;
  delta : int option;
      (** known delay bound in rounds (the paper's delta_t) when the network
          is synchronous; [None] under unbounded/unknown delay *)
  rng : Vv_prelude.Rng.t;  (** node-private deterministic randomness *)
}

module type S = sig
  type input
  type state
  type msg
  type output

  val name : string

  val init : ctx -> input -> state * msg Types.envelope list
  (** Initial state and round-0 messages. *)

  val step :
    ctx ->
    state ->
    round:int ->
    inbox:(Types.node_id * msg) list ->
    state * msg Types.envelope list
  (** One round transition. [round] counts from 1 (round 0 is [init]);
      [inbox] lists the messages arriving at the start of this round in
      deterministic (sender id, send order) order. *)

  val output : state -> output option
  (** The node's decision, once made. Must be stable: once [Some v], the
      protocol must never change it. *)

  val phase : state -> string
  (** Short label of the node's current protocol phase (e.g. "prepare",
      "vote", "decided"). The engine records a {!Trace.phase_event}
      whenever the label changes between rounds; protocols with no phase
      structure may return a constant. *)
end
