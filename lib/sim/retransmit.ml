(* Retransmission policy: capped exponential backoff in round units.
   See retransmit.mli for the simulation-level ack model. *)

type t = { base : int; cap : int; max_attempts : int }

let make ?(base = 1) ?(cap = 8) ?(max_attempts = 5) () =
  if base < 1 then invalid_arg "Retransmit.make: base must be >= 1";
  if cap < base then invalid_arg "Retransmit.make: cap must be >= base";
  if max_attempts < 1 then
    invalid_arg "Retransmit.make: max_attempts must be >= 1";
  { base; cap; max_attempts }

let default = make ()

let backoff t ~attempt =
  if attempt < 1 then invalid_arg "Retransmit.backoff: attempt must be >= 1";
  (* Shift-free doubling that cannot overflow for sane attempt counts:
     stop growing once the cap is reached. *)
  let rec grow b k = if k <= 1 || b >= t.cap then b else grow (b * 2) (k - 1) in
  min (grow t.base attempt) t.cap

let pp ppf t =
  Fmt.pf ppf "backoff=%d..%d attempts=%d" t.base t.cap t.max_attempts
