(** The strong, full-information, rushing adversary of Section III-B1.

    Controls all Byzantine nodes jointly; observes everything honest nodes
    send in the current round before choosing its own messages; may
    equivocate per-recipient under point-to-point (the engine enforces
    identical messages under local broadcast). *)

type 'msg view = {
  round : int;
  honest_sent : 'msg Types.delivery list;
      (** what non-Byzantine nodes actually sent this round *)
  byz_inbox : (Types.node_id * (Types.node_id * 'msg) list) list;
      (** per Byzantine node: this round's received messages *)
  byzantine : Types.node_id list;
  n : int;
  reach : Types.node_id -> Types.node_id list;
      (** broadcast recipients of a node: its neighbourhood plus itself *)
}

type 'msg t = { name : string; act : 'msg view -> 'msg delivery_plan list }

and 'msg delivery_plan = {
  src : Types.node_id;  (** must be Byzantine; the engine validates *)
  dst : Types.node_id;
  msg : 'msg;
}

val passive : 'msg t
(** Byzantine nodes stay silent. *)

val named : string -> ('msg view -> 'msg delivery_plan list) -> 'msg t

val broadcast_each_round :
  name:string ->
  when_round:(int -> bool) ->
  (src:Types.node_id -> 'msg view -> 'msg option) ->
  'msg t
(** Every Byzantine node broadcasts the produced message to its whole
    neighbourhood in accepted rounds; legal under both communication
    models and any topology. *)

val combine : string -> 'msg t -> 'msg t -> 'msg t
(** Union of both adversaries' plans. *)

val of_script :
  name:string ->
  trigger:('msg view -> 'ctx option) ->
  interp:('ctx -> 'action -> 'msg view -> 'msg delivery_plan list) ->
  'action list ->
  'msg t
(** [of_script ~name ~trigger ~interp actions] replays [actions] one per
    round, starting the round [trigger] first returns a context (silent
    before that, and again after the script is exhausted).  The context is
    captured exactly once, at trigger time, and passed to every
    interpretation — so a script is pure data whose meaning is fixed by the
    triggering view.  Statefulness warning: the returned adversary carries
    replay state and must not be shared across runs. *)
