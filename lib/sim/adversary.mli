(** The strong, full-information, rushing adversary of Section III-B1.

    Controls all Byzantine nodes jointly; observes everything honest nodes
    send in the current round before choosing its own messages; may
    equivocate per-recipient under point-to-point (the engine enforces
    identical messages under local broadcast). *)

(** The view is an indexed window over the engine's packed send buffer —
    the adversary-side analogue of {!Inbox}.  The engine allocates one
    view per run and refreshes [round]/[sent_len] each round, so a round
    with an uninterested adversary allocates nothing; accessors (and the
    view itself) are only valid for the duration of the [act] call and
    must not be retained. *)
type 'msg view = {
  mutable round : int;
  mutable sent_len : int;
      (** how many messages non-Byzantine nodes sent this round *)
  sent_src : int -> Types.node_id;
  sent_dst : int -> Types.node_id;
  sent_msg : int -> 'msg;
      (** the i-th honest send of the round, [0 <= i < sent_len], in
          (node id, emission, neighbourhood) order *)
  byz_inbox : Types.node_id -> (Types.node_id * 'msg) list;
      (** this round's deliveries to the given Byzantine node *)
  in_flight : unit -> (int * Types.node_id * Types.node_id) list;
      (** every delivery already routed but not yet delivered, as
          (arrival round, src, dst) triples sorted ascending — in-flight
          scheduling exposed to the full-information adversary, so scripts
          can pick worst-case delivery orders under the asynchronous and
          GST delay models.  Allocates per call; valid only during
          [act]. *)
  byzantine : Types.node_id list;
  n : int;
  reach : Types.node_id -> Types.node_id list;
      (** broadcast recipients of a node: its neighbourhood plus itself *)
}

type 'msg t = {
  name : string;
  act : 'msg view -> 'msg delivery_plan list;
  passive : bool;
      (** statically known to inject nothing, ever; the engine then skips
          building the per-round view and validating the (empty) plan.
          Construct via {!passive} / {!named} — only {!passive} sets it. *)
  quiescent : unit -> bool;
      (** [quiescent ()] promises that, from now on, [act] applied to any
          view with no honest traffic and empty Byzantine inboxes returns
          [[]] without mutating internal state or drawing randomness.  The
          engine consults it (with protocol {!Protocol.S.inert} states and
          an empty schedule) to fast-forward provably-quiet executions to
          their stall verdict.  [fun () -> false] is always sound. *)
}

and 'msg delivery_plan = {
  src : Types.node_id;  (** must be Byzantine; the engine validates *)
  dst : Types.node_id;
  msg : 'msg;
}

val passive : 'msg t
(** Byzantine nodes stay silent. *)

val named :
  ?quiescent:(unit -> bool) ->
  string ->
  ('msg view -> 'msg delivery_plan list) ->
  'msg t
(** [quiescent] defaults to [fun () -> false] (never fast-forward). *)

val broadcast_each_round :
  name:string ->
  when_round:(int -> bool) ->
  (src:Types.node_id -> 'msg view -> 'msg option) ->
  'msg t
(** Every Byzantine node broadcasts the produced message to its whole
    neighbourhood in accepted rounds; legal under both communication
    models and any topology. *)

val combine : string -> 'msg t -> 'msg t -> 'msg t
(** Union of both adversaries' plans. *)

val of_script :
  ?quiet_trigger:bool ->
  name:string ->
  trigger:('msg view -> 'ctx option) ->
  interp:('ctx -> 'action -> 'msg view -> 'msg delivery_plan list) ->
  'action list ->
  'msg t
(** [of_script ~name ~trigger ~interp actions] replays [actions] one per
    round, starting the round [trigger] first returns a context (silent
    before that, and again after the script is exhausted).  The context is
    captured exactly once, at trigger time, and passed to every
    interpretation — so a script is pure data whose meaning is fixed by the
    triggering view.  [quiet_trigger] (default [false]) promises that
    [trigger] reacts only to observed traffic — it returns [None] on, and
    does not retain, views with no honest sends and empty Byzantine
    inboxes — which makes the adversary report itself quiescent before the
    trigger fires, not just after exhaustion.  Statefulness warning: the
    returned adversary carries replay state and must not be shared across
    runs. *)
