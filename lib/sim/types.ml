(* Shared vocabulary of the simulator.

   The envelope type that protocols used to return ([dest * payload]
   lists) is gone: protocols now *push* sends into a reusable
   {!Outbox.t}, and the engine reads them back positionally — no
   per-message allocation on the hot path.  What remains here is the
   vocabulary both sides still share: node identities, the communication
   model, and the concrete point-to-point [delivery] record the
   adversary observes. *)

type node_id = int

(* Section III-B3: point-to-point lets a Byzantine node send different
   messages to different nodes; under the local broadcast model every
   message is received identically by all neighbours (complete graph). *)
type comm_model = Point_to_point | Local_broadcast

let pp_comm_model ppf = function
  | Point_to_point -> Fmt.string ppf "point-to-point"
  | Local_broadcast -> Fmt.string ppf "local-broadcast"

(* A concrete src -> dst message in flight. *)
type 'msg delivery = { src : node_id; dst : node_id; msg : 'msg }
