(* Message delay models.

   A message sent in round r is delivered at the start of round
   r + delay, with delay >= 1.  [Synchronous] is the paper's lock-step
   model; [Uniform] provides the staggered arrivals that make the
   incremental-threshold protocol (Algorithm 3) interesting and models a
   partially synchronous network with unknown-but-bounded delay. *)

type schedule = round:int -> src:Types.node_id -> dst:Types.node_id -> int

type t =
  | Synchronous
  | Fixed of int
  | Uniform of { lo : int; hi : int }
  | Per_message of schedule
  | Adversarial of { bound : int; schedule : schedule }
      (** a schedule that must respect a declared bound delta_t — the
          strong adversary's message-delaying power under synchrony *)

let validate = function
  | Synchronous -> ()
  | Fixed d -> if d < 1 then invalid_arg "Delay.Fixed: delay must be >= 1"
  | Uniform { lo; hi } ->
      if lo < 1 || hi < lo then invalid_arg "Delay.Uniform: need 1 <= lo <= hi"
  | Per_message _ -> ()
  | Adversarial { bound; _ } ->
      if bound < 1 then invalid_arg "Delay.Adversarial: bound must be >= 1"

(* The known delay upper bound delta_t (in rounds) honest protocols may rely
   on under synchrony; [None] for unbounded user-supplied models. *)
let bound = function
  | Synchronous -> Some 1
  | Fixed d -> Some d
  | Uniform { hi; _ } -> Some hi
  | Per_message _ -> None
  | Adversarial { bound; _ } -> Some bound

let schedule_error what d ~round ~src ~dst =
  invalid_arg
    (Fmt.str "Delay.%s: schedule returned %d at (round %d, src %d, dst %d)"
       what d round src dst)

let resolve t rng ~round ~src ~dst =
  match t with
  | Synchronous -> 1
  | Fixed d -> d
  | Uniform { lo; hi } -> lo + Vv_prelude.Rng.int rng (hi - lo + 1)
  | Per_message f ->
      let d = f ~round ~src ~dst in
      if d < 1 then schedule_error "Per_message" d ~round ~src ~dst;
      d
  | Adversarial { bound; schedule } ->
      let d = schedule ~round ~src ~dst in
      if d < 1 || d > bound then
        schedule_error
          (Fmt.str "Adversarial(bound %d)" bound)
          d ~round ~src ~dst;
      d

(* Probe sweep: exercise a user-supplied schedule over every (round, src,
   dst) the engine could ask about, so an ill-formed schedule is rejected
   when the configuration is built — with the offending point named —
   instead of exploding from [resolve] in the middle of a run.  Requires
   schedules to be pure functions of their arguments (they always were in
   spirit: the engine gives no other determinism guarantee). *)
let validate_schedule t ~n ~max_rounds =
  let probe what check f =
    for round = 0 to max_rounds - 1 do
      for src = 0 to n - 1 do
        for dst = 0 to n - 1 do
          let d = f ~round ~src ~dst in
          if not (check d) then schedule_error what d ~round ~src ~dst
        done
      done
    done
  in
  match t with
  | Synchronous | Fixed _ | Uniform _ -> ()
  | Per_message f -> probe "Per_message" (fun d -> d >= 1) f
  | Adversarial { bound; schedule } ->
      probe
        (Fmt.str "Adversarial(bound %d)" bound)
        (fun d -> d >= 1 && d <= bound)
        schedule

let pp ppf = function
  | Synchronous -> Fmt.string ppf "synchronous"
  | Fixed d -> Fmt.pf ppf "fixed:%d" d
  | Uniform { lo; hi } -> Fmt.pf ppf "uniform:%d..%d" lo hi
  | Per_message _ -> Fmt.string ppf "per-message"
  | Adversarial { bound; _ } -> Fmt.pf ppf "adversarial<=%d" bound
