(* Message delay models.

   A message sent in round r is delivered at the start of round
   r + delay, with delay >= 1.  [Synchronous] is the paper's lock-step
   model; [Uniform] provides the staggered arrivals that make the
   incremental-threshold protocol (Algorithm 3) interesting and models a
   partially synchronous network with unknown-but-bounded delay.

   The synchrony axis (Tseng, arXiv 1608.07923) is first-class:
   [Asynchronous] has no protocol-visible bound at all — the scheduler
   (or an adversary-supplied schedule) picks per-message delays freely
   under a fairness cap guaranteeing every message is eventually
   delivered — and [Eventually_synchronous] is the GST model: arbitrary
   scheduling before a global stabilization time, [Adversarial]-style
   bounded delay after it, with every pre-GST message forced to land by
   gst + bound (the classic "messages sent before GST arrive by
   GST + delta" convention). *)

type schedule = round:int -> src:Types.node_id -> dst:Types.node_id -> int

type t =
  | Synchronous
  | Fixed of int
  | Uniform of { lo : int; hi : int }
  | Per_message of schedule
  | Adversarial of { bound : int; schedule : schedule }
      (** a schedule that must respect a declared bound delta_t — the
          strong adversary's message-delaying power under synchrony *)
  | Asynchronous of { fairness : int; schedule : schedule option }
      (** no protocol-visible bound ([bound] is [None]); the scheduler
          (or the supplied schedule) picks each delay in [1, fairness].
          The cap is the fairness guarantee — every message is delivered
          within [fairness] rounds of its send — not a synchrony
          assumption protocols may rely on. *)
  | Eventually_synchronous of { gst : int; bound : int; schedule : schedule option }
      (** the GST model: a message sent at round r < gst may be delayed
          arbitrarily as long as it arrives by [gst + bound]; a message
          sent at r >= gst arrives within [bound] rounds.  Without a
          schedule, delays are drawn uniformly over the admissible
          range. *)

let validate = function
  | Synchronous -> ()
  | Fixed d -> if d < 1 then invalid_arg "Delay.Fixed: delay must be >= 1"
  | Uniform { lo; hi } ->
      if lo < 1 || hi < lo then invalid_arg "Delay.Uniform: need 1 <= lo <= hi"
  | Per_message _ -> ()
  | Adversarial { bound; _ } ->
      if bound < 1 then invalid_arg "Delay.Adversarial: bound must be >= 1"
  | Asynchronous { fairness; _ } ->
      if fairness < 1 then
        invalid_arg "Delay.Asynchronous: fairness must be >= 1"
  | Eventually_synchronous { gst; bound; _ } ->
      if gst < 0 then
        invalid_arg "Delay.Eventually_synchronous: gst must be >= 0";
      if bound < 1 then
        invalid_arg "Delay.Eventually_synchronous: bound must be >= 1"

(* The known delay upper bound delta_t (in rounds) honest protocols may rely
   on under synchrony; [None] for unbounded user-supplied models and for
   genuine asynchrony (the fairness cap is a liveness guarantee, not a
   synchrony assumption).  Under GST this is the *eventual* bound — what a
   partially-synchronous protocol knows holds from some unknown round on. *)
let bound = function
  | Synchronous -> Some 1
  | Fixed d -> Some d
  | Uniform { hi; _ } -> Some hi
  | Per_message _ -> None
  | Adversarial { bound; _ } -> Some bound
  | Asynchronous _ -> None
  | Eventually_synchronous { bound; _ } -> Some bound

(* The largest delay any message sent at [round] may be assigned — the
   engine's clamp for chaos jitter, so substrate reordering cannot break
   the model's own delivery guarantee.  Equal to [bound] for every
   round-independent model; for GST it shrinks toward the bound as the
   send round approaches gst (a pre-GST message must still land by
   gst + bound); for [Asynchronous] it is the fairness cap. *)
let max_delay t ~round =
  match t with
  | Synchronous -> Some 1
  | Fixed d -> Some d
  | Uniform { hi; _ } -> Some hi
  | Per_message _ -> None
  | Adversarial { bound; _ } -> Some bound
  | Asynchronous { fairness; _ } -> Some fairness
  | Eventually_synchronous { gst; bound; _ } ->
      Some (if round >= gst then bound else gst + bound - round)

let schedule_error ?bound what d ~round ~src ~dst =
  invalid_arg
    (Fmt.str "Delay.%s: schedule returned %d%s at (round %d, src %d, dst %d)"
       what d
       (match bound with
       | None -> ""
       | Some b -> Fmt.str " against declared bound %d" b)
       round src dst)

(* The admissible delay range cap at [round] for the schedule-carrying
   models (the per-round face of the declared bound). *)
let es_cap ~gst ~bound ~round =
  if round >= gst then bound else gst + bound - round

let resolve t rng ~round ~src ~dst =
  match t with
  | Synchronous -> 1
  | Fixed d -> d
  | Uniform { lo; hi } -> lo + Vv_prelude.Rng.int rng (hi - lo + 1)
  | Per_message f ->
      let d = f ~round ~src ~dst in
      if d < 1 then schedule_error "Per_message" d ~round ~src ~dst;
      d
  | Adversarial { bound; schedule } ->
      let d = schedule ~round ~src ~dst in
      if d < 1 || d > bound then
        schedule_error "Adversarial" ~bound d ~round ~src ~dst;
      d
  | Asynchronous { fairness; schedule } -> (
      match schedule with
      | None -> 1 + Vv_prelude.Rng.int rng fairness
      | Some f ->
          let d = f ~round ~src ~dst in
          if d < 1 || d > fairness then
            schedule_error "Asynchronous" ~bound:fairness d ~round ~src ~dst;
          d)
  | Eventually_synchronous { gst; bound; schedule } -> (
      let cap = es_cap ~gst ~bound ~round in
      match schedule with
      | None -> 1 + Vv_prelude.Rng.int rng cap
      | Some f ->
          let d = f ~round ~src ~dst in
          if d < 1 || d > cap then
            schedule_error
              (Fmt.str "Eventually_synchronous(gst %d)" gst)
              ~bound d ~round ~src ~dst;
          d)

(* Probe sweep: exercise a user-supplied schedule over every (round, src,
   dst) the engine could ask about, so an ill-formed schedule is rejected
   when the configuration is built — with the offending point and the
   declared bound named — instead of exploding from [resolve] in the
   middle of a run.  Requires schedules to be pure functions of their
   arguments (they always were in spirit: the engine gives no other
   determinism guarantee). *)
let validate_schedule t ~n ~max_rounds =
  let probe ?bound what check f =
    for round = 0 to max_rounds - 1 do
      for src = 0 to n - 1 do
        for dst = 0 to n - 1 do
          let d = f ~round ~src ~dst in
          if not (check ~round d) then
            schedule_error ?bound what d ~round ~src ~dst
        done
      done
    done
  in
  match t with
  | Synchronous | Fixed _ | Uniform _ -> ()
  | Asynchronous { schedule = None; _ }
  | Eventually_synchronous { schedule = None; _ } ->
      ()
  | Per_message f -> probe "Per_message" (fun ~round:_ d -> d >= 1) f
  | Adversarial { bound; schedule } ->
      probe "Adversarial" ~bound (fun ~round:_ d -> d >= 1 && d <= bound)
        schedule
  | Asynchronous { fairness; schedule = Some f } ->
      probe "Asynchronous" ~bound:fairness
        (fun ~round:_ d -> d >= 1 && d <= fairness)
        f
  | Eventually_synchronous { gst; bound; schedule = Some f } ->
      probe
        (Fmt.str "Eventually_synchronous(gst %d)" gst)
        ~bound
        (fun ~round d -> d >= 1 && d <= es_cap ~gst ~bound ~round)
        f

let pp ppf = function
  | Synchronous -> Fmt.string ppf "synchronous"
  | Fixed d -> Fmt.pf ppf "fixed:%d" d
  | Uniform { lo; hi } -> Fmt.pf ppf "uniform:%d..%d" lo hi
  | Per_message _ -> Fmt.string ppf "per-message"
  | Adversarial { bound; _ } -> Fmt.pf ppf "adversarial<=%d" bound
  | Asynchronous { fairness; _ } -> Fmt.pf ppf "async(fair<=%d)" fairness
  | Eventually_synchronous { gst; bound; _ } ->
      Fmt.pf ppf "gst:%d+<=%d" gst bound
