(** Read-only inbox view — the receive half of the protocol message API.

    A {!Protocol.S} step receives its round's arrivals as an indexed
    window over the engine's per-round delivery arena.  Entries appear
    in the engine's deterministic inbox order: sorted by sender id,
    ties in scheduling order (exactly the order the old assoc-list
    inboxes had).  Reading a view allocates nothing.

    Views are transient: they are valid only for the duration of the
    [step] call they are passed to (the engine reuses one view value
    and the arena behind it for every node and round).  Protocols that
    need to keep arrivals across rounds must copy them out, e.g. with
    {!to_list} or {!rev_append_to}. *)

type 'msg t

val length : 'msg t -> int
val is_empty : 'msg t -> bool

val src : 'msg t -> int -> Types.node_id
(** Sender of entry [i] (0-indexed within this view). *)

val msg : 'msg t -> int -> 'msg
(** Message of entry [i]. *)

val iter : (Types.node_id -> 'msg -> unit) -> 'msg t -> unit
(** Apply to every entry in inbox order. *)

val fold : ('acc -> Types.node_id -> 'msg -> 'acc) -> 'acc -> 'msg t -> 'acc

val to_list : 'msg t -> (Types.node_id * 'msg) list
(** Copy the view out as the old-style assoc list, in inbox order. *)

val rev_append_to :
  'msg t -> (Types.node_id * 'msg) list -> (Types.node_id * 'msg) list
(** [rev_append_to t acc] conses the entries onto [acc] in reverse
    order — for protocols that accumulate a reversed cross-round
    buffer. *)

(** {2 Engine internals} *)

val create : unit -> 'msg t
(** An empty view (no arena attached). *)

val set_view :
  'msg t -> srcs:int array -> msgs:Obj.t array -> off:int -> len:int -> unit
(** Point the view at a window of the delivery arena.  The [msgs] array
    must hold values of type ['msg] (written via [Obj.repr]) at indices
    [off .. off+len-1]. *)

val set_empty : 'msg t -> unit
