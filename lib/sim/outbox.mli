(** Reusable send buffer — the emit half of the protocol message API.

    A {!Protocol.S} step receives an outbox (cleared by the engine) and
    pushes its sends into it with {!unicast} / {!broadcast}; the engine
    reads the entries back positionally.  Emitting into a warm outbox
    allocates nothing: entries land in preallocated parallel arrays that
    are reused for every round of a run.

    Outboxes are single-owner scratch state: the engine clears the
    buffer before each protocol call, and protocols must not retain a
    reference to it across calls. *)

type 'msg t

val create : ?capacity:int -> unit -> 'msg t
(** A fresh outbox (default initial capacity 16 entries). *)

val clear : 'msg t -> unit
(** Forget all entries (and drop their message references). *)

val length : 'msg t -> int
val is_empty : 'msg t -> bool

val unicast : 'msg t -> Types.node_id -> 'msg -> unit
(** Queue a point-to-point send.  Only legal under
    {!Types.Point_to_point}; the engine rejects it (with
    [Invalid_argument]) under local broadcast when it expands the
    entry. *)

val broadcast : 'msg t -> 'msg -> unit
(** Queue a broadcast to the sender's whole neighbourhood (itself
    included). *)

(** {2 Reading entries back} (engine and embedding protocols) *)

val broadcast_dst : int
(** The destination word encoding a broadcast: [-1]. *)

val dst : 'msg t -> int -> int
(** Destination of entry [i]: a node id, or {!broadcast_dst}. *)

val is_broadcast : 'msg t -> int -> bool

val msg : 'msg t -> int -> 'msg
(** Message of entry [i]. *)

val iter : (dst:int -> 'msg -> unit) -> 'msg t -> unit
(** [iter f t] applies [f] to every entry in emission order; [dst] is
    {!broadcast_dst} for broadcasts. *)

val transfer : 'a t -> f:('a -> 'b) -> into:'b t -> unit
(** [transfer t ~f ~into] appends every entry of [t] to [into] with the
    message mapped through [f] (destinations unchanged), then clears
    [t].  This is how an embedding protocol wraps the output of a
    sub-machine (e.g. substrate messages into its own [Prepare]
    constructor). *)
