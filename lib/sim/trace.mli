(** Structured, immutable per-run traces.

    The engine accumulates a trace while it runs — per-round send counts,
    adversary injections, chaos-substrate activity (dropped / duplicated /
    retransmitted deliveries), per-node phase transitions (as reported by
    {!Protocol.S.phase}) and decide rounds — and freezes it into a
    [snapshot] on completion. Snapshots replace the old mutable
    {!Metrics.t} accounting as the unit of observability: one value per
    run, safe to store and aggregate, with CSV and JSON emitters.

    Runs without the chaos substrate ([chaos = false]) emit exactly the
    pre-substrate CSV/JSON shape — the chaos columns appear only when the
    run had the substrate or retransmission engaged. *)

type round_record = {
  round : int;
  honest_sent : int;  (** honest deliveries sent this round *)
  byz_sent : int;  (** adversary deliveries injected this round *)
  dropped : int;  (** deliveries destroyed by the chaos substrate *)
  duplicated : int;  (** extra copies injected by the substrate *)
  retransmitted : int;  (** retransmission attempts fired this round *)
  newly_decided : Types.node_id list;  (** ascending *)
  decided_total : int;  (** cumulative honest decisions after this round *)
}

type phase_event = {
  at_round : int;
  node : Types.node_id;
  phase : string;  (** the phase entered *)
}

type snapshot = {
  protocol : string;
  adversary : string;
  n : int;
  t : int;
  rounds : round_record list;  (** ascending by round *)
  phases : phase_event list;  (** chronological, ties by node id *)
  decide_rounds : (Types.node_id * int) list;  (** ascending by node id *)
  honest_msgs : int;
  byz_msgs : int;
  dropped_msgs : int;
  dup_msgs : int;
  retrans_msgs : int;
  total_rounds : int;
  stalled : bool;
  chaos : bool;  (** substrate or retransmission engaged for this run *)
}

(** {1 Builder — used by the engine while a run is in flight} *)

type builder

val builder :
  ?chaos:bool ->
  protocol:string ->
  adversary:string ->
  n:int ->
  t:int ->
  unit ->
  builder
(** [chaos] defaults to [false]; set it when the run goes through the
    chaos substrate or a retransmission policy, which switches the
    emitters to the extended schema. *)

val record_phase : builder -> round:int -> node:Types.node_id -> phase:string -> unit

val record_decide : builder -> round:int -> node:Types.node_id -> unit

val record_round :
  builder ->
  round:int ->
  honest_sent:int ->
  byz_sent:int ->
  dropped:int ->
  duplicated:int ->
  retransmitted:int ->
  newly_decided:Types.node_id list ->
  unit
(** The chaos counters are mandatory (pass [0] outside the substrate):
    one call per round, and optional-argument wrapping would allocate on
    the engine's hot path. *)

val snapshot : builder -> stalled:bool -> snapshot
(** Freeze. The builder may keep accumulating afterwards; the snapshot is
    unaffected. *)

(** {1 Queries} *)

val messages_total : snapshot -> int
val decide_round : snapshot -> Types.node_id -> int option
val phases_of : snapshot -> Types.node_id -> phase_event list

(** {1 Emitters} *)

val csv_header : string
(** Header of plain ([chaos = false]) traces. *)

val csv_header_chaos : string
(** Header of chaos traces: adds [dropped,duplicated,retransmitted]. *)

val to_csv : snapshot -> string
(** One line per executed round:
    [round,honest_sent,byz_sent,newly_decided,decided_total] where
    [newly_decided] is a [;]-separated id list — with the chaos columns
    spliced in after [byz_sent] when the snapshot has [chaos = true]. *)

val to_json : snapshot -> Vv_prelude.Json.t

val pp : Format.formatter -> snapshot -> unit
