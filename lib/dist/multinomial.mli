(** Multinomial distribution over honest vote counts (Equation 9).

    [n] independent non-faulty nodes each choose option [i] with probability
    [p.(i)]; the random vector [X] counts honest votes per option. *)

type t

val create : n:int -> p:float array -> t
(** Raises [Invalid_argument] when [n < 0], [p] is empty or contains a
    negative entry, or the entries do not sum to 1 (tolerance 1e-9). *)

val n : t -> int
val arity : t -> int
val probabilities : t -> float array

val log_pmf : t -> int array -> float
(** Log of Equation 9; [neg_infinity] when the counts do not sum to [n] or
    put mass on a zero-probability option. *)

val pmf : t -> int array -> float

val warm_log_factorial : int -> unit
(** Pre-extend the shared (process-global) log-factorial table up to [k],
    so later [pmf] calls never pay the incremental growth. The table is
    domain-safe: lookups are lock-free reads of an atomically published
    array and growth is serialised by a mutex, so concurrent [pmf] calls
    from worker domains are sound; warming before a parallel batch removes
    even the growth-lock contention. *)

val sample : t -> Vv_prelude.Rng.t -> int array
(** One draw of the count vector. *)

val iter_support : t -> (int array -> unit) -> unit
(** Enumerates every composition of [n] into [arity] parts (the full
    support). The array passed to the callback is fresh. *)

val fold_support : t -> init:'a -> f:('a -> int array -> 'a) -> 'a

val probability_of : t -> (int array -> bool) -> float
(** Exact probability of the event, by support enumeration. *)
