(** Memoisation layer over {!Exact}'s enumeration of Equations 9-13.

    One full support enumeration per distribution key [(n, probs)] caches
    the whole gap distribution and its suffix sums, so sweeps that query
    many tolerances [t] against the same electorate (Figures 1b/1c) pay
    for the enumeration once and answer every further query in O(1).
    Results agree with calling {!Exact} directly up to floating-point
    summation order (the cache sums the p.m.f. gap-major, {!Exact} sums
    it in support order); the qcheck property in test_exec.ml pins the
    difference below 1e-9.

    The cache is process-global and grows with the number of distinct
    distributions queried; {!clear} resets it (used by benchmarks to time
    cold paths). Keys are canonical — each probability keyed on its
    IEEE-754 bits after normalising [-0.0] to [0.0] — so equal-valued
    distributions always share one entry.

    Domain-safety contract: every entry point may be called concurrently
    from any number of domains. Table lookups and the hit/miss counters
    are mutex-guarded; a miss enumerates outside the lock and re-checks
    before inserting, so concurrent first queries of one key may each
    count a miss (duplicated work) but the table never holds duplicate
    entries and served values always agree with {!Exact}. *)

val gap_distribution : Multinomial.t -> float array
(** Cached {!Exact.gap_distribution}; the returned array is a copy. *)

val pr_gap_gt : Multinomial.t -> threshold:int -> float
(** Cached {!Exact.pr_gap_gt}. *)

val pr_voting_validity : Multinomial.t -> t:int -> float
val pr_sct_termination : Multinomial.t -> t:int -> float
val system_entropy : Multinomial.t -> f:int -> float

val warm : Multinomial.t -> unit
(** Pre-extend the shared log-factorial table to this distribution's [n]
    (no enumeration). *)

type stats = { hits : int; misses : int; entries : int }

val stats : unit -> stats
val clear : unit -> unit
