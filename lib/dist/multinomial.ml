(* Multinomial distribution over option counts (Equation 9 of the paper):
   N_G independent non-faulty nodes each vote for option i with probability
   p_i; X_i is the number of honest votes on option i. *)

type t = { n : int; p : float array }

let create ~n ~p =
  if n < 0 then invalid_arg "Multinomial.create: negative n";
  if Array.length p = 0 then invalid_arg "Multinomial.create: empty p";
  Array.iter
    (fun x ->
      if x < 0.0 || Float.is_nan x then
        invalid_arg "Multinomial.create: negative probability")
    p;
  let total = Array.fold_left ( +. ) 0.0 p in
  if abs_float (total -. 1.0) > 1e-9 then
    invalid_arg "Multinomial.create: probabilities must sum to 1";
  { n; p = Array.copy p }

let n t = t.n
let arity t = Array.length t.p
let probabilities t = Array.copy t.p

(* Log-factorials, memoised across calls; counts stay small (<= a few
   thousand) in every experiment.

   The table is shared by every domain: lookups read the current array
   through an [Atomic.t] (lock-free — published arrays are never mutated
   again, growth allocates a fresh one), and growth itself runs under a
   mutex with a re-check so concurrent growers never publish a shorter
   table over a longer one.  [warm_log_factorial] is the pre-sizing escape
   hatch: batch drivers call it once before fanning out so workers never
   contend on growth at all. *)
let log_table = Atomic.make [| 0.0 |]
let log_table_lock = Mutex.create ()

let rec log_factorial k =
  if k < 0 then invalid_arg "log_factorial: negative";
  let cur = Atomic.get log_table in
  if k < Array.length cur then cur.(k)
  else begin
    Mutex.protect log_table_lock (fun () ->
        let cur = Atomic.get log_table in
        if k >= Array.length cur then begin
          let len = max (k + 1) (2 * Array.length cur) in
          let next = Array.make len 0.0 in
          Array.blit cur 0 next 0 (Array.length cur);
          for i = Array.length cur to len - 1 do
            next.(i) <- next.(i - 1) +. log (float_of_int i)
          done;
          Atomic.set log_table next
        end);
    log_factorial k
  end

let warm_log_factorial k = if k > 0 then ignore (log_factorial k)

let log_pmf t counts =
  if Array.length counts <> Array.length t.p then
    invalid_arg "Multinomial.log_pmf: arity mismatch";
  let total = Array.fold_left ( + ) 0 counts in
  if total <> t.n then neg_infinity
  else begin
    let acc = ref (log_factorial t.n) in
    Array.iteri
      (fun i x ->
        if x < 0 then invalid_arg "Multinomial.log_pmf: negative count";
        if x > 0 && t.p.(i) = 0.0 then acc := neg_infinity
        else if !acc > neg_infinity then
          acc := !acc -. log_factorial x +. (float_of_int x *. log t.p.(i)))
      counts;
    !acc
  end

let pmf t counts = exp (log_pmf t counts)

let sample t rng =
  let counts = Array.make (Array.length t.p) 0 in
  for _ = 1 to t.n do
    let i = Vv_prelude.Rng.categorical rng t.p in
    counts.(i) <- counts.(i) + 1
  done;
  counts

(* Enumerate every composition (x_1, ..., x_m) with sum n, applying [f] to
   each.  The count of compositions is C(n+m-1, m-1); callers are expected
   to keep n and m small (Figure 1 uses n = 10, m = 4 -> 286 outcomes). *)
let iter_support t f =
  let m = Array.length t.p in
  let counts = Array.make m 0 in
  let rec go i remaining =
    if i = m - 1 then begin
      counts.(i) <- remaining;
      f (Array.copy counts)
    end
    else
      for x = 0 to remaining do
        counts.(i) <- x;
        go (i + 1) (remaining - x)
      done
  in
  if m = 0 then () else go 0 t.n

let fold_support t ~init ~f =
  let acc = ref init in
  iter_support t (fun counts -> acc := f !acc counts);
  !acc

(* Total probability of outcomes satisfying a predicate, by exact
   enumeration. *)
let probability_of t pred =
  fold_support t ~init:0.0 ~f:(fun acc counts ->
      if pred counts then acc +. pmf t counts else acc)
