(* Memoisation layer over the exact enumeration of Equations 9-13.

   The Figure 1 sweeps evaluate Pr(A_G - B_G > t) for the same electorate
   distribution at many tolerances t (Fig 1b: t = 0..4; Fig 1c: f = 0..4),
   and [Exact.pr_gap_gt] re-enumerates the full multinomial support —
   C(n+m-1, m-1) compositions — on every call.  The gap statistic makes
   all of those queries answerable from one enumeration: cache, per
   distribution key [(n, probs)], the tail function

       tail.(g) = Pr(A_G - B_G >= g)        (suffix sums of the gap p.m.f.)

   so every threshold afterwards is an O(1) lookup.  The log-factorial
   table behind the p.m.f. ([Multinomial.log_factorial]) was already
   shared process-wide; [warm] pre-extends it so the first enumeration of
   a batch does not pay the incremental table growth either.

   Keys are canonical: each probability is normalised (-0.0 to 0.0, the
   only value-equal pair of doubles with distinct bit patterns that
   [Multinomial.create] admits) and then keyed on its IEEE-754 bits, so
   key equality is total, bit-exact and independent of float comparison
   quirks — two distributions hit the same entry iff their parameters are
   the same values.

   Domain-safety: the table and the hit/miss counters are guarded by one
   mutex.  Lookups are a single cheap critical section; a miss computes
   the enumeration *outside* the lock (it can take milliseconds — holding
   the lock would serialise every worker behind one enumeration) and then
   re-checks under the lock before inserting, so concurrent first queries
   of the same key may duplicate work but never duplicate entries. *)

type key = { n : int; p : int64 list }

type entry = {
  gap_pmf : float array;  (* index g: Pr(gap = g), g in 0..n *)
  gap_tail : float array;  (* index g: Pr(gap >= g); length n + 2 *)
}

let table : (key, entry) Hashtbl.t = Hashtbl.create 32
let lock = Mutex.create ()

let hits = ref 0
let misses = ref 0

type stats = { hits : int; misses : int; entries : int }

let stats () =
  Mutex.protect lock (fun () ->
      { hits = !hits; misses = !misses; entries = Hashtbl.length table })

let clear () =
  Mutex.protect lock (fun () ->
      Hashtbl.reset table;
      hits := 0;
      misses := 0)

(* [-0.0] and [0.0] are equal values; map both to the bits of [+0.0] so
   they share an entry. *)
let canonical_bits x = Int64.bits_of_float (if x = 0.0 then 0.0 else x)

let key_of dist =
  {
    n = Multinomial.n dist;
    p =
      Array.to_list
        (Array.map canonical_bits (Multinomial.probabilities dist));
  }

let warm dist = Multinomial.warm_log_factorial (Multinomial.n dist)

let compute dist =
  warm dist;
  let gap_pmf = Exact.gap_distribution dist in
  let n = Array.length gap_pmf - 1 in
  let gap_tail = Array.make (n + 2) 0.0 in
  for g = n downto 0 do
    gap_tail.(g) <- gap_tail.(g + 1) +. gap_pmf.(g)
  done;
  { gap_pmf; gap_tail }

let entry_of dist =
  let key = key_of dist in
  let cached =
    Mutex.protect lock (fun () ->
        match Hashtbl.find_opt table key with
        | Some e ->
            incr hits;
            Some e
        | None ->
            incr misses;
            None)
  in
  match cached with
  | Some e -> e
  | None -> (
      (* Enumerate outside the lock; another domain may race us here. *)
      let e = compute dist in
      Mutex.protect lock (fun () ->
          match Hashtbl.find_opt table key with
          | Some winner -> winner
          | None ->
              Hashtbl.replace table key e;
              e))

let gap_distribution dist = Array.copy (entry_of dist).gap_pmf

let pr_gap_gt dist ~threshold =
  let e = entry_of dist in
  let n = Array.length e.gap_pmf - 1 in
  if threshold < 0 then 1.0
  else if threshold >= n then 0.0
  else e.gap_tail.(threshold + 1)

let pr_voting_validity dist ~t = pr_gap_gt dist ~threshold:t

let pr_sct_termination dist ~t = pr_gap_gt dist ~threshold:(2 * t)

let system_entropy dist ~f =
  let p_v = if f = 0 then 1.0 else pr_gap_gt dist ~threshold:f in
  Entropy.system_of_success ~f ~p_v
