(* Plain (unprotected) sender broadcast as a degenerate BB sub-machine.

   The sender broadcasts its value once; receivers adopt the first value
   heard from the sender.  This is a *reliable* broadcast only when the
   sender cannot equivocate: an honest or crash-faulty sender, or any
   sender under the local broadcast model (Property 6).  Algorithm 4 and
   the CFT voting protocol use it in Phase 1, which is exactly why they
   shed the N > 3t term of Inequality (3). *)

open Vv_sim

let name = "plain"

type msg = int

let equal_msg = Int.equal

type state = { sender : Types.node_id; received : int }

let rounds ~n:_ ~t:_ = 1

let start ~n:_ ~t:_ ~me ~sender ~value ~outbox =
  match value with
  | Some v when me = sender ->
      if v < 0 then invalid_arg "Plain.start: negative value";
      Outbox.broadcast outbox v;
      { sender; received = v }
  | None when me <> sender -> { sender; received = Bb_intf.bottom }
  | Some _ -> invalid_arg "Plain.start: value supplied at non-sender"
  | None -> invalid_arg "Plain.start: sender has no value"

let step ~n:_ ~t:_ ~me:_ st ~lround:_ ~inbox ~outbox:_ =
  let received = ref st.received in
  for i = 0 to inbox.Bb_intf.len - 1 do
    let v = inbox.Bb_intf.msgs.(i) in
    if inbox.Bb_intf.srcs.(i) = st.sender && !received = Bb_intf.bottom && v >= 0
    then received := v
  done;
  { st with received = !received }

let result st = st.received
