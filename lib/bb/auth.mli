(** Simulated message authentication (signature chains) for Dolev-Strong.

    Not cryptography: it simulates the unforgeability *interface* the
    protocol needs; adversaries in this repository never sign on behalf of
    honest identities (DESIGN.md §3). *)

type signature

val sign : signer:Vv_sim.Types.node_id -> data:'a -> signature
val verify : data:'a -> signature -> bool
val signer : signature -> Vv_sim.Types.node_id

type 'a chain = private { value : 'a; sigs : signature list }
(** A value carrying signatures in signing order (sender first). *)

val initial : sender:Vv_sim.Types.node_id -> 'a -> 'a chain
(** The sender's round-0 message: value signed once. *)

val extend : 'a chain -> signer:Vv_sim.Types.node_id -> 'a chain
(** Append the relay's signature. *)

val signers : 'a chain -> Vv_sim.Types.node_id list

val mem_signer : 'a chain -> Vv_sim.Types.node_id -> bool
(** [mem_signer c id] without materialising the signer list. *)

val equal_signature : signature -> signature -> bool

val equal_chain : ('a -> 'a -> bool) -> 'a chain -> 'a chain -> bool
(** Structural chain equality given value equality. *)

val valid : 'a chain -> sender:Vv_sim.Types.node_id -> len:int -> bool
(** Exactly [len] distinct signers, sender first, all signatures verifying
    against the value and their prefix. *)
