(** Phase-King Byzantine {e Agreement} (every node holds an input).

    The BA core of {!Phase_king} without the sender round: [2(t+1)] local
    rounds, [n > 4t]. Used by the baseline protocols to align locally
    computed candidates. *)

type msg =
  | Val of { phase : int; value : int }
  | King of { phase : int; value : int }

val equal_msg : msg -> msg -> bool

type state

val rounds : t:int -> int
(** [2(t+1)]; step local rounds [1 .. rounds] after [start] at round 0. *)

val king_of : n:int -> int -> Vv_sim.Types.node_id

val start : int -> outbox:msg Vv_sim.Outbox.t -> state
(** [start own_value ~outbox]. *)

val step :
  n:int ->
  t:int ->
  me:Vv_sim.Types.node_id ->
  state ->
  lround:int ->
  inbox:msg Bb_intf.inbox ->
  outbox:msg Vv_sim.Outbox.t ->
  state

val result : state -> int
