(** Phase-King Byzantine Broadcast (unauthenticated, polynomial messages).

    Sender round plus [t+1] two-round Berman-Garay-Perry phases; requires
    [n > 4t] (this simple two-round-per-phase variant's persistence
    argument needs [n - t > n/2 + t]). Implements {!Bb_intf.S}. *)

val name : string

type msg =
  | Val of { phase : int; value : int }
      (** phase [-1] is the sender's round-0 transmission *)
  | King of { phase : int; value : int }

val equal_msg : msg -> msg -> bool

type state

val rounds : n:int -> t:int -> int
(** [2(t+1) + 1]. *)

val king_of : n:int -> int -> Vv_sim.Types.node_id
(** The king of a phase (round-robin). *)

val start :
  n:int ->
  t:int ->
  me:Vv_sim.Types.node_id ->
  sender:Vv_sim.Types.node_id ->
  value:int option ->
  outbox:msg Vv_sim.Outbox.t ->
  state

val step :
  n:int ->
  t:int ->
  me:Vv_sim.Types.node_id ->
  state ->
  lround:int ->
  inbox:msg Bb_intf.inbox ->
  outbox:msg Vv_sim.Outbox.t ->
  state

val result : state -> int
