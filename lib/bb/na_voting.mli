(** Network-agnostic voting (after arXiv 2410.19721): one protocol run
    unchanged on a synchronous network (tolerating [t_s] Byzantine
    nodes) and an asynchronous one (tolerating [t_a <= t_s]).

    A timeout-clocked synchronous path (input / vote / commit in
    [sync_delta]-round steps, deciding on [n - t_s] matching commits)
    composes with a threshold-clocked asynchronous fallback (lock
    certificates from the sync path's commits, fallback votes once
    [n - t_a] inputs arrived, deciding on [n - t_a] matching fallback
    votes) and a [t_s + 1]-threshold Fin adoption bridging both.
    Validity in the simulator's voting sense is achievable exactly when
    [N > max{3t, 2t + 2B_G + C_G}] for the network's tolerance [t] —
    campaign E20 ({!Vv_analysis.Exp_gst}) maps that region empirically
    across the {!Vv_sim.Delay} synchrony models.

    Safety requires [n > 2*t_s + t_a] ([init] raises below that). Inputs
    are option ids (ints >= 0); the output is the decided option. *)

type kind = Inp | Vote | Comm | Lock | FbVote | Fin

type msg = { kind : kind; value : int }

module type Params = sig
  val t_s : int
  (** synchronous-network fault tolerance *)

  val t_a : int
  (** asynchronous-network fault tolerance, [0 <= t_a <= t_s] *)

  val sync_delta : int
  (** the timeout realising the synchronous path's delta_t, in engine
      rounds; [>= 1] *)
end

module Make (P : Params) :
  Vv_sim.Protocol.S
    with type input = int
     and type output = int
     and type msg = msg
