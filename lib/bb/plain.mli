(** Plain (unprotected) sender broadcast as a degenerate BB sub-machine.

    Reliable only when the sender cannot equivocate: honest or
    crash-faulty senders, or any sender under the local broadcast model
    (Property 6). Phase-1 substrate of Algorithm 4 and the CFT protocol —
    which is exactly why they shed Inequality (3)'s [3t] term. Implements
    {!Bb_intf.S}. *)

val name : string

type msg = int

val equal_msg : msg -> msg -> bool

type state

val rounds : n:int -> t:int -> int
(** 1. *)

val start :
  n:int ->
  t:int ->
  me:Vv_sim.Types.node_id ->
  sender:Vv_sim.Types.node_id ->
  value:int option ->
  outbox:msg Vv_sim.Outbox.t ->
  state

val step :
  n:int ->
  t:int ->
  me:Vv_sim.Types.node_id ->
  state ->
  lround:int ->
  inbox:msg Bb_intf.inbox ->
  outbox:msg Vv_sim.Outbox.t ->
  state

val result : state -> int
