(* Phase-King Byzantine *Agreement* (every node holds an input value).

   The BA core of Phase_king without the sender round: t+1 two-round
   phases, each broadcasting current values, computing the plurality and
   deferring to the phase king unless the local multiplicity clears
   n/2 + t.  Same n > 4t requirement as Phase_king; used by the baseline
   protocols (median/interval/strong consensus) to agree on locally
   computed candidates. *)

open Vv_sim

type msg = Val of { phase : int; value : int } | King of { phase : int; value : int }

let equal_msg a b =
  match (a, b) with
  | Val a, Val b -> a.phase = b.phase && a.value = b.value
  | King a, King b -> a.phase = b.phase && a.value = b.value
  | (Val _ | King _), _ -> false

type state = { current : int; maj : int; mult : int }

(* Total local rounds; a node started at local round 0 must be stepped for
   rounds 1 .. rounds. *)
let rounds ~t = 2 * (t + 1)

let king_of ~n phase = phase mod n

let start value ~outbox =
  Outbox.broadcast outbox (Val { phase = 0; value });
  { current = value; maj = Bb_intf.bottom; mult = 0 }

(* Highest count wins, ties to the smaller value — a strict total order
   on (count, value), so the scan order cannot matter. *)
let plurality ~vals ~cnts ~distinct =
  let bv = ref Bb_intf.bottom and bc = ref 0 in
  for j = 0 to distinct - 1 do
    if cnts.(j) > !bc || (cnts.(j) = !bc && vals.(j) < !bv) then begin
      bv := vals.(j);
      bc := cnts.(j)
    end
  done;
  (!bv, !bc)

let step ~n ~t ~me st ~lround ~inbox ~outbox =
  (* Round layout: 2k+1 = receive Val(k), king sends King(k);
     2k+2 = receive King(k), update, send Val(k+1) unless k = t. *)
  if lround mod 2 = 1 then begin
    let k = (lround - 1) / 2 in
    (* One Val per sender per phase (first message wins), counted into
       flat arrays — at most n distinct values, so the linear probe beats
       a pair of hash tables at every simulated size. *)
    let seen = Array.make n false in
    let vals = Array.make n 0 and cnts = Array.make n 0 in
    let distinct = ref 0 in
    for i = 0 to inbox.Bb_intf.len - 1 do
      match inbox.Bb_intf.msgs.(i) with
      | Val { phase; value } when phase = k -> (
          let src = inbox.Bb_intf.srcs.(i) in
          if not seen.(src) then begin
            seen.(src) <- true;
            let j = ref 0 in
            while !j < !distinct && vals.(!j) <> value do
              incr j
            done;
            if !j < !distinct then cnts.(!j) <- cnts.(!j) + 1
            else begin
              vals.(!distinct) <- value;
              cnts.(!distinct) <- 1;
              incr distinct
            end
          end)
      | Val _ | King _ -> ()
    done;
    let maj, mult = plurality ~vals ~cnts ~distinct:!distinct in
    let st = { st with maj; mult } in
    if me = king_of ~n k then
      Outbox.broadcast outbox (King { phase = k; value = maj });
    st
  end
  else begin
    let k = (lround - 2) / 2 in
    let king = king_of ~n k in
    let king_value = ref None in
    for i = 0 to inbox.Bb_intf.len - 1 do
      match inbox.Bb_intf.msgs.(i) with
      | King { phase; value }
        when phase = k && inbox.Bb_intf.srcs.(i) = king && !king_value = None
        ->
          king_value := Some value
      | King _ | Val _ -> ()
    done;
    let king_value = !king_value in
    let v =
      if 2 * st.mult > n + (2 * t) then st.maj
      else match king_value with Some kv -> kv | None -> st.current
    in
    let st = { st with current = v } in
    if k < t then Outbox.broadcast outbox (Val { phase = k + 1; value = v });
    st
  end

let result st = st.current
