(* Common interface of the Byzantine Broadcast / Agreement sub-machines.

   A sub-machine is a fixed-duration round protocol that can be embedded
   inside a larger protocol (Phase 1 of Algorithms 1-3 embeds one to
   broadcast the subject) or wrapped into a full Protocol.S for direct
   execution (Protocol_of).  Values are integers; [bottom] (-1) encodes the
   absence of a valid value, on which nodes may also agree when the sender
   is faulty.

   Sends are pushed into the caller-supplied {!Vv_sim.Outbox.t} (the
   embedding protocol either passes the engine's outbox straight through
   or transfer-wraps the entries into its own message type); arrivals are
   read from an {!inbox} the embedder fills across delta-batched engine
   rounds — a reusable growable pair of parallel arrays, so buffering a
   delivery costs no allocation on the engine's hot path. *)

let bottom = -1

(* The sub-machine inbox: parallel arrays of (source, message), valid on
   [0, len).  The embedder owns one per sub-machine instance, pushes every
   arrival of the current batch in delivery order, and clears it after the
   [step] call; sub-machines only read it, by index. *)
type 'msg inbox = {
  mutable srcs : int array;
  mutable msgs : 'msg array;  (* parallel to [srcs]; slots >= [len] stale *)
  mutable len : int;
}

let inbox_create () = { srcs = [||]; msgs = [||]; len = 0 }

let inbox_push ib src m =
  (if ib.len = Array.length ib.srcs then begin
     let ncap = if ib.len = 0 then 8 else 2 * ib.len in
     let srcs = Array.make ncap 0 and msgs = Array.make ncap m in
     Array.blit ib.srcs 0 srcs 0 ib.len;
     Array.blit ib.msgs 0 msgs 0 ib.len;
     ib.srcs <- srcs;
     ib.msgs <- msgs
   end);
  ib.srcs.(ib.len) <- src;
  ib.msgs.(ib.len) <- m;
  ib.len <- ib.len + 1

let inbox_clear ib = ib.len <- 0

(* Convenience for tests and one-shot callers. *)
let inbox_of_list l =
  let ib = inbox_create () in
  List.iter (fun (src, m) -> inbox_push ib src m) l;
  ib

module type S = sig
  val name : string

  type state
  type msg

  val equal_msg : msg -> msg -> bool
  (** Structural message equality — monomorphic, so embedding it in a
      larger protocol's [equal_msg] never falls back to polymorphic
      compare. *)

  val rounds : n:int -> t:int -> int
  (** Total local rounds: [result] is defined after the inbox of local round
      [rounds n t] has been processed by [step]. *)

  val start :
    n:int ->
    t:int ->
    me:Vv_sim.Types.node_id ->
    sender:Vv_sim.Types.node_id ->
    value:int option ->
    outbox:msg Vv_sim.Outbox.t ->
    state
  (** Local round 0. [value] must be [Some v] (with [v >= 0]) exactly at the
      designated sender.  Sends are pushed into [outbox]. *)

  val step :
    n:int ->
    t:int ->
    me:Vv_sim.Types.node_id ->
    state ->
    lround:int ->
    inbox:msg inbox ->
    outbox:msg Vv_sim.Outbox.t ->
    state
  (** Local rounds 1 .. [rounds n t].  [inbox] is read-only and only valid
      for the duration of the call (the embedder clears and refills it). *)

  val result : state -> int
  (** The agreed value, or [bottom]. Defined once all rounds have run;
      querying earlier returns the current tentative value. *)
end
