(* Phase-King Byzantine Broadcast (unauthenticated, polynomial messages).

   Round 0: the designated sender broadcasts its value; every node adopts
   what it received (bottom if nothing).  Then t+1 two-round phases of the
   Berman-Garay-Perry king algorithm run: in round A every node broadcasts
   its current value and computes the plurality [maj] with multiplicity
   [mult]; in round B the phase's king broadcasts its [maj] and every node
   keeps [maj] if [mult > n/2 + t], otherwise adopts the king's value.

   This simple two-round-per-phase variant requires n > 4t (the persistence
   argument needs n - t > n/2 + t).  For the tight unauthenticated bound
   n > 3t use Eig; for arbitrary t with authentication use Dolev_strong.
   Validity: if the sender is honest every honest node starts with its
   value and keeps it through every phase; agreement: at least one of the
   t+1 kings is honest, and its phase aligns all honest values. *)

open Vv_sim

let name = "phase-king"

type msg = Val of { phase : int; value : int } | King of { phase : int; value : int }

let equal_msg a b =
  match (a, b) with
  | Val a, Val b -> a.phase = b.phase && a.value = b.value
  | King a, King b -> a.phase = b.phase && a.value = b.value
  | (Val _ | King _), _ -> false

type state = {
  sender : Types.node_id;
  current : int;
  maj : int;
  mult : int;
}

let rounds ~n:_ ~t = (2 * (t + 1)) + 1

let king_of ~n phase = phase mod n

let start ~n:_ ~t:_ ~me ~sender ~value ~outbox =
  match value with
  | Some v when me = sender ->
      if v < 0 then invalid_arg "Phase_king.start: negative value";
      Outbox.broadcast outbox (Val { phase = -1; value = v });
      { sender; current = v; maj = Bb_intf.bottom; mult = 0 }
  | None when me <> sender ->
      { sender; current = Bb_intf.bottom; maj = Bb_intf.bottom; mult = 0 }
  | Some _ -> invalid_arg "Phase_king.start: value supplied at non-sender"
  | None -> invalid_arg "Phase_king.start: sender has no value"

(* Plurality of an association list value -> count; ties to the smaller
   value so all honest nodes break ties identically. *)
(* Highest count wins, ties to the smaller value — a strict total order
   on (count, value), so the scan order cannot matter. *)
let plurality ~vals ~cnts ~distinct =
  let bv = ref Bb_intf.bottom and bc = ref 0 in
  for j = 0 to distinct - 1 do
    if cnts.(j) > !bc || (cnts.(j) = !bc && vals.(j) < !bv) then begin
      bv := vals.(j);
      bc := cnts.(j)
    end
  done;
  (!bv, !bc)

let step ~n ~t ~me st ~lround ~inbox ~outbox =
  (* Local round layout: 1 = receive sender value, send Val(0);
     2k+2 = receive Val(k), king sends King(k);
     2k+3 = receive King(k), update, send Val(k+1) unless k = t. *)
  if lround = 1 then begin
    (* The value the designated sender sent us in round 0, if any. *)
    let v = ref st.current in
    for i = 0 to inbox.Bb_intf.len - 1 do
      match inbox.Bb_intf.msgs.(i) with
      | Val { phase = -1; value } when inbox.Bb_intf.srcs.(i) = st.sender ->
          v := value
      | Val _ | King _ -> ()
    done;
    let v = !v in
    Outbox.broadcast outbox (Val { phase = 0; value = v });
    { st with current = v }
  end
  else if lround mod 2 = 0 then begin
    let k = (lround - 2) / 2 in
    (* One Val per sender per phase (first message wins), counted into
       flat arrays — at most n distinct values, so the linear probe beats
       a pair of hash tables at every simulated size. *)
    let seen = Array.make n false in
    let vals = Array.make n 0 and cnts = Array.make n 0 in
    let distinct = ref 0 in
    for i = 0 to inbox.Bb_intf.len - 1 do
      match inbox.Bb_intf.msgs.(i) with
      | Val { phase; value } when phase = k -> (
          let src = inbox.Bb_intf.srcs.(i) in
          if not seen.(src) then begin
            seen.(src) <- true;
            let j = ref 0 in
            while !j < !distinct && vals.(!j) <> value do
              incr j
            done;
            if !j < !distinct then cnts.(!j) <- cnts.(!j) + 1
            else begin
              vals.(!distinct) <- value;
              cnts.(!distinct) <- 1;
              incr distinct
            end
          end)
      | Val _ | King _ -> ()
    done;
    let maj, mult = plurality ~vals ~cnts ~distinct:!distinct in
    let st = { st with maj; mult } in
    if me = king_of ~n k then
      Outbox.broadcast outbox (King { phase = k; value = maj });
    st
  end
  else begin
    let k = (lround - 3) / 2 in
    let king = king_of ~n k in
    let king_value = ref None in
    for i = 0 to inbox.Bb_intf.len - 1 do
      match inbox.Bb_intf.msgs.(i) with
      | King { phase; value }
        when phase = k && inbox.Bb_intf.srcs.(i) = king && !king_value = None
        ->
          king_value := Some value
      | King _ | Val _ -> ()
    done;
    let king_value = !king_value in
    (* Keep maj on strong multiplicity, else follow the king (a silent
       Byzantine king leaves the current value unchanged). *)
    let v =
      if 2 * st.mult > n + (2 * t) then st.maj
      else match king_value with Some kv -> kv | None -> st.current
    in
    let st = { st with current = v } in
    if k < t then Outbox.broadcast outbox (Val { phase = k + 1; value = v });
    st
  end

let result st = st.current
