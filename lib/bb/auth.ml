(* Simulated message authentication for Dolev-Strong.

   A signature is a (signer, tag) pair where the tag is a keyed digest of
   the signed data under the signer's per-identity secret.  This is not
   cryptography — it simulates the *interface invariant* Dolev-Strong
   needs: a verifier can check that a given identity vouched for given
   data, and the Byzantine adversaries implemented in this repository never
   call [sign] on behalf of honest identities (see DESIGN.md §3). *)

type signature = { signer : Vv_sim.Types.node_id; tag : int }

(* Per-identity secret, derived deterministically so that signing is a pure
   function and simulations stay reproducible.  The derivation is pure, so
   the per-domain memo table (signature verification re-derives the signer's
   secret on every chain hop — a hot path under Dolev-Strong) cannot be
   observed; domain-local storage keeps parallel campaign workers from
   sharing a mutable table. *)
let secret_cache = Domain.DLS.new_key (fun () -> Hashtbl.create 16)

let derive_secret signer =
  let r = Vv_prelude.Rng.create (0x5170_0000 + signer) in
  Vv_prelude.Rng.bits r

let secret signer =
  let cache : (int, int) Hashtbl.t = Domain.DLS.get secret_cache in
  match Hashtbl.find_opt cache signer with
  | Some s -> s
  | None ->
      let s = derive_secret signer in
      Hashtbl.add cache signer s;
      s

let sign ~signer ~data = { signer; tag = Hashtbl.hash (secret signer, data) }

let verify ~data s = s.tag = Hashtbl.hash (secret s.signer, data)

let signer s = s.signer

(* A signature chain over a value: the Dolev-Strong message format.  The
   chain lists signatures in signing order (sender first).

   Chain tags use an incremental digest over (value, prior-signer prefix):
   [mix] folds the verified prefix ids into an accumulator, so validation
   never rebuilds the prefix list or re-hashes a growing tuple per hop —
   the old scheme made [valid] quadratic in both time and allocation, and
   Dolev-Strong validates a chain per delivered message. *)
type 'a chain = { value : 'a; sigs : signature list }

let digest_seed = 0x9E37_79B9

let mix h x = ((h * 486187739) + x + 1) land max_int

let chain_tag ~signer ~hv ~prefix_h = mix (mix prefix_h hv) (secret signer)

let prefix_hash sigs = List.fold_left (fun h s -> mix h s.signer) digest_seed sigs

let initial ~sender value =
  let hv = Hashtbl.hash value in
  { value;
    sigs = [ { signer = sender;
               tag = chain_tag ~signer:sender ~hv ~prefix_h:digest_seed } ] }

let extend chain ~signer =
  let hv = Hashtbl.hash chain.value in
  let prefix_h = prefix_hash chain.sigs in
  { chain with
    sigs = chain.sigs @ [ { signer; tag = chain_tag ~signer ~hv ~prefix_h } ] }

let signers chain = List.map (fun s -> s.signer) chain.sigs

(* Membership without materialising the signer list. *)
let mem_signer chain id = List.exists (fun s -> s.signer = id) chain.sigs

let equal_signature a b = a.signer = b.signer && a.tag = b.tag

let equal_chain eq_value a b =
  eq_value a.value b.value && List.equal equal_signature a.sigs b.sigs

(* A chain is valid for [sender] at relay depth [len] when it has exactly
   [len] signatures from distinct identities, the first being the sender,
   and each signature verifies against the value and the prefix before it.
   One pass: [prefix_h] folds the already-verified prefix, [verified]
   carries it for the distinctness check. *)
let valid chain ~sender ~len =
  let sigs = chain.sigs in
  List.compare_length_with sigs len = 0
  && (match sigs with [] -> false | s :: _ -> s.signer = sender)
  &&
  let hv = Hashtbl.hash chain.value in
  let rec check prefix_h verified = function
    | [] -> true
    | s :: rest ->
        (not
           (List.exists (fun (x : signature) -> x.signer = s.signer) verified))
        && s.tag = chain_tag ~signer:s.signer ~hv ~prefix_h
        && check (mix prefix_h s.signer) (s :: verified) rest
  in
  check digest_seed [] sigs
